// Package politewifi is a full reproduction of "WiFi Says \"Hi!\"
// Back to Strangers!" (Abedi & Abari, HotNets 2020) as a Go library:
// an 802.11 PHY/MAC simulator in which the Polite WiFi behaviour —
// every device acknowledges any frame addressed to it, before any
// validation — emerges from the standard's timing rules, plus the
// paper's attacker toolkit, sensing pipeline, power model and
// large-scale measurement study.
//
// Start with README.md for the tour, DESIGN.md for the system
// inventory and hardware→simulation substitutions, and
// EXPERIMENTS.md for the paper-vs-measured record. The benchmark
// harness in bench_test.go regenerates every table and figure:
//
//	go test -bench=. -benchmem
package politewifi
