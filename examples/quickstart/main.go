// Quickstart: the smallest possible Polite WiFi demonstration.
//
// We build a WPA2-protected home network (one AP, one tablet), place
// an attacker outside it — never authenticated, holding no keys —
// and send a single fake 802.11 null frame to the tablet. The
// tablet's PHY acknowledges it to the attacker's spoofed MAC within
// one SIFS, exactly as the paper's Figure 2 shows.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/trace"
)

func main() {
	// 1. A deterministic simulated world.
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(42)
	medium := radio.NewMedium(sched, rng.Fork(), radio.DefaultConfig())

	// 2. A private WPA2 network: AP plus an associated tablet.
	apMAC := dot11.MustMAC("f2:6e:0b:00:00:01")
	tabletMAC := dot11.MustMAC("f2:6e:0b:12:34:56")
	mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apMAC, Role: mac.RoleAP,
		Profile: mac.ProfileGenericAP,
		SSID:    "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet := mac.New(medium, rng.Fork(), mac.Config{
		Name: "tablet", Addr: tabletMAC, Role: mac.RoleClient,
		Profile: mac.ProfileMarvell88W8897, // Surface Pro 2017 (Table 1)
		SSID:    "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet.Associate(apMAC, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	if !tablet.Associated() {
		log.Fatal("tablet failed to associate")
	}

	// 3. The attacker: a $12 monitor-mode dongle outside the network.
	attacker := core.NewAttacker(medium, radio.Position{X: 12},
		phy.Band2GHz, 6, core.DefaultFakeMAC)

	// A sniffer so we can show the exchange, Wireshark-style.
	capture := &trace.Capture{}
	sniffer := medium.NewRadio("sniffer", radio.Position{X: 8}, phy.Band2GHz, 6)
	capture.Attach(sniffer)

	// 4. One fake frame. The only valid field is the destination MAC.
	res := core.ProbeSync(attacker, tabletMAC, core.ProbeNull, 1, eventsim.Millisecond)
	sched.RunFor(5 * eventsim.Millisecond)

	fmt.Println("WiFi says \"Hi!\" back to strangers:")
	fmt.Print(capture.Table(tabletMAC, apMAC))
	fmt.Printf("\nfake frame acknowledged: %v (ACK %.1f µs after frame end = SIFS)\n",
		res.Responded, res.FirstGap.Micros())
	fmt.Printf("the tablet's host later discarded the frame (RxDiscarded=%d) — but the ACK had already left.\n",
		tablet.Stats.RxDiscarded)
}
