// Whole-home sensing with software modification on one device only
// (paper §4.3).
//
// Classic WiFi sensing needs a modified transmitter and a modified
// receiver with the target in between, and 100–1000 packets/s — far
// more than devices emit naturally. Polite WiFi turns every
// unmodified WiFi device into a sensing reflector: one hub injects
// fake frames at each device and reads the CSI of the compelled
// ACKs. Here a person walks around near one of three unmodified
// devices and the hub localises the motion.
//
// Run: go run ./examples/sensing
package main

import (
	"fmt"
	"strings"

	"politewifi/internal/experiments"
)

func main() {
	r := experiments.Sensing(2026)
	fmt.Print(r.Render())

	fmt.Println("\nper-device motion score:")
	for _, d := range r.Devices {
		bar := strings.Repeat("▇", int(d.MotionStd*120))
		fmt.Printf("  %-12s %s\n", d.Name, bar)
	}
	if r.Localized {
		fmt.Printf("\n→ the hub needed software changes on itself only; the %q, with stock\n",
			r.Devices[r.MotionDevice].Name)
		fmt.Println("  firmware, acted as the motion sensor.")
	}
}
