// Wardrive with the paper's three-thread pipeline (§3), run with real
// goroutines.
//
// The paper's measurement program is "a multi-threaded program using
// the Scapy library": a discovery thread sniffing for unseen MACs, an
// injector thread sending fake frames to the target list, and a
// verifier thread matching the ACKs back. This example runs that
// exact pipeline as three goroutines connected by channels, bridged
// onto the deterministic simulation with internal/rt, against a small
// neighbourhood — then prints the census.
//
// Run: go run ./examples/wardrive        (use -race to see it's clean)
package main

import (
	"fmt"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/rt"
)

func main() {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(2020)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.3}, CaptureMarginDB: 10,
	})

	// A street with five homes: AP + one client each.
	for i := 0; i < 5; i++ {
		apMAC := dot11.MustMAC(fmt.Sprintf("f2:6e:0b:00:%02x:01", i))
		clMAC := dot11.MustMAC(fmt.Sprintf("ec:fa:bc:00:%02x:02", i))
		pos := radio.Position{X: float64(i) * 22}
		mac.New(medium, rng.Fork(), mac.Config{
			Name: fmt.Sprintf("ap%d", i), Addr: apMAC, Role: mac.RoleAP,
			Profile: mac.ProfileGenericAP, SSID: fmt.Sprintf("Home-%d", i),
			Position: pos, Band: phy.Band2GHz, Channel: 6,
		})
		cl := mac.New(medium, rng.Fork(), mac.Config{
			Name: fmt.Sprintf("cl%d", i), Addr: clMAC, Role: mac.RoleClient,
			Profile: mac.ProfileGenericClient, SSID: fmt.Sprintf("Home-%d", i),
			Position: radio.Position{X: pos.X + 4}, Band: phy.Band2GHz, Channel: 6,
		})
		cl.Associate(apMAC, nil)
		sched.Every(180*eventsim.Millisecond, func() {
			if cl.Associated() {
				cl.SendData(apMAC, []byte("telemetry"))
			}
		})
	}

	// The roof-mounted dongle.
	attacker := core.NewAttacker(medium, radio.Position{X: 44, Y: 12},
		phy.Band2GHz, 6, core.DefaultFakeMAC)

	// From here on, the simulation belongs to the bridge; the three
	// pipeline goroutines interact with it only through rt.Bridge.
	bridge := rt.NewBridge(sched)
	scanner := core.NewConcurrentScanner(attacker, bridge)

	fmt.Println("running discovery/injector/verifier goroutine pipeline…")
	tally := scanner.Run(5 * eventsim.Second)

	fmt.Printf("\n%-20s %-8s %-10s %7s %6s %s\n", "MAC", "Kind", "SSID", "Probes", "ACKs", "Polite?")
	for _, d := range scanner.Devices() {
		fmt.Printf("%-20s %-8s %-10s %7d %6d %v\n",
			d.MAC, d.Kind, d.SSID, d.Probes, d.Acks, d.Responded)
	}
	fmt.Printf("\n%d devices (%d clients, %d APs) — %d responded to fake frames (%.0f%%)\n",
		tally.Total, tally.Clients, tally.APs, tally.TotalResponded,
		100*float64(tally.TotalResponded)/float64(maxInt(1, tally.Total)))
	fmt.Println("the paper found the same for all 5,328 devices it met; run cmd/wardrive for the full census.")
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
