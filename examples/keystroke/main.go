// Keystroke inference without a rogue AP (paper §4.1, Figure 5).
//
// The attacker sits in another room, injects 150 fake frames per
// second at a tablet it has never met, and measures the CSI of the
// ACKs the tablet is forced to transmit. As the user approaches,
// picks the tablet up, holds it and types, the CSI amplitude tells
// the phases apart — and a tiny classifier labels held-out windows.
//
// Run: go run ./examples/keystroke
package main

import (
	"fmt"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

func main() {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(7)
	medium := radio.NewMedium(sched, rng.Fork(), radio.DefaultConfig())

	apMAC := dot11.MustMAC("f2:6e:0b:00:00:01")
	tabletMAC := dot11.MustMAC("f2:6e:0b:12:34:56")
	mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "a very secret passphrase",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet := mac.New(medium, rng.Fork(), mac.Config{
		Name: "tablet", Addr: tabletMAC, Role: mac.RoleClient,
		Profile: mac.ProfileMarvell88W8897,
		SSID:    "HomeNet", Passphrase: "a very secret passphrase",
		Position: radio.Position{X: 8}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet.Associate(apMAC, nil)
	sched.RunFor(300 * eventsim.Millisecond)

	// ESP32-class sensing attacker in the next room (the paper's $5
	// module). It knows nothing about the network.
	attacker := core.NewAttacker(medium, radio.Position{X: 0, Y: 4}, phy.Band2GHz, 6, core.DefaultFakeMAC)

	// The physical world between them: walls, and a user following
	// the Figure 5 script (approach at 9 s, pick up, hold, type).
	scene := csi.NewScene(rng.Fork())
	timeline := csi.Figure5Timeline(rng.Fork())

	sensor := core.NewCSISensor(attacker, tabletMAC, scene, timeline)
	series := sensor.RunFor(150, 45*eventsim.Second)
	fmt.Printf("collected %d CSI samples at %.1f Hz (loss %.1f%%)\n\n",
		len(series), series.MeanRate(), 100*sensor.LossRate())

	// Per-phase statistics on subcarrier 17 (the one the paper plots).
	amp := csi.Hampel(series.Amplitudes(17), 5, 3)
	times := series.Times()
	fmt.Printf("%-6s %-10s %12s\n", "t", "activity", "fluctuation")
	for sec := 0; sec < 45; sec += 3 {
		var w []float64
		for i, t := range times {
			if t >= float64(sec) && t < float64(sec+3) {
				w = append(w, amp[i])
			}
		}
		if len(w) == 0 {
			continue
		}
		norm := csi.Std(w) / csi.Mean(w)
		bar := ""
		for i := 0; i < int(norm*300) && i < 50; i++ {
			bar += "▇"
		}
		fmt.Printf("%3ds   %-10s %12.4f %s\n", sec, timeline.Label(float64(sec)+1), norm, bar)
	}

	// Typing windows carry high-frequency energy holding lacks — the
	// lever existing keystroke-inference attacks (WindTalker) pull.
	hold := window(amp, times, 23, 31)
	typing := window(amp, times, 33, 41)
	fh := csi.Extract(hold, 150)
	ft := csi.Extract(typing, 150)
	fmt.Printf("\nhigh-band (>2.5 Hz) spectral fraction: hold %.3f vs typing %.3f\n",
		fh.HighBand, ft.HighBand)
	fmt.Println("→ keystroke activity is visible to an attacker with no network access at all.")
}

func window(amp, times []float64, lo, hi float64) []float64 {
	var w []float64
	for i, t := range times {
		if t >= lo && t < hi {
			w = append(w, amp[i])
		}
	}
	return w
}
