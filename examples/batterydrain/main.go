// Battery-drain attack on a power-saving IoT device (paper §4.2,
// Figure 6).
//
// The victim is an ESP8266-class module that dozes between beacons,
// averaging ~10 mW. The attacker bombards it with fake frames: above
// ~10 frames/s the radio can never doze again, and every frame costs
// an ACK transmission. We sweep the attack rate, reproduce the power
// curve, and translate the peak draw into camera battery lifetimes.
//
// Run: go run ./examples/batterydrain
package main

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/power"
	"politewifi/internal/radio"
)

func measure(rate float64) float64 {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(9 + int64(rate))
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	apMAC := dot11.MustMAC("f2:6e:0b:00:00:01")
	victimMAC := dot11.MustMAC("ec:fa:bc:00:00:02")
	mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "iot", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	victim := mac.New(medium, rng.Fork(), mac.Config{
		Name: "esp8266", Addr: victimMAC, Role: mac.RoleClient,
		Profile: mac.ProfileESP8266,
		SSID:    "iot", Position: radio.Position{X: 4}, Band: phy.Band2GHz, Channel: 6,
	})
	victim.Associate(apMAC, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	victim.EnablePowerSave()
	sched.RunFor(500 * eventsim.Millisecond)

	attacker := core.NewAttacker(medium, radio.Position{X: 10}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	meter := power.Attach(victim, power.ESP8266)
	drainer := core.NewDrainer(attacker, victimMAC)

	drainer.Start(rate)
	sched.RunFor(2 * eventsim.Second) // reach steady state
	meter.Reset()
	sched.RunFor(15 * eventsim.Second)
	drainer.Stop()
	return meter.MeanPowerMW()
}

func main() {
	fmt.Println("battery-drain attack on an ESP8266 in power-save mode")
	fmt.Printf("%10s %12s\n", "rate (fps)", "power (mW)")
	var baseline, peak float64
	for _, rate := range []float64{0, 5, 10, 50, 100, 300, 600, 900} {
		mw := measure(rate)
		if rate == 0 {
			baseline = mw
		}
		if rate == 900 {
			peak = mw
		}
		fmt.Printf("%10.0f %12.1f %s\n", rate, mw, strings.Repeat("█", int(mw/10)))
	}
	fmt.Printf("\namplification: %.0fx (paper: 35x)\n", peak/baseline)
	fmt.Println("\nimpact on battery-powered cameras at the 900 fps draw:")
	for _, b := range []power.Battery{power.LogitechCircle2, power.BlinkXT2} {
		fmt.Printf("  %-30s %6.1f h (advertised: months to years)\n",
			b.String(), b.LifetimeHours(peak))
	}
}
