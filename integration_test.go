// The whole paper in one test: a single simulated world in which every
// headline claim is exercised end to end, in the order the paper makes
// them. Complements bench_test.go (which runs each experiment harness
// in isolation).
package politewifi_test

import (
	"testing"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/power"
	"politewifi/internal/radio"
	"politewifi/internal/trace"
)

func TestPaperEndToEnd(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(4242)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})

	apAddr := dot11.MustMAC("f2:6e:0b:00:00:01")
	tabletAddr := dot11.MustMAC("f2:6e:0b:12:34:56")
	iotAddr := dot11.MustMAC("ec:fa:bc:00:00:02")

	// A WPA2 home network: deauthing AP, a tablet, and a power-saving
	// IoT module.
	ap := mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileQualcommIPQ4019,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet := mac.New(medium, rng.Fork(), mac.Config{
		Name: "tablet", Addr: tabletAddr, Role: mac.RoleClient, Profile: mac.ProfileMarvell88W8897,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	iot := mac.New(medium, rng.Fork(), mac.Config{
		Name: "iot", Addr: iotAddr, Role: mac.RoleClient, Profile: mac.ProfileESP8266,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: -4}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet.Associate(apAddr, nil)
	iot.Associate(apAddr, nil)
	sched.RunFor(400 * eventsim.Millisecond)
	if !tablet.Associated() || !iot.Associated() {
		t.Fatal("setup: association failed")
	}

	// The attacker: outside the network, no keys, plus a Wireshark.
	attacker := core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	capture := &trace.Capture{}
	capture.Attach(medium.NewRadio("sniffer", radio.Position{X: 8}, phy.Band2GHz, 6))

	// §2 / Figure 2: one fake frame → one ACK to the fake MAC at SIFS.
	probe := core.ProbeSync(attacker, tabletAddr, core.ProbeNull, 1, eventsim.Millisecond)
	if !probe.Responded {
		t.Fatal("§2: tablet did not ACK the fake frame")
	}
	if gap := probe.FirstGap.Micros(); gap < 10 || gap > 11 {
		t.Fatalf("§2: ACK gap %.2f µs, want SIFS", gap)
	}

	// §2.1 / Figure 3: the AP deauths the stranger yet still ACKs; a
	// blocklist changes nothing.
	apProbe := core.ProbeSync(attacker, apAddr, core.ProbeNull, 1, eventsim.Millisecond)
	sched.RunFor(100 * eventsim.Millisecond)
	if !apProbe.Responded || attacker.DeauthsForMe == 0 {
		t.Fatalf("§2.1: acked=%v deauths=%d", apProbe.Responded, attacker.DeauthsForMe)
	}
	ap.Block(attacker.MAC)
	if r := core.ProbeSync(attacker, apAddr, core.ProbeNull, 2, eventsim.Millisecond); !r.Responded {
		t.Fatal("§2.1: blocklist suppressed the ACK")
	}

	// §2.2: RTS → CTS, the unpreventable variant.
	if r := core.ProbeSync(attacker, tabletAddr, core.ProbeRTS, 2, eventsim.Millisecond); !r.Responded {
		t.Fatal("§2.2: no CTS for fake RTS")
	}
	for _, row := range core.FeasibilityStudy(500) {
		if row.MeetsSIFS {
			t.Fatal("§2.2: a decoder claims to meet SIFS")
		}
	}

	// §4.1 / Figure 5: CSI of forced ACKs separates user activity.
	scene := csi.NewScene(rng.Fork())
	tl := (&csi.Timeline{}).Add(5, 10, csi.Typing(rng.Fork()))
	sensor := core.NewCSISensor(attacker, tabletAddr, scene, tl)
	series := sensor.RunFor(150, 12*eventsim.Second)
	amp := csi.Hampel(series.Amplitudes(17), 5, 3)
	quiet := amp[:4*150]
	typing := amp[6*150 : 9*150]
	if csi.Std(typing)/csi.Mean(typing) < 3*csi.Std(quiet)/csi.Mean(quiet) {
		t.Fatal("§4.1: typing not separable from quiet in ACK CSI")
	}

	// §4.2 / Figure 6 (single point): 900 fps pins the IoT module
	// awake at ~35× its idle draw.
	iot.EnablePowerSave()
	sched.RunFor(500 * eventsim.Millisecond)
	meter := power.Attach(iot, power.ESP8266)
	meter.Reset()
	sched.RunFor(5 * eventsim.Second)
	baseline := meter.MeanPowerMW()
	drainer := core.NewDrainer(attacker, iotAddr)
	drainer.Start(900)
	sched.RunFor(2 * eventsim.Second)
	meter.Reset()
	sched.RunFor(5 * eventsim.Second)
	drainer.Stop()
	attacked := meter.MeanPowerMW()
	if amp := attacked / baseline; amp < 20 || amp > 60 {
		t.Fatalf("§4.2: amplification %.0fx (%.1f → %.1f mW), want ~35x", amp, baseline, attacked)
	}
	if h := power.LogitechCircle2.LifetimeHours(attacked); h < 5 || h > 9 {
		t.Fatalf("§4.2: Circle 2 lifetime %.1f h, want ~6.7", h)
	}

	// Wi-Peep direction: range the tablet from ACK timing.
	sched.RunFor(200 * eventsim.Millisecond)
	tof := core.ProbeSync(attacker, tabletAddr, core.ProbeNull, 10, 2*eventsim.Millisecond)
	if d := core.RangeFromGaps(phy.Band2GHz, tof.Gaps); d < 5 || d > 9 {
		t.Fatalf("localization: estimated %.1f m, true 7 m", d)
	}

	// The capture holds the whole story, Wireshark-readable.
	sum := capture.Summary()
	if sum["Acknowledgement"] == 0 || sum["Deauthentication"] == 0 ||
		sum["Null function (No data)"] == 0 || sum["Clear-to-send"] == 0 {
		t.Fatalf("capture summary incomplete: %v", sum)
	}
}
