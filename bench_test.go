// Benchmark harness: one testing.B target per paper table/figure
// (E1–E9, see DESIGN.md §4) plus the ablation benches of DESIGN.md
// §5. Custom metrics carry the experiment's headline number so a
// bench run doubles as a results table:
//
//	go test -bench=. -benchmem
package politewifi_test

import (
	"io"
	"testing"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/experiments"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/power"
	"politewifi/internal/radio"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

const benchSeed = 20201104

// --- E1: Figure 2 ------------------------------------------------------

func BenchmarkFigure2(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure2(benchSeed + int64(i))
		if !r.Acked {
			b.Fatal("fake frame not acknowledged")
		}
		gap = r.GapMicros
	}
	b.ReportMetric(gap, "ack-gap-µs")
}

// --- E2: Table 1 --------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	var acks int
	for i := 0; i < b.N; i++ {
		r := experiments.Table1(benchSeed + int64(i))
		if !r.AllPolite {
			b.Fatal("a chipset refused to ACK")
		}
		acks = 0
		for _, row := range r.Rows {
			acks += row.Acks
		}
	}
	b.ReportMetric(float64(acks), "acks/5-devices")
}

// --- E3: Figure 3 -------------------------------------------------------

func BenchmarkFigure3(b *testing.B) {
	var deauths int
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(benchSeed + int64(i))
		if !r.AckedDespite || !r.AckedBlocklist {
			b.Fatal("AP stopped ACKing")
		}
		deauths = r.DeauthBursts
	}
	b.ReportMetric(float64(deauths), "deauths")
}

// --- E4: §2.2 SIFS analysis ---------------------------------------------

func BenchmarkSIFS(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.SIFSAnalysis(benchSeed + int64(i))
		worst = 0
		for _, row := range r.Rows {
			if row.Ratio > worst {
				worst = row.Ratio
			}
		}
	}
	b.ReportMetric(worst, "max-decode/SIFS")
}

// --- E5: Table 2 (scaled census so one iteration stays ~100 ms) ----------

func BenchmarkTable2(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchSeed+int64(i), 0.02)
		rate = r.ResponseRate
	}
	b.ReportMetric(rate*100, "respond-%")
}

// BenchmarkTable2FullScale runs the complete 5,328-device drive; it
// is the paper's headline measurement and takes ~2 s per iteration.
func BenchmarkTable2FullScale(b *testing.B) {
	if testing.Short() {
		b.Skip("full census in -short mode")
	}
	var total, responded int
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchSeed, 1.0)
		total, responded = r.Run.Total(), r.Run.TotalResponded()
	}
	b.ReportMetric(float64(total), "devices")
	b.ReportMetric(float64(responded), "responded")
}

// BenchmarkWardrive contrasts the sequential drive (Workers: 1) with
// the sharded worker pool (Workers: 0 = all cores) — the scaling
// measurement behind BENCH_wardrive.json. Short mode shrinks the
// census so the CI smoke job (`go test -run '^$' -bench Wardrive
// -benchtime 1x -short .`) compiles and exercises the parallel path
// in seconds; the committed artifact is regenerated at scale 1.0
// (see EXPERIMENTS.md).
func BenchmarkWardrive(b *testing.B) {
	scale := 1.0
	if testing.Short() {
		scale = 0.05
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"parallel", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var total, responded int
			for i := 0; i < b.N; i++ {
				cfg := world.DefaultConfig()
				cfg.Seed = benchSeed
				cfg.Scale = scale
				cfg.Workers = bench.workers
				r := world.Run(cfg)
				total, responded = r.Total(), r.TotalResponded()
			}
			b.ReportMetric(float64(total), "devices")
			b.ReportMetric(float64(responded), "responded")
		})
	}
}

// BenchmarkWardriveQueue contrasts the timing-wheel scheduler with
// the legacy binary heap on the same sequential drive — the
// wheel-vs-heap samples in BENCH_wardrive.json. Observational
// equivalence (census, telemetry, stream bytes) is asserted by
// TestQueueHeapWheelDifferential; this measures only wall time.
func BenchmarkWardriveQueue(b *testing.B) {
	scale := 1.0
	if testing.Short() {
		scale = 0.05
	}
	for _, bench := range []struct {
		name string
		kind eventsim.QueueKind
	}{
		{"wheel", eventsim.QueueWheel},
		{"heap", eventsim.QueueLegacyHeap},
	} {
		b.Run(bench.name, func(b *testing.B) {
			var total int
			for i := 0; i < b.N; i++ {
				cfg := world.DefaultConfig()
				cfg.Seed = benchSeed
				cfg.Scale = scale
				cfg.Workers = 1
				cfg.Queue = bench.kind
				total = world.Run(cfg).Total()
			}
			b.ReportMetric(float64(total), "devices")
		})
	}
}

// --- E6: Figure 5 --------------------------------------------------------

func BenchmarkFigure5(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(benchSeed + int64(i))
		if !r.Separable {
			b.Fatal("activity phases not separable")
		}
		acc = r.ClassifierAccuracy
	}
	b.ReportMetric(acc*100, "classifier-%")
}

// --- E7: Figure 6 --------------------------------------------------------

func BenchmarkFigure6(b *testing.B) {
	var amp float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(benchSeed+int64(i), 6*eventsim.Second)
		amp = r.Amplification
	}
	b.ReportMetric(amp, "power-amplification-x")
}

// --- E8: battery arithmetic ----------------------------------------------

func BenchmarkBatteryLife(b *testing.B) {
	var hours float64
	for i := 0; i < b.N; i++ {
		r := experiments.BatteryLife(360)
		hours = r.Rows[0].LifetimeHours
	}
	b.ReportMetric(hours, "circle2-hours")
}

// --- E9: single-device sensing --------------------------------------------

func BenchmarkSensing(b *testing.B) {
	var localized float64
	for i := 0; i < b.N; i++ {
		r := experiments.Sensing(benchSeed + int64(i))
		if r.Localized {
			localized++
		}
	}
	b.ReportMetric(localized/float64(b.N)*100, "localised-%")
}

// --- EX1: 802.11w footnote-2 study -----------------------------------------

func BenchmarkPMFStudy(b *testing.B) {
	var forgeriesAcked float64
	for i := 0; i < b.N; i++ {
		r := experiments.PMFStudy(benchSeed + int64(i))
		forgeriesAcked = 0
		for _, row := range r.Rows {
			if row.ForgeryAcked {
				forgeriesAcked++
			}
		}
	}
	b.ReportMetric(forgeriesAcked, "forgeries-acked")
}

// --- EX2: breathing-rate recovery -------------------------------------------

func BenchmarkVitalSigns(b *testing.B) {
	var err float64
	for i := 0; i < b.N; i++ {
		r := experiments.VitalSigns(benchSeed + int64(i))
		err = r.MeanError
	}
	b.ReportMetric(err, "mean-bpm-error")
}

// --- EX3: Wi-Peep-style localization -----------------------------------------

func BenchmarkLocalization(b *testing.B) {
	var tofErr float64
	for i := 0; i < b.N; i++ {
		r := experiments.Localization(benchSeed + int64(i))
		tofErr = r.ToFMeanErr
	}
	b.ReportMetric(tofErr, "tof-mean-error-m")
}

// --- EX4: occupancy detection -----------------------------------------------

func BenchmarkOccupancy(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r := experiments.Occupancy(benchSeed + int64(i))
		acc = r.Accuracy
	}
	b.ReportMetric(acc*100, "occupancy-accuracy-%")
}

// BenchmarkSensingRateSweep reports the rate at which sensing
// accuracy saturates — the ablation behind the paper's 100–1000
// pkt/s guidance.
func BenchmarkSensingRateSweep(b *testing.B) {
	var sat float64
	for i := 0; i < b.N; i++ {
		r := experiments.SensingRateSweep(benchSeed + int64(i))
		sat = r.SaturationHz
	}
	b.ReportMetric(sat, "saturation-hz")
}

// BenchmarkDeviceSweep reports the worst-case attacked lifetime over
// the §4.2 future-work device classes.
func BenchmarkDeviceSweep(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.DeviceSweep(benchSeed + int64(i))
		worst = 1e12
		for _, row := range r.Rows {
			if row.LifetimeH < worst {
				worst = row.LifetimeH
			}
		}
	}
	b.ReportMetric(worst, "worst-lifetime-h")
}

// --- Ablations (DESIGN.md §5) ---------------------------------------------

// benchLab builds the standard one-victim network for ablations.
type benchLab struct {
	sched    *eventsim.Scheduler
	victim   *mac.Station
	attacker *core.Attacker
}

func newBenchLab(seed int64, profile mac.ChipsetProfile, powerSave bool) *benchLab {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(seed)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	apAddr := dot11.MustMAC("f2:6e:0b:00:00:01")
	victimAddr := dot11.MustMAC("f2:6e:0b:12:34:56")
	mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "n", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	victim := mac.New(medium, rng.Fork(), mac.Config{
		Name: "victim", Addr: victimAddr, Role: mac.RoleClient, Profile: profile,
		SSID: "n", Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	victim.Associate(apAddr, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	if powerSave {
		victim.EnablePowerSave()
		sched.RunFor(500 * eventsim.Millisecond)
	}
	attacker := core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	return &benchLab{sched: sched, victim: victim, attacker: attacker}
}

// BenchmarkAckPath contrasts the standard ACK-at-PHY receive path
// with the hypothetical decrypt-then-ACK station: the metric is the
// fraction of fake probes answered (1.0 vs 0.0).
func BenchmarkAckPath(b *testing.B) {
	cases := []struct {
		name    string
		profile mac.ChipsetProfile
	}{
		{"phy-ack", mac.ProfileGenericClient},
		{"validate-then-ack", mac.ProfileValidating},
	}
	victimAddr := dot11.MustMAC("f2:6e:0b:12:34:56")
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				l := newBenchLab(benchSeed+int64(i), c.profile, false)
				res := core.ProbeSync(l.attacker, victimAddr, core.ProbeNull, 10, 3*eventsim.Millisecond)
				rate = res.ResponseRate()
			}
			b.ReportMetric(rate*100, "fake-ack-%")
		})
	}
}

// BenchmarkRTSCTS contrasts data-frame probing with RTS/CTS probing
// against the validating station — the §2.2 point that RTS defeats
// even a perfect validator.
func BenchmarkRTSCTS(b *testing.B) {
	victimAddr := dot11.MustMAC("f2:6e:0b:12:34:56")
	for _, mode := range []core.ProbeMode{core.ProbeNull, core.ProbeRTS} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				l := newBenchLab(benchSeed+int64(i), mac.ProfileValidating, false)
				res := core.ProbeSync(l.attacker, victimAddr, mode, 10, 3*eventsim.Millisecond)
				rate = res.ResponseRate()
			}
			b.ReportMetric(rate*100, "response-%")
		})
	}
}

// BenchmarkDrainPowerSave contrasts the drain attack against a
// power-saving victim (huge amplification) and an always-on victim
// (marginal increase) — power save is the attack's lever.
func BenchmarkDrainPowerSave(b *testing.B) {
	victimAddr := dot11.MustMAC("f2:6e:0b:12:34:56")
	for _, ps := range []bool{true, false} {
		name := "ps-off"
		if ps {
			name = "ps-on"
		}
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				// Baseline.
				l := newBenchLab(benchSeed+int64(i), mac.ProfileESP8266, ps)
				m := power.Attach(l.victim, power.ESP8266)
				m.Reset()
				l.sched.RunFor(5 * eventsim.Second)
				base := m.MeanPowerMW()
				// Under attack.
				d := core.NewDrainer(l.attacker, victimAddr)
				d.Start(900)
				l.sched.RunFor(eventsim.Second)
				m.Reset()
				l.sched.RunFor(5 * eventsim.Second)
				d.Stop()
				ratio = m.MeanPowerMW() / base
			}
			b.ReportMetric(ratio, "amplification-x")
		})
	}
}

// BenchmarkScannerPipeline measures the wardrive scanner's verified
// devices per simulated second.
func BenchmarkScannerPipeline(b *testing.B) {
	var verified float64
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchSeed+int64(i), 0.01)
		verified = float64(r.Run.TotalResponded())
	}
	b.ReportMetric(verified, "devices-verified")
}

// BenchmarkCSIPipeline contrasts activity separability on raw CSI
// amplitudes versus the Hampel+smoothing pipeline.
func BenchmarkCSIPipeline(b *testing.B) {
	rng := eventsim.NewRNG(benchSeed)
	scene := csi.NewScene(rng.Fork())
	tl := csi.Figure5Timeline(rng.Fork())
	series := scene.Collect(tl, 150, 45)
	raw := series.Amplitudes(17)
	for _, filtered := range []bool{false, true} {
		name := "raw"
		if filtered {
			name = "hampel+smooth"
		}
		b.Run(name, func(b *testing.B) {
			var sep float64
			for i := 0; i < b.N; i++ {
				x := raw
				if filtered {
					x = csi.MovingAverage(csi.Hampel(raw, 5, 3), 2)
				}
				ground := x[0 : 9*150]
				pickup := x[13*150 : 22*150]
				sep = (csi.Std(pickup) / csi.Mean(pickup)) / (csi.Std(ground) / csi.Mean(ground))
			}
			b.ReportMetric(sep, "pickup/ground-separation")
		})
	}
}

// --- Telemetry overhead -------------------------------------------------

// BenchmarkTelemetryOverhead runs the full wardrive pipeline with the
// metrics registry detached ("off"), attached ("on"), and attached
// with the flight-recorder stream emitting per-stop NDJSON records
// ("stream"). The deltas are the end-to-end cost of instrumentation —
// counters, gauges, per-origin scheduler accounting — and of the
// per-stop snapshot+marshal the stream adds, both targeted at <5%.
func BenchmarkTelemetryOverhead(b *testing.B) {
	for _, mode := range []string{"off", "on", "stream"} {
		b.Run(mode, func(b *testing.B) {
			var verified float64
			for i := 0; i < b.N; i++ {
				cfg := world.DefaultConfig()
				cfg.Seed = benchSeed + int64(i)
				cfg.Scale = 0.01
				if mode != "off" {
					cfg.Metrics = telemetry.NewRegistry(nil)
				}
				if mode == "stream" {
					cfg.Stream = stream.NewWriter(io.Discard)
				}
				r := experiments.Table2WithConfig(cfg)
				verified = float64(r.Run.TotalResponded())
				if mode != "off" {
					if c := cfg.Metrics.Snapshot().Counter("pipeline.devices_discovered"); c == nil || c.Value == 0 {
						b.Fatal("instrumented run recorded no discoveries")
					}
				}
				if mode == "stream" {
					if cfg.Stream.Count() != r.Run.Stops || cfg.Stream.Err() != nil {
						b.Fatalf("stream wrote %d/%d records (err %v)",
							cfg.Stream.Count(), r.Run.Stops, cfg.Stream.Err())
					}
				}
			}
			b.ReportMetric(verified, "devices-verified")
		})
	}
}

// --- Micro: the core exchange -------------------------------------------

// BenchmarkFakeFrameExchange measures one full fake-frame→ACK round
// trip through codec, medium and MAC.
func BenchmarkFakeFrameExchange(b *testing.B) {
	victimAddr := dot11.MustMAC("f2:6e:0b:12:34:56")
	l := newBenchLab(benchSeed, mac.ProfileGenericClient, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.attacker.InjectNull(victimAddr)
		// One exchange fits in 150 µs: 30 µs frame + SIFS + 28 µs ACK.
		l.sched.RunFor(150 * eventsim.Microsecond)
	}
	if l.victim.Stats.AcksSent == 0 {
		b.Fatal("no ACKs")
	}
}
