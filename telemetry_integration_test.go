// Cross-checks the two independent observers of the same simulated
// air: the pcap-style sniffer capture (package trace) and the
// telemetry registry the layers stamp directly. On a quiet medium
// every frame the sniffer records was also counted by the medium and
// the MAC, so the two views must agree exactly.
package politewifi_test

import (
	"testing"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/telemetry"
	"politewifi/internal/trace"
)

func TestCaptureAgreesWithTelemetry(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(42)
	medium := radio.NewMedium(sched, rng.Fork(), radio.DefaultConfig())

	reg := telemetry.NewRegistry(sched.ObservedNow)
	telemetry.AttachScheduler(reg, sched, false)
	medium.SetMetrics(radio.NewMetrics(reg))
	macMx := mac.NewMetrics(reg)

	apMAC := dot11.MustMAC("f2:6e:0b:00:00:01")
	tabletMAC := dot11.MustMAC("f2:6e:0b:12:34:56")
	ap := mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	ap.SetMetrics(macMx)
	tablet := mac.New(medium, rng.Fork(), mac.Config{
		Name: "tablet", Addr: tabletMAC, Role: mac.RoleClient, Profile: mac.ProfileMarvell88W8897,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	tablet.SetMetrics(macMx)
	tablet.Associate(apMAC, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	if !tablet.Associated() {
		t.Fatal("tablet failed to associate")
	}

	attacker := core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	attacker.InstrumentInto(reg)
	capture := &trace.Capture{}
	sniffer := medium.NewRadio("sniffer", radio.Position{X: 8}, phy.Band2GHz, 6)
	capture.Attach(sniffer)
	capture.CountsInto(reg)

	const probes = 10
	res := core.ProbeSync(attacker, tabletMAC, core.ProbeNull, probes, 3*eventsim.Millisecond)
	sched.RunFor(5 * eventsim.Millisecond)
	if !res.Responded {
		t.Fatalf("probe round failed: %+v", res)
	}

	rep := reg.Snapshot()

	// The sniffer was attached after association, so on the quiet
	// medium it saw exactly the probe round: N nulls + N ACKs.
	sum := capture.Summary()
	if sum["Null function (No data)"] != probes {
		t.Fatalf("capture nulls = %d, want %d (summary %v)", sum["Null function (No data)"], probes, sum)
	}
	if c := rep.Counter("capture.frames.acknowledgement"); c == nil || c.Value != uint64(sum["Acknowledgement"]) {
		t.Fatalf("capture.frames.acknowledgement = %+v vs Summary %d", c, sum["Acknowledgement"])
	}
	if c := rep.Counter("capture.frames_total"); c == nil || int(c.Value) != capture.Len() {
		t.Fatalf("capture.frames_total = %+v vs Len %d", c, capture.Len())
	}

	// ACKs the sniffer saw during the probe round == ACKs the tablet's
	// MAC counted for the attacker's data-class nulls plus what the
	// attacker itself tallied.
	acksSniffed := uint64(sum["Acknowledgement"])
	if got := rep.Counter("core.acks_to_me").Value; got != acksSniffed {
		t.Fatalf("attacker saw %d ACKs, sniffer saw %d", got, acksSniffed)
	}
	// mac.acks.* accumulates since station creation (association
	// handshake ACKs included), so the probe round's contribution is
	// the data-class ACK count minus the association-era data ACKs —
	// on this quiet network the nulls are the only data-class frames
	// ACKed after warm-up. Cross-check totals rather than deltas: the
	// sniffed ACK count can never exceed what the MACs sent.
	macAcks := rep.Counter("mac.acks.data").Value + rep.Counter("mac.acks.mgmt").Value +
		rep.Counter("mac.acks.other").Value
	if acksSniffed > macAcks {
		t.Fatalf("sniffer saw %d ACKs but MACs only sent %d", acksSniffed, macAcks)
	}
	if rep.Counter("mac.acks.data").Value < uint64(probes) {
		t.Fatalf("mac.acks.data = %d, want ≥%d (one per probe)", rep.Counter("mac.acks.data").Value, probes)
	}

	// Medium-level accounting: every delivery the sniffer logged is a
	// subset of the medium's deliveries (sniffer is one of several
	// receivers), and the probe round's transmissions are included.
	if med := rep.Counter("medium.deliveries"); med == nil || int(med.Value) < capture.Len() {
		t.Fatalf("medium.deliveries = %+v < capture %d", rep.Counter("medium.deliveries"), capture.Len())
	}
	if tx := rep.Counter("medium.transmissions"); tx == nil || tx.Value < 2*probes {
		t.Fatalf("medium.transmissions = %+v, want ≥%d", tx, 2*probes)
	}
}
