// Command politevet is the repository's determinism and
// 802.11-arithmetic vet tool. It enforces, mechanically, the
// invariants the bit-identical wardrive census rests on:
//
//	wallclock    no time.Now/Sleep/... outside cmd/ UX paths
//	globalrand   no global math/rand draws, no *rand.Rand shared into goroutines
//	sortedrange  no emitting from inside a range-over-map loop
//	durwrap      no unguarded unsigned narrowing/subtraction of durations
//	simsleep     no busy-wait polling without an event-queue yield
//
// Sanctioned exceptions carry a //politevet:allow <analyzer>(<reason>)
// directive; the reason is mandatory. See DESIGN.md §5e.
//
// Two modes:
//
//	politevet ./...                          standalone, loads packages itself
//	go vet -vettool=$(which politevet) ./... driven by the go command
//
// The second form is what CI runs; both report identical findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"politewifi/internal/lint"
	"politewifi/internal/lint/load"
	"politewifi/internal/lint/unit"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("politevet", flag.ExitOnError)
	fs.Usage = usage(fs)
	versionFlag := fs.String("V", "", "print version and exit (go vet protocol; use -V=full)")
	flagsFlag := fs.Bool("flags", false, "print a JSON description of supported flags and exit (go vet protocol)")
	testsFlag := fs.Bool("tests", true, "standalone mode: also analyze test files")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	fs.Parse(os.Args[1:])

	switch {
	case *versionFlag != "":
		if err := unit.PrintVersion(os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	case *flagsFlag:
		if err := unit.PrintFlags(os.Stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	keep := map[string]bool{}
	for name, on := range enabled {
		keep[name] = *on
	}

	args := fs.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// go vet protocol: analyze one package unit.
		n, err := unit.RunConfig(args[0], keep, os.Stderr)
		if err != nil {
			return fail(err)
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	if len(args) == 0 {
		fs.Usage()
		return 2
	}

	pkgs, err := load.Packages("", *testsFlag, args...)
	if err != nil {
		return fail(err)
	}
	var analyzers = lint.Analyzers()
	kept := analyzers[:0:0]
	for _, a := range analyzers {
		if keep[a.Name] {
			kept = append(kept, a)
		}
	}

	exit := 0
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "politevet: %s: typecheck: %v\n", pkg.ImportPath, terr)
			exit = 1
		}
		findings, err := lint.RunPackage(pkg, kept)
		if err != nil {
			return fail(err)
		}
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
			exit = 2
		}
	}
	return exit
}

func fail(err error) int {
	fmt.Fprintf(os.Stderr, "politevet: %v\n", err)
	return 1
}

func usage(fs *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(fs.Output(), `usage:
  politevet [flags] ./...                      analyze packages standalone
  go vet -vettool=$(which politevet) ./...     run under the go command

politevet enforces the simulator's determinism invariants; see
DESIGN.md §5e. Suppress a sanctioned finding with a trailing
//politevet:allow <analyzer>(<reason>) directive — the reason is
mandatory.

flags:
`)
		fs.PrintDefaults()
	}
}
