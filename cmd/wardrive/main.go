// Command wardrive runs the paper's §3 large-scale study: a simulated
// city seeded with the exact Table 2 vendor census, scanned by a
// vehicle-mounted attacker running the discovery/injection/
// verification pipeline.
//
// Usage:
//
//	wardrive [-seed N] [-scale F] [-stop-size N] [-dwell MS] [-workers N] [-metrics FILE] [-faults SPEC]
//
// Stops are RF-independent neighbourhoods, so the drive shards them
// across -workers goroutines (default: all cores). The census is
// bit-identical for every worker count; see DESIGN.md.
//
// -faults injects deterministic channel impairments, e.g.
// "loss=0.3,ack=0.1,jam=0.2,deaf=0.1" (see internal/faults). The
// faulted census is still bit-identical across worker counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"politewifi/internal/eventsim"
	"politewifi/internal/experiments"
	"politewifi/internal/faults"
	"politewifi/internal/telemetry"
	"politewifi/internal/world"
)

func main() {
	seed := flag.Int64("seed", 20201104, "simulation seed")
	scale := flag.Float64("scale", 1.0, "census scale (1.0 = 5,328 devices)")
	stopSize := flag.Int("stop-size", 4, "households per vehicle stop")
	dwellMS := flag.Int("dwell", 1200, "per-channel dwell per stop, ms")
	workers := flag.Int("workers", 0, "worker goroutines simulating stops (0 = all cores)")
	metricsPath := flag.String("metrics", "", "write a telemetry report (JSON) to `file`")
	faultSpec := flag.String("faults", "", "channel fault `spec`, e.g. loss=0.3,ack=0.1,jam=0.2,deaf=0.1")
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.HouseholdsPerStop = *stopSize
	cfg.DwellPerChannel = eventsim.Time(*dwellMS) * eventsim.Millisecond
	cfg.Workers = *workers
	if *faultSpec != "" {
		fc, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(2)
		}
		cfg.Faults = &fc
	}

	var reg *telemetry.Registry
	if *metricsPath != "" {
		// Each stop runs its own scheduler, so the registry accumulates
		// drive-wide totals with no meaningful sim-time axis.
		reg = telemetry.NewRegistry(nil)
		cfg.Metrics = reg
	}

	if cfg.Faults != nil {
		fmt.Printf("wardriving: scale %.2f, %d households/stop, %d ms/channel dwell, faults %s\n\n",
			cfg.Scale, cfg.HouseholdsPerStop, *dwellMS, *faultSpec)
	} else {
		fmt.Printf("wardriving: scale %.2f, %d households/stop, %d ms/channel dwell\n\n",
			cfg.Scale, cfg.HouseholdsPerStop, *dwellMS)
	}

	r := experiments.Table2WithConfig(cfg)
	fmt.Print(r.Render())

	if reg != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		rep := reg.Snapshot()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote telemetry report (%d counters) to %s\n", len(rep.Counters), *metricsPath)
	}
}
