// Command wardrive runs the paper's §3 large-scale study: a simulated
// city seeded with the exact Table 2 vendor census, scanned by a
// vehicle-mounted attacker running the discovery/injection/
// verification pipeline.
//
// Usage:
//
//	wardrive [-seed N] [-scale F] [-stop-size N] [-dwell MS] [-workers N]
//	         [-metrics FILE] [-trace FILE] [-stream FILE] [-progress] [-faults SPEC]
//
// Stops are RF-independent neighbourhoods, so the drive shards them
// across -workers goroutines (default: all cores). The census is
// bit-identical for every worker count; see DESIGN.md.
//
// -stream writes the flight recorder: one NDJSON record per completed
// stop (census delta + telemetry delta), emitted in stop order while
// the drive runs. "-" streams to stdout, e.g. for
// `wardrive -stream - | politewifi tail -`. -progress renders a live
// one-line meter on stderr. -trace writes the merged Chrome
// trace_event JSON with per-exchange flow links.
//
// -faults injects deterministic channel impairments, e.g.
// "loss=0.3,ack=0.1,jam=0.2,deaf=0.1" (see internal/faults). The
// faulted census — and its stream — is still bit-identical across
// worker counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"politewifi/internal/eventsim"
	"politewifi/internal/experiments"
	"politewifi/internal/faults"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

func main() {
	seed := flag.Int64("seed", 20201104, "simulation seed")
	scale := flag.Float64("scale", 1.0, "census scale (1.0 = 5,328 devices)")
	stopSize := flag.Int("stop-size", 4, "households per vehicle stop")
	dwellMS := flag.Int("dwell", 1200, "per-channel dwell per stop, ms")
	workers := flag.Int("workers", 0, "worker goroutines simulating stops (0 = all cores)")
	metricsPath := flag.String("metrics", "", "write a telemetry report (JSON) to `file`")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON with exchange flows to `file`")
	streamPath := flag.String("stream", "", "stream per-stop flight-recorder records (NDJSON) to `file` (\"-\" = stdout)")
	progress := flag.Bool("progress", false, "render a live progress meter on stderr")
	faultSpec := flag.String("faults", "", "channel fault `spec`, e.g. loss=0.3,ack=0.1,jam=0.2,deaf=0.1")
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.HouseholdsPerStop = *stopSize
	cfg.DwellPerChannel = eventsim.Time(*dwellMS) * eventsim.Millisecond
	cfg.Workers = *workers
	if *faultSpec != "" {
		fc, err := faults.ParseSpec(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(2)
		}
		cfg.Faults = &fc
	}

	var reg *telemetry.Registry
	if *metricsPath != "" || *streamPath != "" {
		// Each stop runs its own scheduler, so the registry accumulates
		// drive-wide totals with no meaningful sim-time axis. The stream
		// needs per-stop deltas, so it implies metrics too.
		reg = telemetry.NewRegistry(nil)
		cfg.Metrics = reg
	}
	if *tracePath != "" {
		cfg.Trace = telemetry.NewTracer()
	}
	var streamFile *os.File
	if *streamPath != "" {
		if *streamPath == "-" {
			cfg.Stream = stream.NewWriter(os.Stdout)
		} else {
			f, err := os.Create(*streamPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wardrive:", err)
				os.Exit(1)
			}
			streamFile = f
			cfg.Stream = stream.NewWriter(f)
		}
	}
	if *progress {
		cfg.Progress = world.NewProgressPrinter(os.Stderr, time.Now)
	}

	// When the stream rides stdout, the human-readable output moves to
	// stderr so the NDJSON stays machine-clean.
	out := io.Writer(os.Stdout)
	if *streamPath == "-" {
		out = os.Stderr
	}
	if cfg.Faults != nil {
		fmt.Fprintf(out, "wardriving: scale %.2f, %d households/stop, %d ms/channel dwell, faults %s\n\n",
			cfg.Scale, cfg.HouseholdsPerStop, *dwellMS, *faultSpec)
	} else {
		fmt.Fprintf(out, "wardriving: scale %.2f, %d households/stop, %d ms/channel dwell\n\n",
			cfg.Scale, cfg.HouseholdsPerStop, *dwellMS)
	}

	r := experiments.Table2WithConfig(cfg)
	fmt.Fprint(out, r.Render())

	if cfg.Stream != nil {
		if err := cfg.Stream.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "wardrive: stream:", err)
		} else {
			fmt.Fprintf(out, "\nstreamed %d flight-recorder records", cfg.Stream.Count())
			if streamFile != nil {
				fmt.Fprintf(out, " to %s", *streamPath)
			}
			fmt.Fprintln(out)
		}
		if streamFile != nil {
			if err := streamFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "wardrive:", err)
				os.Exit(1)
			}
		}
	}

	if *metricsPath != "" && reg != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		rep := reg.Snapshot()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "\nwrote telemetry report (%d counters) to %s\n", len(rep.Counters), *metricsPath)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		if err := cfg.Trace.WriteChromeJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "wrote %d trace spans (%d exchanges) to %s\n",
			cfg.Trace.Len(), len(cfg.Trace.ExchangeLatencies()), *tracePath)
	}
}
