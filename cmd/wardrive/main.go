// Command wardrive runs the paper's §3 large-scale study: a simulated
// city seeded with the exact Table 2 vendor census, scanned by a
// vehicle-mounted attacker running the discovery/injection/
// verification pipeline.
//
// Usage:
//
//	wardrive [-seed N] [-scale F] [-stop-size N] [-dwell MS]
package main

import (
	"flag"
	"fmt"

	"politewifi/internal/eventsim"
	"politewifi/internal/experiments"
	"politewifi/internal/world"
)

func main() {
	seed := flag.Int64("seed", 20201104, "simulation seed")
	scale := flag.Float64("scale", 1.0, "census scale (1.0 = 5,328 devices)")
	stopSize := flag.Int("stop-size", 4, "households per vehicle stop")
	dwellMS := flag.Int("dwell", 1200, "per-channel dwell per stop, ms")
	flag.Parse()

	cfg := world.DefaultConfig()
	cfg.Seed = *seed
	cfg.Scale = *scale
	cfg.HouseholdsPerStop = *stopSize
	cfg.DwellPerChannel = eventsim.Time(*dwellMS) * eventsim.Millisecond

	fmt.Printf("wardriving: scale %.2f, %d households/stop, %d ms/channel dwell\n\n",
		cfg.Scale, cfg.HouseholdsPerStop, *dwellMS)

	r := experiments.Table2(*seed, *scale)
	fmt.Print(r.Render())
}
