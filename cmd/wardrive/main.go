// Command wardrive runs the paper's §3 large-scale study: a simulated
// city seeded with the exact Table 2 vendor census, scanned by a
// vehicle-mounted attacker running the discovery/injection/
// verification pipeline.
//
// Usage:
//
//	wardrive [-seed N] [-scale F] [-stop-size N] [-dwell MS] [-workers N]
//	         [-metrics FILE] [-trace FILE] [-stream FILE] [-progress] [-faults SPEC]
//
// Stops are RF-independent neighbourhoods, so the drive shards them
// across -workers goroutines (default: all cores). The census is
// bit-identical for every worker count; see DESIGN.md. The job flags
// (seed/scale/stop-size/dwell/workers/faults) are the canonical
// internal/jobspec set, shared verbatim with `politewifi wardrive`
// and the politewifid daemon's JSON job specs.
//
// -stream writes the flight recorder: one NDJSON record per completed
// stop (census delta + telemetry delta), emitted in stop order while
// the drive runs. "-" streams to stdout, e.g. for
// `wardrive -stream - | politewifi tail -`. -progress renders a live
// one-line meter on stderr. -trace writes the merged Chrome
// trace_event JSON with per-exchange flow links.
//
// -faults injects deterministic channel impairments, e.g.
// "loss=0.3,ack=0.1,jam=0.2,deaf=0.1" (see internal/faults). The
// faulted census — and its stream — is still bit-identical across
// worker counts.
//
// SIGINT/SIGTERM cancel the drive cooperatively: stops already in
// flight finish, the stream is flushed and ends with a cancellation
// trailer record (cancelled:true), and the partial census report is
// printed marked "drive cancelled". A second signal aborts
// immediately.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"politewifi/internal/experiments"
	"politewifi/internal/jobspec"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

func main() {
	spec := jobspec.Drive()
	spec.RegisterDriveFlags(flag.CommandLine)
	metricsPath := flag.String("metrics", "", "write a telemetry report (JSON) to `file`")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON with exchange flows to `file`")
	streamPath := flag.String("stream", "", "stream per-stop flight-recorder records (NDJSON) to `file` (\"-\" = stdout)")
	progress := flag.Bool("progress", false, "render a live progress meter on stderr")
	flag.Parse()

	cfg, err := spec.WorldConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wardrive:", err)
		os.Exit(2)
	}

	var reg *telemetry.Registry
	if *metricsPath != "" || *streamPath != "" {
		// Each stop runs its own scheduler, so the registry accumulates
		// drive-wide totals with no meaningful sim-time axis. The stream
		// needs per-stop deltas, so it implies metrics too.
		reg = telemetry.NewRegistry(nil)
		cfg.Metrics = reg
	}
	if *tracePath != "" {
		cfg.Trace = telemetry.NewTracer()
	}
	var streamFile *os.File
	if *streamPath != "" {
		if *streamPath == "-" {
			cfg.Stream = stream.NewWriter(os.Stdout)
		} else {
			f, err := os.Create(*streamPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wardrive:", err)
				os.Exit(1)
			}
			streamFile = f
			cfg.Stream = stream.NewWriter(f)
		}
	}
	if *progress {
		cfg.Progress = world.NewProgressPrinter(os.Stderr, time.Now)
	}

	// SIGINT/SIGTERM request a cooperative stop at the next stop
	// boundary; the drive drains in-flight stops and emits the
	// cancellation trailer. A second signal aborts outright.
	cancel := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\nwardrive: interrupted — finishing in-flight stops (signal again to abort)")
		close(cancel)
		<-sigc
		os.Exit(130)
	}()
	cfg.Cancel = cancel

	// When the stream rides stdout, the human-readable output moves to
	// stderr so the NDJSON stays machine-clean.
	out := io.Writer(os.Stdout)
	if *streamPath == "-" {
		out = os.Stderr
	}
	if cfg.Faults != nil {
		fmt.Fprintf(out, "wardriving: scale %.2f, %d households/stop, %d ms/channel dwell, faults %s\n\n",
			cfg.Scale, cfg.HouseholdsPerStop, spec.DwellMS, spec.Faults)
	} else {
		fmt.Fprintf(out, "wardriving: scale %.2f, %d households/stop, %d ms/channel dwell\n\n",
			cfg.Scale, cfg.HouseholdsPerStop, spec.DwellMS)
	}

	r := experiments.Table2WithConfig(cfg)
	signal.Stop(sigc)
	fmt.Fprint(out, r.Render())

	if cfg.Stream != nil {
		if err := cfg.Stream.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "wardrive: stream:", err)
		} else {
			fmt.Fprintf(out, "\nstreamed %d flight-recorder records", cfg.Stream.Count())
			if streamFile != nil {
				fmt.Fprintf(out, " to %s", *streamPath)
			}
			fmt.Fprintln(out)
		}
		if streamFile != nil {
			if err := streamFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "wardrive:", err)
				os.Exit(1)
			}
		}
	}

	if *metricsPath != "" && reg != nil {
		f, err := os.Create(*metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		rep := reg.Snapshot()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "\nwrote telemetry report (%d counters) to %s\n", len(rep.Counters), *metricsPath)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		if err := cfg.Trace.WriteChromeJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "wardrive:", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "wrote %d trace spans (%d exchanges) to %s\n",
			cfg.Trace.Len(), len(cfg.Trace.ExchangeLatencies()), *tracePath)
	}

	if r.Run.Cancelled {
		// The render already says "drive cancelled"; make the process
		// outcome machine-checkable too.
		fmt.Fprintf(out, "\n\"cancelled\": true — resume is only available via politewifid\n")
	}
}
