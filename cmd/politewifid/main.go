// Command politewifid serves wardrive campaigns over HTTP: a
// long-running control plane (internal/serve) that accepts the same
// job specs as the one-shot CLIs, runs them as cancellable, resumable
// jobs over one bounded global worker pool, and streams each drive's
// flight recorder live as NDJSON.
//
// Usage:
//
//	politewifid [-addr HOST:PORT] [-pool N] [-max-active N] [-queue N] [-drain SECS]
//
// Quickstart:
//
//	politewifid -addr 127.0.0.1:8011 &
//	curl -s -X POST localhost:8011/api/v1/jobs \
//	     -d '{"scale":0.05,"faults":"loss=0.3,ack=0.1"}'
//	curl -sN localhost:8011/api/v1/jobs/job-1/stream | politewifi tail -
//	curl -s  localhost:8011/api/v1/jobs/job-1/result
//
// Determinism carries through the daemon unchanged: a job's stream is
// byte-identical to `wardrive -stream` with the same spec, no matter
// the pool size or what other jobs share the pool. See DESIGN.md §5g.
//
// On SIGINT/SIGTERM the daemon drains gracefully: new submissions get
// 503, every job is cancelled cooperatively (each finishes the stops
// it has in flight and ends its stream with a trailer record), and
// the process exits once jobs and connections wind down or the -drain
// budget expires.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"politewifi/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8011", "listen address")
	pool := flag.Int("pool", 0, "stop-level worker pool size shared by all jobs (0 = all cores)")
	maxActive := flag.Int("max-active", 2, "jobs multiplexing the pool concurrently")
	queue := flag.Int("queue", 8, "queued-job capacity; a full queue refuses submits with 429")
	drain := flag.Int("drain", 30, "graceful-shutdown drain budget, seconds")
	flag.Parse()

	s := serve.New(serve.Config{
		PoolWorkers: *pool,
		MaxActive:   *maxActive,
		QueueDepth:  *queue,
		Now:         time.Now,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: s,
		// Header reads and idle keep-alives time out; response writes
		// must not — the stream endpoint holds a response open for the
		// life of a job by design.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	workers := *pool
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "politewifid: listening on %s (pool=%d, max-active=%d, queue=%d)\n",
		*addr, workers, *maxActive, *queue)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "politewifid:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	fmt.Fprintf(os.Stderr, "politewifid: shutting down; draining jobs (budget %ds)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drain)*time.Second)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "politewifid:", err)
	}
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		srv.Close()
		fmt.Fprintln(os.Stderr, "politewifid:", err)
		os.Exit(1)
	}
}
