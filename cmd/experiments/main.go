// Command experiments regenerates every table and figure of the
// paper in one run and optionally writes machine-readable artifacts
// (CSV series, pcap captures) to an output directory.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-quick] [-out DIR] [-only NAME]
//
// -scale scales the Table 2 wardrive census (1.0 = the full 5,328
// devices; the full run takes a few seconds). -quick shrinks the
// slow experiments for a fast smoke run. -only runs a single
// experiment by name (figure2, table1, figure3, sifs, table2,
// figure5, figure6, battery, sensing, pmf, vitals, localization,
// occupancy, ratesweep, devicesweep, losssweep). The loss sweep
// repeats the wardrive once per channel loss rate, so it is opt-in:
// pass -losssweep (or -only losssweep) to include it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"politewifi/internal/eventsim"
	"politewifi/internal/experiments"
	"politewifi/internal/world"
)

func main() {
	seed := flag.Int64("seed", 20201104, "simulation seed")
	scale := flag.Float64("scale", 1.0, "Table 2 census scale (1.0 = 5,328 devices)")
	workers := flag.Int("workers", 0, "wardrive stop workers (0 = all cores)")
	quick := flag.Bool("quick", false, "shrink slow experiments")
	out := flag.String("out", "", "directory for CSV/pcap artifacts")
	only := flag.String("only", "", "run a single experiment by name")
	lossSweep := flag.Bool("losssweep", false, "include the wardrive loss sweep (one drive per loss rate)")
	progress := flag.Bool("progress", false, "render a live wardrive progress meter on stderr")
	flag.Parse()

	if *quick {
		if *scale == 1.0 {
			*scale = 0.05
		}
	}
	measure := 20 * eventsim.Second
	if *quick {
		measure = 8 * eventsim.Second
	}

	run := func(name string, f func()) {
		if *only != "" && *only != name {
			return
		}
		fmt.Printf("══════ %s ══════\n", name)
		f()
		fmt.Println()
	}

	var peakMW float64 = 360 // paper value; replaced by the measured one

	run("figure2", func() {
		r := experiments.Figure2(*seed)
		fmt.Print(r.Render())
		if *out != "" {
			writeArtifact(*out, "figure2.pcap", func(f *os.File) error {
				return r.Capture.WritePcap(f)
			})
		}
	})
	run("table1", func() { fmt.Print(experiments.Table1(*seed).Render()) })
	run("figure3", func() {
		r := experiments.Figure3(*seed)
		fmt.Print(r.Render())
		if *out != "" {
			writeArtifact(*out, "figure3.pcap", func(f *os.File) error {
				return r.Capture.WritePcap(f)
			})
		}
	})
	run("sifs", func() { fmt.Print(experiments.SIFSAnalysis(*seed).Render()) })
	run("table2", func() {
		cfg := world.DefaultConfig()
		cfg.Seed = *seed
		cfg.Scale = *scale
		cfg.Workers = *workers
		if *progress {
			cfg.Progress = world.NewProgressPrinter(os.Stderr, time.Now)
		}
		fmt.Print(experiments.Table2WithConfig(cfg).Render())
	})
	run("figure5", func() {
		r := experiments.Figure5(*seed)
		fmt.Print(r.Render())
		if *out != "" {
			writeArtifact(*out, "figure5.csv", func(f *os.File) error {
				fmt.Fprintln(f, "t_seconds,amplitude_subcarrier17")
				amp := r.Series.Amplitudes(r.Subcarrier)
				for i, t := range r.Series.Times() {
					fmt.Fprintf(f, "%.4f,%.6f\n", t, amp[i])
				}
				return nil
			})
		}
	})
	run("figure6", func() {
		r := experiments.Figure6(*seed, measure)
		fmt.Print(r.Render())
		peakMW = r.PeakMW
		if *out != "" {
			writeArtifact(*out, "figure6.csv", func(f *os.File) error {
				fmt.Fprintln(f, "rate_fps,power_mw")
				for _, p := range r.Points {
					fmt.Fprintf(f, "%.0f,%.2f\n", p.RateHz, p.PowerMW)
				}
				return nil
			})
		}
	})
	run("battery", func() { fmt.Print(experiments.BatteryLife(peakMW).Render()) })
	run("sensing", func() { fmt.Print(experiments.Sensing(*seed).Render()) })
	run("pmf", func() { fmt.Print(experiments.PMFStudy(*seed).Render()) })
	run("vitals", func() { fmt.Print(experiments.VitalSigns(*seed).Render()) })
	run("localization", func() { fmt.Print(experiments.Localization(*seed).Render()) })
	run("occupancy", func() { fmt.Print(experiments.Occupancy(*seed).Render()) })
	run("ratesweep", func() { fmt.Print(experiments.SensingRateSweep(*seed).Render()) })
	run("devicesweep", func() { fmt.Print(experiments.DeviceSweep(*seed).Render()) })
	if *lossSweep || *only == "losssweep" {
		run("losssweep", func() {
			cfg := world.DefaultConfig()
			cfg.Seed = *seed
			cfg.Scale = *scale
			cfg.Workers = *workers
			r := experiments.LossSweep(cfg, nil)
			fmt.Print(r.Render())
			if *out != "" {
				writeArtifact(*out, "losssweep.csv", func(f *os.File) error {
					fmt.Fprintln(f, "loss_rate,discovered,responded,inconclusive,silent,response_rate,census_recall")
					for _, p := range r.Points {
						fmt.Fprintf(f, "%.2f,%d,%d,%d,%d,%.4f,%.4f\n",
							p.LossRate, p.Discovered, p.Responded, p.Inconclusive, p.Silent,
							p.ResponseRate, p.CensusRecall)
					}
					return nil
				})
			}
		})
	}
}

func writeArtifact(dir, name string, write func(*os.File) error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return
	}
	defer f.Close()
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", path, err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}
