// Command politewifi is the interactive driver for the Polite WiFi
// toolkit. Each subcommand stands up a simulated WPA2 home network
// with a victim device, places an unauthenticated attacker outside
// it, and runs one attack from the paper:
//
//	politewifi probe   [-n N] [-rts]         fake frames → count ACKs/CTSs
//	politewifi scan    [-homes N] [-secs S]  neighbourhood scan pipeline
//	politewifi drain   [-rate R] [-secs S]   battery-drain power measurement
//	politewifi sense   [-rate R] [-secs S]   CSI capture during typing
//	politewifi sifs                          decode-vs-SIFS feasibility table
//	politewifi jam     [-secs S]             NAV (virtual) jamming demo
//	politewifi deauth  [-pmf]                forged-deauth attack vs 802.11w
//	politewifi locate  [-dist M] [-n N]      time-of-flight ranging via ACKs
//	politewifi stats   [-n N]                run the lab scenario, print telemetry
//	politewifi wardrive [-scale F] [-workers N] [-faults SPEC] [-stream FILE] [-record FILE] [-progress]  the §3 city-wide census (Table 2)
//	politewifi losssweep [-scale F] [-workers N]  census accuracy vs channel loss rate
//	politewifi tail    [-fold FILE] STREAM       render a flight-recorder stream ("-" = stdin)
//	politewifi replay  [-workers N] [-queue Q] LOG  re-run a recorded drive and diff it against a live run
//	politewifi fuzz    [-n N] [-seed S] [-artifacts DIR]  differential scenario fuzzer over random jobspecs
//
// wardrive shards the drive's RF-independent stops over -workers
// goroutines (default: all cores); the census is bit-identical for
// every worker count. -faults injects deterministic channel
// impairments (e.g. "loss=0.3,ack=0.1,jam=0.2,deaf=0.1"; see
// internal/faults); losssweep repeats the drive across loss rates.
//
// wardrive's -record FILE captures a politewifi.framelog/v1 frame log
// — one NDJSON record per transmission and CCA check, with the medium's
// per-receiver outcomes — that `politewifi replay` later re-runs
// bit-identically without re-simulating the RF medium, diffing the
// replay against a fresh live run of the embedded jobspec. fuzz draws
// random scenarios and asserts the determinism and record/replay
// oracles, shrinking any failure to a minimal frame log (see
// internal/fuzzer).
//
// wardrive's -stream FILE writes the flight recorder: one NDJSON
// record per completed stop, in stop order, byte-identical at every
// worker count ("-" streams to stdout with the human output moved to
// stderr). -progress renders a live meter on stderr. tail consumes a
// stream — a finished file or a live pipe — and renders it as a
// table; -fold FILE additionally folds the per-stop telemetry deltas
// back into a full report and writes it as JSON.
//
// The probe, scan, drain and stats subcommands accept -metrics FILE
// (write a telemetry report as JSON) and -trace FILE (write a
// frame-lifecycle trace as Chrome trace_event JSON, viewable in
// about:tracing or Perfetto).
//
// All radios, channels and victims are simulated; see DESIGN.md for
// the hardware→simulation substitutions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/experiments"
	"politewifi/internal/fuzzer"
	"politewifi/internal/jobspec"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/power"
	"politewifi/internal/radio"
	"politewifi/internal/replay"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/trace"
	"politewifi/internal/world"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: politewifi <probe|scan|drain|sense|sifs|jam|deauth|locate|stats|wardrive|losssweep|tail|replay|fuzz> [flags]")
	os.Exit(2)
}

// telemetryFlags wires the -metrics/-trace flags into a subcommand
// and owns the registry and tracer they enable.
type telemetryFlags struct {
	metricsPath string
	tracePath   string
	wallTiming  bool

	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

func (t *telemetryFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&t.metricsPath, "metrics", "", "write a telemetry report (JSON) to `file`")
	fs.StringVar(&t.tracePath, "trace", "", "write a Chrome trace_event frame trace (JSON) to `file`")
}

// attach builds the registry on the scheduler's race-free clock and
// instruments the scheduler and medium. Layers above add themselves.
func (t *telemetryFlags) attach(sched *eventsim.Scheduler, medium *radio.Medium) *telemetry.Registry {
	t.reg = telemetry.NewRegistry(sched.ObservedNow)
	telemetry.AttachScheduler(t.reg, sched, t.wallTiming)
	medium.SetMetrics(radio.NewMetrics(t.reg))
	if t.tracePath != "" || t.wallTiming {
		t.tracer = telemetry.NewTracer()
		medium.SetTracer(t.tracer)
	}
	return t.reg
}

// flush writes the requested report and trace files.
func (t *telemetryFlags) flush() {
	if t.metricsPath != "" && t.reg != nil {
		f, err := os.Create(t.metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		rep := t.reg.Snapshot()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote telemetry report (%d counters) to %s\n", len(rep.Counters), t.metricsPath)
	}
	if t.tracePath != "" && t.tracer != nil {
		f, err := os.Create(t.tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		if err := t.tracer.WriteChromeJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace spans to %s (open in about:tracing or ui.perfetto.dev)\n",
			t.tracer.Len(), t.tracePath)
	}
}

var (
	apAddr     = dot11.MustMAC("f2:6e:0b:00:00:01")
	victimAddr = dot11.MustMAC("f2:6e:0b:12:34:56")
)

// lab is the standard demo network.
type lab struct {
	sched    *eventsim.Scheduler
	medium   *radio.Medium
	ap       *mac.Station
	victim   *mac.Station
	attacker *core.Attacker
}

// newLab builds the standard demo network. tf may be nil; when set,
// every layer of the lab is instrumented into tf.reg before any frame
// flies, so association warm-up traffic is counted too.
func newLab(seed int64, victimProfile mac.ChipsetProfile, tf *telemetryFlags) *lab {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(seed)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 2.2},
		CaptureMarginDB: 10,
	})
	var macMx mac.Metrics
	if tf != nil {
		tf.attach(sched, medium)
		macMx = mac.NewMetrics(tf.reg)
	}
	l := &lab{sched: sched, medium: medium}
	l.ap = mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 0}, Band: phy.Band2GHz, Channel: 6,
	})
	l.victim = mac.New(medium, rng.Fork(), mac.Config{
		Name: "victim", Addr: victimAddr, Role: mac.RoleClient, Profile: victimProfile,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	l.ap.SetMetrics(macMx)
	l.victim.SetMetrics(macMx)
	l.victim.Associate(apAddr, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	l.attacker = core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	if tf != nil {
		l.attacker.InstrumentInto(tf.reg)
	}
	return l
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "probe":
		cmdProbe(args)
	case "scan":
		cmdScan(args)
	case "drain":
		cmdDrain(args)
	case "sense":
		cmdSense(args)
	case "sifs":
		fmt.Print(core.RenderFeasibility(core.FeasibilityStudy(500)))
	case "jam":
		cmdJam(args)
	case "deauth":
		cmdDeauth(args)
	case "locate":
		cmdLocate(args)
	case "stats":
		cmdStats(args)
	case "wardrive":
		cmdWardrive(args)
	case "losssweep":
		cmdLossSweep(args)
	case "tail":
		cmdTail(args)
	case "replay":
		cmdReplay(args)
	case "fuzz":
		cmdFuzz(args)
	default:
		usage()
	}
}

// cmdWardrive runs the §3 large-scale study with the stops sharded
// across a worker pool (see internal/world and cmd/wardrive). The job
// flags are the canonical internal/jobspec set, shared with
// cmd/wardrive and the politewifid daemon. SIGINT/SIGTERM cancel the
// drive cooperatively: in-flight stops finish, the stream ends with a
// trailer record, and the partial census prints marked cancelled.
func cmdWardrive(args []string) {
	fs := flag.NewFlagSet("wardrive", flag.ExitOnError)
	spec := jobspec.Drive()
	spec.RegisterDriveFlags(fs)
	streamPath := fs.String("stream", "", "stream per-stop flight-recorder records (NDJSON) to `file` (\"-\" = stdout)")
	recordPath := fs.String("record", "", "record a frame log (politewifi.framelog/v1 NDJSON) to `file` for politewifi replay")
	progress := fs.Bool("progress", false, "render a live progress meter on stderr")
	tf := &telemetryFlags{}
	tf.register(fs)
	fs.Parse(args)

	cfg, err := spec.WorldConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi:", err)
		os.Exit(2)
	}
	if tf.metricsPath != "" || *streamPath != "" {
		// Every stop owns a private scheduler; the merged registry
		// carries drive-wide totals, so no single clock applies. The
		// stream carries per-stop deltas of the same registry, so
		// -stream implies metrics collection.
		tf.reg = telemetry.NewRegistry(nil)
		cfg.Metrics = tf.reg
	}
	if tf.tracePath != "" {
		// Per-stop tracers merge in stop order with exchange/flow IDs
		// rebased, so the drive-wide trace is worker-count stable.
		tf.tracer = telemetry.NewTracer()
		cfg.Trace = tf.tracer
	}
	var streamFile *os.File
	if *streamPath != "" {
		if *streamPath == "-" {
			cfg.Stream = stream.NewWriter(os.Stdout)
		} else {
			f, err := os.Create(*streamPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "politewifi:", err)
				os.Exit(1)
			}
			streamFile = f
			cfg.Stream = stream.NewWriter(f)
		}
	}
	var recordFile *os.File
	var recorder *replay.Recorder
	if *recordPath != "" {
		f, err := os.Create(*recordPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		recordFile = f
		recorder = replay.NewRecorder(f)
		specJSON, err := json.Marshal(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		recorder.SetSpec(specJSON)
		cfg.Record = recorder
	}
	if *progress {
		cfg.Progress = world.NewProgressPrinter(os.Stderr, time.Now)
	}

	// SIGINT/SIGTERM request a cooperative stop at the next stop
	// boundary; in-flight stops drain and the stream gets its trailer.
	// A second signal aborts outright.
	cancel := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "\npolitewifi: interrupted — finishing in-flight stops (signal again to abort)")
		close(cancel)
		<-sigc
		os.Exit(130)
	}()
	cfg.Cancel = cancel

	r := experiments.Table2WithConfig(cfg)
	signal.Stop(sigc)
	if *streamPath == "-" {
		// NDJSON owns stdout; the human-readable census moves aside.
		fmt.Fprint(os.Stderr, r.Render())
	} else {
		fmt.Print(r.Render())
	}
	if cfg.Stream != nil {
		if err := cfg.Stream.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "politewifi: stream:", err)
		}
		if streamFile != nil {
			if err := streamFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "politewifi:", err)
				os.Exit(1)
			}
			fmt.Printf("\nstreamed %d flight-recorder records to %s\n", cfg.Stream.Count(), *streamPath)
		}
	}
	if recorder != nil {
		if err := recorder.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "politewifi: record:", err)
			os.Exit(1)
		}
		if err := recordFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		fmt.Printf("\nrecorded %d frame-log records to %s (replay with: politewifi replay %s)\n",
			recorder.Records(), *recordPath, *recordPath)
	}
	tf.flush()
	if r.Run.Cancelled {
		fmt.Fprintf(os.Stderr, "politewifi: \"cancelled\": true — partial census covers %d of %d stops\n",
			r.Run.StopsDone, r.Run.Stops)
	}
}

// cmdTail consumes a flight-recorder stream — a finished file or a
// live pipe ("-" = stdin) — and renders each record as a table row
// the moment its line arrives, then prints the drive summary. Every
// record passes through stream.Folder, so a truncated or corrupted
// stream fails with a positioned error (record index + byte offset)
// and a cancelled drive's trailer renders as a cancellation notice
// instead of a bogus table row. -fold additionally rebuilds the full
// telemetry report from the per-stop deltas and writes it as JSON; by
// the stream's fold-equals-snapshot guarantee it matches the
// producer's -metrics report byte for byte.
func cmdTail(args []string) {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	foldPath := fs.String("fold", "", "fold per-stop telemetry deltas into a full report (JSON) at `file`")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: politewifi tail [-fold FILE] STREAM   (STREAM may be \"-\" for stdin)")
		os.Exit(2)
	}

	in := os.Stdin
	if name := fs.Arg(0); name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	fmt.Printf("%5s  %10s  %8s %5s  %10s %10s %7s %7s\n",
		"stop", "sim", "devices", "new", "responded", "silent", "incon", "resp%")
	d := stream.NewDecoder(in)
	folder := stream.NewFolder()
	var simTotal eventsim.Time
	for {
		rec, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// A *PosError: the message carries record index and byte
			// offset of the damage.
			fmt.Fprintln(os.Stderr, "politewifi: tail:", err)
			os.Exit(1)
		}
		if err := folder.Add(rec); err != nil {
			fmt.Fprintf(os.Stderr, "politewifi: tail: %v (record %d, byte offset %d)\n",
				err, d.Decoded()-1, d.Offset())
			os.Exit(1)
		}
		if rec.IsTrailer() {
			// The trailer carries no stop of its own; the cancellation
			// notice prints with the summary below.
			continue
		}
		simTotal += eventsim.Time(rec.SimEndNS - rec.SimStartNS)
		responded := rec.Totals.ClientsResponded + rec.Totals.APsResponded
		pct := 0.0
		if rec.Totals.Devices() > 0 {
			pct = 100 * float64(responded) / float64(rec.Totals.Devices())
		}
		fmt.Printf("%5d  %10s  %8d %+5d  %10d %10d %7d %6.1f%%\n",
			rec.Stop+1, eventsim.Time(rec.SimEndNS-rec.SimStartNS),
			rec.Totals.Devices(), rec.Census.Devices(),
			responded, rec.Totals.Silent, rec.Totals.Inconclusive, pct)
	}

	res := folder.Result()
	fmt.Printf("\n%d/%d stops: %d devices (%d clients, %d APs), %d responded, %d silent, %d inconclusive; %s simulated\n",
		res.Records, res.Stops, res.Totals.Devices(), res.Totals.Clients, res.Totals.APs,
		res.Totals.ClientsResponded+res.Totals.APsResponded,
		res.Totals.Silent, res.Totals.Inconclusive, simTotal)
	switch {
	case res.Cancelled:
		fmt.Printf("drive cancelled after %d/%d stops; partial census above\n", res.Records, res.Stops)
	case res.Records < res.Stops:
		fmt.Printf("stream ended early (%d of %d stops, no trailer); partial census above\n", res.Records, res.Stops)
	}

	if *foldPath != "" {
		if res.Registry == nil {
			fmt.Fprintln(os.Stderr, "politewifi: tail: stream carried no telemetry deltas to fold")
			os.Exit(1)
		}
		f, err := os.Create(*foldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		rep := res.Registry.Snapshot()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "politewifi:", err)
			os.Exit(1)
		}
		fmt.Printf("folded %d per-stop deltas into %s (%d counters)\n", res.Records, *foldPath, len(rep.Counters))
	}
}

// replayLeg is one drive execution captured for the replay diff: the
// rendered census plus the exact bytes of the telemetry report and the
// flight-recorder stream.
type replayLeg struct {
	r      *experiments.Table2Result
	report []byte
	stream []byte
}

// runReplayLeg executes the spec once with full capture plumbing;
// log non-nil replays a frame log instead of simulating the medium.
func runReplayLeg(spec jobspec.Spec, workers int, qk eventsim.QueueKind, log *replay.Log) replayLeg {
	cfg, err := spec.WorldConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi:", err)
		os.Exit(1)
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	cfg.Queue = qk
	reg := telemetry.NewRegistry(nil)
	cfg.Metrics = reg
	var buf bytes.Buffer
	cfg.Stream = stream.NewWriter(&buf)
	cfg.Replay = log
	r := experiments.Table2WithConfig(cfg)
	if err := cfg.Stream.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "politewifi: stream:", err)
		os.Exit(1)
	}
	var rep bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&rep); err != nil {
		fmt.Fprintln(os.Stderr, "politewifi:", err)
		os.Exit(1)
	}
	return replayLeg{r: r, report: rep.Bytes(), stream: buf.Bytes()}
}

// cmdReplay re-runs a recorded drive from its frame log — the medium's
// outcomes come from the log, not from simulation — and diffs it
// against a fresh live run of the jobspec embedded in the log's head.
// Any disagreement exits 1: a divergence inside the replay carries the
// record index and byte offset of the first event that no longer
// matches; a post-run byte difference names the artifact that changed.
// -queue replays on the timing wheel or the legacy heap; -workers
// overrides both legs' worker count (the output must not care).
func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker goroutines for both legs (0 = the recorded spec's count)")
	queue := fs.String("queue", "wheel", "event queue for the replay leg: wheel or heap")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: politewifi replay [-workers N] [-queue wheel|heap] LOG")
		os.Exit(2)
	}
	var qk eventsim.QueueKind
	switch *queue {
	case "wheel":
		qk = eventsim.QueueWheel
	case "heap":
		qk = eventsim.QueueLegacyHeap
	default:
		fmt.Fprintf(os.Stderr, "politewifi: replay: unknown queue %q (want wheel or heap)\n", *queue)
		os.Exit(2)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi:", err)
		os.Exit(1)
	}
	log, err := replay.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi: replay:", err)
		os.Exit(1)
	}
	if len(log.Spec()) == 0 {
		fmt.Fprintln(os.Stderr, "politewifi: replay: log carries no jobspec in its head; cannot rebuild the drive")
		os.Exit(1)
	}
	spec, err := jobspec.Decode(bytes.NewReader(log.Spec()))
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi: replay:", err)
		os.Exit(1)
	}

	replayed := runReplayLeg(spec, *workers, qk, log)
	if err := log.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "politewifi: replay:", err)
		os.Exit(1)
	}
	live := runReplayLeg(spec, *workers, eventsim.QueueWheel, nil)
	switch {
	case !bytes.Equal(replayed.stream, live.stream):
		fmt.Fprintf(os.Stderr, "politewifi: replay: flight-recorder streams differ (replay %d bytes, live %d bytes)\n",
			len(replayed.stream), len(live.stream))
		os.Exit(1)
	case !bytes.Equal(replayed.report, live.report):
		fmt.Fprintf(os.Stderr, "politewifi: replay: telemetry reports differ (replay %d bytes, live %d bytes)\n",
			len(replayed.report), len(live.report))
		os.Exit(1)
	case replayed.r.Render() != live.r.Render():
		fmt.Fprintln(os.Stderr, "politewifi: replay: census tables differ")
		os.Exit(1)
	}
	fmt.Print(replayed.r.Render())
	fmt.Printf("\nreplayed %d frame-log records across %d stops on the %s queue: census, telemetry (%d bytes) and stream (%d bytes) match the live run exactly\n",
		log.Records(), log.Stops(), *queue, len(replayed.report), len(replayed.stream))
}

// cmdFuzz runs the differential scenario fuzzer (see internal/fuzzer):
// random tiny jobspecs, determinism and record/replay oracles, greedy
// shrinking of failures to minimal frame logs. Findings exit 1.
func cmdFuzz(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	n := fs.Int("n", 20, "scenarios to draw")
	seed := fs.Int64("seed", 1, "campaign seed (equal seeds draw equal scenarios)")
	dir := fs.String("artifacts", "", "write shrunk finding logs and specs to `dir`")
	fs.Parse(args)

	findings, err := fuzzer.Run(fuzzer.Options{Seed: *seed, Iterations: *n, Out: os.Stderr, ArtifactDir: *dir})
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi: fuzz:", err)
		os.Exit(1)
	}
	if len(findings) == 0 {
		fmt.Printf("fuzz: %d scenarios, determinism and record/replay oracles held on all of them\n", *n)
		return
	}
	for _, f := range findings {
		fmt.Printf("fuzz: iteration %d failed the %s oracle\n  spec: %s\n  error: %v\n", f.Iteration, f.Oracle, f.Spec, f.Err)
		if f.Artifact != "" {
			fmt.Printf("  artifact: %s (%d records)\n", f.Artifact, f.Records)
		}
	}
	os.Exit(1)
}

// cmdLossSweep repeats the wardrive across channel loss rates and
// prints the census-accuracy table (see internal/experiments).
func cmdLossSweep(args []string) {
	fs := flag.NewFlagSet("losssweep", flag.ExitOnError)
	spec := jobspec.LossSweep()
	spec.RegisterSweepFlags(fs)
	fs.Parse(args)

	cfg, err := spec.WorldConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "politewifi:", err)
		os.Exit(2)
	}
	fmt.Print(experiments.LossSweep(cfg, spec.Rates).Render())
}

func cmdProbe(args []string) {
	fs := flag.NewFlagSet("probe", flag.ExitOnError)
	n := fs.Int("n", 10, "number of fake frames")
	rts := fs.Bool("rts", false, "use RTS/CTS instead of null/ACK")
	seed := fs.Int64("seed", 1, "simulation seed")
	tf := &telemetryFlags{}
	tf.register(fs)
	fs.Parse(args)

	l := newLab(*seed, mac.ProfileGenericClient, tf)
	cap := &trace.Capture{}
	sniffer := l.medium.NewRadio("sniffer", radio.Position{X: 8}, phy.Band2GHz, 6)
	cap.Attach(sniffer)
	cap.CountsInto(tf.reg)

	mode := core.ProbeNull
	if *rts {
		mode = core.ProbeRTS
	}
	res := core.ProbeSync(l.attacker, victimAddr, mode, *n, 3*eventsim.Millisecond)
	fmt.Printf("probed %s (%s): %d/%d responses, responded=%v, first gap %.1f µs\n\n",
		victimAddr, res.Mode, res.Responses, res.Sent, res.Responded, res.FirstGap.Micros())
	fmt.Print(cap.Table(victimAddr, apAddr))
	tf.flush()
}

func cmdScan(args []string) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	homes := fs.Int("homes", 6, "households in the neighbourhood")
	secs := fs.Int("secs", 3, "scan duration (simulated seconds)")
	seed := fs.Int64("seed", 1, "simulation seed")
	tf := &telemetryFlags{}
	tf.register(fs)
	fs.Parse(args)

	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(*seed)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.4}, CaptureMarginDB: 10,
	})
	tf.attach(sched, medium)
	macMx := mac.NewMetrics(tf.reg)
	for i := 0; i < *homes; i++ {
		apMAC := dot11.MustMAC(fmt.Sprintf("f2:6e:0b:00:%02x:01", i))
		clMAC := dot11.MustMAC(fmt.Sprintf("ec:fa:bc:00:%02x:02", i))
		pos := radio.Position{X: float64(i%3) * 30, Y: float64(i/3) * 30}
		ap := mac.New(medium, rng.Fork(), mac.Config{
			Name: fmt.Sprintf("ap%d", i), Addr: apMAC, Role: mac.RoleAP,
			Profile: mac.ProfileGenericAP, SSID: fmt.Sprintf("Home-%d", i),
			Position: pos, Band: phy.Band2GHz, Channel: 6,
		})
		ap.SetMetrics(macMx)
		cl := mac.New(medium, rng.Fork(), mac.Config{
			Name: fmt.Sprintf("cl%d", i), Addr: clMAC, Role: mac.RoleClient,
			Profile: mac.ProfileGenericClient, SSID: fmt.Sprintf("Home-%d", i),
			Position: radio.Position{X: pos.X + 4, Y: pos.Y}, Band: phy.Band2GHz, Channel: 6,
		})
		cl.SetMetrics(macMx)
		cl.Associate(apMAC, nil)
		sched.Every(200*eventsim.Millisecond, func() {
			if cl.Associated() {
				cl.SendData(apMAC, []byte("chatter"))
			}
		})
	}
	attacker := core.NewAttacker(medium, radio.Position{X: 30, Y: 15}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	attacker.InstrumentInto(tf.reg)
	scanner := core.NewScanner(attacker)
	scanner.SetMetrics(tf.reg)
	scanner.Start()
	sched.RunFor(eventsim.Time(*secs) * eventsim.Second)
	scanner.Stop()

	fmt.Printf("%-20s %-8s %-14s %7s %6s %s\n", "MAC", "Kind", "SSID", "Probes", "ACKs", "Polite?")
	for _, d := range scanner.Devices() {
		fmt.Printf("%-20s %-8s %-14s %7d %6d %v\n", d.MAC, d.Kind, d.SSID, d.Probes, d.Acks, d.Responded)
	}
	t := scanner.Tally()
	fmt.Printf("\n%d devices (%d clients, %d APs); %d responded (%.0f%%)\n",
		t.Total, t.Clients, t.APs, t.TotalResponded,
		100*float64(t.TotalResponded)/float64(max(1, t.Total)))
	tf.flush()
}

func cmdDrain(args []string) {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	rate := fs.Float64("rate", 900, "fake frames per second")
	secs := fs.Int("secs", 20, "attack duration (simulated seconds)")
	seed := fs.Int64("seed", 1, "simulation seed")
	tf := &telemetryFlags{}
	tf.register(fs)
	fs.Parse(args)

	l := newLab(*seed, mac.ProfileESP8266, tf)
	l.victim.EnablePowerSave()
	l.sched.RunFor(500 * eventsim.Millisecond)

	meter := power.Attach(l.victim, power.ESP8266)
	dr := core.NewDrainer(l.attacker, victimAddr)
	dr.Start(*rate)
	l.sched.RunFor(2 * eventsim.Second)
	meter.Reset()
	l.sched.RunFor(eventsim.Time(*secs) * eventsim.Second)
	dr.Stop()

	mw := meter.MeanPowerMW()
	fmt.Printf("attack rate %.0f fps for %ds: victim draws %.1f mW (%d ACKs forced)\n",
		*rate, *secs, mw, l.victim.Stats.AcksSent)
	for _, b := range []power.Battery{power.LogitechCircle2, power.BlinkXT2} {
		fmt.Printf("  %-28s would last %.1f h\n", b.String(), b.LifetimeHours(mw))
	}
	tf.flush()
}

func cmdSense(args []string) {
	fs := flag.NewFlagSet("sense", flag.ExitOnError)
	rate := fs.Float64("rate", 150, "fake frames per second")
	secs := fs.Int("secs", 45, "capture duration (simulated seconds)")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	l := newLab(*seed, mac.ProfileGenericClient, nil)
	rng := eventsim.NewRNG(*seed + 99)
	scene := csi.NewScene(rng.Fork())
	tl := csi.Figure5Timeline(rng.Fork())
	sensor := core.NewCSISensor(l.attacker, victimAddr, scene, tl)
	series := sensor.RunFor(*rate, eventsim.Time(*secs)*eventsim.Second)

	fmt.Printf("captured %d CSI samples at %.1f Hz (loss %.1f%%)\n",
		len(series), series.MeanRate(), 100*sensor.LossRate())
	amp := csi.Hampel(series.Amplitudes(17), 5, 3)
	times := series.Times()
	fmt.Println("per-second fluctuation of subcarrier 17 (sliding std / mean):")
	for sec := 0; sec < *secs; sec++ {
		var w []float64
		for i, t := range times {
			if t >= float64(sec) && t < float64(sec+1) {
				w = append(w, amp[i])
			}
		}
		if len(w) == 0 {
			continue
		}
		norm := csi.Std(w) / csi.Mean(w)
		bar := ""
		for i := 0; i < int(norm*400) && i < 60; i++ {
			bar += "#"
		}
		fmt.Printf("  t=%2ds %-10s %7.4f %s\n", sec, tl.Label(float64(sec)), norm, bar)
	}
}

func cmdJam(args []string) {
	fs := flag.NewFlagSet("jam", flag.ExitOnError)
	secs := fs.Int("secs", 2, "jam duration (simulated seconds)")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	l := newLab(*seed, mac.ProfileGenericClient, nil)
	// Baseline: victim sends one data frame per 10 ms.
	baselineAcks := func(dur eventsim.Time) uint64 {
		before := l.victim.Stats.AcksReceived
		tk := l.sched.Every(10*eventsim.Millisecond, func() {
			l.victim.SendData(apAddr, []byte("payload"))
		})
		l.sched.RunFor(dur)
		tk.Stop()
		return l.victim.Stats.AcksReceived - before
	}
	clean := baselineAcks(eventsim.Time(*secs) * eventsim.Second)

	j := core.NewVirtualJammer(l.attacker)
	j.Start()
	jammed := baselineAcks(eventsim.Time(*secs) * eventsim.Second)
	j.Stop()

	fmt.Printf("virtual (NAV) jamming with %d fake RTS reservations:\n", j.Sent)
	fmt.Printf("  victim goodput: %d frames clean vs %d frames jammed\n", clean, jammed)
	res := core.ProbeSync(l.attacker, victimAddr, core.ProbeNull, 3, 3*eventsim.Millisecond)
	fmt.Printf("  victim still ACKs fake frames while jammed: %v\n", res.Responded)
}

func cmdDeauth(args []string) {
	fs := flag.NewFlagSet("deauth", flag.ExitOnError)
	pmf := fs.Bool("pmf", false, "victim network uses 802.11w")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(*seed)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "correct horse battery staple", PMF: *pmf,
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	victim := mac.New(medium, rng.Fork(), mac.Config{
		Name: "victim", Addr: victimAddr, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
		SSID: "HomeNet", Passphrase: "correct horse battery staple", PMF: *pmf,
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	victim.Associate(apAddr, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	attacker := core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)

	attacker.InjectDeauth(victimAddr, apAddr)
	sched.RunFor(50 * eventsim.Millisecond)
	fmt.Printf("forged deauth against %s (PMF=%v):\n", victimAddr, *pmf)
	fmt.Printf("  victim still associated: %v\n", victim.Associated())
	fmt.Printf("  forgeries dropped by 802.11w: %d\n", victim.Stats.ForgedMgmtDropped)
	fmt.Printf("  victim PHY still ACKed the forgery: %v\n", victim.Stats.AcksSent > 0)
}

func cmdLocate(args []string) {
	fs := flag.NewFlagSet("locate", flag.ExitOnError)
	dist := fs.Float64("dist", 15, "true victim distance in meters")
	n := fs.Int("n", 20, "number of probes")
	seed := fs.Int64("seed", 1, "simulation seed")
	fs.Parse(args)

	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(*seed)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	mac.New(medium, rng.Fork(), mac.Config{
		Name: "victim", Addr: victimAddr, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
		SSID: "n", Position: radio.Position{X: *dist}, Band: phy.Band2GHz, Channel: 6,
	})
	attacker := core.NewAttacker(medium, radio.Position{}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	res := core.ProbeSync(attacker, victimAddr, core.ProbeNull, *n, 2*eventsim.Millisecond)
	est := core.RangeFromGaps(phy.Band2GHz, res.Gaps)
	fmt.Printf("time-of-flight ranging over forced ACKs (Wi-Peep style):\n")
	fmt.Printf("  probes answered: %d/%d\n", res.Responses, res.Sent)
	fmt.Printf("  true distance %.1f m → estimated %.1f m (err %.1f m)\n",
		*dist, est, est-*dist)
}

// cmdStats runs the standard lab scenario fully instrumented — wall
// timing on, tracer always attached — and prints the whole registry.
func cmdStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	n := fs.Int("n", 10, "number of fake frames in the probe round")
	seed := fs.Int64("seed", 1, "simulation seed")
	timeline := fs.Bool("timeline", false, "also print the frame-lifecycle timeline")
	tf := &telemetryFlags{wallTiming: true}
	tf.register(fs)
	fs.Parse(args)

	l := newLab(*seed, mac.ProfileGenericClient, tf)
	cap := &trace.Capture{}
	sniffer := l.medium.NewRadio("sniffer", radio.Position{X: 8}, phy.Band2GHz, 6)
	cap.Attach(sniffer)
	cap.CountsInto(tf.reg)

	res := core.ProbeSync(l.attacker, victimAddr, core.ProbeNull, *n, 3*eventsim.Millisecond)
	fmt.Printf("lab scenario: %d/%d probes answered over %s of simulated time\n\n",
		res.Responses, res.Sent, l.sched.Now())
	fmt.Print(tf.reg.Snapshot().Render())
	if *timeline {
		fmt.Println()
		fmt.Print(tf.tracer.Timeline())
	}
	tf.flush()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
