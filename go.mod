module politewifi

go 1.22
