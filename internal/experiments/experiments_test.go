package experiments

import (
	"math"
	"strings"
	"testing"

	"politewifi/internal/eventsim"
)

const seed = 20201104

func TestFigure2(t *testing.T) {
	r := Figure2(seed)
	if !r.Acked {
		t.Fatal("E1: fake frame not acknowledged")
	}
	if r.GapMicros < 10 || r.GapMicros > 11 {
		t.Fatalf("ACK gap = %.2f µs, want ~SIFS", r.GapMicros)
	}
	out := r.Render()
	for _, want := range []string{
		"Null function (No data)",
		"Acknowledgement",
		"aa:bb:bb:bb:bb:bb",
		"f2:6e:0b:…",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 2 table missing %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	r := Table1(seed)
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	if !r.AllPolite {
		t.Fatalf("E2: not all devices polite: %+v", r.Rows)
	}
	for _, row := range r.Rows {
		if row.Acks < row.Probes*8/10 {
			t.Fatalf("%s acked only %d of %d", row.Device, row.Acks, row.Probes)
		}
	}
	out := r.Render()
	for _, want := range []string{"MSI GE62 laptop", "Intel AC 3160", "Google Wifi AP", "11ac"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 missing %q", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	r := Figure3(seed)
	if !r.AckedDespite {
		t.Fatal("E3: AP stopped ACKing after deauths")
	}
	if r.DeauthBursts < 3 {
		t.Fatalf("deauth transmissions = %d, want ≥3", r.DeauthBursts)
	}
	if !r.SameSNBursts {
		t.Fatalf("deauth burst SNs differ: %v", r.DeauthFrameSNs)
	}
	if !r.AckedBlocklist {
		t.Fatal("E3: blocklist suppressed the ACK — contradicts the paper")
	}
	if r.BlocklistDrops == 0 {
		t.Fatal("blocklist never dropped anything at the host")
	}
	out := r.Render()
	if !strings.Contains(out, "Deauthentication") || !strings.Contains(out, "Acknowledgement") {
		t.Fatalf("Figure 3 render:\n%s", out)
	}
}

func TestSIFSAnalysis(t *testing.T) {
	r := SIFSAnalysis(seed)
	if len(r.Rows) != 6 {
		t.Fatalf("feasibility rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.MeetsSIFS {
			t.Fatal("E4: some decoder claims to meet SIFS")
		}
		if row.Ratio < 10 || row.Ratio > 80 {
			t.Fatalf("decode/SIFS ratio %.1f outside the paper's 20–70x ballpark", row.Ratio)
		}
	}
	if r.ValidatingLateAcks == 0 {
		t.Fatal("validating station produced no late ACKs")
	}
	if r.ValidatingTxRetries == 0 || r.ValidatingTxFailed == 0 {
		t.Fatal("validating station did not break its own link")
	}
	if r.ValidatingAcksFakes {
		t.Fatal("validating station acked fakes (it exists to not do that)")
	}
	if !r.RTSElicitedCTS || r.CTSResponses == 0 {
		t.Fatal("E4: fake RTS did not elicit CTS from the validator")
	}
	if !strings.Contains(r.Render(), "unencryptable") {
		t.Fatal("render missing conclusion")
	}
}

func TestTable2Scaled(t *testing.T) {
	r := Table2(seed, 0.02)
	if r.ResponseRate != 1.0 {
		t.Fatalf("E5: response rate = %.3f, want 1.0; non-responders %d",
			r.ResponseRate, len(r.Run.NonResponders))
	}
	if r.Run.Total() < 80 {
		t.Fatalf("discovered only %d devices at 2%% scale", r.Run.Total())
	}
	out := r.Render()
	for _, want := range []string{"Client vendor", "AP vendor", "Total", "responded to fake frames"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 2 render missing %q", want)
		}
	}
}

func TestFigure5(t *testing.T) {
	r := Figure5(seed)
	if !r.Separable {
		t.Fatalf("E6: phases not separable: %+v", r.Phases)
	}
	if len(r.Phases) != 4 {
		t.Fatalf("phases = %d", len(r.Phases))
	}
	ground, pickup := r.Phases[0], r.Phases[1]
	if pickup.NormStd < 5*ground.NormStd {
		t.Fatalf("pickup fluctuation %.4f not ≫ ground %.4f", pickup.NormStd, ground.NormStd)
	}
	if r.LossRate > 0.05 {
		t.Fatalf("CSI sample loss = %.2f", r.LossRate)
	}
	if r.ClassifierAccuracy < 0.75 {
		t.Fatalf("activity classifier accuracy = %.2f", r.ClassifierAccuracy)
	}
	if len(r.Series) < 6000 {
		t.Fatalf("series = %d samples, want ~6750", len(r.Series))
	}
	out := r.Render()
	if !strings.Contains(out, "typing") || !strings.Contains(out, "on-ground") {
		t.Fatalf("render:\n%s", out)
	}
	if r.Sparkline(60) == "" {
		t.Fatal("sparkline empty")
	}
	if r.KeystrokeBursts < 3 {
		t.Fatalf("keystroke bursts localised = %d, want several", r.KeystrokeBursts)
	}
}

func TestFigure6(t *testing.T) {
	r := Figure6(seed, 10*eventsim.Second)
	if !r.ShapeHolds {
		t.Fatalf("E7: power curve shape broken: %+v", r.Points)
	}
	// Paper anchors (shape, generous tolerances).
	if r.BaselineMW < 3 || r.BaselineMW > 25 {
		t.Fatalf("baseline = %.1f mW, want ~10", r.BaselineMW)
	}
	if r.StepMW < 150 || r.StepMW > 300 {
		t.Fatalf("10 fps power = %.1f mW, want ~230", r.StepMW)
	}
	if r.PeakMW < 280 || r.PeakMW > 450 {
		t.Fatalf("900 fps power = %.1f mW, want ~360", r.PeakMW)
	}
	if r.Amplification < 20 || r.Amplification > 60 {
		t.Fatalf("amplification = %.0fx, want ~35x", r.Amplification)
	}
	// Monotone above the step.
	var prev float64
	for _, p := range r.Points {
		if p.RateHz >= 10 {
			if p.PowerMW < prev*0.97 {
				t.Fatalf("power not monotone above the step: %+v", r.Points)
			}
			prev = p.PowerMW
		}
	}
	// Below the step the device still dozes.
	for _, p := range r.Points {
		if p.RateHz > 0 && p.RateHz < 10 && !p.Dozed {
			t.Fatalf("victim never dozed at %v fps", p.RateHz)
		}
	}
	if !strings.Contains(r.Render(), "amplification") {
		t.Fatal("render missing headline")
	}
}

func TestBatteryLife(t *testing.T) {
	r := BatteryLife(360)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if math.Abs(r.Rows[0].LifetimeHours-6.67) > 0.05 {
		t.Fatalf("Circle 2 = %.2f h, want ~6.7", r.Rows[0].LifetimeHours)
	}
	if math.Abs(r.Rows[1].LifetimeHours-16.67) > 0.05 {
		t.Fatalf("Blink XT2 = %.2f h, want ~16.7", r.Rows[1].LifetimeHours)
	}
	if !strings.Contains(r.Render(), "Circle 2") {
		t.Fatal("render missing device")
	}
}

func TestSensing(t *testing.T) {
	r := Sensing(seed)
	if !r.Localized {
		t.Fatalf("E9: motion not localised (detected %d, want %d): %+v",
			r.DetectedDevice, r.MotionDevice, r.Devices)
	}
	for i, d := range r.Devices {
		if d.AchievedRate < 35 {
			t.Fatalf("device %d CSI rate = %.1f/s, want ~50", i, d.AchievedRate)
		}
		if i != r.MotionDevice && d.MotionSeen {
			t.Fatalf("false motion at device %d: %+v", i, d)
		}
	}
	if r.NaturalTrafficRate >= r.RequiredRate {
		t.Fatal("natural traffic should be far below the sensing requirement")
	}
	if r.ModifiedDevices != 1 || r.ClassicModifiedDevices <= 1 {
		t.Fatalf("modification counts: %d vs %d", r.ModifiedDevices, r.ClassicModifiedDevices)
	}
	if !strings.Contains(r.Render(), "one device only") {
		t.Fatal("render missing headline")
	}
}

func TestPMFStudy(t *testing.T) {
	r := PMFStudy(seed)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	plain, pmf := r.Rows[0], r.Rows[1]
	if !plain.DeauthAttackWorks {
		t.Fatal("deauth attack failed on the unprotected network")
	}
	if pmf.DeauthAttackWorks {
		t.Fatal("deauth attack succeeded despite PMF")
	}
	for _, row := range r.Rows {
		if !row.ForgeryAcked {
			t.Fatalf("%s: forged deauth not ACKed — the PHY must ACK regardless", row.Config)
		}
		if !row.FakeNullAcked || !row.RTSAnswered {
			t.Fatalf("%s: Polite WiFi behaviours changed: %+v", row.Config, row)
		}
	}
	if !strings.Contains(r.Render(), "802.11w") {
		t.Fatal("render missing headline")
	}
}

func TestVitalSigns(t *testing.T) {
	r := VitalSigns(seed)
	if !r.Recovered {
		t.Fatalf("breathing rates not recovered: %+v", r.Rows)
	}
	if r.MeanError > 1.5 {
		t.Fatalf("mean error = %.2f BPM", r.MeanError)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(r.Render(), "breathing rate") {
		t.Fatal("render missing headline")
	}
}

func TestLocalization(t *testing.T) {
	r := Localization(seed)
	if !r.Localized {
		t.Fatalf("localization failed: %+v", r.Rows)
	}
	if r.ToFMeanErr > 2 {
		t.Fatalf("ToF mean error = %.2f m", r.ToFMeanErr)
	}
	if r.CSIMeanErr > 4 {
		t.Fatalf("CSI mean error = %.2f m", r.CSIMeanErr)
	}
	if !strings.Contains(r.Render(), "Wi-Peep") {
		t.Fatal("render missing headline")
	}
}

func TestOccupancy(t *testing.T) {
	r := Occupancy(seed)
	if r.Accuracy != 1.0 {
		t.Fatalf("occupancy accuracy = %.2f: %+v", r.Accuracy, r.Rows)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(r.Render(), "occupancy") {
		t.Fatal("render missing headline")
	}
}

// TestDeterministicRenders replays the two figure experiments with
// the same seed and demands byte-identical rendered output — the
// whole stack (scheduler, medium, MAC, CSI, power) must be
// reproducible end to end.
func TestDeterministicRenders(t *testing.T) {
	if Figure2(seed).Render() != Figure2(seed).Render() {
		t.Fatal("Figure2 render not deterministic")
	}
	if Figure3(seed).Render() != Figure3(seed).Render() {
		t.Fatal("Figure3 render not deterministic")
	}
	a := Figure5(seed)
	b := Figure5(seed)
	if a.Render() != b.Render() {
		t.Fatal("Figure5 render not deterministic")
	}
	if len(a.Series) != len(b.Series) || a.Series[100].H != b.Series[100].H {
		t.Fatal("Figure5 CSI series diverged between replays")
	}
}

func TestSensingRateSweep(t *testing.T) {
	r := SensingRateSweep(seed)
	if len(r.Points) != 7 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// High rates must outperform the slowest rate, and accuracy at
	// ≥100 Hz must be strong.
	lowest, best := r.Points[0].Accuracy, 0.0
	for _, p := range r.Points {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	if best < 0.9 {
		t.Fatalf("best accuracy = %.2f", best)
	}
	if lowest >= best {
		t.Fatalf("5 Hz sampling should not match the best (%.2f vs %.2f)", lowest, best)
	}
	for _, p := range r.Points {
		if p.RateHz >= 100 && p.Accuracy < best-0.1 {
			t.Fatalf("accuracy at %.0f Hz = %.2f, should be near saturation", p.RateHz, p.Accuracy)
		}
	}
	if r.SaturationHz == 0 || r.SaturationHz > 300 {
		t.Fatalf("saturation = %v", r.SaturationHz)
	}
	if !strings.Contains(r.Render(), "saturate") {
		t.Fatal("render missing conclusion")
	}
}

func TestDeviceSweep(t *testing.T) {
	r := DeviceSweep(seed)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Amplification < 5 {
			t.Fatalf("%s: amplification = %.1fx, want large", row.Device, row.Amplification)
		}
		if row.LifetimeH >= row.AdvertisedH/5 {
			t.Fatalf("%s: attacked lifetime %.1fh not ≪ nominal %.0fh", row.Device, row.LifetimeH, row.AdvertisedH)
		}
	}
	if !strings.Contains(r.Render(), "device classes") {
		t.Fatal("render missing headline")
	}
}
