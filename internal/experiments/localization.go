package experiments

import (
	"fmt"
	"math"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// LocalizationRow is one victim distance measured two ways.
type LocalizationRow struct {
	TrueMeters float64
	// ToFMeters is the time-of-flight estimate from ACK timing
	// (gap = SIFS + 2·d/c) — the Wi-Peep method.
	ToFMeters float64
	// CSIMeters is the phase-slope estimate from ACK CSI.
	CSIMeters float64
	ToFErr    float64
	CSIErr    float64
}

// LocalizationResult is extension experiment EX3: non-cooperative
// localization of WiFi devices over Polite WiFi — the direction the
// follow-up work (Wi-Peep) took. The attacker forces ACKs out of
// devices it has never met and ranges them from (a) the ACK timing
// and (b) the CSI phase slope.
type LocalizationResult struct {
	Rows []LocalizationRow
	// ToFMeanErr / CSIMeanErr are mean absolute errors in meters.
	ToFMeanErr, CSIMeanErr float64
	// Localized: both methods within a few meters everywhere.
	Localized bool
}

// Localization runs EX3 over victims at several distances.
func Localization(seed int64) *LocalizationResult {
	out := &LocalizationResult{Localized: true}
	for i, dist := range []float64{5, 10, 20, 40} {
		sched := eventsim.NewScheduler()
		rng := eventsim.NewRNG(seed + int64(i)*13)
		medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
			PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
		})
		victim := mac.New(medium, rng.Fork(), mac.Config{
			Name: "victim", Addr: victimAddr, Role: mac.RoleClient,
			Profile: mac.ProfileGenericClient, SSID: "n",
			Position: radio.Position{X: dist}, Band: phy.Band2GHz, Channel: 6,
		})
		_ = victim
		attacker := core.NewAttacker(medium, radio.Position{}, phy.Band2GHz, 6, core.DefaultFakeMAC)

		// (a) Time of flight from ACK gaps.
		res := core.ProbeSync(attacker, victimAddr, core.ProbeNull, 20, 2*eventsim.Millisecond)
		tof := core.RangeFromGaps(phy.Band2GHz, res.Gaps)

		// (b) CSI phase slope: the scene's LoS length equals the
		// victim distance; the attacker samples CSI from each ACK.
		scene := csi.NewScene(rng.Fork())
		scene.Attacker = csi.Vec3{}
		scene.DeviceRest = csi.Vec3{X: dist}
		// Keep the walls but scale reflectivity down with distance so
		// the LoS stays dominant, as it is in open space.
		sensor := core.NewCSISensor(attacker, victimAddr, scene, &csi.Timeline{})
		series := sensor.RunFor(100, 2*eventsim.Second)
		csiEst := csi.EstimateRange(series)

		row := LocalizationRow{
			TrueMeters: dist,
			ToFMeters:  tof,
			CSIMeters:  csiEst,
			ToFErr:     math.Abs(tof - dist),
			CSIErr:     math.Abs(csiEst - dist),
		}
		out.Rows = append(out.Rows, row)
		out.ToFMeanErr += row.ToFErr
		out.CSIMeanErr += row.CSIErr
		if row.ToFErr > 3 || row.CSIErr > 6 {
			out.Localized = false
		}
	}
	out.ToFMeanErr /= float64(len(out.Rows))
	out.CSIMeanErr /= float64(len(out.Rows))
	return out
}

// Render prints the two-method ranging table.
func (r *LocalizationResult) Render() string {
	var b strings.Builder
	b.WriteString("Extension (Wi-Peep direction): ranging devices via forced ACKs\n")
	fmt.Fprintf(&b, "%10s %12s %12s %10s %10s\n", "true (m)", "ToF (m)", "CSI (m)", "ToF err", "CSI err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10.0f %12.1f %12.1f %10.1f %10.1f\n",
			row.TrueMeters, row.ToFMeters, row.CSIMeters, row.ToFErr, row.CSIErr)
	}
	fmt.Fprintf(&b, "mean error: ToF %.1f m, CSI %.1f m; localized: %v\n",
		r.ToFMeanErr, r.CSIMeanErr, r.Localized)
	return b.String()
}

// victim MAC reused across experiments.
var _ = dot11.ZeroMAC
