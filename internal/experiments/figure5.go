package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
)

// Figure5Phase summarises one activity window of the Figure 5 trace.
type Figure5Phase struct {
	Label      string
	Start, End float64 // seconds
	MeanAmp    float64
	NormStd    float64 // std / mean — the visible "fluctuation"
	HighBand   float64 // >2.5 Hz spectral fraction
}

// Figure5Result reproduces the paper's Figure 5: CSI amplitude of
// subcarrier 17 measured from the ACKs a victim tablet is forced to
// transmit at 150 fake frames per second, while a user approaches,
// picks it up, holds it, and types.
type Figure5Result struct {
	Series     csi.Series
	Subcarrier int
	RateHz     float64
	Phases     []Figure5Phase
	// Separable is the headline: activity phases are distinguishable
	// from the ACK CSI alone.
	Separable bool
	// LossRate is the fraction of fake frames that yielded no sample.
	LossRate float64
	// ClassifierAccuracy is the held-out nearest-centroid accuracy on
	// ground/hold/typing windows (the keystroke-threat quantifier).
	ClassifierAccuracy float64
	// KeystrokeBursts is the number of distinct typing bursts the
	// spectrogram stage localised inside the typing window — the raw
	// material WindTalker-style inference consumes.
	KeystrokeBursts int
}

// Figure5 runs E6: 150 fps fake-frame injection for 45 s with the
// paper's activity script, sampling CSI from each elicited ACK.
func Figure5(seed int64) *Figure5Result {
	h := newHomeNetwork(seed, mac.ProfileGenericAP, mac.ProfileGenericClient)
	rng := eventsim.NewRNG(seed + 1000)
	scene := csi.NewScene(rng.Fork())
	tl := csi.Figure5Timeline(rng.Fork())

	sensor := core.NewCSISensor(h.attacker, victimAddr, scene, tl)
	series := sensor.RunFor(150, 45*eventsim.Second)

	out := &Figure5Result{
		Series:     series,
		Subcarrier: 17,
		RateHz:     150,
		LossRate:   sensor.LossRate(),
	}
	amp := csi.Hampel(series.Amplitudes(17), 5, 3)
	times := series.Times()

	windows := []struct {
		label      string
		start, end float64
	}{
		{"on-ground", 0, 9},
		{"approach+pickup", 9, 22},
		{"hold", 23, 31},
		{"typing", 33, 41},
	}
	cut := func(lo, hi float64) []float64 {
		var w []float64
		for i, t := range times {
			if t >= lo && t < hi {
				w = append(w, amp[i])
			}
		}
		return w
	}
	for _, win := range windows {
		w := cut(win.start, win.end)
		if len(w) == 0 {
			continue
		}
		f := csi.Extract(w, out.RateHz)
		out.Phases = append(out.Phases, Figure5Phase{
			Label: win.label, Start: win.start, End: win.end,
			MeanAmp:  csi.Mean(w),
			NormStd:  csi.Std(w) / csi.Mean(w),
			HighBand: f.HighBand,
		})
	}
	if len(out.Phases) == 4 {
		ground, pickup, hold, typing := out.Phases[0], out.Phases[1], out.Phases[2], out.Phases[3]
		out.Separable = pickup.NormStd > 5*ground.NormStd &&
			typing.NormStd > ground.NormStd &&
			typing.HighBand > hold.HighBand
	}

	// Keystroke-threat quantifier: train/test the activity classifier
	// on independent captures, and localise individual typing bursts.
	out.ClassifierAccuracy = classifierAccuracy(seed)
	out.KeystrokeBursts = len(csi.KeystrokeTimes(cut(33, 41), out.RateHz, 2))
	return out
}

// classifierAccuracy trains on one set of seeds and tests on another.
func classifierAccuracy(seed int64) float64 {
	fs := 150.0
	winLen := int(fs * 4)
	collect := func(act func(*eventsim.RNG) csi.Activity, seedOff int64, secs float64) [][]float64 {
		rng := eventsim.NewRNG(seed + seedOff)
		scene := csi.NewScene(rng.Fork())
		tl := (&csi.Timeline{}).Add(0, secs, act(rng.Fork()))
		amp := scene.Collect(tl, fs, secs).Amplitudes(17)
		var wins [][]float64
		for i := 0; i+winLen <= len(amp); i += winLen {
			wins = append(wins, amp[i:i+winLen])
		}
		return wins
	}
	ground := func(*eventsim.RNG) csi.Activity { return csi.OnGround() }
	hold := func(r *eventsim.RNG) csi.Activity { return csi.Hold(r) }
	typing := func(r *eventsim.RNG) csi.Activity { return csi.Typing(r) }

	train := map[string][][]float64{
		"on-ground": collect(ground, 1, 24),
		"hold":      collect(hold, 2, 24),
		"typing":    collect(typing, 3, 24),
	}
	test := map[string][][]float64{
		"on-ground": collect(ground, 11, 16),
		"hold":      collect(hold, 12, 16),
		"typing":    collect(typing, 13, 16),
	}
	c := csi.Train(train, fs)
	acc, _ := c.ConfusionMatrix(test, fs)
	return acc
}

// Sparkline renders the subcarrier-17 amplitude as an ASCII series
// binned to the given number of columns — the textual Figure 5.
func (r *Figure5Result) Sparkline(cols int) string {
	amp := r.Series.Amplitudes(r.Subcarrier)
	if len(amp) == 0 || cols < 1 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	lo, hi := amp[0], amp[0]
	for _, v := range amp {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	var b strings.Builder
	per := len(amp) / cols
	if per < 1 {
		per = 1
	}
	for i := 0; i+per <= len(amp); i += per {
		// Bin by range within the bucket to surface fluctuation.
		blo, bhi := amp[i], amp[i]
		for _, v := range amp[i : i+per] {
			if v < blo {
				blo = v
			}
			if v > bhi {
				bhi = v
			}
		}
		idx := int((bhi - blo) / span * float64(len(ramp)-1) * 2)
		if idx >= len(ramp) {
			idx = len(ramp) - 1
		}
		b.WriteRune(ramp[idx])
	}
	return b.String()
}

// Render prints the per-phase statistics and the textual trace.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 5: CSI amplitude of ACKs from the victim (subcarrier 17, 150 fps)\n")
	fmt.Fprintf(&b, "samples: %d (loss %.1f%%)\n", len(r.Series), 100*r.LossRate)
	fmt.Fprintf(&b, "%-18s %8s %8s %10s %9s\n", "Phase", "Start", "End", "Std/Mean", "HighBand")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-18s %7.0fs %7.0fs %10.4f %9.3f\n",
			p.Label, p.Start, p.End, p.NormStd, p.HighBand)
	}
	fmt.Fprintf(&b, "fluctuation trace (per-bin range): %s\n", r.Sparkline(90))
	fmt.Fprintf(&b, "phases separable from ACK CSI alone: %v\n", r.Separable)
	fmt.Fprintf(&b, "activity classifier held-out accuracy: %.0f%%\n", 100*r.ClassifierAccuracy)
	fmt.Fprintf(&b, "typing bursts localised in the typing window: %d\n", r.KeystrokeBursts)
	return b.String()
}
