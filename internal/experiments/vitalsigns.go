package experiments

import (
	"fmt"
	"math"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
)

// VitalSignsRow is one breathing-rate measurement.
type VitalSignsRow struct {
	TrueBPM      float64
	EstimatedBPM float64
	ErrorBPM     float64
}

// VitalSignsResult answers one of the paper's explicit open questions
// (§4.1): "can an attacker estimate vital signs such as heart rate
// and breathing rate of people from the CSI of their WiFi devices?"
// — yes, for breathing: the chest's periodic displacement modulates a
// body-scatter path, and the dominant frequency of the ACK-CSI
// amplitude recovers the rate.
type VitalSignsResult struct {
	Rows      []VitalSignsRow
	MeanError float64
	// Recovered: all estimates within 2 BPM.
	Recovered bool
}

// VitalSigns is extension experiment EX2: the attacker probes a
// sleeping person's phone at 50 fps for 60 s and reads their
// breathing rate out of the forced ACKs.
func VitalSigns(seed int64) *VitalSignsResult {
	out := &VitalSignsResult{Recovered: true}
	for i, bpm := range []float64{10, 14, 18, 24} {
		h := newHomeNetwork(seed+int64(i)*7, mac.ProfileGenericAP, mac.ProfileGenericClient)
		rng := eventsim.NewRNG(seed + 500 + int64(i))
		scene := csi.NewScene(rng.Fork())
		tl := (&csi.Timeline{}).Add(0, 60, csi.Breathing(bpm))
		sensor := core.NewCSISensor(h.attacker, victimAddr, scene, tl)
		series := sensor.RunFor(50, 60*eventsim.Second)

		// Average a few subcarriers for robustness, smooth, and find
		// the dominant frequency in the respiratory band.
		n := len(series)
		avg := make([]float64, n)
		for _, slot := range []int{8, 17, 30, 44} {
			amp := series.Amplitudes(slot)
			m := csi.Mean(amp)
			for j := range avg {
				avg[j] += amp[j] / m
			}
		}
		smoothed := csi.MovingAverage(avg, 5)
		fs := series.MeanRate()
		est := csi.DominantFrequency(smoothed, fs, 0.08, 0.6, 120) * 60
		row := VitalSignsRow{TrueBPM: bpm, EstimatedBPM: est, ErrorBPM: math.Abs(est - bpm)}
		if row.ErrorBPM > 2 {
			out.Recovered = false
		}
		out.MeanError += row.ErrorBPM
		out.Rows = append(out.Rows, row)
	}
	out.MeanError /= float64(len(out.Rows))
	return out
}

// Render prints the breathing-rate table.
func (r *VitalSignsResult) Render() string {
	var b strings.Builder
	b.WriteString("Open question (§4.1): breathing rate from ACK CSI\n")
	fmt.Fprintf(&b, "%12s %14s %10s\n", "true (BPM)", "estimated", "error")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12.0f %14.1f %10.1f\n", row.TrueBPM, row.EstimatedBPM, row.ErrorBPM)
	}
	fmt.Fprintf(&b, "mean error %.1f BPM; recovered within 2 BPM: %v\n", r.MeanError, r.Recovered)
	return b.String()
}
