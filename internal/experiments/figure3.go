package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/trace"
)

// Figure3Result reproduces the paper's Figure 3 and the §2.1
// blocklist experiment: an AP that detects the attacker as a
// malfunctioning device and deauths it — yet still acknowledges its
// fake frames, even after the attacker's MAC is manually blocked.
type Figure3Result struct {
	Capture *trace.Capture

	DeauthBursts   int  // deauth transmissions aimed at the attacker
	SameSNBursts   bool // retransmissions carry the same sequence number
	AckedDespite   bool // fake frame ACKed despite the deauths
	AckedBlocklist bool // fake frame ACKed with the blocklist active
	BlocklistDrops uint64
	DeauthFrameSNs []uint16
}

// Figure3 runs E3 against an AP with the deauth-on-unknown firmware
// (the Qualcomm IPQ 4019 profile observed in the paper).
func Figure3(seed int64) *Figure3Result {
	h := newHomeNetwork(seed, mac.ProfileQualcommIPQ4019, mac.ProfileGenericClient)
	cap := &trace.Capture{}
	cap.Attach(h.sniffer)

	// Phase 1: fake frames at the AP; it deauths but still ACKs.
	res1 := core.ProbeSync(h.attacker, apAddr, core.ProbeNull, 2, 40*eventsim.Millisecond)
	h.sched.RunFor(150 * eventsim.Millisecond)

	out := &Figure3Result{Capture: &trace.Capture{}, AckedDespite: res1.Responded}
	for _, r := range cap.Records {
		f := r.Frame()
		if f == nil {
			continue
		}
		switch ff := f.(type) {
		case *dot11.Deauth:
			if ff.Addr1 == h.attacker.MAC {
				out.DeauthBursts++
				out.DeauthFrameSNs = append(out.DeauthFrameSNs, ff.Seq.Number)
				out.Capture.Records = append(out.Capture.Records, r)
			}
		case *dot11.Data, *dot11.Ack:
			out.Capture.Records = append(out.Capture.Records, r)
		}
	}
	// Same-SN check within each burst of 3.
	out.SameSNBursts = len(out.DeauthFrameSNs) >= 3
	for i := 1; i < len(out.DeauthFrameSNs) && i < 3; i++ {
		if out.DeauthFrameSNs[i] != out.DeauthFrameSNs[0] {
			out.SameSNBursts = false
		}
	}

	// Phase 2: "we manually blocked the attacker's fake MAC address
	// on the access point. Surprisingly, the AP still acknowledges."
	h.ap.Block(h.attacker.MAC)
	res2 := core.ProbeSync(h.attacker, apAddr, core.ProbeNull, 3, 40*eventsim.Millisecond)
	h.sched.RunFor(150 * eventsim.Millisecond)
	out.AckedBlocklist = res2.Responded
	out.BlocklistDrops = h.ap.Stats.BlockedDrops
	return out
}

// Render prints the Figure 3 capture and the blocklist verdict.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3: the attacked AP detects something strange, yet still ACKs\n")
	b.WriteString(r.Capture.Table(victimAddr, apAddr))
	fmt.Fprintf(&b, "deauth transmissions to attacker: %d (same SN across burst: %v)\n",
		r.DeauthBursts, r.SameSNBursts)
	fmt.Fprintf(&b, "fake frames ACKed despite deauths: %v\n", r.AckedDespite)
	fmt.Fprintf(&b, "fake frames ACKed with MAC blocklist active: %v (host dropped %d post-ACK)\n",
		r.AckedBlocklist, r.BlocklistDrops)
	return b.String()
}
