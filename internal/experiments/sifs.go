package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
)

// SIFSResult is the §2.2 analysis: why Polite WiFi cannot be
// prevented.
type SIFSResult struct {
	// Rows compare WPA2 decode latency against the SIFS deadline for
	// every band and decoder class.
	Rows []core.FeasibilityRow

	// Ablation: a hypothetical validating station.
	ValidatingLateAcks  uint64 // ACKs it sent after the deadline
	ValidatingTxRetries uint64 // retries its legitimate peer suffered
	ValidatingTxFailed  uint64 // peer frames lost outright
	ValidatingAcksFakes bool   // did it ack fake frames? (no)

	// Even the validator answers fake RTS with CTS.
	RTSElicitedCTS bool
	CTSResponses   int
}

// SIFSAnalysis runs E4.
func SIFSAnalysis(seed int64) *SIFSResult {
	out := &SIFSResult{Rows: core.FeasibilityStudy(500)}

	// Ablation: validating victim. Its own AP sends it legitimate
	// traffic; every ACK misses the deadline so the AP retries and
	// fails.
	h := newHomeNetwork(seed, mac.ProfileGenericAP, mac.ProfileValidating)
	for i := 0; i < 5; i++ {
		h.ap.SendData(victimAddr, []byte("legitimate protected traffic"))
		h.sched.RunFor(100 * eventsim.Millisecond)
	}
	out.ValidatingLateAcks = h.victim.Stats.LateAcks
	out.ValidatingTxRetries = h.ap.Stats.TxRetries
	out.ValidatingTxFailed = h.ap.Stats.TxFailed

	fake := core.ProbeSync(h.attacker, victimAddr, core.ProbeNull, 5, 5*eventsim.Millisecond)
	out.ValidatingAcksFakes = fake.Responded

	// RTS/CTS: control frames cannot be protected, so the validator
	// responds anyway.
	rts := core.ProbeSync(h.attacker, victimAddr, core.ProbeRTS, 5, 5*eventsim.Millisecond)
	out.RTSElicitedCTS = rts.Responded
	out.CTSResponses = rts.Responses
	return out
}

// Render prints the feasibility table and the ablation verdicts.
func (r *SIFSResult) Render() string {
	var b strings.Builder
	b.WriteString("§2.2: can a receiver validate a frame before the ACK deadline?\n")
	b.WriteString(core.RenderFeasibility(r.Rows))
	b.WriteString("\nAblation — hypothetical decrypt-then-ACK station:\n")
	fmt.Fprintf(&b, "  late ACKs (missed SIFS): %d\n", r.ValidatingLateAcks)
	fmt.Fprintf(&b, "  peer retransmissions caused: %d, peer frames lost: %d\n",
		r.ValidatingTxRetries, r.ValidatingTxFailed)
	fmt.Fprintf(&b, "  fake data frames acknowledged: %v\n", r.ValidatingAcksFakes)
	fmt.Fprintf(&b, "  fake RTS answered with CTS anyway: %v (%d responses)\n",
		r.RTSElicitedCTS, r.CTSResponses)
	b.WriteString("conclusion: data-frame validation breaks the link; control frames are\n")
	b.WriteString("unencryptable, so Polite WiFi remains exploitable either way.\n")
	return b.String()
}
