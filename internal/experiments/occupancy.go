package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// OccupancyRow is one home's verdict.
type OccupancyRow struct {
	Home     string
	Occupied bool // ground truth
	NormStd  float64
	Detected bool
}

// OccupancyResult answers the paper's open question "can an attacker
// detect occupancy?" (§4.1): probe any WiFi device inside a home from
// outside, and classify the home as occupied when the ACK-CSI
// fluctuation exceeds the empty-home baseline.
type OccupancyResult struct {
	Rows     []OccupancyRow
	Accuracy float64
	// Threshold is the decision boundary on normalised CSI std.
	Threshold float64
}

// Occupancy is extension experiment EX4: six homes, half occupied by
// a person moving about, probed from the street.
func Occupancy(seed int64) *OccupancyResult {
	out := &OccupancyResult{Threshold: 0.05}
	occupied := []bool{true, false, true, false, false, true}
	correct := 0
	for i, occ := range occupied {
		sched := eventsim.NewScheduler()
		rng := eventsim.NewRNG(seed + int64(i)*31)
		medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
			PathLoss: radio.LogDistance{Exponent: 2.5}, CaptureMarginDB: 10,
		})
		// One IoT device inside; the attacker never associates.
		mac.New(medium, rng.Fork(), mac.Config{
			Name: "iot", Addr: victimAddr, Role: mac.RoleClient,
			Profile: mac.ProfileESP8266, SSID: "home",
			Position: radio.Position{X: 10}, Band: phy.Band2GHz, Channel: 6,
		})
		attacker := core.NewAttacker(medium, radio.Position{}, phy.Band2GHz, 6, core.DefaultFakeMAC)

		scene := csi.NewScene(rng.Fork())
		scene.DeviceRest = csi.Vec3{X: 10, Z: 0.5}
		tl := &csi.Timeline{}
		if occ {
			tl.Add(0, 15, csi.Walking(rng.Fork(), 2.0, 0.9))
		}
		sensor := core.NewCSISensor(attacker, victimAddr, scene, tl)
		series := sensor.RunFor(50, 12*eventsim.Second)

		amp := csi.Hampel(series.Amplitudes(17), 5, 3)
		normStd := 0.0
		if m := csi.Mean(amp); m > 0 {
			normStd = csi.Std(amp) / m
		}
		row := OccupancyRow{
			Home:     fmt.Sprintf("home-%d", i+1),
			Occupied: occ,
			NormStd:  normStd,
			Detected: normStd > out.Threshold,
		}
		if row.Detected == row.Occupied {
			correct++
		}
		out.Rows = append(out.Rows, row)
	}
	out.Accuracy = float64(correct) / float64(len(occupied))
	return out
}

// Render prints the per-home verdicts.
func (r *OccupancyResult) Render() string {
	var b strings.Builder
	b.WriteString("Open question (§4.1): occupancy detection from outside the home\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %10s\n", "Home", "occupied", "CSI std", "detected")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %10v %10.4f %10v\n", row.Home, row.Occupied, row.NormStd, row.Detected)
	}
	fmt.Fprintf(&b, "accuracy: %.0f%% (threshold %.2f)\n", 100*r.Accuracy, r.Threshold)
	return b.String()
}
