package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/power"
)

// BatteryRow is one camera's lifetime analysis.
type BatteryRow struct {
	Battery        power.Battery
	AdvertisedLife string
	AttackDrawMW   float64
	LifetimeHours  float64
}

// BatteryResult reproduces the §4.2 arithmetic: what the measured
// 900-fps attack draw does to real camera batteries.
type BatteryResult struct {
	Rows []BatteryRow
	// PaperCircle2Hours / PaperXT2Hours are the paper's numbers
	// (~6.7 h and ~16.7 h) for comparison.
	PaperCircle2Hours, PaperXT2Hours float64
}

// BatteryLife runs E8 using the measured peak draw from a Figure 6
// run (pass the paper's 360 mW to reproduce its table exactly).
func BatteryLife(attackDrawMW float64) *BatteryResult {
	out := &BatteryResult{PaperCircle2Hours: 6.7, PaperXT2Hours: 16.7}
	for _, row := range []struct {
		b    power.Battery
		life string
	}{
		{power.LogitechCircle2, "up to 3 months"},
		{power.BlinkXT2, "up to 2 years"},
	} {
		out.Rows = append(out.Rows, BatteryRow{
			Battery:        row.b,
			AdvertisedLife: row.life,
			AttackDrawMW:   attackDrawMW,
			LifetimeHours:  row.b.LifetimeHours(attackDrawMW),
		})
	}
	return out
}

// Render prints the lifetime table.
func (r *BatteryResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.2: battery life of IoT cameras under a 900 fps attack\n")
	fmt.Fprintf(&b, "%-28s %-16s %12s %14s\n", "Device", "Advertised", "Draw (mW)", "Lifetime (h)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-28s %-16s %12.0f %14.1f\n",
			row.Battery.String(), row.AdvertisedLife, row.AttackDrawMW, row.LifetimeHours)
	}
	fmt.Fprintf(&b, "paper: Circle 2 ≈ %.1f h, Blink XT2 ≈ %.1f h\n",
		r.PaperCircle2Hours, r.PaperXT2Hours)
	return b.String()
}
