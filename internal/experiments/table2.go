package experiments

import (
	"fmt"
	"sort"
	"strings"

	"politewifi/internal/oui"
	"politewifi/internal/world"
)

// Table2Result reproduces the §3 large-scale study: the wardrive
// census of WiFi devices and APs that respond to fake frames.
type Table2Result struct {
	Run *world.Result

	// ResponseRate is the headline number (the paper: 100%).
	ResponseRate float64
	// Paper totals for comparison.
	PaperClients, PaperAPs int
}

// Table2 runs E5 at the given census scale (1.0 = the full 5,328
// devices; smaller scales keep unit tests quick).
func Table2(seed int64, scale float64) *Table2Result {
	cfg := world.DefaultConfig()
	cfg.Seed = seed
	cfg.Scale = scale
	return Table2WithConfig(cfg)
}

// Table2WithConfig runs the study with an explicit wardrive
// configuration — the hook for custom dwell times and for attaching a
// telemetry registry (cfg.Metrics) to the drive.
func Table2WithConfig(cfg world.Config) *Table2Result {
	return Table2FromResult(world.Run(cfg))
}

// Table2FromResult wraps an already-run drive — the politewifid job
// path, where the daemon owns the Run call (cancellation, shared
// pool, resume) and only the rendering is delegated here.
func Table2FromResult(res *world.Result) *Table2Result {
	out := &Table2Result{
		Run:          res,
		PaperClients: oui.TotalClients,
		PaperAPs:     oui.TotalAPs,
	}
	if res.Total() > 0 {
		out.ResponseRate = float64(res.TotalResponded()) / float64(res.Total())
	}
	return out
}

func topVendors(m map[string]int, n int) []oui.CensusEntry {
	entries := make([]oui.CensusEntry, 0, len(m))
	for v, c := range m {
		entries = append(entries, oui.CensusEntry{Vendor: v, Count: c})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Vendor < entries[j].Vendor
	})
	if n > len(entries) {
		n = len(entries)
	}
	return entries[:n]
}

// Render prints the two top-20 vendor columns of Table 2 plus totals.
func (r *Table2Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 2: WiFi devices and APs that respond to our fake 802.11 frames\n\n")
	clients := topVendors(r.Run.ClientVendors, 20)
	aps := topVendors(r.Run.APVendors, 20)
	fmt.Fprintf(&b, "%-24s %9s   | %-24s %9s\n", "Client vendor", "# devices", "AP vendor", "# devices")
	rows := len(clients)
	if len(aps) > rows {
		rows = len(aps)
	}
	var cOthers, aOthers int
	for v, c := range r.Run.ClientVendors {
		if !inTop(clients, v) {
			cOthers += c
		}
	}
	for v, c := range r.Run.APVendors {
		if !inTop(aps, v) {
			aOthers += c
		}
	}
	for i := 0; i < rows; i++ {
		var l, rgt string
		if i < len(clients) {
			l = fmt.Sprintf("%-24s %9d", clients[i].Vendor, clients[i].Count)
		} else {
			l = fmt.Sprintf("%-24s %9s", "", "")
		}
		if i < len(aps) {
			rgt = fmt.Sprintf("%-24s %9d", aps[i].Vendor, aps[i].Count)
		}
		fmt.Fprintf(&b, "%s   | %s\n", l, rgt)
	}
	fmt.Fprintf(&b, "%-24s %9d   | %-24s %9d\n", "Others", cOthers, "Others", aOthers)
	fmt.Fprintf(&b, "%-24s %9d   | %-24s %9d\n", "Total", r.Run.ClientsResponded, "Total", r.Run.APsResponded)
	if r.Run.Cancelled {
		// A deliberately partial drive: say so, and report how much of
		// the route the census actually covers.
		fmt.Fprintf(&b, "\ndiscovered %d devices over %d of %d stops (drive cancelled)\n",
			r.Run.Total(), r.Run.StopsDone, r.Run.Stops)
	} else {
		fmt.Fprintf(&b, "\ndiscovered %d devices over %d stops (~%.0f min drive)\n",
			r.Run.Total(), r.Run.Stops, r.Run.DriveMinutes)
	}
	fmt.Fprintf(&b, "responded to fake frames: %d (%.1f%%)\n",
		r.Run.TotalResponded(), 100*r.ResponseRate)
	if len(r.Run.NonResponders) > 0 {
		if r.Run.Faulted {
			// Under injected faults the binary split is dishonest: report
			// how many non-responders are channel casualties rather than
			// confirmed silents.
			fmt.Fprintf(&b, "non-responders: %d (%d inconclusive under channel faults, %d silent)\n",
				len(r.Run.NonResponders), r.Run.Inconclusive,
				len(r.Run.NonResponders)-r.Run.Inconclusive)
		} else {
			fmt.Fprintf(&b, "non-responders: %d (out of RF range during their stop)\n", len(r.Run.NonResponders))
		}
	}
	return b.String()
}

func inTop(top []oui.CensusEntry, vendor string) bool {
	for _, e := range top {
		if e.Vendor == vendor {
			return true
		}
	}
	return false
}
