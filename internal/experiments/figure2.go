package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/trace"
)

// Figure2Result reproduces the paper's Figure 2: the raw capture of
// the attacker/victim exchange showing a Null function frame from the
// fake MAC answered by an Acknowledgement to the fake MAC.
type Figure2Result struct {
	// Capture is the sniffer's view of the exchange.
	Capture *trace.Capture
	// Acked reports whether the victim acknowledged the fake frame.
	Acked bool
	// GapMicros is the frame-end→ACK-start gap (expected: one SIFS).
	GapMicros float64
	// Probe carries the full probe statistics.
	Probe core.ProbeResult
}

// Figure2 runs E1: the attacker — never authenticated, holding no
// keys — sends one unencrypted null frame to the WPA2-protected
// victim and the victim's PHY acknowledges it to the fake MAC.
func Figure2(seed int64) *Figure2Result {
	h := newHomeNetwork(seed, mac.ProfileGenericAP, mac.ProfileGenericClient)
	cap := &trace.Capture{}
	cap.Attach(h.sniffer)

	res := core.ProbeSync(h.attacker, victimAddr, core.ProbeNull, 1, 2*eventsim.Millisecond)
	h.sched.RunFor(5 * eventsim.Millisecond)

	// Keep only the exchange frames (drop beacons) for the figure.
	exchange := &trace.Capture{}
	for _, r := range cap.Records {
		f := r.Frame()
		if f == nil {
			continue
		}
		switch f.(type) {
		case *dot11.Data, *dot11.Ack:
			exchange.Records = append(exchange.Records, r)
		}
	}
	return &Figure2Result{
		Capture:   exchange,
		Acked:     res.Responded,
		GapMicros: res.FirstGap.Micros(),
		Probe:     res,
	}
}

// Render prints the Wireshark-style table of Figure 2.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2: frames exchanged between attacker and victim\n")
	b.WriteString(r.Capture.Table(victimAddr, apAddr))
	fmt.Fprintf(&b, "victim acknowledged fake frame: %v (ACK after %.1f µs ≈ SIFS)\n",
		r.Acked, r.GapMicros)
	return b.String()
}
