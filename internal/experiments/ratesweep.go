package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/csi"
	"politewifi/internal/eventsim"
)

// RateSweepPoint is one sensing-rate operating point.
type RateSweepPoint struct {
	RateHz   float64
	Accuracy float64 // held-out activity classification accuracy
}

// RateSweepResult is the ablation behind the paper's choice of
// ~150 fake frames per second for sensing (§4.1) and its remark that
// WiFi sensing needs 100–1000 pkt/s (§4.3): below ~50 Hz the typing
// band (≥3.5 Hz strikes plus harmonics) aliases and classification
// degrades; above ~100 Hz accuracy saturates.
type RateSweepResult struct {
	Points []RateSweepPoint
	// SaturationHz is the lowest swept rate achieving within 2% of
	// the best accuracy.
	SaturationHz float64
}

// SensingRateSweep runs the ablation: same activities, sampled at
// increasing CSI rates, classified with the standard pipeline.
func SensingRateSweep(seed int64) *RateSweepResult {
	out := &RateSweepResult{}
	rates := []float64{5, 10, 25, 50, 100, 150, 300}
	best := 0.0
	for _, fs := range rates {
		acc := sweepAccuracy(seed, fs)
		out.Points = append(out.Points, RateSweepPoint{RateHz: fs, Accuracy: acc})
		if acc > best {
			best = acc
		}
	}
	for _, p := range out.Points {
		if p.Accuracy >= best-0.02 {
			out.SaturationHz = p.RateHz
			break
		}
	}
	return out
}

// sweepAccuracy trains/tests the ground/hold/typing classifier at one
// sampling rate.
func sweepAccuracy(seed int64, fs float64) float64 {
	winLen := int(fs * 4)
	if winLen < 8 {
		winLen = 8
	}
	collect := func(act func(*eventsim.RNG) csi.Activity, seedOff int64, secs float64) [][]float64 {
		rng := eventsim.NewRNG(seed + seedOff)
		scene := csi.NewScene(rng.Fork())
		tl := (&csi.Timeline{}).Add(0, secs, act(rng.Fork()))
		amp := scene.Collect(tl, fs, secs).Amplitudes(17)
		var wins [][]float64
		for i := 0; i+winLen <= len(amp); i += winLen {
			wins = append(wins, amp[i:i+winLen])
		}
		return wins
	}
	ground := func(*eventsim.RNG) csi.Activity { return csi.OnGround() }
	hold := func(r *eventsim.RNG) csi.Activity { return csi.Hold(r) }
	typing := func(r *eventsim.RNG) csi.Activity { return csi.Typing(r) }
	train := map[string][][]float64{
		"on-ground": collect(ground, 21, 24),
		"hold":      collect(hold, 22, 24),
		"typing":    collect(typing, 23, 24),
	}
	test := map[string][][]float64{
		"on-ground": collect(ground, 31, 16),
		"hold":      collect(hold, 32, 16),
		"typing":    collect(typing, 33, 16),
	}
	c := csi.Train(train, fs)
	acc, _ := c.ConfusionMatrix(test, fs)
	return acc
}

// Render prints the sweep.
func (r *RateSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: sensing quality vs fake-frame rate\n")
	fmt.Fprintf(&b, "%10s %10s\n", "rate (Hz)", "accuracy")
	for _, p := range r.Points {
		bar := strings.Repeat("#", int(p.Accuracy*40))
		fmt.Fprintf(&b, "%10.0f %9.0f%% %s\n", p.RateHz, 100*p.Accuracy, bar)
	}
	fmt.Fprintf(&b, "coarse activity classes saturate by ~%.0f Hz; keystroke-grade detail\n", r.SaturationHz)
	b.WriteString("(7–8 Hz strike harmonics) needs ≥50–100 Hz — hence the paper's 100–1000 pkt/s guidance.\n")
	return b.String()
}
