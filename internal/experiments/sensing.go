package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// SensingDevice is one unmodified reflector in the whole-home
// sensing study.
type SensingDevice struct {
	Name         string
	MAC          dot11.MAC
	AchievedRate float64 // CSI samples per second via Polite WiFi
	MotionStd    float64 // peak sliding std during the motion window
	QuietStd     float64 // sliding std while quiet
	MotionSeen   bool
}

// SensingResult reproduces §4.3: WiFi sensing with software
// modification on only one device. A hub probes every unmodified
// device in the home; a person walks near exactly one of them; the
// hub localises the motion to that device from ACK CSI alone.
type SensingResult struct {
	Devices []SensingDevice
	// MotionDevice is the index where motion actually happened.
	MotionDevice int
	// DetectedDevice is where the pipeline saw it.
	DetectedDevice int
	Localized      bool

	// NaturalTrafficRate is the telemetry rate an unmodified IoT
	// device emits on its own — far below what sensing needs.
	NaturalTrafficRate float64
	// RequiredRate is the 100–1000 pkt/s the paper cites for WiFi
	// sensing techniques.
	RequiredRate float64
	// ModifiedDevices compares deployment cost: Polite WiFi needs 1;
	// classic two-device sensing needs every participant modified.
	ModifiedDevices, ClassicModifiedDevices int
}

// Sensing runs E9 with three unmodified reflector devices.
func Sensing(seed int64) *SensingResult {
	rng := eventsim.NewRNG(seed)
	sched := eventsim.NewScheduler()
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 2.2},
		CaptureMarginDB: 10,
	})

	ap := mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "Home", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	_ = ap

	names := []string{"smart-tv", "thermostat", "speaker"}
	positions := []radio.Position{{X: 6, Y: 0}, {X: 0, Y: 7}, {X: -6, Y: -3}}
	var stations []*mac.Station
	var macs []dot11.MAC
	for i, n := range names {
		m := dot11.MustMAC(fmt.Sprintf("ec:fa:bc:00:01:%02x", i+1))
		macs = append(macs, m)
		st := mac.New(medium, rng.Fork(), mac.Config{
			Name: n, Addr: m, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
			SSID: "Home", Position: positions[i], Band: phy.Band2GHz, Channel: 6,
		})
		st.Associate(apAddr, nil)
		stations = append(stations, st)
	}
	sched.RunFor(400 * eventsim.Millisecond)

	// Measure natural traffic of an unmodified IoT device: one
	// telemetry report every ~2 s.
	chat := sched.Every(2*eventsim.Second, func() {
		stations[0].SendData(apAddr, []byte("telemetry"))
	})
	before := stations[0].Stats.TxData
	sched.RunFor(10 * eventsim.Second)
	chat.Stop()
	natural := float64(stations[0].Stats.TxData-before) / 10

	// The hub (software change on this one device only).
	hub := core.NewAttacker(medium, radio.Position{Z: 2}, phy.Band2GHz, 6, core.DefaultFakeMAC)

	const duration = 24 * eventsim.Second
	const perDeviceRate = 50.0
	motionDev := 1 // person walks near the thermostat

	out := &SensingResult{
		MotionDevice:           motionDev,
		NaturalTrafficRate:     natural,
		RequiredRate:           100,
		ModifiedDevices:        1,
		ClassicModifiedDevices: 1 + len(names), // TX and every RX
	}

	// One scene per hub↔device link; motion appears only in the
	// thermostat's scene.
	var sensors []*core.CSISensor
	for i := range names {
		scene := csi.NewScene(rng.Fork())
		scene.DeviceRest = csi.Vec3{X: positions[i].X, Y: positions[i].Y, Z: 0.5}
		tl := &csi.Timeline{}
		if i == motionDev {
			tl.Add(8, 18, csi.Walking(rng.Fork(), 1.5, 0.8))
		}
		s := core.NewCSISensor(hub, macs[i], scene, tl)
		sensors = append(sensors, s)
		// Stagger starts so the round-robin probes interleave.
		offset := eventsim.Time(i) * 7 * eventsim.Millisecond
		sched.After(offset, func() { s.Start(perDeviceRate) })
	}
	sched.RunFor(duration)
	for _, s := range sensors {
		s.Stop()
	}

	detected, bestScore := -1, 0.0
	for i, s := range sensors {
		amp := csi.Hampel(s.Series.Amplitudes(17), 5, 3)
		norm := csi.Mean(amp)
		if norm == 0 {
			norm = 1
		}
		stds := csi.SlidingStd(amp, 25)
		peak := 0.0
		for _, v := range stds {
			if v > peak {
				peak = v
			}
		}
		// Quiet std from the pre-motion head of the series.
		head := len(amp) / 6
		quiet := csi.Std(amp[:head]) / norm
		peak /= norm
		dev := SensingDevice{
			Name:         names[i],
			MAC:          macs[i],
			AchievedRate: s.Series.MeanRate(),
			MotionStd:    peak,
			QuietStd:     quiet,
			MotionSeen:   peak > 5*quiet && peak > 0.02,
		}
		out.Devices = append(out.Devices, dev)
		if dev.MotionSeen && peak > bestScore {
			bestScore = peak
			detected = i
		}
	}
	out.DetectedDevice = detected
	out.Localized = detected == motionDev
	return out
}

// Render prints the whole-home sensing comparison.
func (r *SensingResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.3: WiFi sensing with software modification on one device only\n")
	fmt.Fprintf(&b, "%-12s %-20s %12s %11s %11s %s\n",
		"Device", "MAC", "CSI rate/s", "quiet std", "motion std", "motion?")
	for _, d := range r.Devices {
		fmt.Fprintf(&b, "%-12s %-20s %12.1f %11.4f %11.4f %v\n",
			d.Name, d.MAC, d.AchievedRate, d.QuietStd, d.MotionStd, d.MotionSeen)
	}
	fmt.Fprintf(&b, "motion near %q localised correctly: %v\n",
		r.Devices[r.MotionDevice].Name, r.Localized)
	fmt.Fprintf(&b, "natural IoT traffic: %.1f pkt/s (sensing needs %g–1000)\n",
		r.NaturalTrafficRate, r.RequiredRate)
	fmt.Fprintf(&b, "devices needing software changes: Polite WiFi %d vs classic %d\n",
		r.ModifiedDevices, r.ClassicModifiedDevices)
	return b.String()
}
