package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/faults"
	"politewifi/internal/world"
)

// LossSweepPoint is one wardrive census under a fixed packet-loss
// rate.
type LossSweepPoint struct {
	LossRate     float64
	Discovered   int
	Responded    int
	Inconclusive int
	Silent       int
	// ResponseRate is responded/discovered at this loss rate.
	ResponseRate float64
	// CensusRecall is the fraction of the clean-channel responder
	// census still recovered at this loss rate — the headline accuracy
	// number of the sweep.
	CensusRecall float64
}

// LossSweepResult sweeps the Table 2 wardrive across channel loss
// rates. The paper measured a 100% response rate on quiet residential
// streets; this experiment asks how fast that census degrades — and
// how honestly the pipeline reports the degradation — once the
// channel starts eating frames.
type LossSweepResult struct {
	Points []LossSweepPoint
	// Rates is the full sweep plan; len(Points) < len(Rates) when the
	// sweep was cancelled part-way.
	Rates []float64
	// Cancelled reports a cooperative stop (world.Config.Cancel): the
	// sweep keeps every completed point — a point whose drive was cut
	// short is discarded, never reported as a (wrong) census — and
	// stops visiting further rates.
	Cancelled bool
}

// DefaultLossRates spans clean to half-lost channels.
var DefaultLossRates = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}

// LossSweep runs the wardrive once per loss rate. Each point runs the
// identical drive (same seed, same city) under Gilbert–Elliott bursty
// loss at the given stationary rate; rate 0 disables injection
// entirely and reproduces the pristine census byte-for-byte.
func LossSweep(cfg world.Config, rates []float64) *LossSweepResult {
	if len(rates) == 0 {
		rates = DefaultLossRates
	}
	out := &LossSweepResult{Rates: rates}
	baseline := 0
	for _, rate := range rates {
		pcfg := cfg
		pcfg.Metrics = nil // per-point telemetry would only average away
		pcfg.Stream = nil  // fold semantics hold per drive, not across rates
		if rate > 0 {
			fc := faults.BurstyLoss(rate)
			pcfg.Faults = &fc
		}
		res := world.Run(pcfg)
		if res.Cancelled {
			// The point's drive was cut short; its census covers a prefix
			// of the city and would skew every ratio in the table.
			out.Cancelled = true
			break
		}
		p := LossSweepPoint{
			LossRate:     rate,
			Discovered:   res.Total(),
			Responded:    res.TotalResponded(),
			Inconclusive: res.Inconclusive,
			Silent:       len(res.NonResponders) - res.Inconclusive,
		}
		if p.Discovered > 0 {
			p.ResponseRate = float64(p.Responded) / float64(p.Discovered)
		}
		if rate == 0 {
			baseline = p.Responded
		}
		if baseline > 0 {
			p.CensusRecall = float64(p.Responded) / float64(baseline)
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// Render prints the sweep table.
func (r *LossSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("loss sweep: wardrive census accuracy vs channel loss rate (Gilbert–Elliott bursty loss)\n")
	fmt.Fprintf(&b, "%8s %11s %10s %13s %8s %10s %8s\n",
		"loss", "discovered", "responded", "inconclusive", "silent", "resp rate", "recall")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%7.0f%% %11d %10d %13d %8d %9.1f%% %7.0f%%\n",
			100*p.LossRate, p.Discovered, p.Responded, p.Inconclusive, p.Silent,
			100*p.ResponseRate, 100*p.CensusRecall)
	}
	if r.Cancelled {
		fmt.Fprintf(&b, "sweep cancelled after %d/%d rates; points above are complete drives.\n",
			len(r.Points), len(r.Rates))
	}
	b.WriteString("verdicts separate confirmed silents from channel casualties: under loss,\n")
	b.WriteString("missing devices show up as inconclusive, not as fake non-responders.\n")
	return b.String()
}
