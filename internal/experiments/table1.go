package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
)

// Table1Row is one device of the paper's Table 1 plus our measured
// verdict.
type Table1Row struct {
	Device   string
	Module   string
	Standard string
	Probes   int
	Acks     int
	Polite   bool
}

// Table1Result reproduces the chipset-diversity study.
type Table1Result struct {
	Rows []Table1Row
	// AllPolite is the paper's finding: every tested device responds.
	AllPolite bool
}

// Table1 runs E2: each of the paper's five devices (different WiFi
// modules and standards, one of them an AP) is probed with fake
// frames while associated to (or serving) a WPA2 network.
func Table1(seed int64) *Table1Result {
	out := &Table1Result{AllPolite: true}
	for i, entry := range mac.Table1Profiles {
		var h *homeNetwork
		var target = victimAddr
		if entry.Profile.DeauthOnUnknown {
			// The Google Wifi AP entry: probe the AP itself.
			h = newHomeNetwork(seed+int64(i), entry.Profile, mac.ProfileGenericClient)
			target = apAddr
		} else {
			h = newHomeNetwork(seed+int64(i), mac.ProfileGenericAP, entry.Profile)
		}
		res := core.ProbeSync(h.attacker, target, core.ProbeNull, 10, 3*eventsim.Millisecond)
		row := Table1Row{
			Device:   entry.Device,
			Module:   entry.Profile.Name,
			Standard: entry.Profile.Standard,
			Probes:   res.Sent,
			Acks:     res.Responses,
			Polite:   res.Responded,
		}
		if !row.Polite {
			out.AllPolite = false
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render prints Table 1 with the measured verdict column.
func (r *Table1Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 1: list of tested chipsets/devices\n")
	fmt.Fprintf(&b, "%-22s %-20s %-9s %6s %6s %s\n",
		"Device", "WiFi module", "Standard", "Probes", "ACKs", "Polite?")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %-20s %-9s %6d %6d %v\n",
			row.Device, row.Module, row.Standard, row.Probes, row.Acks, row.Polite)
	}
	fmt.Fprintf(&b, "all devices polite: %v\n", r.AllPolite)
	return b.String()
}
