// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment returns a structured result
// with a Render method that prints the same rows/series the paper
// reports; cmd/experiments runs them all, and the repository's
// benchmark harness (bench_test.go) wraps each one in a testing.B
// target.
//
// Experiment index (see DESIGN.md §4):
//
//	E1 Figure2       — fake frame → ACK capture table
//	E2 Table1        — five chipsets, all polite
//	E3 Figure3       — deauthing AP still ACKs; blocklist is cosmetic
//	E4 SIFSAnalysis  — decode vs SIFS; RTS/CTS fallback; validating ablation
//	E5 Table2        — 5,328-device wardrive census
//	E6 Figure5       — CSI of ACKs during ground/pickup/hold/typing
//	E7 Figure6       — power draw vs fake-frame rate
//	E8 BatteryLife   — camera battery lifetimes under attack
//	E9 Sensing       — one-device vs two-device WiFi sensing
package experiments

import (
	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// Well-known addresses used across experiments, matching the paper's
// captures where it shows them.
var (
	apAddr     = dot11.MustMAC("f2:6e:0b:00:00:01")
	victimAddr = dot11.MustMAC("f2:6e:0b:12:34:56")
)

// homeNetwork is the standard experiment scene: one WPA2 network
// (AP + victim client), an attacker outside it, and a monitor sniffer.
type homeNetwork struct {
	sched    *eventsim.Scheduler
	medium   *radio.Medium
	ap       *mac.Station
	victim   *mac.Station
	attacker *core.Attacker
	sniffer  *radio.Radio
}

// newHomeNetwork builds the scene. The victim's chipset profile is a
// parameter so Table 1 can sweep it.
func newHomeNetwork(seed int64, apProfile, victimProfile mac.ChipsetProfile) *homeNetwork {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(seed)
	medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 2.2},
		CaptureMarginDB: 10,
	})
	h := &homeNetwork{sched: sched, medium: medium}
	h.ap = mac.New(medium, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: apProfile,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 0}, Band: phy.Band2GHz, Channel: 6,
	})
	h.victim = mac.New(medium, rng.Fork(), mac.Config{
		Name: "victim", Addr: victimAddr, Role: mac.RoleClient, Profile: victimProfile,
		SSID: "HomeNet", Passphrase: "correct horse battery staple",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	h.victim.Associate(apAddr, nil)
	sched.RunFor(300 * eventsim.Millisecond)
	h.attacker = core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)
	h.sniffer = medium.NewRadio("sniffer", radio.Position{X: 8}, phy.Band2GHz, 6)
	return h
}
