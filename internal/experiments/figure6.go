package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/power"
)

// Figure6Point is one rate/power measurement.
type Figure6Point struct {
	RateHz  float64
	PowerMW float64
	Dozed   bool // did the victim manage to sleep at all?
}

// Figure6Result reproduces the §4.2 power measurement: the victim is
// an ESP8266-class IoT module in power-save mode; the attacker sweeps
// the fake-frame rate and the victim's mean power draw is measured.
type Figure6Result struct {
	Points []Figure6Point

	BaselineMW float64 // no attack (paper: ~10 mW)
	StepMW     float64 // at 10 fps (paper: ~230 mW)
	PeakMW     float64 // at 900 fps (paper: ~360 mW)
	// Amplification is Peak/Baseline (paper: ~35×).
	Amplification float64
	// ShapeHolds: flat baseline → step at ~10 fps → linear growth.
	ShapeHolds bool
}

// Figure6Rates is the swept attack rates (frames per second).
var Figure6Rates = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 300, 500, 700, 900, 1000}

// Figure6 runs E7. Each rate gets its own independent network so
// power-save state cannot leak between measurements; measure window
// is `measure` seconds of simulated time per point.
func Figure6(seed int64, measure eventsim.Time) *Figure6Result {
	if measure == 0 {
		measure = 20 * eventsim.Second
	}
	out := &Figure6Result{}
	for i, rate := range Figure6Rates {
		h := newHomeNetwork(seed+int64(i)*101, mac.ProfileGenericAP, mac.ProfileESP8266)
		h.victim.EnablePowerSave()
		h.sched.RunFor(500 * eventsim.Millisecond) // settle into dozing

		meter := power.Attach(h.victim, power.ESP8266)
		dr := core.NewDrainer(h.attacker, victimAddr)
		dozesBefore := h.victim.Stats.Dozes

		// Warm-up so the awake/doze pattern reaches steady state
		// before the measurement window.
		dr.Start(rate)
		h.sched.RunFor(2 * eventsim.Second)
		meter.Reset()
		h.sched.RunFor(measure)
		dr.Stop()

		out.Points = append(out.Points, Figure6Point{
			RateHz:  rate,
			PowerMW: meter.MeanPowerMW(),
			Dozed:   h.victim.Stats.Dozes > dozesBefore,
		})
	}
	out.analyze()
	return out
}

func (r *Figure6Result) analyze() {
	at := func(rate float64) float64 {
		for _, p := range r.Points {
			if p.RateHz == rate {
				return p.PowerMW
			}
		}
		return 0
	}
	r.BaselineMW = at(0)
	r.StepMW = at(10)
	r.PeakMW = at(900)
	if r.BaselineMW > 0 {
		r.Amplification = r.PeakMW / r.BaselineMW
	}
	// Shape: baseline small; large step by 10–20 fps; monotone-ish
	// linear growth to 900+.
	r.ShapeHolds = r.BaselineMW < 30 &&
		r.StepMW > 8*r.BaselineMW &&
		r.PeakMW > r.StepMW*1.3 &&
		at(1000) >= r.PeakMW*0.95
}

// Render prints the rate→power series plus the headline numbers.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: power consumption vs fake-frame rate (ESP8266, PS mode)\n")
	fmt.Fprintf(&b, "%10s %12s %8s\n", "Rate (fps)", "Power (mW)", "Dozed?")
	for _, p := range r.Points {
		bar := strings.Repeat("#", int(p.PowerMW/8))
		fmt.Fprintf(&b, "%10.0f %12.1f %8v %s\n", p.RateHz, p.PowerMW, p.Dozed, bar)
	}
	fmt.Fprintf(&b, "baseline %.1f mW → step(10fps) %.1f mW → peak(900fps) %.1f mW\n",
		r.BaselineMW, r.StepMW, r.PeakMW)
	fmt.Fprintf(&b, "amplification at 900 fps: %.0fx (paper: 35x)\n", r.Amplification)
	fmt.Fprintf(&b, "flat→step→linear shape holds: %v\n", r.ShapeHolds)
	return b.String()
}
