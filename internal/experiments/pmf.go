package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// PMFRow is one network configuration in the footnote-2 study.
type PMFRow struct {
	Config string
	// DeauthAttackWorks: did a single forged deauth disconnect the
	// victim?
	DeauthAttackWorks bool
	// ForgeryAcked: was the forged deauth frame still ACKed at the PHY?
	ForgeryAcked bool
	// FakeNullAcked / RTSAnswered: the core Polite WiFi behaviours.
	FakeNullAcked bool
	RTSAnswered   bool
}

// PMFResult reproduces the paper's footnote 2: "IEEE 802.11w ...
// supports protected management frames ... However, control frames
// are still unprotected. Fundamentally, WiFi cannot encrypt control
// packets."
type PMFResult struct {
	Rows []PMFRow
}

// PMFStudy is an extension experiment (EX1 in DESIGN.md): it shows
// 802.11w stopping the classic deauthentication attack while leaving
// every Polite WiFi behaviour intact.
func PMFStudy(seed int64) *PMFResult {
	out := &PMFResult{}
	for _, pmf := range []bool{false, true} {
		sched := eventsim.NewScheduler()
		rng := eventsim.NewRNG(seed)
		medium := radio.NewMedium(sched, rng.Fork(), radio.Config{
			PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
		})
		mac.New(medium, rng.Fork(), mac.Config{
			Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
			SSID: "HomeNet", Passphrase: "correct horse battery staple", PMF: pmf,
			Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
		})
		victim := mac.New(medium, rng.Fork(), mac.Config{
			Name: "victim", Addr: victimAddr, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
			SSID: "HomeNet", Passphrase: "correct horse battery staple", PMF: pmf,
			Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
		})
		victim.Associate(apAddr, nil)
		sched.RunFor(300 * eventsim.Millisecond)
		attacker := core.NewAttacker(medium, radio.Position{X: 12}, phy.Band2GHz, 6, core.DefaultFakeMAC)

		// The deauth attack: forge one frame from the AP.
		var ackedToAP int
		attacker.OnFrame(func(f dot11.Frame, rx radio.Reception) {
			if a, ok := f.(*dot11.Ack); ok && a.RA == apAddr {
				ackedToAP++
			}
		})
		attacker.InjectDeauth(victimAddr, apAddr)
		sched.RunFor(50 * eventsim.Millisecond)

		row := PMFRow{
			DeauthAttackWorks: !victim.Associated(),
			ForgeryAcked:      ackedToAP > 0,
		}
		if pmf {
			row.Config = "WPA2 + 802.11w (PMF)"
		} else {
			row.Config = "WPA2"
		}

		// The Polite WiFi behaviours, unchanged either way.
		null := core.ProbeSync(attacker, victimAddr, core.ProbeNull, 3, 3*eventsim.Millisecond)
		rts := core.ProbeSync(attacker, victimAddr, core.ProbeRTS, 3, 3*eventsim.Millisecond)
		row.FakeNullAcked = null.Responded
		row.RTSAnswered = rts.Responded
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render prints the footnote-2 comparison.
func (r *PMFResult) Render() string {
	var b strings.Builder
	b.WriteString("Footnote 2: 802.11w protected management frames vs Polite WiFi\n")
	fmt.Fprintf(&b, "%-24s %-18s %-14s %-14s %s\n",
		"Network", "Deauth attack?", "Forgery ACKed", "Null ACKed", "RTS→CTS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %-18v %-14v %-14v %v\n",
			row.Config, row.DeauthAttackWorks, row.ForgeryAcked, row.FakeNullAcked, row.RTSAnswered)
	}
	b.WriteString("PMF kills the forged-deauth attack but cannot touch the ACK/CTS paths:\n")
	b.WriteString("control frames must stay readable by every nearby station.\n")
	return b.String()
}
