package experiments

import (
	"fmt"
	"strings"

	"politewifi/internal/core"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/power"
)

// DeviceSweepRow is one device class under the drain attack.
type DeviceSweepRow struct {
	Device        string
	BaselineMW    float64
	AttackMW      float64
	Amplification float64
	BatteryMWh    float64
	LifetimeH     float64 // under attack
	AdvertisedH   float64 // nominal lifetime at the baseline draw
}

// DeviceSweepResult is the paper's §4.2 closing question — "a
// detailed study of the impact of this attack on the battery life of
// different IoT and medical devices is an interesting topic for
// future research" — executed across four device classes.
type DeviceSweepResult struct {
	Rows []DeviceSweepRow
}

// deviceClasses pairs power profiles with representative batteries.
var deviceClasses = []struct {
	name    string
	profile power.Profile
	battery float64 // mWh
}{
	{"IoT sensor (ESP8266)", power.ESP8266, 2400},
	{"Security camera", power.ESP8266, 6000},
	{"Medical wearable", power.Profile{
		Name: "wearable", SleepMW: 0.9, IdleMW: 120, RxMW: 150, TxMW: 320, FrameOverheadUJ: 90,
	}, 1100},
	{"Smart lock", power.Profile{
		Name: "smart-lock", SleepMW: 2.5, IdleMW: 260, RxMW: 300, TxMW: 640, FrameOverheadUJ: 150,
	}, 4000},
}

// DeviceSweep runs EX5: a 900 fps drain attack against each device
// class, measuring baseline and under-attack draw and the resulting
// battery lifetimes.
func DeviceSweep(seed int64) *DeviceSweepResult {
	out := &DeviceSweepResult{}
	for i, dc := range deviceClasses {
		measure := func(rate float64) float64 {
			h := newHomeNetwork(seed+int64(i)*17, mac.ProfileGenericAP, mac.ProfileESP8266)
			h.victim.EnablePowerSave()
			h.sched.RunFor(500 * eventsim.Millisecond)
			meter := power.Attach(h.victim, dc.profile)
			dr := core.NewDrainer(h.attacker, victimAddr)
			dr.Start(rate)
			h.sched.RunFor(2 * eventsim.Second)
			meter.Reset()
			h.sched.RunFor(12 * eventsim.Second)
			dr.Stop()
			return meter.MeanPowerMW()
		}
		base := measure(0)
		attack := measure(900)
		b := power.Battery{Name: dc.name, CapacityMWh: dc.battery}
		row := DeviceSweepRow{
			Device:        dc.name,
			BaselineMW:    base,
			AttackMW:      attack,
			Amplification: attack / base,
			BatteryMWh:    dc.battery,
			LifetimeH:     b.LifetimeHours(attack),
			AdvertisedH:   b.LifetimeHours(base),
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render prints the device sweep table.
func (r *DeviceSweepResult) Render() string {
	var b strings.Builder
	b.WriteString("§4.2 future work: drain impact across device classes (900 fps attack)\n")
	fmt.Fprintf(&b, "%-24s %10s %10s %8s %12s %12s\n",
		"Device", "idle (mW)", "attack", "amp", "nominal (h)", "attacked (h)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %10.1f %10.1f %7.0fx %12.0f %12.1f\n",
			row.Device, row.BaselineMW, row.AttackMW, row.Amplification,
			row.AdvertisedH, row.LifetimeH)
	}
	b.WriteString("every power-saving device class collapses from weeks/months to hours.\n")
	return b.String()
}
