package mac

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// openNet builds an open (unencrypted) AP+client pair so burst
// payloads flow without CCMP, plus the monitor sniffer.
func openNet(t *testing.T) *testNet {
	t.Helper()
	m := quietMedium()
	rng := eventsim.NewRNG(42)
	n := &testNet{m: m, sched: m.Sched}
	n.ap = New(m, rng, Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "open", Position: radio.Position{X: 0}, Band: phy.Band2GHz, Channel: 6,
	})
	n.client = New(m, rng, Config{
		Name: "client", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "open", Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	n.attacker = m.NewRadio("attacker", radio.Position{X: 10}, phy.Band2GHz, 6)
	n.attacker.SetHandler(func(rx radio.Reception) {
		if !rx.FCSOK {
			return
		}
		if f, err := dot11.Decode(rx.Data); err == nil {
			n.captured = append(n.captured, f)
		}
	})
	n.associate(t)
	return n
}

func TestSendBurstDelivered(t *testing.T) {
	n := openNet(t)
	payloads := make([][]byte, 16)
	for i := range payloads {
		payloads[i] = []byte{byte(i)}
	}
	delivered := -1
	if err := n.client.SendBurst(apAddr, 3, payloads, func(d int) { delivered = d }); err != nil {
		t.Fatal(err)
	}
	n.sched.RunFor(100 * eventsim.Millisecond)
	if delivered != 16 {
		t.Fatalf("delivered = %d, want 16", delivered)
	}
	// The burst's MPDUs must NOT have drawn immediate ACKs; only the
	// association exchange (2 client frames) did.
	var bas, acksToClient int
	for _, f := range n.captured {
		switch ff := f.(type) {
		case *dot11.BlockAck:
			bas++
			if ff.RA != clientAddr {
				t.Fatalf("BlockAck RA = %v", ff.RA)
			}
		case *dot11.Ack:
			_ = ff
			acksToClient++
		}
	}
	if bas == 0 {
		t.Fatal("no BlockAck captured")
	}
	// 2 assoc ACKs to client + 2 ACKs to AP = 4 total normal ACKs;
	// any more would mean burst MPDUs were normal-ACKed.
	if acksToClient > 4 {
		t.Fatalf("normal ACKs = %d; burst MPDUs must not be immediately ACKed", acksToClient)
	}
	if n.ap.Stats.TxRetries != 0 && delivered != 16 {
		t.Fatalf("unexpected retries")
	}
}

func TestSendBurstRetransmitsGaps(t *testing.T) {
	// A lossy medium: some MPDUs fail, the bitmap exposes the gaps,
	// and a single retransmission round recovers (most of) them.
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(7)
	m := radio.NewMedium(sched, rng, radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 3.0},
		FadingSigmaDB:   5,
		CaptureMarginDB: 10,
	})
	n := &testNet{m: m, sched: sched}
	n.ap = New(m, eventsim.NewRNG(1), Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "open", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	n.client = New(m, eventsim.NewRNG(2), Config{
		Name: "client", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "open", Position: radio.Position{X: 58}, Band: phy.Band2GHz, Channel: 6,
	})
	n.associate(t)

	payloads := make([][]byte, 32)
	for i := range payloads {
		payloads[i] = make([]byte, 1400) // long frames at range: lossy
	}
	delivered := -1
	if err := n.client.SendBurst(apAddr, 0, payloads, func(d int) { delivered = d }); err != nil {
		t.Fatal(err)
	}
	n.sched.RunFor(300 * eventsim.Millisecond)
	if delivered < 0 {
		t.Fatal("burst never completed")
	}
	if delivered < 20 {
		t.Fatalf("delivered = %d of 32, want most after retransmission", delivered)
	}
	if n.client.Stats.TxRetries == 0 {
		t.Fatal("lossy burst produced no gap retransmissions — suspicious")
	}
}

func TestSendBurstValidation(t *testing.T) {
	n := openNet(t)
	if err := n.client.SendBurst(apAddr, 0, nil, nil); err == nil {
		t.Fatal("empty burst accepted")
	}
	if err := n.client.SendBurst(apAddr, 0, make([][]byte, 65), nil); err == nil {
		t.Fatal("oversized burst accepted")
	}
	// Unassociated client refuses.
	m := quietMedium()
	lone := New(m, eventsim.NewRNG(1), Config{
		Name: "lone", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "x", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 1,
	})
	if err := lone.SendBurst(apAddr, 0, [][]byte{{1}}, nil); err == nil {
		t.Fatal("unassociated burst accepted")
	}
}

// TestBARFromStrangerAnswered: the block-ack machinery is as polite
// as the ACK machinery — a BAR from a never-seen transmitter gets a
// BlockAck back (with an empty bitmap), no questions asked.
func TestBARFromStrangerAnswered(t *testing.T) {
	n := openNet(t)
	n.captured = nil
	bar := &dot11.BlockAckReq{RA: clientAddr, TA: fakeAddr, TID: 2, StartSeq: 100}
	n.inject(t, bar, phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)
	var got *dot11.BlockAck
	for _, f := range n.captured {
		if ba, ok := f.(*dot11.BlockAck); ok {
			got = ba
		}
	}
	if got == nil {
		t.Fatal("no BlockAck elicited by fake BAR")
	}
	if got.RA != fakeAddr {
		t.Fatalf("BlockAck RA = %v, want the fake MAC", got.RA)
	}
	if got.Bitmap != 0 {
		t.Fatalf("bitmap = %x, want empty (nothing was received)", got.Bitmap)
	}
}
