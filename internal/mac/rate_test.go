package mac

import (
	"testing"

	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

func TestRateAdaptationNearPeer(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	// After the association exchange the client has SNR samples from
	// the AP 5 m away — a very strong link.
	r := n.client.DataRateFor(apAddr)
	if r.Mbps < 48 {
		t.Fatalf("5 m link picked %v, want ≥48 Mbps", r)
	}
}

func TestRateAdaptationUnknownPeer(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	if got := n.client.DataRateFor(fakeAddr); got.Mbps != 24 {
		t.Fatalf("unknown peer rate = %v, want default 24", got)
	}
}

func TestRateAdaptationFarPeer(t *testing.T) {
	// A station ~90 m away (marginal SNR with exponent 3) should fall
	// back to a robust rate.
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(3)
	m := radio.NewMedium(sched, rng, radio.Config{PathLoss: radio.LogDistance{Exponent: 3.0}})
	ap := New(m, rng, Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "far", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	cl := New(m, rng, Config{
		Name: "cl", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "far", Position: radio.Position{X: 90}, Band: phy.Band2GHz, Channel: 6,
	})
	_ = ap
	sched.RunFor(2 * eventsim.Second) // hear a few beacons
	r := cl.DataRateFor(apAddr)
	if r.Mbps > 24 {
		t.Fatalf("90 m link picked %v, want a robust rate", r)
	}
	// EWMA converges: more beacons don't pick something wild.
	sched.RunFor(2 * eventsim.Second)
	r2 := cl.DataRateFor(apAddr)
	if r2.Mbps > 24 {
		t.Fatalf("settled far-link rate = %v", r2)
	}
}
