// Package mac implements the 802.11 MAC state machine for simulated
// stations and access points: the receive path with its
// unconditional PHY-level acknowledgement (the Polite WiFi root
// cause), CSMA/CA transmission with retries, association and
// authentication handling, deauthentication-on-unknown behaviour,
// MAC blocklists, and power-save mode.
//
// The central design decision, faithful to the paper's finding, is
// that the ACK decision is made by the PHY using only the receiver
// address and the FCS — before, and independent of, any MAC-layer
// validation, decryption, association lookup or blocklist check.
// Those all run hundreds of microseconds later on the host CPU.
package mac

import (
	"politewifi/internal/crypto80211"
	"politewifi/internal/phy"
)

// ChipsetProfile captures the per-vendor behavioural knobs observed
// in the paper's device study. Every profile shares the
// standard-mandated PHY ACK path; profiles differ only in host-side
// behaviour (deauth bursts, power save, decode speed).
type ChipsetProfile struct {
	// Name identifies the WiFi module, e.g. "Intel AC 3160".
	Name string
	// Standard is the WiFi generation, e.g. "11ac".
	Standard string
	// DeauthOnUnknown makes an AP respond to class-3 frames from
	// unassociated transmitters with deauthentication frames (the
	// Figure 3 behaviour). It never suppresses the ACK.
	DeauthOnUnknown bool
	// SupportsPowerSave enables the doze state machine.
	SupportsPowerSave bool
	// Validating is the hypothetical §2.2 ablation: the station
	// decrypts and validates a frame before acknowledging. Real
	// hardware cannot do this; enabling it makes every ACK miss the
	// SIFS deadline and the link collapses into retransmissions.
	Validating bool
	// Decode models the host-side frame decode latency.
	Decode crypto80211.DecodeProfile
}

// Profiles for the five devices of Table 1, plus generic profiles
// used by the population generator.
var (
	ProfileIntelAC3160 = ChipsetProfile{
		Name: "Intel AC 3160", Standard: "11ac",
		SupportsPowerSave: true, Decode: crypto80211.FastDecoder,
	}
	ProfileAtheros = ChipsetProfile{
		Name: "Atheros", Standard: "11n",
		SupportsPowerSave: true, Decode: crypto80211.TypicalDecoder,
	}
	ProfileMarvell88W8897 = ChipsetProfile{
		Name: "Marvel 88W8897", Standard: "11ac",
		SupportsPowerSave: true, Decode: crypto80211.FastDecoder,
	}
	ProfileMurataKM5D18098 = ChipsetProfile{
		Name: "Murata KM5D18098", Standard: "11ac",
		SupportsPowerSave: true, Decode: crypto80211.FastDecoder,
	}
	ProfileQualcommIPQ4019 = ChipsetProfile{
		Name: "Qualcomm IPQ 4019", Standard: "11ac",
		DeauthOnUnknown: true, Decode: crypto80211.FastDecoder,
	}
	// ProfileESP8266 is the battery-drain victim: a low-power IoT
	// module that leans heavily on power save.
	ProfileESP8266 = ChipsetProfile{
		Name: "Espressif ESP8266", Standard: "11n",
		SupportsPowerSave: true, Decode: crypto80211.SlowDecoder,
	}
	// ProfileGenericAP is the default AP chipset.
	ProfileGenericAP = ChipsetProfile{
		Name: "Generic AP", Standard: "11ac",
		Decode: crypto80211.TypicalDecoder,
	}
	// ProfileGenericClient is the default client chipset.
	ProfileGenericClient = ChipsetProfile{
		Name: "Generic Client", Standard: "11ac",
		SupportsPowerSave: true, Decode: crypto80211.TypicalDecoder,
	}
	// ProfileValidating is the §2.2 what-if device.
	ProfileValidating = ChipsetProfile{
		Name: "Hypothetical validating STA", Standard: "11ac",
		Validating: true, Decode: crypto80211.TypicalDecoder,
	}
)

// Table1Profiles lists the paper's Table 1 device sample in order.
var Table1Profiles = []struct {
	Device  string
	Profile ChipsetProfile
}{
	{"MSI GE62 laptop", ProfileIntelAC3160},
	{"Ecobee3 thermostat", ProfileAtheros},
	{"Surface Pro 2017", ProfileMarvell88W8897},
	{"Samsung Galaxy S8", ProfileMurataKM5D18098},
	{"Google Wifi AP", ProfileQualcommIPQ4019},
}

// Stats counts per-station MAC and PHY events. All counters are
// cumulative over the station's lifetime.
type Stats struct {
	PHYFrames         uint64 // frames surfaced by the radio
	FCSErrors         uint64 // failed the PHY error check (never ACKed)
	RxForMe           uint64 // frames whose RA matched this station
	AcksSent          uint64 // PHY acknowledgements transmitted
	AcksMissed        uint64 // ACK wanted but transmitter was busy
	CTSSent           uint64 // CTS responses to RTS
	LateAcks          uint64 // validating ablation: ACKs sent after SIFS
	RxDelivered       uint64 // frames accepted by the upper layer
	RxDiscarded       uint64 // frames the upper layer threw away (fake, bad key, replay)
	BlockedDrops      uint64 // frames dropped by MAC blocklist (post-ACK)
	DeauthsSent       uint64 // deauthentication frames transmitted
	TxData            uint64 // data frames transmitted (first attempts)
	TxRetries         uint64 // retransmissions
	TxFailed          uint64 // frames dropped after the retry limit
	AcksReceived      uint64 // acknowledgements received for own frames
	BeaconsSent       uint64
	BeaconsHeard      uint64
	PSPollsSent       uint64
	UpperHandled      uint64 // frames that reached host processing (CPU cost)
	Dozes             uint64 // transitions into doze
	DozeDenied        uint64 // doze attempts cancelled by fresh traffic
	RTSReceived       uint64
	AckForUnknown     uint64 // ACKs this station sent to never-seen transmitters
	NAVUpdates        uint64 // overheard Duration fields that extended the NAV
	NAVDefers         uint64 // transmissions deferred by virtual carrier sense
	ForgedMgmtDropped uint64 // unprotected robust mgmt frames dropped (802.11w)
}

// DefaultBeaconIntervalTU is the usual 102.4 ms beacon period.
const DefaultBeaconIntervalTU = 100

// Role distinguishes access points from client stations.
type Role int

// Station roles.
const (
	RoleClient Role = iota
	RoleAP
)

// String implements fmt.Stringer.
func (r Role) String() string {
	if r == RoleAP {
		return "AP"
	}
	return "client"
}

// defaultDataRate is the rate stations use for data and management
// frames; ACKs and CTSs drop to the matching basic rate per the
// standard.
var defaultDataRate = phy.Rate24
