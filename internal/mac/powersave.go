package mac

import (
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/radio"
)

// psState is the client power-save machinery: the radio dozes except
// around expected beacons, and any received traffic keeps it awake
// for idleTimeout. The battery-drain attack works because fake frames
// arriving faster than idleTimeout pin the radio awake forever.
type psState struct {
	enabled     bool
	intervalTU  uint16
	idleTimeout eventsim.Time
	guard       eventsim.Time // wake this long before the expected beacon
	beaconWait  eventsim.Time // stay up this long hunting for the beacon

	lastActivity eventsim.Time
	dozeVersion  uint64 // invalidates stale doze timers
	nextBeaconAt eventsim.Time
}

// EnablePowerSave turns on the doze state machine and announces PS
// mode to the AP (null frame with the PowerMgmt bit). The station
// must be associated so it knows the beacon cadence.
func (s *Station) EnablePowerSave() {
	if !s.Profile.SupportsPowerSave {
		return
	}
	if s.associated {
		s.sendPMNull(true)
	}
	s.ps.enabled = true
	s.ps.lastActivity = s.sched.Now()
	interval := s.beaconInterval()
	s.ps.nextBeaconAt = s.sched.Now() + interval
	s.scheduleBeaconWake()
	s.armDoze()
}

// DisablePowerSave wakes the radio permanently and tells the AP to
// flush any buffered frames.
func (s *Station) DisablePowerSave() {
	s.ps.enabled = false
	s.ps.dozeVersion++
	if s.Radio.Asleep() {
		s.metrics.Wakes.Inc()
	}
	s.Radio.Wake()
	if s.associated {
		s.sendPMNull(false)
	}
}

// sendPMNull announces a power-management transition.
func (s *Station) sendPMNull(entering bool) {
	d := dot11.NewNullFrame(s.bssid, s.Addr, s.bssid, 0)
	d.FC.ToDS = true
	d.FC.PowerMgmt = entering
	s.enqueue(s.newTxJob(d, true, defaultDataRate))
}

// PowerSaving reports whether the doze machinery is active.
func (s *Station) PowerSaving() bool { return s.ps.enabled }

func (s *Station) beaconInterval() eventsim.Time {
	return eventsim.Time(s.ps.intervalTU) * 1024 * eventsim.Microsecond
}

// psActivity records traffic and postpones the next doze. Called on
// every reception and transmission — receiving the attacker's fake
// frames counts as activity, which is exactly how the drain attack
// defeats power save.
func (s *Station) psActivity() {
	if !s.ps.enabled {
		return
	}
	s.ps.lastActivity = s.sched.Now()
	s.armDoze()
}

// armDoze schedules the radio to sleep after the idle timeout,
// cancelling any earlier attempt.
func (s *Station) armDoze() {
	s.ps.dozeVersion++
	v := s.ps.dozeVersion
	s.sched.After(s.ps.idleTimeout, func() {
		if !s.ps.enabled || v != s.ps.dozeVersion {
			s.Stats.DozeDenied++
			return
		}
		if s.txActive != nil || len(s.txq) > 0 {
			// Pending transmissions keep us up; try again later.
			s.armDoze()
			return
		}
		if !s.Radio.Asleep() {
			s.Radio.Sleep()
			s.Stats.Dozes++
			s.metrics.Dozes.Inc()
		}
	})
}

// scheduleBeaconWake arms the periodic wake-for-beacon chain.
func (s *Station) scheduleBeaconWake() {
	if !s.ps.enabled {
		return
	}
	wakeAt := s.ps.nextBeaconAt - s.ps.guard
	if wakeAt < s.sched.Now() {
		wakeAt = s.sched.Now()
	}
	s.sched.Schedule(wakeAt, func() {
		if !s.ps.enabled {
			return
		}
		if s.Radio.Asleep() {
			s.Radio.Wake()
			s.metrics.Wakes.Inc()
		}
		// Hunt for the beacon, then re-doze — unless directed traffic
		// arrived within the idle timeout, which pins us awake. This
		// is the lever the battery-drain attack pulls.
		s.sched.After(s.ps.guard+s.ps.beaconWait, func() {
			if !s.ps.enabled {
				return
			}
			if s.sched.Now()-s.ps.lastActivity >= s.ps.idleTimeout {
				if s.txActive == nil && len(s.txq) == 0 && !s.Radio.Asleep() {
					s.Radio.Sleep()
					s.Stats.Dozes++
					s.metrics.Dozes.Inc()
				}
			}
		})
		s.ps.nextBeaconAt += s.beaconInterval()
		s.scheduleBeaconWake()
	})
}

// processBeacon tracks the AP's beacon timing so the wake schedule
// stays locked to the real cadence, and honours the TIM: buffered
// traffic keeps the station awake.
func (s *Station) processBeacon(b *dot11.Beacon, rx radio.Reception) {
	if s.Role != RoleClient {
		return
	}
	if s.bssid != dot11.ZeroMAC && b.Addr2 != s.bssid {
		return
	}
	s.Stats.BeaconsHeard++
	if !s.ps.enabled {
		return
	}
	if b.IntervalTU != 0 {
		s.ps.intervalTU = b.IntervalTU
	}
	// Re-anchor the wake chain on the observed beacon time.
	next := rx.End + s.beaconInterval()
	if next > s.ps.nextBeaconAt {
		s.ps.nextBeaconAt = next
	}
	if dot11.TIMBuffered(b.IEs, s.aid) {
		// Traffic waiting at the AP: stay awake and poll for it.
		s.Stats.PSPollsSent++
		s.psActivity()
		poll := &dot11.PSPoll{AID: s.aid, BSSID: s.bssid, TA: s.Addr}
		s.enqueue(s.newTxJob(poll, false, defaultDataRate))
	}
}
