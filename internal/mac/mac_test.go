package mac

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

var (
	apAddr     = dot11.MustMAC("f2:6e:0b:00:00:01")
	clientAddr = dot11.MustMAC("f2:6e:0b:12:34:56")
	fakeAddr   = dot11.MustMAC("aa:bb:bb:bb:bb:bb")
)

// testNet is a small WPA2 network plus a monitor-mode attacker radio.
type testNet struct {
	m        *radio.Medium
	sched    *eventsim.Scheduler
	ap       *Station
	client   *Station
	attacker *radio.Radio
	captured []dot11.Frame
}

// quietMedium has no shadowing/fading so tests are deterministic.
func quietMedium() *radio.Medium {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(7)
	return radio.NewMedium(sched, rng, radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 2.0},
		CaptureMarginDB: 10,
	})
}

func newTestNet(t *testing.T, apProfile, clProfile ChipsetProfile) *testNet {
	t.Helper()
	m := quietMedium()
	rng := eventsim.NewRNG(42)
	n := &testNet{m: m, sched: m.Sched}
	n.ap = New(m, rng, Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: apProfile,
		SSID: "HomeNet", Passphrase: "hunter2 hunter2",
		Position: radio.Position{X: 0}, Band: phy.Band2GHz, Channel: 6,
	})
	n.client = New(m, rng, Config{
		Name: "client", Addr: clientAddr, Role: RoleClient, Profile: clProfile,
		SSID: "HomeNet", Passphrase: "hunter2 hunter2",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	// Attacker: a raw monitor-mode radio 10 m away that never ACKs.
	n.attacker = m.NewRadio("attacker", radio.Position{X: 10}, phy.Band2GHz, 6)
	n.attacker.SetHandler(func(rx radio.Reception) {
		if !rx.FCSOK {
			return
		}
		if f, err := dot11.Decode(rx.Data); err == nil {
			n.captured = append(n.captured, f)
		}
	})
	return n
}

func (n *testNet) associate(t *testing.T) {
	t.Helper()
	ok := false
	n.client.Associate(apAddr, func(v bool) { ok = v })
	n.sched.RunFor(300 * eventsim.Millisecond)
	if !ok || !n.client.Associated() {
		t.Fatalf("association failed (assoc=%v)", n.client.Associated())
	}
}

// inject transmits raw bytes from the attacker radio.
func (n *testNet) inject(t *testing.T, f dot11.Frame, rate phy.Rate) {
	t.Helper()
	wire, err := dot11.Serialize(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.attacker.Transmit(wire, rate); err != nil {
		t.Fatal(err)
	}
}

// acksTo counts captured ACKs addressed to the given MAC.
func (n *testNet) acksTo(addr dot11.MAC) int {
	count := 0
	for _, f := range n.captured {
		if a, ok := f.(*dot11.Ack); ok && a.RA == addr {
			count++
		}
	}
	return count
}

func (n *testNet) deauthsTo(addr dot11.MAC) []*dot11.Deauth {
	var out []*dot11.Deauth
	for _, f := range n.captured {
		if d, ok := f.(*dot11.Deauth); ok && d.Addr1 == addr {
			out = append(out, d)
		}
	}
	return out
}

func TestAssociationHandshake(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	if n.client.Session() == nil {
		t.Fatal("client has no CCMP session after association")
	}
	clients := n.ap.AssociatedClients()
	if len(clients) != 1 || clients[0] != clientAddr {
		t.Fatalf("AP client list = %v", clients)
	}
}

func TestEncryptedDataFlow(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	var got []byte
	n.ap.OnDeliver = func(f dot11.Frame, rx radio.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			got = append([]byte(nil), d.Payload...)
		}
	}
	if err := n.client.SendData(apAddr, []byte("hello through WPA2")); err != nil {
		t.Fatal(err)
	}
	n.sched.RunFor(50 * eventsim.Millisecond)
	if string(got) != "hello through WPA2" {
		t.Fatalf("AP delivered %q", got)
	}
	if n.client.Stats.AcksReceived == 0 {
		t.Fatal("client never saw the ACK for its data frame")
	}
}

func TestSendDataRequiresAssociation(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	if err := n.client.SendData(apAddr, []byte("x")); err == nil {
		t.Fatal("SendData before association should fail")
	}
}

// TestPoliteWiFiFakeFrameAcked is experiment E1 (Figure 2): a fake
// unencrypted null frame from a never-associated attacker is
// acknowledged, and the ACK goes to the fake MAC.
func TestPoliteWiFiFakeFrameAcked(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.captured = nil

	fake := dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 1)
	n.inject(t, fake, phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)

	if got := n.acksTo(fakeAddr); got != 1 {
		t.Fatalf("ACKs to fake MAC = %d, want 1", got)
	}
	if n.client.Stats.AcksSent == 0 {
		t.Fatal("client ACK counter not incremented")
	}
	if n.client.Stats.AckForUnknown == 0 {
		t.Fatal("ACK-to-stranger counter not incremented")
	}
	// The host discarded the frame afterwards.
	if n.client.Stats.RxDiscarded == 0 {
		t.Fatal("fake frame was not discarded by the upper layer")
	}
}

// TestAckTimingSIFS verifies the ACK leaves exactly one SIFS after
// the fake frame ends.
func TestAckTimingSIFS(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)

	var frameEnd, ackStart eventsim.Time
	n.attacker.SetHandler(func(rx radio.Reception) {
		if !rx.FCSOK {
			return
		}
		if f, err := dot11.Decode(rx.Data); err == nil {
			if a, ok := f.(*dot11.Ack); ok && a.RA == fakeAddr {
				ackStart = rx.Start
			}
		}
	})
	fake := dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 2)
	wire, _ := dot11.Serialize(fake)
	end, err := n.attacker.Transmit(wire, phy.Rate24)
	if err != nil {
		t.Fatal(err)
	}
	frameEnd = end
	n.sched.RunFor(5 * eventsim.Millisecond)
	if ackStart == 0 {
		t.Fatal("no ACK captured")
	}
	gap := ackStart - frameEnd
	// One SIFS (10 µs on 2.4 GHz) plus sub-microsecond propagation.
	if gap < 10*eventsim.Microsecond || gap > 11*eventsim.Microsecond {
		t.Fatalf("ACK gap = %v, want ~SIFS (10µs)", gap)
	}
}

// TestFakeFrameToAPAcked: APs are equally polite (Table 2 found 3,805
// of them).
func TestFakeFrameToAPAcked(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.captured = nil
	n.inject(t, dot11.NewNullFrame(apAddr, fakeAddr, fakeAddr, 1), phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)
	if got := n.acksTo(fakeAddr); got != 1 {
		t.Fatalf("ACKs from AP to fake MAC = %d, want 1", got)
	}
}

// TestCorruptedFakeFrameNotAcked: the FCS check is the one gate that
// runs before the ACK.
func TestCorruptedFakeFrameNotAcked(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.captured = nil
	wire, _ := dot11.Serialize(dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 3))
	wire[len(wire)-1] ^= 0xff // break the FCS
	n.attacker.Transmit(wire, phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)
	if got := n.acksTo(fakeAddr); got != 0 {
		t.Fatalf("corrupted frame got %d ACKs, want 0", got)
	}
	if n.client.Stats.FCSErrors == 0 {
		t.Fatal("FCS error not counted")
	}
}

// TestWrongDestinationNotAcked: the RA filter also runs pre-ACK.
func TestWrongDestinationNotAcked(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.captured = nil
	other := dot11.MustMAC("00:de:ad:be:ef:00")
	n.inject(t, dot11.NewNullFrame(other, fakeAddr, fakeAddr, 4), phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)
	if got := n.acksTo(fakeAddr); got != 0 {
		t.Fatalf("misaddressed frame got %d ACKs", got)
	}
}

// TestBlocklistStillAcks is the §2.1 climax: blocking the attacker's
// MAC on the AP drops the frames at the host but the PHY still ACKs.
func TestBlocklistStillAcks(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.ap.Block(fakeAddr)
	n.captured = nil

	for i := 0; i < 5; i++ {
		n.inject(t, dot11.NewNullFrame(apAddr, fakeAddr, fakeAddr, uint16(10+i)), phy.Rate24)
		n.sched.RunFor(10 * eventsim.Millisecond)
	}
	if got := n.acksTo(fakeAddr); got != 5 {
		t.Fatalf("ACKs with blocklist active = %d, want 5", got)
	}
	if n.ap.Stats.BlockedDrops != 5 {
		t.Fatalf("BlockedDrops = %d, want 5", n.ap.Stats.BlockedDrops)
	}
}

// TestDeauthBurstStillAcks reproduces Figure 3: an AP that deauths
// unknown transmitters still acknowledges their fake frames, and the
// unacknowledged deauths are retransmitted with the same sequence
// number.
func TestDeauthBurstStillAcks(t *testing.T) {
	n := newTestNet(t, ProfileQualcommIPQ4019, ProfileGenericClient)
	n.associate(t)
	n.captured = nil

	n.inject(t, dot11.NewNullFrame(apAddr, fakeAddr, fakeAddr, 20), phy.Rate24)
	n.sched.RunFor(100 * eventsim.Millisecond)

	if got := n.acksTo(fakeAddr); got < 1 {
		t.Fatal("deauthing AP did not ACK the fake frame")
	}
	deauths := n.deauthsTo(fakeAddr)
	if len(deauths) != 3 {
		t.Fatalf("deauth transmissions = %d, want 3 (retry burst)", len(deauths))
	}
	sn := deauths[0].Seq.Number
	for i, d := range deauths {
		if d.Seq.Number != sn {
			t.Fatalf("deauth %d has SN %d, want %d (same SN across burst)", i, d.Seq.Number, sn)
		}
		if i > 0 && !d.FC.Retry {
			t.Fatalf("deauth retry %d missing Retry flag", i)
		}
	}
	if n.ap.Stats.DeauthsSent == 0 || n.ap.Stats.TxFailed == 0 {
		t.Fatalf("AP stats: deauths=%d txFailed=%d", n.ap.Stats.DeauthsSent, n.ap.Stats.TxFailed)
	}
	// And a second fake frame after the deauths is still ACKed.
	before := n.acksTo(fakeAddr)
	n.inject(t, dot11.NewNullFrame(apAddr, fakeAddr, fakeAddr, 21), phy.Rate24)
	n.sched.RunFor(20 * eventsim.Millisecond)
	if n.acksTo(fakeAddr) != before+1 {
		t.Fatal("AP stopped ACKing after sending deauths — contradicts Figure 3")
	}
}

// TestRTSElicitsCTS: even a hypothetical validating station responds
// to fake RTS with CTS, because control frames cannot be encrypted.
func TestRTSElicitsCTS(t *testing.T) {
	for _, profile := range []ChipsetProfile{ProfileGenericClient, ProfileValidating} {
		n := newTestNet(t, ProfileGenericAP, profile)
		n.associate(t)
		n.captured = nil
		n.inject(t, &dot11.RTS{RA: clientAddr, TA: fakeAddr, Duration: 200}, phy.Rate24)
		n.sched.RunFor(5 * eventsim.Millisecond)
		var cts *dot11.CTS
		for _, f := range n.captured {
			if c, ok := f.(*dot11.CTS); ok {
				cts = c
			}
		}
		if cts == nil {
			t.Fatalf("%s: no CTS elicited by fake RTS", profile.Name)
		}
		if cts.RA != fakeAddr {
			t.Fatalf("CTS RA = %v, want fake MAC", cts.RA)
		}
		if cts.Duration >= 200 {
			t.Fatalf("CTS duration %d not reduced from RTS 200", cts.Duration)
		}
		if n.client.Stats.CTSSent != 1 || n.client.Stats.RTSReceived != 1 {
			t.Fatalf("CTS stats: %+v", n.client.Stats)
		}
	}
}

// TestValidatingStationMissesSIFS is the §2.2 ablation: a station
// that validates before ACKing cannot meet the deadline, so the
// legitimate peer's transmissions all retry and fail.
func TestValidatingStationMissesSIFS(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileValidating)
	n.associate(t)

	// AP sends genuine protected data to the validating client.
	if err := n.ap.SendData(clientAddr, []byte("legit")); err != nil {
		t.Fatal(err)
	}
	n.sched.RunFor(200 * eventsim.Millisecond)

	if n.client.Stats.LateAcks == 0 {
		t.Fatal("validating station never produced a late ACK")
	}
	if n.ap.Stats.TxRetries == 0 {
		t.Fatal("AP should have retried: ACKs always miss the timeout")
	}
	if n.ap.Stats.TxFailed == 0 {
		t.Fatal("AP transmission should ultimately fail against a validating receiver")
	}
	// And the validating station does NOT ack fake frames (the point
	// of the hypothetical) ...
	n.captured = nil
	n.inject(t, dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 30), phy.Rate24)
	n.sched.RunFor(20 * eventsim.Millisecond)
	if got := n.acksTo(fakeAddr); got != 0 {
		t.Fatalf("validating station ACKed a fake frame %d times", got)
	}
}

// TestDuplicateFiltering: a retransmitted frame is ACKed again but
// delivered once.
func TestDuplicateFiltering(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.captured = nil

	fake := dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 40)
	n.inject(t, fake, phy.Rate24)
	n.sched.RunFor(10 * eventsim.Millisecond)
	retry := dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 40)
	retry.FC.Retry = true
	n.inject(t, retry, phy.Rate24)
	n.sched.RunFor(10 * eventsim.Millisecond)

	if got := n.acksTo(fakeAddr); got != 2 {
		t.Fatalf("ACKs = %d, want 2 (PHY acks duplicates too)", got)
	}
	// Upper layer saw it once: one discard (first copy), dup filtered.
	if n.client.Stats.RxDiscarded != 1 {
		t.Fatalf("RxDiscarded = %d, want 1 (duplicate filtered)", n.client.Stats.RxDiscarded)
	}
}

func TestBeaconing(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.sched.RunFor(1050 * eventsim.Millisecond)
	if n.ap.Stats.BeaconsSent < 9 || n.ap.Stats.BeaconsSent > 11 {
		t.Fatalf("beacons in ~1s = %d, want ~10", n.ap.Stats.BeaconsSent)
	}
	var beacons int
	for _, f := range n.captured {
		if b, ok := f.(*dot11.Beacon); ok {
			beacons++
			if b.SSID() != "HomeNet" {
				t.Fatalf("beacon SSID = %q", b.SSID())
			}
			if !dot11.HasRSN(b.IEs) {
				t.Fatal("WPA2 AP beacon missing RSN element")
			}
		}
	}
	if beacons == 0 {
		t.Fatal("attacker sniffer captured no beacons")
	}
}

func TestProbeRequestResponse(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.captured = nil
	probe := &dot11.ProbeReq{
		Header: dot11.Header{Addr1: dot11.Broadcast, Addr2: fakeAddr, Addr3: dot11.Broadcast},
		IEs:    []dot11.IE{dot11.SSIDElement("")},
	}
	n.inject(t, probe, phy.Rate6)
	n.sched.RunFor(50 * eventsim.Millisecond)
	var resp *dot11.ProbeResp
	for _, f := range n.captured {
		if p, ok := f.(*dot11.ProbeResp); ok && p.Addr1 == fakeAddr {
			resp = p
		}
	}
	if resp == nil {
		t.Fatal("no probe response to wildcard probe")
	}
	ssid, _ := dot11.FindSSID(resp.IEs)
	if ssid != "HomeNet" {
		t.Fatalf("probe response SSID = %q", ssid)
	}
}

func TestPowerSaveDozing(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileESP8266)
	n.associate(t)
	n.client.EnablePowerSave()
	if !n.client.PowerSaving() {
		t.Fatal("PowerSaving() = false")
	}
	n.sched.RunFor(2 * eventsim.Second)
	if n.client.Stats.Dozes == 0 {
		t.Fatal("PS client never dozed")
	}
	// Radio should be asleep most of the time between beacons; at a
	// random instant far from a beacon it is asleep.
	if !n.client.Radio.Asleep() && n.client.Stats.Dozes < 2 {
		t.Fatal("PS client not dozing between beacons")
	}
	// Still hears beacons while power saving.
	if n.client.Stats.BeaconsHeard == 0 {
		t.Fatal("PS client heard no beacons")
	}
}

func TestPowerSaveDefeatedByFakeFrames(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileESP8266)
	n.associate(t)
	n.client.EnablePowerSave()
	n.sched.RunFor(500 * eventsim.Millisecond)

	// Bombard at 50 fps (interval 20 ms < 100 ms idle timeout).
	stop := n.sched.Now() + 2*eventsim.Second
	var tick func()
	seq := uint16(100)
	tick = func() {
		if n.sched.Now() >= stop {
			return
		}
		if !n.attacker.Transmitting() {
			wire, _ := dot11.Serialize(dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, seq))
			seq = dot11.NextSeq(seq)
			n.attacker.Transmit(wire, phy.Rate24)
		}
		n.sched.After(20*eventsim.Millisecond, tick)
	}
	dozesBefore := n.client.Stats.Dozes
	acksBefore := n.client.Stats.AcksSent
	tick()
	// Measure over the attack window only: after the attack stops the
	// station correctly resumes dozing.
	n.sched.RunFor(2 * eventsim.Second)

	// Once a frame lands in an awake window the station never sleeps
	// again: at most a few dozes (before the first hit) are tolerated.
	newDozes := n.client.Stats.Dozes - dozesBefore
	if newDozes > 5 {
		t.Fatalf("client dozed %d times under 50 fps attack", newDozes)
	}
	if n.client.Radio.Asleep() {
		t.Fatal("client asleep mid-attack")
	}
	if n.client.Stats.AcksSent-acksBefore < 50 {
		t.Fatalf("ACKs under attack = %d, want many", n.client.Stats.AcksSent-acksBefore)
	}
	// After the attack stops, dozing resumes.
	n.sched.RunFor(2 * eventsim.Second)
	if n.client.Stats.Dozes == dozesBefore+newDozes {
		t.Fatal("client never re-dozed after the attack ended")
	}
}

func TestPowerSaveSurvivesSlowAttack(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileESP8266)
	n.associate(t)
	n.client.EnablePowerSave()
	n.sched.RunFor(500 * eventsim.Millisecond)

	// 2 fps: interval 500 ms far exceeds the 100 ms idle timeout, so
	// the station mostly sleeps and misses most frames.
	stop := n.sched.Now() + 4*eventsim.Second
	var tick func()
	seq := uint16(200)
	sent := 0
	tick = func() {
		if n.sched.Now() >= stop {
			return
		}
		if !n.attacker.Transmitting() {
			wire, _ := dot11.Serialize(dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, seq))
			seq = dot11.NextSeq(seq)
			n.attacker.Transmit(wire, phy.Rate24)
			sent++
		}
		n.sched.After(500*eventsim.Millisecond, tick)
	}
	acksBefore := n.client.Stats.AcksSent
	dozesBefore := n.client.Stats.Dozes
	tick()
	n.sched.RunFor(5 * eventsim.Second)

	acked := int(n.client.Stats.AcksSent - acksBefore)
	if acked >= sent {
		t.Fatalf("slow attack: all %d frames ACKed; dozing should hide most", sent)
	}
	if n.client.Stats.Dozes == dozesBefore {
		t.Fatal("client stopped dozing under 2 fps attack")
	}
}

func TestBlockUnblock(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.ap.Block(fakeAddr)
	n.ap.Unblock(fakeAddr)
	n.associate(t)
	n.inject(t, dot11.NewNullFrame(apAddr, fakeAddr, fakeAddr, 1), phy.Rate24)
	n.sched.RunFor(10 * eventsim.Millisecond)
	if n.ap.Stats.BlockedDrops != 0 {
		t.Fatal("unblocked address still dropped")
	}
}

func TestRoleString(t *testing.T) {
	if RoleAP.String() != "AP" || RoleClient.String() != "client" {
		t.Fatal("role strings wrong")
	}
}

func TestOpenNetworkDataFlow(t *testing.T) {
	m := quietMedium()
	rng := eventsim.NewRNG(5)
	ap := New(m, rng, Config{
		Name: "open-ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "OpenNet", Position: radio.Position{}, Band: phy.Band2GHz, Channel: 1,
	})
	cl := New(m, rng, Config{
		Name: "open-cl", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "OpenNet", Position: radio.Position{X: 3}, Band: phy.Band2GHz, Channel: 1,
	})
	ok := false
	cl.Associate(apAddr, func(v bool) { ok = v })
	m.Sched.RunFor(300 * eventsim.Millisecond)
	if !ok {
		t.Fatal("open association failed")
	}
	var got []byte
	ap.OnDeliver = func(f dot11.Frame, rx radio.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			got = d.Payload
		}
	}
	if err := cl.SendData(apAddr, []byte("plaintext ok")); err != nil {
		t.Fatal(err)
	}
	m.Sched.RunFor(50 * eventsim.Millisecond)
	if string(got) != "plaintext ok" {
		t.Fatalf("open data = %q", got)
	}
}

func BenchmarkFakeFrameAckExchange(b *testing.B) {
	m := quietMedium()
	rng := eventsim.NewRNG(3)
	client := New(m, rng, Config{
		Name: "victim", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "n", Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	_ = client
	attacker := m.NewRadio("attacker", radio.Position{X: 10}, phy.Band2GHz, 6)
	wire, _ := dot11.Serialize(dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attacker.Transmit(wire, phy.Rate24)
		m.Sched.Run()
	}
}

// TestAcksMissedWhenTransmitting: an ACK whose SIFS deadline falls
// while the station's half-duplex radio is mid-transmission is
// skipped and counted. (A full over-the-air construction is physically
// excluded — a frame cannot be received inside another frame's SIFS
// gap — so this drives the MAC entry point directly.)
func TestAcksMissedWhenTransmitting(t *testing.T) {
	m := quietMedium()
	rng := eventsim.NewRNG(6)
	victim := New(m, rng, Config{
		Name: "victim", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "n", Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	// Occupy the transmitter, then hit the ACK path.
	if _, err := victim.Radio.Transmit(make([]byte, 500), phy.Rate6); err != nil {
		t.Fatal(err)
	}
	victim.transmitAck(fakeAddr, phy.Rate24, false, dot11.TypeData, 0)
	if victim.Stats.AcksMissed != 1 {
		t.Fatalf("AcksMissed = %d, want 1", victim.Stats.AcksMissed)
	}
	if victim.Stats.AcksSent != 0 {
		t.Fatalf("AcksSent = %d, want 0", victim.Stats.AcksSent)
	}
	// Once idle the same call succeeds.
	m.Sched.Run()
	victim.transmitAck(fakeAddr, phy.Rate24, false, dot11.TypeData, 0)
	if victim.Stats.AcksSent != 1 {
		t.Fatalf("AcksSent = %d after idle, want 1", victim.Stats.AcksSent)
	}
	// A zero TA (ACK/CTS responses have none) is a no-op.
	m.Sched.Run()
	victim.transmitAck(dot11.ZeroMAC, phy.Rate24, false, dot11.TypeData, 0)
	if victim.Stats.AcksSent != 1 {
		t.Fatal("zero-TA ack should be a no-op")
	}
}
