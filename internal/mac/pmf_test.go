package mac

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// newPMFNet builds a WPA2+PMF network.
func newPMFNet(t *testing.T, pmf bool) *testNet {
	t.Helper()
	m := quietMedium()
	rng := eventsim.NewRNG(42)
	n := &testNet{m: m, sched: m.Sched}
	n.ap = New(m, rng, Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "hunter2 hunter2", PMF: pmf,
		Position: radio.Position{X: 0}, Band: phy.Band2GHz, Channel: 6,
	})
	n.client = New(m, rng, Config{
		Name: "client", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "HomeNet", Passphrase: "hunter2 hunter2", PMF: pmf,
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	n.attacker = m.NewRadio("attacker", radio.Position{X: 10}, phy.Band2GHz, 6)
	n.attacker.SetHandler(func(rx radio.Reception) {
		if !rx.FCSOK {
			return
		}
		if f, err := dot11.Decode(rx.Data); err == nil {
			n.captured = append(n.captured, f)
		}
	})
	return n
}

func forgedDeauth(victim, from dot11.MAC, seq uint16) *dot11.Deauth {
	return &dot11.Deauth{
		Header: dot11.Header{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: victim, Addr2: from, Addr3: from,
			Seq: dot11.SequenceControl{Number: seq},
		},
		Reason: dot11.ReasonDeauthLeaving,
	}
}

// TestDeauthAttackWithoutPMF: the classic attack works on a
// pre-802.11w network — one forged frame disconnects the victim.
func TestDeauthAttackWithoutPMF(t *testing.T) {
	n := newPMFNet(t, false)
	n.associate(t)
	if n.client.PMFEnabled() {
		t.Fatal("PMF unexpectedly enabled")
	}
	n.inject(t, forgedDeauth(clientAddr, apAddr, 99), phy.Rate24)
	n.sched.RunFor(20 * eventsim.Millisecond)
	if n.client.Associated() {
		t.Fatal("forged deauth did not disconnect an unprotected client")
	}
}

// TestDeauthAttackDefeatedByPMF: with 802.11w the forgery is dropped
// at the host — but its PHY ACK still goes out (footnote 2: PMF does
// not and cannot stop Polite WiFi).
func TestDeauthAttackDefeatedByPMF(t *testing.T) {
	n := newPMFNet(t, true)
	n.associate(t)
	if !n.client.PMFEnabled() {
		t.Fatal("PMF not enabled")
	}
	n.captured = nil
	n.inject(t, forgedDeauth(clientAddr, apAddr, 99), phy.Rate24)
	n.sched.RunFor(20 * eventsim.Millisecond)

	if !n.client.Associated() {
		t.Fatal("PMF client disconnected by a forged deauth")
	}
	if n.client.Stats.ForgedMgmtDropped == 0 {
		t.Fatal("forgery not counted")
	}
	// The deauth — a unicast management frame — was still ACKed. The
	// forged frame's TA is the AP, so the ACK flows to the AP's MAC.
	acks := 0
	for _, f := range n.captured {
		if a, ok := f.(*dot11.Ack); ok && a.RA == apAddr {
			acks++
		}
	}
	if acks == 0 {
		t.Fatal("PMF suppressed the PHY ACK — it must not")
	}
}

// TestPMFLegitimateDeauthStillWorks: the AP's own (protected) deauth
// is honoured by the PMF client.
func TestPMFLegitimateDeauthStillWorks(t *testing.T) {
	n := newPMFNet(t, true)
	n.associate(t)
	// AP deauths its own client (e.g. admin kick).
	n.ap.sendDeauth(clientAddr, dot11.ReasonDeauthLeaving)
	n.sched.RunFor(50 * eventsim.Millisecond)
	if n.client.Associated() {
		t.Fatal("protected deauth from the real AP ignored")
	}
	if n.client.Stats.ForgedMgmtDropped != 0 {
		t.Fatal("legitimate protected deauth misclassified as forgery")
	}
}

// TestPMFFakeNullStillAcked: PMF changes nothing about the core
// Polite WiFi behaviour.
func TestPMFFakeNullStillAcked(t *testing.T) {
	n := newPMFNet(t, true)
	n.associate(t)
	n.captured = nil
	n.inject(t, dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 5), phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)
	if n.acksTo(fakeAddr) != 1 {
		t.Fatal("PMF client stopped ACKing fake data frames")
	}
	// And fake RTS still elicits CTS (control frames unprotectable).
	n.inject(t, &dot11.RTS{RA: clientAddr, TA: fakeAddr, Duration: 100}, phy.Rate24)
	n.sched.RunFor(5 * eventsim.Millisecond)
	if n.client.Stats.CTSSent != 1 {
		t.Fatal("PMF client stopped responding to RTS")
	}
}

// TestPMFRequiresKeys: PMF silently disables on open networks.
func TestPMFRequiresKeys(t *testing.T) {
	m := quietMedium()
	rng := eventsim.NewRNG(1)
	st := New(m, rng, Config{
		Name: "open", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "open", PMF: true,
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 1,
	})
	if st.PMFEnabled() {
		t.Fatal("PMF enabled without a passphrase")
	}
}

// --- Power-save buffering (TIM + PS-Poll) ---------------------------

// TestAPBuffersForDozingClient: data sent to a dozing PS client is
// held at the AP, announced in the beacon TIM, retrieved with a
// PS-Poll, and delivered.
func TestAPBuffersForDozingClient(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileESP8266)
	n.associate(t)
	n.client.EnablePowerSave()
	n.sched.RunFor(400 * eventsim.Millisecond) // settle into doze
	if !n.client.Radio.Asleep() {
		t.Fatal("client not dozing")
	}

	var got []byte
	n.client.OnDeliver = func(f dot11.Frame, rx radio.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			got = d.Payload
		}
	}
	if err := n.ap.SendData(clientAddr, []byte("buffered while you slept")); err != nil {
		t.Fatal(err)
	}
	// The frame must not arrive before the next beacon+poll cycle.
	n.sched.RunFor(2 * eventsim.Millisecond)
	if got != nil {
		t.Fatal("frame delivered while the client slept")
	}
	n.sched.RunFor(300 * eventsim.Millisecond) // ≥1 beacon: TIM → PS-Poll → data
	if string(got) != "buffered while you slept" {
		t.Fatalf("delivered = %q", got)
	}
	if n.client.Stats.PSPollsSent == 0 {
		t.Fatal("client never polled")
	}
}

// TestDisablePowerSaveFlushes: leaving PS mode flushes the buffer
// without waiting for a beacon.
func TestDisablePowerSaveFlushes(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileESP8266)
	n.associate(t)
	n.client.EnablePowerSave()
	n.sched.RunFor(400 * eventsim.Millisecond)

	var got []byte
	n.client.OnDeliver = func(f dot11.Frame, rx radio.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			got = d.Payload
		}
	}
	n.ap.SendData(clientAddr, []byte("flush me"))
	n.sched.RunFor(2 * eventsim.Millisecond)
	n.client.DisablePowerSave()
	n.sched.RunFor(60 * eventsim.Millisecond)
	if string(got) != "flush me" {
		t.Fatalf("delivered = %q", got)
	}
}
