package mac

import (
	"politewifi/internal/dot11"
	"politewifi/internal/telemetry"
)

// Metrics are the station-layer telemetry instruments (the "mac"
// family). Counters are shared across all stations attached to the
// same registry — they describe the simulated population, not one
// device; per-device counts stay in Station.Stats. The zero value is
// valid and records nothing.
type Metrics struct {
	// ACKs sent, keyed by the class of the soliciting frame. The split
	// is the paper's core observable: acks_data counts responses to
	// (possibly fake) data frames, acks_mgmt to management frames.
	AcksData  *telemetry.Counter
	AcksMgmt  *telemetry.Counter
	AcksOther *telemetry.Counter
	// LateAcks counts validated-chipset ACKs sent after the SIFS
	// deadline (the §2.2 ablation).
	LateAcks *telemetry.Counter
	// CTS counts clear-to-send responses.
	CTS *telemetry.Counter
	// Deauths counts deauthentication frames queued by APs.
	Deauths *telemetry.Counter
	// Dozes / Wakes count power-save radio transitions. The drain
	// attack shows up as wakes without subsequent dozes.
	Dozes *telemetry.Counter
	Wakes *telemetry.Counter
}

// NewMetrics creates (or reattaches to) the mac instrument family.
func NewMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		AcksData:  reg.Counter("mac.acks.data", "ACKs soliciting frame was a data frame"),
		AcksMgmt:  reg.Counter("mac.acks.mgmt", "ACKs soliciting frame was management"),
		AcksOther: reg.Counter("mac.acks.other", "ACKs for other frame classes"),
		LateAcks:  reg.Counter("mac.late_acks", "validated-chipset ACKs sent past SIFS"),
		CTS:       reg.Counter("mac.cts_sent", "CTS responses to RTS"),
		Deauths:   reg.Counter("mac.deauths_sent", "deauthentication frames queued"),
		Dozes:     reg.Counter("mac.ps_dozes", "power-save radio doze transitions"),
		Wakes:     reg.Counter("mac.ps_wakes", "power-save radio wake transitions"),
	}
}

// SetMetrics installs shared telemetry counters on the station.
func (s *Station) SetMetrics(mx Metrics) { s.metrics = mx }

// countAck records an ACK by the class of the frame it acknowledges.
func (m *Metrics) countAck(solicit dot11.FrameType) {
	switch solicit {
	case dot11.TypeData:
		m.AcksData.Inc()
	case dot11.TypeManagement:
		m.AcksMgmt.Inc()
	default:
		m.AcksOther.Inc()
	}
}
