package mac

import (
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

// Block-acknowledgement support (802.11e/n): a sender transmits a
// burst of QoS data MPDUs with the Block Ack policy (no per-frame
// ACK), then a BlockAckReq; the receiver answers with a BlockAck
// bitmap and the sender retransmits only the gaps. This is the
// aggregation-era counterpart of the paper's single-frame exchange —
// the immediate-ACK path that Polite WiFi rides remains mandatory for
// non-QoS frames, which is exactly what the attacker uses.

// baWindowSize is the compressed-bitmap window (64 MPDUs).
const baWindowSize = 64

// baRecvState is the receiver side of one block-ack agreement.
type baRecvState struct {
	startSeq uint16
	received map[uint16]bool
}

// baSendState tracks an in-flight burst on the sender.
type baSendState struct {
	peer     dot11.MAC
	tid      uint8
	payloads [][]byte
	seqs     []uint16
	rate     phy.Rate
	attempt  int
	onDone   func(delivered int)
}

// SendBurst transmits the payloads as a block-acknowledged burst to
// the peer, retransmitting gaps once. onDone (optional) receives the
// number of MPDUs the receiver confirmed. Requires an established
// link (association for clients). The burst bypasses the per-MPDU
// txq: frames go out SIFS-spaced like an aggregate.
func (s *Station) SendBurst(to dot11.MAC, tid uint8, payloads [][]byte, onDone func(delivered int)) error {
	if len(payloads) == 0 || len(payloads) > baWindowSize {
		return errBurstSize
	}
	if s.Role == RoleClient && !s.associated {
		return errNotAssociated
	}
	st := &baSendState{
		peer:     to,
		tid:      tid & 0xf,
		payloads: payloads,
		rate:     s.DataRateFor(to),
		onDone:   onDone,
	}
	s.baSend = st
	s.startBurst(st, nil)
	return nil
}

var (
	errBurstSize     = errNew("mac: burst must contain 1..64 MPDUs")
	errNotAssociated = errNew("mac: not associated")
)

func errNew(msg string) error { return &macError{msg} }

type macError struct{ msg string }

func (e *macError) Error() string { return e.msg }

// startBurst transmits the MPDUs at indices idx (nil = all) then the
// BlockAckReq.
func (s *Station) startBurst(st *baSendState, idx []int) {
	if idx == nil {
		idx = make([]int, len(st.payloads))
		for i := range idx {
			idx[i] = i
		}
		st.seqs = make([]uint16, len(st.payloads))
		for i := range st.seqs {
			st.seqs[i] = s.nextSeq()
		}
	}
	s.sched.After(s.band.DIFS(), func() { s.burstStep(st, idx, 0) })
}

func (s *Station) burstStep(st *baSendState, idx []int, k int) {
	if k == len(idx) {
		// Burst done: solicit the block ack.
		s.sched.After(s.band.SIFS(), func() { s.sendBAR(st) })
		return
	}
	if s.Radio.CCABusy() || s.Radio.Transmitting() {
		s.sched.After(s.band.SlotTime(), func() { s.burstStep(st, idx, k) })
		return
	}
	i := idx[k]
	d := &dot11.Data{
		Header: dot11.Header{
			Addr2: s.Addr,
			Seq:   dot11.SequenceControl{Number: st.seqs[i]},
		},
		QoS:       true,
		TID:       st.tid,
		AckPolicy: dot11.AckPolicyBlockAck,
		Payload:   append([]byte(nil), st.payloads[i]...),
	}
	if s.Role == RoleClient {
		d.FC.ToDS = true
		d.Addr1 = s.bssid
		d.Addr3 = st.peer
	} else {
		d.FC.FromDS = true
		d.Addr1 = st.peer
		d.Addr3 = s.Addr
	}
	wire, err := dot11.Serialize(d)
	if err != nil {
		return
	}
	end, err := s.Radio.Transmit(wire, st.rate)
	if err != nil {
		s.sched.After(s.band.SlotTime(), func() { s.burstStep(st, idx, k) })
		return
	}
	s.Stats.TxData++
	// SIFS spacing between MPDUs approximates an A-MPDU on a
	// symbol-accurate simulator without aggregation framing.
	s.sched.Schedule(end+s.band.SIFS(), func() { s.burstStep(st, idx, k+1) })
}

func (s *Station) sendBAR(st *baSendState) {
	bar := &dot11.BlockAckReq{
		RA: st.peer, TA: s.Addr, TID: st.tid, StartSeq: st.seqs[0],
	}
	wire, err := dot11.Serialize(bar)
	if err != nil {
		return
	}
	end, err := s.Radio.Transmit(wire, phy.ControlRate(st.rate))
	if err != nil {
		s.sched.After(s.band.SlotTime(), func() { s.sendBAR(st) })
		return
	}
	// BlockAck timeout.
	timeout := end + s.band.SIFS() + phy.Airtime(phy.ControlRate(st.rate), 28) + 15*eventsim.Microsecond
	st.attempt++
	s.sched.Schedule(timeout, func() {
		if s.baSend == st && st.attempt <= 2 {
			s.sendBAR(st) // BA lost: ask again
		}
	})
}

// handleBlockAck resolves the sender's burst with the receiver's
// bitmap.
func (s *Station) handleBlockAck(ba *dot11.BlockAck) {
	st := s.baSend
	if st == nil || ba.TA != st.peer {
		return
	}
	var missing []int
	delivered := 0
	for i, seq := range st.seqs {
		off := int((seq - ba.StartSeq) & 0xfff)
		if off < baWindowSize && ba.Received(off) {
			delivered++
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 && st.attempt <= 1 {
		// One retransmission round for the gaps.
		s.Stats.TxRetries += uint64(len(missing))
		s.startBurst(st, missing)
		return
	}
	s.baSend = nil
	if st.onDone != nil {
		st.onDone(delivered)
	}
}

// recvBurstFrame records a block-ack-policy MPDU at the receiver.
func (s *Station) recvBurstFrame(d *dot11.Data) {
	key := baKey{d.Addr2, d.TID}
	st, ok := s.baRecv[key]
	if !ok {
		st = &baRecvState{startSeq: d.Seq.Number, received: make(map[uint16]bool)}
		s.baRecv[key] = st
	}
	st.received[d.Seq.Number] = true
}

// handleBAR answers a BlockAckReq with the current bitmap at SIFS —
// like the ACK, this response is generated without consulting any
// higher layer.
func (s *Station) handleBAR(bar *dot11.BlockAckReq, solicitRate phy.Rate) {
	key := baKey{bar.TA, bar.TID}
	st, ok := s.baRecv[key]
	if !ok {
		st = &baRecvState{startSeq: bar.StartSeq, received: make(map[uint16]bool)}
		s.baRecv[key] = st
	}
	var bitmap uint64
	for off := 0; off < baWindowSize; off++ {
		seq := (bar.StartSeq + uint16(off)) & 0xfff
		if st.received[seq] {
			bitmap |= 1 << off
		}
	}
	ba := &dot11.BlockAck{
		RA: bar.TA, TA: s.Addr, TID: bar.TID, StartSeq: bar.StartSeq, Bitmap: bitmap,
	}
	wire, err := dot11.Serialize(ba)
	if err != nil {
		return
	}
	s.sched.After(s.band.SIFS(), func() {
		if s.Radio.Transmitting() {
			return
		}
		s.Radio.Transmit(wire, phy.ControlRate(solicitRate))
	})
}

type baKey struct {
	peer dot11.MAC
	tid  uint8
}
