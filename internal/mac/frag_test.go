package mac

import (
	"bytes"
	"testing"
	"testing/quick"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

func TestFragmentPayload(t *testing.T) {
	p := make([]byte, 250)
	for i := range p {
		p[i] = byte(i)
	}
	frags := fragmentPayload(p, 100)
	if len(frags) != 3 {
		t.Fatalf("fragments = %d, want 3", len(frags))
	}
	if len(frags[0]) != 100 || len(frags[1]) != 100 || len(frags[2]) != 50 {
		t.Fatalf("fragment sizes = %d/%d/%d", len(frags[0]), len(frags[1]), len(frags[2]))
	}
	joined := bytes.Join(frags, nil)
	if !bytes.Equal(joined, p) {
		t.Fatal("fragments do not reassemble to the payload")
	}
	// Threshold off or payload small: single fragment.
	if got := fragmentPayload(p, 0); len(got) != 1 {
		t.Fatal("threshold 0 should not fragment")
	}
	if got := fragmentPayload(p[:50], 100); len(got) != 1 {
		t.Fatal("small payload fragmented")
	}
}

// Property: fragmentation is lossless for any payload/threshold.
func TestFragmentPayloadProperty(t *testing.T) {
	f := func(payload []byte, thr uint8) bool {
		frags := fragmentPayload(payload, int(thr))
		return bytes.Equal(bytes.Join(frags, nil), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFragmentedTransferEncrypted sends a large payload over WPA2
// with a small fragmentation threshold; the AP reassembles the
// original MSDU. Each fragment is individually acknowledged.
func TestFragmentedTransferEncrypted(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.client.SetFragmentationThreshold(100)

	payload := make([]byte, 350)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var got []byte
	n.ap.OnDeliver = func(f dot11.Frame, rx radio.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			got = append([]byte(nil), d.Payload...)
		}
	}
	acksBefore := n.client.Stats.AcksReceived
	if err := n.client.SendData(apAddr, payload); err != nil {
		t.Fatal(err)
	}
	n.sched.RunFor(100 * eventsim.Millisecond)
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembled %d bytes, want %d (equal=%v)", len(got), len(payload), bytes.Equal(got, payload))
	}
	// 4 fragments (350/100) → 4 ACKs.
	if acks := n.client.Stats.AcksReceived - acksBefore; acks != 4 {
		t.Fatalf("fragment ACKs = %d, want 4", acks)
	}
}

func TestFragmentGapDiscards(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	delivered := 0
	n.ap.OnDeliver = func(f dot11.Frame, rx radio.Reception) { delivered++ }

	// Hand-inject fragment 1 without fragment 0 (unencrypted, so use
	// an open network instead).
	m := quietMedium()
	rng := eventsim.NewRNG(9)
	ap := New(m, rng, Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "open", Position: radio.Position{}, Band: phy2GHz(), Channel: 6,
	})
	cl := New(m, rng, Config{
		Name: "cl", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "open", Position: radio.Position{X: 4}, Band: phy2GHz(), Channel: 6,
	})
	okc := false
	cl.Associate(apAddr, func(v bool) { okc = v })
	m.Sched.RunFor(300 * eventsim.Millisecond)
	if !okc {
		t.Fatal("assoc failed")
	}
	apDelivered := 0
	ap.OnDeliver = func(f dot11.Frame, rx radio.Reception) { apDelivered++ }

	orphan := &dot11.Data{
		Header: dot11.Header{
			FC:    dot11.FrameControl{ToDS: true, MoreFrag: true},
			Addr1: apAddr, Addr2: clientAddr, Addr3: apAddr,
			Seq: dot11.SequenceControl{Number: 500, Fragment: 1},
		},
		Payload: []byte("orphan"),
	}
	wire, _ := dot11.Serialize(orphan)
	tx := m.NewRadio("inj", radio.Position{X: 2}, phy2GHz(), 6)
	tx.Transmit(wire, injRate())
	m.Sched.RunFor(50 * eventsim.Millisecond)
	if apDelivered != 0 {
		t.Fatal("orphan fragment delivered")
	}
	if ap.Stats.RxDiscarded == 0 {
		t.Fatal("orphan fragment not counted as discarded")
	}
	_ = delivered
}

// small local helpers to avoid extra imports in the test above.
func phy2GHz() phy.Band { return phy.Band2GHz }
func injRate() phy.Rate { return phy.Rate24 }
