package mac

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// TestAckInvariantRandomTraffic is the repository's central
// metamorphic test: whatever an attacker throws at a station, the
// number of ACKs it transmits equals exactly the number of clean
// (FCS-passing) unicast management/data frames with normal ack
// policy addressed to it. No frame content, key, association state
// or blocklist may perturb that equality — Polite WiFi, quantified.
func TestAckInvariantRandomTraffic(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(2026)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.0}, CaptureMarginDB: 10,
	})
	victim := New(m, rng.Fork(), Config{
		Name: "victim", Addr: clientAddr, Role: RoleClient,
		Profile: ProfileGenericClient, SSID: "n",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	victim.Block(fakeAddr) // blocklist must not matter
	tx := m.NewRadio("inj", radio.Position{X: 8}, phy.Band2GHz, 6)

	other := dot11.MustMAC("00:00:5e:00:53:44")
	frng := rng.Fork()
	expectedAcks := 0
	sent := 0

	for i := 0; i < 400; i++ {
		// Build a random frame: type, destination, corruption.
		var f dot11.Frame
		toVictim := frng.Coin(0.6)
		ra := other
		if toVictim {
			ra = clientAddr
		}
		seq := uint16(i & 0xfff)
		switch frng.Intn(8) {
		case 0:
			f = dot11.NewNullFrame(ra, fakeAddr, fakeAddr, seq)
		case 1:
			f = &dot11.Data{Header: dot11.Header{Addr1: ra, Addr2: fakeAddr, Addr3: fakeAddr,
				Seq: dot11.SequenceControl{Number: seq}}, Payload: []byte{1, 2, 3}}
		case 2:
			f = &dot11.Data{Header: dot11.Header{FC: dot11.FrameControl{Protected: true},
				Addr1: ra, Addr2: fakeAddr, Addr3: fakeAddr,
				Seq: dot11.SequenceControl{Number: seq}}, Payload: make([]byte, 24)}
		case 3:
			f = &dot11.Deauth{Header: dot11.Header{Addr1: ra, Addr2: fakeAddr, Addr3: fakeAddr,
				Seq: dot11.SequenceControl{Number: seq}}, Reason: dot11.ReasonUnspecified}
		case 4:
			f = &dot11.RTS{RA: ra, TA: fakeAddr, Duration: 48} // CTS, not ACK
		case 5:
			f = &dot11.Ack{RA: ra} // control: never acked
		case 6:
			f = &dot11.Action{Header: dot11.Header{Addr1: ra, Addr2: fakeAddr, Addr3: fakeAddr,
				Seq: dot11.SequenceControl{Number: seq}}, Category: dot11.CategoryPublic}
		default:
			// Block-ack policy QoS data: recorded, not ACKed.
			f = &dot11.Data{Header: dot11.Header{Addr1: ra, Addr2: fakeAddr, Addr3: fakeAddr,
				Seq: dot11.SequenceControl{Number: seq}},
				QoS: true, AckPolicy: dot11.AckPolicyBlockAck, Payload: []byte{9}}
		}
		wire, err := dot11.Serialize(f)
		if err != nil {
			t.Fatal(err)
		}
		corrupt := frng.Coin(0.2)
		if corrupt {
			wire[frng.Intn(len(wire))] ^= 0xff
		}
		if _, err := tx.Transmit(wire, phy.Rate24); err != nil {
			t.Fatal(err)
		}
		sent++
		// The invariant's prediction.
		if toVictim && !corrupt {
			d, isData := f.(*dot11.Data)
			blockAck := isData && d.QoS && d.AckPolicy == dot11.AckPolicyBlockAck
			if dot11.NeedsAck(f.Control(), clientAddr) && !blockAck {
				expectedAcks++
			}
		}
		// Space the frames out so ACKs never collide with the next
		// injection.
		sched.RunFor(2 * eventsim.Millisecond)
	}
	sched.RunFor(10 * eventsim.Millisecond)

	if got := int(victim.Stats.AcksSent); got != expectedAcks {
		t.Fatalf("ACKs sent = %d, invariant predicts %d (of %d frames)", got, expectedAcks, sent)
	}
	if victim.Stats.FCSErrors == 0 {
		t.Fatal("no corrupted frames seen — test degenerate")
	}
	if victim.Stats.CTSSent == 0 {
		t.Fatal("no RTS hit the victim — test degenerate")
	}
}
