package mac

import (
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

// txJob is one MPDU pending transmission with DCF etiquette and
// retry handling.
type txJob struct {
	frame    dot11.Frame
	needAck  bool
	rate     phy.Rate
	attempts int
	seqSet   bool
	onDone   func(acked bool)
}

// enqueue adds a job to the transmit queue and kicks the DCF machine.
func (s *Station) enqueue(j *txJob) {
	s.txq = append(s.txq, j)
	s.kickTx()
}

// kickTx starts servicing the queue if idle.
func (s *Station) kickTx() {
	if s.txActive != nil || len(s.txq) == 0 {
		return
	}
	s.txActive = s.txq[0]
	s.txq = s.txq[1:]
	s.deferAndSend(s.txActive)
}

// deferAndSend waits DIFS plus a random backoff and transmits. The
// contention window doubles on retries, as in DCF.
func (s *Station) deferAndSend(j *txJob) {
	backoffSlots := s.rng.Intn(s.cw + 1)
	wait := s.band.DIFS() + eventsim.Time(backoffSlots)*s.band.SlotTime()
	s.sched.After(wait, func() { s.attemptSend(j) })
}

func (s *Station) attemptSend(j *txJob) {
	if s.NAVBusy() {
		// Virtual carrier sense: wait out the reservation, then
		// contend again. SIFS responses (ACK/CTS) ignore the NAV —
		// which is why a NAV-jammed victim still acknowledges fake
		// frames.
		s.Stats.NAVDefers++
		wait := s.navUntil - s.sched.Now() + s.band.DIFS()
		s.sched.After(wait, func() { s.attemptSend(j) })
		return
	}
	if s.Radio.CCABusy() || s.Radio.Transmitting() {
		// Medium busy: retry the deferral (simplified freeze).
		s.deferAndSend(j)
		return
	}
	// PS stations must be awake to transmit.
	if s.Radio.Asleep() {
		s.Radio.Wake()
		s.metrics.Wakes.Inc()
	}
	// Stamp sequence number once; retries keep it and set the Retry
	// flag — this is what makes Figure 3's deauth bursts share a SN.
	if hdr, ok := headerOf(j.frame); ok {
		if !j.seqSet {
			hdr.Seq.Number = s.nextSeq()
			j.seqSet = true
		}
		hdr.FC.Retry = j.attempts > 0
		if j.needAck {
			hdr.Duration = phy.NAV(s.band, j.rate)
		}
	}
	wire, err := dot11.Serialize(j.frame)
	if err != nil {
		s.completeTx(j, false)
		return
	}
	s.Radio.SetNextTxLabel(j.frame.Control().Name())
	end, err := s.Radio.Transmit(wire, j.rate)
	if err != nil {
		s.deferAndSend(j)
		return
	}
	j.attempts++
	if _, isData := j.frame.(*dot11.Data); isData && j.attempts == 1 {
		s.Stats.TxData++
	}
	if j.attempts > 1 {
		s.Stats.TxRetries++
	}
	if !j.needAck {
		s.sched.Schedule(end, func() { s.completeTx(j, true) })
		return
	}
	// ACK timeout: SIFS + ACK airtime + propagation/processing slack.
	timeout := end + s.band.SIFS() + phy.AckDuration(j.rate) + 15*eventsim.Microsecond
	s.awaitAck = s.sched.Schedule(timeout, func() { s.ackTimeout(j) })
}

// handleAckRx resolves the pending job when its acknowledgement
// arrives.
func (s *Station) handleAckRx(a *dot11.Ack) {
	j := s.txActive
	if j == nil || s.awaitAck == nil {
		return
	}
	s.awaitAck.Cancel()
	s.awaitAck = nil
	s.Stats.AcksReceived++
	s.completeTx(j, true)
}

func (s *Station) ackTimeout(j *txJob) {
	s.awaitAck = nil
	if j.attempts >= s.retryLimit {
		s.Stats.TxFailed++
		s.cw = 15
		s.completeTx(j, false)
		return
	}
	if s.cw < 1023 {
		s.cw = s.cw*2 + 1
	}
	s.deferAndSend(j)
}

func (s *Station) completeTx(j *txJob, acked bool) {
	if s.txActive == j {
		s.txActive = nil
	}
	s.cw = 15
	if j.onDone != nil {
		j.onDone(acked)
	}
	s.psActivity()
	s.kickTx()
}
