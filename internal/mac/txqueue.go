package mac

import (
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

// txJob is one MPDU pending transmission with DCF etiquette and
// retry handling. Jobs are recycled through the station's free list:
// the DCF machine schedules the same three pre-bound callbacks for a
// job's whole life instead of minting a closure per deferral, and
// completeTx returns the job to the pool once no event references it.
type txJob struct {
	frame    dot11.Frame
	needAck  bool
	rate     phy.Rate
	attempts int
	seqSet   bool
	onDone   func(acked bool)

	attemptFn func()
	doneOKFn  func()
	timeoutFn func()
	next      *txJob
}

// newTxJob takes a job from the free list (or allocates one with its
// callbacks bound) and arms it for a single MPDU.
func (s *Station) newTxJob(f dot11.Frame, needAck bool, rate phy.Rate) *txJob {
	j := s.txFree
	if j == nil {
		j = &txJob{}
		jj := j
		j.attemptFn = func() { s.attemptSend(jj) }
		j.doneOKFn = func() { s.completeTx(jj, true) }
		j.timeoutFn = func() { s.ackTimeout(jj) }
	} else {
		s.txFree = j.next
		j.next = nil
	}
	j.frame = f
	j.needAck = needAck
	j.rate = rate
	return j
}

// releaseTxJob recycles a completed job. Safe at completeTx time: the
// ACK-await handle has been cancelled or fired, and every deferral
// chain ends in exactly one of the three callbacks.
func (s *Station) releaseTxJob(j *txJob) {
	j.frame = nil
	j.needAck = false
	var zeroRate phy.Rate
	j.rate = zeroRate
	j.attempts = 0
	j.seqSet = false
	j.onDone = nil
	j.next = s.txFree
	s.txFree = j
}

// enqueue adds a job to the transmit queue and kicks the DCF machine.
func (s *Station) enqueue(j *txJob) {
	s.txq = append(s.txq, j)
	s.kickTx()
}

// kickTx starts servicing the queue if idle.
func (s *Station) kickTx() {
	if s.txActive != nil || len(s.txq) == 0 {
		return
	}
	s.txActive = s.txq[0]
	s.txq = s.txq[1:]
	s.deferAndSend(s.txActive)
}

// deferAndSend waits DIFS plus a random backoff and transmits. The
// contention window doubles on retries, as in DCF.
func (s *Station) deferAndSend(j *txJob) {
	backoffSlots := s.rng.Intn(s.cw + 1)
	wait := s.band.DIFS() + eventsim.Time(backoffSlots)*s.band.SlotTime()
	s.sched.After(wait, j.attemptFn)
}

func (s *Station) attemptSend(j *txJob) {
	if s.NAVBusy() {
		// Virtual carrier sense: wait out the reservation, then
		// contend again. SIFS responses (ACK/CTS) ignore the NAV —
		// which is why a NAV-jammed victim still acknowledges fake
		// frames.
		s.Stats.NAVDefers++
		wait := s.navUntil - s.sched.Now() + s.band.DIFS()
		s.sched.After(wait, j.attemptFn)
		return
	}
	if s.Radio.CCABusy() || s.Radio.Transmitting() {
		// Medium busy: retry the deferral (simplified freeze).
		s.deferAndSend(j)
		return
	}
	// PS stations must be awake to transmit.
	if s.Radio.Asleep() {
		s.Radio.Wake()
		s.metrics.Wakes.Inc()
	}
	// Stamp sequence number once; retries keep it and set the Retry
	// flag — this is what makes Figure 3's deauth bursts share a SN.
	if hdr, ok := headerOf(j.frame); ok {
		if !j.seqSet {
			hdr.Seq.Number = s.nextSeq()
			j.seqSet = true
		}
		hdr.FC.Retry = j.attempts > 0
		if j.needAck {
			hdr.Duration = phy.NAV(s.band, j.rate)
		}
	}
	wire, err := dot11.AppendSerialize(s.wireScratch[:0], j.frame)
	if err != nil {
		s.completeTx(j, false)
		return
	}
	s.wireScratch = wire[:0]
	s.Radio.SetNextTxLabel(j.frame.Control().Name())
	end, err := s.Radio.Transmit(wire, j.rate)
	if err != nil {
		s.deferAndSend(j)
		return
	}
	j.attempts++
	if _, isData := j.frame.(*dot11.Data); isData && j.attempts == 1 {
		s.Stats.TxData++
	}
	if j.attempts > 1 {
		s.Stats.TxRetries++
	}
	if !j.needAck {
		s.sched.Schedule(end, j.doneOKFn)
		return
	}
	// ACK timeout: SIFS + ACK airtime + propagation/processing slack.
	timeout := end + s.band.SIFS() + phy.AckDuration(j.rate) + 15*eventsim.Microsecond
	s.awaitAck = s.sched.Schedule(timeout, j.timeoutFn)
}

// handleAckRx resolves the pending job when its acknowledgement
// arrives.
func (s *Station) handleAckRx(a *dot11.Ack) {
	j := s.txActive
	if j == nil || !s.awaitAck.Valid() {
		return
	}
	s.awaitAck.Cancel()
	s.awaitAck = eventsim.Handle{}
	s.Stats.AcksReceived++
	s.completeTx(j, true)
}

func (s *Station) ackTimeout(j *txJob) {
	s.awaitAck = eventsim.Handle{}
	if j.attempts >= s.retryLimit {
		s.Stats.TxFailed++
		s.cw = 15
		s.completeTx(j, false)
		return
	}
	if s.cw < 1023 {
		s.cw = s.cw*2 + 1
	}
	s.deferAndSend(j)
}

func (s *Station) completeTx(j *txJob, acked bool) {
	if s.txActive == j {
		s.txActive = nil
	}
	s.cw = 15
	if j.onDone != nil {
		j.onDone(acked)
	}
	s.releaseTxJob(j)
	s.psActivity()
	s.kickTx()
}
