package mac

import (
	"errors"
	"fmt"

	"politewifi/internal/crypto80211"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// Config describes a station to create.
type Config struct {
	Name       string
	Addr       dot11.MAC
	Role       Role
	Profile    ChipsetProfile
	SSID       string // network name (APs beacon it; clients use it for PMK)
	Passphrase string // WPA2-Personal passphrase; empty = open network
	Position   radio.Position
	Band       phy.Band
	Channel    int
	// BeaconIntervalTU is the AP beacon period in time units
	// (defaults to 100 TU = 102.4 ms).
	BeaconIntervalTU uint16
	// PMF enables 802.11w protected management frames: unicast
	// deauth/disassoc are CCMP-protected, and unprotected ones from
	// "the AP" are treated as forgeries. Control frames remain
	// unprotectable, so Polite WiFi is unaffected (paper footnote 2).
	PMF bool
}

// Station is a simulated 802.11 device: either an AP or a client.
type Station struct {
	Name    string
	Addr    dot11.MAC
	Role    Role
	Profile ChipsetProfile
	Radio   *radio.Radio
	Stats   Stats

	// metrics are shared population-level telemetry counters; the zero
	// value records nothing (see SetMetrics).
	metrics Metrics

	sched *eventsim.Scheduler
	rng   *eventsim.RNG
	band  phy.Band

	ssid       string
	passphrase string
	pmf        bool

	seq uint16

	// Client association state.
	bssid      dot11.MAC
	associated bool
	aid        uint16
	session    *crypto80211.Session
	assocDone  func(ok bool)
	assocTimer eventsim.Handle
	hs         *hsState

	// AP state.
	clients  map[dot11.MAC]*peer
	tsfStart eventsim.Time

	blocklist map[dot11.MAC]bool
	dupCache  map[dot11.MAC]uint16
	// peerSNR is an EWMA of per-transmitter link SNR, feeding rate
	// adaptation for data frames.
	peerSNR map[dot11.MAC]float64

	// Block-ack state.
	baSend *baSendState
	baRecv map[baKey]*baRecvState

	// Fragmentation.
	fragThreshold int
	reasm         map[dot11.MAC]*reasmState

	// Virtual carrier sense: the medium is reserved until navUntil
	// (set by overheard Duration fields, e.g. RTS/CTS exchanges).
	navUntil eventsim.Time

	// Transmit queue.
	txq        []*txJob
	txActive   *txJob
	awaitAck   eventsim.Handle
	cw         int
	retryLimit int

	ps psState

	// Zero-alloc hot-path state. dec parses every reception into
	// pooled per-type frame structs (valid only until the next decode,
	// so deferred host processing re-decodes at fire time);
	// wireScratch backs outgoing serializations — safe to reuse
	// because the medium copies transmitted bytes; the free lists
	// recycle the per-event job objects with their pre-bound
	// callbacks.
	dec         dot11.Decoder
	wireScratch []byte
	ackFrame    dot11.Ack
	beaconFrame dot11.Beacon
	beaconIEs   []dot11.IE // cached base [SSID, rates, DSParam]
	nBeaconIEs  int        // length of the cached base
	rsnIE       dot11.IE   // cached RSN element (RSN networks only)
	probeIEs    []dot11.IE // cached probe-response IEs (read-only)
	aidScratch  []uint16
	ackFree     *ackJob
	procFree    *procJob
	txFree      *txJob

	// OnDeliver is invoked for every frame the upper layer accepts
	// (decrypted payload for protected data).
	OnDeliver func(f dot11.Frame, rx radio.Reception)
	// OnUpperProcess is invoked once per frame that reaches host
	// processing, with the frame length; the power model charges CPU
	// energy here.
	OnUpperProcess func(frameLen int)
}

// peer tracks one associated (or authenticating) client at an AP.
type peer struct {
	aid     uint16
	authed  bool
	assoc   bool
	session *crypto80211.Session
	hs      *hsState

	// Power-save: the peer announced doze mode (PowerMgmt bit), so
	// unicast frames are buffered and announced via the beacon TIM
	// until a PS-Poll retrieves them.
	dozing   bool
	buffered []*txJob
}

// New creates a station and attaches its radio to the medium.
func New(m *radio.Medium, rng *eventsim.RNG, cfg Config) *Station {
	if cfg.BeaconIntervalTU == 0 {
		cfg.BeaconIntervalTU = DefaultBeaconIntervalTU
	}
	if cfg.Name == "" {
		cfg.Name = cfg.Addr.String()
	}
	s := &Station{
		Name:       cfg.Name,
		Addr:       cfg.Addr,
		Role:       cfg.Role,
		Profile:    cfg.Profile,
		sched:      m.Sched,
		rng:        rng,
		band:       cfg.Band,
		ssid:       cfg.SSID,
		passphrase: cfg.Passphrase,
		pmf:        cfg.PMF && cfg.Passphrase != "", // PMF needs keys
		clients:    make(map[dot11.MAC]*peer),
		blocklist:  make(map[dot11.MAC]bool),
		dupCache:   make(map[dot11.MAC]uint16),
		peerSNR:    make(map[dot11.MAC]float64),
		baRecv:     make(map[baKey]*baRecvState),
		reasm:      make(map[dot11.MAC]*reasmState),
		cw:         15,
		retryLimit: 3, // total transmissions per MPDU
		ps: psState{
			intervalTU: cfg.BeaconIntervalTU,
			// Strictly above 100 ms so an attack at "more than 10
			// packets per second" (the paper's threshold) pins the
			// radio awake, while 5 fps still lets it doze.
			idleTimeout: 120 * eventsim.Millisecond,
			guard:       500 * eventsim.Microsecond,
			beaconWait:  3 * eventsim.Millisecond,
		},
	}
	s.Radio = m.NewRadio(cfg.Name, cfg.Position, cfg.Band, cfg.Channel)
	s.Radio.SetHandler(s.onReceive)
	if cfg.Passphrase != "" {
		s.rsnIE = dot11.RSNElement()
	}
	if cfg.Role == RoleAP {
		// Static IE caches: beacons append TIM/RSN behind the base in
		// place, probe responses share one read-only slice.
		s.beaconIEs = append(make([]dot11.IE, 0, 5),
			dot11.SSIDElement(s.ssid),
			dot11.RatesElement(6, 12, 24, 54),
			dot11.DSParamElement(uint8(cfg.Channel)),
		)
		s.nBeaconIEs = len(s.beaconIEs)
		s.probeIEs = []dot11.IE{
			dot11.SSIDElement(s.ssid),
			dot11.DSParamElement(uint8(cfg.Channel)),
		}
		s.tsfStart = m.Sched.Now()
		interval := eventsim.Time(cfg.BeaconIntervalTU) * 1024 * eventsim.Microsecond
		// Stagger the TSF so co-located APs don't beacon in lockstep
		// (and collide forever), as real APs' free-running clocks do.
		offset := eventsim.Time(rng.Int63() % int64(interval))
		m.Sched.After(offset, func() {
			s.sendBeacon()
			m.Sched.Every(interval, s.sendBeacon)
		})
	}
	return s
}

// PMFEnabled reports whether 802.11w protection is active.
func (s *Station) PMFEnabled() bool { return s.pmf }

// SSID returns the network name this station beacons or joined.
func (s *Station) SSID() string { return s.ssid }

// Associated reports whether a client station has completed
// association.
func (s *Station) Associated() bool { return s.associated }

// BSSID returns the AP a client is associated to.
func (s *Station) BSSID() dot11.MAC { return s.bssid }

// Session exposes the CCMP session (nil on open networks or before
// association).
func (s *Station) Session() *crypto80211.Session { return s.session }

// Block adds a transmitter address to the MAC blocklist. The paper's
// §2.1 experiment shows this is cosmetic: the frame is dropped at the
// host, but the PHY has already acknowledged it.
func (s *Station) Block(addr dot11.MAC) { s.blocklist[addr] = true }

// Unblock removes an address from the blocklist.
func (s *Station) Unblock(addr dot11.MAC) { delete(s.blocklist, addr) }

func (s *Station) nextSeq() uint16 {
	s.seq = dot11.NextSeq(s.seq)
	return s.seq
}

// --- Receive path ----------------------------------------------------

// onReceive is the station's PHY→MAC boundary. The ordering inside
// this function is the paper's entire story: the ACK decision happens
// immediately (to meet SIFS), while all validation is deferred by the
// host decode latency.
func (s *Station) onReceive(rx radio.Reception) {
	s.Stats.PHYFrames++
	if !rx.FCSOK {
		// Failed the PHY error check: the only pre-ACK validation
		// that exists. No ACK for corrupted frames.
		s.Stats.FCSErrors++
		return
	}
	f, err := s.dec.Decode(rx.Data)
	if err != nil {
		if errors.Is(err, dot11.ErrBadFCS) {
			s.Stats.FCSErrors++
		}
		return
	}
	ra := f.ReceiverAddress()
	if !ra.Matches(s.Addr) {
		// Not ours — but honour the NAV: the Duration field of
		// overheard frames reserves the medium (virtual carrier
		// sense). This is why RTS/CTS cannot be encrypted, and thus
		// why Polite WiFi is unpreventable (§2.2).
		s.updateNAV(f, rx)
		return
	}
	s.Stats.RxForMe++
	s.observeSNR(f.TransmitterAddress(), rx.SNRDB)
	if ra == s.Addr {
		// Only directed traffic counts as power-save activity;
		// broadcast beacons must not keep the radio awake.
		s.psActivity()
	}

	switch ff := f.(type) {
	case *dot11.Ack:
		s.handleAckRx(ff)
		return
	case *dot11.CTS:
		return // we never RTS in this simulator's stations
	case *dot11.RTS:
		if ra == s.Addr {
			s.Stats.RTSReceived++
			// CTS at SIFS, unconditionally — Wang et al. [27], §2.2:
			// control frames cannot be encrypted, so even a
			// validating receiver must respond.
			s.respondCTS(ff, rx)
		}
		return
	case *dot11.PSPoll:
		if s.Role == RoleAP && ra == s.Addr {
			s.handlePSPoll(ff)
		}
		return
	case *dot11.BlockAckReq:
		if ra == s.Addr {
			s.handleBAR(ff, rx.Rate)
		}
		return
	case *dot11.BlockAck:
		if ra == s.Addr {
			s.handleBlockAck(ff)
		}
		return
	}

	// Block-ack-policy MPDUs are recorded at the low MAC (the bitmap
	// must be ready at SIFS) and are NOT immediately acknowledged.
	if d, ok := f.(*dot11.Data); ok && d.QoS && d.AckPolicy == dot11.AckPolicyBlockAck && ra == s.Addr {
		s.recvBurstFrame(d)
		s.deferProcess(rx)
		return
	}

	// --- The Polite WiFi decision point -----------------------------
	// Unicast management/data frame addressed to us: the PHY queues
	// the ACK for SIFS after frame end. Nothing about association
	// state, encryption, blocklists or frame contents is consulted.
	if dot11.NeedsAck(f.Control(), ra) && ra == s.Addr {
		if s.Profile.Validating {
			s.scheduleValidatedAck(f, rx)
		} else {
			s.scheduleAck(f, rx)
		}
	}

	// Host processing happens much later, after the decode latency.
	s.deferProcess(rx)
}

// procJob defers host processing of one reception. The pooled frame
// structs in s.dec are overwritten by every subsequent decode, so the
// deferred half re-parses the wire bytes at fire time instead of
// retaining a frame across events; rx.Data stays valid because
// reception buffers are never reused within a stop.
type procJob struct {
	rx   radio.Reception
	fn   func()
	next *procJob
}

func (s *Station) deferProcess(rx radio.Reception) {
	j := s.procFree
	if j == nil {
		j = &procJob{}
		jj := j
		j.fn = func() { s.fireProc(jj) }
	} else {
		s.procFree = j.next
	}
	j.rx = rx
	s.sched.After(s.Profile.Decode.Latency(len(rx.Data)), j.fn)
}

func (s *Station) fireProc(j *procJob) {
	rx := j.rx
	j.rx = radio.Reception{}
	j.next = s.procFree
	s.procFree = j
	if f := s.reDecode(rx); f != nil {
		s.macProcess(f, rx)
	}
}

// reDecode re-parses an already-FCS-verified reception into the
// pooled decoder; nil on parse failure (cannot happen for receptions
// that decoded in onReceive, but deferred events must not assume it).
func (s *Station) reDecode(rx radio.Reception) dot11.Frame {
	f, err := s.dec.DecodeNoFCS(rx.Data[:len(rx.Data)-dot11.FCSLen])
	if err != nil {
		return nil
	}
	return f
}

// observeSNR folds a reception's SNR into the per-peer link estimate
// (EWMA, α = 0.25).
func (s *Station) observeSNR(peerAddr dot11.MAC, snrDB float64) {
	if peerAddr == dot11.ZeroMAC {
		return
	}
	if prev, ok := s.peerSNR[peerAddr]; ok {
		s.peerSNR[peerAddr] = 0.75*prev + 0.25*snrDB
	} else {
		s.peerSNR[peerAddr] = snrDB
	}
}

// DataRateFor picks the transmit rate for data frames to a peer:
// the fastest OFDM rate the estimated SNR supports, or the default
// 24 Mbps when the link is uncharacterised. Management frames always
// use the robust default.
func (s *Station) DataRateFor(peerAddr dot11.MAC) phy.Rate {
	snr, ok := s.peerSNR[peerAddr]
	if !ok {
		return defaultDataRate
	}
	return phy.PickRate(snr)
}

// updateNAV extends the network allocation vector from an overheard
// frame's Duration field.
func (s *Station) updateNAV(f dot11.Frame, rx radio.Reception) {
	var dur uint16
	switch ff := f.(type) {
	case *dot11.RTS:
		dur = ff.Duration
	case *dot11.CTS:
		dur = ff.Duration
	case *dot11.Ack:
		dur = ff.Duration
	default:
		if hdr, ok := headerOf(f); ok {
			dur = hdr.Duration
		}
	}
	if dur == 0 {
		return
	}
	until := rx.End + eventsim.Time(dur)*eventsim.Microsecond
	if until > s.navUntil {
		s.navUntil = until
		s.Stats.NAVUpdates++
	}
}

// NAVBusy reports whether virtual carrier sense currently reserves
// the medium.
func (s *Station) NAVBusy() bool { return s.sched.Now() < s.navUntil }

// ackJob is the pooled deferred-ACK state: the SIFS-delayed transmit
// needs only the addresses, rates and trace tag captured here — never
// the (pooled, soon-overwritten) soliciting frame.
type ackJob struct {
	ta       dot11.MAC
	rate     phy.Rate
	solicit  dot11.FrameType
	exchange uint64
	fn       func()
	next     *ackJob
}

// scheduleAck queues the PHY acknowledgement one SIFS after the end
// of the soliciting frame.
func (s *Station) scheduleAck(f dot11.Frame, rx radio.Reception) {
	j := s.ackFree
	if j == nil {
		j = &ackJob{}
		jj := j
		j.fn = func() { s.fireAck(jj) }
	} else {
		s.ackFree = j.next
	}
	j.ta = f.TransmitterAddress()
	j.rate = rx.Rate
	j.solicit = f.Control().Type
	j.exchange = rx.Exchange
	s.sched.After(s.band.SIFS(), j.fn)
}

func (s *Station) fireAck(j *ackJob) {
	ta, rate, solicit, exchange := j.ta, j.rate, j.solicit, j.exchange
	j.next = s.ackFree
	s.ackFree = j
	s.transmitAck(ta, rate, false, solicit, exchange)
}

// scheduleValidatedAck is the §2.2 ablation: decrypt-then-ACK. The
// ACK leaves only after the host decode latency, hundreds of
// microseconds past the SIFS deadline, and only if the frame was
// genuine — by which time the transmitter has long declared loss.
func (s *Station) scheduleValidatedAck(f dot11.Frame, rx radio.Reception) {
	ta := f.TransmitterAddress()
	solicit := f.Control().Type
	delay := s.Profile.Decode.Latency(len(rx.Data))
	// Validating chipsets are the rare ablation case, so a plain
	// closure is fine here — but it must re-decode at fire time rather
	// than retain the pooled frame struct.
	s.sched.After(delay, func() {
		valid := false
		if d, ok := s.reDecode(rx).(*dot11.Data); ok && d.FC.Protected && s.session != nil {
			cp := *d
			cp.Payload = append([]byte(nil), d.Payload...)
			valid = s.session.Decrypt(&cp) == nil
		}
		if valid {
			s.transmitAck(ta, rx.Rate, true, solicit, rx.Exchange)
		}
	})
}

func (s *Station) transmitAck(ta dot11.MAC, solicitRate phy.Rate, late bool, solicit dot11.FrameType, exchange uint64) {
	if ta == dot11.ZeroMAC {
		return
	}
	if s.Radio.Transmitting() {
		s.Stats.AcksMissed++
		return
	}
	s.ackFrame = dot11.Ack{RA: ta}
	wire, err := dot11.AppendSerialize(s.wireScratch[:0], &s.ackFrame)
	if err != nil {
		return
	}
	s.wireScratch = wire[:0]
	s.Radio.SetNextTxLabel("ACK")
	s.Radio.SetNextTxExchange(exchange)
	if _, err := s.Radio.Transmit(wire, phy.ControlRate(solicitRate)); err != nil {
		s.Stats.AcksMissed++
		return
	}
	s.Stats.AcksSent++
	s.metrics.countAck(solicit)
	if late {
		s.Stats.LateAcks++
		s.metrics.LateAcks.Inc()
	}
	if !s.knownPeer(ta) {
		s.Stats.AckForUnknown++
	}
}

func (s *Station) respondCTS(r *dot11.RTS, rx radio.Reception) {
	ctlRate := phy.ControlRate(rx.Rate)
	ctsAir := phy.Airtime(ctlRate, 14)
	cts := dot11.CTSFor(r, s.band.SIFS()+ctsAir)
	wire, err := dot11.Serialize(cts)
	if err != nil {
		return
	}
	s.sched.After(s.band.SIFS(), func() {
		if s.Radio.Transmitting() {
			return
		}
		s.Radio.SetNextTxLabel("CTS")
		s.Radio.SetNextTxExchange(rx.Exchange)
		if _, err := s.Radio.Transmit(wire, ctlRate); err == nil {
			s.Stats.CTSSent++
			s.metrics.CTS.Inc()
		}
	})
}

// knownPeer reports whether the station has any prior relationship
// with the address: its AP, an associated client, or a client mid
// authentication.
func (s *Station) knownPeer(addr dot11.MAC) bool {
	if s.Role == RoleClient {
		return addr == s.bssid && s.bssid != dot11.ZeroMAC
	}
	_, ok := s.clients[addr]
	return ok
}

// macProcess is the host-side half of the receive path. Everything
// here runs after the ACK has already left.
func (s *Station) macProcess(f dot11.Frame, rx radio.Reception) {
	s.Stats.UpperHandled++
	if s.OnUpperProcess != nil {
		s.OnUpperProcess(len(rx.Data))
	}
	ta := f.TransmitterAddress()

	// Duplicate filter.
	if hdr, ok := headerOf(f); ok {
		key := hdr.Seq.Uint16()
		if hdr.FC.Retry && s.dupCache[ta] == key {
			return
		}
		s.dupCache[ta] = key
	}

	// MAC blocklist: drops the frame *here*, long after the ACK.
	if s.blocklist[ta] {
		s.Stats.BlockedDrops++
		return
	}

	switch ff := f.(type) {
	case *dot11.Data:
		s.processData(ff, rx)
	case *dot11.Beacon:
		s.processBeacon(ff, rx)
	case *dot11.ProbeReq:
		s.processProbeReq(ff)
	case *dot11.ProbeResp:
		// Passive: discovery logic lives in package core.
		s.deliver(ff, rx)
	case *dot11.Auth:
		s.processAuth(ff)
	case *dot11.AssocReq:
		s.processAssocReq(ff)
	case *dot11.AssocResp:
		s.processAssocResp(ff)
	case *dot11.Deauth:
		s.processDeauth(ff)
	case *dot11.Disassoc:
		s.processDisassoc(ff)
	}
}

func headerOf(f dot11.Frame) (*dot11.Header, bool) {
	switch ff := f.(type) {
	case *dot11.Data:
		return &ff.Header, true
	case *dot11.Beacon:
		return &ff.Header, true
	case *dot11.ProbeReq:
		return &ff.Header, true
	case *dot11.ProbeResp:
		return &ff.Header, true
	case *dot11.Auth:
		return &ff.Header, true
	case *dot11.AssocReq:
		return &ff.Header, true
	case *dot11.AssocResp:
		return &ff.Header, true
	case *dot11.Deauth:
		return &ff.Header, true
	case *dot11.Disassoc:
		return &ff.Header, true
	}
	return nil, false
}

func (s *Station) deliver(f dot11.Frame, rx radio.Reception) {
	s.Stats.RxDelivered++
	if s.OnDeliver != nil {
		s.OnDeliver(f, rx)
	}
}

// processData validates a data frame at the host. Fake frames die
// here — after being acknowledged.
func (s *Station) processData(d *dot11.Data, rx radio.Reception) {
	ta := d.Addr2
	known := s.knownPeer(ta)

	// EAPOL-Key frames are the one kind of data an RSN network
	// accepts unencrypted — they bootstrap the keys. Their MICs are
	// their authentication.
	if !d.Null && !d.FC.Protected && known && s.handleEAPOL(d) {
		return
	}

	if !known {
		// Class-3 frame from a stranger: this is the attacker's fake
		// frame. The host discards it; some AP firmwares also fire
		// deauthentication frames at the "malfunctioning" device.
		s.Stats.RxDiscarded++
		if s.Role == RoleAP && s.Profile.DeauthOnUnknown {
			s.sendDeauth(ta, dot11.ReasonClass3FromNonAssoc)
		}
		return
	}
	if s.Role == RoleAP {
		s.notePowerMgmt(ta, d.FC.PowerMgmt)
	}
	if d.Null {
		// Legitimate null frames signal power-save transitions.
		s.Stats.RxDelivered++
		return
	}
	if d.FC.Protected {
		sess := s.sessionFor(ta)
		if sess == nil {
			s.Stats.RxDiscarded++
			return
		}
		cp := *d
		cp.Payload = append([]byte(nil), d.Payload...)
		if err := sess.Decrypt(&cp); err != nil {
			s.Stats.RxDiscarded++
			return
		}
		s.deliverMaybeFragment(&cp, rx)
		return
	}
	if s.passphrase != "" {
		// Unencrypted data on an RSN network is never legitimate.
		s.Stats.RxDiscarded++
		return
	}
	s.deliverMaybeFragment(d, rx)
}

// deliverMaybeFragment reassembles fragmented MSDUs and delivers
// complete payloads.
func (s *Station) deliverMaybeFragment(d *dot11.Data, rx radio.Reception) {
	if d.Seq.Fragment == 0 && !d.FC.MoreFrag {
		s.deliver(d, rx)
		return
	}
	if whole := s.handleFragment(d, rx); whole != nil {
		full := *d
		full.Payload = whole
		full.FC.MoreFrag = false
		full.Seq.Fragment = 0
		s.deliver(&full, rx)
	}
}

func (s *Station) sessionFor(peerAddr dot11.MAC) *crypto80211.Session {
	if s.Role == RoleClient {
		return s.session
	}
	if p, ok := s.clients[peerAddr]; ok {
		return p.session
	}
	return nil
}

// sendDeauth queues a deauthentication frame. Because the attacker
// never acknowledges it, the retry machinery resends it — producing
// the same-SN deauth bursts of Figure 3.
func (s *Station) sendDeauth(to dot11.MAC, reason dot11.ReasonCode) {
	d := &dot11.Deauth{
		Header: dot11.Header{
			FC:    dot11.FrameControl{FromDS: s.Role == RoleAP},
			Addr1: to, Addr2: s.Addr, Addr3: s.Addr,
		},
		Reason: reason,
	}
	// 802.11w: deauth to an associated peer is protected. A deauth to
	// a stranger (the Figure 3 "malfunctioning device" case) has no
	// pairwise key and stays unprotected, as the standard allows.
	if s.pmf {
		if sess := s.sessionFor(to); sess != nil {
			if err := sess.EncryptDeauth(d); err != nil {
				return
			}
		}
	}
	s.Stats.DeauthsSent++
	s.metrics.Deauths.Inc()
	s.enqueue(s.newTxJob(d, true, defaultDataRate))
}

// --- Beaconing and discovery (AP side) -------------------------------

func (s *Station) sendBeacon() {
	if s.Role != RoleAP {
		return
	}
	// Extend the cached base IEs in place; beacons transmit directly
	// (never queue), so one reusable frame and IE slice suffice.
	ies := s.beaconIEs[:s.nBeaconIEs]
	bufferedAIDs := s.aidScratch[:0]
	for _, p := range s.clients {
		if len(p.buffered) > 0 {
			bufferedAIDs = append(bufferedAIDs, p.aid)
		}
	}
	s.aidScratch = bufferedAIDs[:0]
	if len(bufferedAIDs) > 0 {
		ies = append(ies, dot11.TIMElement(0, 1, bufferedAIDs))
	}
	if s.passphrase != "" {
		ies = append(ies, s.rsnIE)
	}
	s.beaconIEs = ies[:s.nBeaconIEs]
	cap := dot11.CapESS
	if s.passphrase != "" {
		cap |= dot11.CapPrivacy
	}
	s.beaconFrame = dot11.Beacon{
		Header: dot11.Header{
			Addr1: dot11.Broadcast, Addr2: s.Addr, Addr3: s.Addr,
			Seq: dot11.SequenceControl{Number: s.nextSeq()},
		},
		Timestamp:  uint64((s.sched.Now() - s.tsfStart) / eventsim.Microsecond),
		IntervalTU: s.ps.intervalTU,
		Capability: cap,
		IEs:        ies,
	}
	wire, err := dot11.AppendSerialize(s.wireScratch[:0], &s.beaconFrame)
	if err != nil || s.Radio.Transmitting() {
		return
	}
	s.wireScratch = wire[:0]
	s.Radio.SetNextTxLabel("Beacon")
	if _, err := s.Radio.Transmit(wire, phy.Rate6); err == nil {
		s.Stats.BeaconsSent++
	}
}

func (s *Station) processProbeReq(p *dot11.ProbeReq) {
	if s.Role != RoleAP {
		return
	}
	want, _ := dot11.FindSSID(p.IEs)
	if want != "" && want != s.ssid {
		return
	}
	// Response frames stay per-call allocations (several can sit in
	// the transmit queue at once) but share the read-only IE cache.
	resp := &dot11.ProbeResp{
		Header: dot11.Header{
			Addr1: p.Addr2, Addr2: s.Addr, Addr3: s.Addr,
		},
		Timestamp:  uint64((s.sched.Now() - s.tsfStart) / eventsim.Microsecond),
		IntervalTU: s.ps.intervalTU,
		Capability: dot11.CapESS,
		IEs:        s.probeIEs,
	}
	s.enqueue(s.newTxJob(resp, true, defaultDataRate))
}

// --- Association -----------------------------------------------------

// Associate begins the client-side join to the AP with the given
// BSSID. done (optional) is called with the outcome. The exchange
// runs over the air: Auth → Auth → AssocReq → AssocResp, followed by
// the condensed key handshake.
func (s *Station) Associate(bssid dot11.MAC, done func(ok bool)) {
	if s.Role != RoleClient {
		panic("mac: Associate on an AP")
	}
	s.bssid = bssid
	s.assocDone = done
	auth := &dot11.Auth{
		Header: dot11.Header{
			Addr1: bssid, Addr2: s.Addr, Addr3: bssid,
		},
		Algorithm: 0, AuthSeq: 1, Status: dot11.StatusSuccess,
	}
	s.enqueue(s.newTxJob(auth, true, defaultDataRate))
	s.assocTimer = s.sched.After(200*eventsim.Millisecond, func() {
		// On RSN networks the join is only complete once the 4-way
		// handshake installed keys; 802.11 association alone (e.g.
		// with a wrong passphrase) is a failure.
		if !s.associated || (s.passphrase != "" && s.session == nil) {
			s.associated = false
			s.finishAssoc(false)
		}
	})
}

func (s *Station) finishAssoc(ok bool) {
	s.assocTimer.Cancel()
	s.assocTimer = eventsim.Handle{}
	if done := s.assocDone; done != nil {
		s.assocDone = nil
		done(ok)
	}
}

func (s *Station) processAuth(a *dot11.Auth) {
	switch s.Role {
	case RoleAP:
		if a.AuthSeq != 1 {
			return
		}
		p := s.clients[a.Addr2]
		if p == nil {
			p = &peer{}
			s.clients[a.Addr2] = p
		}
		p.authed = true
		resp := &dot11.Auth{
			Header: dot11.Header{
				FC:    dot11.FrameControl{FromDS: true},
				Addr1: a.Addr2, Addr2: s.Addr, Addr3: s.Addr,
			},
			Algorithm: 0, AuthSeq: 2, Status: dot11.StatusSuccess,
		}
		s.enqueue(s.newTxJob(resp, true, defaultDataRate))
	case RoleClient:
		if a.AuthSeq != 2 || a.Status != dot11.StatusSuccess || a.Addr2 != s.bssid {
			return
		}
		req := &dot11.AssocReq{
			Header: dot11.Header{
				Addr1: s.bssid, Addr2: s.Addr, Addr3: s.bssid,
			},
			Capability: dot11.CapESS,
			IntervalTU: 10,
			IEs:        []dot11.IE{dot11.SSIDElement(s.ssid)},
		}
		s.enqueue(s.newTxJob(req, true, defaultDataRate))
	}
}

func (s *Station) processAssocReq(a *dot11.AssocReq) {
	if s.Role != RoleAP {
		return
	}
	p := s.clients[a.Addr2]
	if p == nil || !p.authed {
		return
	}
	if !p.assoc {
		p.assoc = true
		p.aid = uint16(len(s.clients))
	}
	resp := &dot11.AssocResp{
		Header: dot11.Header{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: a.Addr2, Addr2: s.Addr, Addr3: s.Addr,
		},
		Capability: dot11.CapESS,
		Status:     dot11.StatusSuccess,
		AID:        p.aid,
	}
	s.enqueue(s.newTxJob(resp, true, defaultDataRate))
	if s.passphrase != "" {
		s.startHandshake(a.Addr2)
	}
}

func (s *Station) processAssocResp(a *dot11.AssocResp) {
	if s.Role != RoleClient || a.Addr2 != s.bssid || a.Status != dot11.StatusSuccess {
		return
	}
	s.aid = a.AID
	s.associated = true
	if s.passphrase != "" {
		// RSN: the join completes when the 4-way handshake installs
		// the temporal key (clientEAPOL message 3).
		return
	}
	s.finishAssoc(true)
}

// processDisassoc tears down the association but keeps the 802.11
// authentication (the class distinction deauth erases).
func (s *Station) processDisassoc(d *dot11.Disassoc) {
	if s.Role == RoleClient && d.Addr2 == s.bssid {
		s.associated = false
		s.session = nil
	}
	if s.Role == RoleAP {
		if p, ok := s.clients[d.Addr2]; ok {
			p.assoc = false
			p.session = nil
		}
	}
}

func (s *Station) processDeauth(d *dot11.Deauth) {
	// 802.11w: with PMF, a deauth that claims to come from a peer we
	// share keys with must be protected and must verify; anything
	// else is a forgery (the classic deauth attack) and is ignored —
	// although its PHY ACK has, of course, already been sent.
	if s.pmf {
		sess := s.sessionFor(d.Addr2)
		if sess != nil {
			cp := *d
			cp.ProtectedBody = append([]byte(nil), d.ProtectedBody...)
			if !d.FC.Protected || sess.DecryptDeauth(&cp) != nil {
				s.Stats.ForgedMgmtDropped++
				return
			}
		}
	}
	if s.Role == RoleClient && d.Addr2 == s.bssid {
		s.associated = false
		s.session = nil
	}
	if s.Role == RoleAP {
		delete(s.clients, d.Addr2)
	}
}

// --- Data transmission ------------------------------------------------

// SendData queues an application payload to the given destination,
// CCMP-protected when a session exists, and fragmented when the
// payload exceeds the fragmentation threshold. For clients the frame
// goes ToDS through the AP.
func (s *Station) SendData(to dot11.MAC, payload []byte) error {
	if s.Role == RoleClient && !s.associated {
		return errNotAssociated
	}
	if s.fragThreshold > 0 && len(payload) > s.fragThreshold {
		return s.sendFragments(to, payload)
	}
	d := &dot11.Data{
		Header: dot11.Header{
			Addr2: s.Addr,
		},
		Payload: append([]byte(nil), payload...),
	}
	switch s.Role {
	case RoleClient:
		if !s.associated {
			return fmt.Errorf("mac: %s not associated", s.Name)
		}
		d.FC.ToDS = true
		d.Addr1 = s.bssid
		d.Addr3 = to
		if s.session != nil {
			if err := s.session.Encrypt(d); err != nil {
				return err
			}
		}
	case RoleAP:
		d.FC.FromDS = true
		d.Addr1 = to
		d.Addr3 = s.Addr
		if sess := s.sessionFor(to); sess != nil {
			if err := sess.Encrypt(d); err != nil {
				return err
			}
		}
		if p, ok := s.clients[to]; ok && p.dozing {
			// The peer is asleep: hold the frame and let the beacon
			// TIM announce it.
			job := s.newTxJob(d, true, s.DataRateFor(to))
			if len(p.buffered) < 16 {
				p.buffered = append(p.buffered, job)
			} else {
				s.Stats.TxFailed++
			}
			return nil
		}
	}
	s.enqueue(s.newTxJob(d, true, s.DataRateFor(d.Addr1)))
	return nil
}

// handlePSPoll releases one buffered frame to a polling PS client,
// setting MoreData while others remain.
func (s *Station) handlePSPoll(p *dot11.PSPoll) {
	peerState, ok := s.clients[p.TA]
	if !ok || len(peerState.buffered) == 0 {
		return
	}
	job := peerState.buffered[0]
	peerState.buffered = peerState.buffered[1:]
	if hdr, okh := headerOf(job.frame); okh {
		hdr.FC.MoreData = len(peerState.buffered) > 0
	}
	s.enqueue(job)
}

// notePowerMgmt tracks a peer's announced doze state from the
// PowerMgmt bit of its frames; leaving doze flushes the buffer.
func (s *Station) notePowerMgmt(from dot11.MAC, pm bool) {
	p, ok := s.clients[from]
	if !ok {
		return
	}
	if p.dozing && !pm {
		for _, job := range p.buffered {
			s.enqueue(job)
		}
		p.buffered = nil
	}
	p.dozing = pm
}

// AssociatedClients returns the MACs of fully associated clients (AP
// only).
func (s *Station) AssociatedClients() []dot11.MAC {
	var out []dot11.MAC
	for m, p := range s.clients {
		if p.assoc {
			out = append(out, m)
		}
	}
	return out
}
