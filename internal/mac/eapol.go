package mac

import (
	"politewifi/internal/crypto80211"
	"politewifi/internal/dot11"
)

// The on-air 4-way handshake. After a successful association on an
// RSN network, the AP initiates EAPOL-Key message 1; four unencrypted
// data frames later both sides have verified possession of the PMK
// and installed the CCMP temporal key. An attacker observing all four
// frames learns both nonces but cannot compute the PTK without the
// PMK, and cannot forge the MICs — this is tested.

// hsState is one side's handshake state.
type hsState struct {
	anonce [crypto80211.NonceLen32]byte
	snonce [crypto80211.NonceLen32]byte
	ptk    []byte
	replay uint64
}

func (s *Station) randomNonce() (n [crypto80211.NonceLen32]byte) {
	for i := range n {
		n[i] = byte(s.rng.Intn(256))
	}
	return n
}

// sendEAPOL transmits one key message as an unencrypted data frame.
func (s *Station) sendEAPOL(to dot11.MAC, k *crypto80211.EAPOLKey) {
	d := &dot11.Data{
		Header:  dot11.Header{Addr2: s.Addr},
		Payload: k.Marshal(),
	}
	if s.Role == RoleAP {
		d.FC.FromDS = true
		d.Addr1 = to
		d.Addr3 = s.Addr
	} else {
		d.FC.ToDS = true
		d.Addr1 = to
		d.Addr3 = to
	}
	s.enqueue(s.newTxJob(d, true, defaultDataRate))
}

// startHandshake begins the exchange (AP side, after association).
func (s *Station) startHandshake(peerAddr dot11.MAC) {
	p := s.clients[peerAddr]
	if p == nil {
		return
	}
	p.hs = &hsState{anonce: s.randomNonce(), replay: 1}
	s.sendEAPOL(peerAddr, &crypto80211.EAPOLKey{
		MsgNum: 1, ReplayCounter: p.hs.replay, Nonce: p.hs.anonce,
	})
}

// handleEAPOL processes a key message at either side. Returns true
// if the payload was consumed as a handshake frame.
func (s *Station) handleEAPOL(d *dot11.Data) bool {
	if !crypto80211.IsEAPOL(d.Payload) {
		return false
	}
	k, err := crypto80211.ParseEAPOLKey(d.Payload)
	if err != nil {
		s.Stats.RxDiscarded++
		return true
	}
	switch s.Role {
	case RoleClient:
		s.clientEAPOL(d.Addr2, k)
	case RoleAP:
		s.apEAPOL(d.Addr2, k)
	}
	return true
}

func (s *Station) pmk() []byte {
	return crypto80211.PMK(s.passphrase, s.ssid)
}

// clientEAPOL handles M1 and M3.
func (s *Station) clientEAPOL(from dot11.MAC, k *crypto80211.EAPOLKey) {
	if from != s.bssid {
		return
	}
	switch k.MsgNum {
	case 1:
		hs := &hsState{anonce: k.Nonce, snonce: s.randomNonce(), replay: k.ReplayCounter}
		hs.ptk = crypto80211.PTK(s.pmk(), s.bssid, s.Addr, hs.anonce[:], hs.snonce[:])
		s.hs = hs
		m2 := &crypto80211.EAPOLKey{MsgNum: 2, ReplayCounter: k.ReplayCounter, Nonce: hs.snonce}
		m2.Sign(crypto80211.KCKFromPTK(hs.ptk))
		s.sendEAPOL(s.bssid, m2)
	case 3:
		hs := s.hs
		if hs == nil || k.ReplayCounter <= hs.replay {
			s.Stats.RxDiscarded++
			return
		}
		if !k.Verify(crypto80211.KCKFromPTK(hs.ptk)) {
			// Forged M3: no PMK, no valid MIC.
			s.Stats.RxDiscarded++
			return
		}
		hs.replay = k.ReplayCounter
		m4 := &crypto80211.EAPOLKey{MsgNum: 4, ReplayCounter: k.ReplayCounter}
		m4.Sign(crypto80211.KCKFromPTK(hs.ptk))
		s.sendEAPOL(s.bssid, m4)
		// Install the temporal key and complete the join.
		if sess, err := crypto80211.NewSession(crypto80211.TKFromPTK(hs.ptk)); err == nil {
			s.session = sess
			s.finishAssoc(true)
		}
	}
}

// apEAPOL handles M2 and M4.
func (s *Station) apEAPOL(from dot11.MAC, k *crypto80211.EAPOLKey) {
	p := s.clients[from]
	if p == nil || p.hs == nil {
		return
	}
	hs := p.hs
	switch k.MsgNum {
	case 2:
		if k.ReplayCounter != hs.replay {
			s.Stats.RxDiscarded++
			return
		}
		hs.snonce = k.Nonce
		hs.ptk = crypto80211.PTK(s.pmk(), s.Addr, from, hs.anonce[:], hs.snonce[:])
		if !k.Verify(crypto80211.KCKFromPTK(hs.ptk)) {
			// Wrong PMK (or a forgery): abort the handshake.
			s.Stats.RxDiscarded++
			hs.ptk = nil
			return
		}
		hs.replay++
		m3 := &crypto80211.EAPOLKey{MsgNum: 3, ReplayCounter: hs.replay, Nonce: hs.anonce}
		m3.Sign(crypto80211.KCKFromPTK(hs.ptk))
		s.sendEAPOL(from, m3)
	case 4:
		if hs.ptk == nil || k.ReplayCounter != hs.replay ||
			!k.Verify(crypto80211.KCKFromPTK(hs.ptk)) {
			s.Stats.RxDiscarded++
			return
		}
		if sess, err := crypto80211.NewSession(crypto80211.TKFromPTK(hs.ptk)); err == nil {
			p.session = sess
		}
		p.hs = nil
	}
}
