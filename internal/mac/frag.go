package mac

import (
	"politewifi/internal/dot11"
	"politewifi/internal/radio"
)

// MSDU fragmentation (802.11-2016 §10.4): payloads above the
// fragmentation threshold are split into MPDUs that share a sequence
// number and count up the fragment field, each acknowledged
// individually, with More Fragments set on all but the last. The
// receiver reassembles in order and delivers the original payload.
// Under CCMP each fragment is protected separately (its own PN).

// SetFragmentationThreshold enables fragmentation for payloads longer
// than n bytes (0 disables). Typical real-world values are 256–2346.
func (s *Station) SetFragmentationThreshold(n int) { s.fragThreshold = n }

// fragmentPayload splits a payload at the threshold.
func fragmentPayload(payload []byte, threshold int) [][]byte {
	if threshold <= 0 || len(payload) <= threshold {
		return [][]byte{payload}
	}
	var out [][]byte
	for len(payload) > 0 {
		n := threshold
		if n > len(payload) {
			n = len(payload)
		}
		out = append(out, payload[:n])
		payload = payload[n:]
	}
	return out
}

// sendFragments queues the fragments of one MSDU: same sequence
// number, ascending fragment numbers, MoreFrag on all but the last.
func (s *Station) sendFragments(to dot11.MAC, payload []byte) error {
	frags := fragmentPayload(payload, s.fragThreshold)
	seq := s.nextSeq()
	for i, part := range frags {
		d := &dot11.Data{
			Header: dot11.Header{
				Addr2: s.Addr,
				Seq:   dot11.SequenceControl{Number: seq, Fragment: uint8(i)},
			},
			Payload: append([]byte(nil), part...),
		}
		d.FC.MoreFrag = i < len(frags)-1
		switch s.Role {
		case RoleClient:
			d.FC.ToDS = true
			d.Addr1 = s.bssid
			d.Addr3 = to
			if s.session != nil {
				if err := s.session.Encrypt(d); err != nil {
					return err
				}
			}
		case RoleAP:
			d.FC.FromDS = true
			d.Addr1 = to
			d.Addr3 = s.Addr
			if sess := s.sessionFor(to); sess != nil {
				if err := sess.Encrypt(d); err != nil {
					return err
				}
			}
		}
		j := s.newTxJob(d, true, s.DataRateFor(d.Addr1))
		j.seqSet = true
		s.enqueue(j)
	}
	return nil
}

// reasmState is a per-transmitter reassembly buffer (one MSDU at a
// time, as the standard requires).
type reasmState struct {
	seq      uint16
	nextFrag uint8
	buf      []byte
}

// handleFragment consumes a decrypted fragment; it returns the
// completed MSDU payload when the last fragment lands, or nil while
// the sequence is still open. Out-of-order or stale fragments reset
// the buffer (the standard discards on any gap).
func (s *Station) handleFragment(d *dot11.Data, rx radio.Reception) []byte {
	st := s.reasm[d.Addr2]
	if d.Seq.Fragment == 0 {
		st = &reasmState{seq: d.Seq.Number, buf: append([]byte(nil), d.Payload...), nextFrag: 1}
		s.reasm[d.Addr2] = st
		if !d.FC.MoreFrag {
			delete(s.reasm, d.Addr2)
			return st.buf
		}
		return nil
	}
	if st == nil || st.seq != d.Seq.Number || st.nextFrag != d.Seq.Fragment {
		// Gap or stale fragment: discard the whole MSDU.
		delete(s.reasm, d.Addr2)
		s.Stats.RxDiscarded++
		return nil
	}
	st.buf = append(st.buf, d.Payload...)
	st.nextFrag++
	if d.FC.MoreFrag {
		return nil
	}
	delete(s.reasm, d.Addr2)
	return st.buf
}
