package mac

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

// TestNAVFromOverheardRTS: a station that overhears an RTS not
// addressed to it must defer its own transmissions for the advertised
// duration.
func TestNAVFromOverheardRTS(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)

	// Attacker reserves 20 ms addressed to a third party.
	other := dot11.MustMAC("00:00:5e:00:53:07")
	rts := &dot11.RTS{RA: other, TA: fakeAddr, Duration: 20000}
	n.inject(t, rts, phy.Rate24)
	n.sched.RunFor(2 * eventsim.Millisecond)

	if !n.client.NAVBusy() {
		t.Fatal("client NAV not set by overheard RTS")
	}
	if n.client.Stats.NAVUpdates == 0 {
		t.Fatal("NAVUpdates not counted")
	}
	// The client's transmission waits out the NAV.
	acksBefore := n.client.Stats.AcksReceived
	if err := n.client.SendData(apAddr, []byte("deferred")); err != nil {
		t.Fatal(err)
	}
	n.sched.RunFor(5 * eventsim.Millisecond)
	if n.client.Stats.AcksReceived != acksBefore {
		t.Fatal("data frame transmitted inside the NAV window")
	}
	if n.client.Stats.NAVDefers == 0 {
		t.Fatal("NAVDefers not counted")
	}
	// After the NAV expires the frame goes through.
	n.sched.RunFor(30 * eventsim.Millisecond)
	if n.client.Stats.AcksReceived == acksBefore {
		t.Fatal("data frame never sent after NAV expiry")
	}
}

// TestNAVDoesNotBlockAcks: SIFS responses bypass the NAV, so a jammed
// victim still ACKs fake frames — Polite WiFi survives virtual
// jamming.
func TestNAVDoesNotBlockAcks(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	n.captured = nil

	// Reserve the channel, then immediately probe.
	other := dot11.MustMAC("00:00:5e:00:53:07")
	n.inject(t, &dot11.RTS{RA: other, TA: fakeAddr, Duration: 30000}, phy.Rate24)
	n.sched.RunFor(eventsim.Millisecond)
	if !n.client.NAVBusy() {
		t.Fatal("NAV not armed")
	}
	n.inject(t, dot11.NewNullFrame(clientAddr, fakeAddr, fakeAddr, 9), phy.Rate24)
	n.sched.RunFor(2 * eventsim.Millisecond)
	if n.acksTo(fakeAddr) != 1 {
		t.Fatal("NAV suppressed the polite ACK — it must not")
	}
}

// TestNAVIgnoresZeroDuration: frames with Duration 0 leave the NAV
// untouched.
func TestNAVIgnoresZeroDuration(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	before := n.client.Stats.NAVUpdates
	n.inject(t, dot11.NewNullFrame(apAddr, fakeAddr, fakeAddr, 3), phy.Rate24)
	n.sched.RunFor(2 * eventsim.Millisecond)
	if n.client.Stats.NAVUpdates != before {
		t.Fatal("zero-duration frame extended the NAV")
	}
}

// TestNAVThroughputCollapse quantifies the virtual-jamming extension:
// goodput with the channel reserved drops to (near) zero.
func TestNAVThroughputCollapse(t *testing.T) {
	measure := func(jam bool) uint64 {
		n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
		n.associate(t)
		if jam {
			// Refresh a max-duration reservation every ~29 ms.
			var fire func()
			fire = func() {
				wire, _ := dot11.Serialize(&dot11.RTS{
					RA: dot11.MustMAC("00:00:5e:00:53:ff"), TA: fakeAddr, Duration: 32767,
				})
				if !n.attacker.Transmitting() {
					n.attacker.Transmit(wire, phy.Rate24)
				}
				n.sched.After(29*eventsim.Millisecond, fire)
			}
			fire()
		}
		acksBefore := n.client.Stats.AcksReceived
		ticker := n.sched.Every(10*eventsim.Millisecond, func() {
			n.client.SendData(apAddr, []byte("payload"))
		})
		n.sched.RunFor(eventsim.Second)
		ticker.Stop()
		return n.client.Stats.AcksReceived - acksBefore
	}
	clean := measure(false)
	jammed := measure(true)
	if clean < 50 {
		t.Fatalf("clean goodput = %d frames, want ~100", clean)
	}
	if jammed > clean/10 {
		t.Fatalf("jammed goodput = %d vs clean %d — NAV jamming ineffective", jammed, clean)
	}
}
