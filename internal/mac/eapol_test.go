package mac

import (
	"bytes"
	"testing"

	"politewifi/internal/crypto80211"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// TestHandshakeFramesOnAir: associating to an RSN network puts
// exactly four EAPOL-Key messages on the air, in order, and the
// resulting sessions interoperate.
func TestHandshakeFramesOnAir(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)

	var msgs []uint8
	for _, f := range n.captured {
		d, ok := f.(*dot11.Data)
		if !ok || !crypto80211.IsEAPOL(d.Payload) {
			continue
		}
		k, err := crypto80211.ParseEAPOLKey(d.Payload)
		if err != nil {
			t.Fatalf("malformed EAPOL on air: %v", err)
		}
		msgs = append(msgs, k.MsgNum)
	}
	want := []uint8{1, 2, 3, 4}
	if len(msgs) != 4 {
		t.Fatalf("EAPOL messages on air = %v, want %v", msgs, want)
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Fatalf("EAPOL order = %v", msgs)
		}
	}
	// Keys installed on both sides and interoperable (exercised by
	// the encrypted data flow).
	if n.client.Session() == nil {
		t.Fatal("client session missing after 4-way handshake")
	}
	var delivered []byte
	n.ap.OnDeliver = func(f dot11.Frame, rx radio.Reception) {
		if d, ok := f.(*dot11.Data); ok {
			delivered = d.Payload
		}
	}
	n.client.SendData(apAddr, []byte("post-handshake secret"))
	n.sched.RunFor(50 * eventsim.Millisecond)
	if string(delivered) != "post-handshake secret" {
		t.Fatalf("delivered = %q", delivered)
	}
}

// TestHandshakeNonceFreshness: two separate associations derive
// different temporal keys (nonces are drawn fresh).
func TestHandshakeNonceFreshness(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	n.associate(t)
	tk1 := n.client.Session().TK()

	// Kick the client and let it rejoin.
	n.ap.sendDeauth(clientAddr, dot11.ReasonDeauthLeaving)
	n.sched.RunFor(100 * eventsim.Millisecond)
	if n.client.Associated() {
		t.Fatal("client still associated after AP deauth")
	}
	ok := false
	n.client.Associate(apAddr, func(v bool) { ok = v })
	n.sched.RunFor(400 * eventsim.Millisecond)
	if !ok {
		t.Fatal("re-association failed")
	}
	tk2 := n.client.Session().TK()
	if bytes.Equal(tk1, tk2) {
		t.Fatal("temporal key reused across associations")
	}
}

// TestHandshakeWrongPassphraseFails: a client configured with the
// wrong passphrase completes 802.11 auth/assoc but its M2 MIC fails
// at the AP, so no keys are ever installed.
func TestHandshakeWrongPassphraseFails(t *testing.T) {
	m := quietMedium()
	rng := eventsim.NewRNG(42)
	ap := New(m, rng, Config{
		Name: "ap", Addr: apAddr, Role: RoleAP, Profile: ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "the right passphrase",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	cl := New(m, rng, Config{
		Name: "client", Addr: clientAddr, Role: RoleClient, Profile: ProfileGenericClient,
		SSID: "HomeNet", Passphrase: "WRONG passphrase",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	result := -1
	cl.Associate(apAddr, func(v bool) {
		if v {
			result = 1
		} else {
			result = 0
		}
	})
	m.Sched.RunFor(500 * eventsim.Millisecond)
	if result != 0 {
		t.Fatalf("association result = %d, want failure (0)", result)
	}
	if cl.Session() != nil {
		t.Fatal("client installed a session with the wrong PMK")
	}
	if len(ap.AssociatedClients()) == 1 {
		// 802.11-level association may exist, but no keys do.
		if p := ap.clients[clientAddr]; p != nil && p.session != nil {
			t.Fatal("AP installed a session for a wrong-PMK client")
		}
	}
	if ap.Stats.RxDiscarded == 0 {
		t.Fatal("AP never rejected the bad M2 MIC")
	}
}

// TestHandshakeForgedM3Rejected: an attacker injecting a fake M3
// (random MIC) cannot trick the client into installing keys.
func TestHandshakeForgedM3Rejected(t *testing.T) {
	n := newTestNet(t, ProfileGenericAP, ProfileGenericClient)
	// Start a join but pause after M2 by stopping the AP's reply: we
	// instead race a forged M3 in from the attacker before the real
	// one. Simplest deterministic variant: complete the handshake,
	// then send a forged M3 with a higher replay counter — the client
	// must reject it (bad MIC) and keep its session.
	n.associate(t)
	goodTK := n.client.Session().TK()

	forged := &crypto80211.EAPOLKey{MsgNum: 3, ReplayCounter: 99}
	forged.Sign(bytes.Repeat([]byte{0xAA}, 16)) // attacker has no KCK
	d := &dot11.Data{
		Header: dot11.Header{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: clientAddr, Addr2: apAddr, Addr3: apAddr,
			Seq: dot11.SequenceControl{Number: 999},
		},
		Payload: forged.Marshal(),
	}
	n.inject(t, d, phy.Rate24)
	n.sched.RunFor(50 * eventsim.Millisecond)

	if !bytes.Equal(n.client.Session().TK(), goodTK) {
		t.Fatal("forged M3 changed the installed key")
	}
	if n.client.Stats.RxDiscarded == 0 {
		t.Fatal("forged M3 not counted as discarded")
	}
}

// TestEAPOLParseErrors covers the codec edges.
func TestEAPOLParseErrors(t *testing.T) {
	if _, err := crypto80211.ParseEAPOLKey([]byte{0x88, 0x8e, 1}); err == nil {
		t.Fatal("short EAPOL parsed")
	}
	k := &crypto80211.EAPOLKey{MsgNum: 5}
	if _, err := crypto80211.ParseEAPOLKey(k.Marshal()); err == nil {
		t.Fatal("message number 5 accepted")
	}
	if crypto80211.IsEAPOL([]byte{0x01}) {
		t.Fatal("short payload misdetected as EAPOL")
	}
	good := &crypto80211.EAPOLKey{MsgNum: 2, ReplayCounter: 7}
	good.Sign([]byte("0123456789abcdef"))
	parsed, err := crypto80211.ParseEAPOLKey(good.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Verify([]byte("0123456789abcdef")) {
		t.Fatal("round-tripped MIC does not verify")
	}
	if parsed.Verify([]byte("fedcba9876543210")) {
		t.Fatal("MIC verified under the wrong KCK")
	}
}
