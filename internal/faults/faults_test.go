package faults

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

func TestParseSpec(t *testing.T) {
	c, err := ParseSpec("loss=0.3,ack=0.5,jam=0.2,jam-period=100ms,deaf=0.25,deaf-period=200ms")
	if err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() || !c.geEnabled() {
		t.Fatal("parsed spec should enable faults")
	}
	if c.ACKLoss != 0.5 || c.JamDuty != 0.2 || c.DeafDuty != 0.25 {
		t.Fatalf("parsed config = %+v", c)
	}
	if c.JamPeriod != 100*eventsim.Millisecond || c.DeafPeriod != 200*eventsim.Millisecond {
		t.Fatalf("parsed periods = %s / %s", c.JamPeriod, c.DeafPeriod)
	}
	// The loss key expands to the BurstyLoss preset.
	want := BurstyLoss(0.3)
	if c.PGoodBad != want.PGoodBad || c.PBadGood != want.PBadGood || c.LossBad != want.LossBad {
		t.Fatalf("loss=0.3 chain = %+v, want %+v", c, want)
	}

	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec = %+v, %v", c, err)
	}
	for _, bad := range []string{"loss", "loss=x", "loss=-1", "jam-period=0s", "bogus=1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

// payload is a wire frame that is not an ACK/CTS control response.
var payload = []byte{0x48, 0x01, 0, 0} // null data frame FC

func TestBurstyLossStationaryRate(t *testing.T) {
	for _, rate := range []float64{0.1, 0.3, 0.5} {
		in := New(eventsim.NewRNG(42), BurstyLoss(rate))
		const n = 200_000
		drops := 0
		for i := 0; i < n; i++ {
			if in.CorruptRx(nil, nil, payload, eventsim.Time(i)) {
				drops++
			}
		}
		got := float64(drops) / n
		if got < rate-0.02 || got > rate+0.02 {
			t.Errorf("BurstyLoss(%.1f): empirical rate %.3f", rate, got)
		}
	}
	// rate ≥ 1 pins the chain in Bad: total, deterministic loss.
	in := New(eventsim.NewRNG(1), BurstyLoss(1))
	for i := 0; i < 100; i++ {
		if !in.CorruptRx(nil, nil, payload, eventsim.Time(i)) {
			t.Fatal("BurstyLoss(1) let a delivery through")
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	cfg := BurstyLoss(0.25)
	cfg.ACKLoss = 0.4
	a := New(eventsim.NewRNG(7), cfg)
	b := New(eventsim.NewRNG(7), cfg)
	ackWire, err := dot11.Serialize(&dot11.Ack{RA: dot11.MustMAC("aa:bb:bb:bb:bb:bb")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		data := payload
		if i%3 == 0 {
			data = ackWire
		}
		now := eventsim.Time(i) * eventsim.Microsecond
		if a.CorruptRx(nil, nil, data, now) != b.CorruptRx(nil, nil, data, now) {
			t.Fatalf("same-seed injectors diverged at delivery %d", i)
		}
	}
	if a.LossDrops != b.LossDrops || a.ACKDrops != b.ACKDrops {
		t.Fatalf("stats diverged: %d/%d vs %d/%d", a.LossDrops, a.ACKDrops, b.LossDrops, b.ACKDrops)
	}
}

func TestACKOnlyDrop(t *testing.T) {
	in := New(eventsim.NewRNG(3), Config{ACKLoss: 1})
	ra := dot11.MustMAC("aa:bb:bb:bb:bb:bb")
	ackWire, _ := dot11.Serialize(&dot11.Ack{RA: ra})
	ctsWire, _ := dot11.Serialize(&dot11.CTS{RA: ra})
	if !in.CorruptRx(nil, nil, ackWire, 0) {
		t.Fatal("ACKLoss=1 must drop ACKs")
	}
	if !in.CorruptRx(nil, nil, ctsWire, 0) {
		t.Fatal("ACKLoss=1 must drop CTSs")
	}
	if in.CorruptRx(nil, nil, payload, 0) {
		t.Fatal("ACK-only loss must leave soliciting frames intact")
	}
	if in.ACKDrops != 2 || in.Consulted != 3 {
		t.Fatalf("stats = %d drops / %d consulted, want 2/3", in.ACKDrops, in.Consulted)
	}
}

func TestJamWindows(t *testing.T) {
	in := New(eventsim.NewRNG(1), Config{JamDuty: 0.5, JamPeriod: 100 * eventsim.Microsecond})
	inside := 37 * eventsim.Microsecond
	outside := 73 * eventsim.Microsecond
	if !in.NoiseAt(phy.Band2GHz, 6, inside) || in.NoiseAt(phy.Band2GHz, 6, outside) {
		t.Fatal("jam window placement wrong")
	}
	// Wideband: the other band sees the same noise.
	if !in.NoiseAt(phy.Band5GHz, 36, inside) {
		t.Fatal("jam noise should be wideband")
	}
	if !in.CorruptRx(nil, nil, payload, inside) {
		t.Fatal("delivery inside a jam window must be corrupted")
	}
	if in.CorruptRx(nil, nil, payload, outside) {
		t.Fatal("delivery outside a jam window survived=false")
	}
	if in.JamDrops != 1 {
		t.Fatalf("JamDrops = %d, want 1", in.JamDrops)
	}
	// A jam-only injector never touches the RNG: window membership is
	// pure clock arithmetic, so the stream stays untouched for replay.
	if in.rng.Int63() != eventsim.NewRNG(1).Int63() {
		t.Fatal("jam-only injector advanced its RNG")
	}
}

func TestDeafness(t *testing.T) {
	in := New(eventsim.NewRNG(1), Config{DeafDuty: 1})
	victim := &radio.Radio{Name: "cl-aa:bb:cc:dd:ee:ff"}
	rig := &radio.Radio{Name: "attacker-aa:bb:bb:bb:bb:bb"}
	for _, now := range []eventsim.Time{0, 50 * eventsim.Millisecond, 3 * eventsim.Second} {
		if !in.CorruptRx(nil, victim, payload, now) {
			t.Fatalf("DeafDuty=1 victim heard a delivery at %s", now)
		}
		if in.CorruptRx(nil, rig, payload, now) {
			t.Fatal("the attacker's mains-powered rig must never doze")
		}
	}
	// Partial duty: the phase is a stable per-name hash, so the same
	// station is deaf at the same instants in every run.
	half := New(eventsim.NewRNG(1), Config{DeafDuty: 0.5, DeafPeriod: 100 * eventsim.Microsecond})
	again := New(eventsim.NewRNG(99), Config{DeafDuty: 0.5, DeafPeriod: 100 * eventsim.Microsecond})
	deaf := 0
	for i := 0; i < 1000; i++ {
		now := eventsim.Time(i) * eventsim.Microsecond
		a := half.CorruptRx(nil, victim, payload, now)
		b := again.CorruptRx(nil, victim, payload, now)
		if a != b {
			t.Fatal("deafness must not depend on the RNG seed")
		}
		if a {
			deaf++
		}
	}
	if deaf < 400 || deaf > 600 {
		t.Fatalf("deaf %d/1000 deliveries at 0.5 duty", deaf)
	}
}

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must be disabled")
	}
	for _, c := range []Config{
		{LossBad: 0.1}, {LossGood: 0.1}, {ACKLoss: 0.1}, {JamDuty: 0.1}, {DeafDuty: 0.1},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v should be enabled", c)
		}
	}
}
