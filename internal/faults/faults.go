// Package faults injects deterministic channel impairments into a
// radio.Medium, so the probe pipeline's retry, backoff and verdict
// machinery can be exercised against the hostile RF the paper's real
// wardrive faced instead of a perfectly polite simulated air.
//
// Four impairments compose, each independently configurable:
//
//   - Gilbert–Elliott bursty loss: a two-state Markov chain (Good/Bad)
//     advanced once per delivery, with a per-state loss probability.
//     Real channels lose frames in bursts, not i.i.d. coins.
//   - Scheduled interference windows: periodic wideband noise bursts
//     mirroring core.VirtualJammer's maximum-NAV reservation cadence
//     (32.767 ms per burst). During a window every delivery is
//     corrupted and CCA reports the channel busy.
//   - Per-station duty-cycled deafness: victims in deep power save
//     miss everything for a fixed fraction of each cycle. The phase is
//     a hash of the radio's name, so it is stable across runs and
//     worker counts. The attacker's capture dongle is mains powered
//     and exempt.
//   - ACK-only drop: control responses (ACK/CTS) are dropped with a
//     given probability while the soliciting frames get through — the
//     nastiest case for ACK attribution: the probe was delivered and
//     answered, but the verifier cannot see the answer.
//
// Every random decision comes from the injector's own seed-forked RNG,
// never from the medium's, so an enabled injector perturbs no other
// subsystem's stream and a disabled one draws nothing at all — runs
// with faults off stay bit-identical to runs without the package.
package faults

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
	"time"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/telemetry"
)

// jammerNAVUS mirrors core.VirtualJammer's maximum Duration field
// (32767 µs): each scheduled interference burst is one max-length NAV
// reservation worth of noise.
const jammerNAVUS = 32767

// defaultDeafPeriod is a typical power-save listen cycle: ten beacon
// intervals of 102.4 ms would be DTIM10; one is the shortest doze.
const defaultDeafPeriod = 102400 * eventsim.Microsecond

// Config parameterises an Injector. The zero value disables every
// impairment.
type Config struct {
	// Gilbert–Elliott chain: per-delivery transition probabilities and
	// per-state loss probabilities. The chain only runs when a loss
	// probability is non-zero; see BurstyLoss for a preset tuned to a
	// target mean loss rate.
	PGoodBad float64 // P(Good→Bad) per delivery
	PBadGood float64 // P(Bad→Good) per delivery
	LossGood float64 // loss probability while Good
	LossBad  float64 // loss probability while Bad

	// ACKLoss drops control responses (ACK and CTS) with this
	// probability while leaving the frames that solicited them intact.
	ACKLoss float64

	// JamDuty is the fraction of time scheduled interference occupies
	// the channel. Bursts of JamDuty·JamPeriod open each period; when
	// JamPeriod is zero it defaults so each burst lasts one maximum
	// NAV reservation (32.767 ms), core.VirtualJammer's profile.
	JamDuty   float64
	JamPeriod eventsim.Time

	// DeafDuty is the fraction of each DeafPeriod a victim radio hears
	// nothing (deep power save). DeafPeriod defaults to one 102.4 ms
	// listen cycle.
	DeafDuty   float64
	DeafPeriod eventsim.Time
}

// Enabled reports whether any impairment is configured.
func (c Config) Enabled() bool {
	return c.geEnabled() || c.ACKLoss > 0 || c.JamDuty > 0 || c.DeafDuty > 0
}

func (c Config) geEnabled() bool { return c.LossGood > 0 || c.LossBad > 0 }

// BurstyLoss returns a Gilbert–Elliott configuration whose stationary
// loss rate equals rate, losing everything in the Bad state and
// nothing in the Good state, with a mean burst length of four
// deliveries. rate ≥ 1 pins the chain in Bad (total loss).
func BurstyLoss(rate float64) Config {
	if rate <= 0 {
		return Config{}
	}
	if rate >= 1 {
		return Config{PGoodBad: 1, LossBad: 1}
	}
	// Stationary P(Bad) = pGB/(pGB+pBG) = rate, with mean burst
	// length 1/pBG = 4 deliveries.
	const pBG = 0.25
	return Config{
		PGoodBad: rate * pBG / (1 - rate),
		PBadGood: pBG,
		LossBad:  1,
	}
}

// ParseSpec parses a CLI fault specification of comma-separated
// key=value pairs, e.g. "loss=0.3,ack=0.5,jam=0.2,deaf=0.25".
//
//	loss=F         Gilbert–Elliott bursty loss, mean rate F (BurstyLoss)
//	ack=F          drop ACK/CTS responses with probability F
//	jam=F          scheduled interference with duty cycle F
//	jam-period=D   interference period (Go duration, e.g. 100ms)
//	deaf=F         per-station deafness with duty cycle F
//	deaf-period=D  deafness period (Go duration)
//
// An empty spec returns the zero (disabled) Config.
func ParseSpec(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return c, fmt.Errorf("faults: %q is not key=value", part)
		}
		frac := func() (float64, error) {
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f < 0 {
				return 0, fmt.Errorf("faults: %s=%q: want a non-negative number", key, val)
			}
			return f, nil
		}
		dur := func() (eventsim.Time, error) {
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return 0, fmt.Errorf("faults: %s=%q: want a positive duration", key, val)
			}
			return eventsim.Time(d.Nanoseconds()), nil
		}
		var err error
		switch key {
		case "loss":
			var rate float64
			if rate, err = frac(); err == nil {
				ge := BurstyLoss(rate)
				c.PGoodBad, c.PBadGood = ge.PGoodBad, ge.PBadGood
				c.LossGood, c.LossBad = ge.LossGood, ge.LossBad
			}
		case "ack":
			c.ACKLoss, err = frac()
		case "jam":
			c.JamDuty, err = frac()
		case "jam-period":
			c.JamPeriod, err = dur()
		case "deaf":
			c.DeafDuty, err = frac()
		case "deaf-period":
			c.DeafPeriod, err = dur()
		default:
			err = fmt.Errorf("faults: unknown key %q (want loss|ack|jam|jam-period|deaf|deaf-period)", key)
		}
		if err != nil {
			return c, err
		}
	}
	return c, nil
}

// Injector implements radio.FaultInjector. Create one per medium with
// a forked RNG; it is bound to scheduler context like the medium
// itself and is not safe for concurrent use.
type Injector struct {
	cfg Config
	rng *eventsim.RNG

	bad bool // Gilbert–Elliott state

	jamPeriod, jamBurst  eventsim.Time
	deafPeriod, deafSpan eventsim.Time
	deafPhase            map[string]eventsim.Time

	// Stats, exported for assertions and telemetry.
	Consulted uint64 // deliveries offered to the injector
	LossDrops uint64 // Gilbert–Elliott losses
	ACKDrops  uint64 // dropped ACK/CTS responses
	JamDrops  uint64 // deliveries inside interference windows
	DeafDrops uint64 // deliveries to dozing victims

	lastDrop string // kind of the most recent CorruptRx=true, for frame logs
}

// Drop kinds reported by LastDropKind and accepted by ReplayConsult,
// matching the faults.drops.* telemetry suffixes.
const (
	DropLoss = "loss"
	DropACK  = "ack"
	DropJam  = "jam"
	DropDeaf = "deaf"
)

// New builds an injector from cfg, drawing every coin from rng (fork
// it from the simulation's per-medium stream so the injector gets its
// own deterministic sequence).
func New(rng *eventsim.RNG, cfg Config) *Injector {
	in := &Injector{cfg: cfg, rng: rng, deafPhase: make(map[string]eventsim.Time)}
	if cfg.JamDuty > 0 {
		in.jamPeriod = cfg.JamPeriod
		if in.jamPeriod <= 0 {
			in.jamPeriod = eventsim.Time(float64(jammerNAVUS*eventsim.Microsecond) / cfg.JamDuty)
		}
		in.jamBurst = eventsim.Time(cfg.JamDuty * float64(in.jamPeriod))
		if in.jamBurst > in.jamPeriod {
			in.jamBurst = in.jamPeriod
		}
	}
	if cfg.DeafDuty > 0 {
		in.deafPeriod = cfg.DeafPeriod
		if in.deafPeriod <= 0 {
			in.deafPeriod = defaultDeafPeriod
		}
		in.deafSpan = eventsim.Time(cfg.DeafDuty * float64(in.deafPeriod))
		if in.deafSpan > in.deafPeriod {
			in.deafSpan = in.deafPeriod
		}
	}
	return in
}

// CorruptRx implements radio.FaultInjector. Impairments are checked
// in a fixed order (jam, deafness, ACK drop, bursty loss) so the RNG
// draw sequence is a deterministic function of the delivery sequence.
func (in *Injector) CorruptRx(src, dst *radio.Radio, data []byte, now eventsim.Time) bool {
	in.Consulted++
	if in.jamBurst > 0 && in.noisy(now) {
		in.JamDrops++
		in.lastDrop = DropJam
		return true
	}
	if in.deafSpan > 0 && in.deafAt(dst, now) {
		in.DeafDrops++
		in.lastDrop = DropDeaf
		return true
	}
	if in.cfg.ACKLoss > 0 && isControlResponse(data) && in.rng.Coin(in.cfg.ACKLoss) {
		in.ACKDrops++
		in.lastDrop = DropACK
		return true
	}
	if in.cfg.geEnabled() && in.geDrop() {
		in.LossDrops++
		in.lastDrop = DropLoss
		return true
	}
	return false
}

// LastDropKind implements radio.FaultReplayer: it names the gate the
// most recent CorruptRx=true tripped, so the frame log can attribute
// the drop.
func (in *Injector) LastDropKind() string { return in.lastDrop }

// ReplayConsult implements radio.FaultReplayer: it restores one
// recorded consultation (and its drop, if dropKind is non-empty) to
// the statistics without spending any RNG draws, so a replayed run's
// faults.* telemetry matches the recorded one.
func (in *Injector) ReplayConsult(dropKind string) {
	in.Consulted++
	switch dropKind {
	case DropLoss:
		in.LossDrops++
	case DropACK:
		in.ACKDrops++
	case DropJam:
		in.JamDrops++
	case DropDeaf:
		in.DeafDrops++
	}
}

// NoiseAt implements radio.FaultInjector: the modelled jammer is
// wideband, so interference windows raise CCA on every channel.
func (in *Injector) NoiseAt(band phy.Band, channel int, now eventsim.Time) bool {
	return in.jamBurst > 0 && in.noisy(now)
}

func (in *Injector) noisy(now eventsim.Time) bool {
	return now%in.jamPeriod < in.jamBurst
}

// deafAt reports whether dst is dozing at now. Phase comes from a
// hash of the radio's name: stable per station, independent of
// delivery order, and free of RNG draws.
func (in *Injector) deafAt(dst *radio.Radio, now eventsim.Time) bool {
	if strings.HasPrefix(dst.Name, "attacker-") {
		return false // the capture rig is mains powered
	}
	phase, ok := in.deafPhase[dst.Name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(dst.Name))
		phase = eventsim.Time(h.Sum64() % uint64(in.deafPeriod))
		in.deafPhase[dst.Name] = phase
	}
	return (now+phase)%in.deafPeriod < in.deafSpan
}

// geDrop advances the Gilbert–Elliott chain one delivery and flips
// the per-state loss coin.
func (in *Injector) geDrop() bool {
	if in.bad {
		if in.rng.Coin(in.cfg.PBadGood) {
			in.bad = false
		}
	} else if in.rng.Coin(in.cfg.PGoodBad) {
		in.bad = true
	}
	p := in.cfg.LossGood
	if in.bad {
		p = in.cfg.LossBad
	}
	return in.rng.Coin(p)
}

// isControlResponse reports whether a wire frame is an ACK or CTS —
// the solicited control responses the ACK-only drop mode targets.
func isControlResponse(data []byte) bool {
	if len(data) < 2 {
		return false
	}
	fc := dot11.ParseFrameControl(uint16(data[0]) | uint16(data[1])<<8)
	return fc.Type == dot11.TypeControl &&
		(fc.Subtype == dot11.SubtypeACK || fc.Subtype == dot11.SubtypeCTS)
}

// InstrumentInto registers the injector's drop counters as sampled
// faults.* metrics. Register only on runs with faults enabled, so a
// pristine run's telemetry report carries no faults family at all.
func (in *Injector) InstrumentInto(reg *telemetry.Registry) {
	reg.CounterFunc("faults.consulted", "deliveries offered to the fault injector", func() uint64 { return in.Consulted })
	reg.CounterFunc("faults.drops.loss", "deliveries lost to Gilbert–Elliott bursts", func() uint64 { return in.LossDrops })
	reg.CounterFunc("faults.drops.ack", "ACK/CTS responses dropped by ACK-only loss", func() uint64 { return in.ACKDrops })
	reg.CounterFunc("faults.drops.jam", "deliveries lost to interference windows", func() uint64 { return in.JamDrops })
	reg.CounterFunc("faults.drops.deaf", "deliveries missed by dozing victims", func() uint64 { return in.DeafDrops })
}
