package radio

import (
	"testing"
	"testing/quick"

	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

func newTestMedium(cfg Config) *Medium {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(1)
	return NewMedium(sched, rng, cfg)
}

// quiet config: no shadowing or fading, free-space loss, so delivery
// is deterministic.
func quietConfig() Config {
	return Config{PathLoss: LogDistance{Exponent: 2.0}, CaptureMarginDB: 10}
}

func TestDistance(t *testing.T) {
	a := Position{0, 0, 0}
	b := Position{3, 4, 0}
	if d := a.DistanceTo(b); d != 5 {
		t.Fatalf("distance = %v, want 5", d)
	}
}

func TestLogDistanceLoss(t *testing.T) {
	m := LogDistance{Exponent: 2.0}
	// Free-space at 1 m, 2437 MHz: 20log10(2437)-27.55 ≈ 40.2 dB.
	l1 := m.LossDB(Position{}, Position{X: 1}, 2437)
	if l1 < 39 || l1 < 0 || l1 > 42 {
		t.Fatalf("loss at 1m = %v, want ~40", l1)
	}
	// Doubling distance with n=2 adds ~6 dB.
	l2 := m.LossDB(Position{}, Position{X: 2}, 2437)
	if d := l2 - l1; d < 5.9 || d > 6.1 {
		t.Fatalf("doubling added %v dB, want ~6", d)
	}
	// Sub-meter clamps to 1 m.
	l0 := m.LossDB(Position{}, Position{X: 0.1}, 2437)
	if l0 != l1 {
		t.Fatalf("sub-meter loss %v != 1m loss %v", l0, l1)
	}
	// 5 GHz has more loss than 2.4 GHz.
	if m.LossDB(Position{}, Position{X: 10}, 5180) <= m.LossDB(Position{}, Position{X: 10}, 2437) {
		t.Fatal("5 GHz should attenuate more")
	}
}

func TestDeliveryAtCloseRange(t *testing.T) {
	m := newTestMedium(quietConfig())
	tx := m.NewRadio("tx", Position{0, 0, 0}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{5, 0, 0}, phy.Band2GHz, 6)
	var got []Reception
	rx.SetHandler(func(r Reception) { got = append(got, r) })

	frame := make([]byte, 100)
	end, err := tx.Transmit(frame, phy.Rate24)
	if err != nil {
		t.Fatal(err)
	}
	if end != phy.Airtime(phy.Rate24, 100) {
		t.Fatalf("end = %v, want airtime", end)
	}
	m.Sched.Run()
	if len(got) != 1 {
		t.Fatalf("receptions = %d, want 1", len(got))
	}
	r := got[0]
	if !r.FCSOK {
		t.Fatal("frame should be clean at 5 m")
	}
	if len(r.Data) != 100 {
		t.Fatalf("data len = %d", len(r.Data))
	}
	if r.RSSIDBm > 0 || r.RSSIDBm < -80 {
		t.Fatalf("implausible RSSI %v", r.RSSIDBm)
	}
	if r.End <= r.Start {
		t.Fatal("reception interval empty")
	}
}

func TestNoDeliveryOutOfRange(t *testing.T) {
	m := newTestMedium(Config{PathLoss: LogDistance{Exponent: 3.5}})
	tx := m.NewRadio("tx", Position{0, 0, 0}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{10000, 0, 0}, phy.Band2GHz, 6)
	count := 0
	rx.SetHandler(func(Reception) { count++ })
	tx.Transmit(make([]byte, 50), phy.Rate24)
	m.Sched.Run()
	if count != 0 {
		t.Fatal("frame delivered at 10 km")
	}
}

func TestChannelIsolation(t *testing.T) {
	m := newTestMedium(quietConfig())
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 1)
	rx6 := m.NewRadio("rx6", Position{X: 2}, phy.Band2GHz, 6)
	rx5g := m.NewRadio("rx5g", Position{X: 2}, phy.Band5GHz, 36)
	count := 0
	rx6.SetHandler(func(Reception) { count++ })
	rx5g.SetHandler(func(Reception) { count++ })
	tx.Transmit(make([]byte, 50), phy.Rate24)
	m.Sched.Run()
	if count != 0 {
		t.Fatal("cross-channel delivery")
	}
}

func TestSleepingRadioHearsNothing(t *testing.T) {
	m := newTestMedium(quietConfig())
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{X: 3}, phy.Band2GHz, 6)
	count := 0
	rx.SetHandler(func(Reception) { count++ })
	rx.Sleep()
	if !rx.Asleep() {
		t.Fatal("Asleep() = false")
	}
	tx.Transmit(make([]byte, 50), phy.Rate24)
	m.Sched.Run()
	if count != 0 {
		t.Fatal("sleeping radio received a frame")
	}
	rx.Wake()
	tx.Transmit(make([]byte, 50), phy.Rate24)
	m.Sched.Run()
	if count != 1 {
		t.Fatalf("awake radio receptions = %d, want 1", count)
	}
}

func TestTxBusy(t *testing.T) {
	m := newTestMedium(quietConfig())
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
	if _, err := tx.Transmit(make([]byte, 1000), phy.Rate6); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Transmit(make([]byte, 10), phy.Rate6); err != ErrTxBusy {
		t.Fatalf("second Transmit err = %v, want ErrTxBusy", err)
	}
	if !tx.Transmitting() {
		t.Fatal("Transmitting() = false mid-frame")
	}
	m.Sched.Run()
	if tx.Transmitting() {
		t.Fatal("Transmitting() = true after frame end")
	}
	if _, err := tx.Transmit(make([]byte, 10), phy.Rate6); err != nil {
		t.Fatalf("transmit after idle: %v", err)
	}
}

func TestCollisionBothLost(t *testing.T) {
	m := newTestMedium(quietConfig())
	a := m.NewRadio("a", Position{X: -5}, phy.Band2GHz, 6)
	b := m.NewRadio("b", Position{X: 5}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{}, phy.Band2GHz, 6) // equidistant
	var clean, dirty int
	rx.SetHandler(func(r Reception) {
		if r.FCSOK {
			clean++
		} else {
			dirty++
		}
	})
	// Overlapping equal-power transmissions: no capture possible.
	a.Transmit(make([]byte, 500), phy.Rate24)
	b.Transmit(make([]byte, 500), phy.Rate24)
	m.Sched.Run()
	if clean != 0 {
		t.Fatalf("clean receptions = %d, want 0 (collision)", clean)
	}
}

func TestCapture(t *testing.T) {
	m := newTestMedium(quietConfig())
	strong := m.NewRadio("strong", Position{X: 1}, phy.Band2GHz, 6)
	weak := m.NewRadio("weak", Position{X: 300}, phy.Band2GHz, 6)
	weak.SetTxPower(15)
	strong.SetTxPower(15)
	rx := m.NewRadio("rx", Position{}, phy.Band2GHz, 6)
	var clean int
	rx.SetHandler(func(r Reception) {
		if r.FCSOK {
			clean++
		}
	})
	// The strong frame starts first; the weak one overlaps but is far
	// below the capture margin, so the strong frame survives.
	strong.Transmit(make([]byte, 500), phy.Rate24)
	weak.Transmit(make([]byte, 500), phy.Rate24)
	m.Sched.Run()
	if clean != 1 {
		t.Fatalf("clean receptions = %d, want 1 (capture)", clean)
	}
}

func TestCaptureByStrongerLateFrame(t *testing.T) {
	m := newTestMedium(quietConfig())
	weak := m.NewRadio("weak", Position{X: 300}, phy.Band2GHz, 6)
	strong := m.NewRadio("strong", Position{X: 1}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{}, phy.Band2GHz, 6)
	var cleanFrom int
	rx.SetHandler(func(r Reception) {
		if r.FCSOK && len(r.Data) == 200 {
			cleanFrom++
		}
	})
	// Weak frame first, strong frame (distinguished by length 200)
	// arrives mid-reception and captures the receiver.
	weak.Transmit(make([]byte, 500), phy.Rate24)
	m.Sched.RunFor(10 * eventsim.Microsecond)
	strong.Transmit(make([]byte, 200), phy.Rate24)
	m.Sched.Run()
	if cleanFrom != 1 {
		t.Fatalf("strong late frame not captured (clean=%d)", cleanFrom)
	}
}

func TestCCABusy(t *testing.T) {
	m := newTestMedium(quietConfig())
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
	other := m.NewRadio("other", Position{X: 5}, phy.Band2GHz, 6)
	if other.CCABusy() {
		t.Fatal("CCA busy on silent medium")
	}
	tx.Transmit(make([]byte, 1500), phy.Rate6)
	m.Sched.RunFor(100 * eventsim.Microsecond)
	if !other.CCABusy() {
		t.Fatal("CCA idle during nearby transmission")
	}
	if !tx.CCABusy() {
		t.Fatal("own transmission should read busy")
	}
	m.Sched.Run()
	if other.CCABusy() {
		t.Fatal("CCA busy after medium cleared")
	}
}

func TestStateTransitions(t *testing.T) {
	m := newTestMedium(quietConfig())
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{X: 3}, phy.Band2GHz, 6)
	rx.SetHandler(func(Reception) {})
	var states []State
	rx.OnStateChange(func(old, new State, at eventsim.Time) { states = append(states, new) })
	tx.Transmit(make([]byte, 100), phy.Rate24)
	m.Sched.Run()
	if len(states) != 2 || states[0] != StateRX || states[1] != StateIdle {
		t.Fatalf("rx states = %v, want [rx idle]", states)
	}
	var txStates []State
	tx.OnStateChange(func(old, new State, at eventsim.Time) { txStates = append(txStates, new) })
	tx.Transmit(make([]byte, 100), phy.Rate24)
	m.Sched.Run()
	if len(txStates) != 2 || txStates[0] != StateTX || txStates[1] != StateIdle {
		t.Fatalf("tx states = %v, want [tx idle]", txStates)
	}
}

func TestInRangeAndRSSISymmetry(t *testing.T) {
	m := newTestMedium(DefaultConfig())
	a := m.NewRadio("a", Position{}, phy.Band2GHz, 6)
	b := m.NewRadio("b", Position{X: 20}, phy.Band2GHz, 6)
	if !m.InRange(a, b) || !m.InRange(b, a) {
		t.Fatal("20 m link should be in range")
	}
	// Shadowing is symmetric per link.
	if m.RSSIBetween(a, b) != m.RSSIBetween(b, a) {
		t.Fatal("per-link shadowing not symmetric")
	}
}

func TestFERLossAtLongRange(t *testing.T) {
	// At the edge of sensitivity the error coin must drop some frames.
	m := newTestMedium(Config{PathLoss: LogDistance{Exponent: 3.0}, FadingSigmaDB: 3})
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{X: 55}, phy.Band2GHz, 6)
	var clean, total int
	rx.SetHandler(func(r Reception) {
		total++
		if r.FCSOK {
			clean++
		}
	})
	for i := 0; i < 200; i++ {
		tx.Transmit(make([]byte, 1500), phy.Rate54) // fragile rate
		m.Sched.Run()
	}
	if clean == 200 {
		t.Fatalf("no frame errors at the edge of range (total=%d)", total)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		m := newTestMedium(DefaultConfig())
		tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
		rx := m.NewRadio("rx", Position{X: 30}, phy.Band2GHz, 6)
		var rssis []float64
		rx.SetHandler(func(r Reception) { rssis = append(rssis, r.RSSIDBm) })
		for i := 0; i < 20; i++ {
			tx.Transmit(make([]byte, 100), phy.Rate24)
			m.Sched.Run()
		}
		return rssis
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay diverged")
		}
	}
}

// Property: received power decreases with distance (no shadowing).
func TestMonotonePathLossProperty(t *testing.T) {
	f := func(d1, d2 uint8) bool {
		da, db := float64(d1)+1, float64(d2)+1
		if da > db {
			da, db = db, da
		}
		m := LogDistance{Exponent: 3.0}
		la := m.LossDB(Position{}, Position{X: da}, 2437)
		lb := m.LossDB(Position{}, Position{X: db}, 2437)
		return la <= lb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{StateSleep: "sleep", StateIdle: "idle", StateRX: "rx", StateTX: "tx"} {
		if s.String() != want {
			t.Fatalf("State(%d).String() = %q", s, s.String())
		}
	}
}

func BenchmarkTransmitDeliver(b *testing.B) {
	m := newTestMedium(DefaultConfig())
	tx := m.NewRadio("tx", Position{}, phy.Band2GHz, 6)
	rx := m.NewRadio("rx", Position{X: 10}, phy.Band2GHz, 6)
	rx.SetHandler(func(Reception) {})
	frame := make([]byte, 28)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx.Transmit(frame, phy.Rate24)
		m.Sched.Run()
	}
}

// TestHiddenTerminal: two transmitters out of range of each other but
// both audible at a middle receiver collide there — the scenario
// RTS/CTS exists to prevent, and the reason control frames can never
// be encrypted.
func TestHiddenTerminal(t *testing.T) {
	m := newTestMedium(Config{PathLoss: LogDistance{Exponent: 3.5}, CaptureMarginDB: 10})
	a := m.NewRadio("a", Position{X: -45}, phy.Band2GHz, 6)
	b := m.NewRadio("b", Position{X: 45}, phy.Band2GHz, 6)
	mid := m.NewRadio("mid", Position{}, phy.Band2GHz, 6)

	if m.InRange(a, b) {
		t.Fatal("terminals must be hidden from each other")
	}
	if !m.InRange(a, mid) || !m.InRange(b, mid) {
		t.Fatal("both terminals must reach the middle receiver")
	}
	// Neither transmitter senses the other.
	a.Transmit(make([]byte, 1000), phy.Rate6)
	m.Sched.RunFor(50 * eventsim.Microsecond)
	if b.CCABusy() {
		t.Fatal("hidden terminal sensed the other transmission")
	}
	var clean int
	mid.SetHandler(func(r Reception) {
		if r.FCSOK {
			clean++
		}
	})
	b.Transmit(make([]byte, 1000), phy.Rate6)
	m.Sched.Run()
	if clean != 0 {
		t.Fatalf("hidden-terminal collision delivered %d clean frames", clean)
	}
}
