// Package radio simulates a shared wireless medium: radios at
// physical positions, log-distance path loss with shadowing,
// propagation delay, frame error injection from the phy link curves,
// collision/capture behaviour, and carrier sensing.
//
// The medium is event-driven: Transmit schedules start-of-reception
// and end-of-reception events at every radio in range, and the frame
// is delivered to a radio's handler only if it survives the SNR coin
// and was not clobbered by an overlapping transmission.
package radio

import (
	"fmt"
	"math"
	"strconv"

	"politewifi/internal/arena"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/telemetry"
)

// SpeedOfLight in m/s, for propagation delay.
const speedOfLight = 299_792_458.0

// Position is a location in meters.
type Position struct {
	X, Y, Z float64
}

// DistanceTo returns the Euclidean distance to q in meters.
func (p Position) DistanceTo(q Position) float64 {
	dx, dy, dz := p.X-q.X, p.Y-q.Y, p.Z-q.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// String implements fmt.Stringer.
func (p Position) String() string {
	return fmt.Sprintf("(%.1f, %.1f, %.1f)", p.X, p.Y, p.Z)
}

// PathLossModel converts a TX→RX geometry to an attenuation in dB.
type PathLossModel interface {
	// LossDB returns the path loss between two positions at the given
	// carrier frequency in MHz.
	LossDB(from, to Position, freqMHz float64) float64
}

// LogDistance is the standard log-distance path loss model with a
// free-space intercept at 1 m.
type LogDistance struct {
	// Exponent is the path loss exponent: 2.0 free space, ~3.0
	// residential indoor, ~3.5 through walls.
	Exponent float64
}

// LossDB implements PathLossModel.
func (m LogDistance) LossDB(from, to Position, freqMHz float64) float64 {
	d := from.DistanceTo(to)
	if d < 1 {
		d = 1
	}
	// FSPL at 1 m: 20·log10(f_MHz) − 27.55.
	intercept := 20*math.Log10(freqMHz) - 27.55
	return intercept + 10*m.Exponent*math.Log10(d)
}

// Config parameterises a Medium.
type Config struct {
	PathLoss      PathLossModel
	ShadowSigmaDB float64 // per-link lognormal shadowing std dev
	FadingSigmaDB float64 // per-frame fast fading std dev
	// CaptureMarginDB: a frame survives a collision if it is this many
	// dB stronger than the interferer (preamble capture).
	CaptureMarginDB float64
}

// DefaultConfig returns the residential-indoor configuration used by
// the experiments.
func DefaultConfig() Config {
	return Config{
		PathLoss:        LogDistance{Exponent: 3.0},
		ShadowSigmaDB:   4.0,
		FadingSigmaDB:   2.0,
		CaptureMarginDB: 10.0,
	}
}

// Reception describes a frame arriving at a radio.
type Reception struct {
	Data    []byte // full frame including FCS
	Rate    phy.Rate
	RSSIDBm float64
	SNRDB   float64
	Start   eventsim.Time // when the first bit arrived
	End     eventsim.Time // when the last bit arrived
	// FCSOK reports whether the frame passed the error-coin; frames
	// that fail are still delivered so sniffers can count PHY errors,
	// but MAC stations must ignore them.
	FCSOK bool
	// Exchange is the probe-exchange trace ID the transmitter stamped
	// on this frame (0 when untraced). Responders propagate it onto
	// their reply via SetNextTxExchange so probe→response→verdict
	// renders as one causal tree.
	Exchange uint64
}

// Reception Start and End are local arrival times at the receiving
// radio (transmission time plus propagation delay) — what a real
// receiver can actually timestamp, and what time-of-flight ranging
// measures.

// State is a radio's RF state, exported so the power model can meter
// each state separately.
type State int

// Radio states.
const (
	StateSleep State = iota
	StateIdle
	StateRX
	StateTX
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateIdle:
		return "idle"
	case StateRX:
		return "rx"
	case StateTX:
		return "tx"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Medium is the shared air. All radios attached to a Medium hear each
// other subject to path loss. A Medium is bound to one scheduler and
// is not safe for concurrent use; external goroutines must go through
// a synchronised port (package core).
type Medium struct {
	Sched *eventsim.Scheduler
	cfg   Config
	rng   *eventsim.RNG

	radios []*Radio
	shadow map[linkKey]float64
	active map[chanKey][]*transmission

	// Frame-buffer arena and free lists for the per-transmission
	// objects; nil/empty means plain allocation (see SetArena).
	arena   *arena.Arena
	txFree  *transmission
	delFree *delivery

	metrics Metrics
	tracer  *telemetry.Tracer
	faults  FaultInjector

	// Frame-log record/replay hooks (see framelog.go). byName resolves
	// recorded receiver names back to radios during replay.
	recorder FrameRecorder
	replayer FrameReplayer
	byName   map[string]*Radio

	originRx     eventsim.Origin
	originTxDone eventsim.Origin
}

// FaultInjector is an optional channel-impairment layer consulted by
// the medium (see internal/faults for the standard implementation).
// It sits after the physical model: CorruptRx only sees deliveries
// that already survived path loss, collisions and the FER coin, so a
// nil injector leaves the medium's behaviour — including its RNG draw
// sequence — bit-identical to an uninstalled one.
//
// Implementations must be deterministic functions of their own seeded
// state; the medium calls them only from scheduler context.
type FaultInjector interface {
	// CorruptRx reports whether the delivery of data from src to dst
	// at virtual time now should be corrupted (delivered with FCSOK
	// false, exactly like a natural PHY error).
	CorruptRx(src, dst *Radio, data []byte, now eventsim.Time) bool
	// NoiseAt reports whether scheduled interference is putting energy
	// on the given channel at virtual time now; CCA sees it as a busy
	// channel even when no decodable transmission is in flight.
	NoiseAt(band phy.Band, channel int, now eventsim.Time) bool
}

// SetFaultInjector installs a channel fault injector. Nil (the
// default) disables fault injection entirely.
func (m *Medium) SetFaultInjector(f FaultInjector) { m.faults = f }

type linkKey struct{ a, b *Radio }

type chanKey struct {
	band    phy.Band
	channel int
}

type transmission struct {
	source   *Radio
	data     []byte
	rate     phy.Rate
	start    eventsim.Time
	end      eventsim.Time
	power    float64
	traceID  uint64   // flow ID linking tx span to rx spans; 0 untraced
	exchange uint64   // probe-exchange ID this frame belongs to; 0 unlinked
	label    string   // semantic frame name set by the MAC/attacker layer
	rec      *FrameTx // frame-log record being built; nil unless recording

	// Pool bookkeeping: transmissions are recycled through the
	// medium's free list once every holder lets go. refs counts the
	// scheduled events still pointing here — one per receiver's
	// end-of-reception plus one for the transmitter-done event.
	key    chanKey
	refs   int
	doneFn func() // pre-bound transmitter-done callback, built once
	next   *transmission
}

// newTransmission takes a transmission from the free list (or
// allocates one) with its done callback already bound.
func (m *Medium) newTransmission() *transmission {
	t := m.txFree
	if t == nil {
		t = &transmission{}
		t.doneFn = t.finish
	} else {
		m.txFree = t.next
		t.next = nil
	}
	return t
}

// releaseTx drops one reference; the last holder returns the
// transmission to the free list.
func (m *Medium) releaseTx(t *transmission) {
	t.refs--
	if t.refs > 0 {
		return
	}
	t.source = nil
	t.data = nil
	t.label = ""
	t.rec = nil
	t.next = m.txFree
	m.txFree = t
}

// finish is the transmitter-done callback: return the radio to idle,
// garbage-collect the channel's active list, and drop this event's
// reference. Bound per transmission (not per radio) because a new
// transmission may legally start at the exact tick the previous one
// ends, before this event fires.
func (t *transmission) finish() {
	r := t.source
	if r.state == StateTX {
		r.setState(StateIdle)
	}
	m := r.medium
	m.reap(t.key)
	m.releaseTx(t)
}

// delivery carries one receiver's pending begin/end reception events
// with pre-bound callbacks, recycled through the medium's free list.
// The object is released (and the transmission reference dropped) when
// the end event fires; the begin event always precedes it.
type delivery struct {
	rx      *Radio
	t       *transmission
	rssi    float64
	recIdx  int // index into t.rec.Rx; -1 when not recording
	beginFn func()
	endFn   func()
	next    *delivery
}

func (m *Medium) newDelivery(rx *Radio, t *transmission, rssi float64, recIdx int) *delivery {
	d := m.delFree
	if d == nil {
		d = &delivery{}
		d.beginFn = func() { d.rx.beginReception(d.t, d.rssi, d.recIdx) }
		d.endFn = d.end
	} else {
		m.delFree = d.next
		d.next = nil
	}
	d.rx, d.t, d.rssi, d.recIdx = rx, t, rssi, recIdx
	return d
}

func (d *delivery) end() {
	rx, t, rssi, recIdx := d.rx, d.t, d.rssi, d.recIdx
	m := rx.medium
	d.rx, d.t = nil, nil
	d.next = m.delFree
	m.delFree = d
	rx.endReception(t, rssi, recIdx)
	m.releaseTx(t)
}

// NewMedium creates a medium on the given scheduler.
func NewMedium(sched *eventsim.Scheduler, rng *eventsim.RNG, cfg Config) *Medium {
	if cfg.PathLoss == nil {
		cfg.PathLoss = LogDistance{Exponent: 3.0}
	}
	return &Medium{
		Sched:        sched,
		cfg:          cfg,
		rng:          rng,
		shadow:       make(map[linkKey]float64),
		active:       make(map[chanKey][]*transmission),
		byName:       make(map[string]*Radio),
		originRx:     sched.Origin("radio.rx"),
		originTxDone: sched.Origin("radio.txdone"),
	}
}

// SetMetrics installs medium counters (see NewMetrics). The zero
// Metrics value disables counting again.
func (m *Medium) SetMetrics(mx Metrics) { m.metrics = mx }

// SetArena installs a frame-buffer arena: transmitted bytes are copied
// into it instead of individually allocated, and every reception's
// Data aliases arena memory. The owner must not Reset the arena while
// the medium's scheduler still has events to run — the wardrive resets
// at stop teardown, after the last handler has fired. Nil (the
// default) restores per-frame allocation, which is what long-lived
// consumers that retain frame bytes (e.g. a concurrent sniffer ring)
// rely on.
func (m *Medium) SetArena(a *arena.Arena) { m.arena = a }

// SetTracer installs a frame-lifecycle tracer. Transmissions get a tx
// span on the transmitter's track and an rx span on each receiver
// that locked on, linked by flow ID. A nil tracer disables tracing.
func (m *Medium) SetTracer(t *telemetry.Tracer) { m.tracer = t }

// Tracer returns the installed tracer (nil when tracing is off), so
// higher layers can add semantic spans to the same timeline.
func (m *Medium) Tracer() *telemetry.Tracer { return m.tracer }

// NewRadio attaches a radio to the medium.
func (m *Medium) NewRadio(name string, pos Position, band phy.Band, channel int) *Radio {
	r := &Radio{
		Name:       name,
		medium:     m,
		pos:        pos,
		band:       band,
		channel:    channel,
		txPowerDBm: 15,
		sensDBm:    -92,
		ccaDBm:     -82,
		state:      StateIdle,
	}
	m.radios = append(m.radios, r)
	m.byName[name] = r
	return r
}

// Radios returns all attached radios.
func (m *Medium) Radios() []*Radio { return m.radios }

// shadowDB returns the (symmetric, per-link, frozen) shadowing term.
func (m *Medium) shadowDB(a, b *Radio) float64 {
	if a == b {
		return 0
	}
	k := linkKey{a, b}
	if b.Name < a.Name {
		k = linkKey{b, a}
	}
	if v, ok := m.shadow[k]; ok {
		return v
	}
	v := m.rng.Normal(0, m.cfg.ShadowSigmaDB)
	m.shadow[k] = v
	return v
}

// rssiAt computes the received power of a transmission from tx at rx.
func (m *Medium) rssiAt(tx, rx *Radio, txPower float64) float64 {
	freq := phy.ChannelFreqMHz(tx.band, tx.channel)
	loss := m.cfg.PathLoss.LossDB(tx.pos, rx.pos, freq) + m.shadowDB(tx, rx)
	return txPower - loss
}

// Radio is one attachment point to the medium. Exactly one frame can
// be in flight from a radio at a time.
type Radio struct {
	Name    string
	medium  *Medium
	pos     Position
	band    phy.Band
	channel int

	txPowerDBm float64
	sensDBm    float64 // preamble decode sensitivity
	ccaDBm     float64 // carrier sense (energy detect) threshold

	state    State
	stateLis func(old, new State, at eventsim.Time)

	handler func(rx Reception)

	// nextTxLabel names the next Transmit in traces ("ACK", "Probe
	// Request", ...); consumed by one transmission, set by the layer
	// that knows the frame's meaning.
	nextTxLabel string

	// nextTxExchange links the next Transmit to a probe exchange;
	// consumed (or discarded on a busy transmitter) by the next
	// Transmit call.
	nextTxExchange uint64

	// Current lock: the transmission the receiver is synchronised to.
	lockedTo    *transmission
	lockArrival eventsim.Time
	corrupted   bool

	txUntil eventsim.Time
}

// Medium returns the medium the radio is attached to.
func (r *Radio) Medium() *Medium { return r.medium }

// Position returns the radio's location.
func (r *Radio) Position() Position { return r.pos }

// MoveTo relocates the radio (mobility support for the wardrive).
func (r *Radio) MoveTo(p Position) { r.pos = p }

// Band returns the radio's band.
func (r *Radio) Band() phy.Band { return r.band }

// Channel returns the radio's channel number.
func (r *Radio) Channel() int { return r.channel }

// SetChannel retunes the radio.
func (r *Radio) SetChannel(ch int) { r.channel = ch }

// SetBand moves the radio to another band (dual-band dongles hop
// between 2.4 and 5 GHz while scanning).
func (r *Radio) SetBand(b phy.Band) { r.band = b }

// SetTxPower sets the transmit power in dBm.
func (r *Radio) SetTxPower(dbm float64) { r.txPowerDBm = dbm }

// TxPower returns the transmit power in dBm.
func (r *Radio) TxPower() float64 { return r.txPowerDBm }

// SetHandler installs the reception callback.
func (r *Radio) SetHandler(h func(rx Reception)) { r.handler = h }

// SetNextTxLabel names the next transmission from this radio for the
// frame-lifecycle trace. No-op unless a tracer is installed.
func (r *Radio) SetNextTxLabel(label string) {
	if r.medium.tracer != nil {
		r.nextTxLabel = label
	}
}

// SetNextTxExchange tags the next transmission from this radio with a
// probe-exchange ID, linking it into that exchange's causal tree in
// the trace and stamping Reception.Exchange at every receiver. No-op
// unless a tracer is installed.
func (r *Radio) SetNextTxExchange(ex uint64) {
	if r.medium.tracer != nil {
		r.nextTxExchange = ex
	}
}

// OnStateChange installs a state transition listener used by the
// power model.
func (r *Radio) OnStateChange(f func(old, new State, at eventsim.Time)) { r.stateLis = f }

// State returns the current RF state.
func (r *Radio) State() State { return r.state }

func (r *Radio) setState(s State) {
	if s == r.state {
		return
	}
	old := r.state
	r.state = s
	if r.stateLis != nil {
		r.stateLis(old, s, r.medium.Sched.Now())
	}
}

// Sleep powers the radio down: it hears nothing and the medium skips
// it entirely. Power-save mode is built on this.
func (r *Radio) Sleep() {
	r.lockedTo = nil
	r.setState(StateSleep)
}

// Wake powers the radio back up.
func (r *Radio) Wake() {
	if r.state == StateSleep {
		r.setState(StateIdle)
	}
}

// Asleep reports whether the radio is powered down.
func (r *Radio) Asleep() bool { return r.state == StateSleep }

// CCABusy reports whether the radio's clear channel assessment sees
// energy above threshold right now. Every call is a recordable event:
// the answer depends on lazily-drawn per-link shadowing, so replay
// answers from the log instead of re-deriving it.
func (r *Radio) CCABusy() bool {
	m := r.medium
	if m.replayer != nil {
		busy, ok := m.replayer.ReplayCCA(r.Name, m.Sched.Now())
		return ok && busy
	}
	busy := r.ccaBusyLive()
	if m.recorder != nil {
		m.recorder.RecordCCA(r.Name, m.Sched.Now(), busy)
	}
	return busy
}

func (r *Radio) ccaBusyLive() bool {
	if r.state == StateTX {
		return true
	}
	now := r.medium.Sched.Now()
	if r.medium.faults != nil && r.medium.faults.NoiseAt(r.band, r.channel, now) {
		return true
	}
	key := chanKey{r.band, r.channel}
	for _, t := range r.medium.active[key] {
		if t.source == r || t.end <= now {
			continue
		}
		if r.medium.rssiAt(t.source, r, t.power) >= r.ccaDBm {
			return true
		}
	}
	return false
}

// Transmitting reports whether the radio is mid-transmission.
func (r *Radio) Transmitting() bool { return r.medium.Sched.Now() < r.txUntil }

// ErrTxBusy is returned when a transmission is requested while one is
// already in flight from this radio.
var ErrTxBusy = fmt.Errorf("radio: transmitter busy")

// Transmit puts a frame on the air at the given rate. It returns the
// time the transmission will end. The caller (MAC) is responsible for
// CSMA etiquette; the radio will happily transmit over others.
func (r *Radio) Transmit(data []byte, rate phy.Rate) (eventsim.Time, error) {
	m := r.medium
	now := m.Sched.Now()
	// Consume the pending exchange tag up front: a busy-transmitter
	// bounce must not leave a stale tag to leak onto some later,
	// unrelated frame.
	exchange := r.nextTxExchange
	r.nextTxExchange = 0
	if r.Transmitting() {
		return 0, ErrTxBusy
	}
	if m.replayer != nil {
		return r.replayTransmit(now, data, rate, exchange)
	}
	air := phy.Airtime(rate, len(data))
	// Copy the caller's bytes: senders reuse their serialization
	// scratch immediately, while receivers read these bytes at
	// end-of-reception. The arena batches the copies per stop.
	var buf []byte
	if m.arena != nil {
		buf = m.arena.Alloc(len(data))
		copy(buf, data)
	} else {
		buf = append([]byte(nil), data...)
	}
	t := m.newTransmission()
	t.source = r
	t.data = buf
	t.rate = rate
	t.start = now
	t.end = now + air
	t.power = r.txPowerDBm
	t.traceID = 0
	t.exchange = 0
	t.key = chanKey{r.band, r.channel}
	t.refs = 1 // the transmitter-done event; receivers add their own
	r.txUntil = t.end
	r.setState(StateTX)
	key := t.key
	m.active[key] = append(m.active[key], t)

	m.metrics.Transmissions.Inc()
	m.metrics.TxAirtimeUS.Add(uint64(air / eventsim.Microsecond))
	if m.tracer != nil {
		t.label = r.nextTxLabel
		r.nextTxLabel = ""
		if t.label == "" {
			t.label = "frame"
		}
		t.traceID = m.tracer.NextID()
		t.exchange = exchange
		m.tracer.Span(r.Name, "tx "+t.label, t.start, t.end, t.traceID, t.exchange, map[string]string{
			"bytes": strconv.Itoa(len(t.data)),
			"rate":  t.rate.String(),
		})
	}
	if m.recorder != nil {
		// Copy the bytes once more: buf may live in the per-stop arena,
		// which is reset before the log is serialized.
		t.rec = &FrameTx{
			Src:      r.Name,
			Start:    t.start,
			End:      t.end,
			Rate:     rate,
			Data:     append([]byte(nil), data...),
			Label:    t.label,
			Exchange: t.exchange,
		}
	}

	// Schedule per-receiver arrival events.
	for _, rx := range m.radios {
		if rx == r || rx.band != r.band || rx.channel != r.channel {
			continue
		}
		rssi := m.rssiAt(r, rx, t.power)
		if m.cfg.FadingSigmaDB > 0 {
			rssi += m.rng.Normal(0, m.cfg.FadingSigmaDB)
		}
		if rssi < rx.sensDBm {
			m.metrics.BelowSensitivity.Inc()
			if t.rec != nil {
				t.rec.BelowSens++
			}
			continue // below decode sensitivity; contributes only to CCA
		}
		delay := eventsim.Time(rx.pos.DistanceTo(r.pos) / speedOfLight * 1e9)
		recIdx := -1
		if t.rec != nil {
			t.rec.Rx = append(t.rec.Rx, FrameRx{
				Dst:   rx.Name,
				Begin: t.start + delay,
				End:   t.end + delay,
				RSSI:  rssi,
			})
			recIdx = len(t.rec.Rx) - 1
		}
		d := m.newDelivery(rx, t, rssi, recIdx)
		t.refs++
		m.Sched.ScheduleTagged(m.originRx, t.start+delay, d.beginFn)
		m.Sched.ScheduleTagged(m.originRx, t.end+delay, d.endFn)
	}
	if t.rec != nil {
		m.recorder.RecordTx(t.rec)
	}

	// Return the transmitter to idle and garbage-collect; PS
	// stations re-doze later under MAC control.
	m.Sched.ScheduleTagged(m.originTxDone, t.end, t.doneFn)
	return t.end, nil
}

func (m *Medium) reap(key chanKey) {
	now := m.Sched.Now()
	live := m.active[key][:0]
	for _, t := range m.active[key] {
		if t.end > now {
			live = append(live, t)
		}
	}
	m.active[key] = live
}

func (r *Radio) beginReception(t *transmission, rssi float64, recIdx int) {
	if r.state == StateSleep || r.state == StateTX {
		return
	}
	if r.lockedTo == nil {
		// Lock onto the new transmission.
		r.lockedTo = t
		r.lockArrival = r.medium.Sched.Now()
		r.corrupted = false
		r.setState(StateRX)
		t.recordFx(recIdx, FxLock)
		return
	}
	// Overlap: capture or mutual corruption.
	cur := r.medium.rssiAt(r.lockedTo.source, r, r.lockedTo.power)
	margin := r.medium.cfg.CaptureMarginDB
	switch {
	case cur >= rssi+margin:
		// Current frame survives; the newcomer is just noise.
		r.medium.metrics.CaptureWins.Inc()
		t.recordFx(recIdx, FxWin)
	case rssi >= cur+margin:
		// Newcomer captures the receiver.
		r.medium.metrics.CaptureWins.Inc()
		r.lockedTo = t
		r.lockArrival = r.medium.Sched.Now()
		r.corrupted = false
		t.recordFx(recIdx, FxSteal)
	default:
		// Both lost.
		r.medium.metrics.Collisions.Inc()
		r.corrupted = true
		t.recordFx(recIdx, FxClash)
	}
}

// recordFx notes a begin-of-reception effect on the frame log entry.
func (t *transmission) recordFx(recIdx int, fx string) {
	if t.rec != nil && recIdx >= 0 {
		t.rec.Rx[recIdx].Fx = fx
	}
}

// lockArrivalFor returns the arrival timestamp captured when the
// receiver locked onto t.
func (r *Radio) lockArrivalFor(t *transmission) eventsim.Time {
	return r.lockArrival
}

func (r *Radio) endReception(t *transmission, rssi float64, recIdx int) {
	if r.lockedTo != t {
		return
	}
	locked := r.lockedTo
	corrupted := r.corrupted
	r.lockedTo = nil
	r.corrupted = false
	if r.state == StateRX {
		r.setState(StateIdle)
	}
	rec := (*FrameRx)(nil)
	if t.rec != nil && recIdx >= 0 {
		rec = &t.rec.Rx[recIdx]
	}
	if r.handler == nil {
		if rec != nil {
			rec.Out = OutUnlock
		}
		return
	}
	snr := phy.SNRFromRSSI(rssi)
	fcsOK := !corrupted
	drop := ""
	if fcsOK {
		fer := phy.FER(locked.rate, snr, len(locked.data))
		if r.medium.rng.Coin(fer) {
			fcsOK = false
			drop = DropSNR
			r.medium.metrics.SNRDrops.Inc()
		}
	}
	// Channel faults sit after the physical model: only deliveries
	// that would otherwise have decoded cleanly are offered up, so the
	// injector's drop counts measure impairment, not double-counted
	// PHY errors.
	consulted := false
	if fcsOK && r.medium.faults != nil {
		consulted = true
		if r.medium.faults.CorruptRx(locked.source, r, locked.data, r.medium.Sched.Now()) {
			fcsOK = false
			if fr, ok := r.medium.faults.(FaultReplayer); ok {
				drop = fr.LastDropKind()
			}
		}
	}
	if rec != nil {
		rec.Out = OutDeliver
		rec.FCSOK = fcsOK
		rec.Drop = drop
		rec.Consulted = consulted
	}
	r.medium.metrics.Deliveries.Inc()
	if tr := r.medium.tracer; tr != nil {
		tr.Span(r.Name, "rx "+locked.label, r.lockArrivalFor(locked), r.medium.Sched.Now(), locked.traceID, locked.exchange, map[string]string{
			"rssi": strconv.FormatFloat(rssi, 'f', 1, 64),
			"snr":  strconv.FormatFloat(snr, 'f', 1, 64),
			"fcs":  strconv.FormatBool(fcsOK),
		})
	}
	r.handler(Reception{
		Data:     locked.data,
		Rate:     locked.rate,
		RSSIDBm:  rssi,
		SNRDB:    snr,
		Start:    r.lockArrivalFor(locked),
		End:      r.medium.Sched.Now(),
		FCSOK:    fcsOK,
		Exchange: locked.exchange,
	})
}

// RSSIBetween reports the mean received power from a to b, exposed
// for placement and discovery logic.
func (m *Medium) RSSIBetween(a, b *Radio) float64 {
	return m.rssiAt(a, b, a.txPowerDBm)
}

// InRange reports whether a transmission from a would be decodable at
// b on average.
func (m *Medium) InRange(a, b *Radio) bool {
	return a.band == b.band && a.channel == b.channel && m.RSSIBetween(a, b) >= b.sensDBm
}
