package radio

import (
	"politewifi/internal/telemetry"
)

// Metrics are the medium's telemetry instruments (the "medium"
// family). The zero value is valid and records nothing — every
// instrument method is nil-safe — so an uninstrumented Medium pays
// only a nil check per event.
type Metrics struct {
	// Transmissions counts frames put on the air.
	Transmissions *telemetry.Counter
	// TxAirtimeUS accumulates occupied airtime in microseconds.
	TxAirtimeUS *telemetry.Counter
	// BelowSensitivity counts receiver links skipped because the
	// received power was under the decode sensitivity.
	BelowSensitivity *telemetry.Counter
	// CaptureWins counts overlapping receptions resolved by preamble
	// capture (one frame survived the collision).
	CaptureWins *telemetry.Counter
	// Collisions counts overlapping receptions where both frames were
	// lost (mutual corruption).
	Collisions *telemetry.Counter
	// SNRDrops counts frames that failed the SNR-driven frame-error
	// coin (delivered with FCSOK=false).
	SNRDrops *telemetry.Counter
	// Deliveries counts receptions surfaced to a radio's handler.
	Deliveries *telemetry.Counter
}

// NewMetrics creates (or reattaches to) the medium instrument family
// in reg. Because registry instruments are get-or-create, calling
// this once per neighbourhood medium accumulates a whole wardrive
// into one set of counters.
func NewMetrics(reg *telemetry.Registry) Metrics {
	return Metrics{
		Transmissions:    reg.Counter("medium.transmissions", "frames put on the air"),
		TxAirtimeUS:      reg.Counter("medium.tx_airtime_us", "occupied airtime (µs)"),
		BelowSensitivity: reg.Counter("medium.below_sensitivity", "links under decode sensitivity"),
		CaptureWins:      reg.Counter("medium.capture_wins", "collisions resolved by preamble capture"),
		Collisions:       reg.Counter("medium.collisions", "overlapping frames mutually lost"),
		SNRDrops:         reg.Counter("medium.snr_drops", "frames failing the SNR error coin"),
		Deliveries:       reg.Counter("medium.deliveries", "receptions surfaced to handlers"),
	}
}
