// Frame-log record/replay: the medium can write every transmission's
// full lifecycle (wire bytes, per-receiver arrival times and outcomes,
// carrier-sense consultations) to a FrameRecorder, and later re-run
// the same drive against a FrameReplayer without re-simulating the RF
// medium at all — no path-loss math, no shadowing/fading draws, no
// capture resolution, no FER coin, no fault consultation. Replay
// schedules exactly the recorded event set with the same origins and
// insertion order, bumps the same counters at the same virtual times,
// and hands the MAC layer bit-identical Receptions, so census,
// telemetry and stream output reproduce the recorded run byte for
// byte. The serialized form lives in internal/replay; this file owns
// the in-memory records and the medium hooks so the radio package
// stays free of encoding concerns (and of an import cycle).

package radio

import (
	"strconv"

	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

// Begin-of-reception effects recorded per receiver. An empty Fx means
// the begin event was a no-op (receiver asleep or transmitting).
const (
	// FxLock: receiver was unlocked and synchronised to this frame.
	FxLock = "lock"
	// FxSteal: this frame captured the receiver away from a weaker
	// frame it was locked to (counts a capture win).
	FxSteal = "steal"
	// FxWin: the receiver's current lock survived this frame as noise
	// (counts a capture win; this frame was never locked).
	FxWin = "win"
	// FxClash: neither frame was strong enough to capture — the current
	// lock is corrupted and this frame lost (counts a collision).
	FxClash = "clash"
)

// End-of-reception outcomes recorded per receiver. An empty Out means
// the end event was a no-op (the receiver was locked to another frame,
// or never locked to this one).
const (
	// OutUnlock: the receiver was locked to this frame but has no
	// handler installed — it returned to idle and nothing was counted.
	OutUnlock = "unlock"
	// OutDeliver: the frame was surfaced to the receiver's handler
	// (counts a delivery; FCSOK and Drop say how it fared).
	OutDeliver = "deliver"
)

// DropSNR marks a delivery that failed the SNR-driven frame-error
// coin. All other non-empty Drop values name a fault-injector drop
// kind (see internal/faults: "loss", "ack", "jam", "deaf").
const DropSNR = "snr"

// FrameTx is one transmission's recorded lifecycle: what went on the
// air and what every in-range receiver did with it. Field tags define
// the on-wire JSON of the politewifi.framelog/v1 format.
type FrameTx struct {
	// Src is the transmitting radio's name (radio names are unique
	// within a stop's medium and stable across runs).
	Src string `json:"src"`
	// Start and End bound the transmission in virtual time.
	Start eventsim.Time `json:"start"`
	End   eventsim.Time `json:"end"`
	// Rate is the PHY rate; all fields are plain numbers/bools so the
	// JSON round trip is exact.
	Rate phy.Rate `json:"rate"`
	// Data is the full frame including FCS, copied at record time (the
	// live bytes live in a per-stop arena that is reset at teardown).
	Data []byte `json:"data"`
	// Label is the semantic frame name from the tracer path ("ACK",
	// "Probe Request", ...); informational, empty when untraced.
	Label string `json:"label,omitempty"`
	// Exchange is the probe-exchange ID stamped on the frame at record
	// time; informational (replay re-mints live IDs).
	Exchange uint64 `json:"exchange,omitempty"`
	// BelowSens counts in-range-loop receivers skipped because the
	// (faded) RSSI was under decode sensitivity; replay restores the
	// counter without knowing who they were.
	BelowSens int `json:"below_sens,omitempty"`
	// Rx holds one entry per receiver that got scheduled arrival
	// events, in the medium's deterministic radio order.
	Rx []FrameRx `json:"rx,omitempty"`
}

// FrameRx is one receiver's recorded arrival: when the frame reached
// it, how strong it was, and what the begin/end events did.
type FrameRx struct {
	// Dst is the receiving radio's name.
	Dst string `json:"dst"`
	// Begin and End are the local arrival times (propagation included).
	Begin eventsim.Time `json:"begin"`
	End   eventsim.Time `json:"end"`
	// RSSI is the received power in dBm after shadowing and fading.
	RSSI float64 `json:"rssi"`
	// Fx is the begin-of-reception effect (Fx* constants; empty no-op).
	Fx string `json:"fx,omitempty"`
	// Out is the end-of-reception outcome (Out* constants; empty no-op).
	Out string `json:"out,omitempty"`
	// FCSOK reports whether a delivered frame passed every error gate.
	FCSOK bool `json:"fcs,omitempty"`
	// Drop names the gate a delivered-but-corrupted frame failed:
	// DropSNR for the FER coin, or a fault-injector kind.
	Drop string `json:"drop,omitempty"`
	// Consulted reports whether the fault injector was offered this
	// delivery, so replay restores its consultation/drop statistics.
	Consulted bool `json:"consulted,omitempty"`
}

// CCACheck is one recorded clear-channel assessment: CCABusy's answer
// depends on lazily-drawn per-link shadowing, so replay must answer
// from the log rather than re-derive it.
type CCACheck struct {
	// Src is the radio performing carrier sense.
	Src string `json:"src"`
	// At is the virtual time of the check.
	At eventsim.Time `json:"at"`
	// Busy is the recorded answer.
	Busy bool `json:"busy,omitempty"`
}

// FrameRecorder receives the medium's frame lifecycles and CCA checks
// in the exact order they are produced. Implementations are called
// only from scheduler context; RecordTx is handed an object the medium
// keeps mutating until the transmission's last event has fired, so the
// recorder must not serialize it before the stop's sim loop finishes.
type FrameRecorder interface {
	RecordTx(tx *FrameTx)
	RecordCCA(src string, at eventsim.Time, busy bool)
}

// FrameReplayer feeds a recorded drive back to the medium. ReplayTx
// and ReplayCCA must return records in the recorded order; a false ok
// means the log has diverged from (or run out for) the live run, at
// which point the medium goes inert for the rest of the stop: radios
// keep their transmit timing but nothing is delivered, so the sim
// still terminates and the latched divergence error is the result.
type FrameReplayer interface {
	// ReplayTx consumes the next record, which must be a transmission
	// matching (src, at, data, rate); on mismatch it latches a
	// positioned divergence error and returns ok=false.
	ReplayTx(src string, at eventsim.Time, data []byte, rate phy.Rate) (tx *FrameTx, ok bool)
	// ReplayCCA consumes the next record, which must be a CCA check
	// matching (src, at); on mismatch it latches and returns ok=false.
	ReplayCCA(src string, at eventsim.Time) (busy, ok bool)
	// Diverge latches a divergence the medium itself detected (e.g. a
	// recorded receiver name that doesn't exist in this world).
	Diverge(format string, args ...any)
}

// FaultReplayer is the optional fault-injector surface record/replay
// uses for drop attribution: LastDropKind names the gate the most
// recent CorruptRx=true tripped, and ReplayConsult restores one
// consultation (and its drop, if any) to the injector's statistics
// without spending RNG draws. internal/faults implements it.
type FaultReplayer interface {
	FaultInjector
	LastDropKind() string
	ReplayConsult(dropKind string)
}

// SetFrameRecorder installs a frame-log recorder. Recording observes
// the live simulation without perturbing it: no RNG draws are added or
// removed, so a recorded run is bit-identical to an unrecorded one.
// Mutually exclusive with SetFrameReplayer.
func (m *Medium) SetFrameRecorder(rec FrameRecorder) { m.recorder = rec }

// SetFrameReplayer switches the medium to replay mode: Transmit and
// CCABusy answer from the log instead of simulating the RF medium, and
// the medium's RNG is never drawn from. Mutually exclusive with
// SetFrameRecorder.
func (m *Medium) SetFrameReplayer(rp FrameReplayer) { m.replayer = rp }

// replayTransmit is Transmit in replay mode: validate lockstep with
// the log, keep the transmitter's live timing/state/metrics/trace
// exactly as the recorded run had them, and schedule the recorded
// arrival events instead of computing propagation and power.
func (r *Radio) replayTransmit(now eventsim.Time, data []byte, rate phy.Rate, exchange uint64) (eventsim.Time, error) {
	m := r.medium
	air := phy.Airtime(rate, len(data))
	end := now + air
	rec, ok := m.replayer.ReplayTx(r.Name, now, data, rate)

	// Live-side bookkeeping happens regardless of log agreement so the
	// MAC above keeps its timing and the run terminates.
	r.txUntil = end
	r.setState(StateTX)
	m.metrics.Transmissions.Inc()
	m.metrics.TxAirtimeUS.Add(uint64(air / eventsim.Microsecond))
	var label string
	var traceID uint64
	if m.tracer != nil {
		label = r.nextTxLabel
		r.nextTxLabel = ""
		if label == "" {
			label = "frame"
		}
		traceID = m.tracer.NextID()
		m.tracer.Span(r.Name, "tx "+label, now, end, traceID, exchange, map[string]string{
			"bytes": strconv.Itoa(len(data)),
			"rate":  rate.String(),
		})
	}
	m.Sched.ScheduleTagged(m.originTxDone, end, func() {
		if r.state == StateTX {
			r.setState(StateIdle)
		}
	})
	if !ok {
		return end, nil // diverged: latched in the replayer, medium inert
	}
	if rec.End != end {
		m.replayer.Diverge("tx from %q at %d: recorded end %d, live airtime ends %d", r.Name, now, rec.End, end)
		return end, nil
	}
	for i := 0; i < rec.BelowSens; i++ {
		m.metrics.BelowSensitivity.Inc()
	}
	for i := range rec.Rx {
		e := &rec.Rx[i]
		rx, ok := m.byName[e.Dst]
		if !ok {
			m.replayer.Diverge("tx from %q at %d: recorded receiver %q not in this world", r.Name, now, e.Dst)
			return end, nil
		}
		m.Sched.ScheduleTagged(m.originRx, e.Begin, func() { m.replayBegin(rx, e) })
		m.Sched.ScheduleTagged(m.originRx, e.End, func() { m.replayEnd(rx, rec, e, label, traceID, exchange) })
	}
	return end, nil
}

// replayBegin applies a recorded begin-of-reception effect: state
// transitions and collision/capture counters, no RSSI comparison.
func (m *Medium) replayBegin(rx *Radio, e *FrameRx) {
	switch e.Fx {
	case FxLock:
		rx.setState(StateRX)
	case FxSteal:
		m.metrics.CaptureWins.Inc()
		rx.setState(StateRX)
	case FxWin:
		m.metrics.CaptureWins.Inc()
	case FxClash:
		m.metrics.Collisions.Inc()
	}
}

// replayEnd applies a recorded end-of-reception outcome: counters,
// fault statistics, the rx trace span, and the handler call with a
// Reception reconstructed from the log.
func (m *Medium) replayEnd(rx *Radio, rec *FrameTx, e *FrameRx, label string, traceID, exchange uint64) {
	switch e.Out {
	case OutUnlock, OutDeliver:
		if rx.state == StateRX {
			rx.setState(StateIdle)
		}
	default:
		return
	}
	if e.Out != OutDeliver {
		return
	}
	if e.Drop == DropSNR {
		m.metrics.SNRDrops.Inc()
	}
	if e.Consulted {
		if fr, ok := m.faults.(FaultReplayer); ok {
			drop := e.Drop
			if drop == DropSNR {
				drop = "" // SNR drops never reach the injector
			}
			fr.ReplayConsult(drop)
		}
	}
	m.metrics.Deliveries.Inc()
	now := m.Sched.Now()
	snr := phy.SNRFromRSSI(e.RSSI)
	if tr := m.tracer; tr != nil {
		tr.Span(rx.Name, "rx "+label, e.Begin, now, traceID, exchange, map[string]string{
			"rssi": strconv.FormatFloat(e.RSSI, 'f', 1, 64),
			"snr":  strconv.FormatFloat(snr, 'f', 1, 64),
			"fcs":  strconv.FormatBool(e.FCSOK),
		})
	}
	if rx.handler == nil {
		return
	}
	rx.handler(Reception{
		Data:     rec.Data,
		Rate:     rec.Rate,
		RSSIDBm:  e.RSSI,
		SNRDB:    snr,
		Start:    e.Begin,
		End:      now,
		FCSOK:    e.FCSOK,
		Exchange: exchange,
	})
}
