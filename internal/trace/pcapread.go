package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"politewifi/internal/eventsim"
)

// ErrNotPcap is returned when the input lacks the classic pcap magic.
var ErrNotPcap = errors.New("trace: not a pcap file")

// ReadPcap parses a classic little-endian microsecond pcap stream (as
// produced by WritePcap or by Wireshark saving a DLT 105 capture) back
// into records. FCSOK is true for every record: pcap has no channel
// for PHY verdicts, so corrupt frames simply fail to decode later.
func ReadPcap(r io.Reader) ([]Record, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagicMicros {
		return nil, ErrNotPcap
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != LinkTypeIEEE80211 {
		return nil, fmt.Errorf("trace: unsupported linktype %d (want %d)", lt, LinkTypeIEEE80211)
	}
	var out []Record
	var rec [16]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, fmt.Errorf("trace: record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rec[0:])
		usec := binary.LittleEndian.Uint32(rec[4:])
		incl := binary.LittleEndian.Uint32(rec[8:])
		if incl > 1<<20 {
			return nil, fmt.Errorf("trace: implausible record length %d", incl)
		}
		data := make([]byte, incl)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("trace: record body: %w", err)
		}
		out = append(out, Record{
			Time:  eventsim.Time(sec)*eventsim.Second + eventsim.Time(usec)*eventsim.Microsecond,
			Data:  data,
			FCSOK: true,
		})
	}
}
