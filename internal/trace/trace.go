// Package trace captures simulated air traffic the way the paper's
// authors used Wireshark: a sniffer collects frames, writes them to
// standard pcap files (DLT_IEEE802_11, readable by Wireshark), and
// renders the Source/Destination/Info tables shown in the paper's
// Figures 2 and 3.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/radio"
	"politewifi/internal/telemetry"
)

// Record is one captured frame.
type Record struct {
	Time    eventsim.Time
	Data    []byte // full frame including FCS
	RSSIDBm float64
	FCSOK   bool
}

// Frame decodes the record, returning nil for undecodable frames.
func (r Record) Frame() dot11.Frame {
	f, err := dot11.Decode(r.Data)
	if err != nil {
		return nil
	}
	return f
}

// Capture is an in-memory packet capture.
type Capture struct {
	Records []Record
	// KeepCorrupt retains frames that failed the FCS (PHY errors);
	// off by default, like Wireshark's default view.
	KeepCorrupt bool
}

// Attach subscribes the capture to a radio: every reception the radio
// surfaces is recorded. The radio should be a dedicated monitor-mode
// sniffer (any handler previously set is replaced).
func (c *Capture) Attach(r *radio.Radio) {
	sched := r.Medium().Sched
	r.SetHandler(func(rx radio.Reception) {
		if !rx.FCSOK && !c.KeepCorrupt {
			return
		}
		c.Records = append(c.Records, Record{
			Time:    sched.Now(),
			Data:    append([]byte(nil), rx.Data...),
			RSSIDBm: rx.RSSIDBm,
			FCSOK:   rx.FCSOK,
		})
	})
}

// Len reports the number of captured frames.
func (c *Capture) Len() int { return len(c.Records) }

// Clear drops all records.
func (c *Capture) Clear() { c.Records = nil }

// Filter returns the records whose decoded frame satisfies keep.
func (c *Capture) Filter(keep func(dot11.Frame) bool) []Record {
	var out []Record
	for _, r := range c.Records {
		if f := r.Frame(); f != nil && keep(f) {
			out = append(out, r)
		}
	}
	return out
}

// --- pcap output -----------------------------------------------------

// pcap constants.
const (
	pcapMagicMicros = 0xa1b2c3d4
	// LinkTypeIEEE80211 is DLT 105: raw 802.11 headers, no radiotap.
	LinkTypeIEEE80211 = 105
)

// WritePcap streams the capture as a classic pcap file that Wireshark
// opens directly.
func (c *Capture) WritePcap(w io.Writer) error {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], 2)      // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4)      // version minor
	binary.LittleEndian.PutUint32(hdr[16:], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeIEEE80211)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, r := range c.Records {
		us := int64(r.Time / eventsim.Microsecond)
		binary.LittleEndian.PutUint32(rec[0:], uint32(us/1_000_000))
		binary.LittleEndian.PutUint32(rec[4:], uint32(us%1_000_000))
		binary.LittleEndian.PutUint32(rec[8:], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rec[12:], uint32(len(r.Data)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// --- Wireshark-style table rendering ----------------------------------

// sourceOf renders the Source column: the transmitter address, or
// empty for ACK/CTS frames that carry none (Wireshark leaves the
// source blank for them too).
func sourceOf(f dot11.Frame) string {
	ta := f.TransmitterAddress()
	if ta == dot11.ZeroMAC {
		return ""
	}
	return ta.String()
}

// Table renders the capture as the Source/Destination/Info listing of
// the paper's Figures 2 and 3. abbreviate shortens addresses matching
// the given prefixes the way the paper redacts them ("f2:6e:0b:…").
func (c *Capture) Table(abbreviate ...dot11.MAC) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %-18s %s\n", "Time", "Source", "Destination", "Info")
	render := func(m string) string {
		for _, a := range abbreviate {
			if strings.HasPrefix(m, a.String()[:9]) {
				return m[:9] + "…"
			}
		}
		return m
	}
	for _, r := range c.Records {
		f := r.Frame()
		if f == nil {
			continue
		}
		src := sourceOf(f)
		if src != "" {
			src = render(src)
		}
		dst := render(f.ReceiverAddress().String())
		fmt.Fprintf(&b, "%-12s %-18s %-18s %s\n", r.Time, src, dst, f.Info())
	}
	return b.String()
}

// Summary counts captured frames by Info-name.
func (c *Capture) Summary() map[string]int {
	out := make(map[string]int)
	for _, r := range c.Records {
		if f := r.Frame(); f != nil {
			out[f.Control().Name()]++
		}
	}
	return out
}

// CountsInto registers the capture's per-frame-name counts as sampled
// capture.* metrics, so pcap-level counts land in the same report as
// the simulation's own telemetry and the two can be cross-checked.
func (c *Capture) CountsInto(reg *telemetry.Registry) {
	reg.MultiCounterFunc("capture.frames", "captured frames by Info name", func() map[string]uint64 {
		out := make(map[string]uint64)
		for name, n := range c.Summary() {
			out[metricSuffix(name)] = uint64(n)
		}
		return out
	})
	reg.CounterFunc("capture.frames_total", "captured frames", func() uint64 {
		return uint64(len(c.Records))
	})
}

// metricSuffix turns an Info name ("Probe Request") into a metric
// suffix ("probe_request").
func metricSuffix(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		case r == ' ' || r == '-' || r == '/':
			return '_'
		default:
			return r
		}
	}, name)
}
