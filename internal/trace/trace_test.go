package trace

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

var (
	fakeMAC   = dot11.MustMAC("aa:bb:bb:bb:bb:bb")
	victimMAC = dot11.MustMAC("f2:6e:0b:12:34:56")
)

func sniffEnv() (*radio.Medium, *radio.Radio, *Capture) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(2)
	m := radio.NewMedium(sched, rng, radio.Config{PathLoss: radio.LogDistance{Exponent: 2}})
	tx := m.NewRadio("tx", radio.Position{}, phy.Band2GHz, 6)
	sniffer := m.NewRadio("sniffer", radio.Position{X: 2}, phy.Band2GHz, 6)
	cap := &Capture{}
	cap.Attach(sniffer)
	return m, tx, cap
}

func TestCaptureRecords(t *testing.T) {
	m, tx, cap := sniffEnv()
	wire, _ := dot11.Serialize(dot11.NewNullFrame(victimMAC, fakeMAC, fakeMAC, 5))
	tx.Transmit(wire, phy.Rate24)
	m.Sched.Run()
	if cap.Len() != 1 {
		t.Fatalf("captured = %d", cap.Len())
	}
	r := cap.Records[0]
	if !r.FCSOK || r.Time == 0 {
		t.Fatalf("record = %+v", r)
	}
	f := r.Frame()
	if f == nil || f.ReceiverAddress() != victimMAC {
		t.Fatal("frame decode from record failed")
	}
}

func TestCaptureSkipsCorrupt(t *testing.T) {
	m, tx, cap := sniffEnv()
	wire, _ := dot11.Serialize(dot11.NewNullFrame(victimMAC, fakeMAC, fakeMAC, 5))
	bad := append([]byte(nil), wire...)
	bad[0] ^= 0xff
	tx.Transmit(bad, phy.Rate24)
	m.Sched.Run()
	if cap.Len() != 1 {
		t.Fatalf("captured = %d", cap.Len()) // delivered but FCS-broken bytes
	}
	// The record decodes to nil because the FCS is wrong.
	if cap.Records[0].Frame() != nil {
		t.Fatal("corrupt frame decoded")
	}
}

func TestFilterAndSummary(t *testing.T) {
	m, tx, cap := sniffEnv()
	frames := []dot11.Frame{
		dot11.NewNullFrame(victimMAC, fakeMAC, fakeMAC, 1),
		&dot11.Ack{RA: fakeMAC},
		&dot11.Ack{RA: victimMAC},
	}
	for _, f := range frames {
		wire, _ := dot11.Serialize(f)
		tx.Transmit(wire, phy.Rate24)
		m.Sched.Run()
	}
	acks := cap.Filter(func(f dot11.Frame) bool {
		_, ok := f.(*dot11.Ack)
		return ok
	})
	if len(acks) != 2 {
		t.Fatalf("acks = %d", len(acks))
	}
	sum := cap.Summary()
	if sum["Acknowledgement"] != 2 || sum["Null function (No data)"] != 1 {
		t.Fatalf("summary = %v", sum)
	}
}

func TestTableRendering(t *testing.T) {
	m, tx, cap := sniffEnv()
	wire, _ := dot11.Serialize(dot11.NewNullFrame(victimMAC, fakeMAC, fakeMAC, 5))
	tx.Transmit(wire, phy.Rate24)
	m.Sched.Run()
	wire2, _ := dot11.Serialize(&dot11.Ack{RA: fakeMAC})
	tx.Transmit(wire2, phy.Rate24)
	m.Sched.Run()

	table := cap.Table(victimMAC)
	if !strings.Contains(table, "Null function (No data)") {
		t.Fatalf("table missing null frame:\n%s", table)
	}
	if !strings.Contains(table, "Acknowledgement") {
		t.Fatalf("table missing ACK:\n%s", table)
	}
	// The victim's address is abbreviated like the paper's figures.
	if !strings.Contains(table, "f2:6e:0b:…") {
		t.Fatalf("abbreviation missing:\n%s", table)
	}
	if strings.Contains(table, victimMAC.String()) {
		t.Fatal("full victim MAC leaked into table")
	}
	// The fake MAC appears in full as both source and ACK destination.
	if !strings.Contains(table, "aa:bb:bb:bb:bb:bb") {
		t.Fatal("fake MAC missing")
	}
}

func TestWritePcap(t *testing.T) {
	m, tx, cap := sniffEnv()
	wire, _ := dot11.Serialize(dot11.NewNullFrame(victimMAC, fakeMAC, fakeMAC, 1))
	tx.Transmit(wire, phy.Rate24)
	m.Sched.Run()

	var buf bytes.Buffer
	if err := cap.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24+16+len(wire) {
		t.Fatalf("pcap size = %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(b[20:]) != 105 {
		t.Fatal("bad linktype")
	}
	inclLen := binary.LittleEndian.Uint32(b[24+8:])
	if int(inclLen) != len(wire) {
		t.Fatalf("record length = %d, want %d", inclLen, len(wire))
	}
	if !bytes.Equal(b[24+16:], wire) {
		t.Fatal("frame bytes mangled")
	}
}

func TestClear(t *testing.T) {
	m, tx, cap := sniffEnv()
	wire, _ := dot11.Serialize(&dot11.Ack{RA: fakeMAC})
	tx.Transmit(wire, phy.Rate24)
	m.Sched.Run()
	cap.Clear()
	if cap.Len() != 0 {
		t.Fatal("Clear did not drop records")
	}
}

func TestPcapRoundTrip(t *testing.T) {
	m, tx, cap := sniffEnv()
	frames := []dot11.Frame{
		dot11.NewNullFrame(victimMAC, fakeMAC, fakeMAC, 1),
		&dot11.Ack{RA: fakeMAC},
		&dot11.RTS{RA: victimMAC, TA: fakeMAC, Duration: 100},
	}
	for _, f := range frames {
		wire, _ := dot11.Serialize(f)
		tx.Transmit(wire, phy.Rate24)
		m.Sched.Run()
	}
	var buf bytes.Buffer
	if err := cap.WritePcap(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(cap.Records) {
		t.Fatalf("read %d records, wrote %d", len(records), len(cap.Records))
	}
	for i, r := range records {
		if !bytes.Equal(r.Data, cap.Records[i].Data) {
			t.Fatalf("record %d bytes differ", i)
		}
		// Timestamps round to microseconds.
		wantUS := cap.Records[i].Time / eventsim.Microsecond
		if r.Time/eventsim.Microsecond != wantUS {
			t.Fatalf("record %d time %v, want %vµs", i, r.Time, wantUS)
		}
		if r.Frame() == nil {
			t.Fatalf("record %d does not decode", i)
		}
	}
}

func TestReadPcapErrors(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadPcap(bytes.NewReader(make([]byte, 24))); err != ErrNotPcap {
		t.Fatalf("bad magic err = %v", err)
	}
	// Right magic, wrong linktype.
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], 0xa1b2c3d4)
	binary.LittleEndian.PutUint32(hdr[20:], 1) // ethernet
	if _, err := ReadPcap(bytes.NewReader(hdr)); err == nil {
		t.Fatal("wrong linktype accepted")
	}
	// Truncated record body.
	var buf bytes.Buffer
	cap := &Capture{Records: []Record{{Time: 1, Data: []byte{1, 2, 3, 4, 5}}}}
	cap.WritePcap(&buf)
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadPcap(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record accepted")
	}
}
