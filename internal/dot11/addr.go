// Package dot11 implements an IEEE 802.11 MAC frame codec: typed
// frames for the management, control and data classes, information
// elements, FCS handling, and Wireshark-style rendering.
//
// The codec follows the gopacket idiom: every frame type implements
// the Frame interface with DecodeFromBytes and AppendTo methods, and
// package-level Decode/Serialize functions dispatch on the Frame
// Control field. All wire formats are little-endian as required by
// the standard.
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// MAC is a 48-bit IEEE 802 MAC address. Being an array (not a slice)
// it is comparable and usable as a map key, which the discovery and
// census code relies on.
type MAC [6]byte

// Well-known addresses.
var (
	// Broadcast is the all-ones broadcast address.
	Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	// ZeroMAC is the all-zeros address, used as "unset".
	ZeroMAC = MAC{}
)

// ParseMAC parses the colon- or dash-separated hex form
// ("aa:bb:cc:dd:ee:ff").
func ParseMAC(s string) (MAC, error) {
	var m MAC
	s = strings.ReplaceAll(s, "-", ":")
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("dot11: invalid MAC %q", s)
	}
	for i, p := range parts {
		if len(p) != 2 {
			return m, fmt.Errorf("dot11: invalid MAC octet %q", p)
		}
		var b byte
		for _, c := range p {
			b <<= 4
			switch {
			case c >= '0' && c <= '9':
				b |= byte(c - '0')
			case c >= 'a' && c <= 'f':
				b |= byte(c-'a') + 10
			case c >= 'A' && c <= 'F':
				b |= byte(c-'A') + 10
			default:
				return m, fmt.Errorf("dot11: invalid MAC octet %q", p)
			}
		}
		m[i] = b
	}
	return m, nil
}

// MustMAC is ParseMAC that panics on error; for constants in tests and
// examples.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String renders the canonical lowercase colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Short renders the first three octets followed by an ellipsis, the
// way the paper's capture figures abbreviate addresses.
func (m MAC) Short() string {
	return fmt.Sprintf("%02x:%02x:%02x:…", m[0], m[1], m[2])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// IsGroup reports whether the group (multicast) bit is set. Broadcast
// is a group address.
func (m MAC) IsGroup() bool { return m[0]&0x01 != 0 }

// IsUnicast reports whether m addresses a single station.
func (m MAC) IsUnicast() bool { return !m.IsGroup() && m != ZeroMAC }

// IsLocal reports whether the locally-administered bit is set.
func (m MAC) IsLocal() bool { return m[0]&0x02 != 0 }

// OUI returns the 24-bit organizationally unique identifier prefix.
func (m MAC) OUI() OUI { return OUI{m[0], m[1], m[2]} }

// Matches reports whether a received frame with receiver address m
// should be accepted by a station with address self: an exact match
// or a group address.
func (m MAC) Matches(self MAC) bool {
	return m == self || m.IsGroup()
}

// OUI is the 3-byte vendor prefix of a MAC address.
type OUI [3]byte

// String renders the prefix in colon form.
func (o OUI) String() string {
	return fmt.Sprintf("%02x:%02x:%02x", o[0], o[1], o[2])
}

// WithSuffix builds a full MAC from the OUI and a 24-bit suffix.
func (o OUI) WithSuffix(suffix uint32) MAC {
	var m MAC
	m[0], m[1], m[2] = o[0], o[1], o[2]
	m[3] = byte(suffix >> 16)
	m[4] = byte(suffix >> 8)
	m[5] = byte(suffix)
	return m
}

// errShortFrame is returned whenever a buffer is too small for the
// structure being decoded.
var errShortFrame = errors.New("dot11: frame truncated")

func putMAC(b []byte, m MAC) { copy(b, m[:]) }

func getMAC(b []byte) MAC {
	var m MAC
	copy(m[:], b)
	return m
}

func putU16(b []byte, v uint16) { binary.LittleEndian.PutUint16(b, v) }
func getU16(b []byte) uint16    { return binary.LittleEndian.Uint16(b) }
func putU64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.LittleEndian.Uint64(b) }
