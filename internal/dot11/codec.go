package dot11

import (
	"errors"
	"fmt"
	"hash/crc32"

	"politewifi/internal/eventsim"
)

// FCSLen is the length of the trailing frame check sequence.
const FCSLen = 4

// ErrBadFCS is returned by Decode when the frame check sequence does
// not match the frame contents. A real PHY drops such frames without
// acknowledging them — the FCS check is the *only* validation that
// happens before the ACK decision.
var ErrBadFCS = errors.New("dot11: FCS check failed")

// ErrUnsupportedFrame is returned for type/subtype combinations the
// codec does not implement.
var ErrUnsupportedFrame = errors.New("dot11: unsupported frame type")

// FCS computes the IEEE CRC-32 frame check sequence over data.
func FCS(data []byte) uint32 {
	return crc32.ChecksumIEEE(data)
}

// Serialize renders a frame to wire bytes with the FCS appended.
func Serialize(f Frame) ([]byte, error) {
	return AppendSerialize(nil, f)
}

// AppendSerialize appends the frame's wire bytes (including FCS) to
// dst and returns the extended slice. Pass a reusable buffer sliced
// to zero length (buf[:0]) to serialize without allocating — the hot
// paths in radio/mac/core keep one scratch buffer per station and
// rely on the medium copying transmitted bytes out of it.
func AppendSerialize(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	b, err := f.AppendTo(dst)
	if err != nil {
		return dst, err
	}
	fcs := FCS(b[start:])
	return append(b, byte(fcs), byte(fcs>>8), byte(fcs>>16), byte(fcs>>24)), nil
}

// AppendFCS appends the 4-byte FCS for b to b.
func AppendFCS(b []byte) []byte {
	fcs := FCS(b)
	return append(b, byte(fcs), byte(fcs>>8), byte(fcs>>16), byte(fcs>>24))
}

// CheckFCS verifies the trailing FCS and returns the frame bytes with
// the FCS stripped.
func CheckFCS(data []byte) ([]byte, error) {
	if len(data) < FCSLen {
		return nil, errShortFrame
	}
	body := data[:len(data)-FCSLen]
	want := uint32(data[len(data)-4]) | uint32(data[len(data)-3])<<8 |
		uint32(data[len(data)-2])<<16 | uint32(data[len(data)-1])<<24
	if FCS(body) != want {
		return nil, ErrBadFCS
	}
	return body, nil
}

// Decode parses a full frame including FCS. It verifies the FCS first
// (as the PHY does) and then dispatches on Frame Control.
func Decode(data []byte) (Frame, error) {
	body, err := CheckFCS(data)
	if err != nil {
		return nil, err
	}
	return DecodeNoFCS(body)
}

// DecodeNoFCS parses a frame whose FCS has already been stripped into
// a freshly allocated struct.
func DecodeNoFCS(body []byte) (Frame, error) {
	f, err := frameFor(body, nil)
	if err != nil {
		return nil, err
	}
	if err := f.DecodeFromBytes(body); err != nil {
		return nil, err
	}
	return f, nil
}

// frameFor dispatches on the Frame Control field and returns the
// struct to decode into: dec's pooled instance when dec is non-nil, a
// fresh allocation otherwise.
func frameFor(body []byte, dec *Decoder) (Frame, error) {
	if len(body) < 2 {
		return nil, errShortFrame
	}
	fc := ParseFrameControl(getU16(body))
	if fc.Version != 0 {
		return nil, fmt.Errorf("dot11: unsupported protocol version %d", fc.Version)
	}
	switch fc.Type {
	case TypeControl:
		switch fc.Subtype {
		case SubtypeACK:
			if dec != nil {
				return &dec.ack, nil
			}
			return &Ack{}, nil
		case SubtypeCTS:
			if dec != nil {
				return &dec.cts, nil
			}
			return &CTS{}, nil
		case SubtypeRTS:
			if dec != nil {
				return &dec.rts, nil
			}
			return &RTS{}, nil
		case SubtypePSPoll:
			if dec != nil {
				return &dec.pspoll, nil
			}
			return &PSPoll{}, nil
		case SubtypeBlockAckReq:
			if dec != nil {
				return &dec.bar, nil
			}
			return &BlockAckReq{}, nil
		case SubtypeBlockAck:
			if dec != nil {
				return &dec.ba, nil
			}
			return &BlockAck{}, nil
		default:
			return nil, fmt.Errorf("%w: control subtype %d", ErrUnsupportedFrame, fc.Subtype)
		}
	case TypeManagement:
		switch fc.Subtype {
		case SubtypeBeacon:
			if dec != nil {
				return &dec.beacon, nil
			}
			return &Beacon{}, nil
		case SubtypeProbeReq:
			if dec != nil {
				return &dec.probeReq, nil
			}
			return &ProbeReq{}, nil
		case SubtypeProbeResp:
			if dec != nil {
				return &dec.probeResp, nil
			}
			return &ProbeResp{}, nil
		case SubtypeDeauth:
			if dec != nil {
				return &dec.deauth, nil
			}
			return &Deauth{}, nil
		case SubtypeDisassoc:
			if dec != nil {
				return &dec.disassoc, nil
			}
			return &Disassoc{}, nil
		case SubtypeAuth:
			if dec != nil {
				return &dec.auth, nil
			}
			return &Auth{}, nil
		case SubtypeAssocReq:
			if dec != nil {
				return &dec.assocReq, nil
			}
			return &AssocReq{}, nil
		case SubtypeAssocResp:
			if dec != nil {
				return &dec.assocResp, nil
			}
			return &AssocResp{}, nil
		case SubtypeAction:
			if dec != nil {
				return &dec.action, nil
			}
			return &Action{}, nil
		default:
			return nil, fmt.Errorf("%w: management subtype %d", ErrUnsupportedFrame, fc.Subtype)
		}
	case TypeData:
		switch fc.Subtype {
		case SubtypeData, SubtypeNull, SubtypeQoSData, SubtypeQoSNull:
			if dec != nil {
				return &dec.data, nil
			}
			return &Data{}, nil
		default:
			return nil, fmt.Errorf("%w: data subtype %d", ErrUnsupportedFrame, fc.Subtype)
		}
	default:
		return nil, fmt.Errorf("%w: type %d", ErrUnsupportedFrame, fc.Type)
	}
}

// Decoder decodes frames into a pooled instance per frame type, so a
// steady stream of decodes allocates nothing: the returned Frame is
// valid only until the Decoder's next decode of the same type, and —
// like every DecodeFromBytes — aliases the input buffer. Use one
// Decoder per station (the simulator is single-threaded per stop) and
// only for synchronous processing; retain by copying.
type Decoder struct {
	ack       Ack
	cts       CTS
	rts       RTS
	pspoll    PSPoll
	bar       BlockAckReq
	ba        BlockAck
	beacon    Beacon
	probeReq  ProbeReq
	probeResp ProbeResp
	deauth    Deauth
	disassoc  Disassoc
	auth      Auth
	assocReq  AssocReq
	assocResp AssocResp
	action    Action
	data      Data
}

// Decode parses a full frame including FCS into the decoder's pooled
// instance for its type, verifying the FCS first.
func (dec *Decoder) Decode(data []byte) (Frame, error) {
	body, err := CheckFCS(data)
	if err != nil {
		return nil, err
	}
	return dec.DecodeNoFCS(body)
}

// DecodeNoFCS parses a frame whose FCS has already been stripped into
// the decoder's pooled instance for its type.
func (dec *Decoder) DecodeNoFCS(body []byte) (Frame, error) {
	f, err := frameFor(body, dec)
	if err != nil {
		return nil, err
	}
	if err := f.DecodeFromBytes(body); err != nil {
		return nil, err
	}
	return f, nil
}

// NeedsAck reports whether a frame of this type solicits an
// acknowledgement: unicast management and data frames do; control
// frames, broadcast and multicast frames do not. The decision uses
// only the Frame Control field and Address 1 — nothing about the
// frame's legitimacy — which is exactly the Polite WiFi root cause.
func NeedsAck(fc FrameControl, ra MAC) bool {
	if !ra.IsUnicast() {
		return false
	}
	switch fc.Type {
	case TypeManagement, TypeData:
		return true
	}
	return false
}

// WireLen reports the serialized length of a frame including FCS
// without allocating the full encoding more than once.
func WireLen(f Frame) (int, error) {
	b, err := f.AppendTo(nil)
	if err != nil {
		return 0, err
	}
	return len(b) + FCSLen, nil
}

// AckFor constructs the acknowledgement a receiver transmits in
// response to frame f. The ACK's receiver address is copied verbatim
// from the soliciting frame's transmitter address — even when that
// address is fake (Figure 2: the victim ACKs to aa:bb:bb:bb:bb:bb).
func AckFor(f Frame) *Ack {
	return &Ack{RA: f.TransmitterAddress()}
}

// CTSFor constructs the clear-to-send response to an RTS. elapsed is
// the time consumed before the CTS's NAV starts (one SIFS plus the
// CTS airtime); the remaining reservation is the RTS duration minus
// elapsed, clamped at zero. The subtraction happens here, in signed
// time — a caller-side `uint16(r.Duration - ...)` wraps to ~65535 µs
// when a short RTS carries a duration smaller than the overhead,
// turning a stale reservation into a 65 ms channel blackout.
func CTSFor(r *RTS, elapsed eventsim.Time) *CTS {
	var dur uint16
	if need := eventsim.Time(r.Duration)*eventsim.Microsecond - elapsed; need > 0 {
		dur = uint16(need / eventsim.Microsecond)
	}
	return &CTS{RA: r.TA, Duration: dur}
}
