package dot11

import "testing"

// TestSequenceControlPackProperties is the exhaustive pack/unpack
// property test for the 16-bit sequence-control field (the quick.Check
// sample lives in dot11_test.go): every wire value survives parse→pack
// exactly, and packing is invariant under the 12-bit sequence wrap (an
// unwrapped counter must land on the same wire bytes NextSeq
// arithmetic would produce — the unmasked-shift class politevet's
// durwrap packshift check now flags at the source).
func TestSequenceControlPackProperties(t *testing.T) {
	for v := 0; v <= 0xffff; v++ {
		sc := ParseSequenceControl(uint16(v))
		if got := sc.Uint16(); got != uint16(v) {
			t.Fatalf("ParseSequenceControl(%#04x).Uint16() = %#04x", v, got)
		}
		if sc.Fragment > 0xf || sc.Number > 0xfff {
			t.Fatalf("ParseSequenceControl(%#04x) out of field range: %+v", v, sc)
		}
	}
	for num := 0; num <= 0xffff; num += 7 {
		for _, frag := range []uint8{0, 1, 0xf} {
			wide := SequenceControl{Fragment: frag, Number: uint16(num)}
			wrapped := SequenceControl{Fragment: frag, Number: uint16(num) & 0xfff}
			if wide.Uint16() != wrapped.Uint16() {
				t.Fatalf("pack not invariant under the 12-bit wrap: Number=%#x frag=%#x: %#04x != %#04x",
					num, frag, wide.Uint16(), wrapped.Uint16())
			}
		}
	}
}

// TestBlockAckPackMasked pins the same property for the Block Ack
// control fields: out-of-range TID and an unwrapped StartSeq must
// truncate to their field widths instead of smearing into (or past)
// the neighbouring bits.
func TestBlockAckPackMasked(t *testing.T) {
	bar := &BlockAckReq{RA: MAC{1, 2, 3, 4, 5, 6}, TA: MAC{6, 5, 4, 3, 2, 1}, TID: 0x15, StartSeq: 0x1234}
	b, err := bar.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got BlockAckReq
	if err := got.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got.TID != 0x15&0xf || got.StartSeq != 0x1234&0xfff {
		t.Fatalf("BlockAckReq pack did not truncate to field widths: %+v", got)
	}

	ba := &BlockAck{RA: MAC{1, 2, 3, 4, 5, 6}, TA: MAC{6, 5, 4, 3, 2, 1}, TID: 0xff, StartSeq: 0xffff, Bitmap: 0xdeadbeef}
	b, err = ba.AppendTo(nil)
	if err != nil {
		t.Fatal(err)
	}
	var got2 BlockAck
	if err := got2.DecodeFromBytes(b); err != nil {
		t.Fatal(err)
	}
	if got2.TID != 0xf || got2.StartSeq != 0xfff || got2.Bitmap != 0xdeadbeef {
		t.Fatalf("BlockAck pack did not truncate to field widths: %+v", got2)
	}
}
