package dot11

import "fmt"

// IEID identifies an information element.
type IEID uint8

// Information element IDs used by the simulator.
const (
	IESSID           IEID = 0
	IESupportedRates IEID = 1
	IEDSParam        IEID = 3 // current channel
	IETIM            IEID = 5 // traffic indication map
	IERSN            IEID = 48
	IEVendor         IEID = 221
)

// IE is a type-length-value information element carried in management
// frame bodies.
type IE struct {
	ID   IEID
	Data []byte
}

// String implements fmt.Stringer.
func (ie IE) String() string {
	switch ie.ID {
	case IESSID:
		return fmt.Sprintf("SSID=%q", string(ie.Data))
	case IEDSParam:
		if len(ie.Data) == 1 {
			return fmt.Sprintf("Channel=%d", ie.Data[0])
		}
	case IERSN:
		return "RSN (WPA2)"
	}
	return fmt.Sprintf("IE(%d,%d bytes)", ie.ID, len(ie.Data))
}

func appendIEs(b []byte, ies []IE) ([]byte, error) {
	for _, ie := range ies {
		if len(ie.Data) > 255 {
			return nil, fmt.Errorf("dot11: IE %d too long (%d bytes)", ie.ID, len(ie.Data))
		}
		b = append(b, byte(ie.ID), byte(len(ie.Data)))
		b = append(b, ie.Data...)
	}
	return b, nil
}

// parseIEsInto appends the elements encoded in data to ies (pass
// ies[:0] to reuse a previous decode's backing array). Each element's
// Data aliases the input buffer — no bytes are copied; callers that
// outlive the buffer must copy.
func parseIEsInto(ies []IE, data []byte) ([]IE, error) {
	for len(data) > 0 {
		if len(data) < 2 {
			return nil, errShortFrame
		}
		id, n := IEID(data[0]), int(data[1])
		if len(data) < 2+n {
			return nil, errShortFrame
		}
		ies = append(ies, IE{ID: id, Data: data[2 : 2+n : 2+n]})
		data = data[2+n:]
	}
	return ies, nil
}

// SSIDElement builds an SSID information element.
func SSIDElement(ssid string) IE { return IE{ID: IESSID, Data: []byte(ssid)} }

// DSParamElement builds a DS Parameter Set element announcing the
// channel.
func DSParamElement(channel uint8) IE { return IE{ID: IEDSParam, Data: []byte{channel}} }

// RatesElement builds a Supported Rates element from rates in Mbps
// (each encoded in 500 kbps units).
func RatesElement(mbps ...float64) IE {
	data := make([]byte, 0, len(mbps))
	for _, r := range mbps {
		data = append(data, byte(r*2))
	}
	return IE{ID: IESupportedRates, Data: data}
}

// RSNElement builds a minimal RSN (WPA2) element advertising
// CCMP-128 with PSK authentication.
func RSNElement() IE {
	// version 1, group cipher CCMP, 1 pairwise cipher CCMP, 1 AKM PSK.
	oui := []byte{0x00, 0x0f, 0xac}
	data := []byte{0x01, 0x00}
	data = append(data, oui...)
	data = append(data, 0x04)       // group: CCMP
	data = append(data, 0x01, 0x00) // 1 pairwise suite
	data = append(data, oui...)
	data = append(data, 0x04)       // pairwise: CCMP
	data = append(data, 0x01, 0x00) // 1 AKM suite
	data = append(data, oui...)
	data = append(data, 0x02)       // AKM: PSK
	data = append(data, 0x00, 0x00) // RSN capabilities
	return IE{ID: IERSN, Data: data}
}

// TIMElement builds a Traffic Indication Map element. dtimCount
// counts down to the next DTIM beacon; buffered lists association IDs
// with buffered traffic (bit set in the partial virtual bitmap).
func TIMElement(dtimCount, dtimPeriod uint8, buffered []uint16) IE {
	maxAID := uint16(0)
	for _, aid := range buffered {
		if aid > maxAID {
			maxAID = aid
		}
	}
	bitmap := make([]byte, maxAID/8+1)
	ctl := byte(0)
	for _, aid := range buffered {
		bitmap[aid/8] |= 1 << (aid % 8)
	}
	data := []byte{dtimCount, dtimPeriod, ctl}
	data = append(data, bitmap...)
	return IE{ID: IETIM, Data: data}
}

// FindIE returns the first element with the given ID.
func FindIE(ies []IE, id IEID) (IE, bool) {
	for _, ie := range ies {
		if ie.ID == id {
			return ie, true
		}
	}
	return IE{}, false
}

// FindSSID extracts the SSID string from an element list.
func FindSSID(ies []IE) (string, bool) {
	ie, ok := FindIE(ies, IESSID)
	if !ok {
		return "", false
	}
	return string(ie.Data), true
}

// FindChannel extracts the DS Parameter channel from an element list.
func FindChannel(ies []IE) (uint8, bool) {
	ie, ok := FindIE(ies, IEDSParam)
	if !ok || len(ie.Data) != 1 {
		return 0, false
	}
	return ie.Data[0], true
}

// HasRSN reports whether an RSN (WPA2) element is present.
func HasRSN(ies []IE) bool {
	_, ok := FindIE(ies, IERSN)
	return ok
}

// TIMBuffered reports whether the TIM element in ies marks aid as
// having buffered traffic.
func TIMBuffered(ies []IE, aid uint16) bool {
	ie, ok := FindIE(ies, IETIM)
	if !ok || len(ie.Data) < 3 {
		return false
	}
	bitmap := ie.Data[3:]
	idx := int(aid / 8)
	if idx >= len(bitmap) {
		return false
	}
	return bitmap[idx]&(1<<(aid%8)) != 0
}
