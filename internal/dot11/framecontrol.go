package dot11

import "fmt"

// FrameType is the 2-bit frame class from the Frame Control field.
type FrameType uint8

// Frame classes.
const (
	TypeManagement FrameType = 0
	TypeControl    FrameType = 1
	TypeData       FrameType = 2
)

// String implements fmt.Stringer.
func (t FrameType) String() string {
	switch t {
	case TypeManagement:
		return "Management"
	case TypeControl:
		return "Control"
	case TypeData:
		return "Data"
	}
	return fmt.Sprintf("Reserved(%d)", uint8(t))
}

// Subtype is the 4-bit frame subtype. Its meaning depends on the
// frame class; the constants below use the standard's encodings.
type Subtype uint8

// Management subtypes.
const (
	SubtypeAssocReq    Subtype = 0
	SubtypeAssocResp   Subtype = 1
	SubtypeReassocReq  Subtype = 2
	SubtypeReassocResp Subtype = 3
	SubtypeProbeReq    Subtype = 4
	SubtypeProbeResp   Subtype = 5
	SubtypeBeacon      Subtype = 8
	SubtypeDisassoc    Subtype = 10
	SubtypeAuth        Subtype = 11
	SubtypeDeauth      Subtype = 12
	SubtypeAction      Subtype = 13
)

// Control subtypes.
const (
	SubtypeBlockAckReq Subtype = 8
	SubtypeBlockAck    Subtype = 9
	SubtypePSPoll      Subtype = 10
	SubtypeRTS         Subtype = 11
	SubtypeCTS         Subtype = 12
	SubtypeACK         Subtype = 13
)

// Data subtypes.
const (
	SubtypeData    Subtype = 0
	SubtypeNull    Subtype = 4
	SubtypeQoSData Subtype = 8
	SubtypeQoSNull Subtype = 12
)

// FrameControl is the decoded 16-bit Frame Control field that starts
// every 802.11 frame.
type FrameControl struct {
	Version   uint8 // protocol version, always 0 today
	Type      FrameType
	Subtype   Subtype
	ToDS      bool
	FromDS    bool
	MoreFrag  bool
	Retry     bool
	PowerMgmt bool // transmitter will enter power-save after this exchange
	MoreData  bool
	Protected bool // frame body is encrypted (CCMP/TKIP)
	Order     bool
}

// Uint16 packs the field into its wire representation.
func (fc FrameControl) Uint16() uint16 {
	v := uint16(fc.Version&0x3) |
		uint16(fc.Type&0x3)<<2 |
		uint16(fc.Subtype&0xf)<<4
	if fc.ToDS {
		v |= 1 << 8
	}
	if fc.FromDS {
		v |= 1 << 9
	}
	if fc.MoreFrag {
		v |= 1 << 10
	}
	if fc.Retry {
		v |= 1 << 11
	}
	if fc.PowerMgmt {
		v |= 1 << 12
	}
	if fc.MoreData {
		v |= 1 << 13
	}
	if fc.Protected {
		v |= 1 << 14
	}
	if fc.Order {
		v |= 1 << 15
	}
	return v
}

// ParseFrameControl unpacks the wire representation.
func ParseFrameControl(v uint16) FrameControl {
	return FrameControl{
		Version:   uint8(v & 0x3),
		Type:      FrameType(v >> 2 & 0x3),
		Subtype:   Subtype(v >> 4 & 0xf),
		ToDS:      v&(1<<8) != 0,
		FromDS:    v&(1<<9) != 0,
		MoreFrag:  v&(1<<10) != 0,
		Retry:     v&(1<<11) != 0,
		PowerMgmt: v&(1<<12) != 0,
		MoreData:  v&(1<<13) != 0,
		Protected: v&(1<<14) != 0,
		Order:     v&(1<<15) != 0,
	}
}

// Name returns the Wireshark-style name of the type/subtype pair,
// e.g. "Null function (No data)" or "Acknowledgement".
func (fc FrameControl) Name() string {
	switch fc.Type {
	case TypeManagement:
		switch fc.Subtype {
		case SubtypeAssocReq:
			return "Association Request"
		case SubtypeAssocResp:
			return "Association Response"
		case SubtypeReassocReq:
			return "Reassociation Request"
		case SubtypeReassocResp:
			return "Reassociation Response"
		case SubtypeProbeReq:
			return "Probe Request"
		case SubtypeProbeResp:
			return "Probe Response"
		case SubtypeBeacon:
			return "Beacon frame"
		case SubtypeDisassoc:
			return "Disassociation"
		case SubtypeAuth:
			return "Authentication"
		case SubtypeDeauth:
			return "Deauthentication"
		case SubtypeAction:
			return "Action"
		}
	case TypeControl:
		switch fc.Subtype {
		case SubtypeBlockAckReq:
			return "Block Ack Request"
		case SubtypeBlockAck:
			return "Block Ack"
		case SubtypePSPoll:
			return "PS-Poll"
		case SubtypeRTS:
			return "Request-to-send"
		case SubtypeCTS:
			return "Clear-to-send"
		case SubtypeACK:
			return "Acknowledgement"
		}
	case TypeData:
		switch fc.Subtype {
		case SubtypeData:
			return "Data"
		case SubtypeNull:
			return "Null function (No data)"
		case SubtypeQoSData:
			return "QoS Data"
		case SubtypeQoSNull:
			return "QoS Null function (No data)"
		}
	}
	return fmt.Sprintf("%s subtype %d", fc.Type, fc.Subtype)
}

// FlagString renders set flags the way Wireshark's Info column does,
// e.g. "Flags=...P...T".
func (fc FrameControl) FlagString() string {
	b := []byte("........")
	if fc.Order {
		b[0] = 'O'
	}
	if fc.Protected {
		b[1] = 'P'
	}
	if fc.MoreData {
		b[2] = 'M'
	}
	if fc.PowerMgmt {
		b[3] = 'P'
	}
	if fc.Retry {
		b[4] = 'R'
	}
	if fc.MoreFrag {
		b[5] = 'F'
	}
	if fc.FromDS {
		b[6] = 'F'
	}
	if fc.ToDS {
		b[7] = 'T'
	}
	return "Flags=" + string(b)
}

// SequenceControl is the 16-bit fragment/sequence number field.
type SequenceControl struct {
	Fragment uint8  // 4 bits
	Number   uint16 // 12 bits, modulo 4096
}

// Uint16 packs the field. Number is masked to its 12 bits before the
// shift (mirroring NextSeq): a counter that was advanced without
// NextSeq's wrap must roll over on the wire instead of smearing into
// whatever the pack's integer width leaves above the shift.
func (sc SequenceControl) Uint16() uint16 {
	return uint16(sc.Fragment&0xf) | (sc.Number&0xfff)<<4
}

// ParseSequenceControl unpacks the field.
func ParseSequenceControl(v uint16) SequenceControl {
	return SequenceControl{Fragment: uint8(v & 0xf), Number: v >> 4 & 0xfff}
}

// NextSeq advances a sequence number modulo 4096.
func NextSeq(n uint16) uint16 { return (n + 1) & 0xfff }
