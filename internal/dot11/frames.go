package dot11

import (
	"fmt"
)

// Frame is implemented by every decoded 802.11 frame. The codec is
// symmetric: AppendTo produces the exact bytes DecodeFromBytes
// consumes (MAC header and body, without the trailing FCS — the FCS
// is added and checked by Serialize/Decode).
type Frame interface {
	// Control returns the frame's Frame Control field.
	Control() FrameControl
	// ReceiverAddress returns Address 1, the station the frame is
	// destined for on the air. This is the only field a receiver
	// checks before acknowledging — the root cause of Polite WiFi.
	ReceiverAddress() MAC
	// TransmitterAddress returns the MAC the response (ACK/CTS) is
	// sent to, or the zero MAC for frames with no TA (ACK, CTS).
	TransmitterAddress() MAC
	// AppendTo appends the frame's wire representation (without FCS).
	AppendTo(b []byte) ([]byte, error)
	// DecodeFromBytes parses the frame from data (without FCS). The
	// decoded frame aliases data — variable-length fields (payloads,
	// protected bodies, information-element contents) point into the
	// input buffer rather than copies, so a caller that retains the
	// frame beyond the buffer's lifetime must copy those fields. Every
	// field is overwritten, so a frame struct may be reused across
	// decodes (see Decoder).
	DecodeFromBytes(data []byte) error
	// Info renders the Wireshark-style Info column string.
	Info() string
}

// --- Control frames -------------------------------------------------

// Ack is the 802.11 acknowledgement control frame: 2 bytes FC,
// 2 bytes Duration, 6 bytes RA. There is no transmitter address —
// the ACK is matched to the preceding frame purely by timing, which
// is why an ACK elicited by a fake frame flows to the fake MAC with
// no questions asked.
type Ack struct {
	Duration uint16
	RA       MAC
}

// Control implements Frame.
func (a *Ack) Control() FrameControl {
	return FrameControl{Type: TypeControl, Subtype: SubtypeACK}
}

// ReceiverAddress implements Frame.
func (a *Ack) ReceiverAddress() MAC { return a.RA }

// TransmitterAddress implements Frame; ACKs carry none.
func (a *Ack) TransmitterAddress() MAC { return ZeroMAC }

// AppendTo implements Frame.
func (a *Ack) AppendTo(b []byte) ([]byte, error) {
	var hdr [10]byte
	putU16(hdr[0:], a.Control().Uint16())
	putU16(hdr[2:], a.Duration)
	putMAC(hdr[4:], a.RA)
	return append(b, hdr[:]...), nil
}

// DecodeFromBytes implements Frame.
func (a *Ack) DecodeFromBytes(data []byte) error {
	if len(data) < 10 {
		return errShortFrame
	}
	a.Duration = getU16(data[2:])
	a.RA = getMAC(data[4:])
	return nil
}

// Info implements Frame.
func (a *Ack) Info() string {
	return "Acknowledgement, " + a.Control().FlagString()
}

// CTS is the clear-to-send control frame; same layout as Ack.
type CTS struct {
	Duration uint16
	RA       MAC
}

// Control implements Frame.
func (c *CTS) Control() FrameControl {
	return FrameControl{Type: TypeControl, Subtype: SubtypeCTS}
}

// ReceiverAddress implements Frame.
func (c *CTS) ReceiverAddress() MAC { return c.RA }

// TransmitterAddress implements Frame; CTS carries none.
func (c *CTS) TransmitterAddress() MAC { return ZeroMAC }

// AppendTo implements Frame.
func (c *CTS) AppendTo(b []byte) ([]byte, error) {
	var hdr [10]byte
	putU16(hdr[0:], c.Control().Uint16())
	putU16(hdr[2:], c.Duration)
	putMAC(hdr[4:], c.RA)
	return append(b, hdr[:]...), nil
}

// DecodeFromBytes implements Frame.
func (c *CTS) DecodeFromBytes(data []byte) error {
	if len(data) < 10 {
		return errShortFrame
	}
	c.Duration = getU16(data[2:])
	c.RA = getMAC(data[4:])
	return nil
}

// Info implements Frame.
func (c *CTS) Info() string {
	return "Clear-to-send, " + c.Control().FlagString()
}

// RTS is the request-to-send control frame: FC, Duration, RA, TA.
// RTS/CTS cannot be encrypted (every nearby station must parse them to
// honour the NAV), which is why Polite WiFi is unpreventable even with
// a hypothetical instant WPA2 decoder (§2.2).
type RTS struct {
	Duration uint16
	RA       MAC
	TA       MAC
}

// Control implements Frame.
func (r *RTS) Control() FrameControl {
	return FrameControl{Type: TypeControl, Subtype: SubtypeRTS}
}

// ReceiverAddress implements Frame.
func (r *RTS) ReceiverAddress() MAC { return r.RA }

// TransmitterAddress implements Frame.
func (r *RTS) TransmitterAddress() MAC { return r.TA }

// AppendTo implements Frame.
func (r *RTS) AppendTo(b []byte) ([]byte, error) {
	var hdr [16]byte
	putU16(hdr[0:], r.Control().Uint16())
	putU16(hdr[2:], r.Duration)
	putMAC(hdr[4:], r.RA)
	putMAC(hdr[10:], r.TA)
	return append(b, hdr[:]...), nil
}

// DecodeFromBytes implements Frame.
func (r *RTS) DecodeFromBytes(data []byte) error {
	if len(data) < 16 {
		return errShortFrame
	}
	r.Duration = getU16(data[2:])
	r.RA = getMAC(data[4:])
	r.TA = getMAC(data[10:])
	return nil
}

// Info implements Frame.
func (r *RTS) Info() string {
	return "Request-to-send, " + r.Control().FlagString()
}

// PSPoll is the power-save poll control frame. The Duration field
// carries the association ID with the two top bits set.
type PSPoll struct {
	AID   uint16
	BSSID MAC
	TA    MAC
}

// Control implements Frame.
func (p *PSPoll) Control() FrameControl {
	return FrameControl{Type: TypeControl, Subtype: SubtypePSPoll}
}

// ReceiverAddress implements Frame.
func (p *PSPoll) ReceiverAddress() MAC { return p.BSSID }

// TransmitterAddress implements Frame.
func (p *PSPoll) TransmitterAddress() MAC { return p.TA }

// AppendTo implements Frame.
func (p *PSPoll) AppendTo(b []byte) ([]byte, error) {
	var hdr [16]byte
	putU16(hdr[0:], p.Control().Uint16())
	putU16(hdr[2:], p.AID|0xc000)
	putMAC(hdr[4:], p.BSSID)
	putMAC(hdr[10:], p.TA)
	return append(b, hdr[:]...), nil
}

// DecodeFromBytes implements Frame.
func (p *PSPoll) DecodeFromBytes(data []byte) error {
	if len(data) < 16 {
		return errShortFrame
	}
	p.AID = getU16(data[2:]) &^ 0xc000
	p.BSSID = getMAC(data[4:])
	p.TA = getMAC(data[10:])
	return nil
}

// Info implements Frame.
func (p *PSPoll) Info() string {
	return fmt.Sprintf("PS-Poll, AID=%d, %s", p.AID, p.Control().FlagString())
}

// --- Header for management and data frames --------------------------

// Header is the common 24-byte MAC header of management and data
// frames (Address 4 and the QoS control field are handled by the
// frames that carry them).
type Header struct {
	FC       FrameControl
	Duration uint16
	Addr1    MAC // RA
	Addr2    MAC // TA
	Addr3    MAC // BSSID / DA / SA depending on ToDS/FromDS
	Seq      SequenceControl
}

const headerLen = 24

func (h *Header) appendTo(b []byte, fc FrameControl) []byte {
	var hdr [headerLen]byte
	putU16(hdr[0:], fc.Uint16())
	putU16(hdr[2:], h.Duration)
	putMAC(hdr[4:], h.Addr1)
	putMAC(hdr[10:], h.Addr2)
	putMAC(hdr[16:], h.Addr3)
	putU16(hdr[22:], h.Seq.Uint16())
	return append(b, hdr[:]...)
}

func (h *Header) decodeFrom(data []byte) error {
	if len(data) < headerLen {
		return errShortFrame
	}
	h.FC = ParseFrameControl(getU16(data))
	h.Duration = getU16(data[2:])
	h.Addr1 = getMAC(data[4:])
	h.Addr2 = getMAC(data[10:])
	h.Addr3 = getMAC(data[16:])
	h.Seq = ParseSequenceControl(getU16(data[22:]))
	return nil
}

// DA returns the destination address per the ToDS/FromDS rules.
func (h *Header) DA() MAC {
	switch {
	case h.FC.ToDS && !h.FC.FromDS:
		return h.Addr3
	default:
		return h.Addr1
	}
}

// SA returns the source address per the ToDS/FromDS rules.
func (h *Header) SA() MAC {
	switch {
	case h.FC.FromDS && !h.FC.ToDS:
		return h.Addr3
	default:
		return h.Addr2
	}
}

// BSSID returns the BSS identifier per the ToDS/FromDS rules.
func (h *Header) BSSID() MAC {
	switch {
	case h.FC.ToDS && !h.FC.FromDS:
		return h.Addr1
	case !h.FC.ToDS && h.FC.FromDS:
		return h.Addr2
	default:
		return h.Addr3
	}
}

// --- Data frames -----------------------------------------------------

// Data is a (possibly protected) data frame. When the Protected flag
// is set, Payload holds the CCMP encapsulation (header + ciphertext +
// MIC) produced by package crypto80211.
type Data struct {
	Header
	QoS bool  // include a QoS Control field (subtype 8)
	TID uint8 // traffic identifier when QoS
	// AckPolicy is the QoS ack policy (bits 5-6 of QoS Control):
	// AckPolicyNormal solicits an immediate ACK; AckPolicyBlockAck
	// defers acknowledgement to a BlockAckReq/BlockAck exchange.
	AckPolicy uint8
	Null      bool   // null-function frame: no body at all
	Payload   []byte // absent for null frames
}

// QoS ack policies.
const (
	AckPolicyNormal   uint8 = 0
	AckPolicyNoAck    uint8 = 1
	AckPolicyBlockAck uint8 = 3
)

// Control implements Frame.
func (d *Data) Control() FrameControl {
	fc := d.FC
	fc.Type = TypeData
	switch {
	case d.QoS && d.Null:
		fc.Subtype = SubtypeQoSNull
	case d.QoS:
		fc.Subtype = SubtypeQoSData
	case d.Null:
		fc.Subtype = SubtypeNull
	default:
		fc.Subtype = SubtypeData
	}
	return fc
}

// ReceiverAddress implements Frame.
func (d *Data) ReceiverAddress() MAC { return d.Addr1 }

// TransmitterAddress implements Frame.
func (d *Data) TransmitterAddress() MAC { return d.Addr2 }

// AppendTo implements Frame.
func (d *Data) AppendTo(b []byte) ([]byte, error) {
	b = d.Header.appendTo(b, d.Control())
	if d.QoS {
		var qc [2]byte
		putU16(qc[:], uint16(d.TID&0xf)|uint16(d.AckPolicy&0x3)<<5)
		b = append(b, qc[:]...)
	}
	if !d.Null {
		b = append(b, d.Payload...)
	}
	return b, nil
}

// DecodeFromBytes implements Frame.
func (d *Data) DecodeFromBytes(data []byte) error {
	if err := d.Header.decodeFrom(data); err != nil {
		return err
	}
	rest := data[headerLen:]
	d.QoS = d.FC.Subtype&0x8 != 0
	d.Null = d.FC.Subtype&0x4 != 0
	d.TID, d.AckPolicy = 0, 0
	if d.QoS {
		if len(rest) < 2 {
			return errShortFrame
		}
		qc := getU16(rest)
		d.TID = uint8(qc & 0xf)
		d.AckPolicy = uint8(qc >> 5 & 0x3)
		rest = rest[2:]
	}
	if d.Null {
		d.Payload = nil
	} else {
		d.Payload = rest // aliases the input; retainers must copy
	}
	return nil
}

// Info implements Frame.
func (d *Data) Info() string {
	return fmt.Sprintf("%s, SN=%d, FN=%d, %s",
		d.Control().Name(), d.Seq.Number, d.Seq.Fragment, d.Control().FlagString())
}

// NewNullFrame builds the fake frame used throughout the paper: a
// null-function data frame with no payload and no encryption, whose
// only valid field is the receiver address.
func NewNullFrame(ra, ta, bssid MAC, seq uint16) *Data {
	return &Data{
		Header: Header{
			Addr1: ra,
			Addr2: ta,
			Addr3: bssid,
			Seq:   SequenceControl{Number: seq},
		},
		Null: true,
	}
}

// --- Management frames ----------------------------------------------

// Capability bits advertised in beacons and association frames.
const (
	CapESS     uint16 = 1 << 0
	CapIBSS    uint16 = 1 << 1
	CapPrivacy uint16 = 1 << 4 // WEP/WPA/WPA2 required
)

// Beacon is the AP's periodic announcement frame.
type Beacon struct {
	Header
	Timestamp  uint64 // TSF in microseconds
	IntervalTU uint16 // beacon interval in time units (1 TU = 1024 µs)
	Capability uint16
	IEs        []IE
}

// Control implements Frame.
func (f *Beacon) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeBeacon
	return fc
}

// ReceiverAddress implements Frame.
func (f *Beacon) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *Beacon) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *Beacon) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	var fixed [12]byte
	putU64(fixed[0:], f.Timestamp)
	putU16(fixed[8:], f.IntervalTU)
	putU16(fixed[10:], f.Capability)
	b = append(b, fixed[:]...)
	return appendIEs(b, f.IEs)
}

// DecodeFromBytes implements Frame.
func (f *Beacon) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	rest := data[headerLen:]
	if len(rest) < 12 {
		return errShortFrame
	}
	f.Timestamp = getU64(rest)
	f.IntervalTU = getU16(rest[8:])
	f.Capability = getU16(rest[10:])
	var err error
	f.IEs, err = parseIEsInto(f.IEs[:0], rest[12:])
	return err
}

// Info implements Frame.
func (f *Beacon) Info() string {
	ssid, _ := FindSSID(f.IEs)
	return fmt.Sprintf("Beacon frame, SN=%d, FN=0, %s, SSID=%q",
		f.Seq.Number, f.Control().FlagString(), ssid)
}

// SSID returns the network name from the frame's IEs.
func (f *Beacon) SSID() string {
	s, _ := FindSSID(f.IEs)
	return s
}

// ProbeReq is a station's active scan request.
type ProbeReq struct {
	Header
	IEs []IE
}

// Control implements Frame.
func (f *ProbeReq) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeProbeReq
	return fc
}

// ReceiverAddress implements Frame.
func (f *ProbeReq) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *ProbeReq) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *ProbeReq) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	return appendIEs(b, f.IEs)
}

// DecodeFromBytes implements Frame.
func (f *ProbeReq) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	var err error
	f.IEs, err = parseIEsInto(f.IEs[:0], data[headerLen:])
	return err
}

// Info implements Frame.
func (f *ProbeReq) Info() string {
	ssid, _ := FindSSID(f.IEs)
	return fmt.Sprintf("Probe Request, SN=%d, FN=0, %s, SSID=%q",
		f.Seq.Number, f.Control().FlagString(), ssid)
}

// ProbeResp is the AP's answer to a probe request; same fixed fields
// as a beacon.
type ProbeResp struct {
	Header
	Timestamp  uint64
	IntervalTU uint16
	Capability uint16
	IEs        []IE
}

// Control implements Frame.
func (f *ProbeResp) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeProbeResp
	return fc
}

// ReceiverAddress implements Frame.
func (f *ProbeResp) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *ProbeResp) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *ProbeResp) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	var fixed [12]byte
	putU64(fixed[0:], f.Timestamp)
	putU16(fixed[8:], f.IntervalTU)
	putU16(fixed[10:], f.Capability)
	b = append(b, fixed[:]...)
	return appendIEs(b, f.IEs)
}

// DecodeFromBytes implements Frame.
func (f *ProbeResp) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	rest := data[headerLen:]
	if len(rest) < 12 {
		return errShortFrame
	}
	f.Timestamp = getU64(rest)
	f.IntervalTU = getU16(rest[8:])
	f.Capability = getU16(rest[10:])
	var err error
	f.IEs, err = parseIEsInto(f.IEs[:0], rest[12:])
	return err
}

// Info implements Frame.
func (f *ProbeResp) Info() string {
	ssid, _ := FindSSID(f.IEs)
	return fmt.Sprintf("Probe Response, SN=%d, FN=0, %s, SSID=%q",
		f.Seq.Number, f.Control().FlagString(), ssid)
}

// ReasonCode explains deauthentication/disassociation.
type ReasonCode uint16

// Reason codes used by the simulator.
const (
	ReasonUnspecified        ReasonCode = 1
	ReasonPrevAuthExpired    ReasonCode = 2
	ReasonDeauthLeaving      ReasonCode = 3
	ReasonInactivity         ReasonCode = 4
	ReasonClass2FromNonAuth  ReasonCode = 6
	ReasonClass3FromNonAssoc ReasonCode = 7
)

// String implements fmt.Stringer.
func (r ReasonCode) String() string {
	switch r {
	case ReasonUnspecified:
		return "Unspecified reason"
	case ReasonPrevAuthExpired:
		return "Previous authentication no longer valid"
	case ReasonDeauthLeaving:
		return "Deauthenticated because sending STA is leaving"
	case ReasonInactivity:
		return "Disassociated due to inactivity"
	case ReasonClass2FromNonAuth:
		return "Class 2 frame received from nonauthenticated STA"
	case ReasonClass3FromNonAssoc:
		return "Class 3 frame received from nonassociated STA"
	}
	return fmt.Sprintf("Reason %d", uint16(r))
}

// Deauth is the deauthentication notification. Figure 3 of the paper
// shows APs firing these at the attacker — and then acknowledging the
// attacker's next fake frame anyway.
type Deauth struct {
	Header
	Reason ReasonCode
	// ProtectedBody carries the CCMP-encapsulated reason when the
	// Protected flag is set (802.11w protected management frames).
	ProtectedBody []byte
}

// Control implements Frame.
func (f *Deauth) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeDeauth
	return fc
}

// ReceiverAddress implements Frame.
func (f *Deauth) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *Deauth) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *Deauth) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	if f.FC.Protected {
		return append(b, f.ProtectedBody...), nil
	}
	var body [2]byte
	putU16(body[:], uint16(f.Reason))
	return append(b, body[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *Deauth) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	f.Reason, f.ProtectedBody = 0, nil
	if f.FC.Protected {
		f.ProtectedBody = data[headerLen:] // aliases the input
		return nil
	}
	if len(data) < headerLen+2 {
		return errShortFrame
	}
	f.Reason = ReasonCode(getU16(data[headerLen:]))
	return nil
}

// Info implements Frame.
func (f *Deauth) Info() string {
	return fmt.Sprintf("Deauthentication, SN=%d, FN=0, %s", f.Seq.Number, f.Control().FlagString())
}

// Disassoc is the disassociation notification (same layout as Deauth).
type Disassoc struct {
	Header
	Reason ReasonCode
}

// Control implements Frame.
func (f *Disassoc) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeDisassoc
	return fc
}

// ReceiverAddress implements Frame.
func (f *Disassoc) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *Disassoc) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *Disassoc) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	var body [2]byte
	putU16(body[:], uint16(f.Reason))
	return append(b, body[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *Disassoc) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	if len(data) < headerLen+2 {
		return errShortFrame
	}
	f.Reason = ReasonCode(getU16(data[headerLen:]))
	return nil
}

// Info implements Frame.
func (f *Disassoc) Info() string {
	return fmt.Sprintf("Disassociation, SN=%d, FN=0, %s", f.Seq.Number, f.Control().FlagString())
}

// StatusCode reports the result of auth/assoc exchanges.
type StatusCode uint16

// Status codes used by the simulator.
const (
	StatusSuccess StatusCode = 0
	StatusRefused StatusCode = 1
)

// Auth is the (open-system) authentication frame.
type Auth struct {
	Header
	Algorithm uint16 // 0 = open system
	AuthSeq   uint16 // transaction sequence, 1 or 2
	Status    StatusCode
}

// Control implements Frame.
func (f *Auth) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeAuth
	return fc
}

// ReceiverAddress implements Frame.
func (f *Auth) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *Auth) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *Auth) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	var body [6]byte
	putU16(body[0:], f.Algorithm)
	putU16(body[2:], f.AuthSeq)
	putU16(body[4:], uint16(f.Status))
	return append(b, body[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *Auth) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	if len(data) < headerLen+6 {
		return errShortFrame
	}
	f.Algorithm = getU16(data[headerLen:])
	f.AuthSeq = getU16(data[headerLen+2:])
	f.Status = StatusCode(getU16(data[headerLen+4:]))
	return nil
}

// Info implements Frame.
func (f *Auth) Info() string {
	return fmt.Sprintf("Authentication, SN=%d, FN=0, %s", f.Seq.Number, f.Control().FlagString())
}

// AssocReq is the association request management frame.
type AssocReq struct {
	Header
	Capability uint16
	IntervalTU uint16 // listen interval
	IEs        []IE
}

// Control implements Frame.
func (f *AssocReq) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeAssocReq
	return fc
}

// ReceiverAddress implements Frame.
func (f *AssocReq) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *AssocReq) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *AssocReq) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	var fixed [4]byte
	putU16(fixed[0:], f.Capability)
	putU16(fixed[2:], f.IntervalTU)
	b = append(b, fixed[:]...)
	return appendIEs(b, f.IEs)
}

// DecodeFromBytes implements Frame.
func (f *AssocReq) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	rest := data[headerLen:]
	if len(rest) < 4 {
		return errShortFrame
	}
	f.Capability = getU16(rest)
	f.IntervalTU = getU16(rest[2:])
	var err error
	f.IEs, err = parseIEsInto(f.IEs[:0], rest[4:])
	return err
}

// Info implements Frame.
func (f *AssocReq) Info() string {
	return fmt.Sprintf("Association Request, SN=%d, FN=0, %s", f.Seq.Number, f.Control().FlagString())
}

// AssocResp is the association response management frame.
type AssocResp struct {
	Header
	Capability uint16
	Status     StatusCode
	AID        uint16
	IEs        []IE
}

// Control implements Frame.
func (f *AssocResp) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeAssocResp
	return fc
}

// ReceiverAddress implements Frame.
func (f *AssocResp) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *AssocResp) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *AssocResp) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	var fixed [6]byte
	putU16(fixed[0:], f.Capability)
	putU16(fixed[2:], uint16(f.Status))
	putU16(fixed[4:], f.AID|0xc000)
	b = append(b, fixed[:]...)
	return appendIEs(b, f.IEs)
}

// DecodeFromBytes implements Frame.
func (f *AssocResp) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	rest := data[headerLen:]
	if len(rest) < 6 {
		return errShortFrame
	}
	f.Capability = getU16(rest)
	f.Status = StatusCode(getU16(rest[2:]))
	f.AID = getU16(rest[4:]) &^ 0xc000
	var err error
	f.IEs, err = parseIEsInto(f.IEs[:0], rest[6:])
	return err
}

// Info implements Frame.
func (f *AssocResp) Info() string {
	return fmt.Sprintf("Association Response, SN=%d, FN=0, %s", f.Seq.Number, f.Control().FlagString())
}
