package dot11

import "fmt"

// Action category codes used by the simulator.
type ActionCategory uint8

// Categories (802.11-2016 Table 9-76 subset).
const (
	CategorySpectrum ActionCategory = 0
	CategoryQoS      ActionCategory = 1
	CategoryBlockAck ActionCategory = 3
	CategoryPublic   ActionCategory = 4
	CategoryHT       ActionCategory = 7
	CategoryVendor   ActionCategory = 127
)

// Action is a management action frame: category, action code, and an
// opaque body. Unprotected action frames are another 802.11w-relevant
// surface; the simulator carries them for protocol completeness
// (block-ack setup, public action beacons).
type Action struct {
	Header
	Category ActionCategory
	Code     uint8
	Body     []byte
}

// Control implements Frame.
func (f *Action) Control() FrameControl {
	fc := f.FC
	fc.Type, fc.Subtype = TypeManagement, SubtypeAction
	return fc
}

// ReceiverAddress implements Frame.
func (f *Action) ReceiverAddress() MAC { return f.Addr1 }

// TransmitterAddress implements Frame.
func (f *Action) TransmitterAddress() MAC { return f.Addr2 }

// AppendTo implements Frame.
func (f *Action) AppendTo(b []byte) ([]byte, error) {
	b = f.Header.appendTo(b, f.Control())
	b = append(b, byte(f.Category), f.Code)
	return append(b, f.Body...), nil
}

// DecodeFromBytes implements Frame.
func (f *Action) DecodeFromBytes(data []byte) error {
	if err := f.Header.decodeFrom(data); err != nil {
		return err
	}
	rest := data[headerLen:]
	if len(rest) < 2 {
		return errShortFrame
	}
	f.Category = ActionCategory(rest[0])
	f.Code = rest[1]
	f.Body = rest[2:] // aliases the input; retainers must copy
	return nil
}

// Info implements Frame.
func (f *Action) Info() string {
	return fmt.Sprintf("Action, SN=%d, FN=0, Category=%d, %s",
		f.Seq.Number, f.Category, f.Control().FlagString())
}

// BlockAckReq solicits a block acknowledgement for a TID starting at
// a sequence number.
type BlockAckReq struct {
	Duration uint16
	RA       MAC
	TA       MAC
	TID      uint8
	StartSeq uint16
}

// Control implements Frame.
func (f *BlockAckReq) Control() FrameControl {
	return FrameControl{Type: TypeControl, Subtype: SubtypeBlockAckReq}
}

// ReceiverAddress implements Frame.
func (f *BlockAckReq) ReceiverAddress() MAC { return f.RA }

// TransmitterAddress implements Frame.
func (f *BlockAckReq) TransmitterAddress() MAC { return f.TA }

// AppendTo implements Frame.
func (f *BlockAckReq) AppendTo(b []byte) ([]byte, error) {
	var hdr [20]byte
	putU16(hdr[0:], f.Control().Uint16())
	putU16(hdr[2:], f.Duration)
	putMAC(hdr[4:], f.RA)
	putMAC(hdr[10:], f.TA)
	putU16(hdr[16:], uint16(f.TID&0xf)<<12) // BAR control: TID in b12-15
	putU16(hdr[18:], (f.StartSeq&0xfff)<<4)
	return append(b, hdr[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *BlockAckReq) DecodeFromBytes(data []byte) error {
	if len(data) < 20 {
		return errShortFrame
	}
	f.Duration = getU16(data[2:])
	f.RA = getMAC(data[4:])
	f.TA = getMAC(data[10:])
	f.TID = uint8(getU16(data[16:]) >> 12)
	f.StartSeq = getU16(data[18:]) >> 4
	return nil
}

// Info implements Frame.
func (f *BlockAckReq) Info() string {
	return fmt.Sprintf("Block Ack Request, TID=%d, SSN=%d, %s", f.TID, f.StartSeq, f.Control().FlagString())
}

// BlockAck acknowledges a window of 64 MPDUs with a bitmap.
type BlockAck struct {
	Duration uint16
	RA       MAC
	TA       MAC
	TID      uint8
	StartSeq uint16
	Bitmap   uint64 // compressed bitmap: bit i = StartSeq+i received
}

// Control implements Frame.
func (f *BlockAck) Control() FrameControl {
	return FrameControl{Type: TypeControl, Subtype: SubtypeBlockAck}
}

// ReceiverAddress implements Frame.
func (f *BlockAck) ReceiverAddress() MAC { return f.RA }

// TransmitterAddress implements Frame.
func (f *BlockAck) TransmitterAddress() MAC { return f.TA }

// AppendTo implements Frame.
func (f *BlockAck) AppendTo(b []byte) ([]byte, error) {
	var hdr [28]byte
	putU16(hdr[0:], f.Control().Uint16())
	putU16(hdr[2:], f.Duration)
	putMAC(hdr[4:], f.RA)
	putMAC(hdr[10:], f.TA)
	putU16(hdr[16:], uint16(f.TID&0xf)<<12|0x0004) // compressed BA
	putU16(hdr[18:], (f.StartSeq&0xfff)<<4)
	putU64(hdr[20:], f.Bitmap)
	return append(b, hdr[:]...), nil
}

// DecodeFromBytes implements Frame.
func (f *BlockAck) DecodeFromBytes(data []byte) error {
	if len(data) < 28 {
		return errShortFrame
	}
	f.Duration = getU16(data[2:])
	f.RA = getMAC(data[4:])
	f.TA = getMAC(data[10:])
	f.TID = uint8(getU16(data[16:]) >> 12)
	f.StartSeq = getU16(data[18:]) >> 4
	f.Bitmap = getU64(data[20:])
	return nil
}

// Info implements Frame.
func (f *BlockAck) Info() string {
	return fmt.Sprintf("Block Ack, TID=%d, SSN=%d, %s", f.TID, f.StartSeq, f.Control().FlagString())
}

// Received reports whether the MPDU at StartSeq+offset is marked
// received.
func (f *BlockAck) Received(offset int) bool {
	if offset < 0 || offset > 63 {
		return false
	}
	return f.Bitmap&(1<<offset) != 0
}
