package dot11

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestActionRoundTrip(t *testing.T) {
	a := &Action{
		Header:   Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC, Seq: SequenceControl{Number: 12}},
		Category: CategoryBlockAck,
		Code:     0, // ADDBA request
		Body:     []byte{0x03, 0x10, 0x00},
	}
	got := roundTrip(t, a).(*Action)
	if got.Category != CategoryBlockAck || got.Code != 0 {
		t.Fatalf("action = %+v", got)
	}
	if !bytes.Equal(got.Body, a.Body) {
		t.Fatalf("body = %x", got.Body)
	}
	if got.Info() == "" {
		t.Fatal("empty info")
	}
	// Action frames are unicast management → solicit ACKs (another
	// Polite WiFi surface).
	if !NeedsAck(got.Control(), got.ReceiverAddress()) {
		t.Fatal("action frame should need an ACK")
	}
}

func TestActionTruncated(t *testing.T) {
	a := &Action{Header: Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC}}
	wire, _ := a.AppendTo(nil)
	if err := new(Action).DecodeFromBytes(wire[:25]); err == nil {
		t.Fatal("truncated action decoded")
	}
}

func TestBlockAckReqRoundTrip(t *testing.T) {
	r := &BlockAckReq{RA: victimMAC, TA: apMAC, TID: 5, StartSeq: 3000, Duration: 44}
	got := roundTrip(t, r).(*BlockAckReq)
	if got.TID != 5 || got.StartSeq != 3000 || got.Duration != 44 {
		t.Fatalf("BAR = %+v", got)
	}
	if got.RA != victimMAC || got.TA != apMAC {
		t.Fatal("addresses lost")
	}
	// Control frame: no PHY ACK.
	if NeedsAck(got.Control(), got.ReceiverAddress()) {
		t.Fatal("BAR must not solicit a normal ACK")
	}
}

func TestBlockAckRoundTrip(t *testing.T) {
	ba := &BlockAck{RA: apMAC, TA: victimMAC, TID: 5, StartSeq: 3000, Bitmap: 0xDEADBEEF}
	got := roundTrip(t, ba).(*BlockAck)
	if got.Bitmap != 0xDEADBEEF || got.TID != 5 || got.StartSeq != 3000 {
		t.Fatalf("BA = %+v", got)
	}
	if !got.Received(0) || !got.Received(1) || got.Received(4) {
		t.Fatalf("bitmap decode wrong: %x", got.Bitmap)
	}
	if got.Received(-1) || got.Received(64) {
		t.Fatal("out-of-window offsets must be false")
	}
}

// Property: BlockAck round-trips arbitrary bitmaps and sequence
// numbers.
func TestBlockAckProperty(t *testing.T) {
	f := func(tid uint8, ssn uint16, bitmap uint64) bool {
		ba := &BlockAck{RA: apMAC, TA: victimMAC, TID: tid & 0xf, StartSeq: ssn & 0xfff, Bitmap: bitmap}
		wire, err := Serialize(ba)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		g := got.(*BlockAck)
		return g.TID == tid&0xf && g.StartSeq == ssn&0xfff && g.Bitmap == bitmap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProtectedDeauthCodec(t *testing.T) {
	d := &Deauth{
		Header: Header{
			FC:    FrameControl{Protected: true, FromDS: true},
			Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC,
		},
		ProtectedBody: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
	}
	got := roundTrip(t, d).(*Deauth)
	if !got.FC.Protected {
		t.Fatal("Protected flag lost")
	}
	if !bytes.Equal(got.ProtectedBody, d.ProtectedBody) {
		t.Fatalf("protected body = %x", got.ProtectedBody)
	}
}
