package dot11

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"politewifi/internal/eventsim"
)

var (
	fakeMAC   = MustMAC("aa:bb:bb:bb:bb:bb")
	victimMAC = MustMAC("f2:6e:0b:12:34:56")
	apMAC     = MustMAC("f2:6e:0b:00:00:01")
)

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("aa:bb:cc:dd:ee:ff")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}) {
		t.Fatalf("ParseMAC = %v", m)
	}
	if m.String() != "aa:bb:cc:dd:ee:ff" {
		t.Fatalf("String() = %q", m.String())
	}
	// Dashes and uppercase accepted.
	m2, err := ParseMAC("AA-BB-CC-DD-EE-FF")
	if err != nil || m2 != m {
		t.Fatalf("dash/upper parse failed: %v %v", m2, err)
	}
	for _, bad := range []string{"", "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00", "gg:bb:cc:dd:ee:ff", "a:bb:cc:dd:ee:ff"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded, want error", bad)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsGroup() || Broadcast.IsUnicast() {
		t.Fatal("broadcast predicates wrong")
	}
	if victimMAC.IsGroup() || !victimMAC.IsUnicast() {
		t.Fatal("unicast predicates wrong")
	}
	multicast := MustMAC("01:00:5e:00:00:01")
	if !multicast.IsGroup() || multicast.IsBroadcast() {
		t.Fatal("multicast predicates wrong")
	}
	if ZeroMAC.IsUnicast() {
		t.Fatal("zero MAC should not be unicast")
	}
	local := MustMAC("02:00:00:00:00:01")
	if !local.IsLocal() {
		t.Fatal("locally-administered bit not detected")
	}
}

func TestMACMatches(t *testing.T) {
	if !victimMAC.Matches(victimMAC) {
		t.Fatal("self match failed")
	}
	if !Broadcast.Matches(victimMAC) {
		t.Fatal("broadcast must match any station")
	}
	if fakeMAC.Matches(victimMAC) {
		t.Fatal("foreign unicast must not match")
	}
}

func TestOUI(t *testing.T) {
	o := victimMAC.OUI()
	if o.String() != "f2:6e:0b" {
		t.Fatalf("OUI = %q", o)
	}
	m := o.WithSuffix(0x123456)
	if m != MustMAC("f2:6e:0b:12:34:56") {
		t.Fatalf("WithSuffix = %v", m)
	}
}

func TestMACShort(t *testing.T) {
	if got := fakeMAC.Short(); !strings.HasPrefix(got, "aa:bb:bb") {
		t.Fatalf("Short() = %q", got)
	}
}

func TestFrameControlRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return ParseFrameControl(v).Uint16() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequenceControlRoundTrip(t *testing.T) {
	f := func(v uint16) bool {
		return ParseSequenceControl(v).Uint16() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNextSeq(t *testing.T) {
	if NextSeq(0) != 1 {
		t.Fatal("NextSeq(0) != 1")
	}
	if NextSeq(4095) != 0 {
		t.Fatal("NextSeq must wrap at 4096")
	}
}

func TestFrameControlNames(t *testing.T) {
	cases := map[string]FrameControl{
		"Null function (No data)": {Type: TypeData, Subtype: SubtypeNull},
		"Acknowledgement":         {Type: TypeControl, Subtype: SubtypeACK},
		"Deauthentication":        {Type: TypeManagement, Subtype: SubtypeDeauth},
		"Beacon frame":            {Type: TypeManagement, Subtype: SubtypeBeacon},
		"Request-to-send":         {Type: TypeControl, Subtype: SubtypeRTS},
		"Clear-to-send":           {Type: TypeControl, Subtype: SubtypeCTS},
	}
	for want, fc := range cases {
		if got := fc.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestFlagString(t *testing.T) {
	fc := FrameControl{ToDS: true, Retry: true}
	got := fc.FlagString()
	if got != "Flags=....R..T" {
		t.Fatalf("FlagString = %q", got)
	}
}

// roundTrip serializes then decodes a frame and returns the result.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	wire, err := Serialize(f)
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestAckRoundTrip(t *testing.T) {
	a := &Ack{RA: fakeMAC, Duration: 0}
	got := roundTrip(t, a).(*Ack)
	if got.RA != fakeMAC {
		t.Fatalf("RA = %v", got.RA)
	}
	wire, _ := Serialize(a)
	if len(wire) != 14 {
		t.Fatalf("ACK wire length = %d, want 14", len(wire))
	}
}

func TestCTSRoundTrip(t *testing.T) {
	c := &CTS{RA: fakeMAC, Duration: 44}
	got := roundTrip(t, c).(*CTS)
	if got.RA != fakeMAC || got.Duration != 44 {
		t.Fatalf("CTS = %+v", got)
	}
}

func TestRTSRoundTrip(t *testing.T) {
	r := &RTS{RA: victimMAC, TA: fakeMAC, Duration: 120}
	got := roundTrip(t, r).(*RTS)
	if got.RA != victimMAC || got.TA != fakeMAC || got.Duration != 120 {
		t.Fatalf("RTS = %+v", got)
	}
	wire, _ := Serialize(r)
	if len(wire) != 20 {
		t.Fatalf("RTS wire length = %d, want 20", len(wire))
	}
}

func TestPSPollRoundTrip(t *testing.T) {
	p := &PSPoll{AID: 5, BSSID: apMAC, TA: victimMAC}
	got := roundTrip(t, p).(*PSPoll)
	if got.AID != 5 || got.BSSID != apMAC || got.TA != victimMAC {
		t.Fatalf("PSPoll = %+v", got)
	}
}

func TestNullFrameRoundTrip(t *testing.T) {
	d := NewNullFrame(victimMAC, fakeMAC, apMAC, 7)
	got := roundTrip(t, d).(*Data)
	if !got.Null {
		t.Fatal("Null flag lost")
	}
	if got.Addr1 != victimMAC || got.Addr2 != fakeMAC || got.Addr3 != apMAC {
		t.Fatalf("addresses = %v %v %v", got.Addr1, got.Addr2, got.Addr3)
	}
	if got.Seq.Number != 7 {
		t.Fatalf("seq = %d", got.Seq.Number)
	}
	if len(got.Payload) != 0 {
		t.Fatal("null frame must carry no payload")
	}
	if got.Info() != "Null function (No data), SN=7, FN=0, Flags=........" {
		t.Fatalf("Info = %q", got.Info())
	}
}

func TestDataFrameRoundTrip(t *testing.T) {
	d := &Data{
		Header: Header{
			FC:    FrameControl{ToDS: true, Protected: true},
			Addr1: apMAC, Addr2: victimMAC, Addr3: MustMAC("00:11:22:33:44:55"),
			Seq: SequenceControl{Number: 99, Fragment: 1},
		},
		Payload: []byte("hello world"),
	}
	got := roundTrip(t, d).(*Data)
	if !got.FC.Protected || !got.FC.ToDS {
		t.Fatal("flags lost")
	}
	if string(got.Payload) != "hello world" {
		t.Fatalf("payload = %q", got.Payload)
	}
	if got.Seq.Fragment != 1 || got.Seq.Number != 99 {
		t.Fatalf("seq = %+v", got.Seq)
	}
}

func TestQoSDataRoundTrip(t *testing.T) {
	d := &Data{
		Header:  Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC},
		QoS:     true,
		TID:     6,
		Payload: []byte{1, 2, 3},
	}
	got := roundTrip(t, d).(*Data)
	if !got.QoS || got.TID != 6 {
		t.Fatalf("QoS fields = %+v", got)
	}
	if !bytes.Equal(got.Payload, []byte{1, 2, 3}) {
		t.Fatalf("payload = %v", got.Payload)
	}
}

func TestQoSNullRoundTrip(t *testing.T) {
	d := &Data{Header: Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC}, QoS: true, Null: true, TID: 0}
	got := roundTrip(t, d).(*Data)
	if !got.QoS || !got.Null {
		t.Fatalf("QoS null flags = %+v", got)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	b := &Beacon{
		Header:     Header{Addr1: Broadcast, Addr2: apMAC, Addr3: apMAC},
		Timestamp:  123456789,
		IntervalTU: 100,
		Capability: CapESS | CapPrivacy,
		IEs: []IE{
			SSIDElement("HomeNet"),
			RatesElement(6, 12, 24, 54),
			DSParamElement(6),
			RSNElement(),
			TIMElement(0, 3, []uint16{2, 5}),
		},
	}
	got := roundTrip(t, b).(*Beacon)
	if got.Timestamp != 123456789 || got.IntervalTU != 100 {
		t.Fatalf("fixed fields = %+v", got)
	}
	if got.SSID() != "HomeNet" {
		t.Fatalf("SSID = %q", got.SSID())
	}
	ch, ok := FindChannel(got.IEs)
	if !ok || ch != 6 {
		t.Fatalf("channel = %d %v", ch, ok)
	}
	if !HasRSN(got.IEs) {
		t.Fatal("RSN element lost")
	}
	if !TIMBuffered(got.IEs, 2) || !TIMBuffered(got.IEs, 5) {
		t.Fatal("TIM bits lost")
	}
	if TIMBuffered(got.IEs, 3) {
		t.Fatal("TIM bit 3 should be clear")
	}
	if TIMBuffered(got.IEs, 200) {
		t.Fatal("out-of-bitmap AID should be unbuffered")
	}
}

func TestProbeReqRoundTrip(t *testing.T) {
	p := &ProbeReq{
		Header: Header{Addr1: Broadcast, Addr2: victimMAC, Addr3: Broadcast},
		IEs:    []IE{SSIDElement(""), RatesElement(6, 12)},
	}
	got := roundTrip(t, p).(*ProbeReq)
	ssid, ok := FindSSID(got.IEs)
	if !ok || ssid != "" {
		t.Fatalf("wildcard SSID = %q %v", ssid, ok)
	}
}

func TestProbeRespRoundTrip(t *testing.T) {
	p := &ProbeResp{
		Header:     Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC},
		Timestamp:  42,
		IntervalTU: 100,
		Capability: CapESS,
		IEs:        []IE{SSIDElement("CoffeeShop"), DSParamElement(11)},
	}
	got := roundTrip(t, p).(*ProbeResp)
	ssid, _ := FindSSID(got.IEs)
	if ssid != "CoffeeShop" {
		t.Fatalf("SSID = %q", ssid)
	}
}

func TestDeauthRoundTrip(t *testing.T) {
	d := &Deauth{
		Header: Header{Addr1: fakeMAC, Addr2: apMAC, Addr3: apMAC, Seq: SequenceControl{Number: 3275}},
		Reason: ReasonClass3FromNonAssoc,
	}
	got := roundTrip(t, d).(*Deauth)
	if got.Reason != ReasonClass3FromNonAssoc {
		t.Fatalf("reason = %v", got.Reason)
	}
	if got.Info() != "Deauthentication, SN=3275, FN=0, Flags=........" {
		t.Fatalf("Info = %q", got.Info())
	}
}

func TestDisassocRoundTrip(t *testing.T) {
	d := &Disassoc{Header: Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC}, Reason: ReasonInactivity}
	got := roundTrip(t, d).(*Disassoc)
	if got.Reason != ReasonInactivity {
		t.Fatalf("reason = %v", got.Reason)
	}
}

func TestAuthAssocRoundTrip(t *testing.T) {
	a := &Auth{Header: Header{Addr1: apMAC, Addr2: victimMAC, Addr3: apMAC}, Algorithm: 0, AuthSeq: 1, Status: StatusSuccess}
	gotA := roundTrip(t, a).(*Auth)
	if gotA.AuthSeq != 1 || gotA.Status != StatusSuccess {
		t.Fatalf("auth = %+v", gotA)
	}

	ar := &AssocReq{Header: Header{Addr1: apMAC, Addr2: victimMAC, Addr3: apMAC}, Capability: CapESS, IntervalTU: 10, IEs: []IE{SSIDElement("HomeNet")}}
	gotAR := roundTrip(t, ar).(*AssocReq)
	if gotAR.IntervalTU != 10 {
		t.Fatalf("assoc req = %+v", gotAR)
	}

	resp := &AssocResp{Header: Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC}, Status: StatusSuccess, AID: 3}
	gotResp := roundTrip(t, resp).(*AssocResp)
	if gotResp.AID != 3 {
		t.Fatalf("AID = %d", gotResp.AID)
	}
}

func TestFCSTamperDetection(t *testing.T) {
	wire, err := Serialize(NewNullFrame(victimMAC, fakeMAC, apMAC, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		bad := append([]byte(nil), wire...)
		bad[i] ^= 0x01
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at byte %d not detected", i)
		}
	}
}

func TestDecodeShort(t *testing.T) {
	for n := 0; n < 4; n++ {
		if _, err := Decode(make([]byte, n)); err == nil {
			t.Fatalf("Decode of %d bytes succeeded", n)
		}
	}
	// Valid FCS over a too-short body.
	body := []byte{0x00}
	if _, err := Decode(AppendFCS(body)); err == nil {
		t.Fatal("1-byte body decoded")
	}
}

func TestDecodeUnsupportedVersion(t *testing.T) {
	a := &Ack{RA: fakeMAC}
	wire, _ := a.AppendTo(nil)
	wire[0] |= 0x01 // version 1
	if _, err := DecodeNoFCS(wire); err == nil {
		t.Fatal("version 1 frame decoded")
	}
}

func TestAddressRules(t *testing.T) {
	// ToDS=1 (client → AP): A1=BSSID, A2=SA, A3=DA.
	d := &Data{Header: Header{
		FC:    FrameControl{ToDS: true},
		Addr1: apMAC, Addr2: victimMAC, Addr3: MustMAC("00:aa:00:aa:00:aa"),
	}}
	if d.BSSID() != apMAC || d.SA() != victimMAC || d.DA() != MustMAC("00:aa:00:aa:00:aa") {
		t.Fatal("ToDS address rules wrong")
	}
	// FromDS=1 (AP → client): A1=DA, A2=BSSID, A3=SA.
	d2 := &Data{Header: Header{
		FC:    FrameControl{FromDS: true},
		Addr1: victimMAC, Addr2: apMAC, Addr3: MustMAC("00:bb:00:bb:00:bb"),
	}}
	if d2.DA() != victimMAC || d2.BSSID() != apMAC || d2.SA() != MustMAC("00:bb:00:bb:00:bb") {
		t.Fatal("FromDS address rules wrong")
	}
	// IBSS: A3=BSSID.
	d3 := &Data{Header: Header{Addr1: victimMAC, Addr2: fakeMAC, Addr3: apMAC}}
	if d3.BSSID() != apMAC || d3.DA() != victimMAC || d3.SA() != fakeMAC {
		t.Fatal("IBSS address rules wrong")
	}
}

func TestNeedsAck(t *testing.T) {
	cases := []struct {
		fc   FrameControl
		ra   MAC
		want bool
	}{
		{FrameControl{Type: TypeData, Subtype: SubtypeNull}, victimMAC, true},
		{FrameControl{Type: TypeData, Subtype: SubtypeData}, victimMAC, true},
		{FrameControl{Type: TypeManagement, Subtype: SubtypeDeauth}, victimMAC, true},
		{FrameControl{Type: TypeManagement, Subtype: SubtypeBeacon}, Broadcast, false},
		{FrameControl{Type: TypeControl, Subtype: SubtypeACK}, victimMAC, false},
		{FrameControl{Type: TypeControl, Subtype: SubtypeRTS}, victimMAC, false},
		{FrameControl{Type: TypeData, Subtype: SubtypeData}, Broadcast, false},
	}
	for i, c := range cases {
		if got := NeedsAck(c.fc, c.ra); got != c.want {
			t.Errorf("case %d: NeedsAck(%v,%v) = %v, want %v", i, c.fc.Name(), c.ra, got, c.want)
		}
	}
}

func TestAckFor(t *testing.T) {
	// The central Polite WiFi property at the codec level: the ACK for
	// a fake frame goes to the fake transmitter address.
	fake := NewNullFrame(victimMAC, fakeMAC, fakeMAC, 0)
	ack := AckFor(fake)
	if ack.RA != fakeMAC {
		t.Fatalf("ACK RA = %v, want the fake MAC %v", ack.RA, fakeMAC)
	}
}

func TestCTSFor(t *testing.T) {
	tests := []struct {
		name     string
		duration uint16
		elapsed  eventsim.Time
		want     uint16
	}{
		{"normal", 100, 44 * eventsim.Microsecond, 56},
		{"exact", 44, 44 * eventsim.Microsecond, 0},
		// The underflow edge: an RTS whose duration is smaller than
		// SIFS + CTS airtime must clamp at zero, not wrap to ~65535 µs.
		{"underflow", 10, 44 * eventsim.Microsecond, 0},
		{"zero duration", 0, 44 * eventsim.Microsecond, 0},
		{"no elapsed", 100, 0, 100},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rts := &RTS{RA: victimMAC, TA: fakeMAC, Duration: tc.duration}
			cts := CTSFor(rts, tc.elapsed)
			if cts.RA != fakeMAC {
				t.Fatalf("CTS RA = %v, want the RTS TA %v", cts.RA, fakeMAC)
			}
			if cts.Duration != tc.want {
				t.Fatalf("CTS duration = %d, want %d", cts.Duration, tc.want)
			}
		})
	}
}

func TestWireLen(t *testing.T) {
	n, err := WireLen(&Ack{RA: fakeMAC})
	if err != nil || n != 14 {
		t.Fatalf("WireLen(ACK) = %d, %v", n, err)
	}
	n, _ = WireLen(NewNullFrame(victimMAC, fakeMAC, apMAC, 0))
	if n != 28 {
		t.Fatalf("WireLen(null) = %d, want 28", n)
	}
}

func TestIETooLong(t *testing.T) {
	b := &Beacon{Header: Header{Addr1: Broadcast, Addr2: apMAC, Addr3: apMAC},
		IEs: []IE{{ID: IESSID, Data: make([]byte, 300)}}}
	if _, err := Serialize(b); err == nil {
		t.Fatal("oversized IE serialized")
	}
}

func TestIEParseTruncated(t *testing.T) {
	if _, err := parseIEsInto(nil, []byte{0}); err == nil {
		t.Fatal("truncated IE header parsed")
	}
	if _, err := parseIEsInto(nil, []byte{0, 5, 0x61}); err == nil {
		t.Fatal("truncated IE body parsed")
	}
}

func TestIEString(t *testing.T) {
	if got := SSIDElement("x").String(); got != `SSID="x"` {
		t.Fatalf("SSID IE String = %q", got)
	}
	if got := DSParamElement(6).String(); got != "Channel=6" {
		t.Fatalf("DSParam IE String = %q", got)
	}
	if got := RSNElement().String(); got != "RSN (WPA2)" {
		t.Fatalf("RSN IE String = %q", got)
	}
}

// Property: data frames round-trip for arbitrary payloads, addresses
// and sequence numbers.
func TestDataRoundTripProperty(t *testing.T) {
	f := func(a1, a2, a3 [6]byte, seq uint16, payload []byte) bool {
		d := &Data{
			Header: Header{
				Addr1: MAC(a1), Addr2: MAC(a2), Addr3: MAC(a3),
				Seq: SequenceControl{Number: seq & 0xfff},
			},
			Payload: payload,
		}
		wire, err := Serialize(d)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		gd, ok := got.(*Data)
		if !ok {
			return false
		}
		return gd.Addr1 == MAC(a1) && gd.Addr2 == MAC(a2) && gd.Addr3 == MAC(a3) &&
			gd.Seq.Number == seq&0xfff && bytes.Equal(gd.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: beacons with arbitrary SSIDs round-trip.
func TestBeaconRoundTripProperty(t *testing.T) {
	f := func(ssid string, ts uint64, interval uint16, ch uint8) bool {
		if len(ssid) > 32 {
			ssid = ssid[:32]
		}
		b := &Beacon{
			Header:     Header{Addr1: Broadcast, Addr2: apMAC, Addr3: apMAC},
			Timestamp:  ts,
			IntervalTU: interval,
			IEs:        []IE{SSIDElement(ssid), DSParamElement(ch)},
		}
		wire, err := Serialize(b)
		if err != nil {
			return false
		}
		got, err := Decode(wire)
		if err != nil {
			return false
		}
		gb := got.(*Beacon)
		gotSSID, _ := FindSSID(gb.IEs)
		gotCh, _ := FindChannel(gb.IEs)
		return gb.Timestamp == ts && gb.IntervalTU == interval && gotSSID == ssid && gotCh == ch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding then re-serializing any successfully decoded
// random buffer reproduces the same bytes (canonical encoding).
func TestReserializeProperty(t *testing.T) {
	frames := []Frame{
		&Ack{RA: fakeMAC, Duration: 3},
		&CTS{RA: fakeMAC, Duration: 9},
		&RTS{RA: victimMAC, TA: fakeMAC, Duration: 100},
		&PSPoll{AID: 2, BSSID: apMAC, TA: victimMAC},
		NewNullFrame(victimMAC, fakeMAC, apMAC, 55),
		&Deauth{Header: Header{Addr1: fakeMAC, Addr2: apMAC, Addr3: apMAC}, Reason: ReasonClass3FromNonAssoc},
		&Beacon{Header: Header{Addr1: Broadcast, Addr2: apMAC, Addr3: apMAC}, IEs: []IE{SSIDElement("n")}},
	}
	for _, f := range frames {
		wire, err := Serialize(f)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := Decode(wire)
		if err != nil {
			t.Fatalf("%T: %v", f, err)
		}
		wire2, err := Serialize(decoded)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("%T: reserialization differs\n%x\n%x", f, wire, wire2)
		}
		if reflect.TypeOf(decoded) != reflect.TypeOf(f) {
			t.Fatalf("decoded type %T, want %T", decoded, f)
		}
	}
}

func TestReasonCodeStrings(t *testing.T) {
	if ReasonClass3FromNonAssoc.String() == "" || ReasonCode(999).String() == "" {
		t.Fatal("reason strings empty")
	}
}

func BenchmarkSerializeNullFrame(b *testing.B) {
	f := NewNullFrame(victimMAC, fakeMAC, apMAC, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Serialize(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeNullFrame(b *testing.B) {
	wire, _ := Serialize(NewNullFrame(victimMAC, fakeMAC, apMAC, 0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBeacon(b *testing.B) {
	bea := &Beacon{
		Header: Header{Addr1: Broadcast, Addr2: apMAC, Addr3: apMAC},
		IEs:    []IE{SSIDElement("HomeNet"), RatesElement(6, 12, 24, 54), DSParamElement(6), RSNElement()},
	}
	wire, _ := Serialize(bea)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: Decode never panics and never returns both nil frame and
// nil error, for arbitrary byte soup (with and without a valid FCS
// wrapper).
func TestDecodeRobustnessProperty(t *testing.T) {
	f := func(raw []byte) bool {
		// Arbitrary bytes: almost always ErrBadFCS.
		if fr, err := Decode(raw); fr == nil && err == nil {
			return false
		}
		// Valid FCS wrapping arbitrary bytes: the parser sees them.
		if fr, err := Decode(AppendFCS(raw)); fr == nil && err == nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: any frame the codec decodes, it can re-serialize without
// error.
func TestDecodeSerializeClosureProperty(t *testing.T) {
	f := func(raw []byte) bool {
		fr, err := Decode(AppendFCS(raw))
		if err != nil {
			return true // nothing decoded, nothing to check
		}
		_, err = Serialize(fr)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
