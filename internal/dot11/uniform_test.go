package dot11

import (
	"strings"
	"testing"
)

// allFrames instantiates one of every frame type with distinct RA/TA
// where the type carries them.
func allFrames() []Frame {
	hdr := Header{Addr1: victimMAC, Addr2: apMAC, Addr3: apMAC, Seq: SequenceControl{Number: 7}}
	return []Frame{
		&Ack{RA: victimMAC},
		&CTS{RA: victimMAC},
		&RTS{RA: victimMAC, TA: apMAC},
		&PSPoll{AID: 1, BSSID: victimMAC, TA: apMAC},
		&BlockAckReq{RA: victimMAC, TA: apMAC, TID: 1, StartSeq: 9},
		&BlockAck{RA: victimMAC, TA: apMAC, TID: 1, StartSeq: 9, Bitmap: 5},
		&Data{Header: hdr, Payload: []byte("x")},
		NewNullFrame(victimMAC, apMAC, apMAC, 7),
		&Beacon{Header: Header{Addr1: Broadcast, Addr2: apMAC, Addr3: apMAC}, IEs: []IE{SSIDElement("n")}},
		&ProbeReq{Header: hdr, IEs: []IE{SSIDElement("n")}},
		&ProbeResp{Header: hdr, IEs: []IE{SSIDElement("n")}},
		&Auth{Header: hdr, AuthSeq: 1},
		&AssocReq{Header: hdr},
		&AssocResp{Header: hdr, AID: 2},
		&Deauth{Header: hdr, Reason: ReasonUnspecified},
		&Disassoc{Header: hdr, Reason: ReasonInactivity},
		&Action{Header: hdr, Category: CategoryPublic, Code: 1},
	}
}

// TestFrameInterfaceUniformity exercises the Frame interface contract
// for every frame type: addresses are coherent with the struct
// fields, Info is non-empty and mentions the frame's Wireshark name,
// Control reports a stable type/subtype, and the wire round trip
// preserves the interface values.
func TestFrameInterfaceUniformity(t *testing.T) {
	for _, f := range allFrames() {
		name := f.Control().Name()
		if name == "" {
			t.Fatalf("%T: empty frame name", f)
		}
		if f.ReceiverAddress() == ZeroMAC && !f.ReceiverAddress().IsGroup() {
			if _, isBeacon := f.(*Beacon); !isBeacon {
				t.Fatalf("%T: zero receiver address", f)
			}
		}
		info := f.Info()
		if info == "" {
			t.Fatalf("%T: empty Info", f)
		}
		firstWord := strings.Split(name, " ")[0]
		if !strings.Contains(info, firstWord) {
			t.Fatalf("%T: Info %q does not mention %q", f, info, firstWord)
		}
		wire, err := Serialize(f)
		if err != nil {
			t.Fatalf("%T: serialize: %v", f, err)
		}
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("%T: decode: %v", f, err)
		}
		if got.ReceiverAddress() != f.ReceiverAddress() {
			t.Fatalf("%T: RA changed across the wire", f)
		}
		if got.TransmitterAddress() != f.TransmitterAddress() {
			t.Fatalf("%T: TA changed across the wire", f)
		}
		if got.Control().Type != f.Control().Type || got.Control().Subtype != f.Control().Subtype {
			t.Fatalf("%T: frame control changed across the wire", f)
		}
	}
}

// TestFrameTypeStrings covers the stringers over their full domain.
func TestFrameTypeStrings(t *testing.T) {
	if TypeManagement.String() != "Management" || TypeControl.String() != "Control" ||
		TypeData.String() != "Data" {
		t.Fatal("frame type strings wrong")
	}
	if !strings.Contains(FrameType(3).String(), "Reserved") {
		t.Fatal("reserved type string wrong")
	}
	// Every defined type/subtype pair has a proper name; undefined
	// pairs fall back to a descriptive string.
	named := 0
	for ty := FrameType(0); ty < 3; ty++ {
		for st := Subtype(0); st < 16; st++ {
			fc := FrameControl{Type: ty, Subtype: st}
			if fc.Name() == "" {
				t.Fatalf("empty name for %d/%d", ty, st)
			}
			if !strings.Contains(fc.Name(), "subtype") {
				named++
			}
		}
	}
	if named < 20 {
		t.Fatalf("only %d named type/subtype pairs", named)
	}
}

// TestFlagStringAllFlags renders every flag position.
func TestFlagStringAllFlags(t *testing.T) {
	fc := FrameControl{
		ToDS: true, FromDS: true, MoreFrag: true, Retry: true,
		PowerMgmt: true, MoreData: true, Protected: true, Order: true,
	}
	if got := fc.FlagString(); got != "Flags=OPMPRFFT" {
		t.Fatalf("FlagString = %q", got)
	}
}
