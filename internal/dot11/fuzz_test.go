package dot11

import (
	"bytes"
	"testing"
)

// fuzzSeeds serializes one frame of every type the codec dispatches on
// (FCS stripped — the fuzz target works on frame bodies the way the
// medium hands them to stations after the FCS coin).
func fuzzSeeds(tb testing.TB) [][]byte {
	ra := MustMAC("f2:6e:0b:00:00:01")
	ta := MustMAC("ec:fa:bc:00:00:02")
	hdr := Header{Addr1: ra, Addr2: ta, Addr3: ra, Seq: SequenceControl{Number: 7}}
	frames := []Frame{
		&Ack{RA: ra},
		&CTS{RA: ra, Duration: 44},
		&RTS{RA: ra, TA: ta, Duration: 212},
		&PSPoll{AID: 5, BSSID: ra, TA: ta},
		&BlockAckReq{RA: ra, TA: ta, TID: 3, StartSeq: 100},
		&BlockAck{RA: ra, TA: ta, TID: 3, StartSeq: 100, Bitmap: 0xff},
		&Beacon{Header: hdr, IntervalTU: 100, IEs: []IE{SSIDElement("HomeNet")}},
		&ProbeReq{Header: hdr, IEs: []IE{SSIDElement("HomeNet")}},
		&ProbeResp{Header: hdr, IntervalTU: 100, IEs: []IE{SSIDElement("HomeNet")}},
		&Deauth{Header: hdr, Reason: 7},
		&Disassoc{Header: hdr, Reason: 8},
		&Auth{Header: hdr, Algorithm: 0, AuthSeq: 1, Status: 0},
		&AssocReq{Header: hdr, IntervalTU: 10, IEs: []IE{SSIDElement("HomeNet")}},
		&AssocResp{Header: hdr, Status: 0, AID: 1},
		&Action{Header: hdr, Category: CategoryBlockAck, Code: 0, Body: []byte{3, 0x10}},
		&Data{Header: hdr, Payload: []byte("payload")},
	}
	var seeds [][]byte
	for _, f := range frames {
		b, err := f.AppendTo(nil)
		if err != nil {
			tb.Fatalf("seed %T: %v", f, err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzDecodeNoFCS drives the codec with arbitrary frame bodies and
// holds three properties:
//
//   - re-encode fixpoint: anything that decodes re-encodes, and the
//     re-encoding decodes back to the same wire bytes (generation 1 and
//     2 encodings are equal — decode is allowed to canonicalise the
//     input once, never to oscillate);
//   - pooled/allocating agreement: the zero-alloc Decoder accepts,
//     rejects and re-encodes exactly like the allocating DecodeNoFCS;
//   - no panics: truncated or garbage bodies must come back as
//     errShortFrame-style errors, not index panics, and Info() on any
//     accepted frame must not crash.
func FuzzDecodeNoFCS(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		for _, n := range []int{1, 2, 9, 15, 23} {
			if n < len(seed) {
				f.Add(seed[:n])
			}
		}
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var pooled Decoder
		f1, err := DecodeNoFCS(body)
		pf, perr := pooled.DecodeNoFCS(body)
		if err != nil {
			if perr == nil {
				t.Fatalf("pooled decoder accepted %x which DecodeNoFCS rejected: %v", body, err)
			}
			return
		}
		if perr != nil {
			t.Fatalf("pooled decoder rejected %x which DecodeNoFCS accepted: %v", body, perr)
		}

		enc1, err := f1.AppendTo(nil)
		if err != nil {
			t.Fatalf("decoded %T failed to re-encode: %v", f1, err)
		}
		penc, err := pf.AppendTo(nil)
		if err != nil {
			t.Fatalf("pooled %T failed to re-encode: %v", pf, err)
		}
		if !bytes.Equal(enc1, penc) {
			t.Fatalf("pooled decoder round-trip differs:\n  alloc  %x\n  pooled %x", enc1, penc)
		}

		f2, err := DecodeNoFCS(enc1)
		if err != nil {
			t.Fatalf("re-encoding of %T no longer decodes: %v\n  body %x\n  enc  %x", f1, err, body, enc1)
		}
		enc2, err := f2.AppendTo(nil)
		if err != nil {
			t.Fatalf("generation-2 %T failed to re-encode: %v", f2, err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("re-encode is not a fixpoint for %T:\n  gen1 %x\n  gen2 %x", f1, enc1, enc2)
		}
		_ = f1.Info()
	})
}
