package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"politewifi/internal/lint"
)

// moduleRoot walks up from the working directory to the directory
// containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the regression gate: politevet over the whole
// module, tests included, must report nothing at HEAD. Every
// sanctioned violation carries a reasoned //politevet:allow directive;
// a new finding here means either a real determinism hazard or a
// missing annotation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	findings, err := lint.Run(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestVettoolProtocol builds the politevet binary and runs it the way
// CI does — as a go vet -vettool — over a package with a sanctioned,
// annotated wallclock use, asserting a clean exit end to end.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to go vet")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "politevet")

	build := exec.Command("go", "build", "-o", bin, "./cmd/politevet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/politevet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/eventsim/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over eventsim should be clean: %v\n%s", err, out)
	}
}
