// Package unit implements the `go vet -vettool` wire protocol for
// politevet, standing in for golang.org/x/tools' unitchecker (this
// repository vendors nothing). The go command drives a vettool like
// so:
//
//  1. `tool -V=full` — print an identifying line used as a cache key;
//  2. `tool -flags` — print a JSON description of supported flags;
//  3. `tool <dir>/vet.cfg` — analyze one package unit described by a
//     JSON config: source files, the import map, compiled export data
//     for every dependency, and — since the interprocedural upgrade —
//     the .vetx fact files this same tool wrote for the dependencies
//     (PackageVetx), plus where to write this unit's own (VetxOutput).
//
// Dependency units arrive with VetxOnly set: the go command wants
// only cross-package facts for those. For in-module dependencies the
// tool runs the purity fact pass and writes real facts; everything
// else (std) gets an empty facts file, and the consuming analyzers
// treat factless foreign callees conservatively. That keeps a
// whole-repo `go vet -vettool=politevet ./...` fast while matching
// standalone mode finding-for-finding.
//
// Diagnostics go to stderr as file:line:col lines; a non-zero exit
// tells go vet the package failed.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"politewifi/internal/lint"
	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/load"
)

// Config mirrors the fields of the go command's vet.cfg that
// politevet consumes.
type Config struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
	GoVersion   string

	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the -V=full handshake. The line must start
// with the program name and "version"; the executable digest makes
// the go command's action cache key change when the tool changes.
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s version devel buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
	return err
}

// PrintFlags implements the -flags handshake: a JSON array naming the
// flags the go command may forward to the tool.
func PrintFlags(w io.Writer) error {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var flags []jsonFlag
	for _, a := range lint.Analyzers() {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(flags)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, string(out))
	return err
}

// RunConfig analyzes the unit described by the vet.cfg at path and
// writes findings to w. It returns the number of findings; the caller
// turns a non-zero count into exit status 2, matching unitchecker.
func RunConfig(path string, enabled map[string]bool, w io.Writer) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %v", path, err)
	}

	writeVetx := func(payload []byte) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, payload, 0o666)
	}

	// Foreign (std) dependency units carry no politevet facts; satisfy
	// the protocol with an empty file and skip the typecheck entirely.
	if cfg.VetxOnly && !lint.InModule(cfg.ImportPath) {
		return 0, writeVetx(nil)
	}

	// Decode dependency facts: the .vetx files this tool wrote when the
	// go command visited the dependencies. Only in-module entries carry
	// real facts; foreign paths stay absent so consumers treat their
	// functions conservatively.
	imported := make(map[string]*analysis.FactSet)
	for depPath, vetxFile := range cfg.PackageVetx {
		plain := analysis.TrimTestVariant(depPath)
		if !lint.InModule(plain) {
			continue
		}
		data, err := os.ReadFile(vetxFile)
		if err != nil {
			return 0, fmt.Errorf("reading facts of %s: %v", depPath, err)
		}
		fs, err := analysis.DecodeFactSet(plain, data)
		if err != nil {
			return 0, err
		}
		fs.Freeze()
		imported[plain] = fs
	}

	pkg, err := load.Check(load.Unit{
		ImportPath:  cfg.ImportPath,
		Dir:         cfg.Dir,
		GoFiles:     cfg.GoFiles,
		ImportMap:   cfg.ImportMap,
		PackageFile: cfg.PackageFile,
		GoVersion:   cfg.GoVersion,
	})
	if err != nil || len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(nil)
		}
		if err == nil {
			err = pkg.TypeErrors[0]
		}
		return 0, fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	facts, err := lint.ComputeFacts(pkg, imported)
	if err != nil {
		return 0, err
	}
	payload, err := facts.Encode()
	if err != nil {
		return 0, err
	}
	if err := writeVetx(payload); err != nil {
		return 0, err
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	analyzers := lint.Analyzers()
	if enabled != nil {
		kept := analyzers[:0:0]
		for _, a := range analyzers {
			if enabled[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	findings, err := lint.RunPackage(pkg, analyzers, imported)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
	return len(findings), nil
}
