package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"politewifi/internal/lint"
)

// certPatterns is a representative slice of the sim tree: eventsim
// carries sanctioned wallclock impurity (the opt-in fire profiler),
// dot11 is pure arithmetic, and lint is named to prove it is excluded.
var certPatterns = []string{
	"politewifi/internal/eventsim",
	"politewifi/internal/dot11",
	"politewifi/internal/lint",
}

func certify(t *testing.T, workers int) string {
	t.Helper()
	out, err := lint.Certify(lint.Options{
		Patterns:  certPatterns,
		Workers:   workers,
		FactCache: "off",
	})
	if err != nil {
		t.Fatalf("certify (workers=%d): %v", workers, err)
	}
	return out
}

// TestCertifyByteStable pins the certificate's core contract: the
// output is a pure function of the analyzed source, byte-identical
// across worker counts. CI diffs the committed CERTIFICATE.md against
// a regeneration, so any instability here would make every CI run
// flake.
func TestCertifyByteStable(t *testing.T) {
	base := certify(t, 1)
	for _, workers := range []int{2, 4} {
		if got := certify(t, workers); got != base {
			t.Errorf("certificate differs between -workers=1 and -workers=%d", workers)
		}
	}

	if !strings.Contains(base, "## politewifi/internal/eventsim") {
		t.Errorf("certificate missing the eventsim section")
	}
	if !strings.Contains(base, "## politewifi/internal/dot11") {
		t.Errorf("certificate missing the dot11 section")
	}
	if strings.Contains(base, "## politewifi/internal/lint") {
		t.Errorf("certificate must not certify the lint tree itself")
	}
	if !strings.Contains(base, "— pure") {
		t.Errorf("certificate certifies nothing as pure")
	}
}

// TestFactCacheWarm runs the driver twice against the same cache
// directory over the cross-package taint fixture — packages with
// known, non-empty findings — and requires the warm run to reproduce
// the cold run exactly. A cache that changed results would be worse
// than no cache.
func TestFactCacheWarm(t *testing.T) {
	dir := t.TempDir()
	taint := []string{
		"politewifi/internal/lint/purity/testdata/src/taint/leaf",
		"politewifi/internal/lint/purity/testdata/src/taint/mid",
		"politewifi/internal/lint/purity/testdata/src/taint/world",
	}
	run := func(label string) string {
		res, err := lint.RunOpts(lint.Options{
			Patterns:  taint,
			FactCache: dir,
		})
		if err != nil {
			t.Fatalf("%s run: %v", label, err)
		}
		var b strings.Builder
		for _, f := range res.Findings {
			fmt.Fprintln(&b, f)
		}
		return b.String()
	}

	cold := run("cold")
	if cold == "" {
		t.Fatalf("taint fixture produced no findings; the cache test needs real output to compare")
	}
	entries := 0
	filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".facts") {
			entries++
		}
		return nil
	})
	if entries == 0 {
		t.Fatalf("cold run populated no fact-cache entries in %s", dir)
	}

	if warm := run("warm"); warm != cold {
		t.Errorf("warm-cache findings differ from cold run:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}
