package lint

import (
	"fmt"
	"go/types"
	"sort"
	"strings"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/load"
	"politewifi/internal/lint/purity"
)

// Certify renders the determinism certificate: a byte-stable manifest
// of every exported function in the target packages, stating whether
// politevet certifies it pure — no wall-clock read, no global-RNG
// draw, no busy-wait spin, no pooled-buffer escape reachable through
// any chain of calls — and, when not, exactly what impurity is
// reachable and whether it is sanctioned. Sanctioned impurity raises
// no diagnostic anywhere, so this manifest is the only place it is
// visible: CI regenerates the certificate and fails on a diff, which
// turns "the impure surface widened" into a reviewable commit instead
// of a silent drift.
//
// Packages under internal/lint are excluded: the tool does not
// certify itself (its loader shells out to the go command and reads
// the filesystem; certifying that would be noise, not signal).
//
// The output is a pure function of the analyzed source: packages
// sort by import path, functions by object key, chains render
// module-relative — so the bytes are identical across checkouts,
// worker counts, and cache states.
func Certify(opts Options) (string, error) {
	g, err := load.Load(load.Config{Dir: opts.Dir, Workers: opts.Workers}, opts.Patterns...)
	if err != nil {
		return "", err
	}
	factSets, err := factPhase(g, opts.FactCache)
	if err != nil {
		return "", err
	}

	var targets []string
	for _, t := range g.Targets {
		if strings.Contains(t, "/lint") {
			continue
		}
		targets = append(targets, t)
	}
	sort.Strings(targets)
	g.Prefetch(targets)

	var b strings.Builder
	b.WriteString("# politevet determinism certificate\n\n")
	b.WriteString("<!-- Generated: politevet -certify " + strings.Join(opts.Patterns, " ") + " -->\n")
	b.WriteString("<!-- Do not edit. CI regenerates this file and fails on any diff;   -->\n")
	b.WriteString("<!-- commit the regenerated certificate with any change that alters -->\n")
	b.WriteString("<!-- the certified surface.                                         -->\n\n")
	b.WriteString("Every exported function below is certified **pure** — no wall-clock\n")
	b.WriteString("read, global-RNG draw, busy-wait spin, or pooled-buffer escape is\n")
	b.WriteString("reachable through any chain of calls — unless an entry says\n")
	b.WriteString("otherwise. Sanctioned impurity (covered by a //politevet:allow\n")
	b.WriteString("directive or the cmd/ allowlist) raises no diagnostic, so this\n")
	b.WriteString("manifest is where it stays visible. internal/lint is excluded: the\n")
	b.WriteString("tool does not certify itself.\n")

	for _, target := range targets {
		pkg, err := g.Package(target)
		if err != nil {
			return "", err
		}
		fs := factSets[target]
		if fs == nil {
			fs = analysis.NewFactSet(target)
		}
		b.WriteString("\n## " + target + "\n\n")
		entries := certEntries(pkg.Types, fs)
		if len(entries) == 0 {
			b.WriteString("(no exported functions)\n")
			continue
		}
		for _, e := range entries {
			b.WriteString(e + "\n")
		}
	}
	return b.String(), nil
}

// certEntries renders one line per exported function or method of
// tpkg, sorted by object key.
func certEntries(tpkg *types.Package, fs *analysis.FactSet) []string {
	var keys []string
	scope := tpkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		switch obj := scope.Lookup(name).(type) {
		case *types.Func:
			if obj.Exported() {
				if key, _, ok := analysis.ObjectKey(obj); ok {
					keys = append(keys, key)
				}
			}
		case *types.TypeName:
			named, ok := obj.Type().(*types.Named)
			if !ok || !obj.Exported() {
				continue
			}
			for i := 0; i < named.NumMethods(); i++ {
				m := named.Method(i)
				if !m.Exported() {
					continue
				}
				if key, _, ok := analysis.ObjectKey(m); ok {
					keys = append(keys, key)
				}
			}
		}
	}
	sort.Strings(keys)

	out := make([]string, 0, len(keys))
	for _, key := range keys {
		var sig purity.Sig
		if !fs.Get(key, &sig) {
			out = append(out, fmt.Sprintf("- `%s` — pure", key))
			continue
		}
		var notes []string
		if t := sig.Wallclock; t != nil {
			notes = append(notes, taintNote("wallclock", t))
		}
		if t := sig.GlobalRand; t != nil {
			notes = append(notes, taintNote("globalrand", t))
		}
		if t := sig.Spin; t != nil {
			notes = append(notes, taintNote("spin", t))
		}
		for _, e := range sig.Escapes {
			n := fmt.Sprintf("escape(param %d): %s", e.Param, purity.ChainString(e.Chain))
			if e.Sanctioned {
				n += sanctionSuffix(e.Reason)
			}
			notes = append(notes, n)
		}
		if len(notes) == 0 {
			// Only yield/clamp information: still pure for the
			// certificate's purposes.
			out = append(out, fmt.Sprintf("- `%s` — pure", key))
			continue
		}
		out = append(out, fmt.Sprintf("- `%s` — %s", key, strings.Join(notes, "; ")))
	}
	return out
}

func taintNote(kind string, t *purity.Trace) string {
	n := kind + ": " + purity.ChainString(t.Chain)
	if t.Sanctioned {
		n += sanctionSuffix(t.Reason)
	}
	return n
}

func sanctionSuffix(reason string) string {
	if reason == "" {
		reason = "allowlisted"
	}
	return " (sanctioned: " + reason + ")"
}
