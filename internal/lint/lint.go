// Package lint is politevet's driver: it runs the politewifi
// invariant analyzers over type-checked packages, applies
// //politevet:allow suppression, and validates the directives
// themselves. The analyzers mechanically enforce what the simulator's
// bit-identical-census guarantee rests on — no wall clock, no global
// RNG, no unsorted map iteration into emit paths, no unguarded
// duration narrowing, no hot-spin polling, no pooled buffer escaping
// its stop — so the invariants live in CI instead of in reviewers'
// heads. See DESIGN.md §5e and §5j.
//
// Since the interprocedural upgrade the driver runs in two phases.
// Phase A walks every in-module package in dependency order and runs
// the purity fact pass (internal/lint/purity) over each, producing a
// frozen per-package fact set; sets are content-addressed in a fact
// cache, so unchanged subtrees cost one hash check. Phase B runs the
// user-facing analyzers over the target units (test variants
// included) in parallel, with the full fact universe attached to
// each pass — which is what lets wallclock report `world.Run →
// rt.poll → time.Now` instead of only direct calls.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"sync"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/bufreuse"
	"politewifi/internal/lint/durwrap"
	"politewifi/internal/lint/globalrand"
	"politewifi/internal/lint/load"
	"politewifi/internal/lint/purity"
	"politewifi/internal/lint/simsleep"
	"politewifi/internal/lint/sortedrange"
	"politewifi/internal/lint/unusedallow"
	"politewifi/internal/lint/wallclock"
)

// DirectiveChecker is the name under which malformed or unknown
// //politevet:allow directives are reported. Directive findings are
// never suppressible: an escape hatch that can silence the check on
// its own grammar is no escape hatch at all.
const DirectiveChecker = "directive"

// Analyzers returns the politevet analyzer set in stable order. The
// purity fact pass is not in it: the driver always prepends it.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufreuse.Analyzer,
		durwrap.Analyzer,
		globalrand.Analyzer,
		simsleep.Analyzer,
		sortedrange.Analyzer,
		unusedallow.Analyzer,
		wallclock.Analyzer,
	}
}

// Finding is one surfaced diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// ComputeFacts runs the purity pass over one type-checked package and
// returns its frozen fact set. imported supplies the frozen sets of
// already-analyzed dependencies, keyed by plain import path.
func ComputeFacts(pkg *load.Package, imported map[string]*analysis.FactSet) (*analysis.FactSet, error) {
	facts := &analysis.Facts{
		Current:  analysis.NewFactSet(analysis.TrimTestVariant(pkg.ImportPath)),
		Imported: imported,
	}
	pass := &analysis.Pass{
		Analyzer:  purity.Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Facts:     facts,
		Report:    func(analysis.Diagnostic) {}, // the fact pass reports nothing
	}
	if err := purity.Analyzer.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: purity: %v", pkg.ImportPath, err)
	}
	facts.Current.Freeze()
	return facts.Current, nil
}

// RunPackage applies the analyzers to one package, filters findings
// through valid //politevet:allow directives, and appends directive
// grammar violations and stale-directive findings. The purity fact
// pass always runs first so same-package transitive checks work even
// without a dependency fact universe; pass imported dependency sets
// (or nil) via facts. Findings come back sorted by position.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer, imported map[string]*analysis.FactSet) ([]Finding, error) {
	supp := analysis.NewSuppressor(pkg.Fset, pkg.Files)
	// Directives may name any registered analyzer, including ones the
	// caller disabled for this run.
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool, len(analyzers))
	wantUnused := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.Name == unusedallow.Analyzer.Name {
			wantUnused = true
			continue
		}
		ran[a.Name] = true
	}

	facts := &analysis.Facts{
		Current:  analysis.NewFactSet(analysis.TrimTestVariant(pkg.ImportPath)),
		Imported: nil,
	}
	if imported != nil {
		facts.Imported = imported
	}

	var findings []Finding
	runOne := func(a *analysis.Analyzer, report func(analysis.Diagnostic)) error {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			Report:    report,
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
		return nil
	}

	// The fact pass first: it populates facts.Current, which the
	// analyzers consult for same-package callees.
	if err := runOne(purity.Analyzer, func(analysis.Diagnostic) {}); err != nil {
		return nil, err
	}

	for _, a := range analyzers {
		if a.Name == unusedallow.Analyzer.Name {
			continue // driver-level; handled after the analyzers report
		}
		name := a.Name
		if err := runOne(a, func(d analysis.Diagnostic) {
			if supp.Suppressed(name, d.Pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}); err != nil {
			return nil, err
		}
	}

	for _, f := range pkg.Files {
		for _, d := range analysis.ParseDirectives(f) {
			switch {
			case d.Malformed != "":
				findings = append(findings, Finding{
					Analyzer: DirectiveChecker,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Malformed,
				})
			case !known[d.Analyzer]:
				findings = append(findings, Finding{
					Analyzer: DirectiveChecker,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  fmt.Sprintf("directive names unknown analyzer %q", d.Analyzer),
				})
			}
		}
	}

	if wantUnused {
		for _, d := range supp.Unused(ran) {
			findings = append(findings, Finding{
				Analyzer: unusedallow.Analyzer.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message: fmt.Sprintf("//politevet:allow %s(%s) suppressed nothing this run; "+
					"the finding it excused is gone — remove the stale directive", d.Analyzer, d.Reason),
			})
		}
	}

	sortFindings(findings)
	return findings, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Options configures an interprocedural run.
type Options struct {
	// Dir is where go commands run ("" = current directory).
	Dir string
	// Patterns are go list package patterns; required.
	Patterns []string
	// Tests includes test units for the targets (default in Run).
	Tests bool
	// Workers bounds parallel type-checking and target analysis
	// (0 = GOMAXPROCS).
	Workers int
	// FactCache is the cache directory spec: "" for the per-user
	// default, "off" to disable.
	FactCache string
	// Analyzers is the user-facing set to run (nil = all).
	Analyzers []*analysis.Analyzer
}

// Result carries a run's findings plus the fact universe it computed,
// which the certificate renderer consumes.
type Result struct {
	Findings []Finding
	// FactSets maps each in-module package (plain path) to its frozen
	// fact set.
	FactSets map[string]*analysis.FactSet
	// Graph is the loaded package graph.
	Graph *load.Graph
}

// RunOpts is the two-phase interprocedural driver.
func RunOpts(opts Options) (*Result, error) {
	g, err := load.Load(load.Config{Dir: opts.Dir, Tests: opts.Tests, Workers: opts.Workers}, opts.Patterns...)
	if err != nil {
		return nil, err
	}
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}

	factSets, err := factPhase(g, opts.FactCache)
	if err != nil {
		return nil, err
	}

	// Phase B: analyze the target units in parallel. Output order is
	// restored by position sort, so concurrency never shows.
	g.Prefetch(g.Targets)
	type targetResult struct {
		findings []Finding
		err      error
	}
	results := make([]targetResult, len(g.Targets))
	sem := make(chan struct{}, g.Workers())
	var wg sync.WaitGroup
	for i, target := range g.Targets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, target string) {
			defer wg.Done()
			defer func() { <-sem }()
			pkg, err := g.Package(target)
			if err != nil {
				results[i] = targetResult{err: err}
				return
			}
			fs, err := RunPackage(pkg, analyzers, factSets)
			results[i] = targetResult{findings: fs, err: err}
		}(i, target)
	}
	wg.Wait()

	var all []Finding
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		all = append(all, r.findings...)
	}
	sortFindings(all)
	return &Result{Findings: all, FactSets: factSets, Graph: g}, nil
}

// factPhase computes (or loads from cache) the fact set of every
// in-module package, dependencies first.
func factPhase(g *load.Graph, cacheSpec string) (map[string]*analysis.FactSet, error) {
	cache := openFactCache(cacheSpec)
	factSets := make(map[string]*analysis.FactSet, len(g.Order))
	keys := make(map[string]string, len(g.Order))
	var misses []string
	for _, path := range g.Order {
		key, err := factKey(g.Units[path], path, g.ModuleDeps[path], keys)
		if err != nil {
			return nil, fmt.Errorf("lint: hashing %s: %v", path, err)
		}
		keys[path] = key
		if data, ok := cache.get(key); ok {
			fs, err := analysis.DecodeFactSet(path, data)
			if err == nil {
				fs.Freeze()
				factSets[path] = fs
				continue
			}
			// A corrupt or version-skewed entry is a miss, not an error.
		}
		misses = append(misses, path)
	}

	// Cache misses need type-checking; do that in parallel up front,
	// then run the (cheap) fact pass sequentially in dependency order
	// so every pass sees its dependencies' completed sets.
	g.Prefetch(misses)
	for _, path := range g.Order {
		if factSets[path] != nil {
			continue
		}
		pkg, err := g.Package(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", path, err)
		}
		fs, err := ComputeFacts(pkg, factSets)
		if err != nil {
			return nil, err
		}
		factSets[path] = fs
		if data, err := fs.Encode(); err == nil {
			cache.put(keys[path], data)
		}
	}
	return factSets, nil
}

// Run loads the packages matching patterns (tests included) and runs
// the full analyzer set over each with the default fact cache.
func Run(dir string, patterns ...string) ([]Finding, error) {
	res, err := RunOpts(Options{Dir: dir, Patterns: patterns, Tests: true})
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}
