// Package lint is politevet's driver: it runs the six politewifi
// invariant analyzers over type-checked packages, applies
// //politevet:allow suppression, and validates the directives
// themselves. The analyzers mechanically enforce what the simulator's
// bit-identical-census guarantee rests on — no wall clock, no global
// RNG, no unsorted map iteration into emit paths, no unguarded
// duration narrowing, no hot-spin polling, no pooled buffer escaping
// its stop — so the invariants live in CI instead of in reviewers'
// heads. See DESIGN.md §5e.
package lint

import (
	"fmt"
	"go/token"
	"sort"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/bufreuse"
	"politewifi/internal/lint/durwrap"
	"politewifi/internal/lint/globalrand"
	"politewifi/internal/lint/load"
	"politewifi/internal/lint/simsleep"
	"politewifi/internal/lint/sortedrange"
	"politewifi/internal/lint/wallclock"
)

// DirectiveChecker is the name under which malformed or unknown
// //politevet:allow directives are reported. Directive findings are
// never suppressible: an escape hatch that can silence the check on
// its own grammar is no escape hatch at all.
const DirectiveChecker = "directive"

// Analyzers returns the politevet analyzer set in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		bufreuse.Analyzer,
		durwrap.Analyzer,
		globalrand.Analyzer,
		simsleep.Analyzer,
		sortedrange.Analyzer,
		wallclock.Analyzer,
	}
}

// Finding is one surfaced diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunPackage applies the analyzers to one package, filters findings
// through valid //politevet:allow directives, and appends directive
// grammar violations. Findings come back sorted by position.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	supp := analysis.NewSuppressor(pkg.Fset, pkg.Files)
	// Directives may name any registered analyzer, including ones the
	// caller disabled for this run.
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			if supp.Suppressed(name, d.Pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.ImportPath, a.Name, err)
		}
	}

	for _, f := range pkg.Files {
		for _, d := range analysis.ParseDirectives(f) {
			switch {
			case d.Malformed != "":
				findings = append(findings, Finding{
					Analyzer: DirectiveChecker,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Malformed,
				})
			case !known[d.Analyzer]:
				findings = append(findings, Finding{
					Analyzer: DirectiveChecker,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  fmt.Sprintf("directive names unknown analyzer %q", d.Analyzer),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// Run loads the packages matching patterns (tests included) and runs
// the full analyzer set over each.
func Run(dir string, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Packages(dir, true, patterns...)
	if err != nil {
		return nil, err
	}
	var all []Finding
	for _, pkg := range pkgs {
		fs, err := RunPackage(pkg, Analyzers())
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}
