package durwrap_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/durwrap"
)

func TestDurwrap(t *testing.T) {
	analysistest.Run(t, durwrap.Analyzer, "a")
}

// TestClampHelpers checks that a named clamp helper carrying a purity
// Clamp fact sanctions the narrowing of its result, and that a helper
// which bounds only one side does not.
func TestClampHelpers(t *testing.T) {
	analysistest.Run(t, durwrap.Analyzer, "clamp")
}
