package durwrap_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/durwrap"
)

func TestDurwrap(t *testing.T) {
	analysistest.Run(t, durwrap.Analyzer, "a")
}
