// Package a is a durwrap fixture: the dot11.CTSFor NAV-underflow bug
// class, reintroduced, alongside the sanctioned guarded shapes.
package a

// Time mirrors eventsim.Time: signed nanoseconds of sim time.
type Time int64

// Microsecond mirrors eventsim.Microsecond.
const Microsecond Time = 1000

// RTS mirrors the wire frame: Duration is a bare uint16 µs count.
type RTS struct {
	Duration uint16
}

// ctsForBuggy is the original CTSFor bug, reintroduced: when the RTS
// carries less duration than the response overhead, the subtraction
// wraps to ~65535 µs before the narrowing conversion ever sees it.
func ctsForBuggy(r *RTS, overheadUS uint16) uint16 {
	return r.Duration - overheadUS // want "unsigned subtraction r.Duration - overheadUS on duration-like operands wraps below zero"
}

// ctsForNarrow reintroduces the same bug one layer up: subtract in
// signed sim time but narrow the possibly-negative result straight
// into the uint16 wire field.
func ctsForNarrow(r *RTS, elapsed Time) uint16 {
	return uint16((Time(r.Duration)*Microsecond - elapsed) / Microsecond) // want "uint16\\(\\.\\.\\.\\) narrows duration-typed"
}

// ctsForFixed is the sanctioned shape from dot11.CTSFor: subtract in
// signed time, clamp at zero, then narrow.
func ctsForFixed(r *RTS, elapsed Time) uint16 {
	remaining := Time(r.Duration)*Microsecond - elapsed
	if remaining < 0 {
		remaining = 0
	}
	return uint16(remaining / Microsecond)
}

// guardedEarlyExit bails out before the subtraction can wrap.
func guardedEarlyExit(deadline, now uint32) uint32 {
	if now > deadline {
		return 0
	}
	return deadline - now
}

// enclosingCond is guarded by the surrounding if condition.
func enclosingCond(timeout, elapsed uint16) uint16 {
	if timeout > elapsed {
		return timeout - elapsed
	}
	return 0
}

// unguarded wraps when elapsed exceeds timeout.
func unguarded(timeout, elapsed uint16) uint16 {
	return timeout - elapsed // want "unsigned subtraction timeout - elapsed on duration-like operands wraps below zero"
}

// narrowUnguarded narrows a signed duration with no dominating guard.
func narrowUnguarded(d Time) uint32 {
	return uint32(d / Microsecond) // want "uint32\\(\\.\\.\\.\\) narrows duration-typed"
}

// narrowClamped narrows through the builtin max, which floors at zero.
func narrowClamped(d Time) uint32 {
	return uint32(max(d, 0) / Microsecond)
}

// narrowConst narrows a compile-time constant; the compiler range-checks it.
func narrowConst() uint16 {
	return uint16(32 * Microsecond / Microsecond)
}

// seqDelta is modular sequence arithmetic: the mask makes wraparound
// intentional, not a hazard. (seqDuration is duration-like by name.)
func seqDelta(a, seqDuration uint16) uint16 {
	return (a - seqDuration) & 0x0fff
}

// counters is unsigned subtraction of non-duration quantities; out of
// scope for this analyzer.
func counters(sent, acked uint32) uint32 {
	return sent - acked
}

// sanctioned carries a reasoned directive.
func sanctioned(nav uint16) uint16 {
	return nav - 1 //politevet:allow durwrap(fixture for a sanctioned wire-field decrement)
}

// SequenceControl mirrors the dot11 wire field for the pack cases.
type SequenceControl struct {
	Fragment uint8
	Number   uint16
}

// packBuggy is the dot11.SequenceControl.Uint16 bug class: the shift
// drops Number's bits above 12 without the protocol's modulo-4096
// wrap ever being spelled out.
func packBuggy(sc SequenceControl) uint16 {
	return uint16(sc.Fragment&0xf) | sc.Number<<4 // want "sc.Number << 4 packs an unmasked value into a 16-bit field"
}

// packFixed masks to the field width before shifting.
func packFixed(sc SequenceControl) uint16 {
	return uint16(sc.Fragment&0xf) | (sc.Number&0xfff)<<4
}

// packBuggyWide loses the TID's high nibble through a widening
// conversion: uint16(tid) can carry 8 bits but only 4 fit above the
// shift.
func packBuggyWide(tid uint8) uint16 {
	return uint16(tid) << 12 // want "uint16\\(tid\\) << 12 packs an unmasked value into a 16-bit field"
}

// packBuggyNoWrap reintroduces the exact shape the repo fixed: no
// mask, full-width operand.
func packBuggyNoWrap(startSeq uint16) uint16 {
	return startSeq << 4 // want "startSeq << 4 packs an unmasked value into a 16-bit field"
}

// packNarrowEnough widens a byte into the room above the shift; no
// bits can fall off.
func packNarrowEnough(flags uint8) uint16 {
	return uint16(flags) << 8
}

// packMaskedResult truncates the result explicitly, so the wrap is
// spelled out.
func packMaskedResult(n uint16) uint16 {
	return (n << 4) & 0xfff0
}

// packConstBit is the idiomatic flag shape: a constant shiftee.
func packConstBit(aid uint16) uint16 {
	return 1 << (aid % 8)
}

// packModBounded is bounded by the modulo before the shift.
func packModBounded(n uint16) uint16 {
	return (n % 4096) << 4
}

// packGuarded has a dominating range guard.
func packGuarded(n uint16) uint16 {
	if n > 0xfff {
		return 0
	}
	return n << 4
}
