// Package clamp exercises durwrap's clamp-helper facts: a named
// helper the purity pass proves returns a bounded non-negative value
// sanctions the narrowing of its result, with no guard at the call
// site. Helpers that do not actually bound their result earn no fact
// and sanction nothing.
package clamp

import "time"

// maxNAV is the widest value a 15-bit NAV field carries.
const maxNAV time.Duration = 32767

// capNAV is the sanctioned clamp shape: an if-chain against a named
// const, provably non-negative and at most 15 bits.
func capNAV(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	if d > maxNAV {
		return maxNAV
	}
	return d
}

// capNAVMinMax is the expression-clamp variant of the same bound.
func capNAVMinMax(d time.Duration) time.Duration {
	return min(max(d, 0), maxNAV)
}

// halfCap clamps, but only from below: the result is non-negative yet
// unbounded above, so it earns no narrowing sanction.
func halfCap(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

func pack(d time.Duration) uint16 {
	return uint16(capNAV(d))
}

func packMinMax(d time.Duration) uint16 {
	return uint16(capNAVMinMax(d))
}

func packUnbounded(d time.Duration) uint16 {
	return uint16(halfCap(d)) // want `narrows duration-typed`
}

func packRaw(d time.Duration) uint16 {
	return uint16(d) // want `narrows duration-typed`
}
