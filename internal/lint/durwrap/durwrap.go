// Package durwrap flags unsigned wrap hazards in duration
// arithmetic: narrowing a duration-typed value into uint8/16/32 and
// subtracting duration-like unsigned quantities, in both cases
// without a dominating guard. This is the exact class of the
// dot11.CTSFor bug fixed in the hostile-channel PR: an 802.11
// Duration/ID field is a uint16 microsecond count, and
// `uint16(r.Duration - overhead)` wraps to ~65535 µs when the RTS
// carries less duration than the overhead — a stale reservation
// becomes a 65 ms channel blackout. The sanctioned shape subtracts in
// signed sim time and clamps before narrowing:
//
//	if need := a - b; need > 0 {
//	    dur = uint16(need / eventsim.Microsecond)
//	}
//
// It also flags the sibling pack hazard: shifting an unmasked value
// into a narrow unsigned wire field (`sc.Number<<4` packed into a
// uint16) silently drops whatever the shift pushes past the field
// width — the dot11.SequenceControl.Uint16 class. The sanctioned shape
// masks to the field width before shifting, mirroring the wrap the
// protocol defines: `(sc.Number&0xfff)<<4`.
//
// Guards may also live inside a named clamp helper instead of at the
// call site: a function the purity fact pass proves returns a
// non-negative value of at most N significant bits (an if-chain
// against a named const, or a min/max clamp — see purity.Clamp)
// earns a Clamp fact, and `uint16(capNAV(d))` is sanctioned whenever
// the fact's bound fits the target width — across package boundaries.
package durwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
	"regexp"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/purity"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "durwrap",
	Doc: "flag uint8/16/32 narrowing of duration-typed values, unsigned subtraction of duration-like " +
		"quantities without a dominating guard (the dot11.CTSFor NAV-underflow class), and unmasked " +
		"shifts that can push bits past an unsigned wire field's width (the dot11 sequence-pack class); " +
		"a named clamp helper carrying a purity Clamp fact sanctions the narrowing it bounds",
	Run: run,
}

// durTypeRE matches named types that represent instants or durations.
// eventsim.Time and time.Duration are matched structurally below;
// this catches project-local aliases like `type NAVMicros uint16`.
var durTypeRE = regexp.MustCompile(`(?i)(time|duration|micros|usec|nanos|nav|deadline|timeout)`)

// durExprRE matches identifiers and field names that carry durations
// even when their type is a bare integer — dot11 frame Duration/ID
// fields are plain uint16 microseconds on the wire.
var durExprRE = regexp.MustCompile(`(?i)^(dur|duration|nav|timeout|deadline|elapsed|remaining|sifs|difs|eifs|airtime|backoff|dwell)$|(?i)(duration|micros|usec|timeout|deadline)`)

func run(pass *analysis.Pass) error {
	nodes := []ast.Node{(*ast.CallExpr)(nil), (*ast.BinaryExpr)(nil)}
	pass.WithStack(nodes, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkConversion(pass, n, stack)
		case *ast.BinaryExpr:
			checkSub(pass, n, stack)
			checkShift(pass, n, stack)
		}
	})
	return nil
}

// checkConversion flags `uintN(d)` where d is duration-typed, N < 64,
// and no guard dominates the conversion.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	target, ok := pass.IsConversion(call)
	if !ok || len(call.Args) != 1 {
		return
	}
	bits, unsigned := analysis.IsUnsigned(target)
	if !unsigned || bits == 0 || bits >= 64 {
		return
	}
	op := call.Args[0]
	if !durationType(pass.TypeOf(op)) {
		return
	}
	// A constant operand is range-checked by the compiler at the
	// conversion; it cannot wrap at run time.
	if tv, ok := pass.TypesInfo.Types[op]; ok && tv.Value != nil {
		return
	}
	// A clamp-helper result (purity Clamp fact) that is provably
	// non-negative and fits the target width cannot wrap: the guard
	// lives inside the named helper instead of at the call site.
	if cf := purity.ClampFactOf(pass, op); cf != nil && cf.NonNeg && cf.Bits <= bits {
		return
	}
	if guarded(pass, stack, op) {
		return
	}
	pass.Reportf(call.Pos(),
		"%s narrows duration-typed %s without a dominating guard and wraps on negative or oversized values (the dot11.CTSFor ~65535µs NAV underflow class); clamp in signed time first: if d := ...; d > 0 { %s(d) }",
		types.ExprString(call.Fun)+"(...)", types.ExprString(op), types.ExprString(call.Fun))
}

// checkSub flags `a - b` evaluated in an unsigned type when either
// operand is duration-like and no guard dominates the subtraction.
func checkSub(pass *analysis.Pass, bin *ast.BinaryExpr, stack []ast.Node) {
	if bin.Op != token.SUB {
		return
	}
	t := pass.TypeOf(bin)
	if t == nil {
		return
	}
	if _, unsigned := analysis.IsUnsigned(t); !unsigned {
		return
	}
	if !durationExpr(pass, bin.X) && !durationExpr(pass, bin.Y) {
		return
	}
	// Masked modular arithmetic ((a - b) & 0xfff on sequence numbers)
	// is intentional wraparound, not a hazard.
	if maskedParent(bin, stack) {
		return
	}
	if guarded(pass, stack, bin.X, bin.Y) {
		return
	}
	pass.Reportf(bin.Pos(),
		"unsigned subtraction %s on duration-like operands wraps below zero (the dot11.CTSFor NAV-underflow class); subtract in signed sim time (eventsim.Time) and clamp before narrowing, or guard with an explicit comparison",
		types.ExprString(bin))
}

// checkShift flags `x << c` evaluated in an unsigned type of width
// N < 64 when the shifted value can carry more than N−c significant
// bits — packing it into the field silently drops the excess, the
// dot11.SequenceControl.Uint16 unmasked-shift-before-pack class. A
// mask on the operand (`(x&0xfff)<<4`), a mask on the result, a value
// provably narrower than the room above the shift, or a dominating
// range guard all sanction the shift.
func checkShift(pass *analysis.Pass, bin *ast.BinaryExpr, stack []ast.Node) {
	if bin.Op != token.SHL {
		return
	}
	t := pass.TypeOf(bin)
	width, unsigned := analysis.IsUnsigned(t)
	if !unsigned || width == 0 || width >= 64 {
		return
	}
	// A constant shiftee is range-checked by the compiler in a constant
	// expression, and a constant bit (1 << n) is the idiomatic flag
	// shape — neither silently truncates a runtime value.
	if tv, ok := pass.TypesInfo.Types[bin.X]; ok && tv.Value != nil {
		return
	}
	shift, ok := constUint(pass, bin.Y)
	if !ok || shift == 0 || shift >= uint64(width) {
		return
	}
	if effectiveBits(pass, bin.X) <= width-int(shift) {
		return
	}
	if maskedParent(bin, stack) {
		return
	}
	if guarded(pass, stack, bin.X) {
		return
	}
	pass.Reportf(bin.Pos(),
		"%s packs an unmasked value into a %d-bit field: bits above %d are silently dropped by the shift (the dot11.SequenceControl.Uint16 unmasked-shift-before-pack class); mask to the field width first: (%s & %#x) << %d",
		types.ExprString(bin), width, width-int(shift),
		types.ExprString(bin.X), uint64(1)<<(width-int(shift))-1, shift)
}

// constUint evaluates e as a compile-time unsigned constant.
func constUint(pass *analysis.Pass, e ast.Expr) (uint64, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Uint64Val(constant.ToInt(tv.Value))
	return v, exact
}

// effectiveBits bounds the number of significant bits e can carry at
// run time: constants by value, masks and modulo by their constant
// bound, conversions and typed expressions by width. 64 means unknown.
func effectiveBits(pass *analysis.Pass, e ast.Expr) int {
	if v, ok := constUint(pass, e); ok {
		return bits.Len64(v)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return effectiveBits(pass, e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.AND:
			// x & mask: bounded by either side's bound.
			return min(effectiveBits(pass, e.X), effectiveBits(pass, e.Y))
		case token.SHR:
			if c, ok := constUint(pass, e.Y); ok {
				return max(effectiveBits(pass, e.X)-int(c), 0)
			}
		case token.REM:
			// x % m for constant m is bounded by m-1.
			if m, ok := constUint(pass, e.Y); ok && m > 0 {
				return bits.Len64(m - 1)
			}
		}
	case *ast.CallExpr:
		if target, ok := pass.IsConversion(e); ok && len(e.Args) == 1 {
			w := 64
			if cw, unsigned := analysis.IsUnsigned(target); unsigned && cw > 0 {
				w = cw
			}
			return min(w, effectiveBits(pass, e.Args[0]))
		}
		// A clamp helper's result is bounded by its Clamp fact.
		if cf := purity.ClampFactOf(pass, e); cf != nil && cf.NonNeg {
			return cf.Bits
		}
	}
	if w, unsigned := analysis.IsUnsigned(pass.TypeOf(e)); unsigned && w > 0 {
		return w
	}
	return 64
}

// durationType reports whether t is a type that carries a duration:
// time.Duration, eventsim.Time, or a named integer whose name says
// time/duration.
func durationType(t types.Type) bool {
	if t == nil {
		return false
	}
	if analysis.NamedType(t, "time", "Duration") ||
		analysis.NamedType(t, "politewifi/internal/eventsim", "Time") {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if b, ok := n.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	return durTypeRE.MatchString(n.Obj().Name())
}

// durationExpr reports whether e is duration-like by type or, for
// bare-integer wire fields, by name.
func durationExpr(pass *analysis.Pass, e ast.Expr) bool {
	if durationType(pass.TypeOf(e)) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return durExprRE.MatchString(e.Name)
	case *ast.SelectorExpr:
		return durExprRE.MatchString(e.Sel.Name)
	case *ast.ParenExpr:
		return durationExpr(pass, e.X)
	case *ast.BinaryExpr:
		return durationExpr(pass, e.X) || durationExpr(pass, e.Y)
	case *ast.CallExpr:
		if _, ok := pass.IsConversion(e); ok && len(e.Args) == 1 {
			return durationExpr(pass, e.Args[0])
		}
	}
	return false
}

// guarded reports whether a comparison involving one of the operand
// expressions' identifiers dominates the node at the top of stack:
// either an enclosing if whose condition mentions an operand, a
// preceding early-exit or clamping if in the same block, or a
// clamping min/max/clamp call inside the operand itself.
func guarded(pass *analysis.Pass, stack []ast.Node, operands ...ast.Expr) bool {
	names := make(map[string]bool)
	for _, op := range operands {
		collectNames(op, names)
		if containsClamp(pass, op) {
			return true
		}
	}
	if len(names) == 0 {
		// A constant-folded or literal-only operand can't be guarded
		// by name; treat untracked shapes as unguarded.
		return false
	}

	self := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			if mentionsAny(n.Cond, names) {
				return true
			}
		case *ast.ForStmt:
			if n.Cond != nil && mentionsAny(n.Cond, names) {
				return true
			}
		case *ast.CaseClause:
			for _, e := range n.List {
				if mentionsAny(e, names) {
					return true
				}
			}
		case *ast.BlockStmt:
			if precedingGuard(n, self, names) {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

// precedingGuard scans the statements of block before the one
// containing self for an if that mentions an operand name and either
// exits early or assigns (clamps) the operand.
func precedingGuard(block *ast.BlockStmt, self ast.Node, names map[string]bool) bool {
	for _, stmt := range block.List {
		if stmt.Pos() >= self.Pos() {
			break
		}
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok || !mentionsAny(ifs.Cond, names) {
			continue
		}
		if terminates(ifs.Body) || assignsAny(ifs.Body, names) {
			return true
		}
	}
	return false
}

func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func assignsAny(body *ast.BlockStmt, names map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if mentionsAny(lhs, names) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if mentionsAny(n.X, names) {
				found = true
			}
		}
		return !found
	})
	return found
}

func collectNames(e ast.Expr, names map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			names[n.Name] = true
		case *ast.SelectorExpr:
			names[n.Sel.Name] = true
		}
		return true
	})
}

func mentionsAny(e ast.Expr, names map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if names[n.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if names[n.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsClamp reports whether the operand already passes through a
// clamping call: builtin min/max or anything named like clamp.
var clampRE = regexp.MustCompile(`(?i)^(clamp|saturate)`)

func containsClamp(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[fn]; ok {
				if _, builtin := obj.(*types.Builtin); builtin && (fn.Name == "min" || fn.Name == "max") {
					found = true
				}
			}
			if clampRE.MatchString(fn.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if clampRE.MatchString(fn.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// maskedParent reports whether the subtraction's immediate parent is
// a bitwise-AND with a constant mask.
func maskedParent(bin *ast.BinaryExpr, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			// keep walking out through parentheses
		case *ast.BinaryExpr:
			return p.Op == token.AND
		default:
			return false
		}
	}
	return false
}
