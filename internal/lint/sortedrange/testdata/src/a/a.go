// Package a is a sortedrange fixture: emitting from inside a
// range-over-map loop versus the sanctioned collect → sort → emit.
package a

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"politewifi/internal/telemetry/stream"
)

func printsDirectly(w io.Writer, m map[string]int) {
	for k, v := range m { // want "range over map m emits inside the loop \\(fmt.Fprintf\\)"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func buildsDirectly(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want "range over map m emits inside the loop \\(b.WriteString\\)"
		b.WriteString(k)
	}
	return b.String()
}

func csvDirectly(w *csv.Writer, m map[string]string) {
	for k, v := range m { // want "range over map m emits inside the loop \\(w.Write\\)"
		_ = w.Write([]string{k, v})
	}
}

func jsonDirectly(enc *json.Encoder, m map[string]int) {
	for _, v := range m { // want "range over map m emits inside the loop \\(enc.Encode\\)"
		_ = enc.Encode(v)
	}
}

// The flight-recorder stream is NDJSON in stop order; writing records
// straight out of a map range shuffles the stream on every run.
func streamDirectly(w *stream.Writer, m map[int]stream.Record) {
	for _, rec := range m { // want "range over map m emits inside the loop \\(w.Write\\)"
		_ = w.Write(rec)
	}
}

// The sanctioned stream shape: order the records by stop index first.
func streamOrdered(w *stream.Writer, m map[int]stream.Record) {
	stops := make([]int, 0, len(m))
	for stop := range m {
		stops = append(stops, stop)
	}
	sort.Ints(stops)
	for _, stop := range stops {
		_ = w.Write(m[stop])
	}
}

// The sanctioned shape: collect into a slice, sort, then emit.
func collectSortEmit(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Pure aggregation inside a map range is order-insensitive and fine.
func aggregates(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Suppressible where emit order genuinely does not matter.
func sanctioned(w io.Writer, m map[string]bool) {
	for k := range m { //politevet:allow sortedrange(fixture for a sanctioned debug dump)
		fmt.Fprintln(w, k)
	}
}
