// Package sortedrange forbids emitting output from inside a
// range-over-map loop. Go randomizes map iteration order, so a loop
// that prints, encodes, or writes rows as it ranges produces a
// different census, report, or CSV on every run — the exact bug
// class the stop-index-ordered merge in internal/telemetry exists to
// prevent. The sanctioned shape is collect → sort → emit (see
// telemetry.Registry.Snapshot or experiments.topVendors): a map range
// that only accumulates into a slice or another map is fine.
package sortedrange

import (
	"go/ast"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sortedrange",
	Doc: "forbid range-over-map loops whose body writes to an emit path (fmt.Fprint*, csv/json encoders, " +
		"string builders); collect rows, sort by key, then emit",
	Run: run,
}

// pkgSinks are package-level emit functions.
var pkgSinks = map[string]map[string]bool{
	"fmt": {"Fprint": true, "Fprintf": true, "Fprintln": true,
		"Print": true, "Printf": true, "Println": true},
	"io": {"WriteString": true},
}

// methodSinks are emit methods on well-known writer types, keyed by
// "pkgpath.Type".
var methodSinks = map[string]map[string]bool{
	"encoding/csv.Writer":   {"Write": true, "WriteAll": true},
	"encoding/json.Encoder": {"Encode": true},
	"text/tabwriter.Writer": {"Write": true},
	"strings.Builder":       writerMethods(),
	"bytes.Buffer":          writerMethods(),
	"bufio.Writer":          writerMethods(),
	"os.File":               {"Write": true, "WriteString": true},
	// The flight recorder's NDJSON stream is an ordered artifact: a
	// record written from inside a map range lands at a
	// map-iteration-random position in the stream.
	"politewifi/internal/telemetry/stream.Writer": {"Write": true},
}

func writerMethods() map[string]bool {
	return map[string]bool{
		"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	}
}

func run(pass *analysis.Pass) error {
	pass.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		t := pass.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return
		}
		if sink := firstSink(pass, rs.Body); sink != nil {
			pass.Reportf(rs.Pos(),
				"range over map %s emits inside the loop (%s), so output order follows the randomized map iteration; collect rows, sort by key, then emit (the telemetry.Report pattern), or carry a //politevet:allow sortedrange(reason) directive",
				types.ExprString(rs.X), sinkName(pass, sink))
		}
	})
	return nil
}

// firstSink returns the first emit call in body, or nil.
func firstSink(pass *analysis.Pass, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSink(pass, call) {
			found = call
			return false
		}
		return true
	})
	return found
}

func isSink(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	for path, names := range pkgSinks {
		if name, ok := pass.PkgLevelRef(sel, path); ok && names[name] {
			return true
		}
	}
	if named := pass.ReceiverNamed(call); named != nil && named.Obj().Pkg() != nil {
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if names, ok := methodSinks[key]; ok && names[sel.Sel.Name] {
			return true
		}
	}
	return false
}

func sinkName(pass *analysis.Pass, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel)
	}
	return types.ExprString(call.Fun)
}
