package sortedrange_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/sortedrange"
)

func TestSortedrange(t *testing.T) {
	analysistest.Run(t, sortedrange.Analyzer, "a")
}
