// Package bufreuse flags pooled frame buffers that escape the scope
// their pooling is valid in. The zero-alloc event core recycles
// receive buffers aggressively: radio.Reception.Data aliases the
// stop's frame arena (reset — not freed — at every stop boundary)
// and arena.Arena.Alloc hands out chunks that the next Reset
// reclaims. Retaining such bytes inside one stop's event cascade is
// fine; letting them cross a goroutine boundary or land in a
// package-level variable is not, because the consumer reads them
// after the arena has been rewound and the backing memory rewritten
// by a later stop — the silent-corruption class that
// Attacker.RetainFrames exists to opt out of.
//
// The analyzer tracks pooled values — expressions of a named
// Reception type, selectors of their Data field, results of an
// Arena.Alloc call, and locals/composites built from any of those —
// and reports when one is sent on a channel or stored into a
// package-level variable. Stores into struct fields of locals (the
// pooled-job idiom: a deferred event re-reads the buffer later in
// the same stop) are deliberately out of scope.
//
// The interprocedural upgrade adds the escaping-argument check,
// backed by the purity fact pass (DESIGN.md §5j): passing a pooled
// value into a parameter that the callee — possibly in another
// package, possibly through further calls — sends on a channel or
// stores at package level is the same escape one hop removed, and is
// reported at the call site with the chain down to the sink.
package bufreuse

import (
	"go/ast"
	"go/types"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/purity"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "bufreuse",
	Doc: "flag pooled reception/arena buffers escaping their stop: sent on a channel, " +
		"stored in a package-level variable, or passed to a function whose purity facts " +
		"say the parameter escapes (chain reported) — all without an explicit copy",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass, local: make(map[types.Object]bool)}
			c.check(fd.Body)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	// local marks function-local objects assigned a pooled value
	// earlier in source order — enough flow sensitivity to catch
	// `ev := frameEvent{rx: rx}; ch <- ev` without SSA.
	local map[types.Object]bool
}

func (c *checker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.assign(n)
		case *ast.ValueSpec:
			c.valueSpec(n)
		case *ast.SendStmt:
			if c.pooled(n.Value) {
				c.pass.Reportf(n.Pos(),
					"pooled buffer sent on a channel: reception/arena bytes are recycled at stop reset, so the consumer may read rewritten memory; copy first (append([]byte(nil), b...)) or opt out of pooling (Attacker.RetainFrames), or carry a //politevet:allow bufreuse(reason) directive")
			}
		case *ast.CallExpr:
			c.escapingArgs(n)
		}
		return true
	})
}

// escapingArgs reports pooled values passed into parameters the
// callee's purity facts mark as escaping.
func (c *checker) escapingArgs(call *ast.CallExpr) {
	escapes := purity.EscapeFactOf(c.pass, call)
	if len(escapes) == 0 {
		return
	}
	for _, esc := range escapes {
		if esc.Sanctioned || esc.Param >= len(call.Args) {
			continue
		}
		if !c.pooled(call.Args[esc.Param]) {
			continue
		}
		c.pass.Reportf(call.Args[esc.Param].Pos(),
			"pooled buffer passed to a parameter that escapes its stop: %s; reception/arena bytes are recycled at stop reset, so the eventual reader may see rewritten memory; copy first (append([]byte(nil), b...)), or carry a //politevet:allow bufreuse(reason) directive",
			purity.ChainString(esc.Chain))
	}
}

// assign handles both sinks (package-level LHS fed a pooled RHS) and
// propagation (local ident bound to a pooled RHS).
func (c *checker) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		if len(as.Lhs) == len(as.Rhs) {
			rhs = as.Rhs[i]
		} else if len(as.Rhs) == 1 {
			// Tuple assignment from a call: call results are never
			// considered pooled (Alloc is handled as a single value).
			continue
		}
		if rhs == nil || !c.pooled(rhs) {
			continue
		}
		if c.pkgLevelBase(lhs) {
			c.pass.Reportf(as.Pos(),
				"pooled buffer stored in a package-level variable: reception/arena bytes are recycled at stop reset and a later stop will rewrite them; copy first (append([]byte(nil), b...)), or carry a //politevet:allow bufreuse(reason) directive")
			continue
		}
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := c.objectOf(id); obj != nil {
				c.local[obj] = true
			}
		}
	}
}

// valueSpec propagates pooledness through `var ev = event{rx: rx}`.
func (c *checker) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		if c.pooled(vs.Values[i]) {
			if obj := c.objectOf(name); obj != nil {
				c.local[obj] = true
			}
		}
	}
}

// pooled reports whether e yields (or aliases) a recycled buffer.
func (c *checker) pooled(e ast.Expr) bool {
	e = ast.Unparen(e)
	// Any value of a named Reception type carries its pooled Data
	// alias wherever it goes, by value or by pointer.
	if t := c.pass.TypeOf(e); t != nil && namedCalled(t, "Reception") {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := c.objectOf(e); obj != nil {
			return c.local[obj]
		}
	case *ast.SelectorExpr:
		// rx.Data on a Reception: the arena-backed byte alias itself.
		if e.Sel.Name == "Data" {
			if t := c.pass.TypeOf(e.X); t != nil && namedCalled(t, "Reception") {
				return true
			}
		}
		return c.pooled(e.X)
	case *ast.SliceExpr:
		// Reslicing keeps the backing array.
		return c.pooled(e.X)
	case *ast.UnaryExpr:
		return c.pooled(e.X)
	case *ast.IndexExpr:
		return c.pooled(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.pooled(el) {
				return true
			}
		}
	case *ast.CallExpr:
		return c.pooledCall(e)
	}
	return false
}

// pooledCall: Arena.Alloc results are pooled; append propagates
// pooledness from its base and from whole-slice elements, but a
// spread copy (append(dst, b...)) of byte elements severs the alias
// — that is the sanctioned copy idiom. All other call results are
// treated as fresh.
func (c *checker) pooledCall(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if c.pooled(call.Args[0]) {
				return true
			}
			if call.Ellipsis.IsValid() {
				return false // element-wise copy of the spread bytes
			}
			for _, a := range call.Args[1:] {
				if c.pooled(a) {
					return true
				}
			}
			return false
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Alloc" {
		if n := c.pass.ReceiverNamed(call); n != nil && n.Obj().Name() == "Arena" {
			return true
		}
	}
	return false
}

// pkgLevelBase reports whether the assignment target's base resolves
// to a package-level variable (directly, through a field selector,
// through an index, or as a qualified pkg.Var reference).
func (c *checker) pkgLevelBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := c.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return c.pkgLevelObj(c.pass.TypesInfo.Uses[x.Sel])
				}
			}
			e = x.X
		case *ast.Ident:
			obj := c.objectOf(x)
			return c.pkgLevelObj(obj)
		default:
			return false
		}
	}
}

func (c *checker) pkgLevelObj(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == c.pass.Pkg.Scope()
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Defs[id]
}

// namedCalled reports whether t (after stripping one pointer) is a
// named type with the given name, whatever package it lives in —
// fixtures mirror the radio shapes without importing them.
func namedCalled(t types.Type, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Name() == name
}
