// Package a is a bufreuse fixture: pooled reception/arena buffers
// escaping their stop versus local, copied, or within-stop uses.
package a

// Reception mirrors the shape of radio.Reception for the fixture.
type Reception struct {
	Data []byte
	RSSI float64
}

// Arena mirrors the shape of arena.Arena.
type Arena struct{ buf []byte }

func (a *Arena) Alloc(n int) []byte { return a.buf[:n] }

// event mirrors the concurrent scanner's frameEvent.
type event struct {
	rx      Reception
	payload []byte
}

var lastData []byte
var lastRx Reception
var history [][]byte

// sendsReception ships the whole reception across a goroutine
// boundary; its Data alias outlives the stop's arena scope.
func sendsReception(ch chan Reception, rx Reception) {
	ch <- rx // want "pooled buffer sent on a channel"
}

// sendsData ships the raw arena-backed byte alias.
func sendsData(ch chan []byte, rx Reception) {
	ch <- rx.Data // want "pooled buffer sent on a channel"
}

// sendsWrapped hides the reception inside a composite local first —
// the concurrent scanner's frameEvent shape.
func sendsWrapped(ch chan event, rx Reception) {
	ev := event{rx: rx}
	ch <- ev // want "pooled buffer sent on a channel"
}

// sendsSlice reslices before sending; the backing array is still the
// arena's.
func sendsSlice(ch chan []byte, rx Reception) {
	ch <- rx.Data[4:] // want "pooled buffer sent on a channel"
}

// storesGlobal parks the alias in a package-level variable that a
// later stop will read after the arena rewound.
func storesGlobal(rx Reception) {
	lastData = rx.Data // want "pooled buffer stored in a package-level variable"
}

// storesGlobalStruct stores the whole reception value; the embedded
// Data field still aliases the arena.
func storesGlobalStruct(rx Reception) {
	lastRx = rx // want "pooled buffer stored in a package-level variable"
}

// appendsGlobal retains the slice header as one element of a
// package-level container.
func appendsGlobal(rx Reception) {
	history = append(history, rx.Data) // want "pooled buffer stored in a package-level variable"
}

// arenaEscape leaks an Alloc result through a local binding.
func arenaEscape(ar *Arena, ch chan []byte) {
	buf := ar.Alloc(16)
	ch <- buf // want "pooled buffer sent on a channel"
}

// sendsCopy severs the alias with the sanctioned spread-append copy.
func sendsCopy(ch chan []byte, rx Reception) {
	ch <- append([]byte(nil), rx.Data...)
}

// storesCopyGlobal copies before the global store.
func storesCopyGlobal(rx Reception) {
	lastData = append([]byte(nil), rx.Data...)
}

// localUse reads the buffer synchronously inside the handler — the
// normal, pooling-safe consumption pattern.
func localUse(rx Reception) int {
	d := rx.Data
	return len(d)
}

// fieldStoreLocal is the pooled-job idiom: a deferred event re-reads
// the buffer later in the same stop. Stores into locals' fields are
// deliberately out of scope.
func fieldStoreLocal(rx Reception) event {
	var ev event
	ev.rx = rx
	return ev
}

// sanctioned carries a reasoned directive.
func sanctioned(ch chan Reception, rx Reception) {
	ch <- rx //politevet:allow bufreuse(fixture for a tap whose medium runs without an arena)
}
