package bufreuse_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/bufreuse"
)

func TestBufreuse(t *testing.T) {
	analysistest.Run(t, bufreuse.Analyzer, "a")
}
