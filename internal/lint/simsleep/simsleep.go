// Package simsleep flags busy-wait loops that poll simulation state
// without yielding. In a discrete-event simulator, time only advances
// when the event queue runs; a loop that re-checks a predicate
// without scheduling anything (`for s.Busy() {}`) spins forever at
// the same instant — the hot-spin class fixed by
// core.ConcurrentScanner.simSleep and the capped busy-parks in the
// hostile-channel work. The analyzer flags a for-loop when its
// condition (or a break-guard inside it) polls via a function call
// but the body performs no call, channel operation, or other
// construct that could advance or wait on the simulation.
package simsleep

import (
	"go/ast"
	"go/token"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "simsleep",
	Doc: "flag busy-wait loops that poll sim state via calls but never yield " +
		"(no call, channel op, or select in the body); park on a scheduler event or simSleep-style wait",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder([]ast.Node{(*ast.ForStmt)(nil)}, func(n ast.Node) {
		fs := n.(*ast.ForStmt)

		// Conditions that steer the loop: the for-condition plus every
		// if-condition in the body (break guards live there).
		conds := conditions(fs)
		poll := firstPollCall(pass, conds)
		if poll == nil {
			return
		}
		// A counted loop advances its own condition (`for i := 0;
		// i < n; i++`): it terminates by construction, whatever it
		// polls along the way.
		if selfAdvancing(fs) {
			return
		}
		if yields(pass, fs, conds) {
			return
		}
		pass.Reportf(fs.Pos(),
			"for-loop polls %s without yielding: nothing in the body schedules, waits, or calls anything, so simulated time cannot advance and the loop spins (the core.ConcurrentScanner.simSleep hot-spin class); park on a scheduler event or a simSleep-style wait, or carry a //politevet:allow simsleep(reason) directive",
			types.ExprString(poll))
	})
	return nil
}

func conditions(fs *ast.ForStmt) []ast.Expr {
	var conds []ast.Expr
	if fs.Cond != nil {
		conds = append(conds, fs.Cond)
	}
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			conds = append(conds, ifs.Cond)
		}
		return true
	})
	return conds
}

// firstPollCall returns the first non-builtin, non-conversion call
// inside any condition — the polled predicate.
func firstPollCall(pass *analysis.Pass, conds []ast.Expr) *ast.CallExpr {
	for _, cond := range conds {
		var found *ast.CallExpr
		ast.Inspect(cond, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isRealCall(pass, call) {
				found = call
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// yieldNames are callee names that drive or wait on the simulation;
// a polling loop that invokes one of these each iteration — even
// inside its break guard, like ProbeSync's `if !sched.Step()` — is a
// drive loop, not a spin.
var yieldNames = map[string]bool{
	"Step": true, "Run": true, "RunUntil": true, "RunFor": true,
	"Sleep": true, "Wait": true, "Yield": true, "Park": true,
	"Gosched": true, "simSleep": true, "SimSleep": true,
}

// selfAdvancing reports whether the loop's own body or post-statement
// assigns an identifier its for-condition reads — the counted-loop
// shape, which terminates without external help.
func selfAdvancing(fs *ast.ForStmt) bool {
	if fs.Cond == nil {
		return false
	}
	condIdents := make(map[string]bool)
	ast.Inspect(fs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			condIdents[id.Name] = true
		}
		return true
	})
	found := false
	mark := func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if condIdents[e.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if condIdents[e.Sel.Name] {
				found = true
			}
		}
	}
	scan := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		}
		return !found
	}
	if fs.Post != nil {
		ast.Inspect(fs.Post, scan)
	}
	ast.Inspect(fs.Body, scan)
	return found
}

// yields reports whether the loop contains any construct that could
// advance simulation time or block: a call outside the tracked
// conditions, a yield-named call anywhere, a channel operation,
// select, go, defer, or return.
func yields(pass *analysis.Pass, fs *ast.ForStmt, conds []ast.Expr) bool {
	inCond := func(n ast.Node) bool {
		for _, c := range conds {
			if n.Pos() >= c.Pos() && n.End() <= c.End() {
				return true
			}
		}
		return false
	}
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if isRealCall(pass, n) && (!inCond(n) || yieldNames[calleeName(n)]) {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	}
	ast.Inspect(fs.Body, check)
	if fs.Post != nil {
		ast.Inspect(fs.Post, check)
	}
	if fs.Cond != nil {
		// `for sched.Step() {}` drives the queue from the condition.
		ast.Inspect(fs.Cond, check)
	}
	return found
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isRealCall reports whether call invokes an actual function — not a
// builtin (len, cap, ...) and not a type conversion.
func isRealCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if _, ok := pass.IsConversion(call); ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); ok {
			return false
		}
	}
	return true
}
