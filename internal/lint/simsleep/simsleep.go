// Package simsleep flags busy-wait loops that poll simulation state
// without yielding. In a discrete-event simulator, time only advances
// when the event queue runs; a loop that re-checks a predicate
// without scheduling anything (`for s.Busy() {}`) spins forever at
// the same instant — the hot-spin class fixed by
// core.ConcurrentScanner.simSleep and the capped busy-parks in the
// hostile-channel work.
//
// Detection lives in the purity fact pass (purity.FindSpins), which
// this analyzer wraps for reporting. Since the interprocedural
// upgrade, a call in the loop body only counts as a yield when the
// callee's purity signature says it can yield — so a spin hidden
// behind a provably pure helper (`for s.Busy() { stats.bump() }`) is
// now caught, while a loop that drives the queue through a helper is
// not flagged.
package simsleep

import (
	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/purity"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "simsleep",
	Doc: "flag busy-wait loops that poll sim state via calls but never yield (no channel op, " +
		"select, or call that can advance simulated time — judged against purity facts); " +
		"park on a scheduler event or simSleep-style wait",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, spin := range purity.FindSpins(pass) {
		pass.Reportf(spin.Pos,
			"for-loop polls %s without yielding: nothing in the body schedules, waits, or calls anything that can advance simulated time, so the loop spins (the core.ConcurrentScanner.simSleep hot-spin class); park on a scheduler event or a simSleep-style wait, or carry a //politevet:allow simsleep(reason) directive",
			spin.Polled)
	}
	return nil
}
