// Package a is a simsleep fixture: busy-wait loops that spin at one
// simulated instant versus loops that drive or wait on the scheduler.
package a

// Sched mirrors the shape of eventsim.Scheduler for the fixture.
type Sched struct{ busy bool }

func (s *Sched) Busy() bool     { return s.busy }
func (s *Sched) Done() bool     { return !s.busy }
func (s *Sched) Step() bool     { return s.busy }
func (s *Sched) Park()          {}
func (s *Sched) Poke()          {}
func (s *Sched) simSleep(int64) {}

// spinsOnCond re-checks the predicate forever: nothing in the (empty)
// body can advance simulated time.
func spinsOnCond(s *Sched) {
	for s.Busy() { // want "for-loop polls s.Busy\\(\\) without yielding"
	}
}

// spinsOnBreakGuard hides the poll in a break guard; the counter
// increment does not feed the (absent) for-condition, so the loop
// still spins if Done never flips.
func spinsOnBreakGuard(s *Sched) int {
	n := 0
	for { // want "for-loop polls s.Done\\(\\) without yielding"
		if s.Done() {
			break
		}
		n++
	}
	return n
}

// parksEachIteration yields: Park is a call in the body, so the
// scheduler can run events between polls.
func parksEachIteration(s *Sched) {
	for s.Busy() {
		s.Park()
	}
}

// sleepsEachIteration waits on sim time via the simSleep-style call.
func sleepsEachIteration(s *Sched) {
	for !s.Done() {
		s.simSleep(1000)
	}
}

// driveLoop pumps the event queue from the condition itself —
// ProbeSync's shape. Step is yield-named, so this is a drive loop.
func driveLoop(s *Sched) {
	for s.Step() {
	}
}

// breakGuardDrive is the same drive loop with Step inside the guard.
func breakGuardDrive(s *Sched) {
	for {
		if !s.Step() {
			break
		}
	}
}

// countedLoop advances its own condition; it terminates by
// construction regardless of what it polls.
func countedLoop(s *Sched) int {
	hits := 0
	for i := 0; i < 16; i++ {
		if s.Busy() {
			hits++
		}
	}
	return hits
}

// waitsOnChannel blocks on a receive; the runtime can switch away.
func waitsOnChannel(s *Sched, ch chan struct{}) {
	for s.Busy() {
		<-ch
	}
}

// selectsOnChannels blocks in a select.
func selectsOnChannels(s *Sched, ch chan struct{}) {
	for s.Busy() {
		select {
		case <-ch:
		}
	}
}

// noPoll has no call in any condition; plain control flow is out of
// scope even when the body is empty.
func noPoll(flag *bool) {
	for *flag {
	}
}

// sanctioned carries a reasoned directive.
func sanctioned(s *Sched) {
	for s.Busy() { //politevet:allow simsleep(fixture for a sanctioned spin on hardware state)
	}
}
