package simsleep_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/simsleep"
)

func TestSimsleep(t *testing.T) {
	analysistest.Run(t, simsleep.Analyzer, "a")
}
