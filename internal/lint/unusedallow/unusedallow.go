// Package unusedallow flags stale //politevet:allow directives: a
// well-formed, reasoned directive that suppressed nothing during a
// run. Stale allows are how invariant escapes outlive their cause —
// the code they excused was fixed or deleted, the annotation stays,
// and a future regression at the same line sails through silently.
//
// The check is necessarily a property of a whole run, not of one
// AST: only the driver knows which analyzers executed and which
// diagnostics each directive swallowed. The Analyzer here is a
// marker — its Run does nothing — so the check participates in flag
// plumbing (-unusedallow=false), doc listings, and the known-name
// set exactly like a real analyzer, while the logic lives in the
// driver's Suppressor (analysis.Suppressor.Unused). A directive
// naming an analyzer that was disabled for the run is not reported:
// it is unexercised, not provably stale.
package unusedallow

import "politewifi/internal/lint/analysis"

// Analyzer is the marker under which the driver reports stale
// directives.
var Analyzer = &analysis.Analyzer{
	Name: "unusedallow",
	Doc: "flag //politevet:allow directives that suppressed nothing: the finding they excused " +
		"is gone, so the escape hatch is stale and must be removed (driver-level check)",
	Run: func(*analysis.Pass) error { return nil },
}
