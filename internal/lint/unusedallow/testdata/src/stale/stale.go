// Package stale exercises the unusedallow checker: directives that
// suppress a live finding are used, directives whose finding is gone
// are stale, and directives for analyzers not in the run are merely
// unexercised.
package stale

import "time"

// used: the directive suppresses a live wallclock finding, so it is
// not stale.
func now() time.Time {
	return time.Now() //politevet:allow wallclock(fixture: directive is exercised)
}

// stale: a duration conversion never read the wall clock, so this
// directive excuses nothing.
func width() time.Duration {
	return time.Duration(16) //politevet:allow wallclock(fixture: nothing here to excuse) // want `suppressed nothing this run`
}

// unexercised: globalrand is not among the analyzers this fixture
// runs, so its directives are not judged stale.
func quiet() int {
	return 4 //politevet:allow globalrand(fixture: analyzer disabled in this run)
}
