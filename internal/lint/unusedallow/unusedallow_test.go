package unusedallow_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/unusedallow"
	"politewifi/internal/lint/wallclock"
)

// TestStaleDirectives runs wallclock plus the unusedallow marker over
// a fixture with one exercised, one stale, and one unexercised
// directive; only the stale one may fire, and only because
// unusedallow is in the run.
func TestStaleDirectives(t *testing.T) {
	analysistest.RunAnalyzers(t, "stale", wallclock.Analyzer, unusedallow.Analyzer)
}
