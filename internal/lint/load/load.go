// Package load turns `go list` package patterns into type-checked
// syntax trees using only the standard library.
//
// It is the standalone-mode counterpart of the `go vet -vettool`
// protocol (package unit): both produce the same Package value for
// the driver in internal/lint. The loader shells out to the go
// command for package metadata and compiled export data — the same
// build-cache files the vet protocol hands a vettool — and
// type-checks only the target packages' sources, importing
// everything else from export data. That keeps a whole-repo run to
// well under a second after the first build.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package unit ready for analysis. When
// the package has in-package test files the unit is the test variant
// ("pkg [pkg.test]"), whose file list supersets the plain package —
// mirroring what `go vet` analyzes.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// TypeErrors holds soft type-checking errors. Analysis proceeds
	// despite them, but drivers should surface them: an analyzer
	// cannot vouch for code it could not fully resolve.
	TypeErrors []error
}

// Unit is the raw material for one Package: source files plus the
// export-data locations of every import. It deliberately matches the
// fields of the go command's vet.cfg so the vettool mode can reuse
// Check unchanged.
type Unit struct {
	ImportPath  string
	Dir         string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	GoVersion   string
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	ForTest    string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns,
// resolved relative to dir ("" for the current directory). When
// includeTests is true, in-package and external test packages are
// included, exactly as `go vet` would analyze them.
func Packages(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("load: no patterns")
	}

	targets, err := expand(dir, patterns)
	if err != nil {
		return nil, err
	}

	args := []string{"list", "-e", "-deps", "-export", "-json"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}

	var all []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		all = append(all, &p)
	}

	exports := make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// An in-package test variant ("pkg [pkg.test]") supersets the
	// plain package's files; analyze it instead of the plain unit.
	superseded := make(map[string]bool)
	for _, p := range all {
		if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, ".test") && !strings.Contains(p.ImportPath, "_test [") {
			superseded[p.ForTest] = true
		}
	}

	var pkgs []*Package
	for _, p := range all {
		if !isTarget(p, targets) {
			continue
		}
		if p.ForTest == "" && superseded[p.ImportPath] {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		u := Unit{
			ImportPath:  p.ImportPath,
			Dir:         p.Dir,
			GoFiles:     p.GoFiles,
			ImportMap:   p.ImportMap,
			PackageFile: exports,
		}
		pkg, err := Check(u)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// isTarget reports whether p is a unit the caller asked for, as
// opposed to a dependency pulled in by -deps. The generated
// "pkg.test" main is never a target.
func isTarget(p *listPackage, targets map[string]bool) bool {
	if strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main" {
		return false
	}
	if targets[p.ImportPath] {
		return true
	}
	return p.ForTest != "" && targets[p.ForTest]
}

// expand resolves patterns to the set of matched import paths.
func expand(dir string, patterns []string) (map[string]bool, error) {
	args := append([]string{"list", "-e", "--"}, patterns...)
	out, err := runGo(dir, args...)
	if err != nil {
		return nil, err
	}
	targets := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			targets[line] = true
		}
	}
	return targets, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("load: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// Check parses and type-checks one unit. Imports resolve through the
// unit's ImportMap to compiled export data in PackageFile; the gc
// export format is self-contained, so transitive dependencies need no
// entries of their own.
func Check(u Unit) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range u.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(u.Dir, name)
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := u.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := u.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	pkg := &Package{ImportPath: u.ImportPath, Fset: fset, Files: files}
	conf := &types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: u.GoVersion,
		Error:     func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(u.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	pkg.Info = info
	return pkg, nil
}
