package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Config controls a graph load.
type Config struct {
	// Dir is the directory go commands run in ("" = current).
	Dir string
	// Tests includes in-package and external test units for targets.
	Tests bool
	// Workers bounds concurrent type-checking (0 = GOMAXPROCS).
	Workers int
}

// Graph is the interprocedural loader's product: the target units the
// caller asked to analyze plus every in-module dependency package, in
// topological order, so the driver can compute purity facts bottom-up
// before running diagnostics. Type-checking is lazy and memoized;
// Prefetch checks a batch in parallel.
type Graph struct {
	ModuleDir  string
	ModulePath string

	// Targets are the unit keys to run diagnostics on (test variants
	// when Tests is set), in deterministic order.
	Targets []string
	// Order lists the plain in-module packages needing facts —
	// dependencies before dependents.
	Order []string
	// Units maps every unit key (targets and fact packages) to its
	// load unit.
	Units map[string]*Unit
	// ModuleDeps maps a unit key to its direct in-module dependencies
	// (plain paths, sorted) — the edges facts propagate across.
	ModuleDeps map[string][]string

	workers int
	mu      sync.Mutex
	checked map[string]*checkEntry
}

type checkEntry struct {
	once sync.Once
	pkg  *Package
	err  error
}

// Load resolves patterns into a Graph.
func Load(cfg Config, patterns ...string) (*Graph, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("load: no patterns")
	}
	modDir, modPath, err := moduleInfo(cfg.Dir)
	if err != nil {
		return nil, err
	}

	targets, err := expand(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}

	args := []string{"list", "-e", "-deps", "-export", "-json"}
	if cfg.Tests {
		args = append(args, "-test")
	}
	args = append(args, "--")
	args = append(args, patterns...)
	out, err := runGo(cfg.Dir, args...)
	if err != nil {
		return nil, err
	}

	var all []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		all = append(all, &p)
	}

	exports := make(map[string]string, len(all))
	for _, p := range all {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	superseded := make(map[string]bool)
	for _, p := range all {
		if p.ForTest != "" && !strings.HasSuffix(p.ImportPath, ".test") && !strings.Contains(p.ImportPath, "_test [") {
			superseded[p.ForTest] = true
		}
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Graph{
		ModuleDir:  modDir,
		ModulePath: modPath,
		Units:      make(map[string]*Unit),
		ModuleDeps: make(map[string][]string),
		workers:    workers,
		checked:    make(map[string]*checkEntry),
	}

	inModule := func(path string) bool {
		path = trimVariant(path)
		return path == modPath || strings.HasPrefix(path, modPath+"/")
	}

	addUnit := func(p *listPackage) {
		g.Units[p.ImportPath] = &Unit{
			ImportPath:  p.ImportPath,
			Dir:         p.Dir,
			GoFiles:     p.GoFiles,
			ImportMap:   p.ImportMap,
			PackageFile: exports,
		}
		deps := make(map[string]bool)
		for _, imp := range p.Imports {
			if mapped, ok := p.ImportMap[imp]; ok {
				imp = mapped
			}
			imp = trimVariant(imp)
			if inModule(imp) && imp != trimVariant(p.ImportPath) && !strings.HasSuffix(imp, ".test") {
				deps[imp] = true
			}
		}
		g.ModuleDeps[p.ImportPath] = sortedKeys(deps)
	}

	for _, p := range all {
		isTestMain := strings.HasSuffix(p.ImportPath, ".test") && p.Name == "main"
		if isTestMain {
			continue
		}
		if isTarget(p, targets) && !(p.ForTest == "" && superseded[p.ImportPath]) {
			if p.Error != nil {
				return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
			}
			g.Targets = append(g.Targets, p.ImportPath)
			addUnit(p)
		}
		// Every plain in-module package — target or dependency — joins
		// the fact universe.
		if p.ForTest == "" && inModule(p.ImportPath) && len(p.GoFiles) > 0 {
			if _, seen := g.Units[p.ImportPath]; !seen {
				if p.Error != nil {
					return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
				}
				addUnit(p)
			}
			g.Order = append(g.Order, p.ImportPath)
		}
	}
	sort.Strings(g.Targets)
	g.Order = topoSort(g.Order, g.ModuleDeps)
	return g, nil
}

// trimVariant strips a test-variant suffix ("pkg [pkg.test]" → "pkg").
func trimVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// topoSort orders the plain packages dependencies-first. Ties break
// lexicographically so the order — and everything derived from it —
// is deterministic. Cycles cannot occur in a valid import graph; if
// one sneaks in via -e, the members drop out rather than hanging.
func topoSort(nodes []string, deps map[string][]string) []string {
	inSet := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	indeg := make(map[string]int, len(nodes))
	dependents := make(map[string][]string)
	for _, n := range nodes {
		for _, d := range deps[n] {
			if inSet[d] {
				indeg[n]++
				dependents[d] = append(dependents[d], n)
			}
		}
	}
	ready := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if indeg[n] == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		next := append([]string(nil), dependents[n]...)
		sort.Strings(next)
		for _, m := range next {
			if indeg[m]--; indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
		sort.Strings(ready)
	}
	return order
}

// Package type-checks the unit with the given key, memoized.
func (g *Graph) Package(key string) (*Package, error) {
	g.mu.Lock()
	e, ok := g.checked[key]
	if !ok {
		e = &checkEntry{}
		g.checked[key] = e
	}
	u := g.Units[key]
	g.mu.Unlock()
	if u == nil {
		return nil, fmt.Errorf("load: no unit %q", key)
	}
	e.once.Do(func() { e.pkg, e.err = Check(*u) })
	return e.pkg, e.err
}

// Prefetch type-checks the given units concurrently (bounded by the
// configured worker count) so later Package calls return instantly.
// Individual failures surface on the Package call, not here.
func (g *Graph) Prefetch(keys []string) {
	sem := make(chan struct{}, g.workers)
	var wg sync.WaitGroup
	for _, key := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(k string) {
			defer wg.Done()
			defer func() { <-sem }()
			g.Package(k) //nolint:errcheck — reported when the caller asks
		}(key)
	}
	wg.Wait()
}

// Workers reports the configured concurrency bound.
func (g *Graph) Workers() int { return g.workers }

// FileHash returns the hex SHA-256 of one of the unit's source files,
// for fact-cache keying.
func (u *Unit) FileHash(name string) (string, error) {
	if !filepath.IsAbs(name) {
		name = filepath.Join(u.Dir, name)
	}
	data, err := os.ReadFile(name)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// moduleInfo resolves the enclosing module's root directory and path.
func moduleInfo(dir string) (modDir, modPath string, err error) {
	out, err := runGo(dir, "list", "-m", "-json")
	if err != nil {
		return "", "", err
	}
	var m struct{ Path, Dir string }
	if err := json.Unmarshal(out, &m); err != nil {
		return "", "", fmt.Errorf("load: decoding go list -m output: %v", err)
	}
	if m.Path == "" {
		return "", "", fmt.Errorf("load: not in a module")
	}
	return m.Dir, m.Path, nil
}
