// Package a is a globalrand fixture: draws from the process-global
// math/rand source and racy *rand.Rand sharing.
package a

import "math/rand"

func globalDraws() {
	_ = rand.Intn(10)     // want "rand.Intn draws from the process-global source"
	_ = rand.Float64()    // want "rand.Float64 draws from the process-global source"
	_ = rand.Int63n(100)  // want "rand.Int63n draws from the process-global source"
	rand.Shuffle(3, swap) // want "rand.Shuffle draws from the process-global source"
	_ = rand.Perm(4)      // want "rand.Perm draws from the process-global source"
}

func swap(i, j int) {}

// Constructing a private, seeded generator is the sanctioned pattern;
// method calls on it are fine.
func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}

// A *rand.Rand captured by a goroutine closure races: two goroutines
// interleave draws nondeterministically.
func captured() {
	r := rand.New(rand.NewSource(1))
	go func() {
		_ = r.Intn(5) // want "\\*rand.Rand \"r\" is captured by a goroutine closure"
	}()
}

// A generator declared inside the goroutine is private to it.
func private() {
	go func() {
		r := rand.New(rand.NewSource(2))
		_ = r.Intn(5)
	}()
}

// Passing the generator as an argument re-binds it inside the closure.
func parameter() {
	r := rand.New(rand.NewSource(3))
	go func(own *rand.Rand) {
		_ = own.Intn(5)
	}(r)
}

// Suppressible with a reason, like any other finding.
func sanctioned() {
	_ = rand.Intn(10) //politevet:allow globalrand(fixture exercising a sanctioned draw)
}
