package globalrand_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer, "a")
}
