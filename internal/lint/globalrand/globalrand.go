// Package globalrand forbids the process-global math/rand source and
// racy sharing of *rand.Rand across goroutines — directly or through
// any chain of calls. Every stochastic draw in the simulator must
// come from a seed-forked eventsim.RNG (the sanctioned entry point:
// eventsim.NewRNG and RNG.Fork), so a run replays bit-identically
// from its seed at any worker count. A single rand.Intn against the
// global source — or one *rand.Rand shared by two goroutines —
// reorders the stream and breaks the census cross-check in
// internal/world.
//
// The transitive check consults the purity fact pass (DESIGN.md §5j):
// a call to any function whose purity signature carries an
// unsanctioned globalrand taint is reported with the full chain down
// to the draw, so wrapping rand.Intn in a helper no longer hides it.
package globalrand

import (
	"go/ast"
	"go/token"
	"go/types"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/purity"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand draws — including transitively through helpers " +
		"(full call chain reported) — and *rand.Rand captured by goroutine closures; " +
		"draw from seed-forked eventsim.RNG instances instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		for path, names := range purity.GlobalRandSources {
			if name, ok := pass.PkgLevelRef(sel, path); ok && names[name] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source and is not replayable from a seed; draw from a seed-forked *eventsim.RNG (eventsim.NewRNG / (*RNG).Fork), the simulator's only sanctioned RNG entry point",
					name)
			}
		}
	})

	purity.ReportTaints(pass, purity.KindGlobalRand, func(pos token.Pos, chain []string) {
		pass.Reportf(pos,
			"call transitively draws from the process-global rand source: %s; plumb a seed-forked *eventsim.RNG through instead, or carry a //politevet:allow globalrand(reason) directive at the sanctioned acquisition point",
			purity.ChainString(chain))
	})

	pass.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		lit, ok := n.(*ast.GoStmt).Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		seen := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || seen[obj] || !isRand(obj.Type()) {
				return true
			}
			// Captured means declared outside the closure's extent.
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				return true
			}
			seen[obj] = true
			pass.Reportf(id.Pos(),
				"*rand.Rand %q is captured by a goroutine closure; concurrent draws race and reorder the stream. Fork a private generator for the goroutine before spawning it (eventsim.RNG.Fork)",
				id.Name)
			return true
		})
	})
	return nil
}

// isRand reports whether t is (a pointer to) math/rand.Rand or
// math/rand/v2.Rand.
func isRand(t types.Type) bool {
	return analysis.NamedType(t, "math/rand", "Rand") ||
		analysis.NamedType(t, "math/rand/v2", "Rand")
}
