// Package globalrand forbids the process-global math/rand source and
// racy sharing of *rand.Rand across goroutines. Every stochastic
// draw in the simulator must come from a seed-forked eventsim.RNG
// (the sanctioned entry point: eventsim.NewRNG and RNG.Fork), so a
// run replays bit-identically from its seed at any worker count. A
// single rand.Intn against the global source — or one *rand.Rand
// shared by two goroutines — reorders the stream and breaks the
// census cross-check in internal/world.
package globalrand

import (
	"go/ast"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand draws and *rand.Rand captured by goroutine closures; " +
		"draw from seed-forked eventsim.RNG instances instead",
	Run: run,
}

// draws lists the math/rand (and v2) package-level functions that
// consume the global source. Constructors (New, NewSource, NewPCG,
// NewChaCha8, NewZipf) are exempt: building a private generator from
// an explicit seed is exactly the sanctioned pattern.
var draws = map[string]map[string]bool{
	"math/rand": set("Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "NormFloat64", "ExpFloat64",
		"Perm", "Shuffle", "Seed", "Read"),
	"math/rand/v2": set("Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "NormFloat64", "ExpFloat64", "Perm", "Shuffle", "N"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func run(pass *analysis.Pass) error {
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		for path, names := range draws {
			if name, ok := pass.PkgLevelRef(sel, path); ok && names[name] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source and is not replayable from a seed; draw from a seed-forked *eventsim.RNG (eventsim.NewRNG / (*RNG).Fork), the simulator's only sanctioned RNG entry point",
					name)
			}
		}
	})

	pass.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		lit, ok := n.(*ast.GoStmt).Call.Fun.(*ast.FuncLit)
		if !ok {
			return
		}
		seen := make(map[types.Object]bool)
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok || seen[obj] || !isRand(obj.Type()) {
				return true
			}
			// Captured means declared outside the closure's extent.
			if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
				return true
			}
			seen[obj] = true
			pass.Reportf(id.Pos(),
				"*rand.Rand %q is captured by a goroutine closure; concurrent draws race and reorder the stream. Fork a private generator for the goroutine before spawning it (eventsim.RNG.Fork)",
				id.Name)
			return true
		})
	})
	return nil
}

// isRand reports whether t is (a pointer to) math/rand.Rand or
// math/rand/v2.Rand.
func isRand(t types.Type) bool {
	return analysis.NamedType(t, "math/rand", "Rand") ||
		analysis.NamedType(t, "math/rand/v2", "Rand")
}
