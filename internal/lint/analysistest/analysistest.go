// Package analysistest runs a politevet analyzer over a fixture
// package and checks its findings against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this
// repository does not vendor).
//
// A fixture lives under the analyzer's testdata/src/<name> directory
// and marks expected findings with trailing comments:
//
//	time.Now() // want "reads the wall clock"
//
// Each quoted string is a regular expression that must match one
// finding reported on that line; findings with no matching want, and
// wants with no matching finding, fail the test. Because fixtures run
// through the same driver as politevet proper, //politevet:allow
// directives suppress findings in fixtures too — a line carrying a
// reasoned directive simply expects nothing.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"politewifi/internal/lint"
	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/load"
)

// wantRE matches a want clause anywhere in a comment (so it can
// trail a //politevet:allow directive on the same line) and captures
// the run of quoted patterns ending the comment.
var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

// Run loads testdata/src/<fixture> relative to the calling test's
// package directory and checks the analyzer's findings against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	pattern := "./testdata/src/" + fixture
	pkgs, err := load.Packages("", false, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: typecheck: %v", pattern, terr)
	}

	findings, err := lint.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pattern, err)
	}

	// Index findings and expectations by file:line.
	got := make(map[loc][]lint.Finding)
	for _, f := range findings {
		l := loc{f.Pos.Filename, f.Pos.Line}
		got[l] = append(got[l], f)
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := pkg.Fset.Position(c.Pos())
				l := loc{p.Filename, p.Line}
				for _, pat := range parseWants(t, p.String(), m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
					}
					if !consume(got, l, re) {
						t.Errorf("%s: no finding matching %q (have %s)", p, pat, messages(got[l]))
					}
				}
			}
		}
	}

	for _, fs := range got {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

type loc struct {
	file string
	line int
}

// consume removes and reports the first finding at l whose message
// matches re.
func consume(got map[loc][]lint.Finding, l loc, re *regexp.Regexp) bool {
	fs := got[l]
	for i, f := range fs {
		if re.MatchString(f.Message) {
			got[l] = append(fs[:i:i], fs[i+1:]...)
			if len(got[l]) == 0 {
				delete(got, l)
			}
			return true
		}
	}
	return false
}

// parseWants splits `"re1" "re2"` into its quoted patterns.
func parseWants(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
		end := 1
		for end < len(s) && s[end] != '"' {
			if s[end] == '\\' {
				end++
			}
			end++
		}
		if end >= len(s) {
			t.Fatalf("%s: unterminated want pattern in %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func messages(fs []lint.Finding) string {
	if len(fs) == 0 {
		return "none"
	}
	var msgs []string
	for _, f := range fs {
		msgs = append(msgs, fmt.Sprintf("%q [%s]", f.Message, f.Analyzer))
	}
	return strings.Join(msgs, ", ")
}
