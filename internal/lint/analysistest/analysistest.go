// Package analysistest runs a politevet analyzer over a fixture
// package and checks its findings against // want comments, in the
// style of golang.org/x/tools/go/analysis/analysistest (which this
// repository does not vendor).
//
// A fixture lives under the analyzer's testdata/src/<name> directory
// and marks expected findings with trailing comments:
//
//	time.Now() // want "reads the wall clock"
//
// Each quoted string is a regular expression that must match one
// finding reported on that line; findings with no matching want, and
// wants with no matching finding, fail the test. Because fixtures run
// through the same driver as politevet proper, //politevet:allow
// directives suppress findings in fixtures too — a line carrying a
// reasoned directive simply expects nothing.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"politewifi/internal/lint"
	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/load"
)

// wantRE matches a want clause anywhere in a comment (so it can
// trail a //politevet:allow directive on the same line) and captures
// the run of quoted patterns ending the comment. Patterns are Go
// string literals: interpreted ("a \\(b\\)") or raw (`a \(b\)`) —
// raw strings keep regexp escapes single, so prefer them for
// patterns heavy with metacharacters.
var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)\\s*)+)$")

// Run loads testdata/src/<fixture> relative to the calling test's
// package directory and checks the analyzer's findings against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	RunAnalyzers(t, fixture, a)
}

// RunAnalyzers is Run with several analyzers over one single-package
// fixture — findings from all of them check against the same want
// comments. The purity fact pass always runs first (inside the
// driver), so same-package transitive findings appear even here.
func RunAnalyzers(t *testing.T, fixture string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pattern := "./testdata/src/" + fixture
	pkgs, err := load.Packages("", false, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s loaded %d packages, want 1", pattern, len(pkgs))
	}
	pkg := pkgs[0]
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: typecheck: %v", pattern, terr)
	}

	findings, err := lint.RunPackage(pkg, analyzers, nil)
	if err != nil {
		t.Fatalf("running on %s: %v", pattern, err)
	}
	check(t, []*load.Package{pkg}, findings)
}

// RunPatterns runs the full interprocedural driver over explicit
// package patterns (testdata packages must be named explicitly —
// `...` wildcards skip testdata directories) and checks findings in
// every target package against its want comments. This is how the
// cross-package taint fixtures run: facts propagate from leaf
// packages into the targets exactly as in a real politevet run. The
// fact cache is off — fixtures must never leak state between runs.
func RunPatterns(t *testing.T, analyzers []*analysis.Analyzer, patterns ...string) {
	t.Helper()
	res, err := lint.RunOpts(lint.Options{
		Patterns:  patterns,
		FactCache: "off",
		Analyzers: analyzers,
	})
	if err != nil {
		t.Fatalf("running driver over %v: %v", patterns, err)
	}
	var pkgs []*load.Package
	for _, target := range res.Graph.Targets {
		pkg, err := res.Graph.Package(target)
		if err != nil {
			t.Fatalf("loading %s: %v", target, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture %s: typecheck: %v", target, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	check(t, pkgs, res.Findings)
}

// check matches findings against the want comments of every file in
// pkgs: each want must be matched by a finding on its line, and every
// finding must be wanted.
func check(t *testing.T, pkgs []*load.Package, findings []lint.Finding) {
	t.Helper()
	got := make(map[loc][]lint.Finding)
	for _, f := range findings {
		l := loc{f.Pos.Filename, f.Pos.Line}
		got[l] = append(got[l], f)
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					l := loc{p.Filename, p.Line}
					for _, pat := range parseWants(t, p.String(), m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", p, pat, err)
						}
						if !consume(got, l, re) {
							t.Errorf("%s: no finding matching %q (have %s)", p, pat, messages(got[l]))
						}
					}
				}
			}
		}
	}

	for _, fs := range got {
		for _, f := range fs {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

type loc struct {
	file string
	line int
}

// consume removes and reports the first finding at l whose message
// matches re.
func consume(got map[loc][]lint.Finding, l loc, re *regexp.Regexp) bool {
	fs := got[l]
	for i, f := range fs {
		if re.MatchString(f.Message) {
			got[l] = append(fs[:i:i], fs[i+1:]...)
			if len(got[l]) == 0 {
				delete(got, l)
			}
			return true
		}
	}
	return false
}

// parseWants splits `"re1" "re2"` into its quoted patterns. Both
// interpreted and raw (backquoted) literals are accepted; raw
// patterns reach the regexp engine byte-for-byte.
func parseWants(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && s[end] != '"' {
				if s[end] == '\\' {
					end++
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("%s: unterminated want pattern in %q", pos, s)
			}
			pat, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
			}
			out = append(out, pat)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want pattern in %q", pos, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: malformed want comment near %q", pos, s)
		}
	}
	return out
}

func messages(fs []lint.Finding) string {
	if len(fs) == 0 {
		return "none"
	}
	var msgs []string
	for _, f := range fs {
		msgs = append(msgs, fmt.Sprintf("%q [%s]", f.Message, f.Analyzer))
	}
	return strings.Join(msgs, ", ")
}
