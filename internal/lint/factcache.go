package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/load"
)

// FactVersion is baked into every fact-cache key. Bump it whenever
// the purity analysis or the fact wire format changes semantics, so
// stale caches invalidate themselves instead of serving facts the
// current analyzers would not have computed.
const FactVersion = "politevet-facts-v1"

// ModulePath is the import-path prefix of packages the fact pass
// analyzes; everything outside it (std, hypothetically vendored
// code) is treated as factless and judged conservatively.
const ModulePath = "politewifi"

// InModule reports whether an import path (possibly in test-variant
// form) belongs to this module — the fact pass's domain.
func InModule(path string) bool {
	path = analysis.TrimTestVariant(path)
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// factCache is a content-addressed store of encoded fact sets. Keys
// are pure functions of FactVersion, the package's source bytes, and
// its dependencies' keys, so hits never need validation and a cold
// miss is decidable before any type-checking happens.
type factCache struct {
	dir string
}

// openFactCache resolves a -factcache spec: "" means the per-user
// default (os.UserCacheDir()/politevet), "off" disables caching, and
// anything else is used as the cache directory. A nil cache is valid
// and misses everything.
func openFactCache(spec string) *factCache {
	switch spec {
	case "off":
		return nil
	case "":
		base, err := os.UserCacheDir()
		if err != nil {
			return nil
		}
		spec = filepath.Join(base, "politevet")
	}
	if err := os.MkdirAll(spec, 0o777); err != nil {
		return nil
	}
	return &factCache{dir: spec}
}

func (c *factCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key[2:]+".facts")
}

func (c *factCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (c *factCache) put(key string, data []byte) {
	if c == nil {
		return
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
		return
	}
	// Write-rename so concurrent runs never observe torn files.
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil && tmp.Close() == nil {
		os.Rename(name, p) //nolint:errcheck — cache writes are best-effort
		return
	}
	tmp.Close()
	os.Remove(name)
}

// factKey derives the cache key for one plain package: a hash over
// the fact version, the import path, every source file's content
// hash, and the keys of its in-module dependencies (already computed
// — the caller walks in topological order).
func factKey(u *load.Unit, path string, deps []string, depKeys map[string]string) (string, error) {
	h := sha256.New()
	h.Write([]byte(FactVersion + "\x00" + path + "\x00"))
	files := append([]string(nil), u.GoFiles...)
	sort.Strings(files)
	for _, f := range files {
		fh, err := u.FileHash(f)
		if err != nil {
			return "", err
		}
		h.Write([]byte(f + "\x00" + fh + "\x00"))
	}
	for _, d := range deps {
		h.Write([]byte(d + "\x00" + depKeys[d] + "\x00"))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
