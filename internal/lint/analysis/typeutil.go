package analysis

import (
	"go/ast"
	"go/types"
)

// PkgLevelRef reports whether sel is a qualified reference to a
// package-level identifier of the package with the given import path
// (sel.X resolves to the package name itself, not to a value whose
// type happens to live there), and returns the referenced name.
func (p *Pass) PkgLevelRef(sel *ast.SelectorExpr, pkgPath string) (name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	pn, isPkg := p.TypesInfo.Uses[id].(*types.PkgName)
	if !isPkg || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// NamedType reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func NamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// ReceiverNamed returns the named type of a method call's receiver
// (stripping one pointer), or nil when the call is not a method call
// on a named type.
func (p *Pass) ReceiverNamed(call *ast.CallExpr) *types.Named {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := p.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// StaticCallee resolves the *types.Func a call statically invokes:
// a plain function, a qualified pkg.F reference, or a concrete method
// call. Calls through function values, interface methods, built-ins,
// and type conversions resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.Uses[fn.Sel]
		}
	default:
		return nil
	}
	f, _ := obj.(*types.Func)
	if f == nil {
		return nil
	}
	// An interface method has no body anywhere; facts never attach.
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
			return nil
		}
	}
	return f
}

// IsConversion reports whether call is a type conversion and returns
// the target type.
func (p *Pass) IsConversion(call *ast.CallExpr) (types.Type, bool) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// TypeOf returns the static type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// IsUnsigned reports whether t's underlying type is an unsigned
// integer, and returns its bit size (0 for uint/uintptr, whose size
// is platform-dependent).
func IsUnsigned(t types.Type) (bits int, ok bool) {
	b, isBasic := t.Underlying().(*types.Basic)
	if !isBasic {
		return 0, false
	}
	switch b.Kind() {
	case types.Uint8:
		return 8, true
	case types.Uint16:
		return 16, true
	case types.Uint32:
		return 32, true
	case types.Uint64:
		return 64, true
	case types.Uint, types.Uintptr:
		return 0, true
	}
	return 0, false
}

// IsSignedInt reports whether t's underlying type is a signed integer.
func IsSignedInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}
