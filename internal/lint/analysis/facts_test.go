package analysis

import (
	"bytes"
	"testing"
)

type testFact struct {
	Tainted bool
	Chain   []string
}

func (*testFact) AFact() {}

type otherFact struct{ N int }

func (*otherFact) AFact() {}

func init() {
	RegisterFact(&testFact{})
	RegisterFact(&otherFact{})
}

// TestFactGobRoundTrip pins the facts wire format: a set survives
// Encode/Decode with every entry intact, distinct fact types on the
// same object stay distinct, and the encoding is byte-deterministic
// regardless of insertion order — the property the fact cache's
// content hashing relies on.
func TestFactGobRoundTrip(t *testing.T) {
	s := NewFactSet("politewifi/internal/rt")
	s.Put("Poll", &testFact{Tainted: true, Chain: []string{"Poll", "time.Now at internal/rt/rt.go:12"}})
	s.Put("Poll", &otherFact{N: 7})
	s.Put("(*Timer).Fire", &testFact{Tainted: false})

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeFactSet("politewifi/internal/rt", data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("round trip kept %d facts, want 3", back.Len())
	}

	var tf testFact
	if !back.Get("Poll", &tf) || !tf.Tainted || len(tf.Chain) != 2 {
		t.Errorf("testFact on Poll did not round trip: %+v", tf)
	}
	if tf.Chain[1] != "time.Now at internal/rt/rt.go:12" {
		t.Errorf("chain corrupted: %q", tf.Chain[1])
	}
	var of otherFact
	if !back.Get("Poll", &of) || of.N != 7 {
		t.Errorf("otherFact on Poll did not round trip: %+v", of)
	}
	var mf testFact
	if !back.Get("(*Timer).Fire", &mf) || mf.Tainted {
		t.Errorf("method fact did not round trip: %+v", mf)
	}
	if back.Get("Missing", &tf) {
		t.Error("Get on missing key reported true")
	}

	// Insertion order must not leak into the encoding.
	s2 := NewFactSet("politewifi/internal/rt")
	s2.Put("(*Timer).Fire", &testFact{Tainted: false})
	s2.Put("Poll", &otherFact{N: 7})
	s2.Put("Poll", &testFact{Tainted: true, Chain: []string{"Poll", "time.Now at internal/rt/rt.go:12"}})
	data2, err := s2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("encoding is not deterministic across insertion orders")
	}
}

// TestDecodeEmptyFacts pins that a zero-length payload — what the
// vettool writes for factless dependency units — decodes to an empty
// set rather than an error.
func TestDecodeEmptyFacts(t *testing.T) {
	s, err := DecodeFactSet("politewifi/internal/oui", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("empty payload decoded to %d facts", s.Len())
	}
}

// TestFactSetFreeze pins that a frozen set rejects writes — imported
// dependency sets are shared across concurrent package analyses and
// must be immutable.
func TestFactSetFreeze(t *testing.T) {
	s := NewFactSet("p")
	s.Put("F", &testFact{})
	s.Freeze()
	defer func() {
		if recover() == nil {
			t.Error("Put on frozen set did not panic")
		}
	}()
	s.Put("G", &testFact{})
}
