package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// Fact is a serializable datum an analyzer attaches to a top-level
// object (a function, usually) so that analyses of *importing*
// packages can see what was learned about the object's package — the
// same contract as golang.org/x/tools/go/analysis facts, sized down
// to what politevet needs. Concrete fact types must be pointers,
// gob-encodable, and registered with RegisterFact before any encode
// or decode.
type Fact interface {
	AFact() // marker method
}

var (
	factTypesMu sync.Mutex
	factTypes   = make(map[string]reflect.Type)
)

// RegisterFact registers a concrete fact type for gob transport.
// Safe to call from init; duplicate registrations of the same type
// are no-ops.
func RegisterFact(f Fact) {
	t := reflect.TypeOf(f)
	factTypesMu.Lock()
	defer factTypesMu.Unlock()
	if _, ok := factTypes[t.String()]; ok {
		return
	}
	factTypes[t.String()] = t
	gob.Register(f)
}

// ObjectKey returns a stable, package-relative key for a top-level
// object: "F" for a function, "(T).M" / "(*T).M" for methods, or the
// plain name for vars/consts/types. The second result is the object's
// package path ("" for builtins and universe objects, in which case
// ok is false — such objects cannot carry facts).
func ObjectKey(obj types.Object) (key, pkgPath string, ok bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	pkgPath = obj.Pkg().Path()
	if fn, isFn := obj.(*types.Func); isFn {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			rt := sig.Recv().Type()
			ptr := ""
			if p, isPtr := rt.(*types.Pointer); isPtr {
				rt = p.Elem()
				ptr = "*"
			}
			named, isNamed := rt.(*types.Named)
			if !isNamed {
				return "", "", false // method on unnamed receiver (interface literal etc.)
			}
			return "(" + ptr + named.Obj().Name() + ")." + fn.Name(), pkgPath, true
		}
		return fn.Name(), pkgPath, true
	}
	return obj.Name(), pkgPath, true
}

// TrimTestVariant strips the test-variant suffix from an import path:
// "politewifi/internal/world [politewifi/internal/world.test]"
// becomes "politewifi/internal/world". Facts are always keyed by the
// plain path, because that is the identity dependents import under.
func TrimTestVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// factKey identifies one fact: the object's package-relative key plus
// the concrete fact type.
type factKey struct {
	object string
	typ    string // reflect type string, e.g. "*purity.Sig"
}

// FactSet holds the facts of one package. Writes happen during that
// package's own analysis; after Freeze the set is read-only and safe
// for concurrent readers.
type FactSet struct {
	PkgPath string

	mu     sync.Mutex
	frozen bool
	m      map[factKey]Fact
}

// NewFactSet returns an empty, writable fact set for pkgPath.
func NewFactSet(pkgPath string) *FactSet {
	return &FactSet{PkgPath: pkgPath, m: make(map[factKey]Fact)}
}

// Freeze marks the set read-only; subsequent Put calls panic.
func (s *FactSet) Freeze() {
	s.mu.Lock()
	s.frozen = true
	s.mu.Unlock()
}

// Put stores fact for the object key (overwriting any previous fact
// of the same concrete type).
func (s *FactSet) Put(objectKey string, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		panic("analysis: Put on frozen FactSet " + s.PkgPath)
	}
	s.m[factKey{objectKey, reflect.TypeOf(fact).String()}] = fact
}

// Get copies the fact stored under objectKey with fact's concrete
// type into fact (which must be a pointer), reporting whether one was
// found.
func (s *FactSet) Get(objectKey string, fact Fact) bool {
	s.mu.Lock()
	stored, ok := s.m[factKey{objectKey, reflect.TypeOf(fact).String()}]
	s.mu.Unlock()
	if !ok {
		return false
	}
	dv := reflect.ValueOf(fact).Elem()
	dv.Set(reflect.ValueOf(stored).Elem())
	return true
}

// Len reports the number of stored facts.
func (s *FactSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// factEntry is the wire form of one fact.
type factEntry struct {
	Object string
	Fact   Fact
}

// Encode serializes the set as gob. Entries are sorted by (object,
// fact type) so the byte stream is deterministic for identical sets —
// the property the fact cache's content hashing and the certificate's
// byte-stability rest on.
func (s *FactSet) Encode() ([]byte, error) {
	s.mu.Lock()
	keys := make([]factKey, 0, len(s.m))
	for k := range s.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].object != keys[j].object {
			return keys[i].object < keys[j].object
		}
		return keys[i].typ < keys[j].typ
	})
	entries := make([]factEntry, 0, len(keys))
	for _, k := range keys {
		entries = append(entries, factEntry{Object: k.object, Fact: s.m[k]})
	}
	s.mu.Unlock()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(entries); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts of %s: %v", s.PkgPath, err)
	}
	return buf.Bytes(), nil
}

// DecodeFactSet reconstructs a fact set from Encode output. A nil or
// empty payload decodes to an empty set — the shape the vettool
// protocol writes for packages with no facts.
func DecodeFactSet(pkgPath string, data []byte) (*FactSet, error) {
	s := NewFactSet(pkgPath)
	if len(data) == 0 {
		return s, nil
	}
	var entries []factEntry
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&entries); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts of %s: %v", pkgPath, err)
	}
	for _, e := range entries {
		if e.Fact == nil {
			continue
		}
		s.m[factKey{e.Object, reflect.TypeOf(e.Fact).String()}] = e.Fact
	}
	return s, nil
}

// Facts is one pass's view of the fact universe: the current
// package's writable set plus the frozen sets of every analyzed
// dependency, keyed by plain import path.
type Facts struct {
	Current  *FactSet
	Imported map[string]*FactSet
}

// NewFacts builds a view for pkgPath over imported dependency sets.
func NewFacts(pkgPath string, imported map[string]*FactSet) *Facts {
	return &Facts{Current: NewFactSet(pkgPath), Imported: imported}
}

// lookupSet resolves the fact set holding facts for pkgPath, which
// may arrive in test-variant form.
func (f *Facts) lookupSet(pkgPath string) *FactSet {
	plain := TrimTestVariant(pkgPath)
	if f.Current != nil && TrimTestVariant(f.Current.PkgPath) == plain {
		return f.Current
	}
	if f.Imported == nil {
		return nil
	}
	return f.Imported[plain]
}

// ExportObjectFact attaches fact to obj, which must belong to the
// pass's own package. Exports against foreign objects are dropped:
// a pass may only speak for the package it analyzed.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts == nil || p.Facts.Current == nil {
		return
	}
	key, pkgPath, ok := ObjectKey(obj)
	if !ok || TrimTestVariant(pkgPath) != TrimTestVariant(p.Facts.Current.PkgPath) {
		return
	}
	p.Facts.Current.Put(key, fact)
}

// HasFactsFor reports whether the fact pass visited pkgPath at all —
// whether a fact set (possibly empty) exists for it. Consumers use
// this to tell "analyzed and found pure" (absent fact in a present
// set) apart from "never analyzed" (absent set), which must stay
// conservative.
func (p *Pass) HasFactsFor(pkgPath string) bool {
	return p.Facts != nil && p.Facts.lookupSet(pkgPath) != nil
}

// ImportObjectFact copies the fact of fact's concrete type attached
// to obj — in this package or any analyzed dependency — into fact,
// reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if p.Facts == nil {
		return false
	}
	key, pkgPath, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	set := p.Facts.lookupSet(pkgPath)
	if set == nil {
		return false
	}
	return set.Get(key, fact)
}
