package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// Directive is one parsed //politevet:allow comment. The grammar is
//
//	//politevet:allow <analyzer>(<reason>)
//
// where <analyzer> names a registered analyzer and <reason> is a
// non-empty free-text justification. A directive written as a
// trailing comment suppresses that analyzer's findings on its own
// line; a directive on a line of its own suppresses findings on the
// next line. A directive with an empty reason suppresses nothing and
// is itself a diagnostic: the whole point is that every escape from
// an invariant carries its justification in the source.
type Directive struct {
	Pos      token.Pos
	Analyzer string
	Reason   string

	// Malformed is a description of a grammar violation ("" when the
	// directive parsed cleanly). Malformed directives never suppress.
	Malformed string
}

const directivePrefix = "//politevet:"

// directiveRE tolerates a trailing // comment after the directive
// (fixtures use it for // want expectations); anything else after
// the closing paren is malformed.
var directiveRE = regexp.MustCompile(`^//politevet:allow\s+([A-Za-z0-9_-]+)\(([^)]*)\)\s*(?://.*)?$`)

// ParseDirectives extracts every politevet directive from the file's
// comments. Anything starting with //politevet: that does not match
// the grammar is returned with Malformed set, so typos fail loudly
// instead of silently not suppressing.
func ParseDirectives(f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			d := Directive{Pos: c.Pos()}
			m := directiveRE.FindStringSubmatch(text)
			switch {
			case m == nil:
				d.Malformed = "directive does not match //politevet:allow <analyzer>(<reason>)"
			case strings.TrimSpace(m[2]) == "":
				d.Analyzer = m[1]
				d.Malformed = "directive reason must not be empty"
			default:
				d.Analyzer = m[1]
				d.Reason = strings.TrimSpace(m[2])
			}
			out = append(out, d)
		}
	}
	return out
}

// Suppressor indexes a package's valid directives by analyzer and
// line so the driver can filter diagnostics. It also records which
// directives actually suppressed something, so the driver's
// unusedallow check can flag stale annotations.
type Suppressor struct {
	fset *token.FileSet
	// byKey maps "filename:line:analyzer" to the covering directive.
	byKey map[string]*usedDirective
	dirs  []*usedDirective
}

type usedDirective struct {
	Directive
	used bool
}

// NewSuppressor indexes the valid (well-formed, reasoned) directives
// of the given files.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{fset: fset, byKey: make(map[string]*usedDirective)}
	for _, f := range files {
		for _, d := range ParseDirectives(f) {
			if d.Malformed != "" {
				continue
			}
			ud := &usedDirective{Directive: d}
			s.dirs = append(s.dirs, ud)
			p := fset.Position(d.Pos)
			// A directive covers its own line (trailing-comment form)
			// and the following line (standalone-comment form).
			s.byKey[key(p.Filename, p.Line, d.Analyzer)] = ud
			s.byKey[key(p.Filename, p.Line+1, d.Analyzer)] = ud
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a directive, marking the directive as used.
func (s *Suppressor) Suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	ud, ok := s.byKey[key(p.Filename, p.Line, analyzer)]
	if ok {
		ud.used = true
	}
	return ok
}

// At returns the valid directive covering pos for the named analyzer,
// without marking it used — the purity pass consults directives to
// set the sanctioned bit on taints, which is not suppression.
func (s *Suppressor) At(analyzer string, pos token.Pos) (Directive, bool) {
	p := s.fset.Position(pos)
	if ud, ok := s.byKey[key(p.Filename, p.Line, analyzer)]; ok {
		return ud.Directive, true
	}
	return Directive{}, false
}

// Unused returns the valid directives that suppressed nothing during
// this run, restricted to those naming an analyzer in ran — a
// directive for a disabled analyzer is not stale, merely unexercised.
// Call after every analyzer has reported.
func (s *Suppressor) Unused(ran map[string]bool) []Directive {
	var out []Directive
	for _, ud := range s.dirs {
		if !ud.used && ran[ud.Analyzer] {
			out = append(out, ud.Directive)
		}
	}
	return out
}

func key(file string, line int, analyzer string) string {
	return file + ":" + strconv.Itoa(line) + ":" + analyzer
}
