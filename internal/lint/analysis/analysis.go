// Package analysis is a deliberately small re-implementation of the
// golang.org/x/tools/go/analysis vocabulary on top of the standard
// library, sized to what politevet needs: typed single-package
// analyzers with positioned diagnostics and directive-based
// suppression. The repository vendors no third-party modules, so the
// vet framework politevet runs on is built here from go/ast and
// go/types alone.
//
// The API mirrors x/tools where the concepts coincide (Analyzer,
// Pass, Diagnostic, Reportf) so the analyzers read like any other
// go/analysis checker and could be ported to the upstream framework
// by changing only imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one invariant checker. Name is the identifier
// used in diagnostics and in //politevet:allow directives; Doc is a
// short description shown by `politevet -help`.
type Analyzer struct {
	Name string
	Doc  string

	// Run performs the analysis over one package and reports
	// diagnostics through pass.Report. The error return is for
	// analysis malfunctions, not findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the interprocedural view: the current package's
	// writable fact set plus frozen sets from analyzed dependencies.
	// Nil when the driver runs without the facts layer (old-style
	// single-package analysis); ImportObjectFact then reports false
	// and ExportObjectFact is a no-op.
	Facts *Facts

	// Report delivers a diagnostic to the driver, which applies
	// //politevet:allow suppression before surfacing it.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Preorder calls fn for every node in every file whose concrete type
// matches one of the example nodes in nodeTypes (all nodes when
// nodeTypes is empty), in depth-first source order.
func (p *Pass) Preorder(nodeTypes []ast.Node, fn func(ast.Node)) {
	match := matcher(nodeTypes)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if match(n) {
				fn(n)
			}
			return true
		})
	}
}

// WithStack is Preorder with the enclosing-node stack: stack[0] is
// the *ast.File and stack[len(stack)-1] is the matched node itself.
// The stack slice is reused between calls; callers must not retain it.
func (p *Pass) WithStack(nodeTypes []ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	match := matcher(nodeTypes)
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			if match(n) {
				fn(n, stack)
			}
			return true
		})
	}
}

func matcher(nodeTypes []ast.Node) func(ast.Node) bool {
	if len(nodeTypes) == 0 {
		return func(ast.Node) bool { return true }
	}
	want := make(map[reflect.Type]bool, len(nodeTypes))
	for _, t := range nodeTypes {
		want[reflect.TypeOf(t)] = true
	}
	return func(n ast.Node) bool { return want[reflect.TypeOf(n)] }
}
