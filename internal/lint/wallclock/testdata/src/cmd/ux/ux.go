// Package ux sits on a /cmd/ import path: command-line UX may report
// wall time to humans, so the wallclock analyzer exempts it
// wholesale. No finding expected anywhere in this file.
package ux

import (
	"fmt"
	"time"
)

func Timer() func() {
	start := time.Now()
	return func() { fmt.Println(time.Since(start)) }
}
