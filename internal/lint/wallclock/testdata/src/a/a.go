// Package a is a wallclock fixture: simulation-side code reaching
// for the wall clock.
package a

import "time"

func readsClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func measures(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock"
}

func sleeps() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}

func waits() <-chan time.Time {
	return time.After(time.Second) // want "time.After reads the wall clock"
}

func ticks() *time.Ticker {
	return time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
}

// Pure value construction and arithmetic never read a clock.
func pureValues() time.Duration {
	t := time.Unix(0, 0)
	_ = t.Add(3 * time.Second)
	return 5 * time.Microsecond
}

// A reasoned directive suppresses the finding.
func sanctioned() time.Time {
	return time.Now() //politevet:allow wallclock(fixture exercising sanctioned profiling)
}

// An unreasoned directive suppresses nothing and is itself a finding.
func unreasoned() time.Time {
	return time.Now() //politevet:allow wallclock() // want "time.Now reads the wall clock" "directive reason must not be empty"
}

// A directive naming an unknown analyzer is a finding too.
func unknownAnalyzer() time.Time {
	return time.Now() //politevet:allow wallcheck(typo in the analyzer name) // want "time.Now reads the wall clock" "unknown analyzer \"wallcheck\""
}
