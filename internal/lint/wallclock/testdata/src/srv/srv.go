// Package srv is a wallclock fixture: HTTP server plumbing around
// the simulator, politewifid-style. net/http.Server timeout fields
// are pure time.Duration values — they configure the HTTP runtime,
// not the simulation — so they produce no findings; neither does
// context.AfterFunc, which the daemon's stream buffers use to wake
// tailing readers, because it belongs to context, not time. A
// genuine wall-clock read (a graceful-shutdown drain deadline)
// outside cmd/ still needs a reasoned directive.
package srv

import (
	"context"
	"net/http"
	"time"
)

// Server timeout fields are duration values, not clock reads: no
// finding on any line here.
func server() *http.Server {
	return &http.Server{
		Addr:              "127.0.0.1:0",
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// context.AfterFunc is the context package's, not time's: no finding.
func wake(ctx context.Context, f func()) func() bool {
	return context.AfterFunc(ctx, f)
}

// context deadlines are consumed as values; only producing one from
// the wall clock reads it.
func remaining(ctx context.Context) time.Duration {
	if d, ok := ctx.Deadline(); ok {
		return d.Sub(time.Unix(0, 0))
	}
	return 0
}

// A graceful-shutdown drain deadline genuinely reads the clock;
// outside cmd/ it carries its reason.
func drainDeadline() time.Time {
	return time.Now().Add(30 * time.Second) //politevet:allow wallclock(graceful-shutdown drain deadline is host wall time by design)
}

// The same read without a directive is a finding.
func nakedDeadline() time.Time {
	return time.Now().Add(30 * time.Second) // want "time.Now reads the wall clock"
}
