package wallclock_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "a")
}

func TestWallclockAllowsCmdPaths(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "cmd/ux")
}
