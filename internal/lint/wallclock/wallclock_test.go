package wallclock_test

import (
	"testing"

	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "a")
}

func TestWallclockAllowsCmdPaths(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "cmd/ux")
}

// Server plumbing (politewifid-style) must not need wholesale
// exemptions: http.Server timeout fields and context.AfterFunc are
// clean, and a genuine shutdown-deadline clock read passes with a
// reasoned directive.
func TestWallclockAllowsServerPlumbing(t *testing.T) {
	analysistest.Run(t, wallclock.Analyzer, "srv")
}
