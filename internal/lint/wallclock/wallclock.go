// Package wallclock forbids reading the wall clock from simulation
// code — directly or through any chain of calls. Every timestamp in
// the simulator must come from the eventsim.Scheduler virtual clock:
// a single time.Now in a hot path stamps telemetry or ordering
// decisions with host time, and the bit-identical census guarantee
// (DESIGN.md §5c) dies silently.
//
// The direct check flags literal time.Now/Sleep/... references in
// this package. The transitive check consults the purity fact pass
// (DESIGN.md §5j): a call to any function whose purity signature
// carries an unsanctioned wallclock taint is reported with the full
// chain down to the clock read — `world.Run → rt.poll → time.Now at
// internal/rt/rt.go:42` — so a helper extracted around a clock read
// no longer hides it.
package wallclock

import (
	"go/ast"
	"go/token"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/purity"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After and friends outside cmd/ UX paths, including " +
		"transitively through helpers (full call chain reported); simulation code must use " +
		"the eventsim.Scheduler virtual clock. Server plumbing stays clean without " +
		"exemptions: net/http.Server timeout fields are pure time.Duration values and " +
		"context.AfterFunc belongs to context, so neither is flagged, and cmd/politewifid's " +
		"graceful-shutdown deadlines sit under the cmd/ allowlist; a genuine clock read " +
		"elsewhere needs //politevet:allow wallclock(reason)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if purity.WallclockExempt(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		name, ok := pass.PkgLevelRef(sel, "time")
		if ok && purity.WallclockSources[name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation code must use the eventsim.Scheduler virtual clock (Now/After/Every), or carry a //politevet:allow wallclock(reason) directive",
				name)
		}
	})
	purity.ReportTaints(pass, purity.KindWallclock, func(pos token.Pos, chain []string) {
		pass.Reportf(pos,
			"call transitively reaches the wall clock: %s; plumb the eventsim.Scheduler virtual clock through instead, or carry a //politevet:allow wallclock(reason) directive at the sanctioned acquisition point",
			purity.ChainString(chain))
	})
	return nil
}
