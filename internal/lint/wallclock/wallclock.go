// Package wallclock forbids reading the wall clock from simulation
// code. Every timestamp in the simulator must come from the
// eventsim.Scheduler virtual clock: a single time.Now in a hot path
// stamps telemetry or ordering decisions with host time, and the
// bit-identical census guarantee (DESIGN.md §5c) dies silently.
package wallclock

import (
	"go/ast"
	"strings"

	"politewifi/internal/lint/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After and friends outside cmd/ UX paths; " +
		"simulation code must use the eventsim.Scheduler virtual clock. " +
		"Server plumbing stays clean without exemptions: net/http.Server " +
		"timeout fields are pure time.Duration values and context.AfterFunc " +
		"belongs to context, so neither is flagged, and cmd/politewifid's " +
		"graceful-shutdown deadlines sit under the cmd/ allowlist; a genuine " +
		"clock read elsewhere needs //politevet:allow wallclock(reason)",
	Run: run,
}

// forbidden lists the package time functions that observe or wait on
// the wall clock. Pure-value helpers (time.Duration arithmetic,
// time.Unix construction, parsing) are fine: they do not read a
// clock.
var forbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// allowlisted reports whether the package is exempt wholesale:
// command-line UX (progress meters, run timers) legitimately reports
// wall time to a human.
func allowlisted(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

func run(pass *analysis.Pass) error {
	if allowlisted(pass.Pkg.Path()) {
		return nil
	}
	pass.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		name, ok := pass.PkgLevelRef(sel, "time")
		if ok && forbidden[name] {
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock; simulation code must use the eventsim.Scheduler virtual clock (Now/After/Every), or carry a //politevet:allow wallclock(reason) directive",
				name)
		}
	})
	return nil
}
