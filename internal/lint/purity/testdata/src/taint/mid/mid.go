// Package mid is the middle hop of the cross-package taint fixture:
// plain helpers that never mention time or math/rand, yet inherit
// leaf's taints through its exported purity facts.
package mid

import "politewifi/internal/lint/purity/testdata/src/taint/leaf"

// Poll inherits leaf.Stamp's wallclock taint one hop removed.
func Poll() int64 {
	return leaf.Stamp().UnixNano() // want `transitively reaches the wall clock: mid\.Poll → leaf\.Stamp → time\.Now`
}

// Roll inherits leaf.Jitter's globalrand taint one hop removed.
func Roll() int {
	return leaf.Jitter() + 1 // want `transitively draws from the process-global rand source: mid\.Roll → leaf\.Jitter → rand\.Intn`
}

// Quiet calls a function whose taint was sanctioned at the source;
// the sanction rides along in the fact, so nothing fires here.
func Quiet() int64 {
	return leaf.SeedTime()
}

// SanctionedPoll sanctions the inherited taint at this call site: the
// trace it exports is marked sanctioned from here up, so neither this
// line nor any caller reports.
func SanctionedPoll() int64 {
	return leaf.Stamp().UnixNano() //politevet:allow wallclock(fixture: sanctioned at the acquiring call site)
}
