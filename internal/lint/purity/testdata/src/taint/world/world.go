// Package world is the root of the cross-package taint fixture: two
// hops from the actual time.Now, shaped like the real
// world.(*World).Run entry point. The diagnostic must carry the full
// chain — entry → helper → source — or an operator staring at a
// nondeterministic census has no thread to pull.
package world

import "politewifi/internal/lint/purity/testdata/src/taint/mid"

// World mirrors the simulator's top-level driver type.
type World struct {
	seed int64
}

// Run reaches time.Now through mid.Poll → leaf.Stamp: the diagnostic
// names every hop and the source position.
func (w *World) Run() {
	w.seed = mid.Poll() // want `transitively reaches the wall clock: world\.\(\*World\)\.Run → mid\.Poll → leaf\.Stamp → time\.Now at internal/lint/purity/testdata/src/taint/leaf/leaf\.go:\d+`
	_ = mid.Roll()      // want `transitively draws from the process-global rand source: world\.\(\*World\)\.Run → mid\.Roll → leaf\.Jitter → rand\.Intn`
}

// RunQuiet reaches the same sources only through sanctioned traces:
// silent at every level.
func (w *World) RunQuiet() {
	w.seed = mid.Quiet()
	w.seed += mid.SanctionedPoll()
}
