// Package leaf sits at the bottom of the cross-package taint fixture:
// it touches the wall clock and the process-global RNG directly. The
// packages above it (mid, world) never import time or math/rand —
// every finding there exists only because the purity facts exported
// here propagate up the call graph.
package leaf

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want `reads the wall clock`
}

// Jitter draws from the process-global rand source directly.
func Jitter() int {
	return rand.Intn(8) // want `draws from the process-global source`
}

// SeedTime is wall-clock tainted but sanctioned at the acquisition
// point: the taint survives in the fact (for the certificate) but no
// diagnostic fires here or in any caller.
func SeedTime() int64 {
	return time.Now().UnixNano() //politevet:allow wallclock(fixture: sanctioned at the source)
}
