package purity

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"

	"politewifi/internal/lint/analysis"
)

// clampShape recognizes the sanctioned clamp-helper shapes durwrap
// wants to see between a raw duration and a narrow wire field:
//
//	func capNAV(d eventsim.Time) uint16 {
//		if d < 0 { return 0 }
//		if d > maxNAV { return maxNAV }
//		return uint16(d)
//	}
//
//	func capNAV(d int64) int64 { return min(max(d, 0), maxNAV) }
//
// When every return value is provably bounded, the function earns a
// Clamp fact {Bits, NonNeg} and call sites that narrow its result are
// sanctioned without a local guard. The analysis is deliberately
// flat: guards are tracked only across the top-level statement list
// (the helper shape), and any return buried in a construct we don't
// model forfeits the fact.
func clampShape(pass *analysis.Pass, decl *ast.FuncDecl) *Clamp {
	res := decl.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
		return nil
	}
	rt := pass.TypeOf(res.List[0].Type)
	if rt == nil {
		return nil
	}
	b, ok := rt.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	width := 64
	unsigned := false
	if w, uns := analysis.IsUnsigned(rt); uns {
		unsigned = true
		if w > 0 {
			width = w
		}
	}

	cb := &clampBody{pass: pass, env: make(map[types.Object]bound)}
	out := bound{bits: 0, nonneg: true} // join identity
	complete := cb.walk(decl.Body.List, &out)
	if !complete || cb.returns == 0 {
		return nil
	}
	if unsigned {
		out.nonneg = true
		if out.bits > width {
			out.bits = width
		}
	}
	if out.bits >= 64 {
		return nil // no better than the type itself
	}
	return &Clamp{Bits: out.bits, NonNeg: out.nonneg}
}

// bound is an upper bound on an expression's runtime value: it
// carries at most `bits` significant bits, and nonneg marks it
// provably ≥ 0. bits == 64 means unbounded.
type bound struct {
	bits   int
	nonneg bool
}

func unknownBound() bound { return bound{bits: 64} }

func joinBound(a, b bound) bound {
	return bound{bits: max(a.bits, b.bits), nonneg: a.nonneg && b.nonneg}
}

type clampBody struct {
	pass    *analysis.Pass
	env     map[types.Object]bound
	returns int
}

// walk processes a flat statement list, folding every return's bound
// into out. It reports false when it meets a return it cannot bound
// or a construct it does not model that hides a return.
func (cb *clampBody) walk(stmts []ast.Stmt, out *bound) bool {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			if len(s.Results) != 1 {
				return false
			}
			cb.returns++
			rb := cb.exprBound(s.Results[0])
			if rb.bits >= 64 && !rb.nonneg {
				return false
			}
			*out = joinBound(*out, rb)
			return true // statements after a top-level return are dead
		case *ast.AssignStmt:
			cb.assign(s)
		case *ast.IfStmt:
			if !cb.ifStmt(s, out) {
				return false
			}
		case *ast.DeclStmt, *ast.EmptyStmt, *ast.ExprStmt:
			if hasReturn(stmt) {
				return false
			}
		default:
			if hasReturn(stmt) {
				return false
			}
			cb.invalidateAssigned(stmt)
		}
	}
	return true
}

// ifStmt handles the guard shapes: a simple comparison of a tracked
// identifier against a constant, whose body either terminates with a
// bounded return or clamps the identifier by assignment. After the
// if, the negated comparison refines the identifier's bound.
func (cb *clampBody) ifStmt(s *ast.IfStmt, out *bound) bool {
	if s.Init != nil || s.Else != nil {
		return !hasReturn(s) // unmodelled shape: fine if it hides no return
	}
	obj, refined, ok := cb.negatedGuard(s.Cond)
	if !ok {
		if hasReturn(s) {
			return false
		}
		cb.invalidateAssigned(s.Body)
		return true
	}

	switch len(s.Body.List) {
	case 1:
		switch body := s.Body.List[0].(type) {
		case *ast.ReturnStmt:
			// if x > C { return C' } — the branch's return folds in,
			// the fallthrough path gets the refinement.
			if len(body.Results) != 1 {
				return false
			}
			cb.returns++
			rb := cb.exprBound(body.Results[0])
			if rb.bits >= 64 && !rb.nonneg {
				return false
			}
			*out = joinBound(*out, rb)
			cb.refine(obj, refined)
			return true
		case *ast.AssignStmt:
			// if x > C { x = C } — both paths merge: refinement on the
			// fallthrough, the assigned bound on the clamped path.
			if len(body.Lhs) == 1 && len(body.Rhs) == 1 {
				if id, ok := ast.Unparen(body.Lhs[0]).(*ast.Ident); ok && cb.objectOf(id) == obj {
					ab := cb.exprBound(body.Rhs[0])
					cb.refine(obj, refined)
					cb.env[obj] = joinBound(cb.env[obj], ab)
					return true
				}
			}
		}
	}
	if hasReturn(s) {
		return false
	}
	cb.invalidateAssigned(s.Body)
	return true
}

// negatedGuard decodes `id OP const` (or mirrored) conditions whose
// body not running leaves a useful refinement on id: the negation of
// the condition.
func (cb *clampBody) negatedGuard(cond ast.Expr) (types.Object, bound, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return nil, bound{}, false
	}
	id, idOK := ast.Unparen(be.X).(*ast.Ident)
	c, cOK := cb.constInt(be.Y)
	op := be.Op
	if !idOK || !cOK {
		// mirrored: const OP id — flip the comparison.
		id, idOK = ast.Unparen(be.Y).(*ast.Ident)
		c, cOK = cb.constInt(be.X)
		switch op {
		case token.LSS:
			op = token.GTR
		case token.LEQ:
			op = token.GEQ
		case token.GTR:
			op = token.LSS
		case token.GEQ:
			op = token.LEQ
		}
	}
	if !idOK || !cOK {
		return nil, bound{}, false
	}
	obj := cb.objectOf(id)
	if obj == nil {
		return nil, bound{}, false
	}
	cur := cb.lookup(obj)
	switch op {
	case token.GTR: // !(id > c) → id ≤ c
		if c >= 0 {
			return obj, bound{bits: bits.Len64(uint64(c)), nonneg: cur.nonneg}, true
		}
	case token.GEQ: // !(id ≥ c) → id ≤ c-1
		if c >= 1 {
			return obj, bound{bits: bits.Len64(uint64(c - 1)), nonneg: cur.nonneg}, true
		}
	case token.LSS: // !(id < c) → id ≥ c
		if c >= 0 {
			return obj, bound{bits: cur.bits, nonneg: true}, true
		}
	case token.LEQ: // !(id ≤ c) → id ≥ c+1
		if c >= -1 {
			return obj, bound{bits: cur.bits, nonneg: true}, true
		}
	}
	return nil, bound{}, false
}

func (cb *clampBody) refine(obj types.Object, b bound) {
	cur := cb.lookup(obj)
	cb.env[obj] = bound{bits: min(cur.bits, b.bits), nonneg: cur.nonneg || b.nonneg}
}

func (cb *clampBody) lookup(obj types.Object) bound {
	if b, ok := cb.env[obj]; ok {
		return b
	}
	// Seed from the declared type: unsigned widths bound themselves.
	if w, uns := analysis.IsUnsigned(obj.Type()); uns && w > 0 {
		return bound{bits: w, nonneg: true}
	}
	return unknownBound()
}

func (cb *clampBody) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		cb.invalidateAssigned(s)
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		obj := cb.objectOf(id)
		if obj == nil {
			continue
		}
		cb.env[obj] = cb.exprBound(s.Rhs[i])
	}
}

// invalidateAssigned forgets bounds for identifiers written anywhere
// inside an unmodelled construct.
func (cb *clampBody) invalidateAssigned(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := cb.objectOf(id); obj != nil {
						delete(cb.env, obj)
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
				if obj := cb.objectOf(id); obj != nil {
					delete(cb.env, obj)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := cb.objectOf(id); obj != nil {
						delete(cb.env, obj)
					}
				}
			}
		}
		return true
	})
}

// exprBound computes an upper bound for an expression under the
// current guard environment.
func (cb *clampBody) exprBound(e ast.Expr) bound {
	e = ast.Unparen(e)
	if c, ok := cb.constInt(e); ok {
		if c < 0 {
			return unknownBound()
		}
		return bound{bits: bits.Len64(uint64(c)), nonneg: true}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := cb.objectOf(e); obj != nil {
			return cb.lookup(obj)
		}
	case *ast.BinaryExpr:
		x := cb.exprBound(e.X)
		switch e.Op {
		case token.AND:
			y := cb.exprBound(e.Y)
			// x & C with a non-negative operand bound clears the sign bit.
			nb := bound{bits: min(x.bits, y.bits), nonneg: x.nonneg || y.nonneg}
			return nb
		case token.SHR:
			if c, ok := cb.constInt(e.Y); ok && c >= 0 {
				return bound{bits: max(x.bits-int(c), 0), nonneg: x.nonneg}
			}
		case token.REM:
			if c, ok := cb.constInt(e.Y); ok && c > 0 {
				return bound{bits: bits.Len64(uint64(c - 1)), nonneg: x.nonneg}
			}
		}
	case *ast.CallExpr:
		if target, ok := cb.pass.IsConversion(e); ok && len(e.Args) == 1 {
			inner := cb.exprBound(e.Args[0])
			if w, uns := analysis.IsUnsigned(target); uns && w > 0 {
				if inner.nonneg && inner.bits <= w {
					return bound{bits: inner.bits, nonneg: true}
				}
				return bound{bits: w, nonneg: true} // wraps, but into w bits
			}
			if inner.nonneg {
				return inner
			}
			return unknownBound()
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, builtin := cb.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
				switch id.Name {
				case "min":
					// result equals the smallest arg: ≤ every arg, ≥ 0
					// only when every arg is.
					out := unknownBound()
					out.nonneg = true
					for _, arg := range e.Args {
						ab := cb.exprBound(arg)
						out.bits = min(out.bits, ab.bits)
						out.nonneg = out.nonneg && ab.nonneg
					}
					if len(e.Args) > 0 {
						return out
					}
				case "max":
					// result equals the largest arg: ≤ the largest
					// bound, ≥ 0 when any arg is.
					out := bound{bits: 0}
					for _, arg := range e.Args {
						ab := cb.exprBound(arg)
						out.bits = max(out.bits, ab.bits)
						out.nonneg = out.nonneg || ab.nonneg
					}
					if len(e.Args) > 0 {
						return out
					}
				case "len":
					return bound{bits: 63, nonneg: true}
				}
			}
		}
	}
	return unknownBound()
}

func (cb *clampBody) constInt(e ast.Expr) (int64, bool) {
	tv, ok := cb.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

func (cb *clampBody) objectOf(id *ast.Ident) types.Object {
	if obj := cb.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return cb.pass.TypesInfo.Defs[id]
}

func hasReturn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.FuncLit:
			return false // its returns are not ours
		}
		return !found
	})
	return found
}
