package purity

import (
	"go/ast"
	"go/token"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// The escape half of the signature answers bufreuse's interprocedural
// question: if I hand this function a pooled buffer (an arena-backed
// []byte or a Reception), can it outlive my stop? A parameter escapes
// when the body sends it on a channel, stores it in a package-level
// variable, or forwards it into another function's escaping
// parameter. bufreuse then flags call sites that pass pooled values
// into escaping parameters, with the chain down to the sink.

// escapeTrackable reports whether a parameter's type can alias pooled
// frame memory: byte slices, Reception values/pointers, and anything
// containing them is approximated by "slice or named Reception".
func escapeTrackable(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Slice); ok {
		return true
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Name() == "Reception"
}

// seedEscapes finds the direct sinks: parameters reaching a channel
// send or a package-level store inside this body.
func (a *pkgAnalysis) seedEscapes(fi *fnInfo) {
	params := paramObjects(a.pass, fi.decl)
	if len(params) == 0 {
		return
	}
	// tracked maps local objects aliasing a parameter to that
	// parameter's index — enough flow sensitivity for `b := p` chains.
	tracked := make(map[types.Object]int, len(params))
	for obj, idx := range params {
		tracked[obj] = idx
	}

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if len(n.Lhs) != len(n.Rhs) {
					break
				}
				src, ok := a.trackedExpr(tracked, n.Rhs[i])
				if !ok {
					continue
				}
				if a.pkgLevelBase(lhs) {
					a.addEscape(fi, src, "package-level store", lhs.Pos())
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := a.objectOf(id); obj != nil {
						tracked[obj] = src
					}
				}
			}
		case *ast.SendStmt:
			if src, ok := a.trackedExpr(tracked, n.Value); ok {
				a.addEscape(fi, src, "channel send", n.Pos())
			}
		case *ast.FuncLit:
			// A closure capturing the parameter and launched as a
			// goroutine would escape, but seedYields already forces
			// Yields=true for go statements; for escape purposes the
			// closure body is scanned like any other statement.
			return true
		}
		return true
	})

	fi.escTracked = tracked
}

// propagateEscape pulls callee escapes up: a tracked value passed
// into an escaping parameter escapes here too.
func (a *pkgAnalysis) propagateEscape(fi *fnInfo, cs callSite, csig *Sig) bool {
	if len(csig.Escapes) == 0 || fi.escTracked == nil {
		return false
	}
	changed := false
	args := cs.call.Args
	for _, esc := range csig.Escapes {
		// Method calls: Args align with parameters (receiver is not an
		// argument expression), so esc.Param indexes Args directly.
		if esc.Param >= len(args) {
			continue
		}
		src, ok := a.trackedExpr(fi.escTracked, args[esc.Param])
		if !ok {
			continue
		}
		if a.hasEscape(fi, src) {
			continue
		}
		e := Escape{
			Param:      src,
			Sanctioned: esc.Sanctioned,
			Reason:     esc.Reason,
			Chain:      extend(display(fi.obj), esc.Chain),
		}
		if d, ok := a.sup.At("bufreuse", cs.pos); ok {
			e.Sanctioned = true
			e.Reason = d.Reason
		}
		fi.sig.Escapes = append(fi.sig.Escapes, e)
		changed = true
	}
	return changed
}

func (a *pkgAnalysis) addEscape(fi *fnInfo, param int, sink string, pos token.Pos) {
	if a.hasEscape(fi, param) {
		return
	}
	e := Escape{
		Param: param,
		Chain: []string{display(fi.obj), sink + " at " + a.rel(pos)},
	}
	if d, ok := a.sup.At("bufreuse", pos); ok {
		e.Sanctioned = true
		e.Reason = d.Reason
	}
	fi.sig.Escapes = append(fi.sig.Escapes, e)
}

func (a *pkgAnalysis) hasEscape(fi *fnInfo, param int) bool {
	for _, e := range fi.sig.Escapes {
		if e.Param == param {
			return true
		}
	}
	return false
}

// trackedExpr resolves an expression to the parameter index it
// aliases, looking through reslicing, address-taking, field selection
// on a tracked value, and parentheses.
func (a *pkgAnalysis) trackedExpr(tracked map[types.Object]int, e ast.Expr) (int, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.objectOf(e)
		if obj == nil {
			return 0, false
		}
		idx, ok := tracked[obj]
		return idx, ok
	case *ast.SliceExpr:
		return a.trackedExpr(tracked, e.X)
	case *ast.UnaryExpr:
		return a.trackedExpr(tracked, e.X)
	case *ast.StarExpr:
		return a.trackedExpr(tracked, e.X)
	case *ast.SelectorExpr:
		// rx.Data on a tracked Reception still aliases the pool.
		return a.trackedExpr(tracked, e.X)
	case *ast.CallExpr:
		// append(dst, b...) is the sanctioned element-wise copy; any
		// other append keeps the base's backing array.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && len(e.Args) > 0 {
				if src, ok := a.trackedExpr(tracked, e.Args[0]); ok {
					return src, true
				}
				if !e.Ellipsis.IsValid() {
					for _, arg := range e.Args[1:] {
						if src, ok := a.trackedExpr(tracked, arg); ok {
							return src, true
						}
					}
				}
			}
		}
	}
	return 0, false
}

// paramObjects maps each value parameter object of fd to its index.
// The receiver is deliberately excluded: bufreuse's pooled shapes are
// always arguments, and receiver tracking would drown the fact set in
// method noise.
func paramObjects(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	idx := 0
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			idx++ // unnamed parameter can never escape by name
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && escapeTrackable(obj.Type()) {
				out[obj] = idx
			}
			idx++
		}
	}
	return out
}

func (a *pkgAnalysis) objectOf(id *ast.Ident) types.Object {
	if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return a.pass.TypesInfo.Defs[id]
}

// pkgLevelBase reports whether the assignment target's base resolves
// to a package-level variable.
func (a *pkgAnalysis) pkgLevelBase(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := a.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					return pkgLevelObj(a.pass, a.pass.TypesInfo.Uses[x.Sel])
				}
			}
			e = x.X
		case *ast.Ident:
			return pkgLevelObj(a.pass, a.objectOf(x))
		default:
			return false
		}
	}
}

func pkgLevelObj(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Parent() == pass.Pkg.Scope()
}
