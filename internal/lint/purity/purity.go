// Package purity is politevet's interprocedural fact pass: it
// computes, for every function in a package, a purity signature —
// wallclock-tainted, globalrand-tainted, arena-escaping parameters,
// sleep-spinning loops, yield capability, and clamp bounds — and
// exports it as a serializable per-object fact (DESIGN.md §5j).
// Downstream analyzers (wallclock, globalrand, simsleep, bufreuse,
// durwrap) import these facts for their callees, which upgrades them
// from "direct call" to "transitively reachable" checks: a helper in
// internal/rt that reads time.Now taints every caller in
// internal/world, and the diagnostic carries the full call chain
// (world.Run → rt.poll → time.Now).
//
// Taint carries a sanctioned bit. A //politevet:allow directive on
// the source line (or a cmd/ allowlisted package) marks the taint
// sanctioned: the diagnostic is suppressed everywhere, but the fact
// survives, so `politevet -certify` still lists the function impure —
// widening the sanctioned-impure surface shows up as a CERTIFICATE.md
// diff that must be committed, even though no analyzer fires.
//
// The pass itself reports no diagnostics; it only exports facts. The
// driver runs it first over every unit (and over dependency packages
// in topological order) so the consuming analyzers always see a
// complete fact universe.
package purity

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"politewifi/internal/lint/analysis"
)

// Analyzer computes and exports purity signatures. It is not part of
// the user-facing analyzer set: the driver always prepends it.
var Analyzer = &analysis.Analyzer{
	Name: "purity",
	Doc: "interprocedural fact pass: per-function purity signatures (wallclock/globalrand taint " +
		"with call chains, arena-escaping params, spin loops, yield capability, clamp bounds) " +
		"propagated bottom-up across package boundaries",
	Run: run,
}

// Taint kinds.
const (
	KindWallclock  = "wallclock"
	KindGlobalRand = "globalrand"
)

// Trace records one taint: how the function reaches the source, and
// whether the source (or the call acquiring it) is sanctioned by a
// //politevet:allow directive or a package allowlist.
type Trace struct {
	Sanctioned bool
	Reason     string
	// Chain lists display hops from this function down to the source,
	// e.g. ["rt.Poll", "time.Now at internal/rt/rt.go:42"].
	Chain []string
}

// Escape records one parameter whose buffer can outlive the caller's
// stop: passed-in bytes reach a channel send or a package-level store.
type Escape struct {
	Param      int // zero-based parameter index
	Sanctioned bool
	Reason     string
	// Chain lists display hops from this function down to the sink,
	// e.g. ["radio.stash", "package-level store at internal/radio/tap.go:31"].
	Chain []string
}

// Clamp records that a function's single integer result provably fits
// in Bits bits (and, when NonNeg, is provably non-negative) — the
// named const/min-clamp helper shape durwrap sanctions.
type Clamp struct {
	Bits   int
	NonNeg bool
}

// Sig is the per-function purity signature exported as a fact.
type Sig struct {
	Wallclock  *Trace
	GlobalRand *Trace
	// Yields reports whether calling the function could advance
	// simulated time, block, or mutate state outside its frame —
	// anything a polled predicate might observe. Unknown callees are
	// assumed to yield, so false is a proof, true is the default.
	Yields  bool
	Escapes []Escape
	Clamp   *Clamp
	// Spin marks a function containing a busy-wait loop (the simsleep
	// class); recorded for the certificate, not propagated.
	Spin *Trace
}

func (*Sig) AFact() {}

func init() { analysis.RegisterFact(&Sig{}) }

// taint returns the trace for the given kind, or nil.
func (s *Sig) taint(kind string) *Trace {
	switch kind {
	case KindWallclock:
		return s.Wallclock
	case KindGlobalRand:
		return s.GlobalRand
	}
	return nil
}

func (s *Sig) setTaint(kind string, t *Trace) {
	switch kind {
	case KindWallclock:
		s.Wallclock = t
	case KindGlobalRand:
		s.GlobalRand = t
	}
}

// WallclockSources lists the package time functions that observe or
// wait on the wall clock. Pure-value helpers (Duration arithmetic,
// time.Unix construction, parsing) do not read a clock and are absent.
var WallclockSources = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
}

// GlobalRandSources lists the math/rand (and v2) package-level
// functions that consume the process-global source. Constructors are
// exempt: building a private generator from an explicit seed is the
// sanctioned pattern.
var GlobalRandSources = map[string]map[string]bool{
	"math/rand": set("Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
		"Uint32", "Uint64", "Float32", "Float64", "NormFloat64", "ExpFloat64",
		"Perm", "Shuffle", "Seed", "Read"),
	"math/rand/v2": set("Int", "IntN", "Int32", "Int32N", "Int64", "Int64N",
		"Uint", "UintN", "Uint32", "Uint32N", "Uint64", "Uint64N",
		"Float32", "Float64", "NormFloat64", "ExpFloat64", "Perm", "Shuffle", "N"),
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// WallclockExempt reports whether the package is exempt from the
// wallclock invariant wholesale: command-line UX legitimately reports
// wall time to a human. Taints seeded there are marked sanctioned.
func WallclockExempt(path string) bool {
	return strings.HasPrefix(path, "cmd/") || strings.Contains(path, "/cmd/")
}

// pureStdPkgs are standard-library packages whose functions provably
// neither block nor mutate observable state — safe to treat as
// non-yielding for the simsleep fact without analyzing their source.
var pureStdPkgs = map[string]bool{
	"math":         true,
	"math/bits":    true,
	"math/cmplx":   true,
	"strconv":      true,
	"unicode":      true,
	"unicode/utf8": true,
}

// maxChain bounds recorded call chains; deeper taints elide middle hops.
const maxChain = 12

// fnInfo is the per-function scratch state of one package's analysis.
type fnInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	sig  Sig

	// calls lists resolved static callees in source order, with the
	// first call site of each.
	calls []callSite
	// yieldsFixed is set once Yields can no longer change (seeded true).
	seedYields bool
	// escTracked maps local objects aliasing a trackable parameter to
	// that parameter's index, for escape propagation through call args.
	escTracked map[types.Object]int
}

type callSite struct {
	callee *types.Func
	call   *ast.CallExpr
	pos    token.Pos
}

type pkgAnalysis struct {
	pass   *analysis.Pass
	sup    *analysis.Suppressor
	rel    func(token.Pos) string
	fns    []*fnInfo
	byObj  map[*types.Func]*fnInfo
	exempt bool // wallclock cmd/ allowlist
}

func run(pass *analysis.Pass) error {
	a := &pkgAnalysis{
		pass:   pass,
		sup:    analysis.NewSuppressor(pass.Fset, pass.Files),
		rel:    newRelposer(pass.Fset, pass.Files),
		byObj:  make(map[*types.Func]*fnInfo),
		exempt: WallclockExempt(pass.Pkg.Path()),
	}

	// Collect declared functions in source order.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &fnInfo{obj: obj, decl: fd}
			a.fns = append(a.fns, fi)
			a.byObj[obj] = fi
		}
	}

	for _, fi := range a.fns {
		a.seed(fi)
	}
	a.fixpoint()

	// Export everything learned so far; the spin scan below reads the
	// freshly exported facts through the normal import path.
	for _, fi := range a.fns {
		a.export(fi)
	}

	for _, spin := range FindSpins(pass) {
		fi := a.enclosing(spin.Pos)
		if fi == nil || fi.sig.Spin != nil {
			continue
		}
		t := &Trace{Chain: []string{"busy-wait loop at " + a.rel(spin.Pos)}}
		if d, ok := a.sup.At("simsleep", spin.Pos); ok {
			t.Sanctioned = true
			t.Reason = d.Reason
		}
		fi.sig.Spin = t
		a.export(fi)
	}
	return nil
}

func (a *pkgAnalysis) enclosing(pos token.Pos) *fnInfo {
	for _, fi := range a.fns {
		if pos >= fi.decl.Pos() && pos <= fi.decl.End() {
			return fi
		}
	}
	return nil
}

func (a *pkgAnalysis) export(fi *fnInfo) {
	s := fi.sig
	if s.Wallclock == nil && s.GlobalRand == nil && s.Yields &&
		len(s.Escapes) == 0 && s.Clamp == nil && s.Spin == nil {
		// The all-defaults signature carries no information; dependents
		// assume exactly this shape for factless objects.
		return
	}
	sig := s // copy; facts are shared read-only after freeze
	a.pass.ExportObjectFact(fi.obj, &sig)
}

// display renders a function as it should appear in a call chain:
// pkgname.Func, pkgname.(T).M, or pkgname.(*T).M.
func display(fn *types.Func) string {
	key, _, ok := analysis.ObjectKey(fn)
	if !ok {
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + key
	}
	return key
}

// seed performs the single-function scan: direct taint sources,
// static call sites, yield seeds, escape seeds, and the clamp shape.
func (a *pkgAnalysis) seed(fi *fnInfo) {
	fi.sig.Yields = false
	body := fi.decl.Body

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			a.seedTaint(fi, n)
		case *ast.CallExpr:
			if callee := analysis.StaticCallee(a.pass.TypesInfo, n); callee != nil {
				if _, seen := find(fi.calls, callee); !seen {
					fi.calls = append(fi.calls, callSite{callee: callee, call: n, pos: n.Pos()})
				}
			}
		}
		return true
	})

	fi.seedYields = a.seedYields(fi)
	fi.sig.Yields = fi.seedYields
	a.seedEscapes(fi)
	fi.sig.Clamp = clampShape(a.pass, fi.decl)
}

func find(calls []callSite, callee *types.Func) (callSite, bool) {
	for _, c := range calls {
		if c.callee == callee {
			return c, true
		}
	}
	return callSite{}, false
}

// seedTaint records direct wallclock / globalrand sources. A bare
// reference (time.Now passed as a value) taints like a call: the
// receiver can invoke it at will.
func (a *pkgAnalysis) seedTaint(fi *fnInfo, sel *ast.SelectorExpr) {
	if name, ok := a.pass.PkgLevelRef(sel, "time"); ok && WallclockSources[name] {
		a.acquireSource(fi, KindWallclock, "time."+name, sel.Pos())
		return
	}
	for path, names := range GlobalRandSources {
		if name, ok := a.pass.PkgLevelRef(sel, path); ok && names[name] {
			a.acquireSource(fi, KindGlobalRand, "rand."+name, sel.Pos())
			return
		}
	}
}

// acquireSource installs a direct-source taint, preferring
// unsanctioned sources over sanctioned ones (the diagnostic-relevant
// kind must win the representative slot).
func (a *pkgAnalysis) acquireSource(fi *fnInfo, kind, source string, pos token.Pos) {
	t := &Trace{Chain: []string{display(fi.obj), source + " at " + a.rel(pos)}}
	if d, ok := a.sup.At(kind, pos); ok {
		t.Sanctioned = true
		t.Reason = d.Reason
	} else if kind == KindWallclock && a.exempt {
		t.Sanctioned = true
		t.Reason = "cmd/ UX allowlist"
	}
	if prev := fi.sig.taint(kind); prev != nil && !(prev.Sanctioned && !t.Sanctioned) {
		return // keep the existing, equally-or-more-alarming taint
	}
	fi.sig.setTaint(kind, t)
}

// calleeSig resolves the signature of a callee: same-package functions
// from the in-progress analysis, imported ones from facts.
func (a *pkgAnalysis) calleeSig(callee *types.Func) (*Sig, bool) {
	if fi, ok := a.byObj[callee]; ok {
		return &fi.sig, true
	}
	var sig Sig
	if a.pass.ImportObjectFact(callee, &sig) {
		return &sig, true
	}
	return nil, false
}

// fixpoint propagates taints, yields, and escapes through the
// package's static call graph until nothing changes. Functions are
// visited in source order and callees in call-site order, so the
// representative chains are deterministic.
func (a *pkgAnalysis) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, fi := range a.fns {
			for _, cs := range fi.calls {
				csig, ok := a.calleeSig(cs.callee)
				if !ok {
					continue
				}
				for _, kind := range []string{KindWallclock, KindGlobalRand} {
					if a.propagateTaint(fi, cs, kind, csig.taint(kind)) {
						changed = true
					}
				}
				if a.propagateEscape(fi, cs, csig) {
					changed = true
				}
			}
			if !fi.sig.Yields && a.yieldsNow(fi) {
				fi.sig.Yields = true
				changed = true
			}
		}
	}
}

// propagateTaint pulls a callee's taint up into the caller. An allow
// directive at the call site sanctions the caller's taint even when
// the source is unsanctioned — the caller has vouched for this use.
func (a *pkgAnalysis) propagateTaint(fi *fnInfo, cs callSite, kind string, from *Trace) bool {
	if from == nil {
		return false
	}
	t := &Trace{
		Sanctioned: from.Sanctioned,
		Reason:     from.Reason,
		Chain:      extend(display(fi.obj), from.Chain),
	}
	if d, ok := a.sup.At(kind, cs.pos); ok {
		t.Sanctioned = true
		t.Reason = d.Reason
	} else if kind == KindWallclock && a.exempt {
		t.Sanctioned = true
		t.Reason = "cmd/ UX allowlist"
	}
	prev := fi.sig.taint(kind)
	if prev != nil && !(prev.Sanctioned && !t.Sanctioned) {
		return false
	}
	fi.sig.setTaint(kind, t)
	return true
}

// extend prepends a hop to a chain, eliding the middle of chains that
// exceed maxChain.
func extend(hop string, chain []string) []string {
	out := make([]string, 0, len(chain)+1)
	out = append(out, hop)
	out = append(out, chain...)
	if len(out) > maxChain {
		head := out[:maxChain/2]
		tail := out[len(out)-maxChain/2:]
		out = append(append(append([]string{}, head...), "…"), tail...)
	}
	return out
}

// ChainString renders a chain for a diagnostic: "a → b → c".
func ChainString(chain []string) string {
	return strings.Join(chain, " → ")
}

// newRelposer renders positions relative to the module root (the
// nearest ancestor directory holding go.mod), so chains and the
// certificate are byte-stable across checkouts and loader modes.
func newRelposer(fset *token.FileSet, files []*ast.File) func(token.Pos) string {
	root := ""
	if len(files) > 0 {
		dir := filepath.Dir(fset.Position(files[0].Pos()).Filename)
		for d := dir; ; {
			if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
				root = d
				break
			}
			parent := filepath.Dir(d)
			if parent == d {
				break
			}
			d = parent
		}
	}
	return func(pos token.Pos) string {
		p := fset.Position(pos)
		name := p.Filename
		if root != "" {
			if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
				name = r
			}
		}
		return filepath.ToSlash(name) + ":" + strconv.Itoa(p.Line)
	}
}
