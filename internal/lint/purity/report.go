package purity

import (
	"go/ast"
	"go/token"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// Display renders a function for a call chain: pkgname.Func,
// pkgname.(T).M, or pkgname.(*T).M.
func Display(fn *types.Func) string { return display(fn) }

// ReportTaints invokes report for every call site whose static callee
// carries an unsanctioned taint of the given kind, with the full
// chain from the enclosing function down to the source. This is the
// transitive half of the wallclock and globalrand analyzers: the
// direct half (a literal time.Now in this package) stays a local
// check, so only calls that *reach* a source through other functions
// arrive here.
func ReportTaints(pass *analysis.Pass, kind string, report func(pos token.Pos, chain []string)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.StaticCallee(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				var sig Sig
				if !pass.ImportObjectFact(callee, &sig) {
					return true
				}
				t := sig.taint(kind)
				if t == nil || t.Sanctioned {
					return true
				}
				chain := t.Chain
				if caller != nil {
					chain = extend(display(caller), chain)
				}
				report(call.Pos(), chain)
				return true
			})
		}
	}
}

// ClampFactOf resolves the Clamp fact of the function a call
// expression statically invokes, looking through parentheses. Returns
// nil when e is not such a call or the callee has no clamp fact.
func ClampFactOf(pass *analysis.Pass, e ast.Expr) *Clamp {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if _, isConv := pass.IsConversion(call); isConv {
		if len(call.Args) == 1 {
			// uint16(capNAV(x)): the conversion preserves the clamp when
			// it is at least as wide as the clamped value.
			if inner := ClampFactOf(pass, call.Args[0]); inner != nil {
				if w, uns := analysis.IsUnsigned(pass.TypeOf(call)); uns && w > 0 && inner.Bits <= w {
					return inner
				}
			}
		}
		return nil
	}
	callee := analysis.StaticCallee(pass.TypesInfo, call)
	if callee == nil {
		return nil
	}
	var sig Sig
	if !pass.ImportObjectFact(callee, &sig) {
		return nil
	}
	return sig.Clamp
}

// EscapeFactOf returns the escape records of a call's static callee
// (nil when factless or escape-free), for bufreuse's interprocedural
// check.
func EscapeFactOf(pass *analysis.Pass, call *ast.CallExpr) []Escape {
	callee := analysis.StaticCallee(pass.TypesInfo, call)
	if callee == nil {
		return nil
	}
	var sig Sig
	if !pass.ImportObjectFact(callee, &sig) {
		return nil
	}
	return sig.Escapes
}
