package purity

import (
	"go/ast"
	"go/token"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// SpinFinding is one busy-wait loop: a for-loop that polls simulation
// state via a call but contains nothing that can advance simulated
// time. Polled is the rendered poll expression for the diagnostic.
type SpinFinding struct {
	Pos    token.Pos
	Polled string
}

// FindSpins locates the simsleep class in a package. It refines the
// old syntactic check with facts: a call in the loop body only counts
// as a yield when the callee's signature says it can yield (or the
// callee is unknown and must be assumed to). A loop whose body calls
// only provably pure helpers — `for s.Busy() { recompute() }` where
// recompute touches nothing outside its frame — still spins, and now
// gets caught. The caller (purity.run) exports current-package facts
// before invoking this, so same-package callees resolve.
func FindSpins(pass *analysis.Pass) []SpinFinding {
	var out []SpinFinding
	pass.Preorder([]ast.Node{(*ast.ForStmt)(nil)}, func(n ast.Node) {
		fs := n.(*ast.ForStmt)

		// Conditions that steer the loop: the for-condition plus every
		// if-condition in the body (break guards live there).
		conds := conditions(fs)
		poll := firstPollCall(pass, conds)
		if poll == nil {
			return
		}
		// A counted loop advances its own condition (`for i := 0;
		// i < n; i++`): it terminates by construction, whatever it
		// polls along the way.
		if selfAdvancing(fs) {
			return
		}
		if loopYields(pass, fs, conds) {
			return
		}
		out = append(out, SpinFinding{Pos: fs.Pos(), Polled: types.ExprString(poll)})
	})
	return out
}

func conditions(fs *ast.ForStmt) []ast.Expr {
	var conds []ast.Expr
	if fs.Cond != nil {
		conds = append(conds, fs.Cond)
	}
	ast.Inspect(fs.Body, func(n ast.Node) bool {
		if ifs, ok := n.(*ast.IfStmt); ok {
			conds = append(conds, ifs.Cond)
		}
		return true
	})
	return conds
}

// firstPollCall returns the first non-builtin, non-conversion call
// inside any condition — the polled predicate.
func firstPollCall(pass *analysis.Pass, conds []ast.Expr) *ast.CallExpr {
	for _, cond := range conds {
		var found *ast.CallExpr
		ast.Inspect(cond, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isRealCall(pass, call) {
				found = call
				return false
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}

// selfAdvancing reports whether the loop's own body or post-statement
// assigns an identifier its for-condition reads — the counted-loop
// shape, which terminates without external help.
func selfAdvancing(fs *ast.ForStmt) bool {
	if fs.Cond == nil {
		return false
	}
	condIdents := make(map[string]bool)
	ast.Inspect(fs.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			condIdents[id.Name] = true
		}
		return true
	})
	found := false
	mark := func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if condIdents[e.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if condIdents[e.Sel.Name] {
				found = true
			}
		}
	}
	scan := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		}
		return !found
	}
	if fs.Post != nil {
		ast.Inspect(fs.Post, scan)
	}
	ast.Inspect(fs.Body, scan)
	return found
}

// loopYields reports whether the loop contains any construct that
// could advance simulation time or block: a yielding call outside the
// tracked conditions, a yield-named call anywhere, a channel
// operation, select, go, defer, or return. Calls to callees whose
// purity facts prove Yields=false do not count — the pre-facts
// analyzer had to treat every body call as a potential yield, which
// let `for s.Busy() { stats.bump() }` hide behind a pure helper.
func loopYields(pass *analysis.Pass, fs *ast.ForStmt, conds []ast.Expr) bool {
	inCond := func(n ast.Node) bool {
		for _, c := range conds {
			if n.Pos() >= c.Pos() && n.End() <= c.End() {
				return true
			}
		}
		return false
	}
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if !isRealCall(pass, n) {
				break
			}
			if YieldNames[calleeName(n)] {
				found = true
				break
			}
			if !inCond(n) && callMayYield(pass, n) {
				found = true
			}
		case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt, *ast.ReturnStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return !found
	}
	ast.Inspect(fs.Body, check)
	if fs.Post != nil {
		ast.Inspect(fs.Post, check)
	}
	if fs.Cond != nil {
		// `for sched.Step() {}` drives the queue from the condition.
		ast.Inspect(fs.Cond, check)
	}
	return found
}

// callMayYield judges one body call against facts: known non-yielding
// callees don't save a spinning loop; everything unresolvable might.
func callMayYield(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := analysis.StaticCallee(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return true // func value / interface / builtin-adjacent: assume yes
	}
	if YieldNames[callee.Name()] {
		return true
	}
	var sig Sig
	if pass.ImportObjectFact(callee, &sig) {
		return sig.Yields
	}
	// Factless: the all-defaults signature means pure-and-non-yielding
	// only for module packages the fact pass has visited. For std and
	// unvisited packages, stay conservative outside the pure list.
	if pureStdPkgs[callee.Pkg().Path()] {
		return false
	}
	if pass.HasFactsFor(callee.Pkg().Path()) {
		return false // visited by the fact pass; absence = all-defaults
	}
	return true
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isRealCall reports whether call invokes an actual function — not a
// builtin (len, cap, ...) and not a type conversion.
func isRealCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if _, ok := pass.IsConversion(call); ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if _, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); ok {
			return false
		}
	}
	return true
}
