package purity_test

import (
	"testing"

	"politewifi/internal/lint/analysis"
	"politewifi/internal/lint/analysistest"
	"politewifi/internal/lint/globalrand"
	"politewifi/internal/lint/wallclock"
)

// TestCrossPackageTaint drives the full interprocedural pipeline over
// a three-package fixture: leaf touches time.Now and rand.Intn, mid
// wraps leaf, world wraps mid. The upgraded wallclock and globalrand
// analyzers must flag mid and world purely from leaf's exported
// facts, with full call chains, while sanctioned traces stay silent
// at every level. The packages must be named explicitly — go's `...`
// wildcards never descend into testdata.
func TestCrossPackageTaint(t *testing.T) {
	analysistest.RunPatterns(t,
		[]*analysis.Analyzer{globalrand.Analyzer, wallclock.Analyzer},
		"./testdata/src/taint/leaf",
		"./testdata/src/taint/mid",
		"./testdata/src/taint/world",
	)
}
