package purity

import (
	"go/ast"
	"go/token"
	"go/types"

	"politewifi/internal/lint/analysis"
)

// YieldNames are callee names that drive or wait on the simulation; a
// call to one of these always counts as a yield, whatever the facts
// say — `sched.Step()` advances time by contract.
var YieldNames = map[string]bool{
	"Step": true, "Run": true, "RunUntil": true, "RunFor": true,
	"Sleep": true, "Wait": true, "Yield": true, "Park": true,
	"Gosched": true, "simSleep": true, "SimSleep": true,
}

// seedYields performs the local (call-free) part of the yield
// analysis: the function yields if its body contains a channel
// operation, a select, a goroutine launch, a panic, or any write to
// state outside its own frame. Calls are judged later, against facts,
// in yieldsNow — so a function whose only suspicious constructs are
// calls starts out non-yielding and is promoted by the fixpoint.
func (a *pkgAnalysis) seedYields(fi *fnInfo) bool {
	yields := false
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if yields {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt, *ast.GoStmt:
			yields = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				yields = true
			}
		case *ast.RangeStmt:
			if t := a.pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					yields = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if !a.localLHS(fi, lhs) {
					yields = true
				}
			}
		case *ast.IncDecStmt:
			if !a.localLHS(fi, n.X) {
				yields = true
			}
		case *ast.CallExpr:
			if a.callAlwaysYields(n) {
				yields = true
			}
		}
		return !yields
	})
	return yields
}

// localLHS reports whether an assignment target is provably confined
// to the function's own frame: a plain identifier declared inside the
// function (including value parameters and named results). Selector,
// index, and dereference targets may alias caller-visible state and
// count as external writes.
func (a *pkgAnalysis) localLHS(fi *fnInfo, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true
	}
	obj := a.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = a.pass.TypesInfo.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() >= fi.decl.Pos() && v.Pos() <= fi.decl.End()
}

// callAlwaysYields classifies calls that yield regardless of callee
// facts: yield-named callees, panic (terminates the caller), close
// (a channel operation), and calls through function values or
// interfaces that never resolve to a fact-bearing object — with the
// exception of a short list of provably pure std packages.
func (a *pkgAnalysis) callAlwaysYields(call *ast.CallExpr) bool {
	if _, isConv := a.pass.IsConversion(call); isConv {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := a.pass.TypesInfo.Uses[fn].(*types.Builtin); ok {
			return fn.Name == "panic" || fn.Name == "close" || obj.Name() == "recover"
		}
	case *ast.SelectorExpr:
		if YieldNames[fn.Sel.Name] {
			return true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && YieldNames[id.Name] {
		return true
	}
	callee := analysis.StaticCallee(a.pass.TypesInfo, call)
	if callee == nil {
		return true // func value / interface dispatch: assume it can yield
	}
	if callee.Pkg() == nil {
		return true
	}
	// Same-package and fact-bearing callees are judged in yieldsNow.
	return false
}

// yieldsNow re-judges the function's calls against current facts: a
// call yields unless the callee is known non-yielding.
func (a *pkgAnalysis) yieldsNow(fi *fnInfo) bool {
	if fi.seedYields {
		return true
	}
	for _, cs := range fi.calls {
		if sig, ok := a.calleeSig(cs.callee); ok {
			if sig.Yields || YieldNames[cs.callee.Name()] {
				return true
			}
			continue
		}
		if !calleeProvablyPure(cs.callee) {
			return true
		}
	}
	return false
}

// calleeProvablyPure reports whether a factless callee is still known
// not to yield: a short list of provably pure std packages.
func calleeProvablyPure(callee *types.Func) bool {
	if YieldNames[callee.Name()] {
		return false
	}
	return callee.Pkg() != nil && pureStdPkgs[callee.Pkg().Path()]
}
