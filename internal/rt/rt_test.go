package rt

import (
	"runtime"
	"sync"
	"testing"

	"politewifi/internal/eventsim"
	"politewifi/internal/telemetry"
)

func TestDriveAdvancesVirtualTime(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	fired := 0
	b.Do(func() {
		sched.Every(10*eventsim.Millisecond, func() { fired++ })
	})
	b.Drive(eventsim.Millisecond, 100*eventsim.Millisecond)
	if b.Now() != 100*eventsim.Millisecond {
		t.Fatalf("Now = %v", b.Now())
	}
	if fired != 10 {
		t.Fatalf("ticker fired %d times, want 10", fired)
	}
}

func TestDriveZeroQuantumDefaults(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	b.Drive(0, 5*eventsim.Millisecond)
	if b.Now() != 5*eventsim.Millisecond {
		t.Fatalf("Now = %v", b.Now())
	}
}

func TestConcurrentDoDuringDrive(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	var wg sync.WaitGroup
	injected := 0
	executed := 0
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Do(func() {
					injected++
					sched.After(eventsim.Microsecond, func() { executed++ })
				})
			}
		}()
	}
	b.Drive(eventsim.Millisecond, eventsim.Second)
	wg.Wait()
	// Flush any events injected near the end.
	b.Do(func() { sched.RunFor(eventsim.Millisecond) })
	if injected != 300 {
		t.Fatalf("injected = %d", injected)
	}
	b.Do(func() {
		if executed != injected {
			t.Errorf("executed %d of %d injected events", executed, injected)
		}
	})
}

func TestBridgeStats(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	for i := 0; i < 5; i++ {
		b.Do(func() {})
	}
	b.Drive(eventsim.Millisecond, 10*eventsim.Millisecond)
	st := b.Stats()
	if st.DoCalls != 5 {
		t.Fatalf("DoCalls = %d, want 5", st.DoCalls)
	}
	if st.DriveQuanta != 10 {
		t.Fatalf("DriveQuanta = %d, want 10", st.DriveQuanta)
	}
	// Uncontended single-goroutine use should essentially never wait.
	if st.LockWaits > st.DoCalls {
		t.Fatalf("LockWaits = %d > DoCalls = %d", st.LockWaits, st.DoCalls)
	}
}

func TestBridgeLockWaitsUnderContention(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	// Hold the lock via a long Do while other goroutines pile up.
	started := make(chan struct{})
	release := make(chan struct{})
	go b.Do(func() {
		close(started)
		<-release
	})
	<-started
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Do(func() {})
		}()
	}
	// Give the contenders time to fail TryLock and block.
	for b.Stats().LockWaits < 4 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	st := b.Stats()
	if st.DoCalls != 5 {
		t.Fatalf("DoCalls = %d, want 5", st.DoCalls)
	}
	if st.LockWaits < 4 {
		t.Fatalf("LockWaits = %d, want ≥4", st.LockWaits)
	}
}

func TestBridgeInstrumentInto(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	reg := telemetry.NewRegistry(nil)
	b.InstrumentInto(reg)
	b.Do(func() {})
	b.Drive(eventsim.Millisecond, 3*eventsim.Millisecond)
	rep := reg.Snapshot()
	if c := rep.Counter("rt.do_calls"); c == nil || c.Value != 1 {
		t.Fatalf("rt.do_calls = %+v", c)
	}
	if c := rep.Counter("rt.drive_quanta"); c == nil || c.Value != 3 {
		t.Fatalf("rt.drive_quanta = %+v", c)
	}
	if c := rep.Counter("rt.lock_waits"); c == nil {
		t.Fatal("rt.lock_waits missing")
	}
}

func TestQuantumBoundaryExact(t *testing.T) {
	// A drive of 10 ms in 3 ms quanta must stop exactly at 10 ms.
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	b.Drive(3*eventsim.Millisecond, 10*eventsim.Millisecond)
	if b.Now() != 10*eventsim.Millisecond {
		t.Fatalf("Now = %v, want exactly 10ms", b.Now())
	}
}
