package rt

import (
	"sync"
	"testing"

	"politewifi/internal/eventsim"
)

func TestDriveAdvancesVirtualTime(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	fired := 0
	b.Do(func() {
		sched.Every(10*eventsim.Millisecond, func() { fired++ })
	})
	b.Drive(eventsim.Millisecond, 100*eventsim.Millisecond)
	if b.Now() != 100*eventsim.Millisecond {
		t.Fatalf("Now = %v", b.Now())
	}
	if fired != 10 {
		t.Fatalf("ticker fired %d times, want 10", fired)
	}
}

func TestDriveZeroQuantumDefaults(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	b.Drive(0, 5*eventsim.Millisecond)
	if b.Now() != 5*eventsim.Millisecond {
		t.Fatalf("Now = %v", b.Now())
	}
}

func TestConcurrentDoDuringDrive(t *testing.T) {
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	var wg sync.WaitGroup
	injected := 0
	executed := 0
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Do(func() {
					injected++
					sched.After(eventsim.Microsecond, func() { executed++ })
				})
			}
		}()
	}
	b.Drive(eventsim.Millisecond, eventsim.Second)
	wg.Wait()
	// Flush any events injected near the end.
	b.Do(func() { sched.RunFor(eventsim.Millisecond) })
	if injected != 300 {
		t.Fatalf("injected = %d", injected)
	}
	b.Do(func() {
		if executed != injected {
			t.Errorf("executed %d of %d injected events", executed, injected)
		}
	})
}

func TestQuantumBoundaryExact(t *testing.T) {
	// A drive of 10 ms in 3 ms quanta must stop exactly at 10 ms.
	sched := eventsim.NewScheduler()
	b := NewBridge(sched)
	b.Drive(3*eventsim.Millisecond, 10*eventsim.Millisecond)
	if b.Now() != 10*eventsim.Millisecond {
		t.Fatalf("Now = %v, want exactly 10ms", b.Now())
	}
}
