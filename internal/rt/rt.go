// Package rt bridges the single-threaded discrete-event simulation to
// concurrent Go code. The paper's wardriving program is a
// three-OS-thread pipeline; package core's ConcurrentScanner
// reproduces that structure with real goroutines and channels, and
// this bridge is what lets those goroutines touch the simulation
// safely: all simulation access goes through Do (which serialises on
// the bridge mutex), while Drive advances virtual time in small
// quanta, releasing the lock between quanta so workers interleave.
package rt

import (
	"runtime"
	"sync"
	"sync/atomic"

	"politewifi/internal/eventsim"
	"politewifi/internal/telemetry"
)

// Bridge serialises concurrent access to one scheduler.
type Bridge struct {
	mu    sync.Mutex
	sched *eventsim.Scheduler

	// Contention accounting: how many Do sections ran, how many found
	// the lock already held (and so waited), and how many Drive quanta
	// executed. All atomics — read from any goroutine via Stats.
	doCalls     atomic.Uint64
	lockWaits   atomic.Uint64
	driveQuanta atomic.Uint64
}

// NewBridge wraps a scheduler. After wrapping, all access to the
// scheduler and anything attached to it (medium, stations, attacker)
// must go through Do.
func NewBridge(sched *eventsim.Scheduler) *Bridge {
	return &Bridge{sched: sched}
}

// Do runs f while holding the simulation lock. f may schedule events,
// inject frames, and read simulation state; it must not block on
// channels fed by other Do callers.
func (b *Bridge) Do(f func()) {
	b.doCalls.Add(1)
	if !b.mu.TryLock() {
		b.lockWaits.Add(1)
		b.mu.Lock()
	}
	defer b.mu.Unlock()
	f()
}

// BridgeStats is a point-in-time view of bridge contention.
type BridgeStats struct {
	// DoCalls is the number of Do critical sections entered.
	DoCalls uint64
	// LockWaits is how many of those found the lock held and blocked —
	// the contention signal. It undercounts by design: TryLock can
	// fail spuriously, but a failed TryLock always precedes a real
	// wait here.
	LockWaits uint64
	// DriveQuanta is the number of lock-release windows Drive opened.
	DriveQuanta uint64
}

// Stats reads the contention counters; safe from any goroutine.
func (b *Bridge) Stats() BridgeStats {
	return BridgeStats{
		DoCalls:     b.doCalls.Load(),
		LockWaits:   b.lockWaits.Load(),
		DriveQuanta: b.driveQuanta.Load(),
	}
}

// InstrumentInto registers sampled rt.* counters so bridge contention
// appears in telemetry reports alongside the simulation families.
func (b *Bridge) InstrumentInto(reg *telemetry.Registry) {
	reg.CounterFunc("rt.do_calls", "bridge critical sections entered", func() uint64 {
		return b.doCalls.Load()
	})
	reg.CounterFunc("rt.lock_waits", "Do calls that blocked on the lock", func() uint64 {
		return b.lockWaits.Load()
	})
	reg.CounterFunc("rt.drive_quanta", "Drive lock-release windows", func() uint64 {
		return b.driveQuanta.Load()
	})
}

// Now reads the virtual clock.
func (b *Bridge) Now() eventsim.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sched.Now()
}

// Drive advances the simulation by total virtual time in quantum
// steps, releasing the lock between steps so worker goroutines get a
// chance to observe state and inject work. It returns when the
// virtual deadline is reached.
func (b *Bridge) Drive(quantum, total eventsim.Time) {
	if quantum <= 0 {
		quantum = eventsim.Millisecond
	}
	var deadline eventsim.Time
	b.mu.Lock()
	deadline = b.sched.Now() + total
	b.mu.Unlock()
	for {
		b.mu.Lock()
		now := b.sched.Now()
		if now >= deadline {
			b.mu.Unlock()
			return
		}
		step := quantum
		if now+step > deadline {
			step = deadline - now
		}
		b.sched.RunFor(step)
		b.driveQuanta.Add(1)
		b.mu.Unlock()
		// The unlocked window is where workers run; Gosched makes the
		// handoff prompt even on GOMAXPROCS=1.
		gosched()
	}
}

func gosched() { runtime.Gosched() }
