// Package rt bridges the single-threaded discrete-event simulation to
// concurrent Go code. The paper's wardriving program is a
// three-OS-thread pipeline; package core's ConcurrentScanner
// reproduces that structure with real goroutines and channels, and
// this bridge is what lets those goroutines touch the simulation
// safely: all simulation access goes through Do (which serialises on
// the bridge mutex), while Drive advances virtual time in small
// quanta, releasing the lock between quanta so workers interleave.
package rt

import (
	"runtime"
	"sync"

	"politewifi/internal/eventsim"
)

// Bridge serialises concurrent access to one scheduler.
type Bridge struct {
	mu    sync.Mutex
	sched *eventsim.Scheduler
}

// NewBridge wraps a scheduler. After wrapping, all access to the
// scheduler and anything attached to it (medium, stations, attacker)
// must go through Do.
func NewBridge(sched *eventsim.Scheduler) *Bridge {
	return &Bridge{sched: sched}
}

// Do runs f while holding the simulation lock. f may schedule events,
// inject frames, and read simulation state; it must not block on
// channels fed by other Do callers.
func (b *Bridge) Do(f func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f()
}

// Now reads the virtual clock.
func (b *Bridge) Now() eventsim.Time {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sched.Now()
}

// Drive advances the simulation by total virtual time in quantum
// steps, releasing the lock between steps so worker goroutines get a
// chance to observe state and inject work. It returns when the
// virtual deadline is reached.
func (b *Bridge) Drive(quantum, total eventsim.Time) {
	if quantum <= 0 {
		quantum = eventsim.Millisecond
	}
	var deadline eventsim.Time
	b.mu.Lock()
	deadline = b.sched.Now() + total
	b.mu.Unlock()
	for {
		b.mu.Lock()
		now := b.sched.Now()
		if now >= deadline {
			b.mu.Unlock()
			return
		}
		step := quantum
		if now+step > deadline {
			step = deadline - now
		}
		b.sched.RunFor(step)
		b.mu.Unlock()
		// The unlocked window is where workers run; Gosched makes the
		// handoff prompt even on GOMAXPROCS=1.
		gosched()
	}
}

func gosched() { runtime.Gosched() }
