package serve

import (
	"fmt"
	"sync"
	"time"

	"politewifi/internal/experiments"
	"politewifi/internal/jobspec"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

// State is a job's lifecycle stage.
type State string

const (
	// StateQueued: accepted, waiting for an active-job slot.
	StateQueued State = "queued"
	// StateRunning: its stops are executing on the shared pool.
	StateRunning State = "running"
	// StateDone: ran to completion; result and stream are final.
	StateDone State = "done"
	// StateCancelled: cooperatively stopped; the partial result and
	// stream (ending in a trailer record) are well formed, and the job
	// can be resumed from its last completed stop.
	StateCancelled State = "cancelled"
)

// Job is one submitted measurement campaign. All mutable fields are
// guarded by mu; the HTTP handlers read snapshots, the scheduler
// goroutine writes transitions.
type Job struct {
	ID   string
	Spec jobspec.Spec

	// cancel is closed (once) to request a cooperative stop; replaced
	// with a fresh channel when the job is resumed.
	mu         sync.Mutex
	state      State
	cancel     chan struct{}
	cancelOnce *sync.Once

	// buf is the flight-recorder tape (drive jobs only).
	buf *streamBuffer
	// metrics accumulates across the job's whole life, resumes
	// included, exactly like a CLI run's registry.
	metrics *telemetry.Registry

	// result is the drive census so far, merged across resumes; sweep
	// holds a losssweep job's table instead.
	result *world.Result
	sweep  *experiments.LossSweepResult

	submitted, started, finished time.Time
}

func newJob(id string, spec jobspec.Spec, at time.Time) *Job {
	j := &Job{
		ID:         id,
		Spec:       spec,
		state:      StateQueued,
		cancel:     make(chan struct{}),
		cancelOnce: new(sync.Once),
		metrics:    telemetry.NewRegistry(nil),
		submitted:  at,
	}
	if spec.Kind == jobspec.KindDrive {
		j.buf = newStreamBuffer()
	}
	return j
}

// requestCancel asks the job to stop; idempotent.
func (j *Job) requestCancel() {
	j.mu.Lock()
	once, ch := j.cancelOnce, j.cancel
	j.mu.Unlock()
	once.Do(func() { close(ch) })
}

// Status is the JSON view of a job served by the status and list
// endpoints.
type Status struct {
	ID    string       `json:"id"`
	State State        `json:"state"`
	Spec  jobspec.Spec `json:"spec"`
	// StopsDone/Stops report drive progress (totals for the route the
	// job's spec describes); zero for a losssweep.
	StopsDone int `json:"stops_done,omitempty"`
	Stops     int `json:"stops,omitempty"`
	// Census is the drive's verdict-bucketed totals so far.
	Census *stream.Census `json:"census,omitempty"`
	// Points/Rates report sweep progress.
	Points int `json:"points,omitempty"`
	Rates  int `json:"rates,omitempty"`

	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
}

func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Spec: j.Spec,
		SubmittedAt: stamp(j.submitted),
		StartedAt:   stamp(j.started),
		FinishedAt:  stamp(j.finished),
	}
	if j.result != nil {
		st.StopsDone = j.result.StopsDone
		st.Stops = j.result.Stops
		c := j.result.StreamTotals()
		st.Census = &c
	}
	if j.sweep != nil {
		st.Points = len(j.sweep.Points)
		st.Rates = len(j.sweep.Rates)
	}
	return st
}

// render returns the job's final human-readable report — the same
// bytes the one-shot CLI would print for the same spec.
func (j *Job) render() (string, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case j.state == StateQueued || j.state == StateRunning:
		return "", fmt.Errorf("job %s is %s; the result exists once it finishes", j.ID, j.state)
	case j.sweep != nil:
		return j.sweep.Render(), nil
	case j.result != nil:
		return experiments.Table2FromResult(j.result).Render(), nil
	}
	return "", fmt.Errorf("job %s has no result", j.ID)
}
