package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"politewifi/internal/experiments"
	"politewifi/internal/jobspec"
	"politewifi/internal/telemetry"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

// testSpec is a drive small enough to finish in tens of milliseconds
// but large enough (~20 stops) to exercise the shared pool.
func testSpec(seed int64) jobspec.Spec {
	s := jobspec.Drive()
	s.Seed = seed
	s.Scale = 0.02
	s.DwellMS = 600
	return s
}

// cliReference runs the spec the way the one-shot CLI does — a
// private sequential pool, telemetry attached, flight recorder on —
// and returns the result, the exact stream bytes, and the registry.
func cliReference(t *testing.T, spec jobspec.Spec) (*world.Result, []byte, *telemetry.Registry) {
	t.Helper()
	cfg, err := spec.WorldConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	reg := telemetry.NewRegistry(nil)
	cfg.Metrics = reg
	var buf bytes.Buffer
	cfg.Stream = stream.NewWriter(&buf)
	res := world.Run(cfg)
	return res, buf.Bytes(), reg
}

func startDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func submitJob(t *testing.T, ts *httptest.Server, spec jobspec.Spec) Status {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// readStream blocks until the job's tape is complete and returns its
// exact bytes.
func readStream(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream: %s: %s", resp.Status, b)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func postJSON(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// waitState polls the status endpoint until the job reaches want.
// Each probe is a real HTTP round trip, so the loop is bounded by
// network latency, not a spin; the iteration cap turns a hung daemon
// into a test failure instead of a timeout.
func waitState(t *testing.T, ts *httptest.Server, id string, want State) Status {
	t.Helper()
	var st Status
	for i := 0; i < 200000; i++ {
		st = getStatus(t, ts, id)
		if st.State == want {
			return st
		}
	}
	t.Fatalf("job %s never reached %q (stuck at %q)", id, want, st.State)
	return st
}

// TestJobStreamMatchesCLI is the daemon's core guarantee: the NDJSON
// served over HTTP is byte-identical to the one-shot CLI's stream for
// the same spec, the folded stream reproduces the job's registry, and
// the rendered result matches the CLI report.
func TestJobStreamMatchesCLI(t *testing.T) {
	for _, faulted := range []bool{false, true} {
		name := "pristine"
		if faulted {
			name = "faulted"
		}
		t.Run(name, func(t *testing.T) {
			spec := testSpec(99)
			if faulted {
				spec.Faults = "loss=0.3,ack=0.1"
			}
			wantRes, wantStream, wantReg := cliReference(t, spec)

			for _, poolWorkers := range []int{1, 4} {
				_, ts := startDaemon(t, Config{PoolWorkers: poolWorkers, MaxActive: 2})
				st := submitJob(t, ts, spec)
				got := readStream(t, ts, st.ID)
				if !bytes.Equal(got, wantStream) {
					t.Fatalf("pool=%d: HTTP stream differs from CLI stream (%d vs %d bytes)",
						poolWorkers, len(got), len(wantStream))
				}

				// Folding the served bytes reproduces the final registry —
				// the `tail -fold` invariant over HTTP.
				fold, err := stream.Fold(bytes.NewReader(got))
				if err != nil {
					t.Fatal(err)
				}
				var folded, final bytes.Buffer
				if err := fold.Registry.Snapshot().WriteJSON(&folded); err != nil {
					t.Fatal(err)
				}
				if err := wantReg.Snapshot().WriteJSON(&final); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(folded.Bytes(), final.Bytes()) {
					t.Fatalf("pool=%d: folded HTTP stream != CLI registry snapshot", poolWorkers)
				}

				st = waitState(t, ts, st.ID, StateDone)
				if st.StopsDone != wantRes.Stops || st.Census == nil || *st.Census != wantRes.StreamTotals() {
					t.Fatalf("pool=%d: final status %+v disagrees with CLI result", poolWorkers, st)
				}

				resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
				if err != nil {
					t.Fatal(err)
				}
				report, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if want := experiments.Table2FromResult(wantRes).Render(); string(report) != want {
					t.Fatalf("pool=%d: rendered result differs from CLI report", poolWorkers)
				}
			}
		})
	}
}

// TestConcurrentJobIsolation: two jobs with different seeds multiplex
// one shared pool; each produces the identical bytes it produces when
// run alone. Run under -race in CI.
func TestConcurrentJobIsolation(t *testing.T) {
	specA := testSpec(99)
	specB := testSpec(20201104)
	specB.Faults = "loss=0.2"
	_, wantA, _ := cliReference(t, specA)
	_, wantB, _ := cliReference(t, specB)

	_, ts := startDaemon(t, Config{PoolWorkers: 4, MaxActive: 2})
	stA := submitJob(t, ts, specA)
	stB := submitJob(t, ts, specB)

	type got struct {
		id   string
		data []byte
	}
	ch := make(chan got, 2)
	for _, id := range []string{stA.ID, stB.ID} {
		id := id
		go func() {
			resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/stream")
			if err != nil {
				ch <- got{id, nil}
				return
			}
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ch <- got{id, data}
		}()
	}
	streams := map[string][]byte{}
	for i := 0; i < 2; i++ {
		g := <-ch
		streams[g.id] = g.data
	}
	if !bytes.Equal(streams[stA.ID], wantA) {
		t.Errorf("job A's shared-pool stream differs from its solo stream")
	}
	if !bytes.Equal(streams[stB.ID], wantB) {
		t.Errorf("job B's shared-pool stream differs from its solo stream")
	}
}

// TestQueueBackpressure: with one active slot held by a job that is
// blocked on the pool, a second job queues, a third bounces with 429
// and a Retry-After hint, and once the pool unblocks every accepted
// job completes with its solo bytes — FIFO, deterministically.
func TestQueueBackpressure(t *testing.T) {
	s, ts := startDaemon(t, Config{PoolWorkers: 1, MaxActive: 1, QueueDepth: 1})

	// Wedge the single pool worker so job-1 starts but cannot simulate.
	release := make(chan struct{})
	s.pool.Submit(func() { <-release })

	spec1, spec2 := testSpec(1), testSpec(2)
	st1 := submitJob(t, ts, spec1)
	waitState(t, ts, st1.ID, StateRunning)
	st2 := submitJob(t, ts, spec2) // fills the queue

	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"seed":3,"scale":0.02,"dwell_ms":600}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %s, want 429", resp.Status)
	}
	ra := resp.Header.Get("Retry-After")
	if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer (zero tells clients to retry immediately)", ra)
	}

	close(release)
	got1 := readStream(t, ts, st1.ID)
	got2 := readStream(t, ts, st2.ID)
	_, want1, _ := cliReference(t, spec1)
	_, want2, _ := cliReference(t, spec2)
	if !bytes.Equal(got1, want1) || !bytes.Equal(got2, want2) {
		t.Fatal("queued jobs did not reproduce their solo streams")
	}
	if st := getStatus(t, ts, st2.ID); st.State != StateDone {
		t.Fatalf("queued job final state %q", st.State)
	}
}

// TestRetryAfterClamp: the backlog behind a 429 is sampled with len()
// after the failed send, so a concurrent drain can race it to zero; the
// hint must still be a positive number of seconds.
func TestRetryAfterClamp(t *testing.T) {
	for _, tc := range []struct{ backlog, want int }{
		{-1, 1}, {0, 1}, {1, 1}, {2, 2}, {17, 17},
	} {
		if got := retryAfterSeconds(tc.backlog); got != tc.want {
			t.Errorf("retryAfterSeconds(%d) = %d, want %d", tc.backlog, got, tc.want)
		}
	}
}

// TestCancelAndResume: cancel a job whose tasks are wedged behind the
// pool — deterministically zero stops complete — then resume it and
// verify the final tape and report are byte-identical to the job that
// was never cancelled.
func TestCancelAndResume(t *testing.T) {
	spec := testSpec(99)
	wantRes, wantStream, _ := cliReference(t, spec)

	s, ts := startDaemon(t, Config{PoolWorkers: 1, MaxActive: 1})
	release := make(chan struct{})
	s.pool.Submit(func() { <-release })

	st := submitJob(t, ts, spec)
	waitState(t, ts, st.ID, StateRunning)
	resp := postJSON(t, ts, "/api/v1/jobs/"+st.ID+"/cancel")
	resp.Body.Close()
	close(release)

	st = waitState(t, ts, st.ID, StateCancelled)
	if st.StopsDone != 0 {
		t.Fatalf("wedged cancel completed %d stops, want 0", st.StopsDone)
	}
	// The cancelled tape is well formed: it folds, and it says so.
	tape := readStream(t, ts, st.ID)
	fold, err := stream.Fold(bytes.NewReader(tape))
	if err != nil {
		t.Fatal(err)
	}
	if !fold.Cancelled || fold.Records != 0 {
		t.Fatalf("cancelled tape folds to %+v", fold)
	}
	// The rendered partial report announces the cancellation.
	rr, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if !strings.Contains(string(report), "drive cancelled") {
		t.Fatalf("partial report does not mention cancellation:\n%s", report)
	}

	// Resume: the job continues from its last completed stop and the
	// tape converges on the uncancelled drive's bytes.
	resp = postJSON(t, ts, "/api/v1/jobs/"+st.ID+"/resume")
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("resume: %s: %s", resp.Status, b)
	}
	resp.Body.Close()
	got := readStream(t, ts, st.ID)
	if !bytes.Equal(got, wantStream) {
		t.Fatalf("resumed tape differs from the uncancelled stream (%d vs %d bytes)",
			len(got), len(wantStream))
	}
	st = waitState(t, ts, st.ID, StateDone)
	if st.StopsDone != wantRes.Stops {
		t.Fatalf("resumed job StopsDone=%d, want %d", st.StopsDone, wantRes.Stops)
	}
	rr, err = http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	report, _ = io.ReadAll(rr.Body)
	rr.Body.Close()
	if want := experiments.Table2FromResult(wantRes).Render(); string(report) != want {
		t.Fatal("resumed job's report differs from the uncancelled report")
	}
}

// TestClientDisconnectDoesNotAffectJob: a reader that hangs up
// mid-stream detaches without a trace — the job completes and a fresh
// reader gets the exact solo bytes.
func TestClientDisconnectDoesNotAffectJob(t *testing.T) {
	spec := testSpec(99)
	_, want, _ := cliReference(t, spec)

	_, ts := startDaemon(t, Config{PoolWorkers: 2, MaxActive: 1})
	st := submitJob(t, ts, spec)

	// Connect, read a few bytes, hang up.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/v1/jobs/"+st.ID+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 64)
	_, _ = io.ReadFull(resp.Body, one)
	cancel()
	resp.Body.Close()

	got := readStream(t, ts, st.ID)
	if !bytes.Equal(got, want) {
		t.Fatal("a disconnected reader changed the job's stream")
	}
	final := waitState(t, ts, st.ID, StateDone)
	if final.Census == nil || final.StopsDone != final.Stops {
		t.Fatalf("job did not complete cleanly after a disconnect: %+v", final)
	}
}

// TestLossSweepJob: sweeps run as jobs too — no tape, rendered table
// identical to the direct experiment.
func TestLossSweepJob(t *testing.T) {
	spec := jobspec.LossSweep()
	spec.Seed = 99
	spec.Scale = 0.02
	spec.DwellMS = 600
	spec.Rates = []float64{0, 0.3}

	cfg, err := spec.WorldConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	want := experiments.LossSweep(cfg, spec.Rates).Render()

	_, ts := startDaemon(t, Config{PoolWorkers: 2, MaxActive: 1})
	st := submitJob(t, ts, spec)

	// Sweeps have no tape.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("sweep stream: %s, want 409", resp.Status)
	}

	st = waitState(t, ts, st.ID, StateDone)
	if st.Points != 2 || st.Rates != 2 {
		t.Fatalf("sweep status %+v, want 2/2 points", st)
	}
	rr, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(rr.Body)
	rr.Body.Close()
	if string(report) != want {
		t.Fatalf("sweep job table differs from direct experiment:\n%s\nwant:\n%s", report, want)
	}
}

// TestHTTPValidation covers the unhappy paths: malformed specs, typoed
// fields, unknown jobs, and resume misuse.
func TestHTTPValidation(t *testing.T) {
	_, ts := startDaemon(t, Config{PoolWorkers: 1, MaxActive: 1})

	for _, body := range []string{
		`{not json`,
		`{"sede": 7}`,
		`{"scale": 40}`,
		`{"kind":"losssweep","faults":"loss=0.1"}`,
	} {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %q: %s, want 400", body, resp.Status)
		}
	}

	for _, path := range []string{"/api/v1/jobs/job-999", "/api/v1/jobs/job-999/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %s, want 404", path, resp.Status)
		}
	}

	// Resuming a job that is not cancelled conflicts.
	st := submitJob(t, ts, testSpec(99))
	readStream(t, ts, st.ID) // wait for completion
	waitState(t, ts, st.ID, StateDone)
	resp := postJSON(t, ts, "/api/v1/jobs/"+st.ID+"/resume")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("resume done job: %s, want 409", resp.Status)
	}
}

// TestPoolFIFO pins the pool contract world.Run's Submit path depends
// on: single-worker pools run tasks strictly in submission order, and
// Close drains everything already submitted.
func TestPoolFIFO(t *testing.T) {
	p := NewPool(1)
	var order []int
	done := make(chan struct{})
	for i := 0; i < 50; i++ {
		i := i
		p.Submit(func() {
			order = append(order, i)
			if i == 49 {
				close(done)
			}
		})
	}
	<-done
	p.Close()
	for i, v := range order {
		if v != i {
			t.Fatalf("task %d ran at position %d", v, i)
		}
	}

	// Submit after Close degrades to synchronous execution.
	ran := false
	p.Submit(func() { ran = true })
	if !ran {
		t.Fatal("post-Close Submit did not run the task")
	}
}
