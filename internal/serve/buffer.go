package serve

import (
	"context"
	"fmt"
	"io"
	"sync"
)

// streamBuffer is a job's flight-recorder tape: an append-only byte
// buffer the drive writes NDJSON records into, with any number of
// concurrent readers replaying it from the start and then tailing
// live appends. The buffer fully decouples the drive from its
// consumers — a reader hanging up mid-stream just stops reading; the
// writer never sees it, so a disconnect can never alter the job's
// census or verdicts.
type streamBuffer struct {
	mu   sync.Mutex
	cond *sync.Cond // broadcast on append, finish, and reopen
	buf  []byte
	done bool
}

func newStreamBuffer() *streamBuffer {
	b := &streamBuffer{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Write appends; it never fails, so the drive's stream.Writer never
// latches an error on account of a consumer.
func (b *streamBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	b.buf = append(b.buf, p...)
	b.mu.Unlock()
	b.cond.Broadcast()
	return len(p), nil
}

// finish marks the tape complete: tailing readers drain and return.
func (b *streamBuffer) finish() {
	b.mu.Lock()
	b.done = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// reopen readies a finished tape for a resumed drive's appends.
func (b *streamBuffer) reopen() {
	b.mu.Lock()
	b.done = false
	b.mu.Unlock()
}

// trimLastLine drops the final NDJSON line — the cancellation trailer
// — so a resumed drive's records append right after the last real
// stop record and the tape converges on the uncancelled drive's
// bytes.
func (b *streamBuffer) trimLastLine() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n := len(b.buf); n > 0 {
		cut := n - 1 // drop the trailing \n, then scan to the previous one
		for cut > 0 && b.buf[cut-1] != '\n' {
			cut--
		}
		b.buf = b.buf[:cut]
	}
	// Wake readers parked past the cut so they fail fast instead of
	// waiting for the resumed drive's first append.
	b.cond.Broadcast()
}

// snapshot copies the current contents.
func (b *streamBuffer) snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf...)
}

// streamTo replays the tape into w from the beginning and then tails
// it, flushing after every write, until the tape finishes or ctx is
// cancelled (the reader hung up). The writer side is never affected
// by either outcome.
func (b *streamBuffer) streamTo(ctx context.Context, w io.Writer, flush func()) error {
	// A cancelled context must wake a tailing reader out of cond.Wait.
	stop := context.AfterFunc(ctx, b.cond.Broadcast)
	defer stop()
	off := 0
	for {
		b.mu.Lock()
		for off == len(b.buf) && !b.done && ctx.Err() == nil {
			b.cond.Wait()
		}
		if off > len(b.buf) {
			// The tape was trimmed for a resume while this reader was
			// past the cut; its view is no longer a prefix of the tape.
			b.mu.Unlock()
			return fmt.Errorf("stream rewound during resume; reconnect")
		}
		chunk := b.buf[off:len(b.buf):len(b.buf)]
		done := b.done
		b.mu.Unlock()
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return err
			}
			if flush != nil {
				flush()
			}
			off += len(chunk)
			continue
		}
		if done {
			return nil
		}
	}
}
