// Package serve is the politewifid control plane: a deterministic
// job-serving daemon for wardrive campaigns. It accepts the same job
// specs as the one-shot CLIs (internal/jobspec), runs them as
// cancellable, resumable jobs over one bounded global stop-level
// worker pool, and streams each drive's flight-recorder NDJSON live
// over chunked HTTP.
//
// The service inherits the simulator's determinism wholesale: a job's
// stream bytes are identical to `wardrive -stream` with the same spec
// at any worker count, because stops execute on pre-forked RNGs and
// merge in street order no matter which pool worker ran them when.
// Concurrent jobs multiplex the pool without perturbing each other,
// and a client disconnecting mid-stream only detaches that reader —
// the job's census and verdicts cannot change.
//
// Endpoints (all JSON unless noted):
//
//	POST /api/v1/jobs              submit a jobspec; 201, or 429 +
//	                               Retry-After when the queue is full
//	GET  /api/v1/jobs              list jobs in submission order
//	GET  /api/v1/jobs/{id}         job status
//	POST /api/v1/jobs/{id}/cancel  cooperative stop (bounded by the
//	                               stops in flight)
//	POST /api/v1/jobs/{id}/resume  continue a cancelled drive from its
//	                               last completed stop
//	GET  /api/v1/jobs/{id}/stream  live NDJSON flight-recorder tape
//	                               (replay + tail; drive jobs only)
//	GET  /api/v1/jobs/{id}/result  final rendered report (text)
//	GET  /healthz                  liveness
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"politewifi/internal/experiments"
	"politewifi/internal/jobspec"
	"politewifi/internal/telemetry/stream"
	"politewifi/internal/world"
)

// Config parameterises the daemon.
type Config struct {
	// PoolWorkers sizes the one global stop-level pool every job's
	// simulation runs on. 0 means GOMAXPROCS.
	PoolWorkers int
	// MaxActive bounds how many jobs multiplex the pool concurrently.
	// 0 means 2.
	MaxActive int
	// QueueDepth bounds the FIFO of accepted-but-not-yet-active jobs.
	// A submit that finds the queue full is refused with 429 and a
	// Retry-After hint. 0 means 8.
	QueueDepth int
	// Now supplies job timestamps. The simulation itself never reads
	// wall time (the repo's injected-clock rule); the daemon only
	// stamps lifecycle transitions for operators. nil leaves
	// timestamps empty.
	Now func() time.Time
}

// Server is the politewifid daemon core. It implements http.Handler;
// cmd/politewifid wraps it in an http.Server.
type Server struct {
	cfg  Config
	pool *Pool
	mux  *http.ServeMux

	mu      sync.Mutex
	jobs    map[string]*Job
	order   []*Job
	nextID  int
	closing bool

	queue      chan *Job
	schedulers sync.WaitGroup
}

// New starts the scheduler and pool and returns the ready daemon.
// Call Shutdown to stop it.
func New(cfg Config) *Server {
	if cfg.PoolWorkers <= 0 {
		cfg.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	s := &Server{
		cfg:   cfg,
		pool:  NewPool(cfg.PoolWorkers),
		jobs:  make(map[string]*Job),
		queue: make(chan *Job, cfg.QueueDepth),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.HandleFunc("POST /api/v1/jobs/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	for i := 0; i < cfg.MaxActive; i++ {
		s.schedulers.Add(1)
		go s.schedule()
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) now() time.Time {
	if s.cfg.Now == nil {
		return time.Time{}
	}
	return s.cfg.Now()
}

// schedule is one active-job slot: it drains the FIFO queue until
// Shutdown closes it. MaxActive slots run in parallel, so at most
// MaxActive jobs multiplex the pool at once and queued jobs start in
// submission order.
func (s *Server) schedule() {
	defer s.schedulers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job (or one resumed leg of it) to completion or
// cancellation. It is the only writer of job results.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	cancel := j.cancel
	prev := j.result
	j.state = StateRunning
	j.started = s.now()
	j.mu.Unlock()

	// The spec was validated at submission; a failure here would mean
	// the spec mutated, which nothing does.
	cfg, err := j.Spec.WorldConfig()
	if err != nil {
		panic(fmt.Sprintf("serve: job %s spec invalidated after admission: %v", j.ID, err))
	}
	cfg.Cancel = cancel
	cfg.Submit = s.pool.Submit

	switch j.Spec.Kind {
	case jobspec.KindLossSweep:
		// Sweeps render a table per loss rate; no flight recorder (the
		// fold invariants hold per drive, not across rates) and no
		// cross-resume state — a cancelled sweep reports the rates it
		// completed.
		sw := experiments.LossSweep(cfg, j.Spec.Rates)
		j.mu.Lock()
		j.sweep = sw
		if sw.Cancelled {
			j.state = StateCancelled
		} else {
			j.state = StateDone
		}
		j.finished = s.now()
		j.mu.Unlock()

	default: // drive
		if prev != nil {
			// A resumed drive continues the tape: drop the trailer line
			// so the next record lands where the cancelled run stopped,
			// and prime the run so its records carry the right running
			// totals.
			j.buf.trimLastLine()
			j.buf.reopen()
			cfg.StartStop = prev.StopsDone
			cfg.ResumeTotals = prev.StreamTotals()
		}
		cfg.Metrics = j.metrics
		cfg.Stream = stream.NewWriter(j.buf)
		res := world.Run(cfg)
		j.mu.Lock()
		if prev != nil {
			prev.Merge(res)
		} else {
			j.result = res
		}
		if j.result.Cancelled {
			j.state = StateCancelled
		} else {
			j.state = StateDone
		}
		j.finished = s.now()
		j.mu.Unlock()
		j.buf.finish()
	}
}

// Shutdown stops the daemon: refuses new submissions, cancels every
// job cooperatively, waits for active jobs to drain (each finishes
// within the stops it has in flight), then stops the pool. It returns
// an error if the drain outlives the context; the scheduler keeps
// draining in the background regardless.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closing {
		s.closing = true
		close(s.queue)
	}
	all := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	for _, j := range all {
		j.requestCancel()
	}
	done := make(chan struct{})
	go func() {
		s.schedulers.Wait()
		s.pool.Close()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown still draining jobs")
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfterSeconds turns a queue backlog into a Retry-After hint.
// The backlog is sampled with len() after the failed send, so a
// concurrent drain can race it down to zero — and "Retry-After: 0"
// tells a well-behaved client to hammer the daemon immediately. Clamp
// to at least one second.
func retryAfterSeconds(backlog int) int {
	if backlog < 1 {
		return 1
	}
	return backlog
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := jobspec.Decode(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "daemon is shutting down")
		return
	}
	j := newJob(fmt.Sprintf("job-%d", s.nextID+1), spec, s.now())
	select {
	case s.queue <- j:
	default:
		// Backpressure: the FIFO is full. The hint scales with the
		// backlog — jobs ahead of the caller must drain first.
		backlog := len(s.queue)
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(backlog)))
		writeErr(w, http.StatusTooManyRequests, "job queue full (%d waiting); retry later", backlog)
		return
	}
	s.nextID++
	s.jobs[j.ID] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	w.Header().Set("Location", "/api/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusCreated, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	all := append([]*Job(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(all))
	for _, j := range all {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// job resolves {id}; on miss it writes 404 and returns nil.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, "no job %q", id)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if j.Spec.Kind != jobspec.KindDrive {
		writeErr(w, http.StatusConflict, "job %s: only drive jobs resume (a sweep's points are independent drives)", j.ID)
		return
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		writeErr(w, http.StatusServiceUnavailable, "daemon is shutting down")
		return
	}
	j.mu.Lock()
	if j.state != StateCancelled {
		st := j.state
		j.mu.Unlock()
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, "job %s is %s; only cancelled jobs resume", j.ID, st)
		return
	}
	// Arm a fresh cancel signal for the resumed leg and requeue. The
	// tape is trimmed by the scheduler right before the leg runs.
	j.cancel = make(chan struct{})
	j.cancelOnce = new(sync.Once)
	j.state = StateQueued
	select {
	case s.queue <- j:
		j.mu.Unlock()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, j.status())
	default:
		j.state = StateCancelled
		backlog := len(s.queue)
		j.mu.Unlock()
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(backlog)))
		writeErr(w, http.StatusTooManyRequests, "job queue full (%d waiting); retry later", backlog)
	}
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	if j.buf == nil {
		writeErr(w, http.StatusConflict, "job %s is a %s; only drive jobs stream", j.ID, j.Spec.Kind)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	var flush func()
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	// Replay the tape from the start, then tail live until the job
	// finishes or the client hangs up. Either way the job itself is
	// untouched — the tape is append-only and the drive never sees its
	// readers.
	_ = j.buf.streamTo(r.Context(), w, flush)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	text, err := j.render()
	if err != nil {
		writeErr(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, text)
}
