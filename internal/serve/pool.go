package serve

import "sync"

// Pool is the daemon's one global stop-level executor: a fixed set of
// workers draining a FIFO task queue. Every active job's world.Run
// feeds its per-stop tasks here (world.Config.Submit), so total
// simulation concurrency is bounded by the pool size no matter how
// many jobs are active — jobs multiplex, they do not multiply.
//
// FIFO start order is the contract world.Run's Submit path depends
// on: within one job, stop i's task is submitted before stop i+1's,
// so on cancellation the set of simulated stops is a contiguous
// prefix. Interleaving between jobs is irrelevant — per-stop RNGs are
// pre-forked and shards merge in stop order, so a shared pool produces
// byte-identical output to a private one.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	wg     sync.WaitGroup
}

// NewPool starts a pool with n workers (n < 1 is clamped to 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			// Closed and drained.
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue[0] = nil
		p.queue = p.queue[1:]
		p.mu.Unlock()
		task()
	}
}

// Submit enqueues a task. Tasks start in submission order. After
// Close, the task runs synchronously on the caller's goroutine — a
// job draining during shutdown must still complete its outstanding
// WaitGroup work, it just stops being concurrent.
func (p *Pool) Submit(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		task()
		return
	}
	p.queue = append(p.queue, task)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close drains the queue and stops the workers. It blocks until every
// already-submitted task has run.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}
