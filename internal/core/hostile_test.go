package core

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/faults"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/rt"
	"politewifi/internal/telemetry"
)

// TestConcurrentScannerHoggedChannelInconclusive pins the scanner's
// own transmitter at 100% duty and checks the regression the busy-park
// cap exists for: the injector used to `attempt--; continue` forever
// on a channel that never frees. Now it must terminate within the
// park budget and write the target off as inconclusive — not silent,
// because no probe ever flew. Run with -race: the hog, the drive and
// the workers all interleave.
func TestConcurrentScannerHoggedChannelInconclusive(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(31)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	attacker := NewAttacker(m, radio.Position{}, phy.Band2GHz, 6, DefaultFakeMAC)
	bridge := rt.NewBridge(sched)

	// Hog: back-to-back transmissions with zero gap. Each chain link
	// re-transmits at the exact instant the previous frame ends
	// (RunUntil is deadline-inclusive, so the link fires inside the
	// drive quantum), which keeps Transmitting() true at every bridge
	// window the injector could use.
	filler := make([]byte, 700)
	var hog func()
	hog = func() {
		end, err := attacker.Radio.Transmit(filler, phy.Rate6)
		if err != nil {
			sched.After(eventsim.Microsecond, hog)
			return
		}
		sched.Schedule(end, hog)
	}
	bridge.Do(hog)

	reg := telemetry.NewRegistry(sched.ObservedNow)
	cs := NewConcurrentScanner(attacker, bridge)
	cs.SetMetrics(reg)
	target := dot11.MustMAC("ec:fa:bc:00:00:99")
	cs.SeedTargets(target)

	tally := cs.Run(2 * eventsim.Second) // termination IS the assertion

	if tally.Total != 1 || tally.TotalResponded != 0 {
		t.Fatalf("tally = %+v, want 1 discovered / 0 responded", tally)
	}
	if tally.Inconclusive != 1 {
		t.Fatalf("tally = %+v, want the hogged-out target inconclusive", tally)
	}
	for _, d := range cs.Devices() {
		if d.Verdict != VerdictInconclusive {
			t.Fatalf("device %s verdict = %s, want inconclusive", d.MAC, d.Verdict)
		}
		if d.Probes != 0 {
			t.Fatalf("device %s got %d probes through a 100%% busy transmitter", d.MAC, d.Probes)
		}
	}
	rep := reg.Snapshot()
	if c := rep.Counter("pipeline.busy_parks"); c == nil || c.Value == 0 {
		t.Fatalf("pipeline.busy_parks = %+v, want > 0", c)
	}
	if c := rep.Counter("pipeline.verdicts.inconclusive"); c == nil || c.Value != 1 {
		t.Fatalf("pipeline.verdicts.inconclusive = %+v, want 1", c)
	}
}

// TestConcurrentScannerACKLossInconclusive runs the pipeline against a
// live neighbourhood whose every ACK/CTS is eaten by the channel. The
// victims answer — their responses just never survive to the capture
// radio — so the honest verdict is inconclusive (a corrupted frame in
// the attribution window), never silent-by-default. Run with -race.
func TestConcurrentScannerACKLossInconclusive(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(19)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	inj := faults.New(eventsim.NewRNG(7), faults.Config{ACKLoss: 1})
	m.SetFaultInjector(inj)

	for i := 0; i < 2; i++ {
		apMAC := dot11.MustMAC("f2:6e:0b:00:0" + string(rune('0'+i)) + ":01")
		clMAC := dot11.MustMAC("ec:fa:bc:00:0" + string(rune('0'+i)) + ":02")
		pos := radio.Position{X: float64(i) * 20}
		mac.New(m, rng.Fork(), mac.Config{
			Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
			SSID: "h", Position: pos, Band: phy.Band2GHz, Channel: 6,
		})
		cl := mac.New(m, rng.Fork(), mac.Config{
			Name: "cl", Addr: clMAC, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
			SSID: "h", Position: radio.Position{X: pos.X + 3}, Band: phy.Band2GHz, Channel: 6,
		})
		cl.Associate(apMAC, nil)
		sched.Every(150*eventsim.Millisecond, func() {
			if cl.Associated() {
				cl.SendData(apMAC, []byte("chatter"))
			}
		})
	}
	attacker := NewAttacker(m, radio.Position{X: 10, Y: 10}, phy.Band2GHz, 6, DefaultFakeMAC)
	bridge := rt.NewBridge(sched)
	cs := NewConcurrentScanner(attacker, bridge)

	tally := cs.Run(4 * eventsim.Second) // termination IS the assertion

	if tally.Total < 2 {
		t.Fatalf("discovered %d devices, want at least the 2 APs/clients", tally.Total)
	}
	if tally.TotalResponded != 0 {
		t.Fatalf("tally = %+v: responses attributed through 100%% ACK loss", tally)
	}
	if tally.Inconclusive < 1 {
		t.Fatalf("tally = %+v, want lossy targets marked inconclusive", tally)
	}
	if inj.ACKDrops == 0 {
		t.Fatal("the injector never dropped an ACK — the fault path was not exercised")
	}
}
