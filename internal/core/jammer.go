package core

import (
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
)

// VirtualJammer is an extension threat enabled by the same property
// that makes Polite WiFi unpreventable: control frames cannot be
// protected, so anyone can reserve the channel. The jammer repeats
// maximum-duration fake RTS frames; every honest station honours the
// Duration field (virtual carrier sense) and defers its own
// transmissions, collapsing goodput — while, tellingly, still
// acknowledging the attacker's fake frames, since SIFS responses
// bypass the NAV.
type VirtualJammer struct {
	attacker *Attacker
	// Target is the RA written into the RTS frames. It does not need
	// to exist: the reservation works on every overhearer.
	Target dot11.MAC
	// DurationUS is the Duration value per RTS (max 32767).
	DurationUS uint16

	ticker *eventsim.Ticker
	Sent   uint64
}

// NewVirtualJammer creates a jammer on the attacker radio.
func NewVirtualJammer(a *Attacker) *VirtualJammer {
	return &VirtualJammer{
		attacker:   a,
		Target:     dot11.MustMAC("00:00:5e:00:53:ff"), // nonexistent
		DurationUS: 32767,
	}
}

// Start repeats the reservation so the NAV never expires: one RTS per
// period, where the period is slightly below the advertised duration.
func (j *VirtualJammer) Start() {
	period := eventsim.Time(j.DurationUS) * eventsim.Microsecond * 9 / 10
	fire := func() {
		rts := &dot11.RTS{RA: j.Target, TA: j.attacker.MAC, Duration: j.DurationUS}
		if _, err := j.attacker.Inject(rts); err == nil {
			j.Sent++
		}
	}
	fire()
	j.ticker = j.attacker.sched.Every(period, fire)
}

// Stop ends the attack; reservations already announced expire on
// their own.
func (j *VirtualJammer) Stop() {
	if j.ticker != nil {
		j.ticker.Stop()
		j.ticker = nil
	}
}
