package core

import (
	"bytes"
	"sort"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// DeviceKind classifies a discovered device.
type DeviceKind int

// Device kinds.
const (
	KindClient DeviceKind = iota
	KindAP
)

// String implements fmt.Stringer.
func (k DeviceKind) String() string {
	if k == KindAP {
		return "AP"
	}
	return "client"
}

// Device is one entry in the scanner's target list.
type Device struct {
	MAC        dot11.MAC
	Kind       DeviceKind
	SSID       string   // for APs
	Band       phy.Band // band the device was heard on
	Channel    int      // channel the device was heard on
	Discovered eventsim.Time
	RSSIDBm    float64
	Probes     int
	Acks       int
	Responded  bool
	// Lossy counts probes whose attribution window contained a
	// corrupted reception; Contended counts probes injected while CCA
	// sensed the channel busy. Either taints a negative verdict.
	Lossy     int
	Contended int
	// Verdict is the three-state outcome, assigned by the scanner when
	// probing concludes (VerdictPending until then).
	Verdict Verdict
	// ExchangeID is the trace exchange linking this device's probes,
	// responses, retries and verdict into one causal tree (0 when
	// tracing is off or the device was never probed).
	ExchangeID uint64
	// FirstProbe is when the device's first probe ended (its exchange
	// began); zero until probed.
	FirstProbe eventsim.Time
}

// Scanner implements the paper's §3 wardriving program. The original
// is a three-OS-thread Scapy program; here the three workers are
// cooperatively scheduled on the simulation event loop with the same
// queue structure (documented substitution — OS threads would break
// determinism against a virtual clock):
//
//	discovery worker — sniffs all traffic, adds unseen MACs to the
//	                   target list;
//	injector worker  — round-robins fake null frames over targets
//	                   that still need probes;
//	verifier worker  — attributes ACKs back to probes by SIFS timing
//	                   and marks devices as responders.
type Scanner struct {
	attacker *Attacker

	// ProbesPerDevice is how many fake frames each target gets.
	ProbesPerDevice int
	// ProbeInterval is the injector worker's cadence.
	ProbeInterval eventsim.Time
	// ActiveScanInterval, when positive, makes the discovery worker
	// transmit broadcast probe requests so APs reveal themselves
	// faster than their beacon cadence (standard active wardriving).
	ActiveScanInterval eventsim.Time

	devices map[dot11.MAC]*Device
	queue   []dot11.MAC // devices still owed probes

	lastTarget dot11.MAC
	lastEnd    eventsim.Time
	awaiting   bool
	// lastContended: the in-flight probe was injected while CCA sensed
	// the channel busy. lastCorrupt: a corrupted reception landed after
	// the in-flight probe ended. Both taint the probe's timeout.
	lastContended bool
	lastCorrupt   bool

	ticker       *eventsim.Ticker
	activeTicker *eventsim.Ticker

	finalized bool

	metrics PipelineMetrics
}

// NewScanner builds a scanner around an attacker radio and installs
// the discovery and verifier workers.
func NewScanner(a *Attacker) *Scanner {
	s := &Scanner{
		attacker:        a,
		ProbesPerDevice: 3,
		ProbeInterval:   2 * eventsim.Millisecond,
		devices:         make(map[dot11.MAC]*Device),
	}
	a.OnFrame(s.onFrame) // discovery + verification
	a.OnCorrupt(s.onCorrupt)
	return s
}

// Start launches the injector worker (and the active scanner when
// configured).
func (s *Scanner) Start() {
	if s.ticker != nil {
		return
	}
	s.ticker = s.attacker.sched.Every(s.ProbeInterval, s.injectorStep)
	if s.ActiveScanInterval > 0 {
		s.activeTicker = s.attacker.sched.Every(s.ActiveScanInterval, s.sendProbeRequest)
	}
}

// sendProbeRequest broadcasts a wildcard probe request.
func (s *Scanner) sendProbeRequest() {
	if s.attacker.Radio.Transmitting() {
		return
	}
	s.attacker.Inject(&dot11.ProbeReq{
		Header: dot11.Header{
			Addr1: dot11.Broadcast, Addr2: s.attacker.MAC, Addr3: dot11.Broadcast,
		},
		IEs: []dot11.IE{dot11.SSIDElement("")},
	})
}

// Stop halts the workers and closes every device's verdict.
func (s *Scanner) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
	if s.activeTicker != nil {
		s.activeTicker.Stop()
		s.activeTicker = nil
	}
	s.finalizeVerdicts()
}

// finalizeVerdicts assigns the three-state outcome to every device. A
// responder is VerdictResponded no matter how noisy the road there
// was. A non-responder is VerdictSilent only if its full probe budget
// was spent with no taint; lossy or contended probes — or a dwell
// that ended before the budget was spent — yield VerdictInconclusive.
func (s *Scanner) finalizeVerdicts() {
	if s.finalized {
		return
	}
	s.finalized = true
	// Iterate in discovery order, not map order: the verdict instants
	// recorded here land at one timestamp, and their recording order is
	// their tie-break order in every rendered trace.
	tr := s.attacker.Radio.Medium().Tracer()
	now := s.attacker.sched.Now()
	for _, d := range s.Devices() {
		switch {
		case d.Responded:
			d.Verdict = VerdictResponded
		case d.Lossy == 0 && d.Contended == 0 && d.Probes >= s.ProbesPerDevice:
			d.Verdict = VerdictSilent
			s.metrics.VerdictSilent.Inc()
		default:
			d.Verdict = VerdictInconclusive
			s.metrics.VerdictInconclusive.Inc()
		}
		if d.ExchangeID != 0 {
			tr.Instant(s.attacker.Radio.Name, "verdict "+d.Verdict.String(), now, 0, d.ExchangeID,
				map[string]string{"target": d.MAC.String()})
		}
	}
}

// onFrame is the discovery worker plus the verifier worker.
func (s *Scanner) onFrame(f dot11.Frame, rx radio.Reception) {
	s.verify(f, rx)
	s.discover(f, rx)
}

// frameSSID extracts the SSID advertised by a management frame (""
// for frames that carry none). Split out so the discovery hot path
// only pays the []byte→string conversion when it will keep the
// result — not once per received beacon.
func frameSSID(f dot11.Frame) string {
	switch ff := f.(type) {
	case *dot11.Beacon:
		return ff.SSID()
	case *dot11.ProbeResp:
		ssid, _ := dot11.FindSSID(ff.IEs)
		return ssid
	}
	return ""
}

// discover adds unseen transmitter addresses to the target list.
// Beacon and probe-response senders are APs; other unicast
// transmitters are clients.
func (s *Scanner) discover(f dot11.Frame, rx radio.Reception) {
	ta := f.TransmitterAddress()
	if ta == dot11.ZeroMAC || ta == s.attacker.MAC || !ta.IsUnicast() {
		return
	}
	kind := KindClient
	switch ff := f.(type) {
	case *dot11.Beacon:
		kind = KindAP
	case *dot11.ProbeResp:
		kind = KindAP
	case *dot11.Data:
		if ff.FC.FromDS {
			kind = KindAP
		}
	case *dot11.Ack, *dot11.CTS:
		// No TA on these; unreachable, but keep the switch exhaustive.
		return
	}
	d, seen := s.devices[ta]
	if !seen {
		d = &Device{
			MAC:        ta,
			Kind:       kind,
			SSID:       frameSSID(f),
			Band:       s.attacker.Radio.Band(),
			Channel:    s.attacker.Radio.Channel(),
			Discovered: s.attacker.sched.Now(),
			RSSIDBm:    rx.RSSIDBm,
		}
		s.devices[ta] = d
		s.queue = append(s.queue, ta)
		s.metrics.Discovered.Inc()
		return
	}
	// Upgrade classification if we later see AP-proof, and fill the
	// SSID once — SSIDs are static in the simulation, so re-parsing
	// every subsequent beacon would only churn identical strings.
	if kind == KindAP && d.Kind != KindAP {
		d.Kind = KindAP
	}
	if d.SSID == "" && kind == KindAP {
		d.SSID = frameSSID(f)
	}
}

// injectorStep sends the next fake frame to the first queued target
// audible on the attacker's current channel. Targets discovered on
// other channels stay queued until the radio hops back.
func (s *Scanner) injectorStep() {
	band := s.attacker.Radio.Band()
	ch := s.attacker.Radio.Channel()
	for i := 0; i < len(s.queue); i++ {
		mac := s.queue[i]
		d := s.devices[mac]
		if d.Probes >= s.ProbesPerDevice || d.Responded {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			i--
			continue
		}
		if d.Band != band || d.Channel != ch {
			continue
		}
		if s.attacker.Radio.Transmitting() {
			return // try again next tick
		}
		contended := s.attacker.Radio.CCABusy()
		if d.ExchangeID == 0 {
			d.ExchangeID = s.attacker.Radio.Medium().Tracer().NextExchange()
		}
		s.attacker.Radio.SetNextTxExchange(d.ExchangeID)
		end, err := s.attacker.InjectNull(mac)
		if err != nil {
			return
		}
		if d.Probes == 0 {
			d.FirstProbe = end
		}
		d.Probes++
		s.metrics.ProbesInjected.Inc()
		s.lastTarget = mac
		s.lastEnd = end
		s.awaiting = true
		s.lastContended = contended
		s.lastCorrupt = false
		window := s.attacker.Radio.Band().SIFS() +
			phy.Airtime(phy.ControlRate(s.attacker.Rate), 14) + attributionWindow
		ex := d.ExchangeID
		s.attacker.sched.Schedule(end+window, func() {
			if s.awaiting {
				s.awaiting = false
				s.metrics.VerdictTimeout.Inc()
				s.metrics.VerdictLatencyUS.ObserveTime(window)
				if td, ok := s.devices[s.lastTarget]; ok {
					if s.lastCorrupt {
						td.Lossy++
					}
					if s.lastContended {
						td.Contended++
					}
				}
				s.attacker.Radio.Medium().Tracer().Instant(s.attacker.Radio.Name,
					"probe timeout", s.attacker.sched.Now(), 0, ex, nil)
			}
		})
		return
	}
}

// verify attributes SIFS-timed ACKs to the last probe.
func (s *Scanner) verify(f dot11.Frame, rx radio.Reception) {
	if !s.awaiting {
		return
	}
	ack, ok := f.(*dot11.Ack)
	if !ok || ack.RA != s.attacker.MAC {
		return
	}
	expected := s.lastEnd + s.attacker.Radio.Band().SIFS()
	if rx.Start < expected-eventsim.Microsecond || rx.Start > expected+attributionWindow {
		return
	}
	s.awaiting = false
	s.metrics.VerdictAck.Inc()
	s.metrics.VerdictLatencyUS.ObserveTime(rx.Start - s.lastEnd)
	if d, ok := s.devices[s.lastTarget]; ok {
		d.Acks++
		if !d.Responded {
			d.Responded = true
			// End-to-end exchange latency: first probe out to the first
			// verified response back.
			s.metrics.ExchangeLatencyUS.ObserveTime(rx.Start - d.FirstProbe)
		}
		s.attacker.Radio.Medium().Tracer().Instant(s.attacker.Radio.Name,
			"probe verified", rx.Start, 0, d.ExchangeID, map[string]string{
				"gap": (rx.Start - s.lastEnd).String(),
			})
	}
}

// onCorrupt is the verifier's loss detector: a reception that failed
// the FCS check while a probe's attribution window was open means
// something answered but arrived mangled — the timeout that follows
// is lossy, not silent.
func (s *Scanner) onCorrupt(rx radio.Reception) {
	if s.awaiting && rx.Start > s.lastEnd {
		s.lastCorrupt = true
	}
}

// Devices returns all discovered devices sorted by discovery time.
func (s *Scanner) Devices() []*Device {
	out := make([]*Device, 0, len(s.devices))
	for _, d := range s.devices {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Discovered != out[j].Discovered {
			return out[i].Discovered < out[j].Discovered
		}
		// Byte order equals the order of the fixed-width hex rendering,
		// without the two string allocations per comparison.
		return bytes.Compare(out[i].MAC[:], out[j].MAC[:]) < 0
	})
	return out
}

// Pending reports how many discovered devices still owe probes.
func (s *Scanner) Pending() int {
	n := 0
	for _, d := range s.devices {
		if !d.Responded && d.Probes < s.ProbesPerDevice {
			n++
		}
	}
	return n
}

// Tally summarises the scan.
type Tally struct {
	Clients, APs               int
	ClientsResponded, APsQuiet int
	APsResponded               int
	Total, TotalResponded      int
	// Inconclusive counts devices whose verdict could not separate
	// "does not respond" from "channel ate the evidence".
	Inconclusive int
}

// Tally computes the scan summary.
func (s *Scanner) Tally() Tally {
	var t Tally
	for _, d := range s.devices {
		t.Total++
		if d.Responded {
			t.TotalResponded++
		}
		if d.Verdict == VerdictInconclusive {
			t.Inconclusive++
		}
		switch d.Kind {
		case KindAP:
			t.APs++
			if d.Responded {
				t.APsResponded++
			} else {
				t.APsQuiet++
			}
		default:
			t.Clients++
			if d.Responded {
				t.ClientsResponded++
			}
		}
	}
	return t
}
