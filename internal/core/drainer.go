package core

import (
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
)

// Drainer executes the §4.2 battery-drain attack: a steady stream of
// fake frames at a chosen rate pins a power-saving victim's radio
// awake and forces it to transmit an ACK per frame. Couple it with a
// power.Meter on the victim to reproduce Figure 6.
type Drainer struct {
	attacker *Attacker
	target   dot11.MAC

	RateHz float64

	ticker  *eventsim.Ticker
	Sent    uint64
	stopped bool
}

// NewDrainer aims a drainer at the target.
func NewDrainer(a *Attacker, target dot11.MAC) *Drainer {
	return &Drainer{attacker: a, target: target}
}

// Start begins injecting at rateHz fake frames per second. A rate of
// zero is a no-op (the baseline measurement).
func (d *Drainer) Start(rateHz float64) {
	d.Stop()
	d.RateHz = rateHz
	d.stopped = false
	if rateHz <= 0 {
		return
	}
	interval := eventsim.Time(float64(eventsim.Second) / rateHz)
	if interval < eventsim.Microsecond {
		interval = eventsim.Microsecond
	}
	d.ticker = d.attacker.sched.Every(interval, func() { d.try(3) })
}

// try injects one fake frame, deferring briefly (like a real
// injector's hardware carrier sense) when the medium is busy so the
// attack frame does not collide with a beacon and silently unpin the
// victim.
func (d *Drainer) try(retries int) {
	if d.stopped {
		return
	}
	if d.attacker.Radio.CCABusy() || d.attacker.Radio.Transmitting() {
		if retries > 0 {
			d.attacker.sched.After(300*eventsim.Microsecond, func() { d.try(retries - 1) })
		}
		return
	}
	if _, err := d.attacker.InjectNull(d.target); err == nil {
		d.Sent++
	}
}

// Stop halts the attack.
func (d *Drainer) Stop() {
	d.stopped = true
	if d.ticker != nil {
		d.ticker.Stop()
		d.ticker = nil
	}
}

// RunFor runs the attack for the given duration of simulated time and
// stops. The scheduler is driven internally.
func (d *Drainer) RunFor(rateHz float64, duration eventsim.Time) {
	d.Start(rateHz)
	d.attacker.sched.RunFor(duration)
	d.Stop()
}
