package core

import (
	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// CSISensor implements the §4.1/§4.3 sensing attack/opportunity: it
// injects fake frames at a target rate and extracts one CSI sample
// per ACK the victim is compelled to transmit. The victim needs no
// software modification, no shared network, not even an association
// to any AP.
//
// The radio simulator delivers the ACK; the physical channel the ACK
// traversed is modelled by a csi.Scene driven by a csi.Timeline of
// human activity. One CSI sample is taken per *received* ACK, so the
// series inherits the true sampling process (lost ACKs → missing
// samples), exactly like the ESP32 receiver in the paper.
type CSISensor struct {
	attacker *Attacker
	target   dot11.MAC

	Scene    *csi.Scene
	Timeline *csi.Timeline

	Series csi.Series

	t0       eventsim.Time
	lastEnd  eventsim.Time
	awaiting bool
	ticker   *eventsim.Ticker
	Sent     uint64
}

// NewCSISensor aims a sensing attacker at the target device through
// the given scene/timeline.
func NewCSISensor(a *Attacker, target dot11.MAC, scene *csi.Scene, tl *csi.Timeline) *CSISensor {
	s := &CSISensor{attacker: a, target: target, Scene: scene, Timeline: tl}
	a.OnFrame(s.onFrame)
	return s
}

// Start injects at rateHz (the paper uses 150 frames/s) and samples
// CSI from each attributed ACK. Time zero of the activity timeline is
// the moment Start is called.
func (s *CSISensor) Start(rateHz float64) {
	s.t0 = s.attacker.sched.Now()
	interval := eventsim.Time(float64(eventsim.Second) / rateHz)
	s.ticker = s.attacker.sched.Every(interval, func() { s.try(3) })
}

// try injects one probe, deferring on a busy medium like a real
// injector's carrier sense.
func (s *CSISensor) try(retries int) {
	if s.attacker.Radio.CCABusy() || s.attacker.Radio.Transmitting() {
		if retries > 0 {
			s.attacker.sched.After(300*eventsim.Microsecond, func() { s.try(retries - 1) })
		}
		return
	}
	end, err := s.attacker.InjectNull(s.target)
	if err != nil {
		return
	}
	s.Sent++
	s.lastEnd = end
	s.awaiting = true
	window := s.attacker.Radio.Band().SIFS() +
		phy.Airtime(phy.ControlRate(s.attacker.Rate), 14) + attributionWindow
	s.attacker.sched.Schedule(end+window, func() { s.awaiting = false })
}

// Stop halts injection.
func (s *CSISensor) Stop() {
	if s.ticker != nil {
		s.ticker.Stop()
		s.ticker = nil
	}
}

// RunFor performs a complete capture of the given duration.
func (s *CSISensor) RunFor(rateHz float64, duration eventsim.Time) csi.Series {
	s.Start(rateHz)
	s.attacker.sched.RunFor(duration)
	s.Stop()
	return s.Series
}

func (s *CSISensor) onFrame(f dot11.Frame, rx radio.Reception) {
	if !s.awaiting {
		return
	}
	ack, ok := f.(*dot11.Ack)
	if !ok || ack.RA != s.attacker.MAC {
		return
	}
	expected := s.lastEnd + s.attacker.Radio.Band().SIFS()
	if rx.Start < expected-eventsim.Microsecond || rx.Start > expected+attributionWindow {
		return
	}
	s.awaiting = false
	t := (s.attacker.sched.Now() - s.t0).Seconds()
	s.Series = append(s.Series, s.Scene.MeasureAt(s.Timeline, t))
}

// LossRate reports the fraction of injected frames that produced no
// CSI sample (victim asleep, collision, or channel loss).
func (s *CSISensor) LossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return 1 - float64(len(s.Series))/float64(s.Sent)
}
