package core

import (
	"sort"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// ProbeMode selects the fake frame type used to solicit a response.
type ProbeMode int

// Probe modes.
const (
	// ProbeNull injects fake null data frames and counts ACKs (the
	// paper's default experiment).
	ProbeNull ProbeMode = iota
	// ProbeRTS injects fake RTS frames and counts CTS responses.
	ProbeRTS
)

// String implements fmt.Stringer.
func (m ProbeMode) String() string {
	if m == ProbeRTS {
		return "rts/cts"
	}
	return "null/ack"
}

// ProbeResult reports the outcome of probing one target.
type ProbeResult struct {
	Target    dot11.MAC
	Mode      ProbeMode
	Sent      int
	Responses int
	// Responded is true if at least one response attributable to this
	// probe arrived (the Polite WiFi verdict for the device).
	Responded bool
	// BusyParks counts attempts refunded because the transmitter was
	// busy; Lossy counts attribution windows that saw a corrupted
	// reception. Either taints a negative verdict.
	BusyParks int
	Lossy     int
	// Verdict is the three-state outcome: Responded, Silent (clean
	// budget spent unanswered), or Inconclusive (nothing clean sent,
	// or losses landed inside attribution windows).
	Verdict Verdict
	// FirstGap is the observed gap between the end of the first
	// answered probe and the start of its response — one SIFS plus
	// the round-trip propagation, when the behaviour is present.
	FirstGap eventsim.Time
	// Gaps collects the frame-end→response-start gap of every
	// answered probe; time-of-flight ranging feeds on these.
	Gaps []eventsim.Time
}

// ResponseRate reports the fraction of probes answered.
func (r ProbeResult) ResponseRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Responses) / float64(r.Sent)
}

// Prober sends a burst of fake frames to one target and attributes
// responses by timing, exactly as the paper's verifier thread does:
// an ACK/CTS addressed to the spoofed MAC that starts ~SIFS after one
// of our frames ended belongs to that frame.
type Prober struct {
	attacker *Attacker
	mode     ProbeMode

	// MaxBusyRetries caps how many busy-transmitter parks a run will
	// absorb before attempts stop being refunded. Without the cap a
	// saturated channel would keep the run alive forever.
	MaxBusyRetries int

	res         ProbeResult
	lastEnd     eventsim.Time
	awaiting    bool
	onComplete  func(ProbeResult)
	remaining   int
	interval    eventsim.Time
	stopped     bool
	busyRetries int
	exchange    uint64 // trace exchange ID for the current run; 0 untraced
}

// attributionWindow is the slack around the expected SIFS response
// start (propagation plus scheduling jitter).
const attributionWindow = 25 * eventsim.Microsecond

// NewProber creates a prober on the attacker.
func NewProber(a *Attacker, mode ProbeMode) *Prober {
	p := &Prober{attacker: a, mode: mode, MaxBusyRetries: 8}
	a.OnFrame(p.onFrame)
	a.OnCorrupt(p.onCorrupt)
	return p
}

// Run probes the target n times at the given interval and calls done
// with the result. The scheduler must be driven by the caller.
func (p *Prober) Run(target dot11.MAC, n int, interval eventsim.Time, done func(ProbeResult)) {
	p.res = ProbeResult{Target: target, Mode: p.mode}
	p.remaining = n
	p.interval = interval
	p.onComplete = done
	p.stopped = false
	p.busyRetries = 0
	p.exchange = p.attacker.Radio.Medium().Tracer().NextExchange()
	p.step()
}

// Stop aborts an in-flight run (the completion callback still fires).
func (p *Prober) Stop() { p.stopped = true }

func (p *Prober) step() {
	if p.stopped || p.remaining == 0 {
		p.finish()
		return
	}
	p.remaining--
	p.attacker.Radio.SetNextTxExchange(p.exchange)
	var end eventsim.Time
	var err error
	switch p.mode {
	case ProbeRTS:
		end, err = p.attacker.InjectRTS(p.res.Target)
	default:
		end, err = p.attacker.InjectNull(p.res.Target)
	}
	if err != nil && p.busyRetries < p.MaxBusyRetries {
		// Transmitter busy: refund the attempt and back off with
		// exponentially growing, deterministically jittered sim-time
		// delays instead of burning budget at the fixed cadence. Past
		// the cap the attempt is consumed like any other miss, so a
		// permanently hogged radio still terminates.
		p.busyRetries++
		p.remaining++
		p.res.BusyParks++
		p.attacker.sched.After(
			backoffDelay(200*eventsim.Microsecond, 2*eventsim.Millisecond, p.busyRetries, p.res.Target),
			p.step)
		return
	}
	if err == nil {
		p.res.Sent++
		p.lastEnd = end
		p.awaiting = true
		// Close the attribution window after SIFS + response airtime +
		// slack, then move on.
		window := p.attacker.Radio.Band().SIFS() +
			phy.Airtime(phy.ControlRate(p.attacker.Rate), 14) + attributionWindow
		p.attacker.sched.Schedule(end+window, func() {
			if p.awaiting {
				p.awaiting = false
				if tr := p.attacker.Radio.Medium().Tracer(); tr != nil {
					tr.Instant(p.attacker.Radio.Name, "probe timeout", p.attacker.sched.Now(), 0, p.exchange,
						map[string]string{"target": p.res.Target.String()})
				}
			}
		})
	}
	p.attacker.sched.After(p.interval, p.step)
}

func (p *Prober) finish() {
	switch {
	case p.res.Responded:
		p.res.Verdict = VerdictResponded
	case p.res.Sent == 0 || p.res.Lossy > 0:
		p.res.Verdict = VerdictInconclusive
	default:
		p.res.Verdict = VerdictSilent
	}
	if done := p.onComplete; done != nil {
		p.onComplete = nil
		done(p.res)
	}
}

// onCorrupt marks the open attribution window lossy: something
// answered in the response slot but failed the FCS check, so the
// coming timeout is evidence of a hostile channel, not of silence.
func (p *Prober) onCorrupt(rx radio.Reception) {
	if p.awaiting && rx.Start > p.lastEnd {
		p.res.Lossy++
	}
}

// onFrame implements the timing-based response attribution.
func (p *Prober) onFrame(f dot11.Frame, rx radio.Reception) {
	if !p.awaiting {
		return
	}
	expected := p.lastEnd + p.attacker.Radio.Band().SIFS()
	if rx.Start < expected-eventsim.Microsecond || rx.Start > expected+attributionWindow {
		return
	}
	match := false
	switch ff := f.(type) {
	case *dot11.Ack:
		match = p.mode == ProbeNull && ff.RA == p.attacker.MAC
	case *dot11.CTS:
		match = p.mode == ProbeRTS && ff.RA == p.attacker.MAC
	}
	if !match {
		return
	}
	p.awaiting = false
	p.res.Responses++
	gap := rx.Start - p.lastEnd
	p.res.Gaps = append(p.res.Gaps, gap)
	if !p.res.Responded {
		p.res.Responded = true
		p.res.FirstGap = gap
	}
	if tr := p.attacker.Radio.Medium().Tracer(); tr != nil {
		tr.Instant(p.attacker.Radio.Name, "probe verified", rx.Start, 0, p.exchange, map[string]string{
			"target": p.res.Target.String(),
			"gap":    gap.String(),
		})
	}
}

// speedOfLight in m/s, for time-of-flight ranging.
const speedOfLight = 299_792_458.0

// RangeFromGaps implements Wi-Peep-style time-of-flight ranging over
// Polite WiFi: the victim's ACK leaves exactly one SIFS after the
// fake frame arrives, so the observed gap is SIFS + 2·d/c. The SIFS
// is a standard constant, leaving the distance:
//
//	d = (gap − SIFS) · c / 2
//
// The median over a probe burst suppresses scheduling jitter.
func RangeFromGaps(band phy.Band, gaps []eventsim.Time) float64 {
	if len(gaps) == 0 {
		return 0
	}
	sorted := append([]eventsim.Time(nil), gaps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	gap := sorted[len(sorted)/2]
	tof := gap - band.SIFS()
	if tof < 0 {
		return 0
	}
	return tof.Seconds() * speedOfLight / 2
}

// ProbeSync is a convenience that runs the scheduler until the probe
// completes and returns the result.
func ProbeSync(a *Attacker, target dot11.MAC, mode ProbeMode, n int, interval eventsim.Time) ProbeResult {
	var out ProbeResult
	doneAt := eventsim.Time(0)
	p := NewProber(a, mode)
	p.Run(target, n, interval, func(r ProbeResult) {
		out = r
		doneAt = a.sched.Now()
	})
	// Drive until completion (bounded by n·interval plus slack).
	deadline := a.sched.Now() + eventsim.Time(n+2)*interval + 10*eventsim.Millisecond
	for doneAt == 0 && a.sched.Now() < deadline {
		if !a.sched.Step() {
			break
		}
	}
	return out
}
