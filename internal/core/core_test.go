package core

import (
	"strings"
	"testing"

	"politewifi/internal/csi"
	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

var (
	apAddr     = dot11.MustMAC("f2:6e:0b:00:00:01")
	clientAddr = dot11.MustMAC("f2:6e:0b:12:34:56")
)

// world is a single WPA2 home network with an attacker outside it.
type world struct {
	m        *radio.Medium
	sched    *eventsim.Scheduler
	ap       *mac.Station
	client   *mac.Station
	attacker *Attacker
}

func newWorld(t *testing.T) *world {
	t.Helper()
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(11)
	m := radio.NewMedium(sched, rng, radio.Config{
		PathLoss:        radio.LogDistance{Exponent: 2.0},
		CaptureMarginDB: 10,
	})
	w := &world{m: m, sched: sched}
	w.ap = mac.New(m, rng, mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "HomeNet", Passphrase: "secret passphrase",
		Position: radio.Position{X: 0}, Band: phy.Band2GHz, Channel: 6,
	})
	w.client = mac.New(m, rng, mac.Config{
		Name: "client", Addr: clientAddr, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
		SSID: "HomeNet", Passphrase: "secret passphrase",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	ok := false
	w.client.Associate(apAddr, func(v bool) { ok = v })
	sched.RunFor(300 * eventsim.Millisecond)
	if !ok {
		t.Fatal("association failed")
	}
	w.attacker = NewAttacker(m, radio.Position{X: 12}, phy.Band2GHz, 6, DefaultFakeMAC)
	return w
}

func TestProbeNullGetsAck(t *testing.T) {
	w := newWorld(t)
	res := ProbeSync(w.attacker, clientAddr, ProbeNull, 5, 5*eventsim.Millisecond)
	if !res.Responded {
		t.Fatal("victim did not respond — Polite WiFi broken")
	}
	if res.Sent != 5 || res.Responses != 5 {
		t.Fatalf("sent=%d responses=%d, want 5/5", res.Sent, res.Responses)
	}
	if res.ResponseRate() != 1 {
		t.Fatalf("response rate = %v", res.ResponseRate())
	}
	// Gap ≈ SIFS (10 µs) + sub-µs propagation.
	if res.FirstGap < 10*eventsim.Microsecond || res.FirstGap > 12*eventsim.Microsecond {
		t.Fatalf("first gap = %v, want ~SIFS", res.FirstGap)
	}
	if w.attacker.AcksToMe != 5 {
		t.Fatalf("attacker saw %d ACKs", w.attacker.AcksToMe)
	}
}

func TestProbeAbsentDeviceNoResponse(t *testing.T) {
	w := newWorld(t)
	ghost := dot11.MustMAC("00:00:5e:00:53:01")
	res := ProbeSync(w.attacker, ghost, ProbeNull, 3, 5*eventsim.Millisecond)
	if res.Responded || res.Responses != 0 {
		t.Fatalf("ghost responded: %+v", res)
	}
}

func TestProbeRTSGetsCTS(t *testing.T) {
	w := newWorld(t)
	res := ProbeSync(w.attacker, clientAddr, ProbeRTS, 4, 5*eventsim.Millisecond)
	if !res.Responded {
		t.Fatal("no CTS elicited")
	}
	if res.Responses != 4 {
		t.Fatalf("CTS responses = %d, want 4", res.Responses)
	}
	if w.attacker.CTSToMe != 4 {
		t.Fatalf("attacker CTS counter = %d", w.attacker.CTSToMe)
	}
	if res.Mode.String() != "rts/cts" || ProbeNull.String() != "null/ack" {
		t.Fatal("mode strings wrong")
	}
}

func TestProbeAPAlsoResponds(t *testing.T) {
	w := newWorld(t)
	res := ProbeSync(w.attacker, apAddr, ProbeNull, 3, 5*eventsim.Millisecond)
	if !res.Responded || res.Responses != 3 {
		t.Fatalf("AP result: %+v", res)
	}
}

func TestProberStop(t *testing.T) {
	w := newWorld(t)
	p := NewProber(w.attacker, ProbeNull)
	var got *ProbeResult
	p.Run(clientAddr, 100, eventsim.Millisecond, func(r ProbeResult) { got = &r })
	w.sched.RunFor(3 * eventsim.Millisecond)
	p.Stop()
	w.sched.RunFor(10 * eventsim.Millisecond)
	if got == nil {
		t.Fatal("completion callback never fired after Stop")
	}
	if got.Sent >= 100 {
		t.Fatalf("Stop did not abort (sent=%d)", got.Sent)
	}
}

func TestScannerDiscoversAndVerifies(t *testing.T) {
	w := newWorld(t)
	sc := NewScanner(w.attacker)
	sc.Start()
	// The client chats with the AP so the scanner can discover it.
	chat := w.sched.Every(50*eventsim.Millisecond, func() {
		w.client.SendData(apAddr, []byte("background traffic"))
	})
	w.sched.RunFor(2 * eventsim.Second)
	chat.Stop()
	sc.Stop()

	tally := sc.Tally()
	if tally.Total < 2 {
		t.Fatalf("discovered %d devices, want ≥2", tally.Total)
	}
	if tally.TotalResponded != tally.Total {
		t.Fatalf("responded %d of %d — all devices must be polite", tally.TotalResponded, tally.Total)
	}
	if tally.APs < 1 || tally.Clients < 1 {
		t.Fatalf("tally = %+v", tally)
	}
	var foundAP, foundClient bool
	for _, d := range sc.Devices() {
		switch d.MAC {
		case apAddr:
			foundAP = true
			if d.Kind != KindAP {
				t.Fatalf("AP classified as %v", d.Kind)
			}
			if d.SSID != "HomeNet" {
				t.Fatalf("AP SSID = %q", d.SSID)
			}
		case clientAddr:
			foundClient = true
			if d.Kind != KindClient {
				t.Fatalf("client classified as %v", d.Kind)
			}
		}
		if !d.Responded || d.Acks == 0 {
			t.Fatalf("device %v not verified: %+v", d.MAC, d)
		}
	}
	if !foundAP || !foundClient {
		t.Fatalf("missing devices (ap=%v client=%v)", foundAP, foundClient)
	}
	if sc.Pending() != 0 {
		t.Fatalf("pending = %d", sc.Pending())
	}
	if KindAP.String() != "AP" || KindClient.String() != "client" {
		t.Fatal("kind strings")
	}
}

func TestScannerIgnoresOwnFrames(t *testing.T) {
	w := newWorld(t)
	sc := NewScanner(w.attacker)
	sc.Start()
	w.sched.RunFor(500 * eventsim.Millisecond)
	sc.Stop()
	for _, d := range sc.Devices() {
		if d.MAC == w.attacker.MAC {
			t.Fatal("scanner listed its own spoofed MAC")
		}
	}
}

func TestDrainerRate(t *testing.T) {
	w := newWorld(t)
	d := NewDrainer(w.attacker, clientAddr)
	acksBefore := w.client.Stats.AcksSent
	d.RunFor(100, eventsim.Second)
	if d.Sent < 95 || d.Sent > 105 {
		t.Fatalf("sent = %d at 100 fps for 1 s", d.Sent)
	}
	acked := w.client.Stats.AcksSent - acksBefore
	if acked < d.Sent*9/10 {
		t.Fatalf("victim acked %d of %d", acked, d.Sent)
	}
}

func TestDrainerZeroRate(t *testing.T) {
	w := newWorld(t)
	d := NewDrainer(w.attacker, clientAddr)
	d.RunFor(0, 100*eventsim.Millisecond)
	if d.Sent != 0 {
		t.Fatalf("zero-rate drainer sent %d", d.Sent)
	}
}

func TestCSISensorCollects(t *testing.T) {
	w := newWorld(t)
	rng := eventsim.NewRNG(31)
	scene := csi.NewScene(rng.Fork())
	tl := (&csi.Timeline{}).Add(0, 10, csi.Hold(rng.Fork()))
	sensor := NewCSISensor(w.attacker, clientAddr, scene, tl)
	series := sensor.RunFor(150, 2*eventsim.Second)

	want := int(150 * 2)
	if len(series) < want*9/10 {
		t.Fatalf("samples = %d, want ≈%d", len(series), want)
	}
	if sensor.LossRate() > 0.1 {
		t.Fatalf("loss rate = %v", sensor.LossRate())
	}
	// Timestamps advance with the virtual clock.
	if series[10].T <= series[0].T {
		t.Fatal("sample times not increasing")
	}
	// Amplitudes look like a real channel.
	amp := series.Amplitudes(17)
	for _, a := range amp {
		if a <= 0 {
			t.Fatal("nonpositive CSI amplitude")
		}
	}
}

func TestCSISensorHighLossOnDozingVictim(t *testing.T) {
	w := newWorld(t)
	w.client.EnablePowerSave()
	w.sched.RunFor(500 * eventsim.Millisecond)

	rng := eventsim.NewRNG(37)
	scene := csi.NewScene(rng.Fork())
	tl := &csi.Timeline{}
	sensor := NewCSISensor(w.attacker, clientAddr, scene, tl)
	// 2 fps: below the pin-awake threshold, most probes are missed.
	series := sensor.RunFor(2, 5*eventsim.Second)
	if sensor.LossRate() < 0.3 {
		t.Fatalf("loss rate vs dozing victim = %v, want high", sensor.LossRate())
	}
	_ = series
}

func TestFeasibilityStudy(t *testing.T) {
	rows := FeasibilityStudy(500)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeetsSIFS {
			t.Fatalf("%s/%s claims to meet SIFS", r.Band, r.Profile)
		}
		if r.Ratio < 10 {
			t.Fatalf("ratio = %v", r.Ratio)
		}
	}
	out := RenderFeasibility(rows)
	if !strings.Contains(out, "2.4 GHz") || !strings.Contains(out, "false") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAttackerInjectCountsDrops(t *testing.T) {
	w := newWorld(t)
	// Two immediate injections: the second hits a busy transmitter.
	if _, err := w.attacker.InjectNull(clientAddr); err != nil {
		t.Fatal(err)
	}
	if _, err := w.attacker.InjectNull(clientAddr); err == nil {
		t.Fatal("second immediate inject should fail (tx busy)")
	}
	if w.attacker.Injected != 1 || w.attacker.InjectDrops != 1 {
		t.Fatalf("inject stats: %d/%d", w.attacker.Injected, w.attacker.InjectDrops)
	}
}

func TestAttackerSeesDeauths(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(13)
	m := radio.NewMedium(sched, rng, radio.Config{PathLoss: radio.LogDistance{Exponent: 2.0}})
	mac.New(m, rng, mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileQualcommIPQ4019,
		SSID: "HomeNet", Passphrase: "secret passphrase",
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	attacker := NewAttacker(m, radio.Position{X: 8}, phy.Band2GHz, 6, DefaultFakeMAC)
	res := ProbeSync(attacker, apAddr, ProbeNull, 1, eventsim.Millisecond)
	sched.RunFor(100 * eventsim.Millisecond)
	if !res.Responded {
		t.Fatal("deauthing AP must still ACK")
	}
	if attacker.DeauthsForMe == 0 {
		t.Fatal("attacker never saw the deauth burst")
	}
}

func BenchmarkProbe(b *testing.B) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(1)
	m := radio.NewMedium(sched, rng, radio.Config{PathLoss: radio.LogDistance{Exponent: 2.0}})
	mac.New(m, rng, mac.Config{
		Name: "victim", Addr: clientAddr, Role: mac.RoleClient,
		Profile: mac.ProfileGenericClient, SSID: "n",
		Position: radio.Position{X: 5}, Band: phy.Band2GHz, Channel: 6,
	})
	attacker := NewAttacker(m, radio.Position{X: 10}, phy.Band2GHz, 6, DefaultFakeMAC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProbeSync(attacker, clientAddr, ProbeNull, 1, eventsim.Millisecond)
	}
}

func TestRangeFromGaps(t *testing.T) {
	sifs := phy.Band2GHz.SIFS()
	// 10 m round trip = 20 m of flight ≈ 66.7 ns.
	gap := sifs + 67*eventsim.Nanosecond
	got := RangeFromGaps(phy.Band2GHz, []eventsim.Time{gap, gap, gap})
	if got < 9 || got > 11 {
		t.Fatalf("RangeFromGaps = %.2f m, want ~10", got)
	}
	// Median picks the middle observation.
	mid := RangeFromGaps(phy.Band2GHz, []eventsim.Time{sifs, gap, sifs + 10*eventsim.Microsecond})
	if mid < 9 || mid > 11 {
		t.Fatalf("median gap estimate = %.2f m", mid)
	}
	if RangeFromGaps(phy.Band2GHz, nil) != 0 {
		t.Fatal("empty gaps should give 0")
	}
	// Gap below SIFS clamps to zero distance.
	if RangeFromGaps(phy.Band2GHz, []eventsim.Time{sifs - eventsim.Microsecond}) != 0 {
		t.Fatal("sub-SIFS gap should clamp to 0")
	}
}

func TestProbeToFRanging(t *testing.T) {
	// End-to-end: victim at 30 m, ToF from real probe gaps.
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(3)
	m := radio.NewMedium(sched, rng, radio.Config{PathLoss: radio.LogDistance{Exponent: 2.2}})
	mac.New(m, rng, mac.Config{
		Name: "victim", Addr: clientAddr, Role: mac.RoleClient,
		Profile: mac.ProfileGenericClient, SSID: "n",
		Position: radio.Position{X: 30}, Band: phy.Band2GHz, Channel: 6,
	})
	attacker := NewAttacker(m, radio.Position{}, phy.Band2GHz, 6, DefaultFakeMAC)
	res := ProbeSync(attacker, clientAddr, ProbeNull, 10, 2*eventsim.Millisecond)
	if !res.Responded || len(res.Gaps) == 0 {
		t.Fatal("no gaps collected")
	}
	got := RangeFromGaps(phy.Band2GHz, res.Gaps)
	if got < 28 || got > 32 {
		t.Fatalf("ToF range = %.2f m, want ~30", got)
	}
}

func TestAttackerInjectDeauthSeen(t *testing.T) {
	w := newWorld(t)
	if _, err := w.attacker.InjectDeauth(clientAddr, apAddr); err != nil {
		t.Fatal(err)
	}
	w.sched.RunFor(20 * eventsim.Millisecond)
	// Victim (no PMF here) disassociates and the forged frame is ACKed.
	if w.client.Associated() {
		t.Fatal("forged deauth ignored on a non-PMF network")
	}
	if w.attacker.Sched() != w.sched {
		t.Fatal("Sched accessor broken")
	}
}

// TestScannerActiveScan: broadcast probe requests surface an AP well
// before its next beacon.
func TestScannerActiveScan(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(8)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.0}, CaptureMarginDB: 10,
	})
	// AP with a long beacon interval (≈0.8 s) so passive discovery is
	// slow.
	mac.New(m, rng.Fork(), mac.Config{
		Name: "ap", Addr: apAddr, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "SlowBeacon", BeaconIntervalTU: 800,
		Position: radio.Position{}, Band: phy.Band2GHz, Channel: 6,
	})
	attacker := NewAttacker(m, radio.Position{X: 10}, phy.Band2GHz, 6, DefaultFakeMAC)
	sc := NewScanner(attacker)
	sc.ActiveScanInterval = 30 * eventsim.Millisecond
	sc.Start()
	sched.RunFor(300 * eventsim.Millisecond) // well inside the first beacon gap
	sc.Stop()

	tally := sc.Tally()
	if tally.APs != 1 || tally.APsResponded != 1 {
		t.Fatalf("active scan tally = %+v", tally)
	}
	for _, d := range sc.Devices() {
		if d.MAC == apAddr && d.SSID != "SlowBeacon" {
			t.Fatalf("SSID from probe response = %q", d.SSID)
		}
	}
}
