package core

import (
	"fmt"
	"strings"

	"politewifi/internal/crypto80211"
	"politewifi/internal/phy"
)

// FeasibilityRow is one line of the §2.2 analysis: can this decode
// profile validate a frame before the band's ACK deadline?
type FeasibilityRow struct {
	Band    phy.Band
	Profile string
	crypto80211.SIFSFeasibility
}

// FeasibilityStudy evaluates every (band, decode-profile) pair for a
// typical frame, quantifying why Polite WiFi is unpreventable: the
// decode-to-SIFS ratio is 20–70×.
func FeasibilityStudy(payloadLen int) []FeasibilityRow {
	profiles := []struct {
		name string
		p    crypto80211.DecodeProfile
	}{
		{"fast (flagship phone)", crypto80211.FastDecoder},
		{"typical (laptop/AP)", crypto80211.TypicalDecoder},
		{"slow (IoT MCU)", crypto80211.SlowDecoder},
	}
	var rows []FeasibilityRow
	for _, band := range []phy.Band{phy.Band2GHz, phy.Band5GHz} {
		for _, pr := range profiles {
			rows = append(rows, FeasibilityRow{
				Band:            band,
				Profile:         pr.name,
				SIFSFeasibility: crypto80211.CheckSIFS(band, pr.p, payloadLen),
			})
		}
	}
	return rows
}

// RenderFeasibility formats the study as the experiment harness
// prints it.
func RenderFeasibility(rows []FeasibilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-24s %10s %12s %8s %s\n",
		"Band", "Decoder", "SIFS", "Decode", "Ratio", "Meets deadline?")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-24s %9.0fµs %11.0fµs %7.1fx %v\n",
			r.Band, r.Profile, r.SIFS.Micros(), r.Decode.Micros(), r.Ratio, r.MeetsSIFS)
	}
	return b.String()
}
