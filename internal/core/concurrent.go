package core

import (
	"context"
	"hash/fnv"
	"runtime/pprof"
	"sync"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/rt"
)

// ConcurrentScanner is the paper's §3 program with its original
// concurrency structure: "our implementation contains three threads.
// The first thread discovers nearby devices by sniffing WiFi traffic
// ... The second thread sends fake 802.11 frames to the list of
// target devices. Finally, the third thread checks to verify that
// target devices respond with an ACK."
//
// The three workers are real goroutines connected by channels; the
// injector is self-clocked by the verifier's verdicts (ACK observed,
// or a simulated-time timeout), so no wall-clock pacing is needed and
// runs remain fast. All simulation access is serialised through an
// rt.Bridge.
type ConcurrentScanner struct {
	attacker *Attacker
	bridge   *rt.Bridge

	// ProbesPerDevice is how many fake frames each silent target gets
	// before being written off.
	ProbesPerDevice int
	// MaxBusyParks caps how many transmitter-busy parks one target may
	// accumulate before the injector gives up with an Inconclusive
	// verdict. Without the cap a channel that never frees (a jammed or
	// hogged transmitter) spins the injector forever in simulated time.
	MaxBusyParks int
	// BusyBackoffBase/BusyBackoffMax bound the exponential backoff
	// between busy parks; the first park waits ~BusyBackoffBase, each
	// further park doubles it up to BusyBackoffMax, plus deterministic
	// per-target jitter so parked targets do not re-collide in step.
	BusyBackoffBase eventsim.Time
	BusyBackoffMax  eventsim.Time
	// MissBackoffBase/MissBackoffMax bound the backoff between probe
	// attempts after a negative verdict (the target may have been mid
	// transmission); same doubling-with-jitter schedule.
	MissBackoffBase eventsim.Time
	MissBackoffMax  eventsim.Time

	frameCh   chan frameEvent  // sniffer → discovery worker
	targetCh  chan dot11.MAC   // discovery → injector
	eventCh   chan verifyEvent // sim (armed/ack/timeout/corrupt, in order) → verifier
	verdictCh chan verdict     // verifier → injector

	mu      sync.Mutex
	devices map[dot11.MAC]*Device
	seeded  []dot11.MAC

	metrics PipelineMetrics
}

type frameEvent struct {
	frame dot11.Frame
	rx    radio.Reception
	ch    int
}

type verdict struct {
	target dot11.MAC
	acked  bool
	// lossy records that a corrupted reception landed inside the
	// probe's attribution window: the answer (if any) was mangled in
	// flight, so a negative verdict is not evidence of silence.
	lossy bool
}

// verifyEvent is the verifier's ordered input. All three kinds are
// produced under the simulation lock, so channel order equals
// simulated-time order — which makes ACK-vs-timeout resolution
// deterministic.
type verifyEvent struct {
	kind   verifyKind
	target dot11.MAC
	// at is the simulated production time; every producer holds the
	// simulation lock, so reading the clock here is safe. The verifier
	// (outside the lock) uses it to compute verdict latency.
	at eventsim.Time
}

type verifyKind int

const (
	evArmed   verifyKind = iota // injector sent a probe
	evAck                       // an ACK to the spoofed MAC arrived
	evTimeout                   // the probe's verification window closed
	evCorrupt                   // an FCS-failed reception arrived
)

// NewConcurrentScanner wires the pipeline to an attacker. The
// attacker's medium must only be driven through the bridge from now
// on.
func NewConcurrentScanner(a *Attacker, bridge *rt.Bridge) *ConcurrentScanner {
	// The sniffer tap ships frames across a channel to worker
	// goroutines, so they must survive past the OnFrame callback —
	// opt out of the attacker's pooled decoding.
	a.RetainFrames()
	s := &ConcurrentScanner{
		attacker:        a,
		bridge:          bridge,
		ProbesPerDevice: 3,
		MaxBusyParks:    16,
		BusyBackoffBase: 200 * eventsim.Microsecond,
		BusyBackoffMax:  5 * eventsim.Millisecond,
		MissBackoffBase: 5 * eventsim.Millisecond,
		MissBackoffMax:  20 * eventsim.Millisecond,
		frameCh:         make(chan frameEvent, 1024),
		targetCh:        make(chan dot11.MAC, 256),
		eventCh:         make(chan verifyEvent, 256),
		verdictCh:       make(chan verdict, 16),
		devices:         make(map[dot11.MAC]*Device),
	}
	return s
}

// SeedTargets preloads the target list with known MACs (a targeted
// strike list), so the injector probes them without waiting for the
// discovery worker to overhear traffic from them. Call before Run.
func (s *ConcurrentScanner) SeedTargets(targets ...dot11.MAC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range targets {
		if _, ok := s.devices[m]; ok {
			continue
		}
		s.devices[m] = &Device{MAC: m, Kind: KindClient}
		s.seeded = append(s.seeded, m)
	}
}

// Run executes the scan for the given amount of simulated time and
// returns the tally. It blocks the calling goroutine; the three
// workers and the simulation driver run underneath it.
func (s *ConcurrentScanner) Run(simDuration eventsim.Time) Tally {
	done := make(chan struct{})
	var wg sync.WaitGroup

	// Sniffer tap: runs inside the simulation (under the bridge
	// lock), so it must never block — drop on overflow like a real
	// capture ring.
	s.bridge.Do(func() {
		s.attacker.OnFrame(func(f dot11.Frame, rx radio.Reception) {
			ev := frameEvent{frame: f, rx: rx, ch: s.attacker.Radio.Channel()}
			select {
			//politevet:allow bufreuse(the concurrent scanner's medium never has a stop arena — NewConcurrentScanner sets RetainFrames and world.Run uses the sequential Scanner — so rx.Data here is a per-transmission allocation the consumer may keep)
			case s.frameCh <- ev:
				s.metrics.FrameChDepth.SetInt(len(s.frameCh))
			default:
			}
		})
	})

	// The verifier's ACK and corrupt-reception taps also run under the
	// simulation lock. Corrupt receptions matter only while a probe is
	// open: an FCS-failed frame inside the attribution window means
	// the verdict cannot distinguish silence from a mangled answer.
	s.bridge.Do(func() {
		s.attacker.OnFrame(func(f dot11.Frame, rx radio.Reception) {
			if a, ok := f.(*dot11.Ack); ok && a.RA == s.attacker.MAC {
				s.pushEvent(verifyEvent{kind: evAck, at: s.attacker.sched.Now()})
			}
		})
		s.attacker.OnCorrupt(func(rx radio.Reception) {
			s.pushEvent(verifyEvent{kind: evCorrupt, at: s.attacker.sched.Now()})
		})
	})

	// Seeded targets go straight to the injector.
	s.mu.Lock()
	seeded := append([]dot11.MAC(nil), s.seeded...)
	s.mu.Unlock()
	for _, m := range seeded {
		select {
		case s.targetCh <- m:
		default:
		}
	}

	// Each worker runs under a pprof label so CPU/goroutine profiles
	// attribute samples to the paper's thread roles.
	wg.Add(3)
	worker := func(role string, fn func(*sync.WaitGroup, <-chan struct{})) {
		go pprof.Do(context.Background(), pprof.Labels("pipeline_worker", role), func(context.Context) {
			fn(&wg, done)
		})
	}
	worker("discovery", s.discoveryWorker)
	worker("injector", s.injectorWorker)
	worker("verifier", s.verifierWorker)

	s.bridge.Drive(eventsim.Millisecond, simDuration)
	close(done)
	wg.Wait()
	return s.tally()
}

// discoveryWorker (thread 1): sniffs traffic, adds unseen MACs to the
// target list.
func (s *ConcurrentScanner) discoveryWorker(wg *sync.WaitGroup, done <-chan struct{}) {
	defer wg.Done()
	for {
		select {
		case <-done:
			return
		case ev := <-s.frameCh:
			s.metrics.WorkerDiscovery.Inc()
			s.discover(ev)
		}
	}
}

func (s *ConcurrentScanner) discover(ev frameEvent) {
	ta := ev.frame.TransmitterAddress()
	if ta == dot11.ZeroMAC || ta == s.attacker.MAC || !ta.IsUnicast() {
		return
	}
	kind := KindClient
	ssid := ""
	switch ff := ev.frame.(type) {
	case *dot11.Beacon:
		kind, ssid = KindAP, ff.SSID()
	case *dot11.ProbeResp:
		kind = KindAP
		ssid, _ = dot11.FindSSID(ff.IEs)
	case *dot11.Data:
		if ff.FC.FromDS {
			kind = KindAP
		}
	}
	s.mu.Lock()
	d, seen := s.devices[ta]
	if !seen {
		d = &Device{MAC: ta, Kind: kind, SSID: ssid, Channel: ev.ch, RSSIDBm: ev.rx.RSSIDBm}
		s.devices[ta] = d
	} else if kind == KindAP {
		d.Kind = KindAP
		if ssid != "" {
			d.SSID = ssid
		}
	}
	s.mu.Unlock()
	if !seen {
		s.metrics.Discovered.Inc()
		select {
		case s.targetCh <- ta:
			s.metrics.TargetChDepth.SetInt(len(s.targetCh))
		default: // target queue full; the device stays recorded as silent
		}
	}
}

// injectorWorker (thread 2): pulls targets, sends fake frames, and
// waits for the verifier's verdict before moving on — a self-clocked
// pipeline with no wall-clock sleeps.
func (s *ConcurrentScanner) injectorWorker(wg *sync.WaitGroup, done <-chan struct{}) {
	defer wg.Done()
	for {
		select {
		case <-done:
			return
		case target := <-s.targetCh:
			s.metrics.WorkerInjector.Inc()
			s.probeTarget(target, done)
		}
	}
}

func (s *ConcurrentScanner) probeTarget(target dot11.MAC, done <-chan struct{}) {
	busyParks := 0
	lossy := false
	for attempt := 0; attempt < s.ProbesPerDevice; attempt++ {
		// Drain stale verdicts (timeouts that fired after their probe
		// was already resolved positively).
		for {
			select {
			case <-s.verdictCh:
				continue
			default:
			}
			break
		}
		injected := false
		s.bridge.Do(func() {
			if s.attacker.Radio.Transmitting() {
				return
			}
			end, err := s.attacker.InjectNull(target)
			if err != nil {
				return
			}
			injected = true
			s.metrics.ProbesInjected.Inc()
			if attempt > 0 {
				s.metrics.Retries.Inc()
			}
			s.mu.Lock()
			s.devices[target].Probes++
			s.mu.Unlock()
			// Arm the verifier, then schedule the window-close event.
			// Both flow through eventCh under the sim lock, so the
			// verifier sees armed → (ack?) → timeout in sim order.
			tgt := target
			s.pushEvent(verifyEvent{kind: evArmed, target: tgt, at: s.attacker.sched.Now()})
			window := s.attacker.Radio.Band().SIFS() +
				phy.Airtime(phy.ControlRate(s.attacker.Rate), 14) + attributionWindow
			s.attacker.sched.Schedule(end+window, func() {
				s.pushEvent(verifyEvent{kind: evTimeout, target: tgt, at: s.attacker.sched.Now()})
			})
		})
		if !injected {
			// Transmitter busy: park on a bridged simulated-time wait
			// (one event, no OS-scheduler spinning), then retry without
			// consuming the attempt — but only MaxBusyParks times. A
			// channel that never frees used to loop here forever; now
			// the target is written off as inconclusive.
			busyParks++
			s.metrics.BusyParks.Inc()
			if busyParks > s.MaxBusyParks {
				s.closeVerdict(target, VerdictInconclusive)
				return
			}
			wait := backoffDelay(s.BusyBackoffBase, s.BusyBackoffMax, busyParks, target)
			s.metrics.BackoffUS.ObserveTime(wait)
			s.simSleep(wait, done)
			select {
			case <-done:
				return
			default:
			}
			attempt--
			continue
		}
		// Wait for the verifier (or shutdown).
		select {
		case <-done:
			return
		case v := <-s.verdictCh:
			if v.acked {
				s.mu.Lock()
				d := s.devices[target]
				d.Acks++
				d.Responded = true
				d.Verdict = VerdictResponded
				s.mu.Unlock()
				return
			}
			lossy = lossy || v.lossy
		}
		// Missed: the target may have been mid-transmission. Back off
		// for an exponentially growing simulated wait before the next
		// attempt.
		if attempt < s.ProbesPerDevice-1 {
			wait := backoffDelay(s.MissBackoffBase, s.MissBackoffMax, attempt+1, target)
			s.metrics.BackoffUS.ObserveTime(wait)
			s.simSleep(wait, done)
		}
	}
	// Budget spent without an ACK. Only a clean run of timeouts is
	// evidence of silence; corrupted receptions inside any attribution
	// window leave the device unclassified.
	if lossy {
		s.closeVerdict(target, VerdictInconclusive)
	} else {
		s.closeVerdict(target, VerdictSilent)
	}
}

// closeVerdict records a final non-responding verdict for a target.
func (s *ConcurrentScanner) closeVerdict(target dot11.MAC, v Verdict) {
	s.mu.Lock()
	if d, ok := s.devices[target]; ok {
		d.Verdict = v
	}
	s.mu.Unlock()
	switch v {
	case VerdictSilent:
		s.metrics.VerdictSilent.Inc()
	case VerdictInconclusive:
		s.metrics.VerdictInconclusive.Inc()
	}
}

// backoffDelay computes the nth backoff wait: base·2^(n−1) capped at
// max, plus jitter in [0, base) derived by hashing the target and
// attempt. The jitter is deliberately not drawn from the simulation
// RNG: pipeline workers interleave nondeterministically in wall time,
// and sharing a seeded stream with the simulation would make replay
// depend on the OS scheduler.
func backoffDelay(base, max eventsim.Time, n int, target dot11.MAC) eventsim.Time {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if max > 0 && d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write(target[:])
	h.Write([]byte{byte(n), byte(n >> 8)})
	return d + eventsim.Time(h.Sum64()%uint64(base))
}

// simSleep blocks the calling worker until the simulation clock has
// advanced by d (or shutdown).
func (s *ConcurrentScanner) simSleep(d eventsim.Time, done <-chan struct{}) {
	wake := make(chan struct{})
	s.bridge.Do(func() {
		s.attacker.sched.After(d, func() { close(wake) })
	})
	select {
	case <-wake:
	case <-done:
	}
}

// pushEvent enqueues a verifier event; callers hold the simulation
// lock, so enqueue order is simulated-time order. Overflow drops the
// event — the timeout token then resolves the probe negatively, which
// only costs a retry.
func (s *ConcurrentScanner) pushEvent(ev verifyEvent) {
	select {
	case s.eventCh <- ev:
		s.metrics.EventChDepth.SetInt(len(s.eventCh))
	default:
	}
}

// verifierWorker (thread 3) is a state machine over the ordered event
// stream: an armed probe is resolved by whichever of ACK or timeout
// arrives first in simulated time. The injector sends one probe at a
// time, so a single open flag suffices.
func (s *ConcurrentScanner) verifierWorker(wg *sync.WaitGroup, done <-chan struct{}) {
	defer wg.Done()
	open := false
	sawCorrupt := false
	var target dot11.MAC
	var armedAt eventsim.Time
	// firstArmed pins each target's earliest probe so an acked
	// resolution can report the full exchange latency, retries
	// included — same semantics as the cooperative scanner.
	firstArmed := make(map[dot11.MAC]eventsim.Time)
	answered := make(map[dot11.MAC]bool)
	resolve := func(acked bool, at eventsim.Time) {
		open = false
		if acked {
			s.metrics.VerdictAck.Inc()
			if !answered[target] {
				answered[target] = true
				s.metrics.ExchangeLatencyUS.ObserveTime(at - firstArmed[target])
			}
		} else {
			s.metrics.VerdictTimeout.Inc()
		}
		s.metrics.VerdictLatencyUS.ObserveTime(at - armedAt)
		select {
		case s.verdictCh <- verdict{target: target, acked: acked, lossy: sawCorrupt}:
		case <-done:
		}
	}
	for {
		select {
		case <-done:
			return
		case ev := <-s.eventCh:
			s.metrics.WorkerVerifier.Inc()
			switch ev.kind {
			case evArmed:
				open = true
				sawCorrupt = false
				target = ev.target
				armedAt = ev.at
				if _, ok := firstArmed[target]; !ok {
					firstArmed[target] = ev.at
				}
			case evAck:
				if open {
					resolve(true, ev.at)
				}
			case evCorrupt:
				// Our own radio cannot receive while transmitting, so
				// any corrupt arrival between arming and the window
				// close happened in the response slot.
				if open {
					sawCorrupt = true
				}
			case evTimeout:
				if open && ev.target == target {
					resolve(false, ev.at)
				}
			}
		}
	}
}

func (s *ConcurrentScanner) tally() Tally {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t Tally
	for _, d := range s.devices {
		t.Total++
		if d.Responded {
			t.TotalResponded++
		}
		if d.Verdict == VerdictInconclusive {
			t.Inconclusive++
		}
		if d.Kind == KindAP {
			t.APs++
			if d.Responded {
				t.APsResponded++
			} else {
				t.APsQuiet++
			}
		} else {
			t.Clients++
			if d.Responded {
				t.ClientsResponded++
			}
		}
	}
	return t
}

// Devices returns a snapshot of the discovered devices.
func (s *ConcurrentScanner) Devices() []*Device {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Device, 0, len(s.devices))
	for _, d := range s.devices {
		cp := *d
		out = append(out, &cp)
	}
	return out
}
