package core

import (
	"testing"

	"politewifi/internal/eventsim"
)

func TestVirtualJammer(t *testing.T) {
	w := newWorld(t)
	j := NewVirtualJammer(w.attacker)
	j.Start()
	w.sched.RunFor(200 * eventsim.Millisecond)
	if j.Sent < 5 {
		t.Fatalf("jammer sent only %d reservations", j.Sent)
	}
	if !w.client.NAVBusy() || !w.ap.NAVBusy() {
		t.Fatal("stations not pinned by the jammer's NAV")
	}

	// The victim cannot transmit...
	acksBefore := w.client.Stats.AcksReceived
	w.client.SendData(apAddr, []byte("blocked"))
	w.sched.RunFor(100 * eventsim.Millisecond)
	if w.client.Stats.AcksReceived != acksBefore {
		t.Fatal("victim transmitted through the jam")
	}
	// ...but still politely ACKs the attacker's fake frames.
	res := ProbeSync(w.attacker, clientAddr, ProbeNull, 3, 5*eventsim.Millisecond)
	if !res.Responded {
		t.Fatal("jammed victim stopped ACKing — NAV must not gate SIFS responses")
	}

	j.Stop()
	// Reservations expire; the queued frame eventually flows.
	w.sched.RunFor(300 * eventsim.Millisecond)
	if w.client.NAVBusy() {
		t.Fatal("NAV still armed long after Stop")
	}
	if w.client.Stats.AcksReceived == acksBefore {
		t.Fatal("queued frame never delivered after the jam ended")
	}
}
