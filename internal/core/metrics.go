package core

import (
	"politewifi/internal/telemetry"
)

// PipelineMetrics instruments the wardriving pipeline (the "pipeline"
// and "core" families). Both Scanner implementations share the same
// metric names: they are alternative drivers of the same paper
// pipeline, and a run uses one of them. The zero value records
// nothing.
type PipelineMetrics struct {
	Discovered     *telemetry.Counter
	ProbesInjected *telemetry.Counter
	VerdictAck     *telemetry.Counter
	VerdictTimeout *telemetry.Counter
	// VerdictLatencyUS is the sim-time distribution from probe
	// injection to the verifier's decision.
	VerdictLatencyUS *telemetry.Histogram
	// ExchangeLatencyUS is the end-to-end latency of each verified
	// probe exchange: a target's first probe out to the first
	// SIFS-attributed response back, retries included.
	ExchangeLatencyUS *telemetry.Histogram

	// Channel queue depths (ConcurrentScanner only): set at each send,
	// so Max is the depth high-water mark.
	FrameChDepth  *telemetry.Gauge
	TargetChDepth *telemetry.Gauge
	EventChDepth  *telemetry.Gauge

	// Per-worker processed-item counts (ConcurrentScanner only).
	WorkerDiscovery *telemetry.Counter
	WorkerInjector  *telemetry.Counter
	WorkerVerifier  *telemetry.Counter

	// Degraded-channel instruments, registered only via
	// EnableFaultInstruments so a pristine run's report stays
	// byte-identical: nil fields record nothing.
	BusyParks           *telemetry.Counter
	Retries             *telemetry.Counter
	BackoffUS           *telemetry.Histogram
	VerdictSilent       *telemetry.Counter
	VerdictInconclusive *telemetry.Counter
}

// NewPipelineMetrics creates (or reattaches to) the pipeline family.
func NewPipelineMetrics(reg *telemetry.Registry) PipelineMetrics {
	return PipelineMetrics{
		Discovered:     reg.Counter("pipeline.devices_discovered", "unseen MACs added to the target list"),
		ProbesInjected: reg.Counter("pipeline.probes_injected", "fake frames sent at targets"),
		VerdictAck:     reg.Counter("pipeline.verdicts.ack", "probes answered by a SIFS-timed ACK"),
		VerdictTimeout: reg.Counter("pipeline.verdicts.timeout", "probes whose attribution window closed unanswered"),
		VerdictLatencyUS: reg.Histogram("pipeline.verdict_latency_us",
			"sim time from probe to verdict (µs)", telemetry.TimeBucketsUS),
		ExchangeLatencyUS: reg.Histogram("pipeline.exchange_latency_us",
			"sim time from a target's first probe to its verified response (µs)", telemetry.TimeBucketsUS),
		FrameChDepth:    reg.Gauge("pipeline.chan.frames", "sniffer→discovery queue depth"),
		TargetChDepth:   reg.Gauge("pipeline.chan.targets", "discovery→injector queue depth"),
		EventChDepth:    reg.Gauge("pipeline.chan.events", "sim→verifier queue depth"),
		WorkerDiscovery: reg.Counter("pipeline.worker.discovery", "frames processed by the discovery worker"),
		WorkerInjector:  reg.Counter("pipeline.worker.injector", "probe attempts by the injector worker"),
		WorkerVerifier:  reg.Counter("pipeline.worker.verifier", "events processed by the verifier worker"),
	}
}

// EnableFaultInstruments registers the degraded-channel instruments
// (retries, busy parks, backoff time, silent/inconclusive verdicts).
// They are split from NewPipelineMetrics on purpose: every registered
// instrument appears in the snapshot even at zero, so attaching them
// unconditionally would change the telemetry report of runs that
// never see a fault.
func (m *PipelineMetrics) EnableFaultInstruments(reg *telemetry.Registry) {
	m.BusyParks = reg.Counter("pipeline.busy_parks", "probe attempts parked on a busy transmitter")
	m.Retries = reg.Counter("pipeline.retries", "probes re-sent after an unanswered attempt")
	m.BackoffUS = reg.Histogram("pipeline.backoff_us",
		"sim time spent in retry backoff per park (µs)", telemetry.TimeBucketsUS)
	m.VerdictSilent = reg.Counter("pipeline.verdicts.silent", "targets that spent a clean probe budget unanswered")
	m.VerdictInconclusive = reg.Counter("pipeline.verdicts.inconclusive", "targets without a clean verdict (lossy/contended/budget-starved)")
}

// SetMetrics installs pipeline telemetry on the cooperative scanner.
// Fault instruments stay detached; drivers running under channel
// faults add them with EnableFaultInstruments.
func (s *Scanner) SetMetrics(reg *telemetry.Registry) {
	s.metrics = NewPipelineMetrics(reg)
}

// EnableFaultInstruments attaches the degraded-channel instruments to
// the cooperative scanner. Call after SetMetrics.
func (s *Scanner) EnableFaultInstruments(reg *telemetry.Registry) {
	s.metrics.EnableFaultInstruments(reg)
}

// SetMetrics installs pipeline telemetry on the concurrent scanner.
// Call before Run. The concurrent pipeline always reports its full
// three-state verdicts, so the fault instruments come attached.
func (s *ConcurrentScanner) SetMetrics(reg *telemetry.Registry) {
	s.metrics = NewPipelineMetrics(reg)
	s.metrics.EnableFaultInstruments(reg)
}

// InstrumentInto registers the attacker's monitor-mode counters as
// sampled core.* metrics.
func (a *Attacker) InstrumentInto(reg *telemetry.Registry) {
	reg.CounterFunc("core.injected", "frames injected by the attacker", func() uint64 { return a.Injected })
	reg.CounterFunc("core.inject_drops", "injections refused (transmitter busy)", func() uint64 { return a.InjectDrops })
	reg.CounterFunc("core.frames_seen", "frames sniffed in monitor mode", func() uint64 { return a.FramesSeen })
	reg.CounterFunc("core.fcs_errors", "receptions that failed the FCS check", func() uint64 { return a.FCSErrors })
	reg.CounterFunc("core.acks_to_me", "ACKs addressed to the spoofed MAC", func() uint64 { return a.AcksToMe })
	reg.CounterFunc("core.cts_to_me", "CTS addressed to the spoofed MAC", func() uint64 { return a.CTSToMe })
	reg.CounterFunc("core.deauths_for_me", "deauths aimed at the spoofed MAC", func() uint64 { return a.DeauthsForMe })
}
