package core

import (
	"politewifi/internal/telemetry"
)

// PipelineMetrics instruments the wardriving pipeline (the "pipeline"
// and "core" families). Both Scanner implementations share the same
// metric names: they are alternative drivers of the same paper
// pipeline, and a run uses one of them. The zero value records
// nothing.
type PipelineMetrics struct {
	Discovered     *telemetry.Counter
	ProbesInjected *telemetry.Counter
	VerdictAck     *telemetry.Counter
	VerdictTimeout *telemetry.Counter
	// VerdictLatencyUS is the sim-time distribution from probe
	// injection to the verifier's decision.
	VerdictLatencyUS *telemetry.Histogram

	// Channel queue depths (ConcurrentScanner only): set at each send,
	// so Max is the depth high-water mark.
	FrameChDepth  *telemetry.Gauge
	TargetChDepth *telemetry.Gauge
	EventChDepth  *telemetry.Gauge

	// Per-worker processed-item counts (ConcurrentScanner only).
	WorkerDiscovery *telemetry.Counter
	WorkerInjector  *telemetry.Counter
	WorkerVerifier  *telemetry.Counter
}

// NewPipelineMetrics creates (or reattaches to) the pipeline family.
func NewPipelineMetrics(reg *telemetry.Registry) PipelineMetrics {
	return PipelineMetrics{
		Discovered:     reg.Counter("pipeline.devices_discovered", "unseen MACs added to the target list"),
		ProbesInjected: reg.Counter("pipeline.probes_injected", "fake frames sent at targets"),
		VerdictAck:     reg.Counter("pipeline.verdicts.ack", "probes answered by a SIFS-timed ACK"),
		VerdictTimeout: reg.Counter("pipeline.verdicts.timeout", "probes whose attribution window closed unanswered"),
		VerdictLatencyUS: reg.Histogram("pipeline.verdict_latency_us",
			"sim time from probe to verdict (µs)", telemetry.TimeBucketsUS),
		FrameChDepth:    reg.Gauge("pipeline.chan.frames", "sniffer→discovery queue depth"),
		TargetChDepth:   reg.Gauge("pipeline.chan.targets", "discovery→injector queue depth"),
		EventChDepth:    reg.Gauge("pipeline.chan.events", "sim→verifier queue depth"),
		WorkerDiscovery: reg.Counter("pipeline.worker.discovery", "frames processed by the discovery worker"),
		WorkerInjector:  reg.Counter("pipeline.worker.injector", "probe attempts by the injector worker"),
		WorkerVerifier:  reg.Counter("pipeline.worker.verifier", "events processed by the verifier worker"),
	}
}

// SetMetrics installs pipeline telemetry on the cooperative scanner.
func (s *Scanner) SetMetrics(reg *telemetry.Registry) {
	s.metrics = NewPipelineMetrics(reg)
}

// SetMetrics installs pipeline telemetry on the concurrent scanner.
// Call before Run.
func (s *ConcurrentScanner) SetMetrics(reg *telemetry.Registry) {
	s.metrics = NewPipelineMetrics(reg)
}

// InstrumentInto registers the attacker's monitor-mode counters as
// sampled core.* metrics.
func (a *Attacker) InstrumentInto(reg *telemetry.Registry) {
	reg.CounterFunc("core.injected", "frames injected by the attacker", func() uint64 { return a.Injected })
	reg.CounterFunc("core.inject_drops", "injections refused (transmitter busy)", func() uint64 { return a.InjectDrops })
	reg.CounterFunc("core.frames_seen", "frames sniffed in monitor mode", func() uint64 { return a.FramesSeen })
	reg.CounterFunc("core.acks_to_me", "ACKs addressed to the spoofed MAC", func() uint64 { return a.AcksToMe })
	reg.CounterFunc("core.cts_to_me", "CTS addressed to the spoofed MAC", func() uint64 { return a.CTSToMe })
	reg.CounterFunc("core.deauths_for_me", "deauths aimed at the spoofed MAC", func() uint64 { return a.DeauthsForMe })
}
