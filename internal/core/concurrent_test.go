package core

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/rt"
	"politewifi/internal/telemetry"
)

// TestConcurrentScanner runs the paper's three-goroutine pipeline
// against a small neighbourhood and expects every device discovered
// and verified. This test exercises real concurrency: run it with
// -race.
func TestConcurrentScanner(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(19)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	var aps []dot11.MAC
	for i := 0; i < 3; i++ {
		apMAC := dot11.MustMAC("f2:6e:0b:00:0" + string(rune('0'+i)) + ":01")
		clMAC := dot11.MustMAC("ec:fa:bc:00:0" + string(rune('0'+i)) + ":02")
		pos := radio.Position{X: float64(i) * 20}
		mac.New(m, rng.Fork(), mac.Config{
			Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
			SSID: "h", Position: pos, Band: phy.Band2GHz, Channel: 6,
		})
		cl := mac.New(m, rng.Fork(), mac.Config{
			Name: "cl", Addr: clMAC, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
			SSID: "h", Position: radio.Position{X: pos.X + 3}, Band: phy.Band2GHz, Channel: 6,
		})
		cl.Associate(apMAC, nil)

		sched.Every(150*eventsim.Millisecond, func() {
			if cl.Associated() {
				cl.SendData(apMAC, []byte("chatter"))
			}
		})
		aps = append(aps, apMAC)
	}
	attacker := NewAttacker(m, radio.Position{X: 20, Y: 10}, phy.Band2GHz, 6, DefaultFakeMAC)

	bridge := rt.NewBridge(sched)
	cs := NewConcurrentScanner(attacker, bridge)
	tally := cs.Run(4 * eventsim.Second)

	if tally.Total < 6 {
		t.Fatalf("discovered %d devices, want 6", tally.Total)
	}
	if tally.TotalResponded != tally.Total {
		t.Fatalf("responded %d of %d: %+v", tally.TotalResponded, tally.Total, cs.Devices())
	}
	if tally.APs < 3 || tally.Clients < 3 {
		t.Fatalf("tally = %+v", tally)
	}
	_ = aps
}

// TestConcurrentScannerTelemetryRace drives the three-goroutine
// pipeline with every instrument attached — registry on the race-free
// ObservedNow clock, medium metrics, tracer, pipeline metrics, bridge
// counters — and cross-checks the resulting report. The point is the
// -race run: worker goroutines stamp counters and read the virtual
// clock while the driver fires events, which is exactly the interleaving
// the atomic clock mirror exists for.
func TestConcurrentScannerTelemetryRace(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(23)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	reg := telemetry.NewRegistry(sched.ObservedNow)
	telemetry.AttachScheduler(reg, sched, false)
	m.SetMetrics(radio.NewMetrics(reg))
	m.SetTracer(telemetry.NewTracer())
	macMx := mac.NewMetrics(reg)

	apMAC := dot11.MustMAC("f2:6e:0b:00:00:01")
	clMAC := dot11.MustMAC("ec:fa:bc:00:00:02")
	ap := mac.New(m, rng.Fork(), mac.Config{
		Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
		SSID: "h", Band: phy.Band2GHz, Channel: 6,
	})
	ap.SetMetrics(macMx)
	cl := mac.New(m, rng.Fork(), mac.Config{
		Name: "cl", Addr: clMAC, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
		SSID: "h", Position: radio.Position{X: 3}, Band: phy.Band2GHz, Channel: 6,
	})
	cl.SetMetrics(macMx)
	cl.Associate(apMAC, nil)
	sched.Every(100*eventsim.Millisecond, func() {
		if cl.Associated() {
			cl.SendData(apMAC, []byte("chatter"))
		}
	})

	attacker := NewAttacker(m, radio.Position{X: 8, Y: 4}, phy.Band2GHz, 6, DefaultFakeMAC)
	attacker.InstrumentInto(reg)
	bridge := rt.NewBridge(sched)
	bridge.InstrumentInto(reg)
	cs := NewConcurrentScanner(attacker, bridge)
	cs.SetMetrics(reg)
	tally := cs.Run(2 * eventsim.Second)

	if tally.Total < 2 || tally.TotalResponded != tally.Total {
		t.Fatalf("tally = %+v", tally)
	}
	rep := reg.Snapshot()
	if c := rep.Counter("pipeline.devices_discovered"); c == nil || c.Value != uint64(tally.Total) {
		t.Fatalf("pipeline.devices_discovered = %+v, tally = %+v", c, tally)
	}
	if c := rep.Counter("pipeline.verdicts.ack"); c == nil || c.Value < uint64(tally.TotalResponded) {
		t.Fatalf("pipeline.verdicts.ack = %+v", c)
	}
	if c := rep.Counter("rt.drive_quanta"); c == nil || c.Value == 0 {
		t.Fatalf("rt.drive_quanta = %+v", c)
	}
	// Verdict latency is measured in virtual time between arming and
	// resolution; an ACK verdict arrives within the verification window.
	var lat *telemetry.HistogramSnapshot
	for i := range rep.Histograms {
		if rep.Histograms[i].Name == "pipeline.verdict_latency_us" {
			lat = &rep.Histograms[i]
		}
	}
	if lat == nil || lat.Count == 0 {
		t.Fatal("pipeline.verdict_latency_us empty")
	}
	if lat.Min < 0 || lat.Max > 50_000 {
		t.Fatalf("verdict latency out of range: min=%v max=%v", lat.Min, lat.Max)
	}
	for _, fam := range []string{"sched", "medium", "mac", "pipeline", "core", "rt"} {
		found := false
		for _, f := range rep.Families() {
			if f == fam {
				found = true
			}
		}
		if !found {
			t.Fatalf("family %q missing from report (have %v)", fam, rep.Families())
		}
	}
}

// TestBridgeDoSerialises hammers the bridge from several goroutines
// while it drives; -race validates mutual exclusion.
func TestBridgeDoSerialises(t *testing.T) {
	sched := eventsim.NewScheduler()
	bridge := rt.NewBridge(sched)
	counter := 0
	doneCh := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				bridge.Do(func() { counter++ })
			}
			doneCh <- struct{}{}
		}()
	}
	bridge.Drive(eventsim.Millisecond, 100*eventsim.Millisecond)
	for g := 0; g < 4; g++ {
		<-doneCh
	}
	bridge.Do(func() {
		if counter != 800 {
			t.Errorf("counter = %d, want 800", counter)
		}
	})
	if bridge.Now() < 100*eventsim.Millisecond {
		t.Fatal("Drive did not advance virtual time")
	}
}
