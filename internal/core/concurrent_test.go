package core

import (
	"testing"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/mac"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
	"politewifi/internal/rt"
)

// TestConcurrentScanner runs the paper's three-goroutine pipeline
// against a small neighbourhood and expects every device discovered
// and verified. This test exercises real concurrency: run it with
// -race.
func TestConcurrentScanner(t *testing.T) {
	sched := eventsim.NewScheduler()
	rng := eventsim.NewRNG(19)
	m := radio.NewMedium(sched, rng.Fork(), radio.Config{
		PathLoss: radio.LogDistance{Exponent: 2.2}, CaptureMarginDB: 10,
	})
	var aps []dot11.MAC
	for i := 0; i < 3; i++ {
		apMAC := dot11.MustMAC("f2:6e:0b:00:0" + string(rune('0'+i)) + ":01")
		clMAC := dot11.MustMAC("ec:fa:bc:00:0" + string(rune('0'+i)) + ":02")
		pos := radio.Position{X: float64(i) * 20}
		mac.New(m, rng.Fork(), mac.Config{
			Name: "ap", Addr: apMAC, Role: mac.RoleAP, Profile: mac.ProfileGenericAP,
			SSID: "h", Position: pos, Band: phy.Band2GHz, Channel: 6,
		})
		cl := mac.New(m, rng.Fork(), mac.Config{
			Name: "cl", Addr: clMAC, Role: mac.RoleClient, Profile: mac.ProfileGenericClient,
			SSID: "h", Position: radio.Position{X: pos.X + 3}, Band: phy.Band2GHz, Channel: 6,
		})
		cl.Associate(apMAC, nil)

		sched.Every(150*eventsim.Millisecond, func() {
			if cl.Associated() {
				cl.SendData(apMAC, []byte("chatter"))
			}
		})
		aps = append(aps, apMAC)
	}
	attacker := NewAttacker(m, radio.Position{X: 20, Y: 10}, phy.Band2GHz, 6, DefaultFakeMAC)

	bridge := rt.NewBridge(sched)
	cs := NewConcurrentScanner(attacker, bridge)
	tally := cs.Run(4 * eventsim.Second)

	if tally.Total < 6 {
		t.Fatalf("discovered %d devices, want 6", tally.Total)
	}
	if tally.TotalResponded != tally.Total {
		t.Fatalf("responded %d of %d: %+v", tally.TotalResponded, tally.Total, cs.Devices())
	}
	if tally.APs < 3 || tally.Clients < 3 {
		t.Fatalf("tally = %+v", tally)
	}
	_ = aps
}

// TestBridgeDoSerialises hammers the bridge from several goroutines
// while it drives; -race validates mutual exclusion.
func TestBridgeDoSerialises(t *testing.T) {
	sched := eventsim.NewScheduler()
	bridge := rt.NewBridge(sched)
	counter := 0
	doneCh := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				bridge.Do(func() { counter++ })
			}
			doneCh <- struct{}{}
		}()
	}
	bridge.Drive(eventsim.Millisecond, 100*eventsim.Millisecond)
	for g := 0; g < 4; g++ {
		<-doneCh
	}
	bridge.Do(func() {
		if counter != 800 {
			t.Errorf("counter = %d, want 800", counter)
		}
	})
	if bridge.Now() < 100*eventsim.Millisecond {
		t.Fatal("Drive did not advance virtual time")
	}
}
