// Package core implements the Polite WiFi toolkit — the paper's
// contribution. An Attacker owns a monitor-mode radio with no network
// membership at all: it is never authenticated, never associated, and
// holds no keys. From that position it can:
//
//   - Probe any device: inject a fake null frame and observe the ACK
//     the victim's PHY is compelled to send (§2, Figure 2).
//   - Probe with RTS instead, eliciting CTS — the variant that defeats
//     even hypothetical validating receivers (§2.2).
//   - Scan a neighbourhood with the paper's three-worker pipeline:
//     discovery → injection → verification (§3, Table 2).
//   - Drain a battery by pinning a power-saving device awake (§4.2,
//     Figure 6).
//   - Measure CSI of the elicited ACKs to sense activity and
//     keystrokes through walls (§4.1/4.3, Figure 5).
package core

import (
	"fmt"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
	"politewifi/internal/radio"
)

// DefaultFakeMAC is the spoofed transmitter address the paper uses in
// its captures.
var DefaultFakeMAC = dot11.MustMAC("aa:bb:bb:bb:bb:bb")

// Attacker is a monitor-mode radio plus injection helpers. It is not
// a mac.Station: it never acknowledges, never associates, and sees
// every frame its radio can decode.
type Attacker struct {
	Radio *radio.Radio
	// MAC is the (spoofed) transmitter address written into injected
	// frames. Nothing checks it — that is the point.
	MAC dot11.MAC
	// Rate is the PHY rate for injected frames. The default 24 Mbps
	// keeps ACKs at the 24 Mbps basic rate; wardriving drops to
	// 6 Mbps for reach, as real injection tools do.
	Rate phy.Rate

	sched *eventsim.Scheduler
	seq   uint16

	handlers        []func(f dot11.Frame, rx radio.Reception)
	corruptHandlers []func(rx radio.Reception)

	// Zero-alloc sniffing and injection state: dec parses each
	// reception into pooled per-type structs (see RetainFrames),
	// wireScratch backs serialization (the medium copies transmitted
	// bytes), and the canonical fake frames are reused across injects.
	dec          dot11.Decoder
	retainFrames bool
	wireScratch  []byte
	nullFrame    dot11.Data
	rtsFrame     dot11.RTS

	// Stats.
	Injected     uint64
	InjectDrops  uint64 // transmitter busy
	FramesSeen   uint64
	FCSErrors    uint64 // receptions that failed the FCS check
	AcksToMe     uint64
	CTSToMe      uint64
	DeauthsForMe uint64
}

// NewAttacker attaches an attacker radio to the medium.
func NewAttacker(m *radio.Medium, pos radio.Position, band phy.Band, channel int, spoof dot11.MAC) *Attacker {
	a := &Attacker{
		MAC:   spoof,
		Rate:  InjectionRate,
		sched: m.Sched,
	}
	a.Radio = m.NewRadio("attacker-"+spoof.String(), pos, band, channel)
	a.Radio.SetHandler(a.onReceive)
	return a
}

// Sched exposes the simulation scheduler for drivers built on top.
func (a *Attacker) Sched() *eventsim.Scheduler { return a.sched }

// OnFrame registers a monitor-mode callback invoked for every
// correctly received frame.
func (a *Attacker) OnFrame(h func(f dot11.Frame, rx radio.Reception)) {
	a.handlers = append(a.handlers, h)
}

// OnCorrupt registers a callback for receptions that failed the FCS
// check. A real monitor-mode capture sees these as phy errors; the
// verifier uses them to tell "nothing answered" (silent) apart from
// "something answered but was mangled in flight" (inconclusive).
func (a *Attacker) OnCorrupt(h func(rx radio.Reception)) {
	a.corruptHandlers = append(a.corruptHandlers, h)
}

// RetainFrames makes every OnFrame callback receive a freshly
// allocated frame it may keep indefinitely. By default frames are
// decoded into pooled structs that are only valid for the duration of
// the callback — consumers that hand frames to another goroutine (the
// concurrent scanner's sniffer ring) must opt out of pooling.
func (a *Attacker) RetainFrames() { a.retainFrames = true }

func (a *Attacker) onReceive(rx radio.Reception) {
	if !rx.FCSOK {
		a.FCSErrors++
		for _, h := range a.corruptHandlers {
			h(rx)
		}
		return
	}
	var (
		f   dot11.Frame
		err error
	)
	if a.retainFrames {
		f, err = dot11.Decode(rx.Data)
	} else {
		f, err = a.dec.Decode(rx.Data)
	}
	if err != nil {
		return
	}
	a.FramesSeen++
	switch ff := f.(type) {
	case *dot11.Ack:
		if ff.RA == a.MAC {
			a.AcksToMe++
		}
	case *dot11.CTS:
		if ff.RA == a.MAC {
			a.CTSToMe++
		}
	case *dot11.Deauth:
		if ff.Addr1 == a.MAC {
			a.DeauthsForMe++
		}
	}
	for _, h := range a.handlers {
		h(f, rx)
	}
}

func (a *Attacker) nextSeq() uint16 {
	a.seq = dot11.NextSeq(a.seq)
	return a.seq
}

// InjectionRate is the PHY rate used for fake frames. 24 Mbps keeps
// the solicited ACKs at the 24 Mbps basic rate.
var InjectionRate = phy.Rate24

// Inject serializes and transmits an arbitrary frame, returning the
// time the transmission ends.
func (a *Attacker) Inject(f dot11.Frame) (eventsim.Time, error) {
	wire, err := dot11.AppendSerialize(a.wireScratch[:0], f)
	if err != nil {
		return 0, err
	}
	a.wireScratch = wire[:0]
	if a.Radio.Medium().Tracer() != nil {
		a.Radio.SetNextTxLabel("inject " + f.Control().Name())
	}
	end, err := a.Radio.Transmit(wire, a.Rate)
	if err != nil {
		a.InjectDrops++
		return 0, fmt.Errorf("core: inject: %w", err)
	}
	a.Injected++
	return end, nil
}

// InjectNull sends the paper's canonical fake frame: an unencrypted
// null-function data frame whose only valid field is the target's
// address. The frame struct is reused across injections — the medium
// copies the serialized bytes before Inject returns.
func (a *Attacker) InjectNull(target dot11.MAC) (eventsim.Time, error) {
	a.nullFrame = dot11.Data{
		Header: dot11.Header{
			Addr1: target, Addr2: a.MAC, Addr3: a.MAC,
			Seq: dot11.SequenceControl{Number: a.nextSeq()},
		},
		Null: true,
	}
	return a.Inject(&a.nullFrame)
}

// InjectRTS sends a fake request-to-send. Control frames cannot be
// protected, so the CTS response is unpreventable even in principle.
func (a *Attacker) InjectRTS(target dot11.MAC) (eventsim.Time, error) {
	// Duration/ID is a uint16 microsecond field; clamp in signed sim
	// time before narrowing (the dot11.CTSFor underflow lesson).
	us := (a.Radio.Band().SIFS() + phy.Airtime(phy.ControlRate(a.Rate), 14)) / eventsim.Microsecond * 2
	if us > 32767 {
		us = 32767
	}
	a.rtsFrame = dot11.RTS{
		RA:       target,
		TA:       a.MAC,
		Duration: uint16(us),
	}
	return a.Inject(&a.rtsFrame)
}

// InjectDeauth forges a deauthentication frame that claims to come
// from `from` (typically the victim's AP) — the classic
// deauthentication attack of Bellardo & Savage. Against an 802.11w
// (PMF) victim the forgery is discarded at the host; either way the
// victim's PHY acknowledges the frame.
func (a *Attacker) InjectDeauth(victim, from dot11.MAC) (eventsim.Time, error) {
	return a.Inject(&dot11.Deauth{
		Header: dot11.Header{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: victim, Addr2: from, Addr3: from,
			Seq: dot11.SequenceControl{Number: a.nextSeq()},
		},
		Reason: dot11.ReasonDeauthLeaving,
	})
}
