package core

// Verdict is the three-state outcome of probing one target. The
// paper's binary responded/not-responded split misclassifies lossy
// channels: a target whose ACK was corrupted, or that was never
// cleanly probed at all, is not evidence of a polite-WiFi-free
// device — it is an inconclusive measurement.
type Verdict int

// Probe verdicts.
const (
	// VerdictPending: the target has not been probed to completion.
	VerdictPending Verdict = iota
	// VerdictResponded: at least one SIFS-timed ACK was attributed to
	// a probe.
	VerdictResponded
	// VerdictSilent: the full probe budget was spent on a clean
	// channel and nothing came back — the honest "does not respond".
	VerdictSilent
	// VerdictInconclusive: the probe budget ran out without a clean
	// answer — corrupted receptions landed in attribution windows, the
	// channel was sensed busy or never freed for injection, or the
	// dwell ended before the budget was spent.
	VerdictInconclusive
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictResponded:
		return "responded"
	case VerdictSilent:
		return "silent"
	case VerdictInconclusive:
		return "inconclusive"
	}
	return "pending"
}
