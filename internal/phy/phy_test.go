package phy

import (
	"math"
	"testing"

	"politewifi/internal/eventsim"
)

func TestSIFS(t *testing.T) {
	// The paper: "10 µs and 16 µs for the 2.4 GHz and 5 GHz bands".
	if Band2GHz.SIFS() != 10*eventsim.Microsecond {
		t.Fatalf("2.4 GHz SIFS = %v, want 10µs", Band2GHz.SIFS())
	}
	if Band5GHz.SIFS() != 16*eventsim.Microsecond {
		t.Fatalf("5 GHz SIFS = %v, want 16µs", Band5GHz.SIFS())
	}
}

func TestDIFS(t *testing.T) {
	if got := Band5GHz.DIFS(); got != 34*eventsim.Microsecond {
		t.Fatalf("5 GHz DIFS = %v, want 34µs", got)
	}
	if got := Band2GHz.DIFS(); got != 50*eventsim.Microsecond {
		t.Fatalf("2.4 GHz DIFS = %v, want 50µs", got)
	}
}

func TestChannelFreq(t *testing.T) {
	cases := []struct {
		band Band
		ch   int
		want float64
	}{
		{Band2GHz, 1, 2412},
		{Band2GHz, 6, 2437},
		{Band2GHz, 11, 2462},
		{Band2GHz, 14, 2484},
		{Band5GHz, 36, 5180},
		{Band5GHz, 149, 5745},
	}
	for _, c := range cases {
		if got := ChannelFreqMHz(c.band, c.ch); got != c.want {
			t.Errorf("ChannelFreqMHz(%v,%d) = %v, want %v", c.band, c.ch, got, c.want)
		}
	}
}

func TestAirtimeOFDM(t *testing.T) {
	// 14-byte ACK at 24 Mbps: 16+8*14+6 = 134 bits, ceil(134/96)=2
	// symbols → 20 + 8 = 28 µs.
	if got := Airtime(Rate24, 14); got != 28*eventsim.Microsecond {
		t.Fatalf("ACK airtime at 24 Mbps = %v, want 28µs", got)
	}
	// Same ACK at 6 Mbps: ceil(134/24)=6 symbols → 20+24 = 44 µs.
	if got := Airtime(Rate6, 14); got != 44*eventsim.Microsecond {
		t.Fatalf("ACK airtime at 6 Mbps = %v, want 44µs", got)
	}
	// 1500-byte frame at 54 Mbps: 16+12000+6=12022 bits,
	// ceil(12022/216)=56 symbols → 20+224 = 244 µs.
	if got := Airtime(Rate54, 1500); got != 244*eventsim.Microsecond {
		t.Fatalf("1500B at 54 Mbps = %v, want 244µs", got)
	}
}

func TestAirtimeDSSS(t *testing.T) {
	// 14-byte ACK at 1 Mbps: 192 + 112 = 304 µs.
	if got := Airtime(Rate1, 14); got != 304*eventsim.Microsecond {
		t.Fatalf("DSSS ACK airtime = %v, want 304µs", got)
	}
	if got := Airtime(Rate11, 11); got != (192+8)*eventsim.Microsecond {
		t.Fatalf("11 Mbps airtime = %v", got)
	}
}

func TestAirtimeMonotonicInLength(t *testing.T) {
	for _, r := range OFDMRates {
		prev := eventsim.Time(0)
		for n := 0; n <= 2000; n += 100 {
			a := Airtime(r, n)
			if a < prev {
				t.Fatalf("airtime not monotonic for %v at %d bytes", r, n)
			}
			prev = a
		}
	}
}

func TestControlRate(t *testing.T) {
	cases := []struct {
		in, want Rate
	}{
		{Rate54, Rate24},
		{Rate48, Rate24},
		{Rate36, Rate24},
		{Rate24, Rate24},
		{Rate18, Rate12},
		{Rate12, Rate12},
		{Rate9, Rate6},
		{Rate6, Rate6},
		{Rate11, Rate2},
		{Rate1, Rate1},
	}
	for _, c := range cases {
		if got := ControlRate(c.in); got.Mbps != c.want.Mbps {
			t.Errorf("ControlRate(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNAV(t *testing.T) {
	// NAV for a 24 Mbps data frame on 2.4 GHz: SIFS(10) + ACK(28) = 38.
	if got := NAV(Band2GHz, Rate24); got != 38 {
		t.Fatalf("NAV = %d, want 38", got)
	}
	// RTS NAV covers CTS + data + ACK + 3 SIFS.
	nav := RTSNAV(Band2GHz, Rate24, 1500)
	want := uint16((3*10*eventsim.Microsecond + 28*eventsim.Microsecond + Airtime(Rate24, 1500) + 28*eventsim.Microsecond) / eventsim.Microsecond) //politevet:allow durwrap(expected-value fixture; every term is a small positive airtime, sum ≪ 65535µs)
	if nav != want {
		t.Fatalf("RTSNAV = %d, want %d", nav, want)
	}
}

func TestSubcarrierLayout(t *testing.T) {
	if SubcarrierIndex(0) != -26 {
		t.Fatalf("slot 0 index = %d, want -26", SubcarrierIndex(0))
	}
	if SubcarrierIndex(25) != -1 {
		t.Fatalf("slot 25 index = %d, want -1", SubcarrierIndex(25))
	}
	if SubcarrierIndex(26) != 1 {
		t.Fatalf("slot 26 index = %d, want +1 (DC skipped)", SubcarrierIndex(26))
	}
	if SubcarrierIndex(51) != 26 {
		t.Fatalf("slot 51 index = %d, want +26", SubcarrierIndex(51))
	}
	// All 52 indices distinct, none zero.
	seen := map[int]bool{}
	pilots := 0
	for s := 0; s < NumSubcarriers; s++ {
		idx := SubcarrierIndex(s)
		if idx == 0 {
			t.Fatal("DC subcarrier reported as occupied")
		}
		if seen[idx] {
			t.Fatalf("duplicate subcarrier index %d", idx)
		}
		seen[idx] = true
		if IsPilot(s) {
			pilots++
		}
	}
	if pilots != 4 {
		t.Fatalf("pilot count = %d, want 4", pilots)
	}
	if got := SubcarrierOffsetHz(26); got != 312500 {
		t.Fatalf("offset of +1 = %v", got)
	}
}

func TestSubcarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot did not panic")
		}
	}()
	SubcarrierIndex(52)
}

func TestBERMonotonicInSNR(t *testing.T) {
	for _, r := range OFDMRates {
		prev := 1.0
		for snr := -5.0; snr <= 40; snr += 1 {
			b := BER(r, snr)
			if b > prev+1e-12 {
				t.Fatalf("BER not nonincreasing for %v at %v dB", r, snr)
			}
			if b < 0 || b > 0.5+1e-9 {
				t.Fatalf("BER out of range: %v", b)
			}
			prev = b
		}
	}
}

func TestFERBounds(t *testing.T) {
	for _, r := range OFDMRates {
		for snr := -10.0; snr <= 50; snr += 5 {
			f := FER(r, snr, 1500)
			if f < 0 || f > 1 {
				t.Fatalf("FER out of [0,1]: %v", f)
			}
		}
		if FER(r, 50, 1500) > 1e-6 {
			t.Fatalf("FER at 50 dB should be ~0 for %v", r)
		}
		if FER(r, -10, 1500) < 0.99 {
			t.Fatalf("FER at -10 dB should be ~1 for %v", r)
		}
	}
}

func TestFERIncreasesWithLength(t *testing.T) {
	snr := MinSNR(Rate24)
	if FER(Rate24, snr, 100) > FER(Rate24, snr, 1500) {
		t.Fatal("FER should grow with frame length")
	}
}

func TestMinSNROrdering(t *testing.T) {
	// Faster rates need more SNR.
	prev := -math.MaxFloat64
	for _, r := range OFDMRates {
		m := MinSNR(r)
		if m < prev {
			t.Fatalf("MinSNR(%v) = %v < previous %v", r, m, prev)
		}
		prev = m
	}
}

func TestPickRate(t *testing.T) {
	if got := PickRate(50); got.Mbps != 54 {
		t.Fatalf("PickRate(50 dB) = %v, want 54", got)
	}
	if got := PickRate(-5); got.Mbps != 6 {
		t.Fatalf("PickRate(-5 dB) = %v, want 6", got)
	}
	// Monotone: more SNR never picks a slower rate.
	prev := 0.0
	for snr := -5.0; snr <= 45; snr++ {
		r := PickRate(snr)
		if r.Mbps < prev {
			t.Fatalf("PickRate not monotone at %v dB", snr)
		}
		prev = r.Mbps
	}
}

func TestSNRFromRSSI(t *testing.T) {
	if got := SNRFromRSSI(-64); got != 30 {
		t.Fatalf("SNRFromRSSI(-64) = %v, want 30", got)
	}
}

func TestBandString(t *testing.T) {
	if Band2GHz.String() != "2.4 GHz" || Band5GHz.String() != "5 GHz" {
		t.Fatal("band strings wrong")
	}
	if Rate54.String() != "54 Mbps" || Rate5x5.String() != "5.5 Mbps" {
		t.Fatal("rate strings wrong")
	}
}

func BenchmarkAirtime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Airtime(Rate24, 1500)
	}
}

func BenchmarkFER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		FER(Rate54, 25, 1500)
	}
}
