// Package phy models the IEEE 802.11 physical layer as needed by the
// simulator: bands and their interframe spacings, legacy OFDM and
// DSSS rate sets, preamble and airtime computation, the OFDM
// subcarrier layout used for CSI, and SNR→BER→FER link curves.
//
// The timing constants here carry the paper's central argument: an
// ACK must start one SIFS (10 µs at 2.4 GHz, 16 µs at 5 GHz) after
// the soliciting frame ends, while WPA2 frame decoding takes
// 200–700 µs, so a receiver cannot validate a frame before
// acknowledging it.
package phy

import (
	"fmt"
	"math"

	"politewifi/internal/eventsim"
)

// Band is a radio frequency band.
type Band int

// Supported bands.
const (
	Band2GHz Band = iota
	Band5GHz
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case Band2GHz:
		return "2.4 GHz"
	case Band5GHz:
		return "5 GHz"
	}
	return fmt.Sprintf("Band(%d)", int(b))
}

// SIFS returns the short interframe space for the band: the hard
// deadline by which a receiver must begin its ACK (802.11-2016
// Table 17-21 / 19-25).
func (b Band) SIFS() eventsim.Time {
	switch b {
	case Band5GHz:
		return 16 * eventsim.Microsecond
	default:
		return 10 * eventsim.Microsecond
	}
}

// SlotTime returns the band's slot duration.
func (b Band) SlotTime() eventsim.Time {
	switch b {
	case Band5GHz:
		return 9 * eventsim.Microsecond
	default:
		return 20 * eventsim.Microsecond // long slot for 11b compatibility
	}
}

// DIFS is the DCF interframe space: SIFS plus two slots.
func (b Band) DIFS() eventsim.Time {
	return b.SIFS() + 2*b.SlotTime()
}

// ChannelFreqMHz maps a channel number in the band to its center
// frequency in MHz.
func ChannelFreqMHz(b Band, channel int) float64 {
	switch b {
	case Band5GHz:
		return 5000 + 5*float64(channel)
	default:
		if channel == 14 {
			return 2484
		}
		return 2407 + 5*float64(channel)
	}
}

// Modulation identifies the constellation of a rate.
type Modulation int

// Modulations used by legacy 802.11a/g rates.
const (
	ModDSSS Modulation = iota // DBPSK/DQPSK/CCK family
	ModBPSK
	ModQPSK
	Mod16QAM
	Mod64QAM
)

// Rate describes one PHY rate.
type Rate struct {
	Mbps  float64
	Mod   Modulation
	NDBPS int  // data bits per OFDM symbol (0 for DSSS)
	Basic bool // member of the basic (mandatory) rate set
	HT    bool // 802.11n HT (MCS) rate: longer preamble, denser NDBPS
}

// Legacy OFDM rates (802.11a/g). ACKs and CTSs are transmitted from
// this set — the paper uses an ESP32 precisely because ACKs arrive at
// these legacy rates.
var (
	Rate6  = Rate{6, ModBPSK, 24, true, false}
	Rate9  = Rate{9, ModBPSK, 36, false, false}
	Rate12 = Rate{12, ModQPSK, 48, true, false}
	Rate18 = Rate{18, ModQPSK, 72, false, false}
	Rate24 = Rate{24, Mod16QAM, 96, true, false}
	Rate36 = Rate{36, Mod16QAM, 144, false, false}
	Rate48 = Rate{48, Mod64QAM, 192, false, false}
	Rate54 = Rate{54, Mod64QAM, 216, false, false}

	// DSSS rates (802.11b).
	Rate1   = Rate{1, ModDSSS, 0, true, false}
	Rate2   = Rate{2, ModDSSS, 0, true, false}
	Rate5x5 = Rate{5.5, ModDSSS, 0, false, false}
	Rate11  = Rate{11, ModDSSS, 0, false, false}
)

// OFDMRates is the 802.11a/g rate set in increasing order.
var OFDMRates = []Rate{Rate6, Rate9, Rate12, Rate18, Rate24, Rate36, Rate48, Rate54}

// HT (802.11n) single-stream MCS rates, 20 MHz, long guard interval.
// ACKs never use these — control responses drop to the legacy basic
// set, which is why the paper's ESP32 could capture them.
var htRates = []Rate{
	{6.5, ModBPSK, 26, false, true},    // MCS 0
	{13, ModQPSK, 52, false, true},     // MCS 1
	{19.5, ModQPSK, 78, false, true},   // MCS 2
	{26, Mod16QAM, 104, false, true},   // MCS 3
	{39, Mod16QAM, 156, false, true},   // MCS 4
	{52, Mod64QAM, 208, false, true},   // MCS 5
	{58.5, Mod64QAM, 234, false, true}, // MCS 6
	{65, Mod64QAM, 260, false, true},   // MCS 7
}

// HTRate returns the 802.11n single-stream rate for an MCS index
// (0–7).
func HTRate(mcs int) Rate {
	if mcs < 0 || mcs >= len(htRates) {
		panic(fmt.Sprintf("phy: MCS %d out of range", mcs))
	}
	return htRates[mcs]
}

// String implements fmt.Stringer.
func (r Rate) String() string { return fmt.Sprintf("%g Mbps", r.Mbps) }

// IsOFDM reports whether the rate uses the OFDM PHY.
func (r Rate) IsOFDM() bool { return r.Mod != ModDSSS }

// OFDM timing constants (802.11-2016 §17 / §19).
const (
	ofdmPreamble    = 16 * eventsim.Microsecond // short+long training
	ofdmSignal      = 4 * eventsim.Microsecond  // SIGNAL field
	ofdmSymbol      = 4 * eventsim.Microsecond
	ofdmServiceBits = 16
	ofdmTailBits    = 6
	// htPreambleExtra: HT-SIG (8 µs) + HT-STF (4 µs) + one HT-LTF
	// (4 µs) in mixed-mode on top of the legacy preamble.
	htPreambleExtra = 16 * eventsim.Microsecond
)

// Airtime reports the duration of a PPDU carrying length bytes
// (MPDU including FCS) at rate r.
func Airtime(r Rate, length int) eventsim.Time {
	if r.IsOFDM() {
		bits := ofdmServiceBits + 8*length + ofdmTailBits
		symbols := (bits + r.NDBPS - 1) / r.NDBPS
		air := ofdmPreamble + ofdmSignal + eventsim.Time(symbols)*ofdmSymbol
		if r.HT {
			air += htPreambleExtra
		}
		return air
	}
	// DSSS with long preamble: 144 µs preamble + 48 µs PLCP header.
	const dsssPLCP = 192 * eventsim.Microsecond
	us := float64(8*length) / r.Mbps
	return dsssPLCP + eventsim.Time(math.Ceil(us))*eventsim.Microsecond
}

// ControlRate returns the rate at which a control response (ACK/CTS)
// to a frame received at rate r is sent: the highest basic rate not
// exceeding r (802.11-2016 §10.6.6.5). HT frames are answered from
// the legacy basic set.
func ControlRate(r Rate) Rate {
	if r.HT {
		best := Rate6
		for _, c := range OFDMRates {
			if c.Basic && c.Mbps <= r.Mbps {
				best = c
			}
		}
		return best
	}
	if !r.IsOFDM() {
		if r.Mbps >= 2 {
			return Rate2
		}
		return Rate1
	}
	best := Rate6
	for _, c := range OFDMRates {
		if c.Basic && c.Mbps <= r.Mbps {
			best = c
		}
	}
	return best
}

// AckDuration is the airtime of a 14-byte ACK at the control rate for
// a frame sent at rate r.
func AckDuration(r Rate) eventsim.Time {
	return Airtime(ControlRate(r), 14)
}

// NAV computes the Duration/ID value (microseconds, capped at 32767)
// for a data frame at rate r: one SIFS plus the responding ACK.
func NAV(band Band, r Rate) uint16 {
	d := band.SIFS() + AckDuration(r)
	us := d / eventsim.Microsecond
	if us > 32767 {
		us = 32767
	}
	return uint16(us)
}

// RTSNAV computes the Duration value for an RTS protecting a data
// frame of length bytes at rate r: 3×SIFS + CTS + DATA + ACK.
func RTSNAV(band Band, r Rate, length int) uint16 {
	ctl := ControlRate(r)
	d := 3*band.SIFS() + Airtime(ctl, 14) + Airtime(r, length) + Airtime(ctl, 14)
	us := d / eventsim.Microsecond
	if us > 32767 {
		us = 32767
	}
	return uint16(us)
}

// --- OFDM subcarrier layout (for CSI) -------------------------------

// NumSubcarriers is the number of occupied subcarriers in a legacy
// 20 MHz OFDM symbol (52 = 48 data + 4 pilots). ESP32-style CSI
// reports one complex value per occupied subcarrier.
const NumSubcarriers = 52

// SubcarrierSpacingHz is the OFDM subcarrier spacing (20 MHz / 64).
const SubcarrierSpacingHz = 312_500.0

// SubcarrierIndex maps a 0-based CSI slot (0..51) to the signed
// subcarrier index (-26..-1, +1..+26), skipping DC.
func SubcarrierIndex(slot int) int {
	if slot < 0 || slot >= NumSubcarriers {
		panic(fmt.Sprintf("phy: subcarrier slot %d out of range", slot))
	}
	if slot < 26 {
		return slot - 26
	}
	return slot - 25
}

// SubcarrierOffsetHz returns the frequency offset of a CSI slot from
// the channel center.
func SubcarrierOffsetHz(slot int) float64 {
	return float64(SubcarrierIndex(slot)) * SubcarrierSpacingHz
}

// IsPilot reports whether the CSI slot carries a pilot tone
// (subcarriers ±7 and ±21).
func IsPilot(slot int) bool {
	switch SubcarrierIndex(slot) {
	case -21, -7, 7, 21:
		return true
	}
	return false
}

// --- Link curves ------------------------------------------------------

// NoiseFloorDBm is the receiver noise floor for a 20 MHz channel:
// thermal noise (-174 dBm/Hz + 10·log10(20 MHz) ≈ -101 dBm) plus a
// 7 dB receiver noise figure.
const NoiseFloorDBm = -94.0

// SNRFromRSSI converts a received signal strength to an SNR in dB.
func SNRFromRSSI(rssiDBm float64) float64 { return rssiDBm - NoiseFloorDBm }

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// BER returns the approximate coded bit error rate at the given SNR
// (dB) for the rate's modulation. The formulas are the standard AWGN
// uncoded expressions with an effective coding gain folded in; they
// produce the familiar waterfall shape that places the 6 Mbps
// sensitivity near -92 dBm and 54 Mbps near -74 dBm.
func BER(r Rate, snrDB float64) float64 {
	snr := math.Pow(10, snrDB/10)
	// Effective coding gain (dB) by code rate.
	var gain float64
	switch r.Mbps {
	case 6, 12, 24:
		gain = 4.0 // rate 1/2
	case 9, 18, 36, 48:
		gain = 3.0 // rate 3/4 (48 uses 2/3)
	case 54:
		gain = 2.5
	default:
		gain = 0
	}
	snr *= math.Pow(10, gain/10)
	switch r.Mod {
	case ModDSSS, ModBPSK:
		return qfunc(math.Sqrt(2 * snr))
	case ModQPSK:
		return qfunc(math.Sqrt(snr))
	case Mod16QAM:
		return 0.75 * qfunc(math.Sqrt(snr/5))
	case Mod64QAM:
		return 7.0 / 12 * qfunc(math.Sqrt(snr/21))
	}
	return 0.5
}

// FER returns the frame error rate for a frame of length bytes at the
// given SNR, assuming independent bit errors.
func FER(r Rate, snrDB float64, length int) float64 {
	ber := BER(r, snrDB)
	if ber <= 0 {
		return 0
	}
	if ber >= 0.5 {
		return 1
	}
	fer := 1 - math.Pow(1-ber, float64(8*length))
	if fer < 0 {
		return 0
	}
	if fer > 1 {
		return 1
	}
	return fer
}

// MinSNR returns the SNR (dB) at which the rate achieves a 10% FER
// for a 1000-byte frame; used for rate selection.
func MinSNR(r Rate) float64 {
	lo, hi := -10.0, 40.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if FER(r, mid, 1000) > 0.1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// PickRate selects the fastest OFDM rate whose 10% FER threshold the
// SNR clears, falling back to 6 Mbps.
func PickRate(snrDB float64) Rate {
	best := Rate6
	for _, r := range OFDMRates {
		if snrDB >= MinSNR(r)+3 { // 3 dB margin
			best = r
		}
	}
	return best
}
