package crypto80211

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"

	"politewifi/internal/dot11"
)

// PBKDF2 derives keyLen bytes from the password and salt using
// HMAC-SHA1, as WPA2 does for the pairwise master key
// (PMK = PBKDF2(passphrase, ssid, 4096, 32)).
func PBKDF2(password, salt []byte, iter, keyLen int) []byte {
	// One keyed HMAC for the whole derivation: Reset restores the
	// keyed state and Sum appends into a reused buffer, so the 4096
	// iterations per block run without per-iteration allocation.
	h := hmac.New(sha1.New, password)
	hLen := h.Size()
	numBlocks := (keyLen + hLen - 1) / hLen
	dk := make([]byte, 0, numBlocks*hLen)
	u := make([]byte, 0, hLen)
	for block := 1; block <= numBlocks; block++ {
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(block))
		h.Reset()
		h.Write(salt)
		h.Write(idx[:])
		u = h.Sum(u[:0])
		dk = append(dk, u...)
		t := dk[len(dk)-hLen:]
		for i := 1; i < iter; i++ {
			h.Reset()
			h.Write(u)
			u = h.Sum(u[:0])
			for j := range t {
				t[j] ^= u[j]
			}
		}
	}
	return dk[:keyLen]
}

// PMK derives the pairwise master key from a WPA2-Personal
// passphrase and SSID.
func PMK(passphrase, ssid string) []byte {
	return PBKDF2([]byte(passphrase), []byte(ssid), 4096, 32)
}

// PRF implements the IEEE 802.11 PRF-n (HMAC-SHA1 based) used for
// pairwise key expansion. label is a NUL-terminated application
// label; n is the number of output bytes.
func PRF(key []byte, label string, data []byte, n int) []byte {
	var out []byte
	for i := byte(0); len(out) < n; i++ {
		h := hmac.New(sha1.New, key)
		h.Write([]byte(label))
		h.Write([]byte{0})
		h.Write(data)
		h.Write([]byte{i})
		out = h.Sum(out)
	}
	return out[:n]
}

// PTK derives the 48-byte pairwise transient key (KCK||KEK||TK) from
// the PMK, the two MAC addresses, and the two handshake nonces.
func PTK(pmk []byte, aa, spa dot11.MAC, anonce, snonce []byte) []byte {
	minMAC, maxMAC := aa, spa
	if bytes.Compare(spa[:], aa[:]) < 0 {
		minMAC, maxMAC = spa, aa
	}
	minN, maxN := anonce, snonce
	if bytes.Compare(snonce, anonce) < 0 {
		minN, maxN = snonce, anonce
	}
	data := make([]byte, 0, 12+len(minN)+len(maxN))
	data = append(data, minMAC[:]...)
	data = append(data, maxMAC[:]...)
	data = append(data, minN...)
	data = append(data, maxN...)
	return PRF(pmk, "Pairwise key expansion", data, 48)
}

// TKFromPTK extracts the 16-byte temporal key (bytes 32..48) used by
// CCMP from a 48-byte PTK.
func TKFromPTK(ptk []byte) []byte { return ptk[32:48] }

// Handshake performs the simulator's condensed 4-way handshake: given
// a shared PMK, the authenticator and supplicant addresses, and two
// nonces, both sides arrive at the same CCMP session keys. It returns
// one Session per direction seeded with the same TK, mirroring how a
// real PTK protects both directions of the link.
func Handshake(pmk []byte, ap, sta dot11.MAC, anonce, snonce []byte) (apSess, staSess *Session, err error) {
	ptk := PTK(pmk, ap, sta, anonce, snonce)
	tk := TKFromPTK(ptk)
	apSess, err = NewSession(tk)
	if err != nil {
		return nil, nil, err
	}
	staSess, err = NewSession(tk)
	if err != nil {
		return nil, nil, err
	}
	return apSess, staSess, nil
}
