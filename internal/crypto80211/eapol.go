package crypto80211

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
)

// The 4-way handshake (802.11-2016 §12.7.6), carried in EAPOL-Key
// frames over unencrypted data frames:
//
//	M1  AP → STA   ANonce
//	M2  STA → AP   SNonce, MIC(KCK)
//	M3  AP → STA   install, MIC(KCK)
//	M4  STA → AP   MIC(KCK)
//
// Both sides derive PTK = PRF-384(PMK, AA, SPA, ANonce, SNonce); the
// key confirmation key (KCK, PTK[0:16]) authenticates M2–M4 and the
// temporal key (PTK[32:48]) keys CCMP. The key descriptor here is a
// compact subset of the real one (no GTK distribution, no key-info
// bitfield beyond the message number) — the cryptography is the real
// thing, which is what the experiments need: an attacker without the
// PMK cannot produce a MIC that verifies.

// EAPOLEtherType marks a data-frame payload as an EAPOL-Key message.
var EAPOLEtherType = []byte{0x88, 0x8e}

// NonceLen32 is the handshake nonce length.
const NonceLen32 = 32

// EAPOLMICLen is the HMAC-SHA1-128 MIC length.
const EAPOLMICLen = 16

// EAPOLKey is the simplified key descriptor.
type EAPOLKey struct {
	MsgNum        uint8 // 1..4
	ReplayCounter uint64
	Nonce         [NonceLen32]byte
	MIC           [EAPOLMICLen]byte
}

// eapolWireLen is the marshalled length.
const eapolWireLen = 2 + 1 + 8 + NonceLen32 + EAPOLMICLen

// Marshal encodes the message.
func (k *EAPOLKey) Marshal() []byte {
	out := make([]byte, eapolWireLen)
	copy(out, EAPOLEtherType)
	out[2] = k.MsgNum
	binary.BigEndian.PutUint64(out[3:], k.ReplayCounter)
	copy(out[11:], k.Nonce[:])
	copy(out[11+NonceLen32:], k.MIC[:])
	return out
}

// IsEAPOL reports whether a data payload carries an EAPOL-Key frame.
func IsEAPOL(payload []byte) bool {
	return len(payload) >= 2 && bytes.Equal(payload[:2], EAPOLEtherType)
}

// ErrEAPOL is returned for malformed or unauthentic handshake
// messages.
var ErrEAPOL = errors.New("crypto80211: invalid EAPOL-Key message")

// ParseEAPOLKey decodes a key message.
func ParseEAPOLKey(payload []byte) (*EAPOLKey, error) {
	if len(payload) != eapolWireLen || !IsEAPOL(payload) {
		return nil, ErrEAPOL
	}
	k := &EAPOLKey{
		MsgNum:        payload[2],
		ReplayCounter: binary.BigEndian.Uint64(payload[3:]),
	}
	copy(k.Nonce[:], payload[11:])
	copy(k.MIC[:], payload[11+NonceLen32:])
	if k.MsgNum < 1 || k.MsgNum > 4 {
		return nil, fmt.Errorf("%w: message %d", ErrEAPOL, k.MsgNum)
	}
	return k, nil
}

// computeMIC computes HMAC-SHA1-128 over the message with its MIC
// field zeroed, keyed by the KCK.
func computeMIC(kck []byte, k *EAPOLKey) [EAPOLMICLen]byte {
	cp := *k
	cp.MIC = [EAPOLMICLen]byte{}
	h := hmac.New(sha1.New, kck)
	h.Write(cp.Marshal())
	var mic [EAPOLMICLen]byte
	copy(mic[:], h.Sum(nil))
	return mic
}

// Sign fills in the message MIC under the key confirmation key.
func (k *EAPOLKey) Sign(kck []byte) {
	k.MIC = computeMIC(kck, k)
}

// Verify checks the message MIC.
func (k *EAPOLKey) Verify(kck []byte) bool {
	want := computeMIC(kck, k)
	return hmac.Equal(want[:], k.MIC[:])
}

// KCKFromPTK extracts the 16-byte key confirmation key.
func KCKFromPTK(ptk []byte) []byte { return ptk[0:16] }
