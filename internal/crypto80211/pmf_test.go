package crypto80211

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"politewifi/internal/dot11"
)

// RFC 4493 AES-CMAC test vectors.
func TestCMACVectors(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	msg := unhex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		n    int
		want string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	for _, c := range cases {
		got, err := CMAC(key, msg[:c.n])
		if err != nil {
			t.Fatal(err)
		}
		if hex.EncodeToString(got) != c.want {
			t.Errorf("CMAC(len %d) = %x, want %s", c.n, got, c.want)
		}
	}
}

func TestCMACBadKey(t *testing.T) {
	if _, err := CMAC(make([]byte, 5), nil); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestBIPProtectVerify(t *testing.T) {
	igtk := bytes.Repeat([]byte{0x5a}, 16)
	aad := []byte("mgmt-aad")
	body := []byte("broadcast deauth body")
	mic, err := BIPProtect(igtk, aad, body, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(mic) != BIPMICLen {
		t.Fatalf("MIC length = %d", len(mic))
	}
	if err := BIPVerify(igtk, aad, body, 7, mic); err != nil {
		t.Fatal(err)
	}
	// Any field change breaks it.
	if BIPVerify(igtk, aad, body, 8, mic) == nil {
		t.Fatal("IPN change accepted")
	}
	if BIPVerify(igtk, []byte("mgmt-aaD"), body, 7, mic) == nil {
		t.Fatal("AAD change accepted")
	}
	bad := append([]byte(nil), body...)
	bad[0] ^= 1
	if BIPVerify(igtk, aad, bad, 7, mic) == nil {
		t.Fatal("body change accepted")
	}
	other := bytes.Repeat([]byte{0x11}, 16)
	if BIPVerify(other, aad, body, 7, mic) == nil {
		t.Fatal("wrong IGTK accepted")
	}
}

// Property: BIP round-trips for arbitrary inputs.
func TestBIPRoundTripProperty(t *testing.T) {
	igtk := bytes.Repeat([]byte{9}, 16)
	f := func(aad, body []byte, ipn uint64) bool {
		mic, err := BIPProtect(igtk, aad, body, ipn)
		if err != nil {
			return false
		}
		return BIPVerify(igtk, aad, body, ipn, mic) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func newDeauth() *dot11.Deauth {
	return &dot11.Deauth{
		Header: dot11.Header{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: staMAC, Addr2: apMAC, Addr3: apMAC,
			Seq: dot11.SequenceControl{Number: 77},
		},
		Reason: dot11.ReasonDeauthLeaving,
	}
}

func TestProtectedDeauthRoundTrip(t *testing.T) {
	tx, rx := newPair(t)
	d := newDeauth()
	if err := tx.EncryptDeauth(d); err != nil {
		t.Fatal(err)
	}
	if !d.FC.Protected || len(d.ProtectedBody) == 0 {
		t.Fatal("deauth not protected")
	}
	// Wire round trip.
	wire, err := dot11.Serialize(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dot11.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	gd := got.(*dot11.Deauth)
	if err := rx.DecryptDeauth(gd); err != nil {
		t.Fatal(err)
	}
	if gd.Reason != dot11.ReasonDeauthLeaving {
		t.Fatalf("reason = %v", gd.Reason)
	}
}

func TestProtectedDeauthForgeryRejected(t *testing.T) {
	_, rx := newPair(t)
	attacker, _ := NewSession(bytes.Repeat([]byte{0xAA}, 16))
	d := newDeauth()
	if err := attacker.EncryptDeauth(d); err != nil {
		t.Fatal(err)
	}
	if err := rx.DecryptDeauth(d); err != ErrAuth {
		t.Fatalf("forged protected deauth err = %v, want ErrAuth", err)
	}
	// Unprotected deauth is rejected outright by the decrypt path.
	plain := newDeauth()
	if err := rx.DecryptDeauth(plain); err == nil {
		t.Fatal("unprotected deauth decrypted")
	}
}

func TestProtectedDeauthReplayRejected(t *testing.T) {
	tx, rx := newPair(t)
	d := newDeauth()
	if err := tx.EncryptDeauth(d); err != nil {
		t.Fatal(err)
	}
	replay := *d
	replay.ProtectedBody = append([]byte(nil), d.ProtectedBody...)
	if err := rx.DecryptDeauth(d); err != nil {
		t.Fatal(err)
	}
	if err := rx.DecryptDeauth(&replay); err != ErrReplay {
		t.Fatalf("replay err = %v", err)
	}
}

func TestProtectedDeauthAddressBinding(t *testing.T) {
	tx, rx := newPair(t)
	d := newDeauth()
	if err := tx.EncryptDeauth(d); err != nil {
		t.Fatal(err)
	}
	d.Addr3 = dot11.MustMAC("00:11:22:33:44:55")
	if err := rx.DecryptDeauth(d); err != ErrAuth {
		t.Fatalf("address-modified deauth err = %v, want ErrAuth", err)
	}
}

// Management and data nonces never collide even with equal PNs,
// thanks to the priority byte.
func TestMgmtDataNonceSeparation(t *testing.T) {
	n1 := buildNonce(0, apMAC, 42)
	n2 := buildNonce(mgmtNoncePriority, apMAC, 42)
	if n1 == n2 {
		t.Fatal("mgmt and data nonces collide")
	}
}
