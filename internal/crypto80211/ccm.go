// Package crypto80211 implements the WPA2 (RSN) data-confidentiality
// machinery the simulator needs: AES-CCM (RFC 3610) built on the
// standard library's AES block cipher, the CCMP frame encapsulation
// of 802.11-2016 §12.5.3, the PBKDF2/PRF-384 key hierarchy, and a
// decode-latency model used for the paper's §2.2 argument that frame
// validation cannot fit inside a SIFS.
package crypto80211

import (
	"crypto/aes"
	"crypto/subtle"
	"errors"
	"fmt"
)

// CCM parameters used by CCMP-128.
const (
	ccmBlockSize = 16
	// MICLen is the CCMP-128 message integrity code length (M = 8).
	MICLen = 8
	// NonceLen is the CCMP nonce length (15 - L with L = 2).
	NonceLen = 13
)

// ErrAuth is returned when the MIC does not verify — the frame was
// forged or corrupted.
var ErrAuth = errors.New("crypto80211: message authentication failed")

// ccm holds a keyed CCM instance.
type ccm struct {
	enc func(dst, src []byte)
}

func newCCM(key []byte) (*ccm, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto80211: %w", err)
	}
	return &ccm{enc: block.Encrypt}, nil
}

// b0 builds the first authentication block.
func b0(nonce []byte, adata bool, plainLen int) [ccmBlockSize]byte {
	var b [ccmBlockSize]byte
	flags := byte((MICLen - 2) / 2 << 3) // M' field
	flags |= 0x01                        // L' = L-1 = 1
	if adata {
		flags |= 0x40
	}
	b[0] = flags
	copy(b[1:14], nonce)
	b[14] = byte(plainLen >> 8)
	b[15] = byte(plainLen)
	return b
}

// ctrBlock builds the i-th counter block.
func ctrBlock(nonce []byte, i uint16) [ccmBlockSize]byte {
	var a [ccmBlockSize]byte
	a[0] = 0x01 // L' = 1
	copy(a[1:14], nonce)
	a[14] = byte(i >> 8)
	a[15] = byte(i)
	return a
}

// cbcMAC computes the CCM authentication tag state over the AAD and
// plaintext.
func (c *ccm) cbcMAC(nonce, aad, plaintext []byte) [ccmBlockSize]byte {
	var x [ccmBlockSize]byte
	b := b0(nonce, len(aad) > 0, len(plaintext))
	c.enc(x[:], b[:])

	if len(aad) > 0 {
		// AAD length encoding for len < 2^16-2^8: two bytes.
		var block [ccmBlockSize]byte
		block[0] = byte(len(aad) >> 8)
		block[1] = byte(len(aad))
		n := copy(block[2:], aad)
		for i := range block {
			block[i] ^= x[i]
		}
		c.enc(x[:], block[:])
		aad = aad[n:]
		for len(aad) > 0 {
			var blk [ccmBlockSize]byte
			n := copy(blk[:], aad)
			aad = aad[n:]
			for i := range blk {
				blk[i] ^= x[i]
			}
			c.enc(x[:], blk[:])
		}
	}

	for len(plaintext) > 0 {
		var blk [ccmBlockSize]byte
		n := copy(blk[:], plaintext)
		plaintext = plaintext[n:]
		for i := range blk {
			blk[i] ^= x[i]
		}
		c.enc(x[:], blk[:])
	}
	return x
}

// ctrXOR applies CCM counter-mode keystream (counters starting at 1)
// to data in place.
func (c *ccm) ctrXOR(nonce []byte, data []byte) {
	var ks [ccmBlockSize]byte
	for i := 0; len(data) > 0; i++ {
		a := ctrBlock(nonce, uint16(i+1))
		c.enc(ks[:], a[:])
		n := len(data)
		if n > ccmBlockSize {
			n = ccmBlockSize
		}
		for j := 0; j < n; j++ {
			data[j] ^= ks[j]
		}
		data = data[n:]
	}
}

// micFromState encrypts the CBC-MAC state with counter block 0.
func (c *ccm) micFromState(nonce []byte, x [ccmBlockSize]byte) [MICLen]byte {
	var s0 [ccmBlockSize]byte
	a0 := ctrBlock(nonce, 0)
	c.enc(s0[:], a0[:])
	var mic [MICLen]byte
	for i := 0; i < MICLen; i++ {
		mic[i] = x[i] ^ s0[i]
	}
	return mic
}

// SealCCM encrypts and authenticates plaintext with the 16-byte key,
// 13-byte nonce and additional authenticated data, returning
// ciphertext||MIC.
func SealCCM(key, nonce, plaintext, aad []byte) ([]byte, error) {
	if len(nonce) != NonceLen {
		return nil, fmt.Errorf("crypto80211: nonce must be %d bytes, got %d", NonceLen, len(nonce))
	}
	c, err := newCCM(key)
	if err != nil {
		return nil, err
	}
	x := c.cbcMAC(nonce, aad, plaintext)
	mic := c.micFromState(nonce, x)
	out := make([]byte, len(plaintext)+MICLen)
	copy(out, plaintext)
	c.ctrXOR(nonce, out[:len(plaintext)])
	copy(out[len(plaintext):], mic[:])
	return out, nil
}

// OpenCCM decrypts and verifies ciphertext||MIC, returning the
// plaintext or ErrAuth.
func OpenCCM(key, nonce, sealed, aad []byte) ([]byte, error) {
	if len(nonce) != NonceLen {
		return nil, fmt.Errorf("crypto80211: nonce must be %d bytes, got %d", NonceLen, len(nonce))
	}
	if len(sealed) < MICLen {
		return nil, ErrAuth
	}
	c, err := newCCM(key)
	if err != nil {
		return nil, err
	}
	plaintext := make([]byte, len(sealed)-MICLen)
	copy(plaintext, sealed[:len(plaintext)])
	c.ctrXOR(nonce, plaintext)
	x := c.cbcMAC(nonce, aad, plaintext)
	want := c.micFromState(nonce, x)
	got := sealed[len(plaintext):]
	if subtle.ConstantTimeCompare(want[:], got) != 1 {
		return nil, ErrAuth
	}
	return plaintext, nil
}
