package crypto80211

import (
	"errors"

	"politewifi/internal/dot11"
)

// 802.11w (Protected Management Frames) support: unicast robust
// management frames (deauthentication, disassociation, action) are
// CCMP-protected under the pairwise key, exactly like data frames
// but with a management AAD. This defeats forged-deauth attacks —
// while leaving control frames, and therefore Polite WiFi, untouched
// (the paper's footnote 2).

// mgmtAAD builds the AAD for a robust management frame: frame
// control (management type), the three addresses, masked sequence
// control.
func mgmtAAD(fc dot11.FrameControl, a1, a2, a3 dot11.MAC) []byte {
	aad := make([]byte, 22)
	fc.Retry, fc.PowerMgmt, fc.MoreData = false, false, false
	fc.Protected = true
	v := fc.Uint16()
	aad[0] = byte(v)
	aad[1] = byte(v >> 8)
	copy(aad[2:8], a1[:])
	copy(aad[8:14], a2[:])
	copy(aad[14:20], a3[:])
	return aad
}

// mgmtNoncePriority marks management-frame nonces so they can never
// collide with data-frame nonces under the same PN space.
const mgmtNoncePriority = 0x10

// EncryptDeauth protects a deauthentication frame in place under the
// session's pairwise key (802.11w unicast robust management frame).
func (s *Session) EncryptDeauth(d *dot11.Deauth) error {
	s.txPN++
	pn := s.txPN
	d.FC.Protected = true
	fc := d.Control()
	nonce := buildNonce(mgmtNoncePriority, d.Addr2, pn)
	var reason [2]byte
	reason[0] = byte(d.Reason)
	reason[1] = byte(uint16(d.Reason) >> 8)
	sealed, err := SealCCM(s.tk[:], nonce[:], reason[:], mgmtAAD(fc, d.Addr1, d.Addr2, d.Addr3))
	if err != nil {
		return err
	}
	hdr := ccmpHeader(pn)
	body := make([]byte, 0, HeaderLen+len(sealed))
	body = append(body, hdr[:]...)
	body = append(body, sealed...)
	d.ProtectedBody = body
	return nil
}

// DecryptDeauth verifies and unwraps a protected deauthentication
// frame in place, recovering the reason code.
func (s *Session) DecryptDeauth(d *dot11.Deauth) error {
	if !d.FC.Protected {
		return errors.New("crypto80211: deauth not protected")
	}
	pn, err := parseCCMPHeader(d.ProtectedBody)
	if err != nil {
		return err
	}
	if s.hasRx && pn <= s.lastRx {
		return ErrReplay
	}
	fc := d.Control()
	nonce := buildNonce(mgmtNoncePriority, d.Addr2, pn)
	plain, err := OpenCCM(s.tk[:], nonce[:], d.ProtectedBody[HeaderLen:],
		mgmtAAD(fc, d.Addr1, d.Addr2, d.Addr3))
	if err != nil {
		return err
	}
	if len(plain) != 2 {
		return errors.New("crypto80211: bad deauth body length")
	}
	s.lastRx = pn
	s.hasRx = true
	d.Reason = dot11.ReasonCode(uint16(plain[0]) | uint16(plain[1])<<8)
	d.FC.Protected = false
	d.ProtectedBody = nil
	return nil
}
