package crypto80211

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"politewifi/internal/dot11"
	"politewifi/internal/eventsim"
	"politewifi/internal/phy"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// RFC 3610 packet vector #1 (M=8, L=2 — the CCMP parameters).
func TestCCMRFC3610Vector1(t *testing.T) {
	key := unhex(t, "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf")
	nonce := unhex(t, "00000003020100a0a1a2a3a4a5")
	aad := unhex(t, "0001020304050607")
	plaintext := unhex(t, "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e")
	want := unhex(t, "588c979a61c663d2f066d0c2c0f989806d5f6b61dac384"+"17e8d12cfdf926e0")

	sealed, err := SealCCM(key, nonce, plaintext, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sealed, want) {
		t.Fatalf("SealCCM:\n got %x\nwant %x", sealed, want)
	}
	got, err := OpenCCM(key, nonce, sealed, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Fatalf("OpenCCM round-trip failed: %x", got)
	}
}

// RFC 3610 packet vector #2.
func TestCCMRFC3610Vector2(t *testing.T) {
	key := unhex(t, "c0c1c2c3c4c5c6c7c8c9cacbcccdcecf")
	nonce := unhex(t, "00000004030201a0a1a2a3a4a5")
	aad := unhex(t, "0001020304050607")
	plaintext := unhex(t, "08090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	want := unhex(t, "72c91a36e135f8cf291ca894085c87e3cc15c439c9e43a3b"+"a091d56e10400916")

	sealed, err := SealCCM(key, nonce, plaintext, aad)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sealed, want) {
		t.Fatalf("SealCCM:\n got %x\nwant %x", sealed, want)
	}
}

func TestCCMTamperDetection(t *testing.T) {
	key := make([]byte, 16)
	nonce := make([]byte, NonceLen)
	plaintext := []byte("the quick brown fox jumps")
	aad := []byte("header")
	sealed, err := SealCCM(key, nonce, plaintext, aad)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sealed {
		bad := append([]byte(nil), sealed...)
		bad[i] ^= 0x80
		if _, err := OpenCCM(key, nonce, bad, aad); err == nil {
			t.Fatalf("tampered byte %d accepted", i)
		}
	}
	// Tampered AAD must also fail.
	if _, err := OpenCCM(key, nonce, sealed, []byte("headEr")); err == nil {
		t.Fatal("tampered AAD accepted")
	}
	// Truncated MIC.
	if _, err := OpenCCM(key, nonce, sealed[:MICLen-1], aad); err == nil {
		t.Fatal("truncated sealed accepted")
	}
}

func TestCCMBadParams(t *testing.T) {
	if _, err := SealCCM(make([]byte, 16), make([]byte, 5), nil, nil); err == nil {
		t.Fatal("short nonce accepted")
	}
	if _, err := SealCCM(make([]byte, 7), make([]byte, NonceLen), nil, nil); err == nil {
		t.Fatal("bad key size accepted")
	}
	if _, err := OpenCCM(make([]byte, 16), make([]byte, 5), make([]byte, 8), nil); err == nil {
		t.Fatal("short nonce accepted by Open")
	}
}

// Property: CCM round-trips arbitrary payloads and AADs.
func TestCCMRoundTripProperty(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	f := func(plaintext, aad []byte, pn uint32) bool {
		if len(aad) > 1000 {
			aad = aad[:1000]
		}
		nonce := make([]byte, NonceLen)
		nonce[9] = byte(pn >> 24)
		nonce[10] = byte(pn >> 16)
		nonce[11] = byte(pn >> 8)
		nonce[12] = byte(pn)
		sealed, err := SealCCM(key, nonce, plaintext, aad)
		if err != nil {
			return false
		}
		got, err := OpenCCM(key, nonce, sealed, aad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

var (
	apMAC  = dot11.MustMAC("f2:6e:0b:00:00:01")
	staMAC = dot11.MustMAC("f2:6e:0b:12:34:56")
)

func newPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	pmk := PMK("correct horse battery", "HomeNet")
	a, b, err := Handshake(pmk, apMAC, staMAC, bytes.Repeat([]byte{1}, 32), bytes.Repeat([]byte{2}, 32))
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func protectedFrame(payload []byte) *dot11.Data {
	return &dot11.Data{
		Header: dot11.Header{
			FC:    dot11.FrameControl{ToDS: true},
			Addr1: apMAC, Addr2: staMAC, Addr3: apMAC,
			Seq: dot11.SequenceControl{Number: 10},
		},
		Payload: append([]byte(nil), payload...),
	}
}

func TestCCMPEncryptDecrypt(t *testing.T) {
	tx, rx := newPair(t)
	d := protectedFrame([]byte("secret application data"))
	if err := tx.Encrypt(d); err != nil {
		t.Fatal(err)
	}
	if !d.FC.Protected {
		t.Fatal("Protected flag not set")
	}
	if bytes.Contains(d.Payload, []byte("secret")) {
		t.Fatal("payload not encrypted")
	}
	if len(d.Payload) != HeaderLen+len("secret application data")+MICLen {
		t.Fatalf("encapsulated length = %d", len(d.Payload))
	}
	if err := rx.Decrypt(d); err != nil {
		t.Fatal(err)
	}
	if string(d.Payload) != "secret application data" {
		t.Fatalf("decrypted = %q", d.Payload)
	}
	if d.FC.Protected {
		t.Fatal("Protected flag not cleared")
	}
}

func TestCCMPSequencePNs(t *testing.T) {
	tx, rx := newPair(t)
	for i := 0; i < 5; i++ {
		d := protectedFrame([]byte("msg"))
		if err := tx.Encrypt(d); err != nil {
			t.Fatal(err)
		}
		if err := rx.Decrypt(d); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
}

func TestCCMPReplayDetection(t *testing.T) {
	tx, rx := newPair(t)
	d := protectedFrame([]byte("msg"))
	if err := tx.Encrypt(d); err != nil {
		t.Fatal(err)
	}
	replay := *d
	replay.Payload = append([]byte(nil), d.Payload...)
	if err := rx.Decrypt(d); err != nil {
		t.Fatal(err)
	}
	if err := rx.Decrypt(&replay); err != ErrReplay {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

func TestCCMPForgeryRejected(t *testing.T) {
	// An attacker without the TK cannot produce a frame the victim
	// accepts — this is the check that *cannot run* inside SIFS.
	_, rx := newPair(t)
	attacker, err := NewSession(bytes.Repeat([]byte{0xAA}, 16))
	if err != nil {
		t.Fatal(err)
	}
	d := protectedFrame([]byte("forged"))
	if err := attacker.Encrypt(d); err != nil {
		t.Fatal(err)
	}
	if err := rx.Decrypt(d); err != ErrAuth {
		t.Fatalf("forged frame err = %v, want ErrAuth", err)
	}
}

func TestCCMPHeaderBinding(t *testing.T) {
	// Flipping an address after encryption breaks the AAD binding.
	tx, rx := newPair(t)
	d := protectedFrame([]byte("bound"))
	if err := tx.Encrypt(d); err != nil {
		t.Fatal(err)
	}
	d.Addr3 = dot11.MustMAC("00:11:22:33:44:55")
	if err := rx.Decrypt(d); err != ErrAuth {
		t.Fatalf("address-modified frame err = %v, want ErrAuth", err)
	}
}

func TestCCMPNullFrameRejected(t *testing.T) {
	tx, _ := newPair(t)
	n := dot11.NewNullFrame(apMAC, staMAC, apMAC, 0)
	if err := tx.Encrypt(n); err == nil {
		t.Fatal("encrypting a null frame should fail")
	}
}

func TestCCMPUnprotectedRejected(t *testing.T) {
	_, rx := newPair(t)
	d := protectedFrame([]byte("plain"))
	if err := rx.Decrypt(d); err == nil {
		t.Fatal("unprotected frame decrypted")
	}
}

func TestNewSessionBadKey(t *testing.T) {
	if _, err := NewSession(make([]byte, 15)); err == nil {
		t.Fatal("15-byte TK accepted")
	}
}

// RFC 6070 PBKDF2-HMAC-SHA1 vectors.
func TestPBKDF2Vectors(t *testing.T) {
	cases := []struct {
		p, s  string
		iter  int
		dkLen int
		want  string
	}{
		{"password", "salt", 1, 20, "0c60c80f961f0e71f3a9b524af6012062fe037a6"},
		{"password", "salt", 2, 20, "ea6c014dc72d6f8ccd1ed92ace1d41f0d8de8957"},
		{"password", "salt", 4096, 20, "4b007901b765489abead49d926f721d065a429c1"},
		{"passwordPASSWORDpassword", "saltSALTsaltSALTsaltSALTsaltSALTsalt", 4096, 25,
			"3d2eec4fe41c849b80c8d83662c0e44a8b291a964cf2f07038"},
	}
	for _, c := range cases {
		got := PBKDF2([]byte(c.p), []byte(c.s), c.iter, c.dkLen)
		if hex.EncodeToString(got) != c.want {
			t.Errorf("PBKDF2(%q,%q,%d) = %x, want %s", c.p, c.s, c.iter, got, c.want)
		}
	}
}

// IEEE 802.11i Annex test vector for passphrase→PMK mapping.
func TestPMKVector(t *testing.T) {
	got := PMK("password", "IEEE")
	want := "f42c6fc52df0ebef9ebb4b90b38a5f902e83fe1b135a70e23aed762e9710a12e"
	if hex.EncodeToString(got) != want {
		t.Fatalf("PMK = %x, want %s", got, want)
	}
}

func TestPTKSymmetry(t *testing.T) {
	pmk := PMK("pass", "net")
	an := bytes.Repeat([]byte{3}, 32)
	sn := bytes.Repeat([]byte{4}, 32)
	// Both sides must derive the same key regardless of argument
	// perspective (the derivation sorts MACs and nonces).
	k1 := PTK(pmk, apMAC, staMAC, an, sn)
	k2 := PTK(pmk, staMAC, apMAC, sn, an)
	if !bytes.Equal(k1, k2) {
		t.Fatal("PTK not symmetric")
	}
	if len(k1) != 48 {
		t.Fatalf("PTK length = %d, want 48", len(k1))
	}
	if len(TKFromPTK(k1)) != 16 {
		t.Fatal("TK length wrong")
	}
	// Different nonces change the key.
	k3 := PTK(pmk, apMAC, staMAC, an, bytes.Repeat([]byte{5}, 32))
	if bytes.Equal(k1, k3) {
		t.Fatal("nonce change did not alter PTK")
	}
}

func TestHandshakeSessionsInterop(t *testing.T) {
	pmk := PMK("p", "s")
	a, b, err := Handshake(pmk, apMAC, staMAC, make([]byte, 32), make([]byte, 32))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.TK(), b.TK()) {
		t.Fatal("handshake produced different TKs")
	}
	d := protectedFrame([]byte("x"))
	if err := a.Encrypt(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Decrypt(d); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLatencyRange(t *testing.T) {
	// The paper cites 200–700 µs for WPA2 frame decoding. Check that
	// all three profiles land in that bracket for typical frames.
	for _, p := range []DecodeProfile{FastDecoder, TypicalDecoder, SlowDecoder} {
		for _, n := range []int{100, 500, 1500} {
			l := p.Latency(n)
			if l < 180*eventsim.Microsecond || l > 700*eventsim.Microsecond {
				t.Fatalf("Latency(%d) = %v outside the paper's bracket", n, l)
			}
		}
	}
	if FastDecoder.Latency(1500) >= SlowDecoder.Latency(1500) {
		t.Fatal("profile ordering wrong")
	}
}

func TestCheckSIFS(t *testing.T) {
	// The central §2.2 result: no decode profile meets SIFS, by 20–70×.
	for _, band := range []phy.Band{phy.Band2GHz, phy.Band5GHz} {
		for _, p := range []DecodeProfile{FastDecoder, TypicalDecoder, SlowDecoder} {
			r := CheckSIFS(band, p, 500)
			if r.MeetsSIFS {
				t.Fatalf("decode claims to meet SIFS on %v", band)
			}
			if r.Ratio < 10 || r.Ratio > 80 {
				t.Fatalf("decode/SIFS ratio = %.1f, want within [10,80]", r.Ratio)
			}
		}
	}
}

func BenchmarkCCMPEncrypt(b *testing.B) {
	s, _ := NewSession(make([]byte, 16))
	payload := make([]byte, 1500)
	b.SetBytes(1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := protectedFrame(payload)
		if err := s.Encrypt(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PMK("password", "IEEE")
	}
}
