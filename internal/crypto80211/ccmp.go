package crypto80211

import (
	"errors"
	"fmt"

	"politewifi/internal/dot11"
)

// HeaderLen is the CCMP header length prepended to the encrypted
// frame body.
const HeaderLen = 8

// ErrReplay is returned when a frame's packet number does not exceed
// the last accepted one.
var ErrReplay = errors.New("crypto80211: CCMP replay detected")

// Session is one direction of a CCMP-protected link: a temporal key
// plus transmit packet-number state and a receive replay window.
type Session struct {
	tk     [16]byte
	txPN   uint64
	lastRx uint64
	hasRx  bool
}

// NewSession creates a session from a 16-byte temporal key.
func NewSession(tk []byte) (*Session, error) {
	if len(tk) != 16 {
		return nil, fmt.Errorf("crypto80211: temporal key must be 16 bytes, got %d", len(tk))
	}
	var s Session
	copy(s.tk[:], tk)
	return &s, nil
}

// TK returns the temporal key (for building the peer session).
func (s *Session) TK() []byte { return append([]byte(nil), s.tk[:]...) }

// buildNonce assembles the 13-byte CCMP nonce: priority, A2, PN.
func buildNonce(priority uint8, a2 dot11.MAC, pn uint64) [NonceLen]byte {
	var n [NonceLen]byte
	n[0] = priority
	copy(n[1:7], a2[:])
	n[7] = byte(pn >> 40)
	n[8] = byte(pn >> 32)
	n[9] = byte(pn >> 24)
	n[10] = byte(pn >> 16)
	n[11] = byte(pn >> 8)
	n[12] = byte(pn)
	return n
}

// buildAAD constructs the additional authenticated data from the MAC
// header: masked frame control, the three addresses, and masked
// sequence control (802.11-2016 §12.5.3.3.3). The frame control is
// taken from Control() so the AAD is identical whether computed
// before serialization (type/subtype still zero in the struct) or
// after decoding.
func buildAAD(d *dot11.Data) []byte {
	aad := make([]byte, 22)
	fc := d.Control()
	fc.Retry, fc.PowerMgmt, fc.MoreData = false, false, false
	fc.Protected = true
	fcv := fc.Uint16() &^ 0x0070 // mask subtype bits b4-b6 (QoS variants)
	aad[0] = byte(fcv)
	aad[1] = byte(fcv >> 8)
	copy(aad[2:8], d.Addr1[:])
	copy(aad[8:14], d.Addr2[:])
	copy(aad[14:20], d.Addr3[:])
	sc := d.Seq.Uint16() & 0x000f // sequence number masked, fragment kept
	aad[20] = byte(sc)
	aad[21] = byte(sc >> 8)
	return aad
}

// ccmpHeader encodes the 8-byte CCMP header for packet number pn with
// key ID 0 and the ExtIV bit set.
func ccmpHeader(pn uint64) [HeaderLen]byte {
	var h [HeaderLen]byte
	h[0] = byte(pn)
	h[1] = byte(pn >> 8)
	h[2] = 0
	h[3] = 0x20 // ExtIV, key ID 0
	h[4] = byte(pn >> 16)
	h[5] = byte(pn >> 24)
	h[6] = byte(pn >> 32)
	h[7] = byte(pn >> 40)
	return h
}

func parseCCMPHeader(b []byte) (uint64, error) {
	if len(b) < HeaderLen {
		return 0, errors.New("crypto80211: CCMP header truncated")
	}
	if b[3]&0x20 == 0 {
		return 0, errors.New("crypto80211: ExtIV not set")
	}
	pn := uint64(b[0]) | uint64(b[1])<<8 |
		uint64(b[4])<<16 | uint64(b[5])<<24 | uint64(b[6])<<32 | uint64(b[7])<<40
	return pn, nil
}

// Encrypt protects a data frame in place: the payload is replaced by
// CCMP header || ciphertext || MIC and the Protected flag is set.
func (s *Session) Encrypt(d *dot11.Data) error {
	if d.Null {
		return errors.New("crypto80211: null frames carry no body to protect")
	}
	s.txPN++
	pn := s.txPN
	d.FC.Protected = true
	nonce := buildNonce(d.TID, d.Addr2, pn)
	aad := buildAAD(d)
	sealed, err := SealCCM(s.tk[:], nonce[:], d.Payload, aad)
	if err != nil {
		return err
	}
	hdr := ccmpHeader(pn)
	out := make([]byte, 0, HeaderLen+len(sealed))
	out = append(out, hdr[:]...)
	out = append(out, sealed...)
	d.Payload = out
	return nil
}

// Decrypt verifies and unwraps a protected data frame in place,
// enforcing PN replay ordering.
func (s *Session) Decrypt(d *dot11.Data) error {
	if !d.FC.Protected {
		return errors.New("crypto80211: frame not protected")
	}
	pn, err := parseCCMPHeader(d.Payload)
	if err != nil {
		return err
	}
	if s.hasRx && pn <= s.lastRx {
		return ErrReplay
	}
	nonce := buildNonce(d.TID, d.Addr2, pn)
	aad := buildAAD(d)
	plain, err := OpenCCM(s.tk[:], nonce[:], d.Payload[HeaderLen:], aad)
	if err != nil {
		return err
	}
	s.lastRx = pn
	s.hasRx = true
	d.Payload = plain
	d.FC.Protected = false
	return nil
}
