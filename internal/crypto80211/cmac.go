package crypto80211

import (
	"crypto/aes"
	"crypto/subtle"
	"errors"
	"fmt"
)

// AES-CMAC (RFC 4493), used by 802.11w's BIP (Broadcast Integrity
// Protocol) to protect broadcast robust management frames with the
// IGTK. Implemented from the RFC against its test vectors.

const cmacBlockSize = 16

// cmacSubkeys derives K1 and K2 per RFC 4493 §2.3.
func cmacSubkeys(enc func(dst, src []byte)) (k1, k2 [cmacBlockSize]byte) {
	var l [cmacBlockSize]byte
	enc(l[:], l[:])
	k1 = cmacShiftXor(l)
	k2 = cmacShiftXor(k1)
	return k1, k2
}

// cmacShiftXor is a left shift by one bit, conditionally XORed with
// the GF(2^128) reduction constant.
func cmacShiftXor(in [cmacBlockSize]byte) [cmacBlockSize]byte {
	var out [cmacBlockSize]byte
	carry := byte(0)
	for i := cmacBlockSize - 1; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[cmacBlockSize-1] ^= 0x87
	}
	return out
}

// CMAC computes the full 16-byte AES-CMAC of msg under key.
func CMAC(key, msg []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto80211: %w", err)
	}
	enc := block.Encrypt
	k1, k2 := cmacSubkeys(enc)

	n := (len(msg) + cmacBlockSize - 1) / cmacBlockSize
	complete := n > 0 && len(msg)%cmacBlockSize == 0
	if n == 0 {
		n = 1
	}

	var last [cmacBlockSize]byte
	if complete {
		copy(last[:], msg[(n-1)*cmacBlockSize:])
		for i := range last {
			last[i] ^= k1[i]
		}
	} else {
		rest := msg[(n-1)*cmacBlockSize:]
		copy(last[:], rest)
		last[len(rest)] = 0x80
		for i := range last {
			last[i] ^= k2[i]
		}
	}

	var x [cmacBlockSize]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < cmacBlockSize; j++ {
			x[j] ^= msg[i*cmacBlockSize+j]
		}
		enc(x[:], x[:])
	}
	for j := 0; j < cmacBlockSize; j++ {
		x[j] ^= last[j]
	}
	enc(x[:], x[:])
	return x[:], nil
}

// BIPMICLen is the truncated MIC length BIP uses (AES-128-CMAC-64).
const BIPMICLen = 8

// ErrBIPAuth is returned when a BIP MIC fails to verify.
var ErrBIPAuth = errors.New("crypto80211: BIP integrity check failed")

// BIPProtect computes the 8-byte BIP MIC over aad||body||ipn using
// the integrity group temporal key (IGTK), as appended in the
// Management MIC IE of broadcast robust management frames.
func BIPProtect(igtk, aad, body []byte, ipn uint64) ([]byte, error) {
	mac, err := CMAC(igtk, bipInput(aad, body, ipn))
	if err != nil {
		return nil, err
	}
	return mac[:BIPMICLen], nil
}

// BIPVerify checks a BIP MIC.
func BIPVerify(igtk, aad, body []byte, ipn uint64, mic []byte) error {
	want, err := BIPProtect(igtk, aad, body, ipn)
	if err != nil {
		return err
	}
	if subtle.ConstantTimeCompare(want, mic) != 1 {
		return ErrBIPAuth
	}
	return nil
}

func bipInput(aad, body []byte, ipn uint64) []byte {
	in := make([]byte, 0, len(aad)+len(body)+6)
	in = append(in, aad...)
	in = append(in, body...)
	var pn [6]byte
	for i := 0; i < 6; i++ {
		pn[i] = byte(ipn >> (8 * i))
	}
	return append(in, pn[:]...)
}
