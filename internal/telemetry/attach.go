package telemetry

import (
	"sync"
	"time"

	"politewifi/internal/eventsim"
)

// WallBucketsUS is the bucket set for wall-clock callback timing in
// microseconds (sub-microsecond callbacks land in the first bucket).
var WallBucketsUS = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// AttachScheduler wires a scheduler into the registry:
//
//   - sched.events_fired          total events executed
//   - sched.fired.<origin>        fired events by origin label
//   - sched.queue_len             pending events at snapshot time
//   - sched.queue_high_water      maximum queue depth reached
//
// With wallTiming, it additionally installs a fire observer feeding
// sched.callback_wall_us.<origin> histograms — per-callback-kind
// wall-clock timing for profiling hot origins. Timing costs two
// clock reads per event, so it is opt-in.
//
// The sampled values are read at Snapshot time; snapshot while the
// simulation is quiescent (between Run calls, or after Drive
// returns).
func AttachScheduler(reg *Registry, sched *eventsim.Scheduler, wallTiming bool) {
	reg.CounterFunc("sched.events_fired", "total events executed", sched.Fired)
	reg.MultiCounterFunc("sched.fired", "events executed, by schedule origin", sched.FiredByOrigin)
	reg.GaugeFunc("sched.queue_len", "pending events at snapshot", func() float64 {
		return float64(sched.Len())
	})
	reg.GaugeFunc("sched.queue_high_water", "maximum event-queue depth", func() float64 {
		return float64(sched.HighWater())
	})
	if !wallTiming {
		return
	}
	var mu sync.Mutex
	hists := make(map[string]*Histogram)
	sched.SetFireObserver(func(origin string, wall time.Duration) {
		mu.Lock()
		h, ok := hists[origin]
		if !ok {
			h = reg.Histogram("sched.callback_wall_us."+origin,
				"wall-clock callback duration by origin (µs)", WallBucketsUS)
			hists[origin] = h
		}
		mu.Unlock()
		h.Observe(float64(wall.Nanoseconds()) / 1e3)
	}, true)
}
