package telemetry

import (
	"fmt"

	"politewifi/internal/eventsim"
)

// MergeFrom folds every instrument of src into r. It exists for
// sharded workloads (the parallel wardrive): each worker accumulates
// into a private registry with zero contention, and the coordinator
// merges the shards afterwards in a deterministic order, so the final
// registry is identical to what a sequential run would have produced.
//
// Merge semantics per instrument kind:
//
//   - counters add; the merged LastUpdate is the later of the two
//     stamps (the most recent virtual time the count moved anywhere).
//   - gauges take src's current value when src was ever set — calling
//     MergeFrom shard-by-shard in order therefore leaves the value of
//     the last-merged shard, exactly as sequential Sets would — and
//     the high-water mark is the max across both.
//   - histograms add bucket-wise; bounds must match (they are keyed
//     by instrument name, so differing bounds for one name is a
//     programming error and panics).
//
// Sampled instruments (CounterFunc/GaugeFunc/MultiCounterFunc) are
// resolved at merge time: their current readings are folded into
// plain counters/gauges in r, because src — typically a per-shard
// registry about to be discarded — will not be alive at snapshot
// time. The resolved values are stamped with src's clock, exactly as
// src.Snapshot() would have stamped them, so a merged registry's
// report matches the fold of the shards' own reports byte for byte.
//
// r and src must not be the same registry. src must be quiescent
// (its simulation finished); r may be shared, all merges are done
// under its instruments' own synchronisation.
func (r *Registry) MergeFrom(src *Registry) {
	if src == nil || src == r {
		return
	}
	src.mu.Lock()
	counters := make(map[string]*Counter, len(src.counters))
	for k, v := range src.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(src.gauges))
	for k, v := range src.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	cfuncs := make(map[string]*counterFunc, len(src.counterFuncs))
	for k, v := range src.counterFuncs {
		cfuncs[k] = v
	}
	gfuncs := make(map[string]*gaugeFunc, len(src.gaugeFuncs))
	for k, v := range src.gaugeFuncs {
		gfuncs[k] = v
	}
	mfuncs := make(map[string]*multiCounterFunc, len(src.multiFuncs))
	for k, v := range src.multiFuncs {
		mfuncs[k] = v
	}
	clock := src.clock
	src.mu.Unlock()
	srcNow := clock()

	for name, c := range counters {
		r.Counter(name, c.help).merge(c.v.Load(), eventsim.Time(c.lastAt.Load()))
	}
	for name, cf := range cfuncs {
		r.Counter(name, cf.help).merge(cf.fn(), srcNow)
	}
	for prefix, mf := range mfuncs {
		for suffix, v := range mf.fn() {
			r.Counter(prefix+"."+suffix, mf.help).merge(v, srcNow)
		}
	}
	for name, g := range gauges {
		g.mu.Lock()
		v, max, set, lastAt := g.v, g.max, g.set, g.lastAt
		g.mu.Unlock()
		r.Gauge(name, g.help).merge(v, max, set, lastAt)
	}
	for name, gf := range gfuncs {
		v := gf.fn()
		r.Gauge(name, gf.help).merge(v, v, true, srcNow)
	}
	for name, h := range hists {
		h.mu.Lock()
		dst := r.Histogram(name, h.help, h.bounds)
		dst.merge(h)
		h.mu.Unlock()
	}
}

// MergeableFrom reports whether MergeFrom(src) would succeed without
// panicking: every histogram name shared by both registries must
// carry identical bucket bounds. Inside the simulator a mismatch is a
// programming error and MergeFrom rightly panics; a fold over
// *external* data (a flight-recorder stream off a disk or a socket)
// must instead surface corruption as an error, so stream consumers
// call this before MergeFrom.
func (r *Registry) MergeableFrom(src *Registry) error {
	if src == nil || src == r {
		return nil
	}
	src.mu.Lock()
	hists := make(map[string]*Histogram, len(src.hists))
	for k, v := range src.hists {
		hists[k] = v
	}
	src.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, sh := range hists {
		dh, ok := r.hists[name]
		if !ok {
			continue
		}
		sh.mu.Lock()
		sb := append([]float64(nil), sh.bounds...)
		sh.mu.Unlock()
		if len(dh.bounds) != len(sb) {
			return fmt.Errorf("telemetry: histogram %q has %d buckets here but %d in the source", name, len(dh.bounds), len(sb))
		}
		for i, b := range dh.bounds {
			if b != sb[i] {
				return fmt.Errorf("telemetry: histogram %q bucket %d bound %g here but %g in the source", name, i, b, sb[i])
			}
		}
	}
	return nil
}

// merge folds a source counter's state in: values add, the stamp
// keeps the later virtual time.
func (c *Counter) merge(v uint64, lastAt eventsim.Time) {
	if c == nil || v == 0 {
		return
	}
	c.v.Add(v)
	for {
		cur := c.lastAt.Load()
		if int64(lastAt) <= cur || c.lastAt.CompareAndSwap(cur, int64(lastAt)) {
			return
		}
	}
}

// merge folds a source gauge's state in: the source's value becomes
// current (merge order = set order), the high-water mark is the max
// of both sides.
func (g *Gauge) merge(v, max float64, set bool, lastAt eventsim.Time) {
	if g == nil || !set {
		return
	}
	g.mu.Lock()
	g.v = v
	// The high-water mark resolves independently of which side's value
	// or stamp wins: a never-set destination adopts the source's mark
	// verbatim (its own zero is not a measurement — a negative-range
	// source mark must survive the merge), while a set destination's
	// mark can only ever be raised.
	if !g.set {
		g.max = max
	} else if max > g.max {
		g.max = max
	}
	g.set = true
	if lastAt > g.lastAt {
		g.lastAt = lastAt
	}
	g.mu.Unlock()
}

// merge folds a source histogram in bucket-wise. The caller holds
// src.mu; bounds must be identical.
func (h *Histogram) merge(src *Histogram) {
	if h == nil || src.n == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.bounds) != len(src.bounds) {
		panic(fmt.Sprintf("telemetry: merging histogram %q with mismatched bounds", h.name))
	}
	for i, b := range h.bounds {
		if b != src.bounds[i] {
			panic(fmt.Sprintf("telemetry: merging histogram %q with mismatched bounds", h.name))
		}
	}
	for i, n := range src.counts {
		h.counts[i] += n
	}
	h.sum += src.sum
	h.n += src.n
	if src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	if src.lastAt > h.lastAt {
		h.lastAt = src.lastAt
	}
}
