package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"politewifi/internal/eventsim"
)

// recordExchange simulates one stop's worth of a traced probe
// exchange on a private tracer.
func recordExchange(tr *Tracer, track string) uint64 {
	ex := tr.NextExchange()
	flow := tr.NextID()
	tr.Span(track, "tx Null", 10*eventsim.Microsecond, 40*eventsim.Microsecond, flow, ex, nil)
	flow2 := tr.NextID()
	tr.Span(track, "tx ACK", 50*eventsim.Microsecond, 60*eventsim.Microsecond, flow2, ex, nil)
	tr.Instant(track, "probe verified", 60*eventsim.Microsecond, 0, ex, nil)
	return ex
}

// TestTracerMergeRebasesIDs is the shard-merge contract: merging two
// per-stop tracers (each minting flow and exchange IDs from 1) must
// rebase the source's IDs past the destination's so no two exchanges
// or flows collide, while preserving span order and counting drops.
func TestTracerMergeRebasesIDs(t *testing.T) {
	a := NewTracer()
	b := NewTracer()
	exA := recordExchange(a, "stop0")
	exB := recordExchange(b, "stop1")
	if exA != 1 || exB != 1 {
		t.Fatalf("per-stop exchanges = %d, %d; want both 1", exA, exB)
	}

	merged := NewTracer()
	merged.MergeFrom(a)
	merged.MergeFrom(b)

	if merged.Len() != a.Len()+b.Len() {
		t.Fatalf("merged %d spans, want %d", merged.Len(), a.Len()+b.Len())
	}
	lats := merged.ExchangeLatencies()
	if len(lats) != 2 {
		t.Fatalf("merged exchanges = %d, want 2 (IDs must not collide)", len(lats))
	}
	// Stop 0's exchange keeps ID 1; stop 1's rebases past it to 2.
	if lats[0].Exchange != 1 || lats[1].Exchange != 2 {
		t.Fatalf("exchange IDs after merge = %d, %d; want 1, 2", lats[0].Exchange, lats[1].Exchange)
	}
	for _, l := range lats {
		if l.Spans != 3 {
			t.Fatalf("exchange %d has %d spans, want 3", l.Exchange, l.Spans)
		}
		if l.Latency() != 50*eventsim.Microsecond {
			t.Fatalf("exchange %d latency = %s, want 50µs", l.Exchange, l.Latency())
		}
	}

	// A fresh ID minted after the merge must not collide either.
	if next := merged.NextExchange(); next <= 2 {
		t.Fatalf("post-merge NextExchange = %d, already in use", next)
	}

	// Nil endpoints are no-ops.
	var nilTr *Tracer
	nilTr.MergeFrom(a)
	merged.MergeFrom(nil)
	if nilTr.NextExchange() != 0 {
		t.Fatal("nil tracer minted an exchange")
	}
}

// TestTracerMergeRespectsLimit asserts the destination's span cap
// still applies during a merge, with overflow and the source's own
// drops both surfacing in Dropped.
func TestTracerMergeRespectsLimit(t *testing.T) {
	src := &Tracer{limit: 10}
	for i := 0; i < 12; i++ {
		src.Span("t", "s", 0, 1, 0, 0, nil)
	}
	dst := &Tracer{limit: 15}
	dst.MergeFrom(src)
	dst.MergeFrom(src)
	if dst.Len() != 15 {
		t.Fatalf("dst.Len() = %d, want 15", dst.Len())
	}
	// 2 src drops per merge, plus 5 overflow on the second merge.
	if dst.Dropped() != 2+2+5 {
		t.Fatalf("dst.Dropped() = %d, want 9", dst.Dropped())
	}
}

// TestChromeJSONExchangeFlows asserts exchange-linked spans render as
// a connected flow-event chain (one "s" start, "t" steps) distinct
// from the frame-lifecycle flows.
func TestChromeJSONExchangeFlows(t *testing.T) {
	tr := NewTracer()
	recordExchange(tr, "attacker")
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	starts, steps := 0, 0
	for _, e := range events {
		if e["cat"] != "exchange" {
			continue
		}
		if !strings.HasPrefix(e["id"].(string), "ex:") {
			t.Fatalf("exchange flow id = %v, want ex:-prefixed", e["id"])
		}
		switch e["ph"] {
		case "s":
			starts++
		case "t":
			steps++
		}
	}
	if starts != 1 || steps != 2 {
		t.Fatalf("exchange flow events: %d starts, %d steps; want 1 and 2", starts, steps)
	}
	// Timeline shows the exchange tag.
	if !strings.Contains(tr.Timeline(), "~ex1") {
		t.Fatalf("timeline missing exchange tag:\n%s", tr.Timeline())
	}
}
