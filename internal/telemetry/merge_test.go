package telemetry

import (
	"bytes"
	"testing"

	"politewifi/internal/eventsim"
)

// fixedClock returns a Clock pinned to t.
func fixedClock(t eventsim.Time) Clock {
	return func() eventsim.Time { return t }
}

func TestMergeCounters(t *testing.T) {
	dst := NewRegistry(nil)
	dst.Counter("hits", "h").Add(3)

	src := NewRegistry(fixedClock(70 * eventsim.Second))
	src.Counter("hits", "h").Add(4)
	src.Counter("misses", "m").Add(2)

	dst.MergeFrom(src)

	if v := dst.Counter("hits", "h").Value(); v != 7 {
		t.Fatalf("hits = %d, want 7", v)
	}
	if v := dst.Counter("misses", "m").Value(); v != 2 {
		t.Fatalf("misses = %d, want 2", v)
	}
	// The merged stamp is the later of the two sides.
	if at := dst.Counter("hits", "h").LastUpdate(); at != 70*eventsim.Second {
		t.Fatalf("hits stamp = %s, want 70s", at)
	}
}

func TestMergeGauges(t *testing.T) {
	dst := NewRegistry(nil)
	dst.Gauge("depth", "d").Set(9) // high water 9

	src := NewRegistry(nil)
	src.Gauge("depth", "d").Set(4)

	dst.MergeFrom(src)

	g := dst.Gauge("depth", "d")
	if g.Value() != 4 {
		t.Fatalf("merged value = %g, want src's 4 (merge order = set order)", g.Value())
	}
	if g.Max() != 9 {
		t.Fatalf("merged max = %g, want 9", g.Max())
	}

	// An unset source gauge must not disturb the destination.
	empty := NewRegistry(nil)
	empty.Gauge("depth", "d")
	dst.MergeFrom(empty)
	if g.Value() != 4 || g.Max() != 9 {
		t.Fatal("unset source gauge disturbed the destination")
	}
}

// The high-water mark must survive any merge order: a source whose
// set stamp is newer but whose mark is lower may adopt the value, but
// never lower the mark.
func TestMergeGaugeHighWaterNeverLowered(t *testing.T) {
	dst := NewRegistry(fixedClock(10 * eventsim.Second))
	dst.Gauge("depth", "d").Set(9)

	// Newer stamp, lower mark: value follows, mark holds.
	src := NewRegistry(fixedClock(90 * eventsim.Second))
	src.Gauge("depth", "d").Set(4)
	dst.MergeFrom(src)
	g := dst.Gauge("depth", "d")
	g.mu.Lock()
	at := g.lastAt
	g.mu.Unlock()
	if at != 90*eventsim.Second {
		t.Fatalf("merged stamp = %s, want the source's 90s", at)
	}
	if g.Value() != 4 || g.Max() != 9 {
		t.Fatalf("after newer-but-lower merge: value=%g max=%g, want 4/9", g.Value(), g.Max())
	}

	// Repeated merges of the same lower source must stay put.
	dst.MergeFrom(src)
	if g.Max() != 9 {
		t.Fatalf("repeated merge lowered max to %g", g.Max())
	}

	// A never-set destination adopts a negative source mark verbatim —
	// its own zero is not a measurement and must not win the max.
	fresh := NewRegistry(nil)
	fresh.Gauge("temp", "t")
	neg := NewRegistry(nil)
	neg.Gauge("temp", "t").Set(-12)
	fresh.MergeFrom(neg)
	ng := fresh.Gauge("temp", "t")
	if ng.Value() != -12 || ng.Max() != -12 {
		t.Fatalf("negative merge into fresh gauge: value=%g max=%g, want -12/-12", ng.Value(), ng.Max())
	}

	// And once set, a higher mark from a later shard raises it again.
	hi := NewRegistry(nil)
	hi.Gauge("depth", "d").Set(11)
	dst.MergeFrom(hi)
	if g.Max() != 11 {
		t.Fatalf("higher source mark did not raise max: %g", g.Max())
	}
}

func TestMergeHistograms(t *testing.T) {
	bounds := []float64{1, 10, 100}
	dst := NewRegistry(nil)
	dst.Histogram("lat", "l", bounds).Observe(5)

	src := NewRegistry(nil)
	src.Histogram("lat", "l", bounds).Observe(0.5)
	src.Histogram("lat", "l", bounds).Observe(500)

	dst.MergeFrom(src)

	h := dst.Histogram("lat", "l", bounds)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := h.Mean(); got != (5+0.5+500)/3 {
		t.Fatalf("mean = %g", got)
	}
	snap := dst.Snapshot()
	for _, hs := range snap.Histograms {
		if hs.Name != "lat" {
			continue
		}
		if hs.Min != 0.5 || hs.Max != 500 {
			t.Fatalf("min/max = %g/%g, want 0.5/500", hs.Min, hs.Max)
		}
	}
}

func TestMergeResolvesSampledFuncs(t *testing.T) {
	dst := NewRegistry(nil)
	src := NewRegistry(nil)
	src.CounterFunc("fired", "f", func() uint64 { return 11 })
	src.GaugeFunc("queue", "q", func() float64 { return 3 })
	src.MultiCounterFunc("by", "b", func() map[string]uint64 {
		return map[string]uint64{"rx": 5, "tx": 6}
	})

	dst.MergeFrom(src)

	if v := dst.Counter("fired", "f").Value(); v != 11 {
		t.Fatalf("fired = %d, want 11 (sampled func resolved at merge)", v)
	}
	if v := dst.Gauge("queue", "q").Value(); v != 3 {
		t.Fatalf("queue = %g, want 3", v)
	}
	if v := dst.Counter("by.rx", "b").Value(); v != 5 {
		t.Fatalf("by.rx = %d, want 5", v)
	}
	if v := dst.Counter("by.tx", "b").Value(); v != 6 {
		t.Fatalf("by.tx = %d, want 6", v)
	}
}

// TestMergeOrderIndependentForCounters exercises the sharded-wardrive
// contract: merging per-shard registries one by one produces the same
// snapshot regardless of how the work was split, as long as the merge
// order is fixed.
func TestMergeOrderIndependentForCounters(t *testing.T) {
	build := func(parts ...[]uint64) *Registry {
		reg := NewRegistry(nil)
		for _, p := range parts {
			shard := NewRegistry(nil)
			for i, v := range p {
				if i%2 == 0 {
					shard.Counter("a", "").Add(v)
				} else {
					shard.Counter("b", "").Add(v)
				}
			}
			reg.MergeFrom(shard)
		}
		return reg
	}
	one := build([]uint64{1, 2, 3, 4})
	two := build([]uint64{1, 2}, []uint64{3, 4})

	var b1, b2 bytes.Buffer
	if err := one.Snapshot().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := two.Snapshot().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("sharding changed the snapshot:\n%s\nvs\n%s", b1.String(), b2.String())
	}
}

func TestMergeMismatchedHistogramBoundsPanics(t *testing.T) {
	dst := NewRegistry(nil)
	dst.Histogram("lat", "l", []float64{1, 2}).Observe(1)
	src := NewRegistry(nil)
	src.Histogram("lat", "l", []float64{5, 6}).Observe(1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bounds did not panic")
		}
	}()
	dst.MergeFrom(src)
}

func TestMergeNilAndSelf(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("c", "").Add(1)
	reg.MergeFrom(nil)
	reg.MergeFrom(reg)
	if v := reg.Counter("c", "").Value(); v != 1 {
		t.Fatalf("nil/self merge changed the counter: %d", v)
	}
}
