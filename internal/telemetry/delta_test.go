package telemetry

import (
	"bytes"
	"reflect"
	"testing"

	"politewifi/internal/eventsim"
)

// buildShardRegistry populates a registry the way a per-stop
// simulation would: plain instruments plus a sampled counter func,
// and a registered-but-never-set gauge.
func buildShardRegistry(now eventsim.Time) *Registry {
	clock := func() eventsim.Time { return now }
	r := NewRegistry(clock)
	r.Counter("a.count", "help a").Add(7)
	r.Counter("a.zero", "registered but untouched")
	r.Gauge("b.depth", "set once").SetInt(3)
	r.Gauge("b.unset", "registered but never written")
	h := r.Histogram("c.lat_us", "latencies", TimeBucketsUS)
	h.Observe(4)
	h.Observe(120)
	r.Histogram("c.empty", "no observations", DepthBuckets)
	r.CounterFunc("d.sampled", "resolved at snapshot/merge", func() uint64 { return 42 })
	return r
}

// TestRestoreRegistryRoundTrip is the delta-fold contract: for any
// shard, MergeFrom(RestoreRegistry(shard.Snapshot())) must leave a
// destination registry byte-identical to MergeFrom(shard) — that is
// what makes folding a flight-recorder stream reproduce the live
// merged report exactly.
func TestRestoreRegistryRoundTrip(t *testing.T) {
	shard := buildShardRegistry(1500 * eventsim.Microsecond)

	restored, err := RestoreRegistry(shard.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	live := NewRegistry(nil)
	live.MergeFrom(shard)
	folded := NewRegistry(nil)
	folded.MergeFrom(restored)

	var a, b bytes.Buffer
	if err := live.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := folded.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("fold path != live merge path:\nlive:\n%s\nfolded:\n%s", a.String(), b.String())
	}

	// The restored registry's own snapshot must carry the shard's
	// instruments faithfully (sampled funcs resolved to plain
	// counters, the gauge set bit preserved, empty histograms with
	// their bounds).
	rep := restored.Snapshot()
	if c := rep.Counter("d.sampled"); c == nil || c.Value != 42 || c.LastUpdateNS != 1_500_000 {
		t.Fatalf("sampled counter restored as %+v", c)
	}
	for _, g := range rep.Gauges {
		switch g.Name {
		case "b.depth":
			if !g.Set || g.Value != 3 || g.Max != 3 {
				t.Fatalf("b.depth restored as %+v", g)
			}
		case "b.unset":
			if g.Set {
				t.Fatal("never-written gauge came back with the set bit")
			}
		}
	}
}

// TestRestoreRegistryRejectsBadInput pins the error paths: wrong
// schema, malformed bucket bounds, missing overflow bucket.
func TestRestoreRegistryRejectsBadInput(t *testing.T) {
	if _, err := RestoreRegistry(Report{Schema: "bogus/v9"}); err == nil {
		t.Fatal("foreign schema accepted")
	}
	bad := Report{Schema: ReportSchema, Histograms: []HistogramSnapshot{{
		Name: "h", Buckets: []HistogramBucket{{LE: "nope", Count: 1}, {LE: "+Inf"}},
	}}}
	if _, err := RestoreRegistry(bad); err == nil {
		t.Fatal("unparseable bound accepted")
	}
	noInf := Report{Schema: ReportSchema, Histograms: []HistogramSnapshot{{
		Name: "h", Buckets: []HistogramBucket{{LE: "5", Count: 1}},
	}}}
	if _, err := RestoreRegistry(noInf); err == nil {
		t.Fatal("histogram without +Inf bucket accepted")
	}
}

// TestHistogramBoundsRoundTrip asserts the standard bucket sets
// survive the LE-string round trip bit-exactly.
func TestHistogramBoundsRoundTrip(t *testing.T) {
	for _, bounds := range [][]float64{TimeBucketsUS, DepthBuckets} {
		src := NewRegistry(nil)
		src.Histogram("h", "", bounds).Observe(3)
		restored, err := RestoreRegistry(src.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		dst := NewRegistry(nil)
		dst.MergeFrom(restored)
		// A second merge from the original must not panic on a bound
		// mismatch — proof the bounds round-tripped exactly.
		dst.MergeFrom(src)
		if got := dst.Snapshot().Histograms[0].Count; got != 2 {
			t.Fatalf("merged count = %d, want 2", got)
		}
		if !reflect.DeepEqual(src.Snapshot().Histograms[0].Buckets[0].LE,
			restored.Snapshot().Histograms[0].Buckets[0].LE) {
			t.Fatal("bucket label changed across restore")
		}
	}
}
