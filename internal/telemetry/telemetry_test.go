package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"politewifi/internal/eventsim"
)

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry(nil)
	a := reg.Counter("x.hits", "hits")
	b := reg.Counter("x.hits", "hits")
	if a != b {
		t.Fatal("Counter not get-or-create")
	}
	if reg.Gauge("x.depth", "") != reg.Gauge("x.depth", "") {
		t.Fatal("Gauge not get-or-create")
	}
	h1 := reg.Histogram("x.lat", "", []float64{1, 2})
	h2 := reg.Histogram("x.lat", "", []float64{99})
	if h1 != h2 {
		t.Fatal("Histogram not get-or-create")
	}
	h1.Observe(50)
	if h1.counts[2] != 1 {
		t.Fatal("second registration changed the buckets")
	}
}

func TestCounterStampsVirtualTime(t *testing.T) {
	now := eventsim.Time(0)
	reg := NewRegistry(func() eventsim.Time { return now })
	c := reg.Counter("x.hits", "")
	now = 42 * eventsim.Microsecond
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("Value = %d", c.Value())
	}
	if c.LastUpdate() != 42*eventsim.Microsecond {
		t.Fatalf("LastUpdate = %v, want 42µs of virtual time", c.LastUpdate())
	}
	// Add(0) must not move the stamp.
	now = 99 * eventsim.Microsecond
	c.Add(0)
	if c.LastUpdate() != 42*eventsim.Microsecond {
		t.Fatal("Add(0) moved the time stamp")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.SetInt(4)
	h.Observe(1)
	h.ObserveTime(eventsim.Millisecond)
	if c.Value() != 0 || c.LastUpdate() != 0 || g.Value() != 0 || g.Max() != 0 ||
		h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil instrument returned non-zero")
	}
}

func TestGaugeHighWater(t *testing.T) {
	reg := NewRegistry(nil)
	g := reg.Gauge("q.depth", "")
	g.SetInt(3)
	g.SetInt(9)
	g.SetInt(2)
	if g.Value() != 2 {
		t.Fatalf("Value = %v, want 2", g.Value())
	}
	if g.Max() != 9 {
		t.Fatalf("Max = %v, want 9", g.Max())
	}
	// Negative first value must set the mark, not compare against 0.
	g2 := reg.Gauge("q.neg", "")
	g2.Set(-5)
	if g2.Max() != -5 {
		t.Fatalf("Max after single -5 = %v, want -5", g2.Max())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry(nil)
	h := reg.Histogram("x.lat", "", []float64{10, 100})
	for _, v := range []float64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	// ≤10: {5,10}, ≤100: {11,100}, +Inf: {1000}
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if h.counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, h.counts[i], w)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-1126.0/5) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if h.min != 5 || h.max != 1000 {
		t.Fatalf("min/max = %v/%v", h.min, h.max)
	}
}

func TestObserveTimeUsesMicros(t *testing.T) {
	reg := NewRegistry(nil)
	h := reg.Histogram("x.lat_us", "", TimeBucketsUS)
	h.ObserveTime(16 * eventsim.Microsecond) // SIFS + slop → the "le 20" bucket
	snap := reg.Snapshot().Histograms[0]
	for _, b := range snap.Buckets {
		if b.LE == "20" && b.Count != 1 {
			t.Fatalf("bucket le=20 count = %d, want 1", b.Count)
		}
	}
	if snap.Sum != 16 {
		t.Fatalf("Sum = %v, want 16 (microseconds)", snap.Sum)
	}
}

func TestSampledFuncsAndReplaceSemantics(t *testing.T) {
	reg := NewRegistry(nil)
	v := uint64(7)
	reg.CounterFunc("s.fired", "", func() uint64 { return v })
	reg.GaugeFunc("s.len", "", func() float64 { return 3 })
	reg.MultiCounterFunc("s.by", "", func() map[string]uint64 {
		return map[string]uint64{"a": 1, "b": 2}
	})
	rep := reg.Snapshot()
	if c := rep.Counter("s.fired"); c == nil || c.Value != 7 {
		t.Fatalf("s.fired snapshot = %+v", c)
	}
	if c := rep.Counter("s.by.a"); c == nil || c.Value != 1 {
		t.Fatal("multi counter not expanded")
	}
	// Re-registering replaces the sampling function (per-run attach).
	reg.CounterFunc("s.fired", "", func() uint64 { return 100 })
	if c := reg.Snapshot().Counter("s.fired"); c.Value != 100 {
		t.Fatalf("replaced func not used: %d", c.Value)
	}
}

func TestReportStableJSON(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry(nil)
		// Insertion order varies; output order must not.
		reg.Counter("b.two", "").Add(2)
		reg.Counter("a.one", "").Inc()
		reg.Gauge("z.g", "").Set(1)
		reg.Gauge("a.g", "").Set(2)
		reg.Histogram("m.h", "", []float64{1}).Observe(0.5)
		return reg
	}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		if err := build().Snapshot().WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("identical registries produced different JSON")
	}
	var rep Report
	if err := json.Unmarshal(bufs[0].Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Counters[0].Name != "a.one" || rep.Counters[1].Name != "b.two" {
		t.Fatalf("counters not sorted: %+v", rep.Counters)
	}
	if got := rep.Families(); strings.Join(got, ",") != "a,b,m,z" {
		t.Fatalf("Families = %v", got)
	}
}

func TestRenderMentionsEveryInstrument(t *testing.T) {
	reg := NewRegistry(nil)
	reg.Counter("mac.acks", "").Inc()
	reg.Gauge("sched.queue_len", "").SetInt(4)
	reg.Histogram("pipeline.lat", "", TimeBucketsUS).Observe(3)
	out := reg.Snapshot().Render()
	for _, want := range []string{"mac.acks", "sched.queue_len", "pipeline.lat", "[mac]", "[sched]", "[pipeline]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	reg := NewRegistry(nil)
	c := reg.Counter("x.c", "")
	g := reg.Gauge("x.g", "")
	h := reg.Histogram("x.h", "", DepthBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.SetInt(j)
				h.Observe(float64(i))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("Histogram n = %d, want 8000", h.Count())
	}
}

func TestTracerChromeJSON(t *testing.T) {
	tr := NewTracer()
	id := tr.NextID()
	tr.Span("attacker", "tx Null", 10*eventsim.Microsecond, 40*eventsim.Microsecond, id, 0,
		map[string]string{"bytes": "28"})
	tr.Span("victim", "rx Null", 12*eventsim.Microsecond, 42*eventsim.Microsecond, id, 0, nil)
	tr.Instant("attacker", "probe verified", 60*eventsim.Microsecond, id, 0, nil)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range events {
		phases[e["ph"].(string)]++
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", e)
		}
	}
	// 2 thread_name metadata, 2 complete spans, 1 instant, flow start +
	// 2 flow steps linking the lifecycle.
	if phases["M"] != 2 || phases["X"] != 2 || phases["i"] != 1 || phases["s"] != 1 || phases["t"] != 2 {
		t.Fatalf("phase counts = %v", phases)
	}
	for _, e := range events {
		if e["ph"] == "X" && e["name"] == "tx Null" {
			if e["ts"].(float64) != 10 || *jsonNum(e, "dur") != 30 {
				t.Fatalf("tx span ts/dur wrong: %v", e)
			}
		}
	}
}

func jsonNum(e map[string]any, k string) *float64 {
	if v, ok := e[k].(float64); ok {
		return &v
	}
	return nil
}

func TestTracerNilAndLimit(t *testing.T) {
	var tr *Tracer
	if tr.NextID() != 0 {
		t.Fatal("nil NextID != 0")
	}
	tr.Span("a", "b", 0, 1, 0, 0, nil)
	tr.Instant("a", "b", 0, 0, 0, nil)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Timeline() != "" {
		t.Fatal("nil tracer not a no-op")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil || buf.String() != "[]" {
		t.Fatalf("nil tracer JSON = %q, %v", buf.String(), err)
	}

	small := &Tracer{limit: 2}
	for i := 0; i < 5; i++ {
		small.Span("t", "s", 0, 1, 0, 0, nil)
	}
	if small.Len() != 2 || small.Dropped() != 3 {
		t.Fatalf("Len/Dropped = %d/%d, want 2/3", small.Len(), small.Dropped())
	}
}

func TestTracerTimeline(t *testing.T) {
	tr := NewTracer()
	// Recorded out of order; the timeline sorts by virtual time.
	tr.Instant("attacker", "timeout", 90*eventsim.Microsecond, 0, 0, nil)
	tr.Span("attacker", "tx Null", 10*eventsim.Microsecond, 40*eventsim.Microsecond, 1, 0,
		map[string]string{"rate": "24 Mbps"})
	out := tr.Timeline()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "tx Null #1") || !strings.Contains(lines[1], "rate=24 Mbps") {
		t.Fatalf("first row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "timeout") {
		t.Fatalf("second row = %q", lines[2])
	}
}

func TestAttachScheduler(t *testing.T) {
	sched := eventsim.NewScheduler()
	reg := NewRegistry(sched.ObservedNow)
	AttachScheduler(reg, sched, true)
	rx := sched.Origin("radio.rx")
	sched.ScheduleTagged(rx, 10, func() {})
	sched.Schedule(20, func() {})
	sched.Run()
	rep := reg.Snapshot()
	if c := rep.Counter("sched.events_fired"); c == nil || c.Value != 2 {
		t.Fatalf("events_fired = %+v", c)
	}
	if c := rep.Counter("sched.fired.radio.rx"); c == nil || c.Value != 1 {
		t.Fatalf("fired.radio.rx = %+v", c)
	}
	var wall *HistogramSnapshot
	for i := range rep.Histograms {
		if rep.Histograms[i].Name == "sched.callback_wall_us.radio.rx" {
			wall = &rep.Histograms[i]
		}
	}
	if wall == nil || wall.Count != 1 {
		t.Fatalf("wall-timing histogram missing or empty: %+v", rep.Histograms)
	}
}
