// Package telemetry is the simulator's observability substrate: a
// registry of named counters, gauges and fixed-bucket histograms
// whose observations are stamped with *virtual* time
// (eventsim.Time), a frame-lifecycle tracer exportable as Chrome
// trace_event JSON, and a stable machine-readable Report snapshot.
//
// Everything here is zero-dependency (standard library plus the
// eventsim clock type) and safe for concurrent use: counters are
// atomic, gauges and histograms take a short mutex, so instruments
// may be updated both from inside the single-threaded simulation and
// from worker goroutines serialised through rt.Bridge.
//
// Metrics are virtual-time-stamped on purpose: the simulator's
// ground truth is the event clock, not the wall clock. A counter's
// LastUpdate answers "when, in the experiment, did this last
// happen?" — which is the question every paper figure asks — and is
// bit-identical across replays of the same seed, whereas wall-clock
// stamps would differ per host and per run.
//
// Instruments are nil-safe: calling Add/Set/Observe on a nil
// *Counter/*Gauge/*Histogram is a no-op, so instrumented layers hold
// possibly-unset instrument fields and pay nothing when telemetry is
// not attached.
package telemetry

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"politewifi/internal/eventsim"
)

// Clock reads the current virtual time. It must be safe to call from
// any goroutine; eventsim.(*Scheduler).ObservedNow is the canonical
// implementation.
type Clock func() eventsim.Time

// Registry is a namespace of instruments. Instrument constructors
// are get-or-create: asking twice for the same name returns the same
// instrument, which is what lets per-stop simulations (the wardrive)
// accumulate into one shared registry.
//
// Names are dotted paths; the segment before the first dot is the
// metric family ("sched", "medium", "mac", "pipeline", ...).
type Registry struct {
	mu    sync.Mutex
	clock Clock

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	counterFuncs map[string]*counterFunc
	gaugeFuncs   map[string]*gaugeFunc
	multiFuncs   map[string]*multiCounterFunc
}

type counterFunc struct {
	help string
	fn   func() uint64
}

type gaugeFunc struct {
	help string
	fn   func() float64
}

type multiCounterFunc struct {
	help string
	fn   func() map[string]uint64
}

// NewRegistry creates a registry stamped by the given virtual clock.
// A nil clock stamps everything with time zero.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = func() eventsim.Time { return 0 }
	}
	return &Registry{
		clock:        clock,
		counters:     make(map[string]*Counter),
		gauges:       make(map[string]*Gauge),
		hists:        make(map[string]*Histogram),
		counterFuncs: make(map[string]*counterFunc),
		gaugeFuncs:   make(map[string]*gaugeFunc),
		multiFuncs:   make(map[string]*multiCounterFunc),
	}
}

// Now reads the registry's virtual clock.
func (r *Registry) Now() eventsim.Time { return r.clock() }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help, clock: r.clock}
	r.counters[name] = c
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help, clock: r.clock}
	r.gauges[name] = g
	return g
}

// Histogram returns (creating if needed) the named histogram with
// the given bucket upper bounds (ascending; an implicit +Inf bucket
// catches overflow). Buckets are fixed at creation; a second call
// with different bounds returns the existing histogram unchanged.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		help:   help,
		clock:  r.clock,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
	r.hists[name] = h
	return h
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — for sources that already keep their own cumulative
// count (scheduler fired-event totals, bridge contention counters).
// Re-registering a name replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counterFuncs[name] = &counterFunc{help: help, fn: fn}
}

// GaugeFunc registers a gauge sampled from fn at snapshot time.
// Re-registering a name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = &gaugeFunc{help: help, fn: fn}
}

// MultiCounterFunc registers a family of counters expanded at
// snapshot time: fn returns suffix→value pairs that surface as
// prefix.suffix counters. Used for by-origin scheduler counts whose
// key set is not known at attach time.
func (r *Registry) MultiCounterFunc(prefix, help string, fn func() map[string]uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.multiFuncs[prefix] = &multiCounterFunc{help: help, fn: fn}
}

// --- Counter ---------------------------------------------------------

// Counter is a monotonically increasing count. All methods are
// nil-safe and safe for concurrent use.
type Counter struct {
	name, help string
	clock      Clock
	v          atomic.Uint64
	lastAt     atomic.Int64 // eventsim.Time of the last Add
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || n == 0 {
		return
	}
	c.v.Add(n)
	c.lastAt.Store(int64(c.clock()))
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// LastUpdate reports the virtual time of the most recent Add.
func (c *Counter) LastUpdate() eventsim.Time {
	if c == nil {
		return 0
	}
	return eventsim.Time(c.lastAt.Load())
}

// --- Gauge -----------------------------------------------------------

// Gauge is an instantaneous value with a tracked high-water mark.
// All methods are nil-safe and safe for concurrent use.
type Gauge struct {
	name, help string
	clock      Clock

	mu     sync.Mutex
	v      float64
	max    float64
	set    bool
	lastAt eventsim.Time
}

// Set records the current value (and raises the high-water mark).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
	g.lastAt = g.clock()
	g.mu.Unlock()
}

// SetInt is Set for integer sources (queue depths).
func (g *Gauge) SetInt(v int) { g.Set(float64(v)) }

// Value reads the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max reads the high-water mark since creation.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// --- Histogram -------------------------------------------------------

// Histogram accumulates observations into fixed buckets. All methods
// are nil-safe and safe for concurrent use.
type Histogram struct {
	name, help string
	clock      Clock

	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is +Inf overflow
	sum    float64
	n      uint64
	min    float64
	max    float64
	lastAt eventsim.Time
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.lastAt = h.clock()
	h.mu.Unlock()
}

// ObserveTime records a virtual duration in microseconds — the
// natural unit for SIFS-scale latencies.
func (h *Histogram) ObserveTime(d eventsim.Time) { h.Observe(d.Micros()) }

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean reports the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// TimeBucketsUS is the default bucket set for sim-time latencies in
// microseconds: spans SIFS (10 µs) through multi-millisecond verdict
// windows.
var TimeBucketsUS = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000, 50000}

// DepthBuckets is the default bucket set for queue depths.
var DepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

func fmtBound(b float64) string {
	if b == math.Trunc(b) {
		return fmt.Sprintf("%g", b)
	}
	return fmt.Sprintf("%.3g", b)
}
