package telemetry

import (
	"fmt"
	"math"
	"strconv"

	"politewifi/internal/eventsim"
)

// RestoreRegistry reconstructs a Registry from a Report so that a
// serialized delta snapshot (one stop's worth of telemetry in a
// flight-recorder stream) can be folded back into an aggregate with
// MergeFrom. The restored registry is a faithful stand-in for the one
// the report was taken from:
//
//   - counters carry value and last-update stamp;
//   - gauges carry value, high-water mark, and the set bit, so a
//     registered-but-never-written gauge stays distinguishable from a
//     measured zero and is skipped by gauge merge exactly as the
//     original would be;
//   - histograms rebuild their bounds from the bucket upper-bound
//     labels (the "+Inf" overflow bucket is implicit) and carry
//     bucket counts, sum, count, min/max, and stamp.
//
// Sampled instruments do not round-trip as functions — Snapshot
// already resolved them to plain counters/gauges stamped with the
// report's sim time, which is the same resolution MergeFrom performs,
// so folding restored reports reproduces a live merge byte for byte.
//
// The restored registry's clock is the zero clock; it only matters
// for new observations, which a restored registry does not take.
func RestoreRegistry(rep Report) (*Registry, error) {
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("telemetry: cannot restore registry from schema %q (want %q)", rep.Schema, ReportSchema)
	}
	r := NewRegistry(nil)
	// Snapshot emits each instrument name once; a duplicate means the
	// report was corrupted in flight, and silently letting the second
	// occurrence overwrite the first would fold a wrong aggregate.
	dup := func(kind string, seen map[string]bool, name string) error {
		if seen[name] {
			return fmt.Errorf("telemetry: corrupt report: duplicate %s %q", kind, name)
		}
		seen[name] = true
		return nil
	}
	seenC := make(map[string]bool, len(rep.Counters))
	for _, cs := range rep.Counters {
		if err := dup("counter", seenC, cs.Name); err != nil {
			return nil, err
		}
		c := r.Counter(cs.Name, cs.Help)
		c.v.Store(cs.Value)
		c.lastAt.Store(cs.LastUpdateNS)
	}
	seenG := make(map[string]bool, len(rep.Gauges))
	for _, gs := range rep.Gauges {
		if err := dup("gauge", seenG, gs.Name); err != nil {
			return nil, err
		}
		g := r.Gauge(gs.Name, gs.Help)
		g.mu.Lock()
		g.v = gs.Value
		g.max = gs.Max
		g.set = gs.Set
		g.lastAt = eventsim.Time(gs.LastUpdateNS)
		g.mu.Unlock()
	}
	seenH := make(map[string]bool, len(rep.Histograms))
	for _, hs := range rep.Histograms {
		if err := dup("histogram", seenH, hs.Name); err != nil {
			return nil, err
		}
		bounds := make([]float64, 0, len(hs.Buckets))
		counts := make([]uint64, 0, len(hs.Buckets))
		seenInf := false
		for _, b := range hs.Buckets {
			if b.LE == "+Inf" {
				seenInf = true
				counts = append(counts, b.Count)
				continue
			}
			if seenInf {
				return nil, fmt.Errorf("telemetry: histogram %q has buckets after +Inf", hs.Name)
			}
			bound, err := strconv.ParseFloat(b.LE, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: histogram %q bucket bound %q: %w", hs.Name, b.LE, err)
			}
			// Bounds must ascend strictly: Histogram's bucket search and
			// MergeFrom both assume it, and a mangled bound would
			// otherwise fold silently into the wrong bucket.
			if n := len(bounds); n > 0 && bound <= bounds[n-1] {
				return nil, fmt.Errorf("telemetry: histogram %q bucket bounds not ascending (%g after %g)",
					hs.Name, bound, bounds[n-1])
			}
			bounds = append(bounds, bound)
			counts = append(counts, b.Count)
		}
		if !seenInf {
			return nil, fmt.Errorf("telemetry: histogram %q has no +Inf bucket", hs.Name)
		}
		h := r.Histogram(hs.Name, hs.Help, bounds)
		h.mu.Lock()
		copy(h.counts, counts)
		h.sum = hs.Sum
		h.n = hs.Count
		if hs.Count > 0 {
			h.min, h.max = hs.Min, hs.Max
		} else {
			h.min, h.max = math.Inf(1), math.Inf(-1)
		}
		h.lastAt = eventsim.Time(hs.LastUpdateNS)
		h.mu.Unlock()
	}
	return r, nil
}
