package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"politewifi/internal/eventsim"
)

// ReportSchema identifies the report encoding; bump on breaking
// changes to the JSON layout.
const ReportSchema = "politewifi.telemetry/v1"

// Report is a stable, machine-readable snapshot of a registry. All
// slices are sorted by name so the JSON encoding of two snapshots of
// identical runs is byte-identical.
type Report struct {
	Schema    string `json:"schema"`
	SimTimeNS int64  `json:"sim_time_ns"`

	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// CounterSnapshot is one counter's state at snapshot time.
type CounterSnapshot struct {
	Name         string `json:"name"`
	Help         string `json:"help,omitempty"`
	Value        uint64 `json:"value"`
	LastUpdateNS int64  `json:"last_update_ns"`
}

// GaugeSnapshot is one gauge's state at snapshot time. Set records
// whether the gauge was ever written — a registered-but-untouched
// gauge reports zero, which restoration (RestoreRegistry) must not
// mistake for a measured zero.
type GaugeSnapshot struct {
	Name         string  `json:"name"`
	Help         string  `json:"help,omitempty"`
	Value        float64 `json:"value"`
	Max          float64 `json:"max"`
	Set          bool    `json:"set,omitempty"`
	LastUpdateNS int64   `json:"last_update_ns"`
}

// HistogramBucket is one bucket of a histogram snapshot.
type HistogramBucket struct {
	LE    string `json:"le"` // upper bound; "+Inf" for overflow
	Count uint64 `json:"count"`
}

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	Name         string            `json:"name"`
	Help         string            `json:"help,omitempty"`
	Count        uint64            `json:"count"`
	Sum          float64           `json:"sum"`
	Min          float64           `json:"min"`
	Max          float64           `json:"max"`
	Buckets      []HistogramBucket `json:"buckets"`
	LastUpdateNS int64             `json:"last_update_ns"`
}

// Snapshot captures every instrument (including sampled funcs) into
// a Report. It is safe to call while the simulation is quiescent;
// sampled funcs read their sources at this moment.
func (r *Registry) Snapshot() Report {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	cfuncs := make(map[string]*counterFunc, len(r.counterFuncs))
	for k, v := range r.counterFuncs {
		cfuncs[k] = v
	}
	gfuncs := make(map[string]*gaugeFunc, len(r.gaugeFuncs))
	for k, v := range r.gaugeFuncs {
		gfuncs[k] = v
	}
	mfuncs := make(map[string]*multiCounterFunc, len(r.multiFuncs))
	for k, v := range r.multiFuncs {
		mfuncs[k] = v
	}
	clock := r.clock
	r.mu.Unlock()

	rep := Report{Schema: ReportSchema, SimTimeNS: int64(clock())}

	for name, c := range counters {
		rep.Counters = append(rep.Counters, CounterSnapshot{
			Name: name, Help: c.help, Value: c.Value(), LastUpdateNS: int64(c.LastUpdate()),
		})
	}
	for name, cf := range cfuncs {
		rep.Counters = append(rep.Counters, CounterSnapshot{
			Name: name, Help: cf.help, Value: cf.fn(), LastUpdateNS: rep.SimTimeNS,
		})
	}
	for prefix, mf := range mfuncs {
		for suffix, v := range mf.fn() {
			rep.Counters = append(rep.Counters, CounterSnapshot{
				Name: prefix + "." + suffix, Help: mf.help, Value: v, LastUpdateNS: rep.SimTimeNS,
			})
		}
	}
	for name, g := range gauges {
		g.mu.Lock()
		rep.Gauges = append(rep.Gauges, GaugeSnapshot{
			Name: name, Help: g.help, Value: g.v, Max: g.max, Set: g.set, LastUpdateNS: int64(g.lastAt),
		})
		g.mu.Unlock()
	}
	for name, gf := range gfuncs {
		v := gf.fn()
		rep.Gauges = append(rep.Gauges, GaugeSnapshot{
			Name: name, Help: gf.help, Value: v, Max: v, Set: true, LastUpdateNS: rep.SimTimeNS,
		})
	}
	for name, h := range hists {
		h.mu.Lock()
		snap := HistogramSnapshot{
			Name: name, Help: h.help, Count: h.n, Sum: h.sum,
			LastUpdateNS: int64(h.lastAt),
		}
		if h.n > 0 {
			snap.Min, snap.Max = h.min, h.max
		}
		for i, b := range h.bounds {
			snap.Buckets = append(snap.Buckets, HistogramBucket{LE: fmtBound(b), Count: h.counts[i]})
		}
		snap.Buckets = append(snap.Buckets, HistogramBucket{LE: "+Inf", Count: h.counts[len(h.bounds)]})
		h.mu.Unlock()
		rep.Histograms = append(rep.Histograms, snap)
	}

	sort.Slice(rep.Counters, func(i, j int) bool { return rep.Counters[i].Name < rep.Counters[j].Name })
	sort.Slice(rep.Gauges, func(i, j int) bool { return rep.Gauges[i].Name < rep.Gauges[j].Name })
	sort.Slice(rep.Histograms, func(i, j int) bool { return rep.Histograms[i].Name < rep.Histograms[j].Name })
	return rep
}

// WriteJSON encodes the report as indented JSON. The encoding is
// stable: identical runs produce byte-identical files.
func (rep Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Families lists the distinct metric family prefixes (the segment
// before the first dot) present in the report, sorted.
func (rep Report) Families() []string {
	seen := make(map[string]bool)
	add := func(name string) {
		fam := name
		if i := strings.IndexByte(name, '.'); i >= 0 {
			fam = name[:i]
		}
		seen[fam] = true
	}
	for _, c := range rep.Counters {
		add(c.Name)
	}
	for _, g := range rep.Gauges {
		add(g.Name)
	}
	for _, h := range rep.Histograms {
		add(h.Name)
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Counter returns the snapshot of the named counter (nil if absent).
func (rep Report) Counter(name string) *CounterSnapshot {
	for i := range rep.Counters {
		if rep.Counters[i].Name == name {
			return &rep.Counters[i]
		}
	}
	return nil
}

// Render formats the report as a human-readable table grouped by
// family — what `politewifi stats` prints.
func (rep Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry report @ sim %s (%s)\n", eventsim.Time(rep.SimTimeNS), rep.Schema)

	lastFam := ""
	famOf := func(name string) string {
		if i := strings.IndexByte(name, '.'); i >= 0 {
			return name[:i]
		}
		return name
	}
	sectionHeader := func(name string) {
		if f := famOf(name); f != lastFam {
			fmt.Fprintf(&b, "\n[%s]\n", f)
			lastFam = f
		}
	}

	if len(rep.Counters) > 0 {
		b.WriteString("\n== counters ==\n")
		lastFam = ""
		for _, c := range rep.Counters {
			sectionHeader(c.Name)
			fmt.Fprintf(&b, "  %-44s %12d   last@%s\n", c.Name, c.Value, eventsim.Time(c.LastUpdateNS))
		}
	}
	if len(rep.Gauges) > 0 {
		b.WriteString("\n== gauges ==\n")
		lastFam = ""
		for _, g := range rep.Gauges {
			sectionHeader(g.Name)
			fmt.Fprintf(&b, "  %-44s %12g   max %g\n", g.Name, g.Value, g.Max)
		}
	}
	if len(rep.Histograms) > 0 {
		b.WriteString("\n== histograms ==\n")
		lastFam = ""
		for _, h := range rep.Histograms {
			sectionHeader(h.Name)
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-44s n=%-8d mean=%-10.2f min=%-10.2f max=%-10.2f\n",
				h.Name, h.Count, mean, zeroIfInf(h.Min), zeroIfInf(h.Max))
			for _, bk := range h.Buckets {
				if bk.Count == 0 {
					continue
				}
				fmt.Fprintf(&b, "    le %-8s %10d %s\n", bk.LE, bk.Count, bar(bk.Count, h.Count))
			}
		}
	}
	return b.String()
}

func zeroIfInf(v float64) float64 {
	if math.IsInf(v, 0) {
		return 0
	}
	return v
}

func bar(n, total uint64) string {
	if total == 0 {
		return ""
	}
	w := int(float64(n) / float64(total) * 40)
	return strings.Repeat("#", w)
}
