package stream

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"politewifi/internal/telemetry"
)

func testRecord(stop, stops int, totals Census) Record {
	delta := Census{Clients: 2, APs: 1, ClientsResponded: 1, APsResponded: 1, Silent: 1}
	totals.Add(delta)
	return Record{
		Schema: Schema, Stop: stop, Stops: stops,
		SimEndNS: 6_000_000_000,
		Census:   delta, Totals: totals,
	}
}

func TestWriterNDJSONAndDecoder(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var totals Census
	for i := 0; i < 3; i++ {
		rec := testRecord(i, 3, totals)
		totals = rec.Totals
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 || w.Err() != nil {
		t.Fatalf("Count/Err = %d/%v", w.Count(), w.Err())
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("NDJSON lines = %d, want 3", lines)
	}

	d := NewDecoder(&buf)
	for i := 0; i < 3; i++ {
		rec, err := d.Next()
		if err != nil {
			t.Fatal(err)
		}
		if rec.Stop != i || rec.Stops != 3 {
			t.Fatalf("record %d decoded as %+v", i, rec)
		}
	}
	if _, err := d.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end of stream = %v, want EOF", err)
	}
}

func TestDecoderRejectsForeignSchema(t *testing.T) {
	d := NewDecoder(strings.NewReader(`{"schema":"other/v1","stop":0}` + "\n"))
	if _, err := d.Next(); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

// errWriter fails every write.
type errWriter struct{}

var errSink = errors.New("sink failed")

func (errWriter) Write([]byte) (int, error) { return 0, errSink }

func TestWriterLatchesFirstError(t *testing.T) {
	w := NewWriter(errWriter{})
	if err := w.Write(testRecord(0, 1, Census{})); !errors.Is(err, errSink) {
		t.Fatalf("first write error = %v", err)
	}
	// Subsequent writes return the latched error without touching the
	// sink again.
	if err := w.Write(testRecord(1, 1, Census{})); !errors.Is(err, errSink) {
		t.Fatalf("latched error = %v", err)
	}
	if w.Count() != 0 {
		t.Fatalf("Count = %d after failed writes", w.Count())
	}

	var nilW *Writer
	if err := nilW.Write(testRecord(0, 1, Census{})); err != nil {
		t.Fatal("nil writer must be a no-op")
	}
	if nilW.Err() != nil || nilW.Count() != 0 {
		t.Fatal("nil writer reported state")
	}
}

func TestFoldValidatesStream(t *testing.T) {
	// Contiguity: a gap in stop indexes must fail.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var totals Census
	r0 := testRecord(0, 3, totals)
	if err := w.Write(r0); err != nil {
		t.Fatal(err)
	}
	r2 := testRecord(2, 3, r0.Totals)
	if err := w.Write(r2); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(&buf); err == nil || !strings.Contains(err.Error(), "contiguous") {
		t.Fatalf("gap accepted: %v", err)
	}

	// Totals mismatch must fail.
	buf.Reset()
	w = NewWriter(&buf)
	bad := testRecord(0, 1, Census{})
	bad.Totals.Clients++
	if err := w.Write(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(&buf); err == nil || !strings.Contains(err.Error(), "totals") {
		t.Fatalf("totals mismatch accepted: %v", err)
	}
}

func TestFoldMergesTelemetryDeltas(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var totals Census
	for i := 0; i < 2; i++ {
		shard := telemetry.NewRegistry(nil)
		shard.Counter("x.count", "").Add(uint64(i + 1))
		rep := shard.Snapshot()
		rec := testRecord(i, 2, totals)
		totals = rec.Totals
		rec.Telemetry = &rep
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Fold(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Registry == nil {
		t.Fatalf("fold = %+v", res)
	}
	if c := res.Registry.Snapshot().Counter("x.count"); c == nil || c.Value != 3 {
		t.Fatalf("folded counter = %+v, want 3", c)
	}
	if res.Totals.Devices() != 6 {
		t.Fatalf("folded devices = %d, want 6", res.Totals.Devices())
	}
}
