package stream

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"politewifi/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenStream builds a small deterministic stream with telemetry
// deltas (counters, gauges, and a histogram, so every RestoreRegistry
// path is exercised) and returns its NDJSON bytes.
func goldenStream(t *testing.T, stops int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var totals Census
	for i := 0; i < stops; i++ {
		shard := telemetry.NewRegistry(nil)
		shard.Counter("scan.frames_tx", "").Add(uint64(10 + i))
		shard.Gauge("scan.assoc_depth", "").Set(float64(i))
		h := shard.Histogram("scan.resp_us", "", []float64{10, 100, 1000})
		h.Observe(float64(5 * (i + 1)))
		h.Observe(float64(50 * (i + 1)))
		rep := shard.Snapshot()
		rec := testRecord(i, stops, totals)
		totals = rec.Totals
		rec.Telemetry = &rep
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestFoldGoldenFile pins the on-disk fixture: the committed golden
// stream folds cleanly and the chopped variants derived from it keep
// failing with positioned errors. Regenerate with -update after an
// intentional schema change.
func TestFoldGoldenFile(t *testing.T) {
	data := goldenStream(t, 4)
	golden := filepath.Join("testdata", "fold_golden.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("generated stream diverged from golden (%d vs %d bytes); "+
			"regenerate with -update if intentional", len(data), len(want))
	}
	res, err := Fold(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 4 || res.Stops != 4 || res.Cancelled {
		t.Fatalf("golden fold = %+v", res)
	}
	if c := res.Registry.Snapshot().Counter("scan.frames_tx"); c == nil || c.Value != 10+11+12+13 {
		t.Fatalf("folded counter = %+v", c)
	}
}

// TestFoldTruncatedMidRecord chops the golden stream inside a record
// — the classic crashed-writer artifact — and asserts the fold fails
// with a *PosError naming the damaged record and a plausible byte
// offset, instead of panicking or silently folding the partial line.
func TestFoldTruncatedMidRecord(t *testing.T) {
	data := goldenStream(t, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// Offsets of each record's first byte.
	starts := make([]int, 0, 4)
	off := 0
	for _, l := range lines {
		if len(l) > 0 {
			starts = append(starts, off)
			off += len(l)
		}
	}
	for rec := 1; rec < 4; rec++ {
		// Chop 10 bytes into record `rec` — mid-line, no trailing \n.
		chop := starts[rec] + 10
		_, err := Fold(bytes.NewReader(data[:chop]))
		if err == nil {
			t.Fatalf("chop at %d folded cleanly", chop)
		}
		var pe *PosError
		if !errors.As(err, &pe) {
			t.Fatalf("chop at %d: error %T (%v), want *PosError", chop, err, err)
		}
		if pe.Record != rec {
			t.Fatalf("chop inside record %d reported record %d (%v)", rec, pe.Record, err)
		}
		// The offset points at or just before the damaged record (the
		// previous record's newline may remain unconsumed).
		if pe.Offset < int64(starts[rec]-1) || pe.Offset > int64(chop) {
			t.Fatalf("chop at %d reported offset %d, want within [%d, %d]",
				chop, pe.Offset, starts[rec]-1, chop)
		}
		if !strings.Contains(err.Error(), "truncated record") {
			t.Fatalf("error %q does not identify the truncation", err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("error %v does not unwrap to ErrUnexpectedEOF", err)
		}
	}
}

// TestFoldTruncatedAtBoundary chops the stream exactly at a record
// boundary: the fold succeeds — the prefix is internally consistent —
// and the severed pipe shows as Records < Stops with no trailer.
func TestFoldTruncatedAtBoundary(t *testing.T) {
	data := goldenStream(t, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))
	prefix := bytes.Join(lines[:2], nil)
	res, err := Fold(bytes.NewReader(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 || res.Stops != 4 || res.Cancelled {
		t.Fatalf("boundary-chopped fold = %+v, want 2/4 records uncancelled", res)
	}
}

// TestFoldCorruptedMidRecord mangles bytes inside a record (the JSON
// no longer parses) and asserts a positioned decode error.
func TestFoldCorruptedMidRecord(t *testing.T) {
	data := goldenStream(t, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))
	corrupt := append([]byte(nil), lines[0]...)
	bad := append([]byte(nil), lines[1]...)
	copy(bad[5:], `@@@@`) // stomp inside the schema field
	corrupt = append(corrupt, bad...)
	corrupt = append(corrupt, lines[2]...)

	_, err := Fold(bytes.NewReader(corrupt))
	var pe *PosError
	if !errors.As(err, &pe) {
		t.Fatalf("corrupted record: error %T (%v), want *PosError", err, err)
	}
	if pe.Record != 1 {
		t.Fatalf("corruption in record 1 reported record %d", pe.Record)
	}
}

// TestFoldCorruptTelemetry covers per-stop telemetry damage that used
// to panic or fold silently: duplicate instrument names, non-ascending
// histogram bounds, and a histogram whose bounds change mid-stream.
func TestFoldCorruptTelemetry(t *testing.T) {
	data := goldenStream(t, 4)
	lines := bytes.SplitAfter(data, []byte("\n"))

	mutate := func(rec int, f func(string) string) []byte {
		var out []byte
		for i, l := range lines {
			if i == rec {
				l = []byte(f(string(l)))
			}
			out = append(out, l...)
		}
		return out
	}

	t.Run("duplicate counter", func(t *testing.T) {
		// Rename the gauge to collide with itself is impossible via
		// string replace of distinct names; instead duplicate the
		// counter entry in the counters array.
		mutated := mutate(2, func(s string) string {
			const needle = `"counters":[`
			i := strings.Index(s, needle)
			if i < 0 {
				t.Fatal("fixture drift: no counters array in record")
			}
			rest := s[i+len(needle):]
			end := strings.Index(rest, `]`)
			entry := rest[:end]
			return s[:i+len(needle)] + entry + "," + entry + s[i+len(needle)+end:]
		})
		_, err := Fold(bytes.NewReader(mutated))
		if err == nil || !strings.Contains(err.Error(), "duplicate counter") {
			t.Fatalf("duplicate counter folded: %v", err)
		}
		if err != nil && !strings.Contains(err.Error(), "stop 2") {
			t.Fatalf("error %q does not name the damaged stop", err)
		}
	})

	t.Run("non-ascending bounds", func(t *testing.T) {
		mutated := mutate(1, func(s string) string {
			return strings.Replace(s, `"le":"100"`, `"le":"9"`, 1)
		})
		_, err := Fold(bytes.NewReader(mutated))
		if err == nil || !strings.Contains(err.Error(), "not ascending") {
			t.Fatalf("non-ascending bounds folded: %v", err)
		}
	})

	t.Run("bounds drift mid-stream", func(t *testing.T) {
		// Record 3's histogram grows an extra bucket: MergeFrom would
		// panic; the fold must surface a positioned error instead.
		mutated := mutate(3, func(s string) string {
			return strings.Replace(s, `{"le":"1000"`, `{"le":"500","count":0},{"le":"1000"`, 1)
		})
		_, err := Fold(bytes.NewReader(mutated))
		if err == nil || !strings.Contains(err.Error(), "buckets") {
			t.Fatalf("mid-stream bounds drift folded: %v", err)
		}
		if err != nil && !strings.Contains(err.Error(), "stop 3") {
			t.Fatalf("error %q does not name the damaged stop", err)
		}
	})
}

// TestFoldTrailer covers the cancellation trailer: a well-placed
// trailer folds to Cancelled with the prefix intact; a trailer lying
// about the completed-stop count or totals fails; records after the
// trailer fail.
func TestFoldTrailer(t *testing.T) {
	build := func(stops, trailerAt int, mutate func(*Record)) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		var totals Census
		for i := 0; i < trailerAt; i++ {
			rec := testRecord(i, stops, totals)
			totals = rec.Totals
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		tr := Trailer(trailerAt, stops, totals)
		if mutate != nil {
			mutate(&tr)
		}
		if err := w.Write(tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	res, err := Fold(bytes.NewReader(build(5, 2, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled || res.Records != 2 || res.Stops != 5 {
		t.Fatalf("trailer fold = %+v", res)
	}

	if _, err := Fold(bytes.NewReader(build(5, 2, func(r *Record) { r.Stop = 3 }))); err == nil ||
		!strings.Contains(err.Error(), "trailer claims") {
		t.Fatalf("lying trailer folded: %v", err)
	}
	if _, err := Fold(bytes.NewReader(build(5, 2, func(r *Record) { r.Totals.APs++ }))); err == nil ||
		!strings.Contains(err.Error(), "trailer totals") {
		t.Fatalf("trailer with skewed totals folded: %v", err)
	}

	// A record after the trailer is a malformed stream.
	var buf bytes.Buffer
	buf.Write(build(5, 2, nil))
	w := NewWriter(&buf)
	if err := w.Write(testRecord(2, 5, Census{})); err != nil {
		t.Fatal(err)
	}
	if _, err := Fold(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "after cancellation trailer") {
		t.Fatalf("record after trailer folded: %v", err)
	}
}

// TestDecoderPositionAccessors pins Decoded/Offset bookkeeping, which
// callers use to report and resume from damage.
func TestDecoderPositionAccessors(t *testing.T) {
	data := goldenStream(t, 3)
	d := NewDecoder(bytes.NewReader(data))
	if d.Decoded() != 0 {
		t.Fatalf("fresh decoder Decoded = %d", d.Decoded())
	}
	for i := 0; i < 3; i++ {
		if _, err := d.Next(); err != nil {
			t.Fatal(err)
		}
		if d.Decoded() != i+1 {
			t.Fatalf("after record %d Decoded = %d", i, d.Decoded())
		}
	}
	if _, err := d.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("end = %v", err)
	}
	// InputOffset stops at the last JSON token; the trailing newline may
	// stay uncounted.
	if off := d.Offset(); off < int64(len(data)-1) || off > int64(len(data)) {
		t.Fatalf("Offset = %d, want ~%d", off, len(data))
	}
}

// TestPosErrorFormat pins the error rendering consumers grep for.
func TestPosErrorFormat(t *testing.T) {
	e := &PosError{Record: 7, Offset: 4242, Err: fmt.Errorf("boom")}
	want := "stream: record 7 (byte offset 4242): boom"
	if e.Error() != want {
		t.Fatalf("PosError renders %q, want %q", e.Error(), want)
	}
	if !errors.Is(e, e.Err) {
		t.Fatal("PosError does not unwrap")
	}
}
