// Package stream is the flight recorder: a deterministic NDJSON
// pipeline that emits one record per completed wardrive stop — stop
// index, sim-time window, census delta, and a per-stop telemetry
// delta report — while the drive is still running.
//
// The stream is the incremental counterpart of the end-of-run
// artifacts: records are written in stop-index order regardless of
// worker count (the coordinator reorders shard completions before
// emitting), so the byte stream for a fixed seed is identical at any
// -workers value; and the per-stop telemetry deltas are complete, so
// folding every record's report with telemetry.RestoreRegistry +
// Registry.MergeFrom reproduces the final Snapshot() exactly. Those
// two properties make the stream safe to checkpoint, diff, tail, and
// serve — it is the producer interface a politewifid service tier
// consumes.
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"

	"politewifi/internal/telemetry"
)

// Schema identifies the stream record encoding; bump on breaking
// changes to the JSON layout.
const Schema = "politewifi.telemetry.stream/v1"

// Census is a verdict-bucketed device count. In a Record it appears
// twice: Census holds this stop's delta, Totals the running
// cumulative sum — so a consumer can render progress without
// replaying the stream from the start.
type Census struct {
	Clients          int `json:"clients"`
	APs              int `json:"aps"`
	ClientsResponded int `json:"clients_responded"`
	APsResponded     int `json:"aps_responded"`
	Silent           int `json:"silent"`
	Inconclusive     int `json:"inconclusive"`
}

// Add folds another census into c.
func (c *Census) Add(o Census) {
	c.Clients += o.Clients
	c.APs += o.APs
	c.ClientsResponded += o.ClientsResponded
	c.APsResponded += o.APsResponded
	c.Silent += o.Silent
	c.Inconclusive += o.Inconclusive
}

// Devices reports the total devices in the census.
func (c Census) Devices() int { return c.Clients + c.APs }

// Record is one NDJSON line of the stream: everything one completed
// stop contributed to the drive.
type Record struct {
	Schema string `json:"schema"`
	// Stop is the 0-based stop index; records are emitted in strictly
	// increasing Stop order with no gaps.
	Stop  int `json:"stop"`
	Stops int `json:"stops"`
	// SimStartNS/SimEndNS bound the stop's own virtual-time window
	// (every stop starts its scheduler at zero).
	SimStartNS int64 `json:"sim_start_ns"`
	SimEndNS   int64 `json:"sim_end_ns"`
	// Census is this stop's delta; Totals is cumulative through this
	// stop.
	Census Census `json:"census"`
	Totals Census `json:"totals"`
	// Telemetry is the stop's delta registry snapshot; nil when the
	// drive runs without metrics. Folding every record's Telemetry
	// with telemetry.RestoreRegistry + MergeFrom reproduces the final
	// merged report exactly.
	Telemetry *telemetry.Report `json:"telemetry,omitempty"`
	// Cancelled marks a trailer record: a cooperatively cancelled
	// drive drains its workers and then emits one final record with
	// Cancelled true, a zero Census delta, the final Totals, and Stop
	// equal to the number of stops actually completed — so a consumer
	// can tell a deliberate partial drive from a severed pipe. An
	// uncancelled drive never sets the field, keeping its byte stream
	// identical to one produced before the field existed.
	Cancelled bool `json:"cancelled,omitempty"`
}

// IsTrailer reports whether the record is a cancellation trailer
// rather than a completed stop.
func (r Record) IsTrailer() bool { return r.Cancelled }

// Trailer builds the cancellation trailer for a drive that completed
// stopsDone of stops with the given final totals.
func Trailer(stopsDone, stops int, totals Census) Record {
	return Record{
		Schema:    Schema,
		Stop:      stopsDone,
		Stops:     stops,
		Totals:    totals,
		Cancelled: true,
	}
}

// Writer emits records as NDJSON. A nil *Writer is a valid no-op, so
// the world loop writes unconditionally. The first underlying write
// error latches: subsequent Writes become no-ops and the error is
// reported by Err() — a consumer disconnecting mid-stream must never
// affect the drive result.
type Writer struct {
	mu    sync.Mutex
	w     io.Writer
	err   error
	count int
}

// NewWriter wraps w as a stream writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Write emits one record as a single NDJSON line. Errors latch; the
// caller may ignore the return value and check Err() at drive end.
func (sw *Writer) Write(rec Record) error {
	if sw == nil {
		return nil
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.err != nil {
		return sw.err
	}
	buf, err := json.Marshal(rec)
	if err != nil {
		sw.err = err
		return err
	}
	buf = append(buf, '\n')
	if _, err := sw.w.Write(buf); err != nil {
		sw.err = err
		return err
	}
	sw.count++
	return nil
}

// Err reports the latched write error, if any.
func (sw *Writer) Err() error {
	if sw == nil {
		return nil
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.err
}

// Count reports how many records were successfully written.
func (sw *Writer) Count() int {
	if sw == nil {
		return 0
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.count
}

// PosError is a decode or fold failure pinned to its position in the
// stream: the 0-based index of the record being processed and the
// byte offset the decoder had reached. A consumer recovering a
// truncated flight-recorder file can report — and resume from —
// exactly the damage, instead of panicking or folding a silent
// partial aggregate.
type PosError struct {
	Record int   // 0-based index of the record being decoded
	Offset int64 // byte offset into the stream where decoding stopped
	Err    error
}

func (e *PosError) Error() string {
	return fmt.Sprintf("stream: record %d (byte offset %d): %v", e.Record, e.Offset, e.Err)
}

func (e *PosError) Unwrap() error { return e.Err }

// Decoder reads a stream record-by-record — from a file or a live
// pipe (it returns records as soon as complete lines arrive).
type Decoder struct {
	dec *json.Decoder
	n   int // records decoded so far
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{dec: json.NewDecoder(r)}
}

// Next decodes the next record; io.EOF at clean end of stream. Every
// other failure — a record chopped mid-line, corrupted JSON, a wrong
// schema — is returned as a *PosError carrying the record index and
// byte offset. The record's schema is validated.
func (d *Decoder) Next() (Record, error) {
	var rec Record
	if err := d.dec.Decode(&rec); err != nil {
		if errors.Is(err, io.EOF) {
			// A clean EOF means the stream ended on a record boundary.
			// EOF inside a record means the tail was chopped — report
			// where, rather than pretending the stream ended cleanly.
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("truncated record: %w", err)
		}
		return Record{}, &PosError{Record: d.n, Offset: d.dec.InputOffset(), Err: err}
	}
	if rec.Schema != Schema {
		return Record{}, &PosError{
			Record: d.n, Offset: d.dec.InputOffset(),
			Err: fmt.Errorf("record schema %q (want %q)", rec.Schema, Schema),
		}
	}
	d.n++
	return rec, nil
}

// Decoded reports how many records Next has returned successfully.
func (d *Decoder) Decoded() int { return d.n }

// Offset reports the byte offset the decoder has consumed.
func (d *Decoder) Offset() int64 { return d.dec.InputOffset() }

// FoldResult is the aggregate of a full stream: the final census and
// the telemetry registry rebuilt by folding every per-stop delta.
type FoldResult struct {
	Stops   int
	Records int
	Totals  Census
	// Cancelled records whether the stream ended with a cancellation
	// trailer — a deliberately partial drive, as opposed to a severed
	// pipe (Records < Stops with no trailer).
	Cancelled bool
	// Registry is the fold of every record's Telemetry delta; its
	// Snapshot() must equal the drive's final merged report. Nil when
	// the stream carried no telemetry.
	Registry *telemetry.Registry
}

// Folder folds a stream record-by-record. It is the one fold
// implementation — Fold, `politewifi tail -fold`, and the politewifid
// job endpoints all feed records through it — validating the stream's
// integrity as it goes: contiguous 0-based stop indexes, consistent
// stop totals, running Totals matching the summed deltas, no records
// after a cancellation trailer, and per-stop telemetry deltas that
// restore cleanly and merge without conflicting instrument shapes. A
// corrupted record is a positioned error, never a panic or a silent
// partial fold.
type Folder struct {
	res FoldResult
}

// NewFolder returns an empty folder.
func NewFolder() *Folder { return &Folder{} }

// Add folds one record. The error, if any, identifies the offending
// record by stop index; Add must not be called again after an error.
func (f *Folder) Add(rec Record) error {
	res := &f.res
	if res.Cancelled {
		return fmt.Errorf("stream: record after cancellation trailer (stop index %d)", rec.Stop)
	}
	if rec.IsTrailer() {
		if rec.Stop != res.Records {
			return fmt.Errorf("stream: trailer claims %d completed stops but %d records were folded", rec.Stop, res.Records)
		}
		if rec.Totals != res.Totals {
			return fmt.Errorf("stream: trailer totals %+v do not match summed deltas %+v", rec.Totals, res.Totals)
		}
		res.Cancelled = true
		return nil
	}
	if rec.Stop != res.Records {
		return fmt.Errorf("stream: record %d has stop index %d (stream not contiguous)", res.Records, rec.Stop)
	}
	if res.Records == 0 {
		res.Stops = rec.Stops
	} else if rec.Stops != res.Stops {
		return fmt.Errorf("stream: stop %d reports %d total stops (earlier records said %d)", rec.Stop, rec.Stops, res.Stops)
	}
	res.Totals.Add(rec.Census)
	if rec.Totals != res.Totals {
		return fmt.Errorf("stream: stop %d running totals %+v do not match summed deltas %+v", rec.Stop, rec.Totals, res.Totals)
	}
	if rec.Telemetry != nil {
		shard, err := telemetry.RestoreRegistry(*rec.Telemetry)
		if err != nil {
			return fmt.Errorf("stream: stop %d: %w", rec.Stop, err)
		}
		if res.Registry == nil {
			res.Registry = telemetry.NewRegistry(nil)
		}
		// A delta whose instrument shapes conflict with the aggregate
		// (a histogram re-bucketed mid-stream by corruption) would
		// panic inside MergeFrom; surface it as a positioned error.
		if err := res.Registry.MergeableFrom(shard); err != nil {
			return fmt.Errorf("stream: stop %d: %w", rec.Stop, err)
		}
		res.Registry.MergeFrom(shard)
	}
	res.Records++
	return nil
}

// Result returns the fold so far. The pointee is owned by the folder;
// callers read it after the last Add.
func (f *Folder) Result() *FoldResult { return &f.res }

// Fold consumes an entire stream and folds it: census deltas sum, and
// each record's telemetry delta is restored and merged in order —
// the same MergeFrom path the live drive uses, so the folded
// registry's Snapshot() is byte-identical to the final report. A
// truncated or corrupted stream yields a *PosError naming the record
// index and byte offset of the damage.
func Fold(r io.Reader) (*FoldResult, error) {
	d := NewDecoder(r)
	f := NewFolder()
	for {
		rec, err := d.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		// Add's errors name the offending stop index themselves; only
		// decode-level failures need the byte-offset wrapper.
		if err := f.Add(rec); err != nil {
			return nil, err
		}
	}
	return f.Result(), nil
}
