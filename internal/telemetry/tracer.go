package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"politewifi/internal/eventsim"
)

// Tracer records frame-lifecycle spans keyed to virtual time: an
// injected frame produces a tx span on the transmitter's track, an
// rx span on every receiver that locked onto it (linked by flow ID
// through medium propagation), and verdict instants (ack-verified /
// timeout) from the attacker pipeline. The result exports as Chrome
// trace_event JSON (open in about:tracing or https://ui.perfetto.dev)
// or as a plain-text timeline.
//
// Two ID spaces link spans causally:
//
//   - a flow ID ties together the spans of ONE frame's lifecycle
//     (inject → air → receive);
//   - an exchange ID ties together EVERY frame belonging to one probe
//     exchange against one station — the probe tx, its retries, the
//     solicited ACK/CTS response, and the final verdict instant — so
//     a probe exchange renders as a connected tree in the Chrome
//     trace and its end-to-end latency is queryable.
//
// A nil *Tracer is a valid no-op: every method checks the receiver,
// so instrumented layers call unconditionally.
type Tracer struct {
	nextID atomic.Uint64
	nextEx atomic.Uint64

	mu      sync.Mutex
	spans   []TraceSpan
	limit   int
	dropped uint64
}

// TraceSpan is one recorded event. Phase follows the trace_event
// format: 'X' complete span, 'i' instant.
type TraceSpan struct {
	Track string // rendered as a thread lane
	Name  string
	Phase byte
	Start eventsim.Time
	End   eventsim.Time // == Start for instants
	// FlowID links spans belonging to one frame's lifecycle
	// (inject → air → receive → ack); 0 means unlinked.
	FlowID uint64
	// Exchange links spans belonging to one probe exchange (probe →
	// response/retry → verdict) across frames; 0 means unlinked.
	Exchange uint64
	Args     map[string]string
}

// DefaultTraceLimit bounds recorded spans so a long run cannot
// exhaust memory; excess spans are counted and dropped.
const DefaultTraceLimit = 200_000

// NewTracer creates a tracer with the default span limit.
func NewTracer() *Tracer {
	return &Tracer{limit: DefaultTraceLimit}
}

// NextID mints a fresh flow ID for a new frame lifecycle.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// NextExchange mints a fresh exchange ID for a new probe exchange.
func (t *Tracer) NextExchange() uint64 {
	if t == nil {
		return 0
	}
	return t.nextEx.Add(1)
}

// Span records a complete span on a track. args may be nil.
func (t *Tracer) Span(track, name string, start, end eventsim.Time, flowID, exchange uint64, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceSpan{Track: track, Name: name, Phase: 'X', Start: start, End: end, FlowID: flowID, Exchange: exchange, Args: args})
}

// Instant records a zero-duration event on a track.
func (t *Tracer) Instant(track, name string, at eventsim.Time, flowID, exchange uint64, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceSpan{Track: track, Name: name, Phase: 'i', Start: at, End: at, FlowID: flowID, Exchange: exchange, Args: args})
}

func (t *Tracer) record(s TraceSpan) {
	t.mu.Lock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports spans discarded over the limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// MergeFrom appends every span of src, rebasing src's flow and
// exchange IDs past t's so the two ID spaces never collide. It exists
// for sharded workloads (the parallel wardrive): each stop records
// into a private tracer, and the coordinator merges the shards in
// stop-index order, so the merged trace — and its Chrome JSON
// rendering — is identical to a sequential run's for every worker
// count. src must be quiescent; t's span limit still applies, with
// overflow counted into Dropped alongside src's own drops.
func (t *Tracer) MergeFrom(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	src.mu.Lock()
	spans := append([]TraceSpan(nil), src.spans...)
	srcDropped := src.dropped
	src.mu.Unlock()

	flowBase := t.nextID.Load()
	exBase := t.nextEx.Load()
	t.mu.Lock()
	for _, s := range spans {
		if s.FlowID != 0 {
			s.FlowID += flowBase
		}
		if s.Exchange != 0 {
			s.Exchange += exBase
		}
		if t.limit > 0 && len(t.spans) >= t.limit {
			t.dropped++
		} else {
			t.spans = append(t.spans, s)
		}
	}
	t.dropped += srcDropped
	t.mu.Unlock()
	t.nextID.Add(src.nextID.Load())
	t.nextEx.Add(src.nextEx.Load())
}

// snapshotSorted returns a time-ordered copy of the spans. The sort
// is stable, so spans with equal timestamps keep their recording
// order — which is deterministic (simulation event order within a
// stop, stop-index order across merged shards), making the rendered
// output byte-identical across replays and worker counts.
func (t *Tracer) snapshotSorted() []TraceSpan {
	t.mu.Lock()
	out := append([]TraceSpan(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is the trace_event JSON wire format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeJSON exports the trace in Chrome trace_event JSON array
// format, loadable in about:tracing and Perfetto. Tracks become
// threads of one process; frame lifecycles are linked with
// "frame-flow" events and probe exchanges with "exchange" flow
// events, so selecting any probe highlights its whole
// probe→response/retry→verdict tree.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	spans := t.snapshotSorted()

	// Assign tids in order of first appearance and name the lanes.
	tids := make(map[string]int)
	var events []chromeEvent
	tidOf := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]string{"name": track},
		})
		return id
	}

	// Flow bookkeeping: first span of a flow (or exchange) emits a
	// flow-start, every later one a flow-step terminating at that span.
	flowSeen := make(map[uint64]bool)
	exSeen := make(map[uint64]bool)

	for _, s := range spans {
		tid := tidOf(s.Track)
		ev := chromeEvent{
			Name: s.Name, Cat: "frame", Ph: string(s.Phase),
			TS: s.Start.Micros(), PID: 1, TID: tid, Args: s.Args,
		}
		if s.Phase == 'X' {
			d := s.End.Micros() - s.Start.Micros()
			ev.Dur = &d
		}
		if s.Phase == 'i' {
			ev.S = "t" // thread-scoped instant
		}
		events = append(events, ev)
		if s.FlowID != 0 {
			id := fmt.Sprintf("%#x", s.FlowID)
			fe := chromeEvent{
				Name: "frame-flow", Cat: "frame", TS: s.Start.Micros(), PID: 1, TID: tid, ID: id,
			}
			if !flowSeen[s.FlowID] {
				flowSeen[s.FlowID] = true
				fe.Ph = "s"
			} else {
				fe.Ph = "t"
			}
			events = append(events, fe)
		}
		if s.Exchange != 0 {
			id := fmt.Sprintf("ex:%#x", s.Exchange)
			fe := chromeEvent{
				Name: "exchange", Cat: "exchange", TS: s.Start.Micros(), PID: 1, TID: tid, ID: id,
			}
			if !exSeen[s.Exchange] {
				exSeen[s.Exchange] = true
				fe.Ph = "s"
			} else {
				fe.Ph = "t"
				fe.BP = "e" // bind to the enclosing slice, not the next one
			}
			events = append(events, fe)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ExchangeLatency is the observed extent of one probe exchange: the
// virtual time between its earliest and latest recorded span.
type ExchangeLatency struct {
	Exchange uint64
	Start    eventsim.Time
	End      eventsim.Time
	Spans    int
}

// Latency reports the exchange's end-to-end virtual duration.
func (e ExchangeLatency) Latency() eventsim.Time { return e.End - e.Start }

// ExchangeLatencies computes the per-exchange extent of every
// exchange in the trace, ordered by exchange ID — the queryable
// counterpart of the pipeline.exchange_latency_us histogram.
func (t *Tracer) ExchangeLatencies() []ExchangeLatency {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	byEx := make(map[uint64]*ExchangeLatency)
	for _, s := range t.spans {
		if s.Exchange == 0 {
			continue
		}
		e, ok := byEx[s.Exchange]
		if !ok {
			e = &ExchangeLatency{Exchange: s.Exchange, Start: s.Start, End: s.End}
			byEx[s.Exchange] = e
		}
		if s.Start < e.Start {
			e.Start = s.Start
		}
		if s.End > e.End {
			e.End = s.End
		}
		e.Spans++
	}
	t.mu.Unlock()
	out := make([]ExchangeLatency, 0, len(byEx))
	for _, e := range byEx {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Exchange < out[j].Exchange })
	return out
}

// Timeline renders the trace as a plain-text table ordered by
// virtual time — the quick-look alternative to about:tracing.
func (t *Tracer) Timeline() string {
	if t == nil {
		return ""
	}
	spans := t.snapshotSorted()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %-16s %-26s %s\n", "Start", "Dur(µs)", "Track", "Event", "Args")
	for _, s := range spans {
		dur := ""
		if s.Phase == 'X' {
			dur = fmt.Sprintf("%.1f", (s.End - s.Start).Micros())
		}
		args := ""
		if len(s.Args) > 0 {
			keys := make([]string, 0, len(s.Args))
			for k := range s.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+s.Args[k])
			}
			args = strings.Join(parts, " ")
		}
		name := s.Name
		if s.FlowID != 0 {
			name = fmt.Sprintf("%s #%d", s.Name, s.FlowID)
		}
		if s.Exchange != 0 {
			name = fmt.Sprintf("%s ~ex%d", name, s.Exchange)
		}
		fmt.Fprintf(&b, "%-12s %-10s %-16s %-26s %s\n", s.Start, dur, s.Track, name, args)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d spans dropped over the %d-span limit)\n", d, t.limitSnapshot())
	}
	return b.String()
}

func (t *Tracer) limitSnapshot() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}
