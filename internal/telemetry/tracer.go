package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"politewifi/internal/eventsim"
)

// Tracer records frame-lifecycle spans keyed to virtual time: an
// injected frame produces a tx span on the transmitter's track, an
// rx span on every receiver that locked onto it (linked by flow ID
// through medium propagation), and verdict instants (ack-verified /
// timeout) from the attacker pipeline. The result exports as Chrome
// trace_event JSON (open in about:tracing or https://ui.perfetto.dev)
// or as a plain-text timeline.
//
// A nil *Tracer is a valid no-op: every method checks the receiver,
// so instrumented layers call unconditionally.
type Tracer struct {
	nextID atomic.Uint64

	mu      sync.Mutex
	spans   []TraceSpan
	limit   int
	dropped uint64
}

// TraceSpan is one recorded event. Phase follows the trace_event
// format: 'X' complete span, 'i' instant.
type TraceSpan struct {
	Track string // rendered as a thread lane
	Name  string
	Phase byte
	Start eventsim.Time
	End   eventsim.Time // == Start for instants
	// FlowID links spans belonging to one frame's lifecycle
	// (inject → air → receive → ack); 0 means unlinked.
	FlowID uint64
	Args   map[string]string
}

// DefaultTraceLimit bounds recorded spans so a long run cannot
// exhaust memory; excess spans are counted and dropped.
const DefaultTraceLimit = 200_000

// NewTracer creates a tracer with the default span limit.
func NewTracer() *Tracer {
	return &Tracer{limit: DefaultTraceLimit}
}

// NextID mints a fresh flow ID for a new frame lifecycle.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID.Add(1)
}

// Span records a complete span on a track. args may be nil.
func (t *Tracer) Span(track, name string, start, end eventsim.Time, flowID uint64, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceSpan{Track: track, Name: name, Phase: 'X', Start: start, End: end, FlowID: flowID, Args: args})
}

// Instant records a zero-duration event on a track.
func (t *Tracer) Instant(track, name string, at eventsim.Time, flowID uint64, args map[string]string) {
	if t == nil {
		return
	}
	t.record(TraceSpan{Track: track, Name: name, Phase: 'i', Start: at, End: at, FlowID: flowID, Args: args})
}

func (t *Tracer) record(s TraceSpan) {
	t.mu.Lock()
	if t.limit > 0 && len(t.spans) >= t.limit {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Len reports the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped reports spans discarded over the limit.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// snapshotSorted returns a time-ordered copy of the spans.
func (t *Tracer) snapshotSorted() []TraceSpan {
	t.mu.Lock()
	out := append([]TraceSpan(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is the trace_event JSON wire format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"` // microseconds
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeJSON exports the trace in Chrome trace_event JSON array
// format, loadable in about:tracing and Perfetto. Tracks become
// threads of one process; frame lifecycles are linked with flow
// events.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, "[]")
		return err
	}
	spans := t.snapshotSorted()

	// Assign tids in order of first appearance and name the lanes.
	tids := make(map[string]int)
	var events []chromeEvent
	tidOf := func(track string) int {
		if id, ok := tids[track]; ok {
			return id
		}
		id := len(tids) + 1
		tids[track] = id
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]string{"name": track},
		})
		return id
	}

	// Flow bookkeeping: first span of a flow emits a flow-start, every
	// later one a flow-step terminating at that span.
	flowSeen := make(map[uint64]bool)

	for _, s := range spans {
		tid := tidOf(s.Track)
		ev := chromeEvent{
			Name: s.Name, Cat: "frame", Ph: string(s.Phase),
			TS: s.Start.Micros(), PID: 1, TID: tid, Args: s.Args,
		}
		if s.Phase == 'X' {
			d := s.End.Micros() - s.Start.Micros()
			ev.Dur = &d
		}
		if s.Phase == 'i' {
			ev.S = "t" // thread-scoped instant
		}
		events = append(events, ev)
		if s.FlowID != 0 {
			id := fmt.Sprintf("%#x", s.FlowID)
			fe := chromeEvent{
				Name: "frame-flow", Cat: "frame", TS: s.Start.Micros(), PID: 1, TID: tid, ID: id,
			}
			if !flowSeen[s.FlowID] {
				flowSeen[s.FlowID] = true
				fe.Ph = "s"
			} else {
				fe.Ph = "t"
			}
			events = append(events, fe)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Timeline renders the trace as a plain-text table ordered by
// virtual time — the quick-look alternative to about:tracing.
func (t *Tracer) Timeline() string {
	if t == nil {
		return ""
	}
	spans := t.snapshotSorted()
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s %-16s %-26s %s\n", "Start", "Dur(µs)", "Track", "Event", "Args")
	for _, s := range spans {
		dur := ""
		if s.Phase == 'X' {
			dur = fmt.Sprintf("%.1f", (s.End - s.Start).Micros())
		}
		args := ""
		if len(s.Args) > 0 {
			keys := make([]string, 0, len(s.Args))
			for k := range s.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+s.Args[k])
			}
			args = strings.Join(parts, " ")
		}
		name := s.Name
		if s.FlowID != 0 {
			name = fmt.Sprintf("%s #%d", s.Name, s.FlowID)
		}
		fmt.Fprintf(&b, "%-12s %-10s %-16s %-26s %s\n", s.Start, dur, s.Track, name, args)
	}
	if d := t.Dropped(); d > 0 {
		fmt.Fprintf(&b, "(%d spans dropped over the %d-span limit)\n", d, t.limitSnapshot())
	}
	return b.String()
}

func (t *Tracer) limitSnapshot() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.limit
}
