package jobspec

import (
	"encoding/json"
	"flag"
	"reflect"
	"strings"
	"testing"

	"politewifi/internal/eventsim"
)

// TestJSONRoundTrip pins the wire format: a fully populated spec
// survives marshal→unmarshal bit for bit.
func TestJSONRoundTrip(t *testing.T) {
	in := Spec{
		Kind: KindDrive, Seed: 7, Scale: 0.02, StopSize: 8, DwellMS: 400,
		Workers: 4, Faults: "loss=0.2,ack=0.1",
	}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decode(strings.NewReader(string(buf)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the spec:\nin:  %+v\nout: %+v", in, out)
	}
}

// TestDecodeDefaults: an empty JSON object decodes to the same spec
// the untouched CLI flags produce.
func TestDecodeDefaults(t *testing.T) {
	got, err := Decode(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if want := Drive(); !reflect.DeepEqual(got, want) {
		t.Fatalf("empty object decoded to %+v, want CLI defaults %+v", got, want)
	}
	got, err = Decode(strings.NewReader(`{"kind":"losssweep"}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := LossSweep(); !reflect.DeepEqual(got, want) {
		t.Fatalf("losssweep object decoded to %+v, want CLI defaults %+v", got, want)
	}
}

// TestDecodeRejects: unknown fields, bad kinds, bad fault specs and
// out-of-range values fail loudly at decode time.
func TestDecodeRejects(t *testing.T) {
	for _, bad := range []string{
		`{"sede":7}`,             // typoed key
		`{"kind":"csi"}`,         // unknown kind
		`{"scale":2}`,            // scale > 1
		`{"scale":-0.5}`,         // negative scale
		`{"stop_size":-1}`,       // negative stop size
		`{"workers":-2}`,         // negative workers
		`{"faults":"loss=nope"}`, // malformed fault spec
		`{"faults":"zorp=1"}`,    // unknown fault key
		`{"kind":"losssweep","faults":"loss=0.1"}`, // faults on a sweep
		`{"rates":[0.5]}`,                          // rates on a drive
		`{"kind":"losssweep","rates":[1.5]}`,       // rate out of range
		`{"probe_interval_us":-1}`,                 // negative probe cadence
		`{"scan_interval_ms":-5}`,                  // negative scan cadence
	} {
		if _, err := Decode(strings.NewReader(bad)); err == nil {
			t.Errorf("Decode(%s) succeeded, want error", bad)
		}
	}
}

// TestFlagsMatchJSONDefaults: parsing zero CLI flags and decoding an
// empty JSON body must build the identical spec — the guarantee that
// a daemon job and a CLI run are parameterised the same way.
func TestFlagsMatchJSONDefaults(t *testing.T) {
	spec := Drive()
	fs := flag.NewFlagSet("wardrive", flag.ContinueOnError)
	spec.RegisterDriveFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Decode(strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, fromJSON) {
		t.Fatalf("flag defaults %+v != JSON defaults %+v", spec, fromJSON)
	}
}

// TestFlagsParse: the canonical flag names bind to the spec fields.
func TestFlagsParse(t *testing.T) {
	spec := Drive()
	fs := flag.NewFlagSet("wardrive", flag.ContinueOnError)
	spec.RegisterDriveFlags(fs)
	err := fs.Parse([]string{
		"-seed", "9", "-scale", "0.05", "-stop-size", "6",
		"-dwell", "800", "-workers", "3", "-faults", "loss=0.3",
		"-probe-interval", "1500", "-scan-interval", "25",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Kind: KindDrive, Seed: 9, Scale: 0.05, StopSize: 6, DwellMS: 800, Workers: 3, Faults: "loss=0.3",
		ProbeIntervalUS: 1500, ScanIntervalMS: 25}
	if !reflect.DeepEqual(spec, want) {
		t.Fatalf("parsed %+v, want %+v", spec, want)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWorldConfig: the built world.Config carries every spec field,
// with the fault spec parsed through the real grammar.
func TestWorldConfig(t *testing.T) {
	spec := Spec{Kind: KindDrive, Seed: 11, Scale: 0.1, StopSize: 5, DwellMS: 700, Workers: 2, Faults: "ack=0.25",
		ProbeIntervalUS: 1500, ScanIntervalMS: 25}
	cfg, err := spec.WorldConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 11 || cfg.Scale != 0.1 || cfg.HouseholdsPerStop != 5 || cfg.Workers != 2 {
		t.Fatalf("config %+v does not carry the spec", cfg)
	}
	if cfg.DwellPerChannel != 700*eventsim.Millisecond {
		t.Fatalf("dwell %v, want 700ms", cfg.DwellPerChannel)
	}
	if cfg.Faults == nil || cfg.Faults.ACKLoss != 0.25 {
		t.Fatalf("faults %+v, want ACKLoss 0.25", cfg.Faults)
	}
	if cfg.ProbeInterval != 1500*eventsim.Microsecond || cfg.ActiveScanInterval != 25*eventsim.Millisecond {
		t.Fatalf("attacker cadence %v/%v, want 1.5ms/25ms", cfg.ProbeInterval, cfg.ActiveScanInterval)
	}

	if _, err := (Spec{Kind: "bogus"}).WorldConfig(); err == nil {
		t.Fatal("WorldConfig accepted an invalid spec")
	}
}
