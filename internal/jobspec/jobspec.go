// Package jobspec is the single description of a measurement job —
// the wardrive census of Table 2 or the loss-rate accuracy sweep —
// shared by every front end. The one-shot CLIs (cmd/wardrive,
// politewifi wardrive, politewifi losssweep) register their flags
// from a Spec, and the politewifid daemon accepts the same Spec as a
// JSON body, so a job submitted over HTTP is parameterised exactly
// like a job typed at a shell: same defaults, same validation, same
// `-faults` grammar, same deterministic output for the same values.
//
// A Spec round-trips through JSON losslessly; defaulting is explicit
// (ApplyDefaults) so a decoded spec and a flag-parsed spec agree
// field for field before any world is built.
package jobspec

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strings"

	"politewifi/internal/eventsim"
	"politewifi/internal/faults"
	"politewifi/internal/world"
)

// Kind selects the measurement campaign a Spec describes.
type Kind string

const (
	// KindDrive is the §3 wardrive census (Table 2): one drive, one
	// city, one flight-recorder stream.
	KindDrive Kind = "drive"
	// KindLossSweep repeats the drive across channel loss rates and
	// reports census accuracy per rate (EXPERIMENTS.md EX12).
	KindLossSweep Kind = "losssweep"
)

// Default values shared by the CLI flags and the JSON defaulting
// path. DefaultSeed is the HotNets'20 presentation date, the seed
// every artifact in the repo is pinned to.
const (
	DefaultSeed       = int64(20201104)
	DefaultScale      = 1.0
	DefaultSweepScale = 0.1
	DefaultStopSize   = 4
	DefaultDwellMS    = 1200
)

// Spec parameterises one job. The zero value is not runnable;
// construct with Drive/LossSweep or decode JSON and call
// ApplyDefaults. All fields round-trip through JSON.
type Spec struct {
	// Kind is "drive" or "losssweep"; empty defaults to "drive".
	Kind Kind `json:"kind"`
	// Seed is the root simulation seed. 0 means DefaultSeed (the CLI
	// default); every byte of the job's output is a pure function of
	// the spec, so two jobs with equal specs produce equal streams.
	Seed int64 `json:"seed"`
	// Scale scales the Table 2 census (1.0 = the full 5,328 devices).
	Scale float64 `json:"scale"`
	// StopSize is the number of households per vehicle stop.
	StopSize int `json:"stop_size"`
	// DwellMS is the per-channel dwell per stop in simulated
	// milliseconds.
	DwellMS int `json:"dwell_ms"`
	// Workers bounds the per-job worker pool when the job runs inside
	// a one-shot CLI (0 = all cores). The daemon ignores it: there,
	// stops are executed by the shared global pool, and the output is
	// byte-identical either way.
	Workers int `json:"workers,omitempty"`
	// Faults is a channel fault spec in the `-faults` grammar, e.g.
	// "loss=0.3,ack=0.1,jam=0.2,deaf=0.1" (see faults.ParseSpec).
	// Only valid for drive jobs; the loss sweep composes its own
	// fault configs per rate.
	Faults string `json:"faults,omitempty"`
	// ProbeIntervalUS overrides the attacker's probe-request cadence
	// in simulated microseconds (0 keeps the world default, 2ms). The
	// scenario fuzzer varies it to shake out timing-dependent bugs.
	ProbeIntervalUS int `json:"probe_interval_us,omitempty"`
	// ScanIntervalMS overrides the attacker's active-scan sweep
	// cadence in simulated milliseconds (0 keeps the world default,
	// 50ms).
	ScanIntervalMS int `json:"scan_interval_ms,omitempty"`
	// Rates lists the loss rates a losssweep visits; empty means
	// experiments.DefaultLossRates.
	Rates []float64 `json:"rates,omitempty"`
}

// Drive returns the default wardrive spec — the values the wardrive
// CLI flags default to.
func Drive() Spec {
	return Spec{
		Kind:     KindDrive,
		Seed:     DefaultSeed,
		Scale:    DefaultScale,
		StopSize: DefaultStopSize,
		DwellMS:  DefaultDwellMS,
	}
}

// LossSweep returns the default loss-sweep spec — the values the
// losssweep CLI flags default to (a 0.1-scale city keeps the
// one-drive-per-rate sweep quick).
func LossSweep() Spec {
	return Spec{
		Kind:     KindLossSweep,
		Seed:     DefaultSeed,
		Scale:    DefaultSweepScale,
		StopSize: DefaultStopSize,
		DwellMS:  DefaultDwellMS,
	}
}

// ApplyDefaults fills unset fields in place: empty Kind becomes
// drive, zero Seed/Scale/StopSize/DwellMS take the kind's defaults.
// Decoded JSON specs pass through here so an omitted field means
// exactly what an untouched CLI flag means.
func (s *Spec) ApplyDefaults() {
	if s.Kind == "" {
		s.Kind = KindDrive
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	if s.Scale == 0 {
		if s.Kind == KindLossSweep {
			s.Scale = DefaultSweepScale
		} else {
			s.Scale = DefaultScale
		}
	}
	if s.StopSize == 0 {
		s.StopSize = DefaultStopSize
	}
	if s.DwellMS == 0 {
		s.DwellMS = DefaultDwellMS
	}
}

// Validate reports the first problem with the spec. It parses the
// fault spec with the real grammar, so a job rejected here is exactly
// a job the CLI would have rejected.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindDrive, KindLossSweep:
	default:
		return fmt.Errorf("jobspec: unknown kind %q (want %q or %q)", s.Kind, KindDrive, KindLossSweep)
	}
	if s.Scale <= 0 || s.Scale > 1 {
		return fmt.Errorf("jobspec: scale %g out of range (0, 1]", s.Scale)
	}
	if s.StopSize < 1 {
		return fmt.Errorf("jobspec: stop_size %d must be at least 1", s.StopSize)
	}
	if s.DwellMS < 1 {
		return fmt.Errorf("jobspec: dwell_ms %d must be at least 1", s.DwellMS)
	}
	if s.Workers < 0 {
		return fmt.Errorf("jobspec: workers %d must not be negative", s.Workers)
	}
	if s.ProbeIntervalUS < 0 {
		return fmt.Errorf("jobspec: probe_interval_us %d must not be negative", s.ProbeIntervalUS)
	}
	if s.ScanIntervalMS < 0 {
		return fmt.Errorf("jobspec: scan_interval_ms %d must not be negative", s.ScanIntervalMS)
	}
	if s.Faults != "" {
		if s.Kind == KindLossSweep {
			return fmt.Errorf("jobspec: losssweep composes its own fault configs; drop the faults field")
		}
		if _, err := faults.ParseSpec(s.Faults); err != nil {
			return err
		}
	}
	for _, r := range s.Rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("jobspec: loss rate %g out of range [0, 1]", r)
		}
	}
	if len(s.Rates) > 0 && s.Kind != KindLossSweep {
		return fmt.Errorf("jobspec: rates only apply to losssweep jobs")
	}
	return nil
}

// WorldConfig builds the world.Config the spec describes. The caller
// attaches run plumbing (Metrics, Stream, Cancel, Submit) on top.
func (s Spec) WorldConfig() (world.Config, error) {
	if err := s.Validate(); err != nil {
		return world.Config{}, err
	}
	cfg := world.DefaultConfig()
	cfg.Seed = s.Seed
	cfg.Scale = s.Scale
	cfg.HouseholdsPerStop = s.StopSize
	cfg.DwellPerChannel = eventsim.Time(s.DwellMS) * eventsim.Millisecond
	cfg.Workers = s.Workers
	cfg.ProbeInterval = eventsim.Time(s.ProbeIntervalUS) * eventsim.Microsecond
	cfg.ActiveScanInterval = eventsim.Time(s.ScanIntervalMS) * eventsim.Millisecond
	if s.Faults != "" {
		fc, err := faults.ParseSpec(s.Faults)
		if err != nil {
			return world.Config{}, err
		}
		cfg.Faults = &fc
	}
	return cfg, nil
}

// RegisterDriveFlags binds the drive spec's fields to the canonical
// wardrive CLI flags (same names, same help, same defaults) on fs.
// Parse the flag set, then read the Spec.
func (s *Spec) RegisterDriveFlags(fs *flag.FlagSet) {
	s.registerCommonFlags(fs)
	fs.StringVar(&s.Faults, "faults", s.Faults, "channel fault `spec`, e.g. loss=0.3,ack=0.1,jam=0.2,deaf=0.1")
	fs.IntVar(&s.ProbeIntervalUS, "probe-interval", s.ProbeIntervalUS, "attacker probe cadence, simulated µs (0 = default 2000)")
	fs.IntVar(&s.ScanIntervalMS, "scan-interval", s.ScanIntervalMS, "attacker active-scan cadence, simulated ms (0 = default 50)")
}

// RegisterSweepFlags binds the loss-sweep spec's fields to the
// canonical losssweep CLI flags on fs.
func (s *Spec) RegisterSweepFlags(fs *flag.FlagSet) {
	s.registerCommonFlags(fs)
}

func (s *Spec) registerCommonFlags(fs *flag.FlagSet) {
	fs.Int64Var(&s.Seed, "seed", s.Seed, "simulation seed")
	fs.Float64Var(&s.Scale, "scale", s.Scale, "census scale (1.0 = 5,328 devices)")
	fs.IntVar(&s.StopSize, "stop-size", s.StopSize, "households per vehicle stop")
	fs.IntVar(&s.DwellMS, "dwell", s.DwellMS, "per-channel dwell per stop, ms")
	fs.IntVar(&s.Workers, "workers", s.Workers, "worker goroutines simulating stops (0 = all cores)")
}

// Decode reads one JSON spec from r, rejecting unknown fields (a
// typoed key in a job submission fails loudly instead of silently
// running the default), applies defaults, and validates.
func Decode(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("jobspec: %w", err)
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// String renders the spec compactly for logs and job listings.
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s seed=%d scale=%g stop-size=%d dwell=%dms", s.Kind, s.Seed, s.Scale, s.StopSize, s.DwellMS)
	if s.Workers != 0 {
		fmt.Fprintf(&b, " workers=%d", s.Workers)
	}
	if s.Faults != "" {
		fmt.Fprintf(&b, " faults=%s", s.Faults)
	}
	if s.ProbeIntervalUS != 0 {
		fmt.Fprintf(&b, " probe-interval=%dµs", s.ProbeIntervalUS)
	}
	if s.ScanIntervalMS != 0 {
		fmt.Fprintf(&b, " scan-interval=%dms", s.ScanIntervalMS)
	}
	if len(s.Rates) > 0 {
		fmt.Fprintf(&b, " rates=%v", s.Rates)
	}
	return b.String()
}
