package eventsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.Schedule(30, func() { got = append(got, 3) })
	s.Schedule(10, func() { got = append(got, 1) })
	s.Schedule(20, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestSchedulerStableTies(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(100, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie order = %v, want insertion order", got)
		}
	}
}

func TestSchedulePastClamps(t *testing.T) {
	s := NewScheduler()
	s.Schedule(100, func() {
		s.Schedule(50, func() {
			if s.Now() != 100 {
				t.Errorf("past event ran at %v, want 100", s.Now())
			}
		})
	})
	s.Run()
}

func TestAfter(t *testing.T) {
	s := NewScheduler()
	fired := Time(-1)
	s.Schedule(40, func() {
		s.After(5, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 45 {
		t.Fatalf("After fired at %v, want 45", fired)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	e := s.Schedule(10, func() { ran = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	s.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	// Double-cancel and zero-Handle cancel must not panic.
	e.Cancel()
	var zero Handle
	zero.Cancel()
	if zero.Valid() || zero.Cancelled() {
		t.Fatal("zero Handle reports Valid or Cancelled")
	}
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler()
	var count int
	s.Every(10, func() { count++ })
	if err := s.RunUntil(95); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("ticks = %d, want 9", count)
	}
	if s.Now() != 95 {
		t.Fatalf("Now() = %v, want 95 (clock advances to deadline)", s.Now())
	}
	// Event exactly at the deadline fires.
	s.Schedule(100, func() { count = 100 })
	s.RunUntil(100)
	if count != 100 {
		t.Fatalf("event at deadline did not fire")
	}
}

func TestRunFor(t *testing.T) {
	s := NewScheduler()
	s.RunFor(50)
	s.RunFor(50)
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
}

func TestTickerStop(t *testing.T) {
	s := NewScheduler()
	var count int
	var tk *Ticker
	tk = s.Every(10, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunUntil(1000)
	if count != 3 {
		t.Fatalf("ticks after Stop = %d, want 3", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewScheduler().Every(0, func() {})
}

func TestStopResume(t *testing.T) {
	s := NewScheduler()
	var count int
	s.Every(10, func() {
		count++
		if count == 2 {
			s.Stop()
		}
	})
	if err := s.RunUntil(1000); err != ErrStopped {
		t.Fatalf("RunUntil err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	s.Resume()
	if err := s.RunUntil(55); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("count after resume = %d, want 5", count)
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.Schedule(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", s.Fired())
	}
}

func TestStepEmpty(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestTimeConversions(t *testing.T) {
	if Duration(1500*time.Microsecond) != 1500*Microsecond {
		t.Fatal("Duration conversion wrong")
	}
	if (2 * Second).Std() != 2*time.Second {
		t.Fatal("Std conversion wrong")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Fatalf("Seconds() = %v, want 1.5", got)
	}
	if got := (25 * Microsecond).Micros(); got != 25 {
		t.Fatalf("Micros() = %v, want 25", got)
	}
	if got := (1234567 * Microsecond).String(); got != "1.234567s" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: however a batch of events is scheduled, they execute in
// nondecreasing time order and the clock never runs backwards.
func TestEventOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := NewScheduler()
		var times []Time
		for _, off := range offsets {
			at := Time(off)
			s.Schedule(at, func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: two schedulers fed the same schedule fire identically.
func TestDeterminismProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		run := func() []Time {
			s := NewScheduler()
			var times []Time
			for _, off := range offsets {
				s.Schedule(Time(off), func() { times = append(times, s.Now()) })
			}
			s.Run()
			return times
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGCoin(t *testing.T) {
	g := NewRNG(1)
	if g.Coin(0) {
		t.Fatal("Coin(0) = true")
	}
	if !g.Coin(1) {
		t.Fatal("Coin(1) = false")
	}
	heads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if g.Coin(0.3) {
			heads++
		}
	}
	frac := float64(heads) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Coin(0.3) frequency = %v", frac)
	}
}

func TestRNGUniform(t *testing.T) {
	g := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(5, 10)
		if v < 5 || v >= 10 {
			t.Fatalf("Uniform(5,10) = %v out of range", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(11)
	const n = 20000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.Normal(3, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if mean < 2.9 || mean > 3.1 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestRNGFork(t *testing.T) {
	g := NewRNG(5)
	f1 := g.Fork()
	g2 := NewRNG(5)
	f2 := g2.Fork()
	for i := 0; i < 50; i++ {
		if f1.Float64() != f2.Float64() {
			t.Fatal("forked streams not reproducible")
		}
	}
}

func TestHighWater(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i), func() {})
	}
	if s.HighWater() != 5 {
		t.Fatalf("HighWater = %d, want 5", s.HighWater())
	}
	s.Run()
	// Draining must not lower the mark.
	if s.HighWater() != 5 {
		t.Fatalf("HighWater after drain = %d, want 5", s.HighWater())
	}
	// The mark tracks the worst depth, including nested scheduling.
	s.Schedule(s.Now()+1, func() {
		for i := 0; i < 10; i++ {
			s.After(Time(i+1), func() {})
		}
	})
	s.Run()
	if s.HighWater() != 10 {
		t.Fatalf("HighWater after nested burst = %d, want 10", s.HighWater())
	}
}

func TestFiredByOrigin(t *testing.T) {
	s := NewScheduler()
	rx := s.Origin("radio.rx")
	if again := s.Origin("radio.rx"); again != rx {
		t.Fatalf("Origin not interned: %d vs %d", rx, again)
	}
	tx := s.Origin("radio.tx")
	s.ScheduleTagged(rx, 10, func() {})
	s.ScheduleTagged(rx, 20, func() {})
	s.AfterTagged(tx, 30, func() {})
	s.Schedule(40, func() {}) // untagged
	s.Run()
	got := s.FiredByOrigin()
	want := map[string]uint64{"radio.rx": 2, "radio.tx": 1, "untagged": 1}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("FiredByOrigin[%s] = %d, want %d (all: %v)", k, got[k], v, got)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("FiredByOrigin = %v, want exactly %v", got, want)
	}
}

func TestObservedNow(t *testing.T) {
	s := NewScheduler()
	if s.ObservedNow() != 0 {
		t.Fatalf("ObservedNow at start = %v", s.ObservedNow())
	}
	var during Time
	s.Schedule(25, func() { during = s.ObservedNow() })
	s.Run()
	if during != 25 {
		t.Fatalf("ObservedNow inside event = %v, want 25", during)
	}
	// RunUntil past the last event advances the mirror to the deadline.
	s.RunUntil(100)
	if s.ObservedNow() != 100 {
		t.Fatalf("ObservedNow after RunUntil = %v, want 100", s.ObservedNow())
	}
}

func TestFireObserver(t *testing.T) {
	s := NewScheduler()
	rx := s.Origin("radio.rx")
	type obs struct {
		origin string
		wall   time.Duration
	}
	var seen []obs
	s.SetFireObserver(func(origin string, wall time.Duration) {
		seen = append(seen, obs{origin, wall})
	}, true)
	s.ScheduleTagged(rx, 10, func() { time.Sleep(time.Millisecond) }) //politevet:allow wallclock(test burns wall time so the measuring observer has something to measure)
	s.Schedule(20, func() {})
	s.Run()
	if len(seen) != 2 {
		t.Fatalf("observer saw %d events, want 2", len(seen))
	}
	if seen[0].origin != "radio.rx" || seen[1].origin != "untagged" {
		t.Fatalf("origins = %v", seen)
	}
	if seen[0].wall < time.Millisecond/2 {
		t.Fatalf("measured wall time %v, want ≥0.5ms", seen[0].wall)
	}
	// measureWall=false reports zero durations; nil uninstalls.
	seen = nil
	s.SetFireObserver(func(origin string, wall time.Duration) {
		seen = append(seen, obs{origin, wall})
	}, false)
	s.Schedule(30, func() { time.Sleep(time.Millisecond) }) //politevet:allow wallclock(non-measuring observer path must still execute a slow callback)
	s.Run()
	if len(seen) != 1 || seen[0].wall != 0 {
		t.Fatalf("non-measuring observer saw %v", seen)
	}
	s.SetFireObserver(nil, false)
	seen = nil
	s.Schedule(40, func() {})
	s.Run()
	if len(seen) != 0 {
		t.Fatal("uninstalled observer still fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	// An event chain where each event schedules the next simulates the
	// MAC's DIFS/SIFS chains; depth must not be limited.
	s := NewScheduler()
	depth := 0
	var next func()
	next = func() {
		depth++
		if depth < 1000 {
			s.After(1, next)
		}
	}
	s.After(1, next)
	s.Run()
	if depth != 1000 {
		t.Fatalf("depth = %d, want 1000", depth)
	}
	if s.Now() != 1000 {
		t.Fatalf("Now() = %v, want 1000", s.Now())
	}
}
