package eventsim

import "testing"

// noopFn is a shared non-capturing callback so the benchmark measures
// scheduler allocation, not closure allocation at the call sites.
func noopFn() {}

// BenchmarkSchedulerHot exercises the scheduler's steady-state hot
// mix at wardrive horizons: per iteration it schedules a SIFS-scale
// event (µs), a dwell-scale event (tens of ms), and a long-horizon
// event that lands in the overflow heap (seconds), cancels one
// pending handle (the awaited-ACK tombstone path), and fires two
// events — so the pending population stays bounded and the free
// list reaches steady state.
//
// CI's bench-smoke step runs this with -benchmem and fails the build
// if allocs/op exceeds schedulerHotAllocBudget: the timing wheel plus
// Event pool keep the hot path allocation-free, and this is the
// regression tripwire for anyone reintroducing a per-event alloc.
func BenchmarkSchedulerHot(b *testing.B) {
	for _, q := range []struct {
		name string
		kind QueueKind
	}{
		{"wheel", QueueWheel},
		{"heap", QueueLegacyHeap},
	} {
		b.Run(q.name, func(b *testing.B) {
			s := NewSchedulerQueue(q.kind)
			rng := NewRNG(0x5EED)
			// Pre-warm the pools and the wheel's slot arrays so the
			// measured loop sees steady state, as a long drive would.
			for i := 0; i < 4096; i++ {
				s.Schedule(s.Now()+Time(1+rng.Intn(int(50*Millisecond))), noopFn)
			}
			for i := 0; i < 4096; i++ {
				s.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Schedule(s.Now()+Time(1+rng.Intn(int(Millisecond))), noopFn)
				s.Schedule(s.Now()+Time(1+rng.Intn(int(50*Millisecond))), noopFn)
				h := s.Schedule(s.Now()+2*Second+Time(rng.Intn(int(Second))), noopFn)
				h.Cancel()
				s.Step()
				s.Step()
			}
			b.StopTimer()
			for s.Step() {
			}
		})
	}
}
