// Package eventsim provides a deterministic discrete-event simulation
// kernel: a nanosecond-resolution virtual clock, a stable-ordered event
// scheduler, and a seeded random number source.
//
// Every stochastic or time-dependent component in this repository
// (the RF medium, MAC state machines, power accounting, mobility)
// is driven from a single Scheduler so that experiments are exactly
// reproducible from a seed.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"
)

// Time is a point in simulated time, measured in nanoseconds since the
// start of the simulation. It is deliberately distinct from time.Time:
// simulations never consult the wall clock.
type Time int64

// Common durations in simulation units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Duration converts a standard library duration to simulation time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Std converts simulation time to a standard library duration.
func (t Time) Std() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String renders the time with microsecond precision, e.g. "1.234567s".
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Event is a scheduled callback. Events compare by time, then by
// insertion sequence, so two events scheduled for the same instant run
// in the order they were scheduled. This stability is what makes the
// simulation deterministic.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	dead   bool
	idx    int // heap index, -1 when not queued
	origin Origin
}

// Time reports when the event will fire.
func (e *Event) Time() Time { return e.at }

// Cancel prevents a pending event from firing. Cancelling an event that
// has already fired or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e != nil && e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("eventsim: scheduler stopped")

// Scheduler is a single-threaded discrete-event executor. It is not
// safe for concurrent use; concurrent producers must funnel work
// through an external synchronisation layer (see package core's
// AirPort implementations).
type Scheduler struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64

	// Introspection: queue high-water mark, per-origin fired counts,
	// a race-free mirror of the clock, and an optional fire observer.
	highWater     int
	originNames   []string
	originIndex   map[string]Origin
	firedByOrigin []uint64
	nowAtomic     atomic.Int64
	observer      func(origin string, wall time.Duration)
	observeWall   bool
}

// Origin is an interned label identifying where an event was
// scheduled from ("radio.rx", "mac.ack", ...). Origin 0 is the
// untagged default. Interning keeps the per-event accounting to one
// slice increment on the hot path.
type Origin uint16

// NewScheduler returns a scheduler whose clock starts at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{
		originNames:   []string{"untagged"},
		originIndex:   make(map[string]Origin),
		firedByOrigin: make([]uint64, 1),
	}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// ObservedNow is a race-free snapshot of the virtual clock, readable
// from any goroutine without the simulation lock. It is updated as
// each event fires, so telemetry read from worker goroutines can
// stamp observations without deadlocking on an rt.Bridge.
func (s *Scheduler) ObservedNow() Time { return Time(s.nowAtomic.Load()) }

// Len reports the number of pending (non-cancelled) events. Cancelled
// events still occupy the queue until they surface, so this is an
// upper bound.
func (s *Scheduler) Len() int { return len(s.queue) }

// Fired reports how many events have executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// HighWater reports the maximum queue depth reached so far.
func (s *Scheduler) HighWater() int { return s.highWater }

// Origin interns a label for tagged scheduling. Repeated calls with
// the same name return the same Origin; layers cache the result at
// construction time.
func (s *Scheduler) Origin(name string) Origin {
	if o, ok := s.originIndex[name]; ok {
		return o
	}
	o := Origin(len(s.originNames))
	s.originIndex[name] = o
	s.originNames = append(s.originNames, name)
	s.firedByOrigin = append(s.firedByOrigin, 0)
	return o
}

// FiredByOrigin reports per-origin fired-event counts, including the
// "untagged" default bucket.
func (s *Scheduler) FiredByOrigin() map[string]uint64 {
	out := make(map[string]uint64, len(s.originNames))
	for i, n := range s.firedByOrigin {
		if n > 0 {
			out[s.originNames[i]] = n
		}
	}
	return out
}

// SetFireObserver installs a callback invoked after every executed
// event with the event's origin label. When measureWall is true the
// callback also receives the wall-clock duration of the event's
// function — per-callback-kind timing for profiling — at the cost of
// two clock reads per event; otherwise the duration is zero.
// A nil observer uninstalls.
func (s *Scheduler) SetFireObserver(obs func(origin string, wall time.Duration), measureWall bool) {
	s.observer = obs
	s.observeWall = measureWall
}

// Schedule runs fn at absolute time at. Scheduling in the past (or the
// present) runs the event at the current time, after already-queued
// events for that time.
func (s *Scheduler) Schedule(at Time, fn func()) *Event {
	return s.ScheduleTagged(0, at, fn)
}

// ScheduleTagged is Schedule with an origin label for the
// per-origin fired-event accounting.
func (s *Scheduler) ScheduleTagged(o Origin, at Time, fn func()) *Event {
	if at < s.now {
		at = s.now
	}
	e := &Event{at: at, seq: s.seq, fn: fn, idx: -1, origin: o}
	s.seq++
	heap.Push(&s.queue, e)
	if len(s.queue) > s.highWater {
		s.highWater = len(s.queue)
	}
	return e
}

// reschedule pushes an already-fired event back onto the heap with a
// fresh sequence number, reusing its struct and callback. The caller
// must own the event and know it is not queued (idx == -1).
func (s *Scheduler) reschedule(e *Event, at Time) {
	if at < s.now {
		at = s.now
	}
	e.at = at
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
	if len(s.queue) > s.highWater {
		s.highWater = len(s.queue)
	}
}

// After runs fn after delay d.
func (s *Scheduler) After(d Time, fn func()) *Event {
	return s.Schedule(s.now+d, fn)
}

// AfterTagged is After with an origin label.
func (s *Scheduler) AfterTagged(o Origin, d Time, fn func()) *Event {
	return s.ScheduleTagged(o, s.now+d, fn)
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned ticker is stopped.
func (s *Scheduler) Every(d Time, fn func()) *Ticker {
	if d <= 0 {
		panic("eventsim: non-positive ticker period")
	}
	t := &Ticker{s: s, d: d, fn: fn}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	}
	t.arm()
	return t
}

// Ticker is a repeating event created by Every.
type Ticker struct {
	s       *Scheduler
	d       Time
	fn      func()
	fire    func() // allocated once; re-armed every period
	ev      *Event
	stopped bool
}

// arm (re)schedules the ticker's event. After the first firing the
// same Event struct is pushed back onto the heap with a fresh
// sequence number — the ticker holds the only external reference to
// it, so recycling is safe and each tick costs zero allocations.
func (t *Ticker) arm() {
	if t.ev != nil && t.ev.idx == -1 {
		t.ev.dead = false
		t.s.reschedule(t.ev, t.s.now+t.d)
		return
	}
	t.ev = t.s.After(t.d, t.fire)
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Step executes the single next pending event, advancing the clock to
// its timestamp. It reports false when the queue is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.dead {
			continue
		}
		s.now = e.at
		s.nowAtomic.Store(int64(e.at))
		s.fired++
		s.firedByOrigin[e.origin]++
		if obs := s.observer; obs != nil {
			if s.observeWall {
				start := time.Now() //politevet:allow wallclock(opt-in per-event wall profiling behind SetFireObserver measureWall; never feeds sim state)
				e.fn()
				obs(s.originNames[e.origin], time.Since(start)) //politevet:allow wallclock(duration of the same profiling measurement)
			} else {
				e.fn()
				obs(s.originNames[e.origin], 0)
			}
		} else {
			e.fn()
		}
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass deadline, then
// sets the clock to the deadline. Events scheduled exactly at the
// deadline are executed.
func (s *Scheduler) RunUntil(deadline Time) error {
	for len(s.queue) > 0 && !s.stopped {
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		s.Step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < deadline {
		s.now = deadline
		s.nowAtomic.Store(int64(deadline))
	}
	return nil
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Time) error { return s.RunUntil(s.now + d) }

// Run executes events until the queue drains or Stop is called.
func (s *Scheduler) Run() error {
	for s.Step() {
		if s.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Stop makes the currently running Run/RunUntil return ErrStopped
// after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// Resume clears a previous Stop so the scheduler can run again.
func (s *Scheduler) Resume() { s.stopped = false }

func (s *Scheduler) peek() *Event {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.dead {
			return e
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// RNG is the deterministic random source used throughout the
// simulator — the only sanctioned RNG entry point; politevet's
// globalrand analyzer enforces this. It wraps an explicit, privately
// owned *rand.Rand (never the package-global math/rand source) with
// the distributions the channel and mobility models need, so every
// draw in a run is a pure function of the seed: a single RNG is
// shared per simulation (or seed-forked per shard, see Fork) and
// replaying a seed replays the entire run. Every distribution helper
// below draws from that explicit source and from nothing else.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed. This
// and (*RNG).Fork are the only places the simulator may mint a
// random source.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exp returns an exponential sample with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Uniform returns a uniform sample in [lo,hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Coin returns true with probability p.
func (g *RNG) Coin(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork derives an independent generator whose stream is a deterministic
// function of this generator's state. Useful for giving subsystems
// their own streams so adding draws in one subsystem does not perturb
// another.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}
